package swvec

// The benchmark harness of deliverable (d): one benchmark per paper
// figure (each regenerates the figure's series via internal/figures)
// plus kernel micro-benchmarks and ablations for the design choices
// DESIGN.md calls out. Custom metrics report modeled cycles per DP
// cell on the Skylake model alongside the usual wall-clock numbers
// (the wall clock measures the emulated vector machine, not native
// SIMD).
//
// Run: go test -bench=. -benchmem .

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/cluster"
	"swvec/internal/core"
	"swvec/internal/figures"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/sched"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

var benchCfg = figures.Config{Quick: true}

func BenchmarkFig06_AVX2vsAVX512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig06AVX2vsAVX512(benchCfg)
	}
}

func BenchmarkFig07_AffineGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig07AffineGap(benchCfg)
	}
}

func BenchmarkFig08_Traceback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig08Traceback(benchCfg)
	}
}

func BenchmarkFig09_SubstMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig09SubstMatrix(benchCfg)
	}
}

func BenchmarkFig10_Tuning(b *testing.B) {
	cfg := figures.Config{Quick: true, DBSize: 8, QueryLens: []int{64, 320}}
	for i := 0; i < b.N; i++ {
		figures.Fig10Tuning(cfg)
	}
}

func BenchmarkFig11_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig11Scaling(benchCfg)
	}
}

func BenchmarkFig12_TopDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig12TopDown(benchCfg)
	}
}

func BenchmarkFig13_Scenarios(b *testing.B) {
	cfg := figures.Config{Quick: true, DBSize: 24, QueryLens: []int{35, 110}}
	for i := 0; i < b.N; i++ {
		figures.Fig13Scenarios(cfg)
	}
}

func BenchmarkFig14_VsParasail(b *testing.B) {
	// A larger quick database than the default so length-sorted
	// batching is representative (a single unsorted batch overstates
	// padding and understates the headline ratios).
	cfg := figures.Config{Quick: true, DBSize: 96}
	var h figures.Headline
	for i := 0; i < b.N; i++ {
		_, h = figures.Fig14VsParasail(cfg)
	}
	b.ReportMetric(h.VsDiag, "x-vs-diag")
	b.ReportMetric(h.VsScan, "x-vs-scan")
	b.ReportMetric(h.VsStriped, "x-vs-striped")
}

func BenchmarkDeterminism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Determinism(benchCfg)
	}
}

// --- kernel micro-benchmarks ---

type benchPair struct {
	q, d []uint8
	mat  *submat.Matrix
	gaps aln.Gaps
}

func newBenchPair(qlen, dlen int) benchPair {
	mat := submat.Blosum62()
	g := seqio.NewGenerator(5)
	return benchPair{
		q:    g.Protein("q", qlen).Encode(mat.Alphabet()),
		d:    g.Protein("d", dlen).Encode(mat.Alphabet()),
		mat:  mat,
		gaps: aln.DefaultGaps(),
	}
}

// reportModel attaches the modeled Skylake cycles/cell for a tally.
func reportModel(b *testing.B, tal *vek.Tally, cells int64, wsKB float64) {
	run := perfmodel.Run{Arch: isa.Get(isa.Skylake), Tally: tal, Cells: cells, WorkingSetKB: wsKB}
	b.ReportMetric(run.Cycles()/float64(cells), "modelcyc/cell")
	b.ReportMetric(run.GCUPS1(), "modelGCUPS")
}

func BenchmarkKernelScalar(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	for i := 0; i < b.N; i++ {
		baselines.ScalarAffine(p.q, p.d, p.mat, p.gaps)
	}
}

func BenchmarkKernelPair16(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		if _, _, err := core.AlignPair16(mch, p.q, p.d, p.mat, core.PairOptions{Gaps: p.gaps}); err != nil {
			b.Fatal(err)
		}
	}
	reportModel(b, tal, cells, float64(len(p.q))*26/1024)
}

func BenchmarkKernelPair16Traceback(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		if _, _, err := core.AlignPair16(mch, p.q, p.d, p.mat, core.PairOptions{Gaps: p.gaps, Traceback: true}); err != nil {
			b.Fatal(err)
		}
	}
	reportModel(b, tal, cells, float64(len(p.q))*29/1024)
}

func BenchmarkKernelPair16Wide(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		if _, err := core.AlignPair16W(mch, p.q, p.d, p.mat, core.PairOptions{Gaps: p.gaps}); err != nil {
			b.Fatal(err)
		}
	}
	reportModel(b, tal, cells, float64(len(p.q))*26/1024)
}

func BenchmarkKernelPair8Fixed(b *testing.B) {
	p := newBenchPair(320, 1000)
	fixed := submat.MatchMismatch(p.mat.Alphabet(), 2, -1)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		if _, err := core.AlignPair8(mch, p.q, p.d, fixed, core.PairOptions{Gaps: p.gaps}); err != nil {
			b.Fatal(err)
		}
	}
	reportModel(b, tal, cells, float64(len(p.q))*13/1024)
}

func BenchmarkKernelBatch8(b *testing.B) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(6)
	db := g.Database(32)
	batch := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true})[0]
	q := g.Protein("q", 320).Encode(mat.Alphabet())
	cells := batch.Cells(len(q))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		if _, err := core.AlignBatch8(mch, q, tables, batch, core.BatchOptions{Gaps: aln.DefaultGaps()}); err != nil {
			b.Fatal(err)
		}
	}
	reportModel(b, tal, cells, 64)
}

func BenchmarkKernelDiag16(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		baselines.Diag16(mch, p.q, p.d, p.mat, p.gaps)
	}
	reportModel(b, tal, cells, float64(len(p.q))*26/1024)
}

func BenchmarkKernelScan16(b *testing.B) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		baselines.Scan16(mch, p.q, p.d, p.mat, p.gaps)
	}
	reportModel(b, tal, cells, float64(len(p.q))*26/1024)
}

func BenchmarkKernelStriped16(b *testing.B) {
	p := newBenchPair(320, 1000)
	prof := baselines.NewStripedProfile16(p.mat, p.q)
	cells := int64(len(p.q)) * int64(len(p.d))
	b.SetBytes(cells)
	mch, tal := vek.NewMachine()
	for i := 0; i < b.N; i++ {
		tal.Reset()
		baselines.Striped16(mch, prof, p.d, p.gaps)
	}
	reportModel(b, tal, cells, float64(len(p.q))*90/1024)
}

// --- ablation benchmarks (DESIGN.md §6) ---

// ablationRatio runs the kernel twice with one option toggled and
// reports the modeled cycle ratio per architecture (off/on: >1 means
// the paper's choice wins). Skylake and Haswell bracket the
// microarchitecture range — some optimizations only matter where ports
// are scarcer.
func ablationRatio(b *testing.B, base, variant core.PairOptions) {
	p := newBenchPair(320, 1000)
	cells := int64(len(p.q)) * int64(len(p.d))
	var ratioSKX, ratioHSW float64
	for i := 0; i < b.N; i++ {
		mA, tA := vek.NewMachine()
		if _, _, err := core.AlignPair16(mA, p.q, p.d, p.mat, base); err != nil {
			b.Fatal(err)
		}
		mB, tB := vek.NewMachine()
		if _, _, err := core.AlignPair16(mB, p.q, p.d, p.mat, variant); err != nil {
			b.Fatal(err)
		}
		ws := float64(len(p.q)) * 26 / 1024
		ratio := func(arch *isa.Arch) float64 {
			cA := perfmodel.Run{Arch: arch, Tally: tA, Cells: cells, WorkingSetKB: ws}.Cycles()
			cB := perfmodel.Run{Arch: arch, Tally: tB, Cells: cells, WorkingSetKB: ws}.Cycles()
			return cB / cA
		}
		ratioSKX = ratio(isa.Get(isa.Skylake))
		ratioHSW = ratio(isa.Get(isa.Haswell))
	}
	b.ReportMetric(ratioSKX, "skx-ratio-off/on")
	b.ReportMetric(ratioHSW, "hsw-ratio-off/on")
}

func BenchmarkAblationDiagonalVsRowMajor(b *testing.B) {
	g := aln.DefaultGaps()
	ablationRatio(b, core.PairOptions{Gaps: g}, core.PairOptions{Gaps: g, RowMajorLayout: true})
}

func BenchmarkAblationDeferredVsEagerMax(b *testing.B) {
	g := aln.DefaultGaps()
	ablationRatio(b, core.PairOptions{Gaps: g}, core.PairOptions{Gaps: g, EagerMax: true})
}

// BenchmarkAblationDeferredVsEagerMaxBatch runs the §III-D ablation on
// the ALU-bound batch engine, where the per-vector reduction is not
// hidden by a load bottleneck — the setting where deferring pays.
func BenchmarkAblationDeferredVsEagerMaxBatch(b *testing.B) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(9)
	db := g.Database(32)
	batch := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true})[0]
	q := g.Protein("q", 320).Encode(mat.Alphabet())
	cells := batch.Cells(len(q))
	arch := isa.Get(isa.Skylake)
	var ratio float64
	for i := 0; i < b.N; i++ {
		mD, tD := vek.NewMachine()
		if _, err := core.AlignBatch8(mD, q, tables, batch, core.BatchOptions{Gaps: aln.DefaultGaps()}); err != nil {
			b.Fatal(err)
		}
		mE, tE := vek.NewMachine()
		if _, err := core.AlignBatch8(mE, q, tables, batch, core.BatchOptions{Gaps: aln.DefaultGaps(), EagerMax: true}); err != nil {
			b.Fatal(err)
		}
		cD := perfmodel.Run{Arch: arch, Tally: tD, Cells: cells, WorkingSetKB: 64}.Cycles()
		cE := perfmodel.Run{Arch: arch, Tally: tE, Cells: cells, WorkingSetKB: 64}.Cycles()
		ratio = cE / cD
	}
	b.ReportMetric(ratio, "skx-ratio-eager/deferred")
}

func BenchmarkAblationPadTailVsScalarTail(b *testing.B) {
	g := aln.DefaultGaps()
	ablationRatio(b, core.PairOptions{Gaps: g}, core.PairOptions{Gaps: g, ScalarTail: true})
}

// BenchmarkAblationProfileVsGather8Bit contrasts the 8-bit pair
// kernel's scalar profile assembly with the batch engine's shuffle
// scoring — the §III-C motivation for database batching.
func BenchmarkAblationProfileVsGather8Bit(b *testing.B) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(7)
	db := g.Database(32)
	batch := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true})[0]
	q := g.Protein("q", 320).Encode(mat.Alphabet())
	arch := isa.Get(isa.Skylake)
	var ratio float64
	for i := 0; i < b.N; i++ {
		mP, tP := vek.NewMachine()
		d := db[0].Encode(mat.Alphabet())
		if _, err := core.AlignPair8(mP, q, d, mat, core.PairOptions{Gaps: aln.DefaultGaps()}); err != nil {
			b.Fatal(err)
		}
		pairCells := int64(len(q)) * int64(len(d))
		mB, tB := vek.NewMachine()
		if _, err := core.AlignBatch8(mB, q, tables, batch, core.BatchOptions{Gaps: aln.DefaultGaps()}); err != nil {
			b.Fatal(err)
		}
		batchCells := int64(len(q)) * int64(batch.MaxLen) * int64(batch.Count)
		cP := perfmodel.Run{Arch: arch, Tally: tP, Cells: pairCells, WorkingSetKB: 8}.Cycles() / float64(pairCells)
		cB := perfmodel.Run{Arch: arch, Tally: tB, Cells: batchCells, WorkingSetKB: 64}.Cycles() / float64(batchCells)
		ratio = cP / cB
	}
	b.ReportMetric(ratio, "x-batch-vs-pair8")
}

// BenchmarkAblationBatchBlockCols sweeps the batch engine's block
// size, the knob §IV-I wants an autotuner for.
func BenchmarkAblationBatchBlockCols(b *testing.B) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(8)
	db := g.Database(32)
	batch := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true})[0]
	q := g.Protein("q", 320).Encode(mat.Alphabet())
	for i := 0; i < b.N; i++ {
		for _, cols := range []int{0, 32, 128, 512} {
			if _, err := core.AlignBatch8(vek.Bare, q, tables, batch, core.BatchOptions{Gaps: aln.DefaultGaps(), BlockCols: cols}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// searchBenchConfigs enumerates the backend × vector-width × kernel
// points the search benchmarks record. The sub-benchmark name carries
// every field so BENCH_ci.json entries are self-describing and
// comparable across PRs (the pre-backend baseline corresponds to
// backend=modeled/width=256/kernel=auto). The forced-kernel rows pin
// the planner's alternatives on the native serving configuration, so
// the auto row can be checked against the best forced row per query
// class.
var searchBenchConfigs = []struct {
	name    string
	backend Backend
	width   int
	kernel  Kernel
}{
	{"backend=modeled/width=256/kernel=auto", BackendModeled, 256, KernelAuto},
	{"backend=native/width=256/kernel=auto", BackendNative, 256, KernelAuto},
	{"backend=native/width=512/kernel=auto", BackendNative, 512, KernelAuto},
	{"backend=native/width=512/kernel=diagonal", BackendNative, 512, KernelDiagonal},
	{"backend=native/width=512/kernel=striped", BackendNative, 512, KernelStriped},
	{"backend=native/width=512/kernel=lazyf", BackendNative, 512, KernelLazyF},
}

// searchBenchQueryLens are the query classes the search benchmarks
// sweep: one short query the planner keeps on the diagonal batch
// engines and one long query past the striped threshold, where the
// striped families amortize their per-column overhead.
var searchBenchQueryLens = []int{200, 1200}

// BenchmarkSearchEndToEnd measures the public API's database search on
// the host, per query class, execution backend, vector width, and
// kernel family. On the modeled backend the wall clock measures the
// emulated vector machine; on the native backend it measures the
// compiled serving kernels.
func BenchmarkSearchEndToEnd(b *testing.B) {
	db := GenerateDatabase(9, 64)
	for _, qlen := range searchBenchQueryLens {
		query := seqio.NewGenerator(9).Protein("q", qlen).Residues
		for _, cfg := range searchBenchConfigs {
			b.Run(fmt.Sprintf("qlen=%d/%s", qlen, cfg.name), func(b *testing.B) {
				al, err := New(WithLengthSortedBatches(),
					WithBackend(cfg.backend), WithVectorWidth(cfg.width), WithKernel(cfg.kernel))
				if err != nil {
					b.Fatal(err)
				}
				var cells int64
				for i := 0; i < b.N; i++ {
					res, err := al.Search(query, db)
					if err != nil {
						b.Fatal(err)
					}
					cells = res.Cells
				}
				b.SetBytes(cells)
			})
		}
	}
}

// BenchmarkKernelBatch8Scratch is the steady-state allocation check
// for the 8-bit batch engine at both vector widths: with a warm
// per-worker scratch arena the per-batch allocation count must be
// zero, whether the generic kernel runs 32 or 64 lanes.
func BenchmarkKernelBatch8Scratch(b *testing.B) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	for _, bw := range []struct {
		name  string
		lanes int
	}{{"256", seqio.BatchLanes}, {"512", seqio.MaxBatchLanes}} {
		b.Run(bw.name, func(b *testing.B) {
			g := seqio.NewGenerator(6)
			db := g.Database(bw.lanes)
			batch := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true, Lanes: bw.lanes})[0]
			q := g.Protein("q", 320).Encode(mat.Alphabet())
			b.SetBytes(batch.Cells(len(q)))
			opt := core.BatchOptions{Gaps: aln.DefaultGaps(), Scratch: core.NewScratch()}
			if _, err := core.AlignBatch8(vek.Bare, q, tables, batch, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.AlignBatch8(vek.Bare, q, tables, batch, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchPipeline measures the streaming search on the
// standard 2000-sequence database (the tentpole's GCUPS acceptance
// workload), per query class and kernel family. MB/s is cell updates
// per second / 1e6; allocs/op shows the whole-pipeline allocation
// budget, which no longer scales with per-batch work.
func BenchmarkSearchPipeline(b *testing.B) {
	db := GenerateDatabase(1, 2000)
	for _, qlen := range searchBenchQueryLens {
		query := seqio.NewGenerator(1).Protein("q", qlen).Residues
		for _, cfg := range searchBenchConfigs {
			b.Run(fmt.Sprintf("qlen=%d/%s", qlen, cfg.name), func(b *testing.B) {
				al, err := New(WithLengthSortedBatches(),
					WithBackend(cfg.backend), WithVectorWidth(cfg.width), WithKernel(cfg.kernel))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				var cells int64
				for i := 0; i < b.N; i++ {
					res, err := al.Search(query, db)
					if err != nil {
						b.Fatal(err)
					}
					cells = res.Cells
				}
				b.SetBytes(cells)
			})
		}
	}
}

// startCannedShard serves the wire protocol on an ephemeral port with
// a fixed per-shard hit list: the scatter benchmark measures the
// router's fan-out, merge, and health-gating overhead, not the
// alignment the real swserver would run behind the socket.
func startCannedShard(b *testing.B, hits []cluster.Hit) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				enc := json.NewEncoder(c)
				for sc.Scan() {
					var req cluster.Request
					if json.Unmarshal(sc.Bytes(), &req) != nil {
						return
					}
					resp := cluster.Response{ID: req.ID}
					if req.Type != cluster.TypePing {
						resp.Hits = hits
					}
					if enc.Encode(resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	b.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// BenchmarkSearchScatter measures the cluster routing layer's
// per-query cost — dial, fan-out, per-replica admission, and global
// top-K merge — over canned shard endpoints. The per-slice answers are
// real top-K lists computed once by the local pipeline, so the merge
// works on representative data; replicas=1 is the PR-8 single-copy
// path and replicas=2 prices the replicated admission walk (the
// prober stays off, as it does on the query path).
func BenchmarkSearchScatter(b *testing.B) {
	const shards, topK = 3, 5
	db := GenerateDatabase(42, 512)
	query := seqio.NewGenerator(7).Protein("q", 200).Residues
	al, err := New()
	if err != nil {
		b.Fatal(err)
	}
	parts := cluster.NewShardMap(shards).Partition(db)
	canned := make([][]cluster.Hit, shards)
	for s, part := range parts {
		res, err := al.Search(query, part)
		if err != nil {
			b.Fatal(err)
		}
		top := sched.TopK(res.Hits, topK)
		hits := make([]cluster.Hit, len(top))
		for i, h := range top {
			hits[i] = cluster.Hit{SeqID: part[h.SeqIndex].ID, Score: h.Score}
		}
		canned[s] = hits
	}
	for _, replicas := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d/replicas=%d", shards, replicas), func(b *testing.B) {
			groups := make([][]string, shards)
			for s := 0; s < shards; s++ {
				for r := 0; r < replicas; r++ {
					groups[s] = append(groups[s], startCannedShard(b, canned[s]))
				}
			}
			pool := cluster.NewReplicatedPool(groups, cluster.NewIndex(db), cluster.Policy{
				Timeout:         5 * time.Second,
				Retries:         1,
				RetryBase:       time.Millisecond,
				RetryMax:        5 * time.Millisecond,
				BreakerFailures: 3,
				BreakerCooldown: 100 * time.Millisecond,
			})
			req := cluster.Request{ID: "bench", Residues: string(query), Top: topK}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, rep, err := pool.Scatter(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Partial() {
					b.Fatalf("scatter went partial: %+v", rep)
				}
				if len(hits) != topK {
					b.Fatalf("got %d hits, want %d", len(hits), topK)
				}
			}
		})
	}
}

// BenchmarkBackends compares the modeled vector machine with the
// compiled native kernels on identical pair and batch workloads at
// both register widths. Wall clock is the comparison that matters: the
// modeled rows price the interpreter the serving path no longer pays,
// the native rows are what swserver actually runs.
func BenchmarkBackends(b *testing.B) {
	p := newBenchPair(320, 1000)
	fixed := submat.MatchMismatch(p.mat.Alphabet(), 2, -1)
	pairCells := int64(len(p.q)) * int64(len(p.d))
	tables := submat.NewCodeTables(p.mat)
	g := seqio.NewGenerator(6)
	q := g.Protein("bq", 320).Encode(p.mat.Alphabet())
	batch256 := seqio.BuildBatches(g.Database(seqio.BatchLanes), p.mat.Alphabet(),
		seqio.BatchOptions{SortByLength: true, Lanes: seqio.BatchLanes})[0]
	batch512 := seqio.BuildBatches(g.Database(seqio.MaxBatchLanes), p.mat.Alphabet(),
		seqio.BatchOptions{SortByLength: true, Lanes: seqio.MaxBatchLanes})[0]

	cases := []struct {
		stage   string
		width   int
		cells   int64
		striped bool // has a striped-family variant (affine, score-only)
		run     func(m vek.Machine, po core.PairOptions, bo core.BatchOptions) error
	}{
		{"pair8", 256, pairCells, true, func(m vek.Machine, po core.PairOptions, _ core.BatchOptions) error {
			_, err := core.AlignPair8(m, p.q, p.d, fixed, po)
			return err
		}},
		{"pair8", 512, pairCells, true, func(m vek.Machine, po core.PairOptions, _ core.BatchOptions) error {
			_, err := core.AlignPair8W(m, p.q, p.d, fixed, po)
			return err
		}},
		{"pair16", 256, pairCells, true, func(m vek.Machine, po core.PairOptions, _ core.BatchOptions) error {
			_, _, err := core.AlignPair16(m, p.q, p.d, p.mat, po)
			return err
		}},
		{"pair16", 512, pairCells, true, func(m vek.Machine, po core.PairOptions, _ core.BatchOptions) error {
			_, err := core.AlignPair16W(m, p.q, p.d, p.mat, po)
			return err
		}},
		{"pair32", 256, pairCells, false, func(m vek.Machine, po core.PairOptions, _ core.BatchOptions) error {
			_, err := core.AlignPair32(m, p.q, p.d, p.mat, po)
			return err
		}},
		{"batch8", 256, batch256.Cells(len(q)), true, func(m vek.Machine, _ core.PairOptions, bo core.BatchOptions) error {
			_, err := core.AlignBatch8(m, q, tables, batch256, bo)
			return err
		}},
		{"batch8", 512, batch512.Cells(len(q)), true, func(m vek.Machine, _ core.PairOptions, bo core.BatchOptions) error {
			_, err := core.AlignBatch8(m, q, tables, batch512, bo)
			return err
		}},
		{"batch16", 256, batch256.Cells(len(q)), true, func(m vek.Machine, _ core.PairOptions, bo core.BatchOptions) error {
			_, err := core.AlignBatch16(m, q, tables, batch256, bo)
			return err
		}},
		{"batch16", 512, batch512.Cells(len(q)), true, func(m vek.Machine, _ core.PairOptions, bo core.BatchOptions) error {
			_, err := core.AlignBatch16(m, q, tables, batch512, bo)
			return err
		}},
	}

	for _, be := range []core.Backend{core.BackendModeled, core.BackendNative} {
		mch := vek.Bare
		if be == core.BackendModeled {
			mch, _ = vek.NewMachine()
		}
		scratch := core.NewScratch()
		for _, kern := range []core.Kernel{core.KernelDiagonal, core.KernelStriped, core.KernelLazyF} {
			popt := core.PairOptions{Gaps: aln.DefaultGaps(), Backend: be, Scratch: scratch, Kernel: kern}
			bopt := core.BatchOptions{Gaps: aln.DefaultGaps(), Backend: be, Scratch: scratch, Kernel: kern}
			for _, c := range cases {
				if kern.Striped() && !c.striped {
					continue
				}
				b.Run(fmt.Sprintf("%s/backend=%s/width=%d/kernel=%s", c.stage, be, c.width, kern), func(b *testing.B) {
					b.SetBytes(c.cells)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := c.run(mch, popt, bopt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
