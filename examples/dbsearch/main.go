// dbsearch demonstrates usage scenario 1 (§II-C): one protein query
// streamed against a database. The database is batched offline into
// 32-sequence transposed blocks, the 8-bit interleaved engine scores
// every batch across all CPU cores, and saturated scores are rescued
// at 16 bits.
package main

import (
	"fmt"
	"log"

	"swvec"
)

func main() {
	// A synthetic Swiss-Prot-like database; replace with
	// swvec.ReadFasta(file) for real data.
	db := swvec.GenerateDatabase(42, 2000)

	// Plant a known homolog so the search has a meaningful top hit:
	// the query is a fragment of database sequence 1234.
	query := db[1234].Residues[20:260]

	al, err := swvec.New(
		swvec.WithGaps(11, 1),
		swvec.WithLengthSortedBatches(), // offline layout optimization
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := al.Search(query, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d sequences (%d DP cells) in %v — %.3f GCUPS, %d lanes rescued at 16 bits\n",
		len(db), res.Cells, res.Elapsed, res.GCUPS(), res.Rescued)
	fmt.Println("top hits:")
	for rank, h := range res.TopHits(5) {
		marker := ""
		if h.SeqIndex == 1234 {
			marker = "  <- planted homolog"
		}
		fmt.Printf("  %d. score %5d  %s (%d aa)%s\n",
			rank+1, h.Score, db[h.SeqIndex].ID, db[h.SeqIndex].Len(), marker)
	}
}
