// batchserver demonstrates usage scenario 2 (§II-C, §IV-G): a
// centralized server that accumulates queries from multiple clients
// and aligns them as one batch. The paper found that computing several
// queries together is markedly more efficient than serving them one at
// a time, because the batched engine reuses the database layout and
// score scratch across queries. This example measures both ways.
package main

import (
	"fmt"
	"log"
	"time"

	"swvec"
)

func main() {
	db := swvec.GenerateDatabase(7, 800)
	// Sixteen short client queries (fragments of database entries, as
	// a real server would see): short queries are where accumulation
	// pays most, because the per-batch score scratch and layout work
	// are shared across the whole batch of queries.
	var clients []swvec.Sequence
	var queries [][]byte
	for i := 0; i < 16; i++ {
		src := db[i*37].Residues
		n := 50 + i*7
		if n > len(src) {
			n = len(src)
		}
		q := swvec.Sequence{ID: fmt.Sprintf("client%02d", i), Residues: src[:n]}
		clients = append(clients, q)
		queries = append(queries, q.Residues)
	}

	al, err := swvec.New(swvec.WithGaps(11, 1), swvec.WithLengthSortedBatches())
	if err != nil {
		log.Fatal(err)
	}

	// One at a time: each query pays the full database pass alone.
	start := time.Now()
	var cellsSerial int64
	for _, q := range queries {
		res, err := al.Search(q, db)
		if err != nil {
			log.Fatal(err)
		}
		cellsSerial += res.Cells
	}
	serial := time.Since(start)

	// Accumulated: the server batches all pending queries and runs the
	// multi-query engine once.
	start = time.Now()
	batched, err := al.SearchAll(queries, db)
	if err != nil {
		log.Fatal(err)
	}
	accumulated := time.Since(start)

	fmt.Printf("%d queries vs %d sequences (%d cells)\n", len(queries), len(db), batched.Cells)
	fmt.Printf("  one-at-a-time : %8.1f ms (%.3f GCUPS)\n",
		ms(serial), float64(cellsSerial)/serial.Seconds()/1e9)
	fmt.Printf("  accumulated   : %8.1f ms (%.3f GCUPS)\n",
		ms(accumulated), batched.GCUPS())
	fmt.Printf("  batching speedup: %.2fx\n", serial.Seconds()/accumulated.Seconds())

	// Show each client got its answer.
	for qi := range queries {
		best, bestIdx := int32(-1), -1
		for si, sc := range batched.Scores[qi] {
			if sc > best {
				best, bestIdx = sc, si
			}
		}
		fmt.Printf("  %-14s best hit %s (score %d)\n", clients[qi].ID, db[bestIdx].ID, best)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
