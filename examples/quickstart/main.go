// Quickstart: align two protein sequences and print the score, the
// aligned regions, and the CIGAR string.
package main

import (
	"fmt"
	"log"

	"swvec"
)

func main() {
	// Human ubiquitin fragment vs a mutated copy with a deletion.
	query := []byte("MQIFVKTLTGKTITLEVEPSDTIENVKAKIQDKEGIPPDQQRLIFAGKQLEDGRTLSDYNIQKESTLHLVLRLRGG")
	target := []byte("MQIFVKTLTGKTITLEVEPSDTIENVKAKIQDKEGIPPDQQRLIFAGKQLGRTLSDYNIQKESTLHLVLRLRGG")

	al, err := swvec.New(swvec.WithGaps(11, 1))
	if err != nil {
		log.Fatal(err)
	}

	a, err := al.Align(query, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score      %d\n", a.Score)
	fmt.Printf("query span %d..%d\n", a.BegQ, a.EndQ)
	fmt.Printf("target span %d..%d\n", a.BegD, a.EndD)
	fmt.Printf("CIGAR      %s\n", a.CigarString())

	// Score-only is cheaper: the adaptive kernel runs at 8 bits and
	// escalates to 16 only when the score saturates.
	score, err := al.Score(query, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score-only %d (matches: %v)\n", score, score == a.Score)
}
