// subroutine demonstrates usage scenario 3 (§II-C): Smith-Waterman as
// a library subroutine on small inputs, SSW style — small query and
// reference sets, full tracebacks, working set resident in cache. This
// is the mode downstream tools (read mappers, MSA pipelines) call in a
// hot loop.
package main

import (
	"fmt"
	"log"

	"swvec"
)

func main() {
	al, err := swvec.New(swvec.WithGaps(5, 1))
	if err != nil {
		log.Fatal(err)
	}

	// A miniature read-vs-reference problem: three "reads" against two
	// "reference" fragments, all protein for this demo.
	refs := []swvec.Sequence{
		{ID: "ref_A", Residues: []byte("MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRGRRQPIPKARR")},
		{ID: "ref_B", Residues: []byte("MAEPKSGGWLSKLFGRKEMRILMVGLDAAGKTTILYKLKLGEIVTTIPTIGFNVETVEYKNISFTVWDVGGQ")},
	}
	reads := [][]byte{
		[]byte("RRGPRLGVRATRKTSE"),              // exact fragment of ref_A
		[]byte("GLDAAGKTTILYKLNLGEIVT"),         // ref_B with one substitution
		[]byte("KFPGGGQIVGGVYLLWWPRRGPRLGVRAT"), // ref_A with an insertion
	}

	for ri, read := range reads {
		fmt.Printf("read %d (%d aa):\n", ri, len(read))
		for _, ref := range refs {
			a, err := al.Align(read, ref.Residues)
			if err != nil {
				log.Fatal(err)
			}
			if a.Score <= 0 {
				fmt.Printf("  vs %s: no local alignment\n", ref.ID)
				continue
			}
			fmt.Printf("  vs %s: score %3d at ref[%d..%d]  CIGAR %s\n",
				ref.ID, a.Score, a.BegD, a.EndD, a.CigarString())
		}
	}

	// The adaptive scorer is what a mapper's filter stage would call.
	sc, err := al.Score(reads[0], refs[0].Residues)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfilter-stage score (8-bit kernel, no traceback): %d\n", sc)
}
