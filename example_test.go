package swvec_test

import (
	"fmt"
	"log"

	"swvec"
)

// ExampleAligner_Align shows a pairwise protein alignment with
// traceback.
func ExampleAligner_Align() {
	al, err := swvec.New(swvec.WithGaps(11, 1))
	if err != nil {
		log.Fatal(err)
	}
	a, err := al.Align(
		[]byte("MKVLAWGQHEAGAWGHEE"),
		[]byte("MKVLAWQHEAGAWGHEE"), // one residue deleted
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.CigarString())
	// Output: 6M1I11M
}

// ExampleAligner_Score shows the adaptive 8/16-bit scorer.
func ExampleAligner_Score() {
	al, err := swvec.New()
	if err != nil {
		log.Fatal(err)
	}
	score, err := al.Score([]byte("HEAGAWGHEE"), []byte("PAWHEAE"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(score > 0)
	// Output: true
}

// ExampleAligner_Search shows a database search with the batch engine.
func ExampleAligner_Search() {
	al, err := swvec.New(swvec.WithLengthSortedBatches(), swvec.WithThreads(1))
	if err != nil {
		log.Fatal(err)
	}
	db := swvec.GenerateDatabase(42, 64)
	query := db[7].Residues[:60] // a fragment of a known entry
	res, err := al.Search(query, db)
	if err != nil {
		log.Fatal(err)
	}
	best := res.TopHits(1)[0]
	fmt.Println(db[best.SeqIndex].ID == db[7].ID)
	// Output: true
}

// ExampleMatchMismatch shows fixed-score alignment (the gather-free
// fast path).
func ExampleMatchMismatch() {
	al, err := swvec.New(swvec.WithMatrix(swvec.MatchMismatch(2, -1)), swvec.WithGaps(3, 1))
	if err != nil {
		log.Fatal(err)
	}
	score, err := al.Score([]byte("ACDEF"), []byte("ACDEF"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(score)
	// Output: 10
}
