// Command swtune runs the evolutionary hyperparameter search of
// §III-E against the modeled runtime of the alignment kernels on a
// chosen architecture, printing the per-generation convergence and the
// winning configuration.
//
// Usage:
//
//	swtune -arch skylake -qlen 320 -pop 16 -gens 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/tuner"
	"swvec/internal/vek"
)

func main() {
	var (
		archName = flag.String("arch", "skylake", "architecture: haswell, broadwell, skylake, cascadelake, alderlake")
		qlen     = flag.Int("qlen", 320, "query length")
		dbSize   = flag.Int("db", 32, "database sequences for the fitness workload")
		pop      = flag.Int("pop", 16, "population size")
		gens     = flag.Int("gens", 12, "generations")
		seed     = flag.Int64("seed", 1, "search seed")
	)
	flag.Parse()

	arch := lookupArch(*archName)
	if arch == nil {
		fmt.Fprintf(os.Stderr, "swtune: unknown architecture %q\n", *archName)
		os.Exit(2)
	}

	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	gaps := aln.DefaultGaps()
	g := seqio.NewGenerator(42)
	db := g.Database(*dbSize)
	query := g.Protein("q", *qlen).Encode(mat.Alphabet())
	target := g.Protein("t", 2000).Encode(mat.Alphabet())
	batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{})
	batchesSorted := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{SortByLength: true})

	params := tuner.KernelParams()
	cache := map[string]float64{}
	fitness := func(tc tuner.Config) float64 {
		k := fmt.Sprintf("%v", tc)
		if v, ok := cache[k]; ok {
			return v
		}
		mch, tal := vek.NewMachine()
		popt := core.PairOptions{
			Gaps:            gaps,
			ScalarThreshold: tc["scalar_threshold"],
			ScalarTail:      tc["scalar_tail"] == 1,
			EagerMax:        tc["eager_max"] == 1,
		}
		if _, _, err := core.AlignPair16(mch, query, target, mat, popt); err != nil {
			panic(err)
		}
		cells := int64(len(query)) * int64(len(target))
		bset := batches
		if tc["sort_by_length"] == 1 {
			bset = batchesSorted
		}
		for _, b := range bset {
			if _, err := core.AlignBatch8(mch, query, tables, b,
				core.BatchOptions{Gaps: gaps, BlockCols: tc["block_cols"]}); err != nil {
				panic(err)
			}
		}
		cells += seqio.BatchedCells(bset, len(query))
		run := perfmodel.Run{Arch: arch, Tally: tal, Cells: cells, WorkingSetKB: 64}
		v := run.Seconds(1)
		cache[k] = v
		return v
	}

	opts := tuner.DefaultOptions()
	opts.Population = *pop
	opts.Generations = *gens
	opts.Seed = *seed
	res, err := tuner.Optimize(params, fitness, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swtune: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("architecture %s, query %d aa, %d evaluations\n", arch.Name, *qlen, res.Evaluations)
	fmt.Printf("baseline fitness %.6g s, tuned %.6g s: %+.1f%% improvement\n",
		res.BaselineFitness, res.BestFitness, 100*res.Improvement())
	fmt.Println("convergence (best fitness per generation):")
	for i, f := range res.History {
		fmt.Printf("  gen %2d: %.6g\n", i, f)
	}
	fmt.Println("best configuration:")
	for _, p := range params {
		fmt.Printf("  %-18s %d\n", p.Name, res.Best[p.Name])
	}
}

func lookupArch(name string) *isa.Arch {
	switch strings.ToLower(name) {
	case "haswell":
		return isa.Get(isa.Haswell)
	case "broadwell":
		return isa.Get(isa.Broadwell)
	case "skylake":
		return isa.Get(isa.Skylake)
	case "cascadelake":
		return isa.Get(isa.Cascadelake)
	case "alderlake":
		return isa.Get(isa.Alderlake)
	}
	return nil
}
