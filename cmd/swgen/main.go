// Command swgen writes synthetic protein FASTA files with
// Swiss-Prot-like statistics: databases, the standard query set, or
// homolog pairs for alignment testing.
//
// Usage:
//
//	swgen -n 10000 -o db.fasta              # database
//	swgen -queries -o queries.fasta         # the standard 10 queries
//	swgen -homolog 500 -sub 0.1 -o pair.fa  # a sequence and a mutated copy
package main

import (
	"flag"
	"fmt"
	"os"

	"swvec"
	"swvec/internal/seqio"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "database sequence count")
		out     = flag.String("o", "", "output FASTA path (default stdout)")
		seed    = flag.Int64("seed", 42, "generator seed")
		queries = flag.Bool("queries", false, "emit the standard 10-query set instead of a database")
		homolog = flag.Int("homolog", 0, "emit a sequence of this length plus a mutated homolog")
		subRate = flag.Float64("sub", 0.1, "substitution rate for -homolog")
		indel   = flag.Float64("indel", 0.02, "indel rate for -homolog")
	)
	flag.Parse()

	var seqs []swvec.Sequence
	switch {
	case *queries:
		seqs = swvec.GenerateQueries(*seed)
	case *homolog > 0:
		g := seqio.NewGenerator(*seed)
		src := g.Protein("SRC", *homolog)
		rel := g.Related(src, "HOMOLOG", *subRate, *indel)
		seqs = []swvec.Sequence{src, rel}
	default:
		seqs = swvec.GenerateDatabase(*seed, *n)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := swvec.WriteFasta(w, seqs); err != nil {
		fmt.Fprintf(os.Stderr, "swgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		var total int64
		for i := range seqs {
			total += int64(seqs[i].Len())
		}
		fmt.Printf("wrote %d sequences (%d residues) to %s\n", len(seqs), total, *out)
	}
}
