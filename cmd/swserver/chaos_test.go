//go:build failpoint

package main

import (
	"strings"
	"testing"
	"time"

	"swvec"
	"swvec/internal/failpoint"
)

// TestServerBreakerTripsAndRecovers drives the full breaker lifecycle
// over the wire: injected compute faults fail two batches and trip the
// breaker, the next request is fast-rejected at admission, and after
// the cooldown a probe batch (fault exhausted) closes the breaker
// again.
func TestServerBreakerTripsAndRecovers(t *testing.T) {
	defer failpoint.DisableAll()
	db := swvec.GenerateDatabase(55, 16)
	_, addr := startServerWithConfig(t, db, serverConfig{
		batchSize: 1, window: time.Millisecond, reqTimeout: 30 * time.Second,
		maxConns: 4, idle: time.Minute,
		breakFails: 2, breakCooldown: 300 * time.Millisecond,
	})
	if err := failpoint.Enable("swserver/search", "error(compute down):first=2"); err != nil {
		t.Fatal(err)
	}
	c := dialTest(t, addr)
	frag := string(db[0].Residues[:40])

	for _, id := range []string{"fail1", "fail2"} {
		resp := c.roundTrip(request{ID: id, Residues: frag, Top: 1})
		if resp.Code != codeInternal || !strings.Contains(resp.Error, "compute down") {
			t.Fatalf("%s: got %+v, want internal compute-down error", id, resp)
		}
	}

	// Two consecutive batch failures have tripped the breaker: the next
	// request must be refused at admission, before any compute.
	resp := c.roundTrip(request{ID: "rejected", Residues: frag, Top: 1})
	if resp.Code != codeUnavailable {
		t.Fatalf("open breaker answered %+v, want code %q", resp, codeUnavailable)
	}

	// After the cooldown the next batch is the half-open probe; the
	// injected fault is exhausted, so it succeeds and closes the
	// breaker.
	time.Sleep(500 * time.Millisecond)
	resp = c.roundTrip(request{ID: "probe", Residues: frag, Top: 1})
	if resp.Error != "" || len(resp.Hits) == 0 {
		t.Fatalf("probe request got %+v, want hits", resp)
	}
	resp = c.roundTrip(request{ID: "after", Residues: frag, Top: 1})
	if resp.Error != "" || len(resp.Hits) == 0 {
		t.Fatalf("post-recovery request got %+v, want hits", resp)
	}

	stats := swvec.GlobalStats()
	if stats.BreakerTrips == 0 {
		t.Error("BreakerTrips counter never incremented")
	}
	if stats.BreakerRejected == 0 {
		t.Error("BreakerRejected counter never incremented")
	}
}

// TestServerRequestFaultIsIsolated: a fault injected on the request
// admission path poisons only that request — the connection and the
// next request work normally.
func TestServerRequestFaultIsIsolated(t *testing.T) {
	defer failpoint.DisableAll()
	db := swvec.GenerateDatabase(56, 8)
	_, addr := startServerWithConfig(t, db, serverConfig{
		batchSize: 2, window: 20 * time.Millisecond, reqTimeout: 30 * time.Second,
		maxConns: 4, idle: time.Minute,
	})
	if err := failpoint.Enable("swserver/request", "error(request glitch):first=1"); err != nil {
		t.Fatal(err)
	}
	c := dialTest(t, addr)
	frag := string(db[0].Residues[:40])

	resp := c.roundTrip(request{ID: "glitched", Residues: frag, Top: 1})
	if resp.Code != codeInternal || !strings.Contains(resp.Error, "request glitch") {
		t.Fatalf("got %+v, want the injected request fault", resp)
	}
	resp = c.roundTrip(request{ID: "fine", Residues: frag, Top: 1})
	if resp.Error != "" || len(resp.Hits) == 0 {
		t.Fatalf("request after the fault got %+v, want hits", resp)
	}
}
