package main

import (
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker guarding the batch
// compute path. It exists so a persistently failing dependency (a
// poisoned database region, an injected fault storm, a compute layer
// that panics on every batch) degrades into fast, explicit rejections
// instead of a queue full of requests each burning a full compute
// deadline before failing.
//
// States: closed (normal), open (rejecting until the cooldown passes),
// half-open (one probe batch in flight decides whether to close or
// reopen).
type breaker struct {
	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool // half-open: the single probe is in flight
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// rejecting is the cheap admission-side check: true while the breaker
// is open and still cooling down, or half-open with the probe already
// taken. Requests refused here never reach the queue.
func (b *breaker) rejecting() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return b.now().Sub(b.openedAt) < b.cooldown
	case breakerHalfOpen:
		return b.probing
	}
	return false
}

// allow reports whether a batch may run. An open breaker past its
// cooldown transitions to half-open and admits exactly one probe;
// everything else waits for the probe's verdict.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess reports a completed batch; a half-open probe's success
// closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure reports a failed batch and returns true when this failure
// tripped the breaker open (from closed after threshold consecutive
// failures, or a failed half-open probe).
func (b *breaker) onFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true
		}
	}
	return false
}
