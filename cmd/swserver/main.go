// Command swserver is the centralized alignment server of usage
// scenario 2 (§II-C, §IV-G): clients submit protein queries over TCP,
// the server accumulates them into batches, aligns each batch against
// its database with the multi-query engine, and returns the top hits.
// Accumulating queries before computing is the efficiency lever the
// paper highlights for this scenario.
//
// The server is hardened for unattended operation: per-request compute
// deadlines, a max-connections semaphore, idle-connection timeouts,
// graceful shutdown on SIGINT/SIGTERM that flushes the pending
// accumulation window, structured per-batch log lines, and an opt-in
// admin port serving /debug/vars (including the swvec.search pipeline
// counters) and pprof.
//
// It also protects itself against overload and a failing compute layer
// (DESIGN.md §12): requests beyond the body or sequence size limits are
// refused with structured errors, a full queue sheds new requests
// immediately (429-style) instead of stalling the connection, repeated
// batch failures trip a circuit breaker that fast-rejects until a
// cooldown probe succeeds, and sustained queue pressure switches
// batches to a reduced-capacity degraded aligner. Every protective
// action is counted in the swvec.search expvar counters.
//
// Server:  swserver -listen :7979 -db db.fasta [-batch 8] [-window 50ms]
//
//	[-request-timeout 30s] [-max-conns 256] [-idle-timeout 2m]
//	[-max-seq 100000] [-max-body 8388608] [-breaker-failures 3]
//	[-breaker-cooldown 5s] [-admin 127.0.0.1:7980]
//
// Client:  swserver -connect localhost:7979 -query q.fasta [-top 5]
//
//	[-timeout 30s]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"

	"swvec"
	"swvec/internal/cluster"
	"swvec/internal/failpoint"
	"swvec/internal/metrics"
)

// The wire types and error codes are the cluster protocol
// (internal/cluster/wire.go): swserver speaks it standalone to its own
// clients and, in shard mode, downstream to an swrouter.
type (
	request  = cluster.Request
	hit      = cluster.Hit
	response = cluster.Response
)

const (
	codeBadRequest  = cluster.CodeBadRequest
	codeTooLarge    = cluster.CodeTooLarge
	codeOverloaded  = cluster.CodeOverloaded
	codeUnavailable = cluster.CodeUnavailable
	codeShutdown    = cluster.CodeShutdown
	codeInternal    = cluster.CodeInternal
)

func main() {
	var (
		listen     = flag.String("listen", "", "serve on this address (server mode)")
		connect    = flag.String("connect", "", "connect to this address (client mode)")
		dbPath     = flag.String("db", "", "database FASTA (server mode)")
		genDB      = flag.Int("gen-db", 0, "serve a synthetic database of this size instead of -db")
		batch      = flag.Int("batch", 8, "queries to accumulate before computing")
		window     = flag.Duration("window", 50*time.Millisecond, "maximum accumulation delay")
		query      = flag.String("query", "", "query FASTA (client mode; all records are submitted)")
		top        = flag.Int("top", 5, "hits per query (client mode)")
		threads    = flag.Int("threads", 0, "worker threads (server mode)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-batch compute deadline (0 disables)")
		maxConns   = flag.Int("max-conns", 256, "maximum concurrent client connections")
		idle       = flag.Duration("idle-timeout", 2*time.Minute, "per-connection read deadline (0 disables)")
		maxSeq     = flag.Int("max-seq", 100000, "maximum query residues per request (0 disables)")
		maxBody    = flag.Int("max-body", 8<<20, "maximum request line size in bytes")
		brkFails   = flag.Int("breaker-failures", 3, "consecutive batch failures that open the circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "circuit-breaker open duration before a probe batch")
		admin      = flag.String("admin", "", "opt-in admin address serving /debug/vars and pprof")
		timeout    = flag.Duration("timeout", 30*time.Second, "client-mode dial and I/O deadline (0 disables)")
		backendStr = flag.String("backend", "auto", "execution backend: auto (native), modeled, or native")
		kernelStr  = flag.String("kernel", "auto", "kernel family: auto (per-query planner), diagonal, striped, or lazyf")
		shardIdx   = flag.Int("shard-index", 0, "serve only shard shard-index of a shard-count cluster")
		shardCount = flag.Int("shard-count", 0, "total shards in the cluster (0 = standalone)")
	)
	flag.Parse()

	backend, berr := swvec.ParseBackend(*backendStr)
	if berr != nil {
		fmt.Fprintf(os.Stderr, "swserver: %v\n", berr)
		os.Exit(2)
	}

	kernel, kerr := swvec.ParseKernel(*kernelStr)
	if kerr != nil {
		fmt.Fprintf(os.Stderr, "swserver: %v\n", kerr)
		os.Exit(2)
	}

	switch {
	case *listen != "":
		runServer(*listen, *dbPath, *genDB, *threads, *admin, *shardIdx, *shardCount, serverConfig{
			batchSize:     *batch,
			window:        *window,
			reqTimeout:    *reqTimeout,
			maxConns:      *maxConns,
			idle:          *idle,
			maxSeq:        *maxSeq,
			maxBody:       *maxBody,
			breakFails:    *brkFails,
			breakCooldown: *brkCool,
			threads:       *threads,
			backend:       backend,
			kernel:        kernel,
		})
	case *connect != "":
		os.Exit(runClient(*connect, *query, *top, *timeout))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// pending couples a request with its reply channel.
type pending struct {
	req   request
	reply chan response
}

// serverConfig bundles the hardening knobs.
type serverConfig struct {
	batchSize     int
	window        time.Duration
	reqTimeout    time.Duration // per-batch compute deadline, 0 = none
	maxConns      int
	idle          time.Duration // per-connection read deadline, 0 = none
	maxSeq        int           // max residues per query, 0 = none
	maxBody       int           // max request line bytes, 0 = default
	breakFails    int           // breaker threshold, 0 = default
	breakCooldown time.Duration // breaker cooldown, 0 = default
	threads       int           // worker threads, informs the degraded aligner
	backend       swvec.Backend // execution backend for both aligners
	kernel        swvec.Kernel  // kernel family for both aligners
}

// server accumulates client queries into batches and aligns them. Its
// shutdown protocol is: close the listener, expire every connection's
// read deadline so scanners stop accepting new requests, wait for the
// readers to retire, then close the queue — the batcher drains
// whatever the accumulation window was holding (the flush), replies
// flow back, and the connection writers finish.
type server struct {
	al *swvec.Aligner
	// alDeg is the reduced-capacity aligner batches fall back to under
	// queue pressure: fewer threads and a depth-1, 256-bit pipeline cap
	// the compute layer's memory and CPU footprint so the server keeps
	// absorbing and shedding load instead of thrashing.
	alDeg *swvec.Aligner
	brk   *cluster.Breaker
	db    []swvec.Sequence
	cfg   serverConfig

	queue       chan pending
	ln          net.Listener
	closed      chan struct{} // closed when Shutdown begins
	batcherDone chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	readWG sync.WaitGroup // connection read loops (may still enqueue)
	connWG sync.WaitGroup // whole connection handlers (incl. replies)

	shutdownOnce sync.Once
	logf         func(format string, args ...any)
}

func newServer(al *swvec.Aligner, db []swvec.Sequence, ln net.Listener, cfg serverConfig) *server {
	if cfg.batchSize < 1 {
		cfg.batchSize = 1
	}
	if cfg.maxConns < 1 {
		cfg.maxConns = 1
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 8 << 20
	}
	if cfg.breakFails <= 0 {
		cfg.breakFails = 3
	}
	if cfg.breakCooldown <= 0 {
		cfg.breakCooldown = 5 * time.Second
	}
	alDeg := newDegradedAligner(cfg.threads, cfg.backend, cfg.kernel)
	if alDeg == nil {
		alDeg = al
	}
	return &server{
		al:          al,
		alDeg:       alDeg,
		brk:         cluster.NewBreaker(cfg.breakFails, cfg.breakCooldown),
		db:          db,
		ln:          ln,
		cfg:         cfg,
		queue:       make(chan pending, 4*cfg.batchSize),
		closed:      make(chan struct{}),
		batcherDone: make(chan struct{}),
		conns:       map[net.Conn]struct{}{},
		logf:        log.Printf,
	}
}

// newDegradedAligner builds the degraded-mode aligner: half the
// configured threads (at least one), a depth-1 pipeline, and the
// 256-bit width. Scores are identical to the primary aligner's — only
// throughput and footprint shrink.
func newDegradedAligner(threads int, backend swvec.Backend, kernel swvec.Kernel) *swvec.Aligner {
	n := threads
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n /= 2
	if n < 1 {
		n = 1
	}
	al, err := swvec.New(
		swvec.WithThreads(n),
		swvec.WithPipelineDepth(1),
		swvec.WithVectorWidth(256),
		swvec.WithLengthSortedBatches(),
		swvec.WithBackend(backend),
		swvec.WithKernel(kernel),
	)
	if err != nil {
		return nil
	}
	return al
}

// serve accepts connections on the server's listener until Shutdown
// closes it. The max-conns semaphore applies backpressure: when full,
// accepted connections wait before being served.
func (s *server) serve() {
	ln := s.ln
	go s.batcher()
	sem := make(chan struct{}, s.cfg.maxConns)
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("level=warn event=accept_error err=%q", err)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-s.closed:
			conn.Close()
			return
		}
		s.track(conn, true)
		s.readWG.Add(1)
		s.connWG.Add(1)
		go func() {
			defer func() {
				s.track(conn, false)
				s.connWG.Done()
				<-sem
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.mu.Unlock()
}

func (s *server) isShutdown() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// expireReads sets every live connection's read deadline to now so
// blocked scanners return. Shutdown re-applies it periodically to
// close the race with a handler that extended its idle deadline
// between the flag check and the first expiry.
func (s *server) expireReads() {
	now := time.Now()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

// Shutdown runs the graceful stop: no new connections, no new
// requests, flush the pending accumulation window, deliver every
// reply. ctx bounds the wait; on expiry the remaining work is
// abandoned. Idempotent.
func (s *server) Shutdown(ctx context.Context) {
	s.shutdownOnce.Do(func() {
		close(s.closed)
		s.ln.Close()

		readsDone := make(chan struct{})
		go func() {
			s.readWG.Wait()
			close(readsDone)
		}()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		s.expireReads()
	waitReads:
		for {
			select {
			case <-readsDone:
				break waitReads
			case <-tick.C:
				s.expireReads()
			case <-ctx.Done():
				return
			}
		}

		// No reader can enqueue anymore: closing the queue makes the
		// batcher process whatever the window was still accumulating
		// and exit — the flush.
		close(s.queue)
		select {
		case <-s.batcherDone:
		case <-ctx.Done():
			return
		}

		handlersDone := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(handlersDone)
		}()
		select {
		case <-handlersDone:
		case <-ctx.Done():
		}
	})
}

// batcher accumulates requests and runs the multi-query engine once
// per batch — the scenario-2 design. A closed queue breaks the fill
// immediately, so shutdown flushes the pending window instead of
// waiting it out.
func (s *server) batcher() {
	defer close(s.batcherDone)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []pending{first}
		timer := time.NewTimer(s.cfg.window)
	fill:
		for len(batch) < s.cfg.batchSize {
			select {
			case p, ok := <-s.queue:
				if !ok {
					break fill
				}
				batch = append(batch, p)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		s.process(batch)
	}
}

// process aligns one accumulated batch under the per-request deadline
// and answers every query, including per-request errors when the
// compute is cut short. It is also where the overload protections bind
// to the compute layer: an open circuit breaker refuses the batch
// outright, queue pressure switches to the degraded aligner, and the
// batch's outcome feeds the breaker.
func (s *server) process(batch []pending) {
	if !s.brk.Allow() {
		metrics.Global.BreakerRejected.Add(int64(len(batch)))
		for _, p := range batch {
			p.reply <- response{ID: p.req.ID, Error: "service unavailable: circuit breaker open", Code: codeUnavailable}
		}
		return
	}
	queries := make([][]byte, len(batch))
	for i, p := range batch {
		queries[i] = []byte(p.req.Residues)
	}
	ctx := context.Background()
	if s.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.reqTimeout)
		defer cancel()
	}
	al := s.al
	degraded := false
	if q := len(s.queue); q >= 3*cap(s.queue)/4 {
		// Sustained pressure: the queue is still three-quarters full
		// after accumulation. Cap the compute footprint so connection
		// handling and shedding stay responsive.
		al, degraded = s.alDeg, true
		metrics.Global.Degraded.Add(1)
		s.logf("level=warn event=degraded queue_len=%d queue_cap=%d", q, cap(s.queue))
	}
	res, err := searchBatch(ctx, al, queries, s.db)
	if err != nil {
		if s.brk.OnFailure() {
			metrics.Global.BreakerTrips.Add(1)
			s.logf("level=warn event=breaker_open failures=%d cooldown=%s", s.cfg.breakFails, s.cfg.breakCooldown)
		}
		s.logf("level=error event=batch queries=%d queue_len=%d err=%q",
			len(batch), len(s.queue), err)
		for _, p := range batch {
			p.reply <- response{ID: p.req.ID, Error: err.Error(), Code: codeInternal}
		}
		return
	}
	s.brk.OnSuccess()
	s.logf("level=info event=batch queries=%d cells=%d elapsed_ms=%.1f gcups=%.3f rescued=%d quarantined=%d degraded=%t queue_len=%d",
		len(batch), res.Cells, float64(res.Elapsed.Microseconds())/1000, res.GCUPS(),
		res.Rescued, len(res.Quarantined), degraded, len(s.queue))
	for qi, p := range batch {
		n := p.req.Top
		if n <= 0 {
			n = 5
		}
		idx := make([]int, len(s.db))
		for i := range idx {
			idx[i] = i
		}
		scores := res.Scores[qi]
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		if n > len(idx) {
			n = len(idx)
		}
		hits := make([]hit, n)
		for i := 0; i < n; i++ {
			hits[i] = hit{SeqID: s.db[idx[i]].ID, Score: scores[idx[i]]}
		}
		p.reply <- response{ID: p.req.ID, Hits: hits}
	}
}

// searchBatch is the breaker-guarded compute call, with a fault
// injection site for the chaos suite.
func searchBatch(ctx context.Context, al *swvec.Aligner, queries [][]byte, db []swvec.Sequence) (*swvec.MultiSearchResult, error) {
	if err := failpoint.Inject("swserver/search"); err != nil {
		return nil, err
	}
	return al.SearchAllContext(ctx, queries, db)
}

// serveConn reads newline-delimited JSON requests until the client
// disconnects, the idle deadline expires, or shutdown expires the read
// deadline, then waits for every outstanding reply before closing.
// Admission control happens here, before a request can occupy a queue
// slot: oversized or invalid requests are refused with structured
// errors, an open circuit breaker fast-rejects, and a full queue sheds
// the request immediately instead of stalling the connection.
func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	initial := 64 << 10
	if initial > s.cfg.maxBody {
		initial = s.cfg.maxBody
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, initial), s.cfg.maxBody)
	enc := json.NewEncoder(conn)
	var mu sync.Mutex
	var wg sync.WaitGroup
	respond := func(resp response) {
		mu.Lock()
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		enc.Encode(resp)
		mu.Unlock()
	}
	readsDone := false
	for {
		if s.isShutdown() {
			break
		} else if s.cfg.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.idle))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				// The scanner cannot resynchronize mid-line, so report
				// the limit and drop the connection.
				metrics.Global.Oversized.Add(1)
				respond(response{Error: fmt.Sprintf("request exceeds %d-byte line limit", s.cfg.maxBody), Code: codeTooLarge})
			}
			break
		}
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			respond(response{Error: fmt.Sprintf("bad request: %v", err), Code: codeBadRequest})
			continue
		}
		if req.Type == cluster.TypePing {
			// Liveness ping: echo the ID before any admission gate —
			// no validation, no breaker, no queue slot — so the health
			// prober measures "is this process up and accepting", not
			// how deep its compute queue runs. The write deadline in
			// respond bounds the reply like every other response.
			respond(response{ID: req.ID})
			continue
		}
		if req.Type != cluster.TypeSearch {
			respond(response{ID: req.ID, Error: fmt.Sprintf("unknown request type %q", req.Type), Code: codeBadRequest})
			continue
		}
		if err := failpoint.Inject("swserver/request"); err != nil {
			respond(response{ID: req.ID, Error: err.Error(), Code: codeInternal})
			continue
		}
		if s.cfg.maxSeq > 0 && len(req.Residues) > s.cfg.maxSeq {
			metrics.Global.Oversized.Add(1)
			respond(response{ID: req.ID, Error: fmt.Sprintf("query has %d residues, limit is %d", len(req.Residues), s.cfg.maxSeq), Code: codeTooLarge})
			continue
		}
		if err := s.al.ValidateSequence([]byte(req.Residues)); err != nil {
			// Reject at admission so one bad query cannot poison the
			// batch it would have joined.
			metrics.Global.Malformed.Add(1)
			respond(response{ID: req.ID, Error: err.Error(), Code: codeBadRequest})
			continue
		}
		if s.brk.Rejecting() {
			metrics.Global.BreakerRejected.Add(1)
			respond(response{ID: req.ID, Error: "service unavailable: circuit breaker open", Code: codeUnavailable})
			continue
		}
		reply := make(chan response, 1)
		select {
		case s.queue <- pending{req: req, reply: reply}:
		case <-s.closed:
			// Shutdown already began; the queue may close at any
			// moment, so refuse instead of racing the close.
			respond(response{ID: req.ID, Error: "server shutting down", Code: codeShutdown})
			s.readWG.Done()
			readsDone = true
		default:
			// Queue full: shed now rather than block the read loop
			// behind compute that is already saturated.
			metrics.Global.Shed.Add(1)
			s.logf("level=warn event=shed queue_len=%d", len(s.queue))
			respond(response{ID: req.ID, Error: "server overloaded: request queue full", Code: codeOverloaded})
			continue
		}
		if readsDone {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-reply
			mu.Lock()
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			enc.Encode(resp)
			mu.Unlock()
		}()
	}
	if !readsDone {
		s.readWG.Done()
	}
	wg.Wait()
}

// startAdmin serves /debug/vars (expvar, including the swvec.search
// pipeline counters) and pprof on the opt-in admin address.
func startAdmin(addr string, logf func(string, ...any)) {
	swvec.PublishMetrics()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logf("level=info event=admin_listen addr=%s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logf("level=error event=admin_error err=%q", err)
		}
	}()
}

func runServer(addr, dbPath string, genDB, threads int, admin string, shardIdx, shardCount int, cfg serverConfig) {
	var db []swvec.Sequence
	if genDB > 0 {
		db = swvec.GenerateDatabase(42, genDB)
	} else {
		if dbPath == "" {
			fatal("server mode needs -db or -gen-db")
		}
		f, err := os.Open(dbPath)
		if err != nil {
			fatal("%v", err)
		}
		seqs, rep, rerr := swvec.DecodeFasta(f, swvec.DecodeOptions{})
		f.Close()
		if rerr != nil {
			fatal("%v", rerr)
		}
		if len(rep.Skipped) > 0 {
			metrics.Global.Malformed.Add(int64(rep.Malformed))
			metrics.Global.Oversized.Add(int64(rep.Oversized))
			log.Printf("level=warn event=db_skipped records=%d malformed=%d oversized=%d",
				len(rep.Skipped), rep.Malformed, rep.Oversized)
		}
		db = seqs
	}
	if shardCount > 0 {
		// Shard mode: keep only this process's consistent-hash slice of
		// the database. Every process of the cluster — router included —
		// computes the same map from (shard count, sequence IDs), so the
		// slice is stable across restarts and no shard files change
		// hands.
		if shardIdx < 0 || shardIdx >= shardCount {
			fatal("shard-index %d out of range for shard-count %d", shardIdx, shardCount)
		}
		full := len(db)
		db = cluster.NewShardMap(shardCount).Slice(db, shardIdx)
		if len(db) == 0 {
			fatal("shard %d/%d owns no sequences of the %d-sequence database", shardIdx, shardCount, full)
		}
		log.Printf("level=info event=shard index=%d count=%d seqs=%d of=%d residues=%d",
			shardIdx, shardCount, len(db), full, swvec.TotalResidues(db))
	}
	al, err := swvec.New(swvec.WithThreads(threads), swvec.WithLengthSortedBatches(), swvec.WithBackend(cfg.backend), swvec.WithKernel(cfg.kernel))
	if err != nil {
		fatal("%v", err)
	}
	if admin != "" {
		startAdmin(admin, log.Printf)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	srv := newServer(al, db, ln, cfg)
	log.Printf("level=info event=listen addr=%s db_seqs=%d batch=%d window=%s max_conns=%d request_timeout=%s",
		ln.Addr(), len(db), cfg.batchSize, cfg.window, cfg.maxConns, cfg.reqTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("level=info event=shutdown signal=%s", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	srv.serve()
	// serve returns once Shutdown has closed the listener, but the
	// flush and the reply writers are still in flight on the signal
	// goroutine. Calling Shutdown again blocks until the first call
	// completes (sync.Once semantics), so the process cannot exit —
	// tearing down the connections — before every reply is written.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 35*time.Second)
	srv.Shutdown(waitCtx)
	waitCancel()
	stats := swvec.GlobalStats()
	log.Printf("level=info event=exit searches=%d cells=%d rescued=%d",
		stats.Searches, stats.Cells(), stats.Saturated8)
}

// runClient submits every query record and prints one line per
// response. Connection, deadline, and per-request failures are
// reported in each request's Error field instead of aborting the whole
// run; the exit code is 1 if any request failed.
func runClient(addr, queryPath string, top int, timeout time.Duration) int {
	if queryPath == "" {
		fatal("client mode needs -query")
	}
	f, err := os.Open(queryPath)
	if err != nil {
		fatal("%v", err)
	}
	queries, rerr := swvec.ReadFasta(f)
	f.Close()
	if rerr != nil {
		fatal("%v", rerr)
	}

	results := make(map[string]response, len(queries))
	fail := func(id, format string, args ...any) {
		results[id] = response{ID: id, Error: fmt.Sprintf(format, args...)}
	}

	var conn net.Conn
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	sent := 0
	if err != nil {
		for i := range queries {
			fail(queries[i].ID, "connect: %v", err)
		}
	} else {
		defer conn.Close()
		enc := json.NewEncoder(conn)
		for i := range queries {
			if timeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(timeout))
			}
			if err := enc.Encode(request{ID: queries[i].ID, Residues: string(queries[i].Residues), Top: top}); err != nil {
				fail(queries[i].ID, "send: %v", err)
				continue
			}
			sent++
		}
		dec := json.NewDecoder(bufio.NewReader(conn))
		for i := 0; i < sent; i++ {
			if timeout > 0 {
				conn.SetReadDeadline(time.Now().Add(timeout))
			}
			var resp response
			if err := dec.Decode(&resp); err != nil {
				// The stream is dead: every sent-but-unanswered query
				// gets the error.
				for _, q := range queries {
					if _, done := results[q.ID]; !done {
						fail(q.ID, "recv: %v", err)
					}
				}
				break
			}
			results[resp.ID] = resp
		}
	}

	exit := 0
	for i := range queries {
		resp, ok := results[queries[i].ID]
		if !ok {
			resp = response{ID: queries[i].ID, Error: "no response received"}
		}
		if resp.Error != "" {
			exit = 1
			fmt.Printf("%s: error: %s\n", resp.ID, resp.Error)
			continue
		}
		fmt.Printf("%s:\n", resp.ID)
		for rank, h := range resp.Hits {
			fmt.Printf("  %2d. score %5d  %s\n", rank+1, h.Score, h.SeqID)
		}
	}
	return exit
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "swserver: "+format+"\n", args...)
	os.Exit(1)
}
