// Command swserver is the centralized alignment server of usage
// scenario 2 (§II-C, §IV-G): clients submit protein queries over TCP,
// the server accumulates them into batches, aligns each batch against
// its database with the multi-query engine, and returns the top hits.
// Accumulating queries before computing is the efficiency lever the
// paper highlights for this scenario.
//
// The server is hardened for unattended operation: per-request compute
// deadlines, a max-connections semaphore, idle-connection timeouts,
// graceful shutdown on SIGINT/SIGTERM that flushes the pending
// accumulation window, structured per-batch log lines, and an opt-in
// admin port serving /debug/vars (including the swvec.search pipeline
// counters) and pprof.
//
// Server:  swserver -listen :7979 -db db.fasta [-batch 8] [-window 50ms]
//
//	[-request-timeout 30s] [-max-conns 256] [-idle-timeout 2m]
//	[-admin 127.0.0.1:7980]
//
// Client:  swserver -connect localhost:7979 -query q.fasta [-top 5]
//
//	[-timeout 30s]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"swvec"
)

// request is one submitted query.
type request struct {
	ID       string `json:"id"`
	Residues string `json:"residues"`
	Top      int    `json:"top"`
}

// hit is one database match.
type hit struct {
	SeqID string `json:"seq_id"`
	Score int32  `json:"score"`
}

// response answers one request.
type response struct {
	ID    string `json:"id"`
	Hits  []hit  `json:"hits"`
	Error string `json:"error,omitempty"`
}

func main() {
	var (
		listen     = flag.String("listen", "", "serve on this address (server mode)")
		connect    = flag.String("connect", "", "connect to this address (client mode)")
		dbPath     = flag.String("db", "", "database FASTA (server mode)")
		genDB      = flag.Int("gen-db", 0, "serve a synthetic database of this size instead of -db")
		batch      = flag.Int("batch", 8, "queries to accumulate before computing")
		window     = flag.Duration("window", 50*time.Millisecond, "maximum accumulation delay")
		query      = flag.String("query", "", "query FASTA (client mode; all records are submitted)")
		top        = flag.Int("top", 5, "hits per query (client mode)")
		threads    = flag.Int("threads", 0, "worker threads (server mode)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-batch compute deadline (0 disables)")
		maxConns   = flag.Int("max-conns", 256, "maximum concurrent client connections")
		idle       = flag.Duration("idle-timeout", 2*time.Minute, "per-connection read deadline (0 disables)")
		admin      = flag.String("admin", "", "opt-in admin address serving /debug/vars and pprof")
		timeout    = flag.Duration("timeout", 30*time.Second, "client-mode dial and I/O deadline (0 disables)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*listen, *dbPath, *genDB, *threads, *admin, serverConfig{
			batchSize:  *batch,
			window:     *window,
			reqTimeout: *reqTimeout,
			maxConns:   *maxConns,
			idle:       *idle,
		})
	case *connect != "":
		os.Exit(runClient(*connect, *query, *top, *timeout))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// pending couples a request with its reply channel.
type pending struct {
	req   request
	reply chan response
}

// serverConfig bundles the hardening knobs.
type serverConfig struct {
	batchSize  int
	window     time.Duration
	reqTimeout time.Duration // per-batch compute deadline, 0 = none
	maxConns   int
	idle       time.Duration // per-connection read deadline, 0 = none
}

// server accumulates client queries into batches and aligns them. Its
// shutdown protocol is: close the listener, expire every connection's
// read deadline so scanners stop accepting new requests, wait for the
// readers to retire, then close the queue — the batcher drains
// whatever the accumulation window was holding (the flush), replies
// flow back, and the connection writers finish.
type server struct {
	al  *swvec.Aligner
	db  []swvec.Sequence
	cfg serverConfig

	queue       chan pending
	ln          net.Listener
	closed      chan struct{} // closed when Shutdown begins
	batcherDone chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	readWG sync.WaitGroup // connection read loops (may still enqueue)
	connWG sync.WaitGroup // whole connection handlers (incl. replies)

	shutdownOnce sync.Once
	logf         func(format string, args ...any)
}

func newServer(al *swvec.Aligner, db []swvec.Sequence, ln net.Listener, cfg serverConfig) *server {
	if cfg.batchSize < 1 {
		cfg.batchSize = 1
	}
	if cfg.maxConns < 1 {
		cfg.maxConns = 1
	}
	return &server{
		al:          al,
		db:          db,
		ln:          ln,
		cfg:         cfg,
		queue:       make(chan pending, 4*cfg.batchSize),
		closed:      make(chan struct{}),
		batcherDone: make(chan struct{}),
		conns:       map[net.Conn]struct{}{},
		logf:        log.Printf,
	}
}

// serve accepts connections on the server's listener until Shutdown
// closes it. The max-conns semaphore applies backpressure: when full,
// accepted connections wait before being served.
func (s *server) serve() {
	ln := s.ln
	go s.batcher()
	sem := make(chan struct{}, s.cfg.maxConns)
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("level=warn event=accept_error err=%q", err)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-s.closed:
			conn.Close()
			return
		}
		s.track(conn, true)
		s.readWG.Add(1)
		s.connWG.Add(1)
		go func() {
			defer func() {
				s.track(conn, false)
				s.connWG.Done()
				<-sem
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.mu.Unlock()
}

func (s *server) isShutdown() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// expireReads sets every live connection's read deadline to now so
// blocked scanners return. Shutdown re-applies it periodically to
// close the race with a handler that extended its idle deadline
// between the flag check and the first expiry.
func (s *server) expireReads() {
	now := time.Now()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

// Shutdown runs the graceful stop: no new connections, no new
// requests, flush the pending accumulation window, deliver every
// reply. ctx bounds the wait; on expiry the remaining work is
// abandoned. Idempotent.
func (s *server) Shutdown(ctx context.Context) {
	s.shutdownOnce.Do(func() {
		close(s.closed)
		s.ln.Close()

		readsDone := make(chan struct{})
		go func() {
			s.readWG.Wait()
			close(readsDone)
		}()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		s.expireReads()
	waitReads:
		for {
			select {
			case <-readsDone:
				break waitReads
			case <-tick.C:
				s.expireReads()
			case <-ctx.Done():
				return
			}
		}

		// No reader can enqueue anymore: closing the queue makes the
		// batcher process whatever the window was still accumulating
		// and exit — the flush.
		close(s.queue)
		select {
		case <-s.batcherDone:
		case <-ctx.Done():
			return
		}

		handlersDone := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(handlersDone)
		}()
		select {
		case <-handlersDone:
		case <-ctx.Done():
		}
	})
}

// batcher accumulates requests and runs the multi-query engine once
// per batch — the scenario-2 design. A closed queue breaks the fill
// immediately, so shutdown flushes the pending window instead of
// waiting it out.
func (s *server) batcher() {
	defer close(s.batcherDone)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []pending{first}
		timer := time.NewTimer(s.cfg.window)
	fill:
		for len(batch) < s.cfg.batchSize {
			select {
			case p, ok := <-s.queue:
				if !ok {
					break fill
				}
				batch = append(batch, p)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		s.process(batch)
	}
}

// process aligns one accumulated batch under the per-request deadline
// and answers every query, including per-request errors when the
// compute is cut short.
func (s *server) process(batch []pending) {
	queries := make([][]byte, len(batch))
	for i, p := range batch {
		queries[i] = []byte(p.req.Residues)
	}
	ctx := context.Background()
	if s.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.reqTimeout)
		defer cancel()
	}
	res, err := s.al.SearchAllContext(ctx, queries, s.db)
	if err != nil {
		s.logf("level=error event=batch queries=%d queue_len=%d err=%q",
			len(batch), len(s.queue), err)
		for _, p := range batch {
			p.reply <- response{ID: p.req.ID, Error: err.Error()}
		}
		return
	}
	s.logf("level=info event=batch queries=%d cells=%d elapsed_ms=%.1f gcups=%.3f rescued=%d queue_len=%d",
		len(batch), res.Cells, float64(res.Elapsed.Microseconds())/1000, res.GCUPS(),
		res.Rescued, len(s.queue))
	for qi, p := range batch {
		n := p.req.Top
		if n <= 0 {
			n = 5
		}
		idx := make([]int, len(s.db))
		for i := range idx {
			idx[i] = i
		}
		scores := res.Scores[qi]
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		if n > len(idx) {
			n = len(idx)
		}
		hits := make([]hit, n)
		for i := 0; i < n; i++ {
			hits[i] = hit{SeqID: s.db[idx[i]].ID, Score: scores[idx[i]]}
		}
		p.reply <- response{ID: p.req.ID, Hits: hits}
	}
}

// serveConn reads newline-delimited JSON requests until the client
// disconnects, the idle deadline expires, or shutdown expires the read
// deadline, then waits for every outstanding reply before closing.
func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	enc := json.NewEncoder(conn)
	var mu sync.Mutex
	var wg sync.WaitGroup
	readsDone := false
	for {
		if s.isShutdown() {
			break
		} else if s.cfg.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.idle))
		}
		if !sc.Scan() {
			break
		}
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			mu.Lock()
			enc.Encode(response{Error: fmt.Sprintf("bad request: %v", err)})
			mu.Unlock()
			continue
		}
		reply := make(chan response, 1)
		select {
		case s.queue <- pending{req: req, reply: reply}:
		case <-s.closed:
			// Shutdown already began; the queue may close at any
			// moment, so refuse instead of racing the close.
			mu.Lock()
			enc.Encode(response{ID: req.ID, Error: "server shutting down"})
			mu.Unlock()
			s.readWG.Done()
			readsDone = true
			break
		}
		if readsDone {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-reply
			mu.Lock()
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			enc.Encode(resp)
			mu.Unlock()
		}()
	}
	if !readsDone {
		s.readWG.Done()
	}
	wg.Wait()
}

// startAdmin serves /debug/vars (expvar, including the swvec.search
// pipeline counters) and pprof on the opt-in admin address.
func startAdmin(addr string, logf func(string, ...any)) {
	swvec.PublishMetrics()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logf("level=info event=admin_listen addr=%s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logf("level=error event=admin_error err=%q", err)
		}
	}()
}

func runServer(addr, dbPath string, genDB, threads int, admin string, cfg serverConfig) {
	var db []swvec.Sequence
	if genDB > 0 {
		db = swvec.GenerateDatabase(42, genDB)
	} else {
		if dbPath == "" {
			fatal("server mode needs -db or -gen-db")
		}
		f, err := os.Open(dbPath)
		if err != nil {
			fatal("%v", err)
		}
		var rerr error
		db, rerr = swvec.ReadFasta(f)
		f.Close()
		if rerr != nil {
			fatal("%v", rerr)
		}
	}
	al, err := swvec.New(swvec.WithThreads(threads), swvec.WithLengthSortedBatches())
	if err != nil {
		fatal("%v", err)
	}
	if admin != "" {
		startAdmin(admin, log.Printf)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	srv := newServer(al, db, ln, cfg)
	log.Printf("level=info event=listen addr=%s db_seqs=%d batch=%d window=%s max_conns=%d request_timeout=%s",
		ln.Addr(), len(db), cfg.batchSize, cfg.window, cfg.maxConns, cfg.reqTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("level=info event=shutdown signal=%s", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	srv.serve()
	// serve returns once Shutdown has closed the listener, but the
	// flush and the reply writers are still in flight on the signal
	// goroutine. Calling Shutdown again blocks until the first call
	// completes (sync.Once semantics), so the process cannot exit —
	// tearing down the connections — before every reply is written.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 35*time.Second)
	srv.Shutdown(waitCtx)
	waitCancel()
	stats := swvec.GlobalStats()
	log.Printf("level=info event=exit searches=%d cells=%d rescued=%d",
		stats.Searches, stats.Cells(), stats.Saturated8)
}

// runClient submits every query record and prints one line per
// response. Connection, deadline, and per-request failures are
// reported in each request's Error field instead of aborting the whole
// run; the exit code is 1 if any request failed.
func runClient(addr, queryPath string, top int, timeout time.Duration) int {
	if queryPath == "" {
		fatal("client mode needs -query")
	}
	f, err := os.Open(queryPath)
	if err != nil {
		fatal("%v", err)
	}
	queries, rerr := swvec.ReadFasta(f)
	f.Close()
	if rerr != nil {
		fatal("%v", rerr)
	}

	results := make(map[string]response, len(queries))
	fail := func(id, format string, args ...any) {
		results[id] = response{ID: id, Error: fmt.Sprintf(format, args...)}
	}

	var conn net.Conn
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	sent := 0
	if err != nil {
		for i := range queries {
			fail(queries[i].ID, "connect: %v", err)
		}
	} else {
		defer conn.Close()
		enc := json.NewEncoder(conn)
		for i := range queries {
			if timeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(timeout))
			}
			if err := enc.Encode(request{ID: queries[i].ID, Residues: string(queries[i].Residues), Top: top}); err != nil {
				fail(queries[i].ID, "send: %v", err)
				continue
			}
			sent++
		}
		dec := json.NewDecoder(bufio.NewReader(conn))
		for i := 0; i < sent; i++ {
			if timeout > 0 {
				conn.SetReadDeadline(time.Now().Add(timeout))
			}
			var resp response
			if err := dec.Decode(&resp); err != nil {
				// The stream is dead: every sent-but-unanswered query
				// gets the error.
				for _, q := range queries {
					if _, done := results[q.ID]; !done {
						fail(q.ID, "recv: %v", err)
					}
				}
				break
			}
			results[resp.ID] = resp
		}
	}

	exit := 0
	for i := range queries {
		resp, ok := results[queries[i].ID]
		if !ok {
			resp = response{ID: queries[i].ID, Error: "no response received"}
		}
		if resp.Error != "" {
			exit = 1
			fmt.Printf("%s: error: %s\n", resp.ID, resp.Error)
			continue
		}
		fmt.Printf("%s:\n", resp.ID)
		for rank, h := range resp.Hits {
			fmt.Printf("  %2d. score %5d  %s\n", rank+1, h.Score, h.SeqID)
		}
	}
	return exit
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "swserver: "+format+"\n", args...)
	os.Exit(1)
}
