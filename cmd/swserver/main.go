// Command swserver is the centralized alignment server of usage
// scenario 2 (§II-C, §IV-G): clients submit protein queries over TCP,
// the server accumulates them into batches, aligns each batch against
// its database with the multi-query engine, and returns the top hits.
// Accumulating queries before computing is the efficiency lever the
// paper highlights for this scenario.
//
// Server:  swserver -listen :7979 -db db.fasta [-batch 8] [-window 50ms]
// Client:  swserver -connect localhost:7979 -query q.fasta [-top 5]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"swvec"
)

// request is one submitted query.
type request struct {
	ID       string `json:"id"`
	Residues string `json:"residues"`
	Top      int    `json:"top"`
}

// hit is one database match.
type hit struct {
	SeqID string `json:"seq_id"`
	Score int32  `json:"score"`
}

// response answers one request.
type response struct {
	ID    string `json:"id"`
	Hits  []hit  `json:"hits"`
	Error string `json:"error,omitempty"`
}

func main() {
	var (
		listen  = flag.String("listen", "", "serve on this address (server mode)")
		connect = flag.String("connect", "", "connect to this address (client mode)")
		dbPath  = flag.String("db", "", "database FASTA (server mode)")
		genDB   = flag.Int("gen-db", 0, "serve a synthetic database of this size instead of -db")
		batch   = flag.Int("batch", 8, "queries to accumulate before computing")
		window  = flag.Duration("window", 50*time.Millisecond, "maximum accumulation delay")
		query   = flag.String("query", "", "query FASTA (client mode; all records are submitted)")
		top     = flag.Int("top", 5, "hits per query (client mode)")
		threads = flag.Int("threads", 0, "worker threads (server mode)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*listen, *dbPath, *genDB, *batch, *window, *threads)
	case *connect != "":
		runClient(*connect, *query, *top)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// pending couples a request with its reply channel.
type pending struct {
	req   request
	reply chan response
}

func runServer(addr, dbPath string, genDB, batchSize int, window time.Duration, threads int) {
	var db []swvec.Sequence
	if genDB > 0 {
		db = swvec.GenerateDatabase(42, genDB)
	} else {
		if dbPath == "" {
			fatal("server mode needs -db or -gen-db")
		}
		f, err := os.Open(dbPath)
		if err != nil {
			fatal("%v", err)
		}
		var rerr error
		db, rerr = swvec.ReadFasta(f)
		f.Close()
		if rerr != nil {
			fatal("%v", rerr)
		}
	}
	al, err := swvec.New(swvec.WithThreads(threads), swvec.WithLengthSortedBatches())
	if err != nil {
		fatal("%v", err)
	}

	queue := make(chan pending, 4*batchSize)
	go batcher(al, db, queue, batchSize, window)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("swserver: %d sequences loaded, accumulating up to %d queries per batch on %s\n",
		len(db), batchSize, addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "swserver: accept: %v\n", err)
			continue
		}
		go serveConn(conn, queue)
	}
}

// batcher accumulates requests and runs the multi-query engine once
// per batch — the scenario-2 design.
func batcher(al *swvec.Aligner, db []swvec.Sequence, queue <-chan pending, batchSize int, window time.Duration) {
	for {
		first, ok := <-queue
		if !ok {
			return
		}
		batch := []pending{first}
		timer := time.NewTimer(window)
	fill:
		for len(batch) < batchSize {
			select {
			case p, ok := <-queue:
				if !ok {
					break fill
				}
				batch = append(batch, p)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		process(al, db, batch)
	}
}

func process(al *swvec.Aligner, db []swvec.Sequence, batch []pending) {
	queries := make([][]byte, len(batch))
	for i, p := range batch {
		queries[i] = []byte(p.req.Residues)
	}
	res, err := al.SearchAll(queries, db)
	if err != nil {
		for _, p := range batch {
			p.reply <- response{ID: p.req.ID, Error: err.Error()}
		}
		return
	}
	fmt.Printf("swserver: batch of %d queries, %d cells, %.1f ms (%.3f GCUPS)\n",
		len(batch), res.Cells, float64(res.Elapsed.Microseconds())/1000, res.GCUPS())
	for qi, p := range batch {
		n := p.req.Top
		if n <= 0 {
			n = 5
		}
		idx := make([]int, len(db))
		for i := range idx {
			idx[i] = i
		}
		scores := res.Scores[qi]
		sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		if n > len(idx) {
			n = len(idx)
		}
		hits := make([]hit, n)
		for i := 0; i < n; i++ {
			hits[i] = hit{SeqID: db[idx[i]].ID, Score: scores[idx[i]]}
		}
		p.reply <- response{ID: p.req.ID, Hits: hits}
	}
}

func serveConn(conn net.Conn, queue chan<- pending) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	enc := json.NewEncoder(conn)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for sc.Scan() {
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			mu.Lock()
			enc.Encode(response{Error: fmt.Sprintf("bad request: %v", err)})
			mu.Unlock()
			continue
		}
		reply := make(chan response, 1)
		queue <- pending{req: req, reply: reply}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-reply
			mu.Lock()
			enc.Encode(resp)
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func runClient(addr, queryPath string, top int) {
	if queryPath == "" {
		fatal("client mode needs -query")
	}
	f, err := os.Open(queryPath)
	if err != nil {
		fatal("%v", err)
	}
	queries, rerr := swvec.ReadFasta(f)
	f.Close()
	if rerr != nil {
		fatal("%v", rerr)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal("%v", err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	for i := range queries {
		if err := enc.Encode(request{ID: queries[i].ID, Residues: string(queries[i].Residues), Top: top}); err != nil {
			fatal("send: %v", err)
		}
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	for range queries {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			fatal("recv: %v", err)
		}
		if resp.Error != "" {
			fmt.Printf("%s: error: %s\n", resp.ID, resp.Error)
			continue
		}
		fmt.Printf("%s:\n", resp.ID)
		for rank, h := range resp.Hits {
			fmt.Printf("  %2d. score %5d  %s\n", rank+1, h.Score, h.SeqID)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "swserver: "+format+"\n", args...)
	os.Exit(1)
}
