package main

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"swvec"
)

// startServerWithConfig is startTestServer with the overload knobs
// exposed.
func startServerWithConfig(t *testing.T, db []swvec.Sequence, cfg serverConfig) (*server, string) {
	t.Helper()
	al, err := swvec.New(swvec.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(al, db, ln, cfg)
	srv.logf = t.Logf
	go srv.serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

// testClient is a sequential request/response JSON client.
type testClient struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (c *testClient) roundTrip(req request) response {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// TestServerShedsWhenQueueFull drives serveConn over a pipe against a
// server whose queue is already at capacity (no batcher draining it):
// the request must be refused immediately with the overloaded code,
// not block the read loop.
func TestServerShedsWhenQueueFull(t *testing.T) {
	al, err := swvec.New(swvec.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	db := swvec.GenerateDatabase(50, 4)
	srv := newServer(al, db, nil, serverConfig{batchSize: 1})
	srv.logf = t.Logf
	for i := 0; i < cap(srv.queue); i++ {
		srv.queue <- pending{req: request{ID: "parked"}, reply: make(chan response, 1)}
	}
	shedBefore := swvec.GlobalStats().Shed

	client, serverSide := net.Pipe()
	defer client.Close()
	srv.readWG.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serveConn(serverSide)
	}()

	if err := json.NewEncoder(client).Encode(request{ID: "shed-me", Residues: "MKVLAW"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(client).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != codeOverloaded {
		t.Fatalf("response = %+v, want code %q", resp, codeOverloaded)
	}
	if got := swvec.GlobalStats().Shed; got != shedBefore+1 {
		t.Errorf("Shed counter went %d -> %d, want +1", shedBefore, got)
	}
	client.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn did not return after the client hung up")
	}
}

// TestServerRejectsOversizedSequence: a query past -max-seq gets a
// structured too_large refusal and never reaches the compute queue.
func TestServerRejectsOversizedSequence(t *testing.T) {
	db := swvec.GenerateDatabase(51, 8)
	_, addr := startServerWithConfig(t, db, serverConfig{
		batchSize: 2, window: 20 * time.Millisecond, reqTimeout: 30 * time.Second,
		maxConns: 4, idle: time.Minute, maxSeq: 50,
	})
	c := dialTest(t, addr)

	big := make([]byte, 100)
	for i := range big {
		big[i] = 'M'
	}
	resp := c.roundTrip(request{ID: "big", Residues: string(big)})
	if resp.Code != codeTooLarge || resp.Error == "" {
		t.Fatalf("oversized query got %+v, want code %q", resp, codeTooLarge)
	}

	// The connection stays usable and an in-limit query still works.
	frag := db[0].Residues
	if len(frag) > 50 {
		frag = frag[:50]
	}
	resp = c.roundTrip(request{ID: "ok", Residues: string(frag), Top: 1})
	if resp.Error != "" || len(resp.Hits) == 0 {
		t.Fatalf("in-limit query got %+v", resp)
	}
}

// TestServerBodyLimit: a request line past -max-body gets a too_large
// refusal and the connection is dropped (the scanner cannot recover
// mid-line).
func TestServerBodyLimit(t *testing.T) {
	db := swvec.GenerateDatabase(52, 8)
	_, addr := startServerWithConfig(t, db, serverConfig{
		batchSize: 2, window: 20 * time.Millisecond, reqTimeout: 30 * time.Second,
		maxConns: 4, idle: time.Minute, maxBody: 4096,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	line := make([]byte, 8192)
	for i := range line {
		line[i] = 'x'
	}
	line[len(line)-1] = '\n'
	// The server may close mid-write once the limit trips; the refusal
	// is still queued for us, so a write error here is fine.
	conn.Write(line)

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no structured refusal before close: %v", err)
	}
	if resp.Code != codeTooLarge {
		t.Fatalf("response = %+v, want code %q", resp, codeTooLarge)
	}
}

// TestServerRejectsInvalidResiduesCode upgrades the existing invalid
// residue check: the refusal must carry the bad_request code and must
// not poison other queries batched in the same window.
func TestServerRejectsInvalidResiduesCode(t *testing.T) {
	db := swvec.GenerateDatabase(53, 8)
	_, addr := startServerWithConfig(t, db, serverConfig{
		batchSize: 2, window: 20 * time.Millisecond, reqTimeout: 30 * time.Second,
		maxConns: 4, idle: time.Minute,
	})
	c := dialTest(t, addr)
	resp := c.roundTrip(request{ID: "bad", Residues: "MK1VLAW"})
	if resp.Code != codeBadRequest {
		t.Fatalf("invalid residues got %+v, want code %q", resp, codeBadRequest)
	}
	frag := db[1].Residues[:40]
	resp = c.roundTrip(request{ID: "good", Residues: string(frag), Top: 1})
	if resp.Error != "" || len(resp.Hits) == 0 {
		t.Fatalf("valid query after a rejected one got %+v", resp)
	}
}

// TestServerDegradedModeUnderPressure calls process directly with the
// queue held at three quarters full: the batch must run on the
// degraded aligner (counted) and still answer correctly.
func TestServerDegradedModeUnderPressure(t *testing.T) {
	al, err := swvec.New(swvec.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	db := swvec.GenerateDatabase(54, 16)
	srv := newServer(al, db, nil, serverConfig{batchSize: 1, reqTimeout: 30 * time.Second})
	srv.logf = t.Logf
	for i := 0; i < 3*cap(srv.queue)/4; i++ {
		srv.queue <- pending{req: request{ID: "parked"}, reply: make(chan response, 1)}
	}
	before := swvec.GlobalStats().Degraded

	frag := db[2].Residues
	if len(frag) > 60 {
		frag = frag[:60]
	}
	reply := make(chan response, 1)
	srv.process([]pending{{req: request{ID: "q", Residues: string(frag), Top: 1}, reply: reply}})
	resp := <-reply
	if resp.Error != "" {
		t.Fatalf("degraded batch failed: %+v", resp)
	}
	if len(resp.Hits) == 0 || resp.Hits[0].SeqID != db[2].ID {
		t.Fatalf("degraded batch hits = %+v, want self top hit", resp.Hits)
	}
	if got := swvec.GlobalStats().Degraded; got != before+1 {
		t.Errorf("Degraded counter went %d -> %d, want +1", before, got)
	}
}
