package main

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"swvec"
)

// startTestServer wires the batcher + connection handler on an
// ephemeral port, mirroring runServer without the fatal-exit paths.
func startTestServer(t *testing.T, db []swvec.Sequence, batchSize int, window time.Duration) string {
	t.Helper()
	al, err := swvec.New(swvec.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	queue := make(chan pending, 4*batchSize)
	go batcher(al, db, queue, batchSize, window)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(conn, queue)
		}
	}()
	return ln.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	db := swvec.GenerateDatabase(42, 48)
	addr := startTestServer(t, db, 4, 30*time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Submit three queries that are fragments of known database
	// entries; their top hit must be the source sequence.
	sources := []int{5, 17, 33}
	enc := json.NewEncoder(conn)
	for i, si := range sources {
		frag := db[si].Residues
		if len(frag) > 120 {
			frag = frag[:120]
		}
		if err := enc.Encode(request{ID: db[si].ID, Residues: string(frag), Top: 3}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}

	dec := json.NewDecoder(bufio.NewReader(conn))
	got := map[string]response{}
	for range sources {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		got[resp.ID] = resp
	}
	for _, si := range sources {
		resp, ok := got[db[si].ID]
		if !ok {
			t.Fatalf("no response for %s", db[si].ID)
		}
		if resp.Error != "" {
			t.Fatalf("%s: %s", resp.ID, resp.Error)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].SeqID != db[si].ID {
			t.Fatalf("%s: top hit %+v, want self", resp.ID, resp.Hits)
		}
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	db := swvec.GenerateDatabase(43, 8)
	addr := startTestServer(t, db, 2, 20*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("malformed request should produce an error response")
	}
}

func TestServerRejectsInvalidResidues(t *testing.T) {
	db := swvec.GenerateDatabase(44, 8)
	addr := startTestServer(t, db, 2, 20*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(request{ID: "bad", Residues: "MK1VLAW"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("invalid residues should produce an error response")
	}
}
