package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"swvec"
)

// startTestServer wires a full server (batcher + accept loop) on an
// ephemeral port, mirroring runServer without the fatal-exit paths.
func startTestServer(t *testing.T, db []swvec.Sequence, batchSize int, window time.Duration) (*server, string) {
	t.Helper()
	al, err := swvec.New(swvec.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(al, db, ln, serverConfig{
		batchSize:  batchSize,
		window:     window,
		reqTimeout: 30 * time.Second,
		maxConns:   16,
		idle:       time.Minute,
	})
	srv.logf = t.Logf
	go srv.serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	db := swvec.GenerateDatabase(42, 48)
	_, addr := startTestServer(t, db, 4, 30*time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Submit three queries that are fragments of known database
	// entries; their top hit must be the source sequence.
	sources := []int{5, 17, 33}
	enc := json.NewEncoder(conn)
	for _, si := range sources {
		frag := db[si].Residues
		if len(frag) > 120 {
			frag = frag[:120]
		}
		if err := enc.Encode(request{ID: db[si].ID, Residues: string(frag), Top: 3}); err != nil {
			t.Fatal(err)
		}
	}

	dec := json.NewDecoder(bufio.NewReader(conn))
	got := map[string]response{}
	for range sources {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		got[resp.ID] = resp
	}
	for _, si := range sources {
		resp, ok := got[db[si].ID]
		if !ok {
			t.Fatalf("no response for %s", db[si].ID)
		}
		if resp.Error != "" {
			t.Fatalf("%s: %s", resp.ID, resp.Error)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].SeqID != db[si].ID {
			t.Fatalf("%s: top hit %+v, want self", resp.ID, resp.Hits)
		}
	}
}

// TestServerPing covers the health-probe round-trip: a TypePing
// request echoes its ID with no error, bypasses admission entirely
// (no residues, no validation — an empty search would be rejected),
// and an unknown type is refused as a bad request.
func TestServerPing(t *testing.T) {
	db := swvec.GenerateDatabase(44, 8)
	_, addr := startTestServer(t, db, 2, 20*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	if err := enc.Encode(request{ID: "ping-1", Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "ping-1" || resp.Error != "" {
		t.Fatalf("ping answered %+v, want echoed ID and no error", resp)
	}

	if err := enc.Encode(request{ID: "odd", Type: "no-such-type"}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != codeBadRequest {
		t.Fatalf("unknown type answered code %q, want %q", resp.Code, codeBadRequest)
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	db := swvec.GenerateDatabase(43, 8)
	_, addr := startTestServer(t, db, 2, 20*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("malformed request should produce an error response")
	}
}

func TestServerRejectsInvalidResidues(t *testing.T) {
	db := swvec.GenerateDatabase(44, 8)
	_, addr := startTestServer(t, db, 2, 20*time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(request{ID: "bad", Residues: "MK1VLAW"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("invalid residues should produce an error response")
	}
}

// TestServerGracefulShutdown parks queries inside a long accumulation
// window (batch size far above the submitted count, 30s window) and
// then shuts the server down: the shutdown must flush the pending
// window — every parked query gets its real response — rather than
// dropping it or waiting out the timer.
func TestServerGracefulShutdown(t *testing.T) {
	db := swvec.GenerateDatabase(45, 32)
	srv, addr := startTestServer(t, db, 16, 30*time.Second)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sources := []int{3, 9}
	enc := json.NewEncoder(conn)
	for _, si := range sources {
		frag := db[si].Residues
		if len(frag) > 100 {
			frag = frag[:100]
		}
		if err := enc.Encode(request{ID: db[si].ID, Residues: string(frag), Top: 1}); err != nil {
			t.Fatal(err)
		}
	}

	// Give the requests time to land in the accumulation window, then
	// trigger the graceful stop.
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	dec := json.NewDecoder(bufio.NewReader(conn))
	got := map[string]response{}
	for range sources {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("flush did not deliver all replies: %v", err)
		}
		got[resp.ID] = resp
	}
	for _, si := range sources {
		resp, ok := got[db[si].ID]
		if !ok {
			t.Fatalf("no flushed response for %s", db[si].ID)
		}
		if resp.Error != "" {
			t.Fatalf("%s: %s", resp.ID, resp.Error)
		}
		if len(resp.Hits) == 0 || resp.Hits[0].SeqID != db[si].ID {
			t.Fatalf("%s: top hit %+v, want self", resp.ID, resp.Hits)
		}
	}

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown did not return")
	}

	// A post-shutdown connection must be refused.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServerShutdownRefusesNewRequests covers the race window where a
// request arrives while shutdown is in progress: it must get an
// explicit error response, not hang or panic on the closing queue.
func TestServerShutdownRefusesNewRequests(t *testing.T) {
	db := swvec.GenerateDatabase(46, 16)
	srv, addr := startTestServer(t, db, 4, 20*time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	// The connection predates shutdown, so the write may still land in
	// the scanner before its deadline fires; either a "shutting down"
	// error response or a closed connection is acceptable — a hang or
	// panic is not.
	enc := json.NewEncoder(conn)
	frag := db[0].Residues[:40]
	if err := enc.Encode(request{ID: "late", Residues: string(frag)}); err != nil {
		return // connection already torn down: fine
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return // closed without response: fine
	}
	if resp.Error == "" || !strings.Contains(resp.Error, "shutting down") {
		t.Fatalf("late request got %+v, want shutting-down error", resp)
	}
}
