package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swvec"
	"swvec/internal/cluster"
	"swvec/internal/leakcheck"
)

// validQuery is a residue string the default protein aligner admits.
const validQuery = "ACDEFGHIKLMNPQRSTVWY"

// stubShard speaks the swserver wire protocol with scripted behavior,
// so router policy (retry, hedge, breaker, partial) can be exercised
// without real alignment. behave receives the decoded request and the
// 1-based accept sequence number; returning ok=false slams the
// connection shut without answering, which is what a dying shard looks
// like on the wire.
type stubShard struct {
	ln      net.Listener
	behave  func(req cluster.Request, conn int64) (cluster.Response, bool)
	accepts atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func startStubShard(t *testing.T, behave func(req cluster.Request, conn int64) (cluster.Response, bool)) *stubShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubShard{ln: ln, behave: behave, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.serve()
	t.Cleanup(s.Close)
	return s
}

// cannedShard always answers with the given hits.
func cannedShard(t *testing.T, hits []cluster.Hit) *stubShard {
	return startStubShard(t, func(req cluster.Request, _ int64) (cluster.Response, bool) {
		return cluster.Response{Hits: hits}, true
	})
}

func (s *stubShard) Addr() string { return s.ln.Addr().String() }

func (s *stubShard) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		n := s.accepts.Add(1)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn, n)
		}()
	}
}

func (s *stubShard) handle(conn net.Conn, n int64) {
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var req cluster.Request
		if json.Unmarshal(sc.Bytes(), &req) != nil {
			return
		}
		resp, ok := s.behave(req, n)
		if !ok {
			return
		}
		if resp.ID == "" {
			resp.ID = req.ID
		}
		if json.NewEncoder(conn).Encode(resp) != nil {
			return
		}
	}
}

func (s *stubShard) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// deadAddr returns a loopback address nothing is listening on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// testPolicy is a fast, deterministic baseline: quick retries, no
// hedging, a breaker that effectively never trips. Tests override the
// knob they exercise.
func testPolicy() cluster.Policy {
	return cluster.Policy{
		Timeout:         2 * time.Second,
		Retries:         1,
		RetryBase:       time.Millisecond,
		RetryMax:        2 * time.Millisecond,
		BreakerFailures: 100,
		BreakerCooldown: time.Minute,
	}
}

// testDB is four sequences whose global order decides every tie-break
// the stub tests assert.
func testDB() []swvec.Sequence {
	return []swvec.Sequence{
		{ID: "A", Residues: []byte("ACDE")},
		{ID: "B", Residues: []byte("FGHI")},
		{ID: "C", Residues: []byte("KLMN")},
		{ID: "D", Residues: []byte("PQRS")},
	}
}

// startTestRouter wires a router over the given shard addresses and
// serves it on a loopback listener.
func startTestRouter(t *testing.T, db []swvec.Sequence, addrs []string, pol cluster.Policy, cfg routerConfig) (*cluster.Pool, string) {
	t.Helper()
	al, err := swvec.New()
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewPool(addrs, cluster.NewIndex(db), pol)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(pool, al, ln, cfg, t.Logf)
	go r.serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	})
	return pool, ln.Addr().String()
}

// startTestRouterGroups is startTestRouter over explicit per-shard
// replica groups, each already in failover order (rank 0 first).
func startTestRouterGroups(t *testing.T, db []swvec.Sequence, groups [][]string, pol cluster.Policy, cfg routerConfig) (*cluster.Pool, string) {
	t.Helper()
	al, err := swvec.New()
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewReplicatedPool(groups, cluster.NewIndex(db), pol)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(pool, al, ln, cfg, t.Logf)
	go r.serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	})
	return pool, ln.Addr().String()
}

// queryRouter sends one request over a fresh client connection and
// decodes the routed response.
func queryRouter(t *testing.T, addr string, req cluster.Request) routerResponse {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(15 * time.Second))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		t.Fatal(err)
	}
	var resp routerResponse
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func hitsEqual(a, b []cluster.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterMergesAcrossShards is the happy path: three shards answer
// canned top-K lists and the router merges them into the global order,
// ties broken by database position (B at index 1 before D at index 3).
func TestRouterMergesAcrossShards(t *testing.T) {
	leakcheck.Check(t)
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "B", Score: 8}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	s2 := cannedShard(t, []cluster.Hit{{SeqID: "D", Score: 8}})
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), s2.Addr()}, testPolicy(), routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("unexpected error/partial: %+v", resp)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}, {SeqID: "B", Score: 8}, {SeqID: "D", Score: 8}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("merged hits = %v, want %v", resp.Hits, want)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.OK, []int{0, 1, 2}) {
		t.Fatalf("shard report = %+v, want OK=[0 1 2]", resp.Shards)
	}
}

// TestRouterPartialOnDeadShard: a shard nothing listens on exhausts
// its retries and the response arrives partial, with the dead shard in
// Skipped and a cause attached — graceful degradation, not an error.
func TestRouterPartialOnDeadShard(t *testing.T) {
	leakcheck.Check(t)
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	pool, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), deadAddr(t)}, testPolicy(), routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" {
		t.Fatalf("wanted a partial result, got error %q", resp.Error)
	}
	if !resp.Partial || resp.Shards == nil || !intsEqual(resp.Shards.Skipped, []int{2}) {
		t.Fatalf("shard report = %+v, want partial with Skipped=[2]", resp.Shards)
	}
	if resp.Shards.Causes["2"] == "" {
		t.Fatalf("skipped shard has no cause: %+v", resp.Shards)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("hits = %v, want %v", resp.Hits, want)
	}
	if got := pool.Metrics().Partial.Load(); got != 1 {
		t.Fatalf("partial metric = %d, want 1", got)
	}
}

// TestRouterRetriesTransientFailure: a shard that drops its first
// connection without answering is retried and its answer merged; the
// response is complete but the shard is reported degraded.
func TestRouterRetriesTransientFailure(t *testing.T) {
	leakcheck.Check(t)
	flaky := startStubShard(t, func(req cluster.Request, conn int64) (cluster.Response, bool) {
		if conn == 1 {
			return cluster.Response{}, false // slam the first connection
		}
		return cluster.Response{Hits: []cluster.Hit{{SeqID: "A", Score: 10}}}, true
	})
	steady := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	pol := testPolicy()
	pol.Retries = 2
	pool, addr := startTestRouter(t, testDB(), []string{flaky.Addr(), steady.Addr()}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("unexpected error/partial: %+v", resp)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("hits = %v, want %v", resp.Hits, want)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.Degraded, []int{0}) {
		t.Fatalf("shard report = %+v, want Degraded=[0]", resp.Shards)
	}
	if got := pool.Metrics().Shard(0).Retries.Load(); got < 1 {
		t.Fatalf("retry metric = %d, want >= 1", got)
	}
}

// TestRouterHedgesSlowShard: a shard sitting on its first connection
// past HedgeAfter gets a speculative second request, the hedge answers
// first, and the shard is reported degraded.
func TestRouterHedgesSlowShard(t *testing.T) {
	leakcheck.Check(t)
	slow := startStubShard(t, func(req cluster.Request, conn int64) (cluster.Response, bool) {
		if conn == 1 {
			time.Sleep(400 * time.Millisecond)
		}
		return cluster.Response{Hits: []cluster.Hit{{SeqID: "A", Score: 10}}}, true
	})
	pol := testPolicy()
	pol.HedgeAfter = 25 * time.Millisecond
	pool, addr := startTestRouter(t, testDB(), []string{slow.Addr()}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("unexpected error/partial: %+v", resp)
	}
	if !hitsEqual(resp.Hits, []cluster.Hit{{SeqID: "A", Score: 10}}) {
		t.Fatalf("hits = %v", resp.Hits)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.Degraded, []int{0}) {
		t.Fatalf("shard report = %+v, want Degraded=[0]", resp.Shards)
	}
	met := pool.Metrics().Shard(0)
	if met.Hedges.Load() < 1 || met.HedgeWins.Load() < 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both >= 1", met.Hedges.Load(), met.HedgeWins.Load())
	}
}

// TestRouterQuarantinesAfterBreakerTrips: once a shard's breaker
// trips, subsequent scatters skip it without dialing — the quarantine
// shows up in the report's cause and the shard sees no new connection.
func TestRouterQuarantinesAfterBreakerTrips(t *testing.T) {
	leakcheck.Check(t)
	steady := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	broken := startStubShard(t, func(req cluster.Request, conn int64) (cluster.Response, bool) {
		return cluster.Response{}, false // never answers
	})
	pol := testPolicy()
	pol.Retries = 0
	pol.BreakerFailures = 1
	pool, addr := startTestRouter(t, testDB(), []string{steady.Addr(), broken.Addr()}, pol, routerConfig{})

	first := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if !first.Partial || first.Shards == nil || !intsEqual(first.Shards.Skipped, []int{1}) {
		t.Fatalf("first response = %+v, want Skipped=[1]", first.Shards)
	}
	dials := broken.accepts.Load()
	if dials < 1 {
		t.Fatal("broken shard was never dialed")
	}

	second := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 4})
	if !second.Partial || second.Shards == nil || !intsEqual(second.Shards.Skipped, []int{1}) {
		t.Fatalf("second response = %+v, want Skipped=[1]", second.Shards)
	}
	if cause := second.Shards.Causes["1"]; cause != "quarantined: circuit breaker open" {
		t.Fatalf("quarantine cause = %q", cause)
	}
	if got := broken.accepts.Load(); got != dials {
		t.Fatalf("quarantined shard was dialed again (%d -> %d accepts)", dials, got)
	}
	met := pool.Metrics().Shard(1)
	if met.BreakerTrips.Load() != 1 || met.BreakerSkipped.Load() < 1 {
		t.Fatalf("trips=%d skipped=%d, want 1 and >=1", met.BreakerTrips.Load(), met.BreakerSkipped.Load())
	}
}

// TestRouterShardErrorPermanent: a shard answering with a
// non-retryable error code is skipped without burning retries.
func TestRouterShardErrorPermanent(t *testing.T) {
	leakcheck.Check(t)
	steady := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	angry := startStubShard(t, func(req cluster.Request, conn int64) (cluster.Response, bool) {
		return cluster.Response{Error: "kernel exploded", Code: "internal"}, true
	})
	pol := testPolicy()
	pol.Retries = 3
	pool, addr := startTestRouter(t, testDB(), []string{steady.Addr(), angry.Addr()}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if !resp.Partial || resp.Shards == nil || !intsEqual(resp.Shards.Skipped, []int{1}) {
		t.Fatalf("response = %+v, want Skipped=[1]", resp.Shards)
	}
	if got := pool.Metrics().Shard(1).Requests.Load(); got != 1 {
		t.Fatalf("permanent error burned %d requests, want 1", got)
	}
}

// TestRouterUnknownSequenceIsInternalError: a shard reporting hits for
// sequences outside the router's database is a protocol violation and
// must surface as an internal error, not a quietly wrong merge.
func TestRouterUnknownSequenceIsInternalError(t *testing.T) {
	leakcheck.Check(t)
	rogue := cannedShard(t, []cluster.Hit{{SeqID: "GHOST", Score: 99}})
	_, addr := startTestRouter(t, testDB(), []string{rogue.Addr()}, testPolicy(), routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Code != cluster.CodeInternal || resp.Error == "" {
		t.Fatalf("response = %+v, want internal error", resp.Response)
	}
	if len(resp.Hits) != 0 {
		t.Fatalf("protocol violation still returned hits: %v", resp.Hits)
	}
}

// TestRouterUnavailableWhenNoShardAnswers: a full outage is an
// explicit unavailable error, distinguishable from an empty result.
func TestRouterUnavailableWhenNoShardAnswers(t *testing.T) {
	leakcheck.Check(t)
	pol := testPolicy()
	pol.Retries = 0
	_, addr := startTestRouter(t, testDB(), []string{deadAddr(t), deadAddr(t)}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Code != cluster.CodeUnavailable {
		t.Fatalf("code = %q, want %q (resp %+v)", resp.Code, cluster.CodeUnavailable, resp.Response)
	}
	if !resp.Partial || resp.Shards == nil || len(resp.Shards.Skipped) != 2 {
		t.Fatalf("shard report = %+v, want both shards skipped", resp.Shards)
	}
}

// TestRouterFailoverToReplica: a shard whose primary is dead answers
// from its secondary — the response is complete (not partial), the
// shard is reported degraded, and the report's Attempts records why
// the primary was passed over.
func TestRouterFailoverToReplica(t *testing.T) {
	leakcheck.Check(t)
	secondary := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	other := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	pol := testPolicy()
	pol.Retries = 0
	pool, addr := startTestRouterGroups(t, testDB(), [][]string{
		{deadAddr(t), secondary.Addr()},
		{other.Addr(), other.Addr()},
	}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("wanted a complete failover answer, got %+v", resp)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("hits = %v, want %v", resp.Hits, want)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.Degraded, []int{0}) {
		t.Fatalf("shard report = %+v, want Degraded=[0]", resp.Shards)
	}
	atts := resp.Shards.Attempts["0"]
	if len(atts) != 1 || atts[0].Replica != 0 || atts[0].Cause == "" {
		t.Fatalf("attempts = %+v, want one rank-0 failure with a cause", atts)
	}
	if got := pool.Metrics().Shard(0).Failovers.Load(); got != 1 {
		t.Fatalf("shard failovers = %d, want 1", got)
	}
	if got := pool.Metrics().Replica(0, 0).Failovers.Load(); got != 1 {
		t.Fatalf("replica 0/0 failovers = %d, want 1", got)
	}
}

// TestRouterAllReplicasDownIsPartial: the old partial contract at the
// replica level — a shard is skipped only when every replica fails,
// and its cause summarizes the whole failover walk.
func TestRouterAllReplicasDownIsPartial(t *testing.T) {
	leakcheck.Check(t)
	healthy := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pol := testPolicy()
	pol.Retries = 0
	pool, addr := startTestRouterGroups(t, testDB(), [][]string{
		{healthy.Addr(), healthy.Addr()},
		{deadAddr(t), deadAddr(t)},
	}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" {
		t.Fatalf("wanted a partial result, got error %q", resp.Error)
	}
	if !resp.Partial || resp.Shards == nil || !intsEqual(resp.Shards.Skipped, []int{1}) {
		t.Fatalf("shard report = %+v, want partial with Skipped=[1]", resp.Shards)
	}
	if len(resp.Shards.Attempts["1"]) != 2 {
		t.Fatalf("attempts = %+v, want both replicas recorded", resp.Shards.Attempts["1"])
	}
	if cause := resp.Shards.Causes["1"]; !strings.HasPrefix(cause, "all 2 replicas failed") {
		t.Fatalf("skip cause = %q, want the all-replicas summary", cause)
	}
	if got := pool.Metrics().Partial.Load(); got != 1 {
		t.Fatalf("partial metric = %d, want 1", got)
	}
}

// TestRouterHedgeRacesReplicas: with replicas, a hedge is not a second
// request to the same slow process — it races the next healthy sibling
// replica, and the sibling's answer wins.
func TestRouterHedgeRacesReplicas(t *testing.T) {
	leakcheck.Check(t)
	slow := startStubShard(t, func(req cluster.Request, conn int64) (cluster.Response, bool) {
		time.Sleep(400 * time.Millisecond)
		return cluster.Response{Hits: []cluster.Hit{{SeqID: "A", Score: 10}}}, true
	})
	fast := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pol := testPolicy()
	pol.HedgeAfter = 25 * time.Millisecond
	pool, addr := startTestRouterGroups(t, testDB(), [][]string{
		{slow.Addr(), fast.Addr()},
	}, pol, routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("unexpected error/partial: %+v", resp)
	}
	if !hitsEqual(resp.Hits, []cluster.Hit{{SeqID: "A", Score: 10}}) {
		t.Fatalf("hits = %v", resp.Hits)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.Degraded, []int{0}) {
		t.Fatalf("shard report = %+v, want Degraded=[0]", resp.Shards)
	}
	if fast.accepts.Load() < 1 {
		t.Fatal("hedge never reached the sibling replica")
	}
	met := pool.Metrics().Shard(0)
	if met.Hedges.Load() < 1 || met.HedgeWins.Load() < 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both >= 1", met.Hedges.Load(), met.HedgeWins.Load())
	}
	if got := pool.Metrics().Replica(0, 1).Requests.Load(); got < 1 {
		t.Fatalf("sibling replica saw %d requests, want >= 1", got)
	}
}

// TestRouterPing: the router answers the liveness ping by the same
// contract as its shards — echoed ID, no admission, no scatter.
func TestRouterPing(t *testing.T) {
	leakcheck.Check(t)
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pool, addr := startTestRouter(t, testDB(), []string{s0.Addr()}, testPolicy(), routerConfig{})

	resp := queryRouter(t, addr, cluster.Request{ID: "ping-7", Type: cluster.TypePing})
	if resp.ID != "ping-7" || resp.Error != "" {
		t.Fatalf("ping answered %+v, want echoed ID and no error", resp.Response)
	}
	if got := pool.Metrics().Scatters.Load(); got != 0 {
		t.Fatalf("ping scattered %d times, want 0", got)
	}

	bad := queryRouter(t, addr, cluster.Request{ID: "odd", Type: "no-such-type"})
	if bad.Code != cluster.CodeBadRequest {
		t.Fatalf("unknown type answered code %q, want %q", bad.Code, cluster.CodeBadRequest)
	}
}

// TestRouterAdmissionControl: malformed and oversized queries are
// rejected at the router without spending a cluster-wide scatter.
func TestRouterAdmissionControl(t *testing.T) {
	leakcheck.Check(t)
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pool, addr := startTestRouter(t, testDB(), []string{s0.Addr()}, testPolicy(), routerConfig{maxSeq: 8})

	cases := []struct {
		name string
		req  cluster.Request
		code string
	}{
		{"invalid residues", cluster.Request{ID: "q1", Residues: "123!@#"}, cluster.CodeBadRequest},
		{"oversized query", cluster.Request{ID: "q2", Residues: validQuery}, cluster.CodeTooLarge},
	}
	for _, tc := range cases {
		resp := queryRouter(t, addr, tc.req)
		if resp.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q", tc.name, resp.Code, tc.code)
		}
	}
	if got := pool.Metrics().Scatters.Load(); got != 0 {
		t.Fatalf("rejected queries still scattered %d times", got)
	}
}
