// Command swrouter is the scatter-gather coordinator of the sharded
// search cluster (DESIGN.md §15). It partitions the database across N
// swserver shard processes with a consistent-hash shard map, scatters
// every client query to all shards concurrently, and merges their
// bounded-heap top-K answers into one globally ordered result that is
// bit-identical — ordering and tie-breaks included — to a single-node
// search over the whole database.
//
// The routing policy treats each shard the way PR 5 taught the
// pipeline to treat a failing compute stage: transient shard errors
// retry with bounded backoff, slow shards get hedged requests, and a
// shard that keeps failing is quarantined by its own circuit breaker.
// A response never blocks on a dead shard — it returns the merged
// hits of the shards that answered, and carries the partial-result
// contract (which shards answered, which were degraded, which were
// skipped) so clients always know whether they saw the whole
// database. Per-shard routing counters are served on the opt-in admin
// port's /debug/vars as "swvec.cluster".
//
// Router, spawning its own local shard fleet:
//
//	swrouter -listen :7900 -spawn 3 -swserver-bin ./swserver -gen-db 4000
//
// Router, targeting already-running shards:
//
//	swrouter -listen :7900 -db db.fasta -shards host1:7979,host2:7979,host3:7979
//
// Client:
//
//	swrouter -connect localhost:7900 -query q.fasta [-top 5]
//
// The wire protocol is swserver's newline-delimited JSON, so a plain
// `swserver -connect` client also works; swrouter's own client mode
// additionally prints the per-response shard report.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"swvec"
	"swvec/internal/cluster"
)

func main() {
	var (
		listen    = flag.String("listen", "", "serve on this address (router mode)")
		connect   = flag.String("connect", "", "connect to this address (client mode)")
		dbPath    = flag.String("db", "", "database FASTA (router mode; must match the shards')")
		genDB     = flag.Int("gen-db", 0, "use the synthetic database of this size instead of -db")
		shards    = flag.String("shards", "", "comma-separated shard addresses to target (replica-major with -replicas)")
		spawn     = flag.Int("spawn", 0, "spawn this many local swserver shard processes instead of -shards")
		replicas  = flag.Int("replicas", 1, "replicas per shard slice (multiplies -spawn procs; groups -shards addresses)")
		bin       = flag.String("swserver-bin", "swserver", "swserver binary for -spawn")
		shardArgs = flag.String("shard-args", "", "extra space-separated flags for spawned shards")

		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "per-attempt shard deadline")
		hedgeAfter   = flag.Duration("hedge-after", 150*time.Millisecond, "hedge a shard unanswered after this delay (0 disables)")
		retries      = flag.Int("retries", 2, "retries per replica on transient errors before failing over")
		brkFails     = flag.Int("breaker-failures", 3, "consecutive replica failures that quarantine it")
		brkCool      = flag.Duration("breaker-cooldown", 5*time.Second, "replica quarantine duration before a probe")
		probeEvery   = flag.Duration("probe-interval", time.Second, "health-ping period per replica (replicas > 1)")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "per-ping deadline for the health prober")

		maxConns    = flag.Int("max-conns", 256, "maximum concurrent client connections")
		maxInflight = flag.Int("max-inflight", 64, "maximum concurrent scatters")
		idle        = flag.Duration("idle-timeout", 2*time.Minute, "per-connection read deadline (0 disables)")
		maxSeq      = flag.Int("max-seq", 100000, "maximum query residues per request (0 disables)")
		maxBody     = flag.Int("max-body", 8<<20, "maximum request line size in bytes")
		admin       = flag.String("admin", "", "opt-in admin address serving /debug/vars and pprof")

		query   = flag.String("query", "", "query FASTA (client mode; all records are submitted)")
		top     = flag.Int("top", 5, "hits per query")
		timeout = flag.Duration("timeout", 30*time.Second, "client-mode dial and I/O deadline (0 disables)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		runRouter(routerSetup{
			listen: *listen, dbPath: *dbPath, genDB: *genDB,
			shards: *shards, spawn: *spawn, replicas: *replicas,
			bin: *bin, shardArgs: *shardArgs,
			admin: *admin,
			pol: cluster.Policy{
				Timeout:         *shardTimeout,
				HedgeAfter:      *hedgeAfter,
				Retries:         *retries,
				BreakerFailures: *brkFails,
				BreakerCooldown: *brkCool,
				ProbeInterval:   *probeEvery,
				ProbeTimeout:    *probeTimeout,
			},
			cfg: routerConfig{
				maxConns:    *maxConns,
				maxInflight: *maxInflight,
				idle:        *idle,
				maxSeq:      *maxSeq,
				maxBody:     *maxBody,
				defaultTop:  *top,
			},
		})
	case *connect != "":
		os.Exit(runClient(*connect, *query, *top, *timeout))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type routerSetup struct {
	listen    string
	dbPath    string
	genDB     int
	shards    string
	spawn     int
	replicas  int
	bin       string
	shardArgs string
	admin     string
	pol       cluster.Policy
	cfg       routerConfig
}

// loadDB loads or generates the database the router needs for the
// global merge index and the shard length profile. It must be the same
// database the shards serve; with -gen-db both sides regenerate it
// from the fixed seed, with -db they read the same file.
func loadDB(dbPath string, genDB int) []swvec.Sequence {
	if genDB > 0 {
		return swvec.GenerateDatabase(42, genDB)
	}
	if dbPath == "" {
		fatal("router mode needs -db or -gen-db")
	}
	f, err := os.Open(dbPath)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	seqs, rep, err := swvec.DecodeFasta(f, swvec.DecodeOptions{})
	if err != nil {
		fatal("%v", err)
	}
	if len(rep.Skipped) > 0 {
		log.Printf("level=warn event=db_skipped records=%d malformed=%d oversized=%d",
			len(rep.Skipped), rep.Malformed, rep.Oversized)
	}
	return seqs
}

func runRouter(s routerSetup) {
	db := loadDB(s.dbPath, s.genDB)
	if s.replicas < 1 {
		fatal("-replicas must be at least 1, got %d", s.replicas)
	}

	var addrs []string
	var procs []*cluster.Proc
	switch {
	case s.spawn > 0:
		opt := cluster.SpawnOptions{
			Bin:      s.bin,
			Shards:   s.spawn,
			Replicas: s.replicas,
			GenDB:    s.genDB,
			DBPath:   s.dbPath,
			Logf:     log.Printf,
		}
		if s.shardArgs != "" {
			opt.ExtraArgs = strings.Fields(s.shardArgs)
		}
		var err error
		procs, err = cluster.SpawnShards(opt)
		if err != nil {
			fatal("%v", err)
		}
		for _, p := range procs {
			addrs = append(addrs, p.Addr)
		}
	case s.shards != "":
		for _, a := range strings.Split(s.shards, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	if len(addrs) == 0 {
		fatal("router mode needs -shards or -spawn")
	}

	// Group the flat (replica-major) address list into per-shard
	// replica sets, ordered by the restart-stable failover priority.
	groups, err := cluster.GroupReplicas(addrs, s.replicas)
	if err != nil {
		fatal("%v", err)
	}
	nshards := len(groups)

	// The validation aligner mirrors the shards' default alphabet so
	// admission rejects exactly what the shards would reject.
	al, err := swvec.New()
	if err != nil {
		fatal("%v", err)
	}

	smap := cluster.NewShardMap(nshards)
	profile := smap.Profile(db)
	for _, sp := range profile {
		log.Printf("level=info event=shard_profile shard=%d replicas=%q seqs=%d residues=%d len_min=%d len_median=%d len_max=%d",
			sp.Shard, strings.Join(groups[sp.Shard], ","), sp.Sequences, sp.Residues, sp.MinLen, sp.MedianLen, sp.MaxLen)
	}

	pool := cluster.NewReplicatedPool(groups, cluster.NewIndex(db), s.pol)
	if s.replicas > 1 {
		// With one replica there is nowhere to fail over, so admission
		// keeps the breaker-driven probing and the prober stays off —
		// byte-for-byte the pre-replication behavior.
		pool.StartProber()
		defer pool.StopProber()
	}
	if s.admin != "" {
		startAdmin(s.admin, pool, profile, log.Printf)
	}

	ln, err := net.Listen("tcp", s.listen)
	if err != nil {
		fatal("%v", err)
	}
	rt := newRouter(pool, al, ln, s.cfg, log.Printf)
	log.Printf("level=info event=listen addr=%s shards=%d replicas=%d db_seqs=%d hedge_after=%s retries=%d",
		ln.Addr(), nshards, s.replicas, len(db), s.pol.HedgeAfter, s.pol.Retries)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("level=info event=shutdown signal=%s", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	}()

	rt.serve()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 35*time.Second)
	rt.Shutdown(waitCtx)
	waitCancel()
	for _, p := range procs {
		if err := p.Stop(); err != nil {
			log.Printf("level=warn event=shard_stop shard=%d err=%q", p.Shard, err)
		}
	}
	snap := pool.Metrics().Snapshot()
	log.Printf("level=info event=exit scatters=%d partial=%d", snap.Scatters, snap.Partial)
}

// startAdmin serves /debug/vars — including the per-shard and
// per-replica "swvec.cluster" routing counters and the
// "swvec.cluster.profile" shard map — plus a /debug/cluster JSON view
// of the same snapshot and pprof, on the opt-in admin address.
func startAdmin(addr string, pool *cluster.Pool, profile []cluster.ShardProfile, logf func(string, ...any)) {
	swvec.PublishMetrics()
	pool.Metrics().Publish()
	expvar.Publish("swvec.cluster.profile", expvar.Func(func() any { return profile }))
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(pool.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logf("level=info event=admin_listen addr=%s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logf("level=error event=admin_error err=%q", err)
		}
	}()
}

// runClient submits every query record and prints one line per hit,
// plus the shard report whenever a response was partial or degraded.
// The exit code is 1 if any request failed or came back partial.
func runClient(addr, queryPath string, top int, timeout time.Duration) int {
	if queryPath == "" {
		fatal("client mode needs -query")
	}
	f, err := os.Open(queryPath)
	if err != nil {
		fatal("%v", err)
	}
	queries, rerr := swvec.ReadFasta(f)
	f.Close()
	if rerr != nil {
		fatal("%v", rerr)
	}

	var conn net.Conn
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		fatal("connect: %v", err)
	}
	defer conn.Close()

	enc := json.NewEncoder(conn)
	sent := 0
	results := make(map[string]routerResponse, len(queries))
	for i := range queries {
		if timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		req := cluster.Request{ID: queries[i].ID, Residues: string(queries[i].Residues), Top: top}
		if err := enc.Encode(req); err != nil {
			results[req.ID] = routerResponse{Response: cluster.Response{ID: req.ID, Error: fmt.Sprintf("send: %v", err)}}
			continue
		}
		sent++
	}
	dec := json.NewDecoder(conn)
	for i := 0; i < sent; i++ {
		if timeout > 0 {
			conn.SetReadDeadline(time.Now().Add(timeout))
		}
		var resp routerResponse
		if err := dec.Decode(&resp); err != nil {
			for _, q := range queries {
				if _, done := results[q.ID]; !done {
					results[q.ID] = routerResponse{Response: cluster.Response{ID: q.ID, Error: fmt.Sprintf("recv: %v", err)}}
				}
			}
			break
		}
		results[resp.ID] = resp
	}

	exit := 0
	for i := range queries {
		resp, ok := results[queries[i].ID]
		if !ok {
			resp = routerResponse{Response: cluster.Response{ID: queries[i].ID, Error: "no response received"}}
		}
		if resp.Error != "" {
			exit = 1
			fmt.Printf("%s: error: %s\n", resp.ID, resp.Error)
			continue
		}
		fmt.Printf("%s:%s\n", resp.ID, partialNote(resp))
		for rank, h := range resp.Hits {
			fmt.Printf("  %2d. score %5d  %s\n", rank+1, h.Score, h.SeqID)
		}
		printAttempts(resp)
		if resp.Partial {
			exit = 1
		}
	}
	return exit
}

// printAttempts renders the per-replica attempt causes of shards that
// did not answer from their primary on the first try.
func printAttempts(resp routerResponse) {
	if resp.Shards == nil || len(resp.Shards.Attempts) == 0 {
		return
	}
	shards := make([]string, 0, len(resp.Shards.Attempts))
	for s := range resp.Shards.Attempts {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	for _, s := range shards {
		for _, a := range resp.Shards.Attempts[s] {
			fmt.Printf("  shard %s replica %d (%s): %s\n", s, a.Replica, a.Addr, a.Cause)
		}
	}
}

func partialNote(resp routerResponse) string {
	if resp.Shards == nil {
		return ""
	}
	if resp.Partial {
		return fmt.Sprintf(" (PARTIAL: shards %v missing)", resp.Shards.Skipped)
	}
	if len(resp.Shards.Degraded) > 0 {
		return fmt.Sprintf(" (degraded shards %v)", resp.Shards.Degraded)
	}
	return ""
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swrouter: "+format+"\n", args...)
	os.Exit(1)
}
