package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"swvec"
	"swvec/internal/cluster"
	"swvec/internal/leakcheck"
)

// e2eDBSize keeps the synthetic database small enough that every
// shard's searches finish in milliseconds while still spreading
// meaningfully across three consistent-hash slices.
const e2eDBSize = 120

// buildSwserver compiles the real swserver binary into the test's temp
// directory. The e2e cluster runs actual shard processes, not stubs —
// that is the point.
func buildSwserver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swserver")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	out, err := exec.Command("go", "build", "-o", bin, "swvec/cmd/swserver").CombinedOutput()
	if err != nil {
		t.Fatalf("building swserver: %v\n%s", err, out)
	}
	return bin
}

// e2eExpectations precomputes, with a single-node aligner, the exact
// hits the cluster must return for a query: over the full database,
// and over the database minus one shard's slice (what a partial
// response after that shard dies must contain).
func e2eExpectations(t *testing.T, al *swvec.Aligner, db []swvec.Sequence, query []byte, top, deadShard int) (full, partial []cluster.Hit) {
	t.Helper()
	m := cluster.NewShardMap(3)
	var survivors []swvec.Sequence
	for _, s := range db {
		if m.Assign(s.ID) != deadShard {
			survivors = append(survivors, s)
		}
	}
	search := func(sub []swvec.Sequence) []cluster.Hit {
		res, err := al.Search(query, sub)
		if err != nil {
			t.Fatal(err)
		}
		hits := res.TopHits(top)
		out := make([]cluster.Hit, len(hits))
		for i, h := range hits {
			out[i] = cluster.Hit{SeqID: sub[h.SeqIndex].ID, Score: h.Score}
		}
		return out
	}
	return search(db), search(survivors)
}

// TestClusterE2E is the cluster chaos gate: build swserver, spawn a
// real 3-shard fleet over loopback, front it with an in-process
// router, and drive concurrent queries while a shard process is
// SIGKILLed mid-search.
//
// With -replicas 1 (the replicas=1 subtest) the PR-8 contract holds
// unchanged: every response is bit-identical to a single-node search —
// of the whole database while the fleet is healthy, of the surviving
// shards' slices once it is not — and the dead shard is reported, not
// papered over. With two replicas per slice (replicas=2), killing a
// *primary* must not cost completeness at all: every response stays
// partial=false and bit-identical to the full single-node search,
// served through failover. leakcheck holds throughout.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e spawns real shard processes; skipped in -short")
	}
	bin := buildSwserver(t)
	t.Run("replicas=1", func(t *testing.T) { clusterE2ESingle(t, bin) })
	t.Run("replicas=2", func(t *testing.T) { clusterE2EReplicated(t, bin) })
}

// clusterE2ESingle is the pre-replication chaos gate, preserved
// verbatim: one process per shard, a SIGKILL degrades to partial.
func clusterE2ESingle(t *testing.T, bin string) {
	leakcheck.Check(t)

	procs, err := cluster.SpawnShards(cluster.SpawnOptions{
		Bin:    bin,
		Shards: 3,
		GenDB:  e2eDBSize,
		// Answer each query as it arrives: batching windows only add
		// latency when the workload is a test harness.
		ExtraArgs: []string{"-batch", "1", "-window", "2ms"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range procs {
			p.Kill()
		}
	}()

	db := swvec.GenerateDatabase(42, e2eDBSize) // same seed the shards use
	al, err := swvec.New()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.Addr
	}
	pol := cluster.Policy{
		Timeout:         10 * time.Second,
		Retries:         2,
		RetryBase:       5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 250 * time.Millisecond,
	}
	pool := cluster.NewPool(addrs, cluster.NewIndex(db), pol)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(pool, al, ln, routerConfig{}, t.Logf)
	go r.serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	}()

	const top = 7
	const deadShard = 1
	query := swvec.GenerateQueries(42)[0].Residues
	wantFull, wantPartial := e2eExpectations(t, al, db, query, top, deadShard)

	// Phase 1 — healthy fleet: the routed result must equal the
	// single-node search of the whole database, bit for bit.
	healthy := queryRouter(t, ln.Addr().String(), cluster.Request{ID: "warm", Residues: string(query), Top: top})
	if healthy.Error != "" || healthy.Partial {
		t.Fatalf("healthy cluster answered %+v", healthy)
	}
	if !hitsEqual(healthy.Hits, wantFull) {
		t.Fatalf("healthy merge differs from single-node search\n got: %v\nwant: %v", healthy.Hits, wantFull)
	}

	// Phase 2 — chaos: concurrent clients stream queries while shard 1
	// is SIGKILLed mid-run.
	type outcome struct {
		resp routerResponse
		err  error
	}
	const clients = 4
	const perClient = 25
	results := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(60 * time.Second))
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(bufio.NewReader(conn))
			for i := 0; i < perClient; i++ {
				req := cluster.Request{
					ID: fmt.Sprintf("c%d-%d", c, i), Residues: string(query), Top: top,
				}
				var resp routerResponse
				err := enc.Encode(req)
				if err == nil {
					err = dec.Decode(&resp)
				}
				results <- outcome{resp: resp, err: err}
				if err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond) // let some healthy responses through
	procs[deadShard].Kill()
	wg.Wait()
	close(results)

	var fullN, partialN int
	for out := range results {
		if out.err != nil {
			t.Fatalf("client error: %v", out.err)
		}
		resp := out.resp
		if resp.Error != "" {
			t.Fatalf("query %s failed: %s (%s)", resp.ID, resp.Error, resp.Code)
		}
		switch {
		case !resp.Partial:
			if !hitsEqual(resp.Hits, wantFull) {
				t.Fatalf("full response %s differs from single-node search\n got: %v\nwant: %v", resp.ID, resp.Hits, wantFull)
			}
			fullN++
		default:
			if resp.Shards == nil || !intsEqual(resp.Shards.Skipped, []int{deadShard}) {
				t.Fatalf("partial response %s skipped %v, want [%d]", resp.ID, resp.Shards, deadShard)
			}
			if !hitsEqual(resp.Hits, wantPartial) {
				t.Fatalf("partial response %s differs from single-node search of surviving slices\n got: %v\nwant: %v", resp.ID, resp.Hits, wantPartial)
			}
			partialN++
		}
	}
	if partialN == 0 {
		t.Fatal("no response reported the killed shard as partial")
	}
	t.Logf("e2e: %d full + %d partial responses, all bit-identical to single-node search", fullN, partialN)
	if fullN+partialN != clients*perClient {
		t.Fatalf("got %d responses, want %d", fullN+partialN, clients*perClient)
	}

	// The healthy shards must shut down cleanly on SIGTERM; the killed
	// one has already been reaped.
	for i, p := range procs {
		if i == deadShard {
			continue
		}
		if err := p.Stop(); err != nil {
			t.Errorf("shard %d did not exit cleanly: %v", i, err)
		}
	}
}

// clusterE2EReplicated is the replication headline: 3 shards x 2
// replicas, SIGKILL the *primary* of one shard mid-search, and every
// concurrent response must still be complete (partial=false) and
// bit-identical to a single-node search of the whole database — the
// death degraded latency, not coverage.
func clusterE2EReplicated(t *testing.T, bin string) {
	leakcheck.Check(t)

	procs, err := cluster.SpawnShards(cluster.SpawnOptions{
		Bin:       bin,
		Shards:    3,
		Replicas:  2,
		GenDB:     e2eDBSize,
		ExtraArgs: []string{"-batch", "1", "-window", "2ms"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range procs {
			p.Kill()
		}
	}()

	db := swvec.GenerateDatabase(42, e2eDBSize)
	al, err := swvec.New()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.Addr
	}
	groups, err := cluster.GroupReplicas(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	pol := cluster.Policy{
		Timeout:         10 * time.Second,
		Retries:         2,
		RetryBase:       5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 250 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    2 * time.Second,
	}
	pool := cluster.NewReplicatedPool(groups, cluster.NewIndex(db), pol)
	pool.StartProber()
	defer pool.StopProber()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := newRouter(pool, al, ln, routerConfig{}, t.Logf)
	go r.serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		r.Shutdown(ctx)
	}()

	const top = 7
	const deadShard = 1
	query := swvec.GenerateQueries(42)[0].Residues
	wantFull, _ := e2eExpectations(t, al, db, query, top, deadShard)

	// The victim is the *primary* of deadShard under the restart-stable
	// failover order — the process every query for that slice hits
	// first while healthy.
	var victim *cluster.Proc
	for _, p := range procs {
		if p.Addr == groups[deadShard][0] {
			victim = p
		}
	}
	if victim == nil {
		t.Fatalf("no spawned process serves primary address %s", groups[deadShard][0])
	}
	if victim.Shard != deadShard {
		t.Fatalf("primary address maps to shard %d, want %d", victim.Shard, deadShard)
	}

	healthy := queryRouter(t, ln.Addr().String(), cluster.Request{ID: "warm", Residues: string(query), Top: top})
	if healthy.Error != "" || healthy.Partial {
		t.Fatalf("healthy cluster answered %+v", healthy)
	}
	if !hitsEqual(healthy.Hits, wantFull) {
		t.Fatalf("healthy merge differs from single-node search\n got: %v\nwant: %v", healthy.Hits, wantFull)
	}

	type outcome struct {
		resp routerResponse
		err  error
	}
	const clients = 4
	const perClient = 25
	results := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(60 * time.Second))
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(bufio.NewReader(conn))
			for i := 0; i < perClient; i++ {
				req := cluster.Request{
					ID: fmt.Sprintf("c%d-%d", c, i), Residues: string(query), Top: top,
				}
				var resp routerResponse
				err := enc.Encode(req)
				if err == nil {
					err = dec.Decode(&resp)
				}
				results <- outcome{resp: resp, err: err}
				if err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond) // let some healthy responses through
	victim.Kill()
	wg.Wait()
	close(results)

	var n, failedOver int
	for out := range results {
		if out.err != nil {
			t.Fatalf("client error: %v", out.err)
		}
		resp := out.resp
		if resp.Error != "" {
			t.Fatalf("query %s failed: %s (%s)", resp.ID, resp.Error, resp.Code)
		}
		// The replication contract: a single replica death never costs
		// completeness — zero partial responses, every merge identical
		// to the single-node search of the WHOLE database.
		if resp.Partial {
			t.Fatalf("response %s partial with a replica available: %+v", resp.ID, resp.Shards)
		}
		if !hitsEqual(resp.Hits, wantFull) {
			t.Fatalf("response %s differs from single-node search\n got: %v\nwant: %v", resp.ID, resp.Hits, wantFull)
		}
		if resp.Shards != nil && len(resp.Shards.Attempts[fmt.Sprint(deadShard)]) > 0 {
			failedOver++
		}
		n++
	}
	if n != clients*perClient {
		t.Fatalf("got %d responses, want %d", n, clients*perClient)
	}
	if failedOver == 0 {
		t.Fatal("no response recorded a failover off the killed primary")
	}
	met := pool.Metrics().Shard(deadShard)
	if met.Failovers.Load() == 0 {
		t.Fatalf("failover metric = 0 after killing the primary")
	}
	t.Logf("e2e: %d complete responses, %d served through failover, all bit-identical to single-node search", n, failedOver)

	// Surviving processes shut down cleanly on SIGTERM; the victim has
	// already been reaped.
	for _, p := range procs {
		if p == victim {
			continue
		}
		if err := p.Stop(); err != nil {
			t.Errorf("shard %d replica %d did not exit cleanly: %v", p.Shard, p.Replica, err)
		}
	}
}
