//go:build failpoint

package main

import (
	"strings"
	"testing"

	"swvec/internal/cluster"
	"swvec/internal/failpoint"
	"swvec/internal/leakcheck"
)

// TestRouterChaosTransientShardFaultHealed injects two transient
// faults at the per-shard query site; the retry policy absorbs them
// and the merged response is complete, with the struck shards reported
// degraded rather than skipped.
func TestRouterChaosTransientShardFaultHealed(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	s2 := cannedShard(t, []cluster.Hit{{SeqID: "D", Score: 8}})
	pol := testPolicy()
	pol.Retries = 2
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), s2.Addr()}, pol, routerConfig{})

	if err := failpoint.Enable("cluster/shard", "error(shard blip):transient:first=2"); err != nil {
		t.Fatal(err)
	}
	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("transient faults were not healed: %+v", resp)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}, {SeqID: "D", Score: 8}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("hits = %v, want %v", resp.Hits, want)
	}
	if got := failpoint.Fired("cluster/shard"); got != 2 {
		t.Fatalf("failpoint fired %d times, want 2", got)
	}
	if resp.Shards == nil || len(resp.Shards.Degraded) < 1 {
		t.Fatalf("no shard reported degraded after injected retries: %+v", resp.Shards)
	}
}

// TestRouterChaosClusterOutageAndRecovery injects a permanent fault at
// every shard query: the scatter degrades to an explicit unavailable
// error with all shards skipped, and once the fault is lifted the very
// next query is served in full.
func TestRouterChaosClusterOutageAndRecovery(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	s2 := cannedShard(t, []cluster.Hit{{SeqID: "D", Score: 8}})
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), s2.Addr()}, testPolicy(), routerConfig{})

	if err := failpoint.Enable("cluster/shard", "error(injected outage)"); err != nil {
		t.Fatal(err)
	}
	down := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if down.Code != cluster.CodeUnavailable || !down.Partial {
		t.Fatalf("outage response = %+v, want unavailable+partial", down.Response)
	}
	if down.Shards == nil || len(down.Shards.Skipped) != 3 {
		t.Fatalf("outage shard report = %+v, want all 3 skipped", down.Shards)
	}
	for shard, cause := range down.Shards.Causes {
		if !strings.Contains(cause, "injected outage") {
			t.Fatalf("shard %s cause = %q, want the injected fault", shard, cause)
		}
	}

	failpoint.Disable("cluster/shard")
	up := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 4})
	if up.Error != "" || up.Partial {
		t.Fatalf("cluster did not recover: %+v", up)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}, {SeqID: "D", Score: 8}}
	if !hitsEqual(up.Hits, want) {
		t.Fatalf("post-recovery hits = %v, want %v", up.Hits, want)
	}
}

// TestRouterChaosRequestFault injects a fault at the router's own
// request-admission site: the struck request answers with a structured
// internal error, the connection survives, and the next request on the
// same cluster is served normally.
func TestRouterChaosRequestFault(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr()}, testPolicy(), routerConfig{})

	if err := failpoint.Enable("swrouter/request", "error(router glitch):first=1"); err != nil {
		t.Fatal(err)
	}
	hurt := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if hurt.Code != cluster.CodeInternal || !strings.Contains(hurt.Error, "router glitch") {
		t.Fatalf("injected request fault surfaced as %+v", hurt.Response)
	}
	ok := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 1})
	if ok.Error != "" || !hitsEqual(ok.Hits, []cluster.Hit{{SeqID: "A", Score: 10}}) {
		t.Fatalf("request after injected fault = %+v", ok)
	}
}
