//go:build failpoint

package main

import (
	"strings"
	"testing"
	"time"

	"swvec/internal/cluster"
	"swvec/internal/failpoint"
	"swvec/internal/leakcheck"
)

// TestRouterChaosTransientShardFaultHealed injects two transient
// faults at the per-shard query site; the retry policy absorbs them
// and the merged response is complete, with the struck shards reported
// degraded rather than skipped.
func TestRouterChaosTransientShardFaultHealed(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	s2 := cannedShard(t, []cluster.Hit{{SeqID: "D", Score: 8}})
	pol := testPolicy()
	pol.Retries = 2
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), s2.Addr()}, pol, routerConfig{})

	if err := failpoint.Enable("cluster/shard", "error(shard blip):transient:first=2"); err != nil {
		t.Fatal(err)
	}
	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("transient faults were not healed: %+v", resp)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}, {SeqID: "D", Score: 8}}
	if !hitsEqual(resp.Hits, want) {
		t.Fatalf("hits = %v, want %v", resp.Hits, want)
	}
	if got := failpoint.Fired("cluster/shard"); got != 2 {
		t.Fatalf("failpoint fired %d times, want 2", got)
	}
	if resp.Shards == nil || len(resp.Shards.Degraded) < 1 {
		t.Fatalf("no shard reported degraded after injected retries: %+v", resp.Shards)
	}
}

// TestRouterChaosClusterOutageAndRecovery injects a permanent fault at
// every shard query: the scatter degrades to an explicit unavailable
// error with all shards skipped, and once the fault is lifted the very
// next query is served in full.
func TestRouterChaosClusterOutageAndRecovery(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	s1 := cannedShard(t, []cluster.Hit{{SeqID: "C", Score: 9}})
	s2 := cannedShard(t, []cluster.Hit{{SeqID: "D", Score: 8}})
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr(), s1.Addr(), s2.Addr()}, testPolicy(), routerConfig{})

	if err := failpoint.Enable("cluster/shard", "error(injected outage)"); err != nil {
		t.Fatal(err)
	}
	down := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 4})
	if down.Code != cluster.CodeUnavailable || !down.Partial {
		t.Fatalf("outage response = %+v, want unavailable+partial", down.Response)
	}
	if down.Shards == nil || len(down.Shards.Skipped) != 3 {
		t.Fatalf("outage shard report = %+v, want all 3 skipped", down.Shards)
	}
	for shard, cause := range down.Shards.Causes {
		if !strings.Contains(cause, "injected outage") {
			t.Fatalf("shard %s cause = %q, want the injected fault", shard, cause)
		}
	}

	failpoint.Disable("cluster/shard")
	up := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 4})
	if up.Error != "" || up.Partial {
		t.Fatalf("cluster did not recover: %+v", up)
	}
	want := []cluster.Hit{{SeqID: "A", Score: 10}, {SeqID: "C", Score: 9}, {SeqID: "D", Score: 8}}
	if !hitsEqual(up.Hits, want) {
		t.Fatalf("post-recovery hits = %v, want %v", up.Hits, want)
	}
}

// TestRouterChaosReplicaFailoverHealthy injects one fault at the
// per-replica policy site: the primary's whole attempt budget is
// struck, the walk fails over to the healthy sibling replica, and the
// merged response stays complete — the fault cost latency, not
// coverage.
func TestRouterChaosReplicaFailoverHealthy(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	primary := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	sibling := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pol := testPolicy()
	pol.Retries = 0
	_, addr := startTestRouterGroups(t, testDB(), [][]string{
		{primary.Addr(), sibling.Addr()},
	}, pol, routerConfig{})

	if err := failpoint.Enable("cluster/replica", "error(replica struck):first=1"); err != nil {
		t.Fatal(err)
	}
	resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if resp.Error != "" || resp.Partial {
		t.Fatalf("failover did not keep the response complete: %+v", resp)
	}
	if !hitsEqual(resp.Hits, []cluster.Hit{{SeqID: "A", Score: 10}}) {
		t.Fatalf("hits = %v", resp.Hits)
	}
	if resp.Shards == nil || !intsEqual(resp.Shards.Degraded, []int{0}) {
		t.Fatalf("shard report = %+v, want Degraded=[0]", resp.Shards)
	}
	atts := resp.Shards.Attempts["0"]
	if len(atts) != 1 || atts[0].Replica != 0 || !strings.Contains(atts[0].Cause, "replica struck") {
		t.Fatalf("attempts = %+v, want the injected rank-0 failure", atts)
	}
	if got := failpoint.Fired("cluster/replica"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
}

// TestRouterChaosAllReplicasDownQuarantine injects a persistent fault
// at the replica site: with every replica of the only shard failing,
// the pre-replication contract returns verbatim — an explicit partial
// + unavailable answer, and once the breakers trip, quarantine causes
// instead of fresh dials.
func TestRouterChaosAllReplicasDownQuarantine(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	r0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	r1 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pol := testPolicy()
	pol.Retries = 0
	pol.BreakerFailures = 1
	_, addr := startTestRouterGroups(t, testDB(), [][]string{
		{r0.Addr(), r1.Addr()},
	}, pol, routerConfig{})

	if err := failpoint.Enable("cluster/replica", "error(replica dead)"); err != nil {
		t.Fatal(err)
	}
	down := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if down.Code != cluster.CodeUnavailable || !down.Partial {
		t.Fatalf("outage response = %+v, want unavailable+partial", down.Response)
	}
	atts := down.Shards.Attempts["0"]
	if len(atts) != 2 {
		t.Fatalf("attempts = %+v, want both replicas struck", atts)
	}
	for _, a := range atts {
		if !strings.Contains(a.Cause, "replica dead") {
			t.Fatalf("attempt cause = %q, want the injected fault", a.Cause)
		}
	}
	if cause := down.Shards.Causes["0"]; !strings.HasPrefix(cause, "all 2 replicas failed") {
		t.Fatalf("skip cause = %q, want the all-replicas summary", cause)
	}

	// Both breakers tripped: lifting the fault does not resurrect the
	// shard — the quarantine holds until a probe, exactly the old
	// breaker contract, now per replica.
	failpoint.Disable("cluster/replica")
	held := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 1})
	if !held.Partial {
		t.Fatalf("quarantine did not hold: %+v", held)
	}
	if cause := held.Shards.Causes["0"]; !strings.Contains(cause, "quarantined: circuit breaker open") {
		t.Fatalf("quarantine cause = %q", cause)
	}
	if got := r0.accepts.Load() + r1.accepts.Load(); got != 0 {
		t.Fatalf("quarantined replicas were dialed %d times", got)
	}
}

// TestRouterChaosFlappingReplicaReintegratedOnlyByProbe injects
// persistent health-check failures: the replica flaps down via its
// failing probes, stays quarantined through multiple cooldowns even
// though queries keep arriving (with a prober running, queries never
// take the half-open slot), and rejoins only after the probes succeed
// again.
func TestRouterChaosFlappingReplicaReintegratedOnlyByProbe(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	primary := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	pol := testPolicy()
	pol.Retries = 0
	pol.BreakerFailures = 1
	pol.BreakerCooldown = 20 * time.Millisecond
	pol.ProbeInterval = 10 * time.Millisecond
	pol.ProbeTimeout = 500 * time.Millisecond
	pool, addr := startTestRouterGroups(t, testDB(), [][]string{
		{primary.Addr()},
	}, pol, routerConfig{})
	pool.StartProber()
	t.Cleanup(pool.StopProber)

	healthy := queryRouter(t, addr, cluster.Request{ID: "q0", Residues: validQuery, Top: 1})
	if healthy.Error != "" || healthy.Partial {
		t.Fatalf("cluster unhealthy before injection: %+v", healthy)
	}

	// Fail every health check: the next probe trips the breaker and
	// the replica goes down without a single query failing.
	if err := failpoint.Enable("cluster/probe", "error(probe struck)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
		if resp.Partial && strings.Contains(resp.Shards.Causes["0"], "quarantined") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failing probes never quarantined the replica: %+v", resp.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Several cooldowns pass with queries arriving the whole time; the
	// replica must stay quarantined (only a probe may reintegrate it,
	// and probes keep failing) and must see no query connections.
	dials := primary.accepts.Load()
	time.Sleep(4 * pol.BreakerCooldown)
	still := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 1})
	if !still.Partial || !strings.Contains(still.Shards.Causes["0"], "quarantined") {
		t.Fatalf("queries reintegrated a flapping replica: %+v", still.Shards)
	}
	if got := primary.accepts.Load(); got != dials {
		t.Fatalf("quarantined replica was dialed by a query (%d -> %d accepts)", dials, got)
	}
	met := pool.Metrics().Replica(0, 0)
	if failpoint.Fired("cluster/probe") == 0 || met.ProbeFailures.Load() == 0 {
		t.Fatalf("probe site never fired (fired=%d probe_failures=%d)",
			failpoint.Fired("cluster/probe"), met.ProbeFailures.Load())
	}

	// Heal the probes: the next successful half-open ping closes the
	// breaker and queries flow again — reintegration through probing.
	failpoint.Disable("cluster/probe")
	for {
		resp := queryRouter(t, addr, cluster.Request{ID: "q3", Residues: validQuery, Top: 1})
		if resp.Error == "" && !resp.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never reintegrated the healed replica: %+v", resp.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterChaosRequestFault injects a fault at the router's own
// request-admission site: the struck request answers with a structured
// internal error, the connection survives, and the next request on the
// same cluster is served normally.
func TestRouterChaosRequestFault(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	s0 := cannedShard(t, []cluster.Hit{{SeqID: "A", Score: 10}})
	_, addr := startTestRouter(t, testDB(), []string{s0.Addr()}, testPolicy(), routerConfig{})

	if err := failpoint.Enable("swrouter/request", "error(router glitch):first=1"); err != nil {
		t.Fatal(err)
	}
	hurt := queryRouter(t, addr, cluster.Request{ID: "q1", Residues: validQuery, Top: 1})
	if hurt.Code != cluster.CodeInternal || !strings.Contains(hurt.Error, "router glitch") {
		t.Fatalf("injected request fault surfaced as %+v", hurt.Response)
	}
	ok := queryRouter(t, addr, cluster.Request{ID: "q2", Residues: validQuery, Top: 1})
	if ok.Error != "" || !hitsEqual(ok.Hits, []cluster.Hit{{SeqID: "A", Score: 10}}) {
		t.Fatalf("request after injected fault = %+v", ok)
	}
}
