package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"swvec"
	"swvec/internal/cluster"
	"swvec/internal/failpoint"
	"swvec/internal/metrics"
)

// routerResponse is the shard-aware superset of the swserver wire
// response: the same id/hits/error fields (so a plain swserver client
// can talk to a router and never notice), plus the partial-result
// contract — which shards answered, which were degraded, which were
// skipped, and whether the merged hits therefore cover the whole
// database.
type routerResponse struct {
	cluster.Response
	Shards  *cluster.ShardReport `json:"shards,omitempty"`
	Partial bool                 `json:"partial"`
}

// routerConfig bundles the router's serving knobs.
type routerConfig struct {
	maxConns    int
	maxInflight int           // concurrent scatters across all connections
	idle        time.Duration // per-connection read deadline, 0 = none
	maxSeq      int           // max residues per query, 0 = none
	maxBody     int           // max request line bytes
	defaultTop  int
}

func (c routerConfig) withDefaults() routerConfig {
	if c.maxConns < 1 {
		c.maxConns = 256
	}
	if c.maxInflight < 1 {
		c.maxInflight = 64
	}
	if c.maxBody <= 0 {
		c.maxBody = 8 << 20
	}
	if c.defaultTop <= 0 {
		c.defaultTop = 5
	}
	return c
}

// router accepts client connections and serves each request by
// scattering it across the shard pool and merging the gathered top-K.
// Unlike swserver there is no batching window: a scatter is already a
// fan-out of the whole cluster, so requests leave as soon as they
// arrive, bounded by the in-flight semaphore.
type router struct {
	pool *cluster.Pool
	// al exists only for admission-time query validation; the router
	// never aligns anything itself.
	al  *swvec.Aligner
	cfg routerConfig
	ln  net.Listener

	ctx    context.Context // canceled when Shutdown begins
	cancel context.CancelFunc
	closed chan struct{}
	sem    chan struct{} // bounds concurrent scatters

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG       sync.WaitGroup
	shutdownOnce sync.Once
	logf         func(format string, args ...any)
}

func newRouter(pool *cluster.Pool, al *swvec.Aligner, ln net.Listener, cfg routerConfig, logf func(string, ...any)) *router {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &router{
		pool:   pool,
		al:     al,
		cfg:    cfg,
		ln:     ln,
		ctx:    ctx,
		cancel: cancel,
		closed: make(chan struct{}),
		sem:    make(chan struct{}, cfg.maxInflight),
		conns:  map[net.Conn]struct{}{},
		logf:   logf,
	}
}

// serve accepts connections until Shutdown closes the listener.
func (r *router) serve() {
	sem := make(chan struct{}, r.cfg.maxConns)
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			r.logf("level=warn event=accept_error err=%q", err)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-r.closed:
			conn.Close()
			return
		}
		r.track(conn, true)
		r.connWG.Add(1)
		go func() {
			defer func() {
				r.track(conn, false)
				r.connWG.Done()
				<-sem
			}()
			r.serveConn(conn)
		}()
	}
}

func (r *router) track(conn net.Conn, add bool) {
	r.mu.Lock()
	if add {
		r.conns[conn] = struct{}{}
	} else {
		delete(r.conns, conn)
	}
	r.mu.Unlock()
}

func (r *router) isShutdown() bool {
	select {
	case <-r.closed:
		return true
	default:
		return false
	}
}

// expireReads sets every live connection's read deadline to now so
// blocked scanners return; Shutdown re-applies it periodically, same
// as swserver.
func (r *router) expireReads() {
	now := time.Now()
	r.mu.Lock()
	for c := range r.conns {
		c.SetReadDeadline(now)
	}
	r.mu.Unlock()
}

// Shutdown stops accepting, cancels in-flight scatters, and waits for
// every connection handler (and therefore every reply writer) to
// retire. ctx bounds the wait. Idempotent.
func (r *router) Shutdown(ctx context.Context) {
	r.shutdownOnce.Do(func() {
		close(r.closed)
		r.ln.Close()
		r.cancel()

		done := make(chan struct{})
		go func() {
			r.connWG.Wait()
			close(done)
		}()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		r.expireReads()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				r.expireReads()
			case <-ctx.Done():
				return
			}
		}
	})
}

// serveConn reads newline-delimited JSON requests and answers each by
// scattering it across the cluster. Scatters for one connection run
// concurrently (bounded by the router-wide semaphore); replies are
// written under a per-connection lock and matched by request ID, which
// is exactly the contract the swserver client already implements.
func (r *router) serveConn(conn net.Conn) {
	defer conn.Close()
	initial := 64 << 10
	if initial > r.cfg.maxBody {
		initial = r.cfg.maxBody
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, initial), r.cfg.maxBody)
	enc := json.NewEncoder(conn)
	var mu sync.Mutex
	var wg sync.WaitGroup
	respond := func(resp routerResponse) {
		mu.Lock()
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		enc.Encode(resp)
		mu.Unlock()
	}
	fail := func(id, code, format string, args ...any) {
		respond(routerResponse{Response: cluster.Response{
			ID: id, Error: fmt.Sprintf(format, args...), Code: code,
		}})
	}
	for !r.isShutdown() {
		if r.cfg.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(r.cfg.idle))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				metrics.Global.Oversized.Add(1)
				fail("", cluster.CodeTooLarge, "request exceeds %d-byte line limit", r.cfg.maxBody)
			}
			break
		}
		var req cluster.Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			fail("", cluster.CodeBadRequest, "bad request: %v", err)
			continue
		}
		if req.Type == cluster.TypePing {
			// Liveness ping, answered before any admission gate — the
			// router is pingable by the same contract as its shards, so
			// a prober (or load balancer) in front of a router tier
			// needs no special casing.
			respond(routerResponse{Response: cluster.Response{ID: req.ID}})
			continue
		}
		if req.Type != cluster.TypeSearch {
			fail(req.ID, cluster.CodeBadRequest, "unknown request type %q", req.Type)
			continue
		}
		if err := failpoint.Inject("swrouter/request"); err != nil {
			fail(req.ID, cluster.CodeInternal, "%v", err)
			continue
		}
		if r.cfg.maxSeq > 0 && len(req.Residues) > r.cfg.maxSeq {
			metrics.Global.Oversized.Add(1)
			fail(req.ID, cluster.CodeTooLarge, "query has %d residues, limit is %d", len(req.Residues), r.cfg.maxSeq)
			continue
		}
		if err := r.al.ValidateSequence([]byte(req.Residues)); err != nil {
			// Reject at admission: a query no shard can serve should
			// not burn a cluster-wide scatter.
			metrics.Global.Malformed.Add(1)
			fail(req.ID, cluster.CodeBadRequest, "%v", err)
			continue
		}
		if req.Top <= 0 {
			req.Top = r.cfg.defaultTop
		}
		select {
		case r.sem <- struct{}{}:
		case <-r.closed:
			fail(req.ID, cluster.CodeShutdown, "router shutting down")
			continue
		default:
			// In-flight scatters are at the cap: shed now instead of
			// queueing the connection behind a saturated cluster.
			metrics.Global.Shed.Add(1)
			r.logf("level=warn event=shed inflight=%d", len(r.sem))
			fail(req.ID, cluster.CodeOverloaded, "router overloaded: too many in-flight queries")
			continue
		}
		wg.Add(1)
		go func(req cluster.Request) {
			defer wg.Done()
			defer func() { <-r.sem }()
			respond(r.handle(req))
		}(req)
	}
	wg.Wait()
}

// handle runs one scatter-gather and shapes the wire response,
// including the partial-result contract.
func (r *router) handle(req cluster.Request) routerResponse {
	start := time.Now()
	hits, rep, err := r.pool.Scatter(r.ctx, req)
	resp := routerResponse{
		Response: cluster.Response{ID: req.ID, Hits: hits},
		Shards:   &rep,
		Partial:  rep.Partial(),
	}
	answered := len(rep.OK) + len(rep.Degraded)
	switch {
	case err != nil:
		resp.Hits = nil
		resp.Error = err.Error()
		resp.Code = cluster.CodeInternal
	case answered == 0:
		// Nothing answered: this is an outage, not an empty result
		// set, and the client must be able to tell the difference.
		resp.Hits = nil
		resp.Error = "no shards answered"
		resp.Code = cluster.CodeUnavailable
	}
	r.logf("level=info event=scatter id=%q shards_ok=%d degraded=%d skipped=%d partial=%t hits=%d elapsed_ms=%.1f",
		req.ID, len(rep.OK), len(rep.Degraded), len(rep.Skipped), rep.Partial(), len(resp.Hits),
		float64(time.Since(start).Microseconds())/1000)
	return resp
}
