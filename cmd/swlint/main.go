// Command swlint runs the swvec static-analysis suite: repo-specific
// invariant checkers for the hot-path allocation discipline, lane-width
// derivation, scheduler goroutine/channel lifecycle, and metrics
// atomicity. It exits non-zero when any unsuppressed finding remains.
//
// Usage:
//
//	swlint [-json report.json] [packages]
//
// Packages default to ./..., resolved from the current directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"swvec/internal/analysis"
)

// report is the JSON artifact schema. Suppressed findings are included
// so CI can track the suppression trajectory, not just the pass/fail
// bit.
type report struct {
	Tool      string                `json:"tool"`
	Analyzers []string              `json:"analyzers"`
	Active    int                   `json:"active"`
	Suppress  int                   `json:"suppressed"`
	Findings  []analysis.Diagnostic `json:"findings"`
}

func main() {
	jsonPath := flag.String("json", "", "write a JSON report (all findings, suppressed included) to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: swlint [-json report.json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "\n%s: %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	analyzers := analysis.All()
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}

	active := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		active++
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}

	if *jsonPath != "" {
		names := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		r := report{
			Tool:      "swlint",
			Analyzers: names,
			Active:    active,
			Suppress:  len(diags) - active,
			Findings:  diags,
		}
		if r.Findings == nil {
			r.Findings = []analysis.Diagnostic{}
		}
		buf, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "swlint:", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "swlint:", err)
			os.Exit(2)
		}
	}

	if active > 0 {
		fmt.Fprintf(os.Stderr, "swlint: %d finding(s)\n", active)
		os.Exit(1)
	}
}
