// Command swlint runs the swvec static-analysis suite: repo-specific
// invariant checkers for the hot-path allocation discipline, lane-width
// derivation, scheduler goroutine/channel lifecycle, metrics atomicity,
// compiler-verified bounds-check-freedom, goroutine cancellation,
// failpoint registry hygiene, and the wire-code failure contract. It
// exits non-zero when any unsuppressed finding remains.
//
// Usage:
//
//	swlint [-json report.json] [-tags tag,list] [-bce-allow file] [packages]
//
// Packages default to ./..., resolved from the current directory.
// -tags reruns the load under a build tag set (the failpoint chaos
// build is only visible with -tags failpoint). Positions are reported
// relative to the current directory so JSON artifacts are comparable
// across checkouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swvec/internal/analysis"
)

// report is the JSON artifact schema. Suppressed findings are included
// so CI can track the suppression trajectory, not just the pass/fail
// bit.
type report struct {
	Tool      string                `json:"tool"`
	Analyzers []string              `json:"analyzers"`
	Tags      []string              `json:"tags"`
	Active    int                   `json:"active"`
	Suppress  int                   `json:"suppressed"`
	Findings  []analysis.Diagnostic `json:"findings"`
}

func main() {
	jsonPath := flag.String("json", "", "write a JSON report (all findings, suppressed included) to this file")
	tagsFlag := flag.String("tags", "", "comma-separated build tags to load under (e.g. failpoint)")
	bceAllow := flag.String("bce-allow", "", "override the bcecheck allowlist file (default <module root>/BCE_allowlist.txt)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: swlint [-json report.json] [-tags tag,list] [-bce-allow file] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "\n%s: %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tags []string
	for _, t := range strings.Split(*tagsFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	if *bceAllow != "" {
		analysis.SetBCEAllowlist(*bceAllow)
	}

	pkgs, err := analysis.LoadTags(".", tags, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	analyzers := analysis.All()
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	relativize(diags)

	active := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		active++
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}

	if *jsonPath != "" {
		names := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		r := report{
			Tool:      "swlint",
			Analyzers: names,
			Tags:      tags,
			Active:    active,
			Suppress:  len(diags) - active,
			Findings:  diags,
		}
		if r.Tags == nil {
			r.Tags = []string{}
		}
		if r.Findings == nil {
			r.Findings = []analysis.Diagnostic{}
		}
		buf, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "swlint:", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "swlint:", err)
			os.Exit(2)
		}
	}

	if active > 0 {
		fmt.Fprintf(os.Stderr, "swlint: %d finding(s)\n", active)
		os.Exit(1)
	}
}

// relativize rewrites absolute diagnostic positions relative to the
// working directory, so the JSON artifact (and the committed ratchet
// baseline diffed against it) is stable across checkouts.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		d := &diags[i]
		file, _, ok := strings.Cut(d.Position, ":")
		if !ok || !filepath.IsAbs(file) {
			continue
		}
		rel, err := filepath.Rel(wd, file)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		d.Position = filepath.ToSlash(rel) + d.Position[len(file):]
	}
}
