// Command swprofile runs a kernel workload on the instrumented vector
// machine and prints a Vtune-style top-down report per architecture —
// the interactive counterpart of Fig. 12.
//
// Usage:
//
//	swprofile -kernel pair16 -qlen 320 -dlen 2000
//	swprofile -kernel batch8 -qlen 320 -db 64 -arch haswell,skylake
//	swprofile -kernel striped16 -qlen 511
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/profile"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

func main() {
	var (
		kernel    = flag.String("kernel", "pair16", "kernel: pair8, pair16, pair16w, pair32, batch8, batch16, diag16, scan16, striped16, striped8")
		qlen      = flag.Int("qlen", 320, "query length")
		dlen      = flag.Int("dlen", 2000, "database sequence length (pair kernels)")
		dbSize    = flag.Int("db", 32, "database sequence count (batch kernels)")
		archList  = flag.String("arch", "skylake", "comma-separated architectures, or 'all'")
		fixed     = flag.Bool("fixed", false, "use a match/mismatch matrix instead of BLOSUM62")
		traceback = flag.Bool("traceback", false, "enable traceback recording (pair16 only)")
		seed      = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	mat := submat.Blosum62()
	if *fixed {
		mat = submat.MatchMismatch(mat.Alphabet(), 2, -1)
	}
	alpha := mat.Alphabet()
	g := seqio.NewGenerator(*seed)
	q := g.Protein("q", *qlen).Encode(alpha)
	d := g.Protein("d", *dlen).Encode(alpha)
	gaps := aln.DefaultGaps()
	popt := core.PairOptions{Gaps: gaps, Traceback: *traceback}

	mch, tal := vek.NewMachine()
	var cells int64
	var wsKB float64
	switch *kernel {
	case "pair8":
		if _, err := core.AlignPair8(mch, q, d, mat, popt); err != nil {
			fatal("%v", err)
		}
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*13/1024
	case "pair16":
		if _, _, err := core.AlignPair16(mch, q, d, mat, popt); err != nil {
			fatal("%v", err)
		}
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*26/1024
	case "pair16w":
		if _, err := core.AlignPair16W(mch, q, d, mat, core.PairOptions{Gaps: gaps}); err != nil {
			fatal("%v", err)
		}
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*26/1024
	case "pair32":
		if _, err := core.AlignPair32(mch, q, d, mat, core.PairOptions{Gaps: gaps}); err != nil {
			fatal("%v", err)
		}
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*52/1024
	case "batch8", "batch16":
		db := g.Database(*dbSize)
		tables := submat.NewCodeTables(mat)
		batches := seqio.BuildBatches(db, alpha, seqio.BatchOptions{SortByLength: true})
		for _, b := range batches {
			var err error
			if *kernel == "batch8" {
				_, err = core.AlignBatch8(mch, q, tables, b, core.BatchOptions{Gaps: gaps})
			} else {
				_, err = core.AlignBatch16(mch, q, tables, b, core.BatchOptions{Gaps: gaps})
			}
			if err != nil {
				fatal("%v", err)
			}
			cells += b.Cells(*qlen)
		}
		wsKB = 64
	case "diag16":
		baselines.Diag16(mch, q, d, mat, gaps)
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*26/1024
	case "scan16":
		baselines.Scan16(mch, q, d, mat, gaps)
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*26/1024
	case "striped16":
		prof := baselines.NewStripedProfile16(mat, q)
		baselines.Striped16(mch, prof, d, gaps)
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*90/1024
	case "striped8":
		prof := baselines.NewStripedProfile8(mat, q)
		baselines.Striped8(mch, prof, d, gaps)
		cells, wsKB = int64(*qlen)*int64(*dlen), float64(*qlen)*45/1024
	default:
		fatal("unknown kernel %q", *kernel)
	}

	for _, arch := range resolveArchs(*archList) {
		run := perfmodel.Run{Arch: arch, Tally: tal, Cells: cells, WorkingSetKB: wsKB}
		rep := profile.Analyze(fmt.Sprintf("%s qlen=%d", *kernel, *qlen), run)
		if err := rep.Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
}

func resolveArchs(list string) []*isa.Arch {
	if strings.EqualFold(list, "all") {
		return isa.All()
	}
	var out []*isa.Arch
	for _, name := range strings.Split(list, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "haswell":
			out = append(out, isa.Get(isa.Haswell))
		case "broadwell":
			out = append(out, isa.Get(isa.Broadwell))
		case "skylake":
			out = append(out, isa.Get(isa.Skylake))
		case "cascadelake":
			out = append(out, isa.Get(isa.Cascadelake))
		case "alderlake":
			out = append(out, isa.Get(isa.Alderlake))
		default:
			fatal("unknown architecture %q", name)
		}
	}
	return out
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "swprofile: "+format+"\n", args...)
	os.Exit(1)
}
