// Command swalign aligns protein sequences with the vectorized
// Smith-Waterman library: one query FASTA against a database FASTA,
// printing the top hits, or a full pairwise alignment with CIGAR when
// -traceback is set.
//
// Usage:
//
//	swalign -query q.fasta -db db.fasta [-top 10] [-threads 8]
//	swalign -query q.fasta -db db.fasta -traceback
//	swalign -gen-db 1000 dbout.fasta     # write a synthetic database
package main

import (
	"flag"
	"fmt"
	"os"

	"swvec"
)

func main() {
	var (
		queryPath = flag.String("query", "", "query FASTA file (first record is used)")
		dbPath    = flag.String("db", "", "database FASTA file")
		open      = flag.Int("open", 11, "gap open penalty (first gap residue)")
		extend    = flag.Int("extend", 1, "gap extension penalty")
		linear    = flag.Bool("linear", false, "use the linear gap model (cost = extend per residue)")
		matrix    = flag.String("matrix", "blosum62", "substitution matrix: blosum62, dna, or match/mismatch like '2/-1'")
		top       = flag.Int("top", 10, "number of top hits to print")
		threads   = flag.Int("threads", 0, "worker threads (0 = all cores)")
		traceback = flag.Bool("traceback", false, "print the full alignment of the best hit")
		genDB     = flag.Int("gen-db", 0, "generate a synthetic database with this many sequences to the file argument and exit")
		seed      = flag.Int64("seed", 42, "seed for -gen-db")
	)
	flag.Parse()

	if *genDB > 0 {
		if flag.NArg() != 1 {
			fatal("usage: swalign -gen-db N out.fasta")
		}
		f, err := os.Create(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := swvec.WriteFasta(f, swvec.GenerateDatabase(*seed, *genDB)); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d synthetic sequences to %s\n", *genDB, flag.Arg(0))
		return
	}
	if *queryPath == "" || *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	queries := readFasta(*queryPath)
	if len(queries) == 0 {
		fatal("no query records in %s", *queryPath)
	}
	db := readFasta(*dbPath)
	if len(db) == 0 {
		fatal("no database records in %s", *dbPath)
	}

	opts := []swvec.Option{swvec.WithThreads(*threads), swvec.WithLengthSortedBatches()}
	if *linear {
		opts = append(opts, swvec.WithLinearGap(int32(*extend)))
	} else {
		opts = append(opts, swvec.WithGaps(int32(*open), int32(*extend)))
	}
	if m := parseMatrixFlag(*matrix); m != nil {
		opts = append(opts, swvec.WithMatrix(m))
	}
	al, err := swvec.New(opts...)
	if err != nil {
		fatal("%v", err)
	}

	query := queries[0]
	res, err := al.Search(query.Residues, db)
	if err != nil {
		fatal("search: %v", err)
	}
	fmt.Printf("query %s (%d aa) vs %d sequences: %.2f GCUPS wall clock, %d rescued at 16 bits\n",
		query.ID, query.Len(), len(db), res.GCUPS(), res.Rescued)
	hits := res.TopHits(*top)
	for rank, h := range hits {
		fmt.Printf("%3d. score %5d  %s (%d aa)\n", rank+1, h.Score, db[h.SeqIndex].ID, db[h.SeqIndex].Len())
	}
	if *traceback && len(hits) > 0 && hits[0].Score > 0 {
		best := db[hits[0].SeqIndex]
		a, err := al.Align(query.Residues, best.Residues)
		if err != nil {
			fatal("traceback: %v", err)
		}
		fmt.Printf("\nbest alignment vs %s:\n  score %d  query[%d..%d] target[%d..%d]\n  CIGAR %s\n",
			best.ID, a.Score, a.BegQ, a.EndQ, a.BegD, a.EndD, a.CigarString())
	}
}

func readFasta(path string) []swvec.Sequence {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	seqs, err := swvec.ReadFasta(f)
	if err != nil {
		fatal("%v", err)
	}
	return seqs
}

func parseMatrixFlag(s string) *swvec.Matrix {
	switch s {
	case "blosum62", "":
		return swvec.Blosum62()
	case "dna":
		return swvec.DNAMatrix()
	}
	var match, mismatch int
	if n, err := fmt.Sscanf(s, "%d/%d", &match, &mismatch); err == nil && n == 2 {
		return swvec.MatchMismatch(int8(match), int8(mismatch))
	}
	fatal("unknown matrix %q (want blosum62, dna, or match/mismatch like 2/-1)", s)
	return nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "swalign: "+format+"\n", args...)
	os.Exit(1)
}
