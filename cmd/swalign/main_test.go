package main

import (
	"os"
	"path/filepath"
	"testing"

	"swvec"
)

func TestParseMatrixFlag(t *testing.T) {
	if parseMatrixFlag("blosum62") != swvec.Blosum62() {
		t.Error("blosum62 flag wrong")
	}
	if parseMatrixFlag("") != swvec.Blosum62() {
		t.Error("empty flag should default to blosum62")
	}
	if parseMatrixFlag("dna") != swvec.DNAMatrix() {
		t.Error("dna flag wrong")
	}
	m := parseMatrixFlag("2/-1")
	if m == nil {
		t.Fatal("match/mismatch flag rejected")
	}
	if match, mismatch, ok := m.FixedScores(); !ok || match != 2 || mismatch != -1 {
		t.Errorf("parsed matrix scores %d/%d ok=%v", match, mismatch, ok)
	}
}

func TestReadFastaHelper(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fasta")
	if err := os.WriteFile(path, []byte(">a\nMKVLAW\n>b\nACDE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seqs := readFasta(path)
	if len(seqs) != 2 || seqs[0].ID != "a" || string(seqs[1].Residues) != "ACDE" {
		t.Fatalf("parsed %+v", seqs)
	}
}
