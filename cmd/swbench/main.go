// Command swbench regenerates the paper's evaluation figures
// (Figs. 6-14) from the reproduction's kernels, the instrumented
// vector machine and the architecture models.
//
// Usage:
//
//	swbench                 # all figures, full workload
//	swbench -fig 14         # one figure
//	swbench -quick          # small workloads
//	swbench -csv            # CSV instead of aligned tables
//	swbench -stats          # append the cumulative pipeline counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swvec/internal/core"
	"swvec/internal/figures"
	"swvec/internal/metrics"
	"swvec/internal/stats"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 6..14, det, port, mem, pipe, or all")
		quick     = flag.Bool("quick", false, "small workloads for fast runs")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed      = flag.Int64("seed", 42, "workload seed")
		db        = flag.Int("db", 0, "database size override (sequences)")
		width     = flag.String("width", "auto", "search-pipeline vector width: 256, 512, or auto")
		backend   = flag.String("backend", "auto", "execution backend: auto, modeled, or native (instrumented figures resolve auto to modeled)")
		kernel    = flag.String("kernel", "auto", "kernel family: auto, diagonal, striped, or lazyf (instrumented figures resolve auto to diagonal)")
		pipeStats = flag.Bool("stats", false, "print the cumulative per-stage pipeline counters after the run")
	)
	flag.Parse()

	var bits int
	switch *width {
	case "auto":
		bits = 0
	case "256":
		bits = 256
	case "512":
		bits = 512
	default:
		fmt.Fprintf(os.Stderr, "swbench: unknown width %q (want 256, 512, or auto)\n", *width)
		os.Exit(2)
	}

	be, err := core.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swbench: %v\n", err)
		os.Exit(2)
	}

	kern, err := core.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swbench: %v\n", err)
		os.Exit(2)
	}

	cfg := figures.Config{Quick: *quick, Seed: *seed, DBSize: *db, Width: bits, Backend: be, Kernel: kern}
	var tables []*stats.Table
	run := func(id string) {
		switch id {
		case "6":
			tables = append(tables, figures.Fig06AVX2vsAVX512(cfg))
		case "7":
			tables = append(tables, figures.Fig07AffineGap(cfg))
		case "8":
			tables = append(tables, figures.Fig08Traceback(cfg))
		case "9":
			tables = append(tables, figures.Fig09SubstMatrix(cfg))
		case "10":
			tables = append(tables, figures.Fig10Tuning(cfg))
		case "11":
			tables = append(tables, figures.Fig11Scaling(cfg))
		case "12":
			tables = append(tables, figures.Fig12TopDown(cfg)...)
		case "13":
			tables = append(tables, figures.Fig13Scenarios(cfg))
		case "14":
			t, h := figures.Fig14VsParasail(cfg)
			tables = append(tables, t)
			fmt.Fprintf(os.Stderr, "headline: %s (paper: 3.9x / 1.9x / 1.5x)\n", h)
		case "det", "determinism":
			tables = append(tables, figures.Determinism(cfg))
		case "port", "portability":
			tables = append(tables, figures.Portability(cfg))
		case "mem", "memory":
			tables = append(tables, figures.MemoryAnalysis(cfg))
		case "pipe", "pipeline":
			tables = append(tables, figures.PipelineReport(cfg))
		default:
			fmt.Fprintf(os.Stderr, "swbench: unknown figure %q\n", id)
			os.Exit(2)
		}
	}

	switch strings.ToLower(*fig) {
	case "all":
		for f := 6; f <= 14; f++ {
			run(strconv.Itoa(f))
		}
		run("det")
		run("port")
		run("mem")
		run("pipe")
	default:
		for _, id := range strings.Split(*fig, ",") {
			run(strings.TrimSpace(id))
		}
	}

	for _, t := range tables {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "swbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *pipeStats {
		fmt.Println("\n# pipeline counters (cumulative across the run)")
		if err := metrics.Global.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: %v\n", err)
			os.Exit(1)
		}
	}
}
