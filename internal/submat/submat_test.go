package submat

import (
	"strings"
	"testing"
	"testing/quick"

	"swvec/internal/alphabet"
	"swvec/internal/vek"
)

func TestBlosum62KnownScores(t *testing.T) {
	m := Blosum62()
	a := alphabet.ProteinAlphabet()
	cases := []struct {
		q, r byte
		want int8
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'R', 'A', -1},
		{'W', 'G', -2}, {'P', 'F', -4},
		{'I', 'V', 3}, {'E', 'Z', 4}, {'N', 'B', 3},
		{'X', 'X', -1}, {'*', '*', 1}, {'A', '*', -4},
		{'U', 'C', 9}, // U scores as C
		{'O', 'K', 5}, // O scores as K
		{'J', 'L', 4}, // J scores as L
	}
	for _, c := range cases {
		got := m.Score(a.Index(c.q), a.Index(c.r))
		if got != c.want {
			t.Errorf("Score(%c,%c) = %d, want %d", c.q, c.r, got, c.want)
		}
	}
}

func TestBlosum62Symmetric(t *testing.T) {
	m := Blosum62()
	n := m.Alphabet().Size()
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			if m.Score(uint8(q), uint8(r)) != m.Score(uint8(r), uint8(q)) {
				t.Fatalf("asymmetric at (%d,%d)", q, r)
			}
		}
	}
}

func TestBlosum62MaxMin(t *testing.T) {
	m := Blosum62()
	if m.Max() != 11 {
		t.Errorf("max = %d, want 11 (W/W)", m.Max())
	}
	if m.Min() != -4 {
		t.Errorf("min = %d, want -4", m.Min())
	}
}

func TestSentinelRowsArePenalized(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	if got := m.Score(alphabet.Sentinel, a.Index('A')); got != SentinelScore {
		t.Errorf("sentinel row score = %d, want %d", got, SentinelScore)
	}
	if got := m.Score(a.Index('A'), alphabet.Sentinel); got != SentinelScore {
		t.Errorf("sentinel col score = %d, want %d", got, SentinelScore)
	}
}

func TestFlat32MatchesScoreProperty(t *testing.T) {
	m := Blosum62()
	flat := m.Flat32()
	f := func(q, r uint8) bool {
		q &= 31
		r &= 31
		return flat[int(q)*W+int(r)] == int32(m.Score(q, r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowAliasesScores(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	q := a.Index('K')
	row := m.Row(q)
	if len(row) != W {
		t.Fatalf("row width = %d, want %d", len(row), W)
	}
	for r := 0; r < W; r++ {
		if row[r] != m.Score(q, uint8(r)) {
			t.Fatalf("row[%d] = %d, want %d", r, row[r], m.Score(q, uint8(r)))
		}
	}
}

func TestMatchMismatch(t *testing.T) {
	m := MatchMismatch(alphabet.ProteinAlphabet(), 2, -1)
	a := m.Alphabet()
	if got := m.Score(a.Index('A'), a.Index('A')); got != 2 {
		t.Errorf("match = %d, want 2", got)
	}
	if got := m.Score(a.Index('A'), a.Index('W')); got != -1 {
		t.Errorf("mismatch = %d, want -1", got)
	}
	if m.Max() != 2 || m.Min() != -1 {
		t.Errorf("max/min = %d/%d, want 2/-1", m.Max(), m.Min())
	}
}

func TestDNADefault(t *testing.T) {
	m := DNADefault()
	a := m.Alphabet()
	if got := m.Score(a.Index('A'), a.Index('A')); got != 2 {
		t.Errorf("A/A = %d, want 2", got)
	}
	if got := m.Score(a.Index('A'), a.Index('G')); got != -3 {
		t.Errorf("A/G = %d, want -3", got)
	}
	if got := m.Score(a.Index('N'), a.Index('G')); got != 0 {
		t.Errorf("N/G = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	a := alphabet.ProteinAlphabet()
	if _, err := New("bad", a, 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New("bad", a, 40, make([]int8, 1600)); err == nil {
		t.Error("n>32 accepted")
	}
	if _, err := New("bad", a, 3, make([]int8, 8)); err == nil {
		t.Error("wrong table size accepted")
	}
}

func TestProfile8MatchesMatrix(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	query := a.EncodeString("MKVLAWGQ")
	p := NewProfile8(m, query)
	if p.Len() != len(query) {
		t.Fatalf("len = %d, want %d", p.Len(), len(query))
	}
	for i, q := range query {
		for r := 0; r < W; r++ {
			if p.Score(i, uint8(r)) != m.Score(q, uint8(r)) {
				t.Fatalf("profile(%d,%d) = %d, want %d", i, r, p.Score(i, uint8(r)), m.Score(q, uint8(r)))
			}
		}
	}
}

func TestProfile8LookupScoresProperty(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	query := a.EncodeString("ACDEFGHIKLMNPQRSTVWY")
	p := NewProfile8(m, query)
	f := func(rawIdx [32]uint8, pos uint8) bool {
		i := int(pos) % p.Len()
		var idx vek.I8x32
		for l := range idx {
			idx[l] = int8(rawIdx[l] & 31)
		}
		got := p.LookupScores(vek.Bare, i, idx)
		for l := range got {
			if got[l] != p.Score(i, uint8(idx[l])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGatherIndices(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	q := a.Index('W')
	r := vek.I32x8{0, 1, 2, 3, 4, 5, 6, 7}
	idx := GatherIndices(vek.Bare, q, r)
	flat := m.Flat32()
	got := vek.Bare.Gather32(flat, idx)
	for l := 0; l < 8; l++ {
		if got[l] != int32(m.Score(q, uint8(r[l]))) {
			t.Fatalf("gather lane %d = %d, want %d", l, got[l], m.Score(q, uint8(r[l])))
		}
	}
}

func TestProfile16MatchesMatrix(t *testing.T) {
	m := Blosum62()
	a := m.Alphabet()
	query := a.EncodeString("WYVKR")
	p := NewProfile16(m, query)
	for i, q := range query {
		row := p.Row(i)
		for r := 0; r < W; r++ {
			if row[r] != int16(m.Score(q, uint8(r))) || p.Score(i, uint8(r)) != int16(m.Score(q, uint8(r))) {
				t.Fatalf("profile16(%d,%d) wrong", i, r)
			}
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	m := Blosum62()
	var b strings.Builder
	if err := Format(&b, m); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(b.String()), "BLOSUM62-rt", m.Alphabet())
	if err != nil {
		t.Fatal(err)
	}
	n := m.Alphabet().Size()
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			if parsed.Score(uint8(q), uint8(r)) != m.Score(uint8(q), uint8(r)) {
				t.Fatalf("round trip mismatch at (%d,%d): %d vs %d",
					q, r, parsed.Score(uint8(q), uint8(r)), m.Score(uint8(q), uint8(r)))
			}
		}
	}
}

func TestParseSmallMatrix(t *testing.T) {
	src := `# tiny DNA matrix
   A  C  G  T
A  5 -4 -4 -4
C -4  5 -4 -4
G -4 -4  5 -4
T -4 -4 -4  5
`
	m, err := Parse(strings.NewReader(src), "tiny", alphabet.DNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alphabet()
	if got := m.Score(a.Index('A'), a.Index('A')); got != 5 {
		t.Errorf("A/A = %d, want 5", got)
	}
	if got := m.Score(a.Index('A'), a.Index('T')); got != -4 {
		t.Errorf("A/T = %d, want -4", got)
	}
	// N was not in the file: keeps sentinel.
	if got := m.Score(a.Index('N'), a.Index('A')); got != SentinelScore {
		t.Errorf("N/A = %d, want sentinel %d", got, SentinelScore)
	}
}

func TestParseErrors(t *testing.T) {
	a := alphabet.DNAAlphabet()
	cases := []string{
		"",                        // empty
		"A C\nA 1",                // row too short
		"   A  C\nAB 1 2",         // multi-letter row label
		"   A  C\nA 1 x",          // non-numeric score
		"   AB C\nA 1 2",          // multi-letter header
		"   A  Q\nA 1 2\nQ 1 2",   // residue not in DNA alphabet
		"   A  C\nA 999 1\nC 1 1", // score overflows int8
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), "bad", a); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
