package submat

import (
	"swvec/internal/vek"
)

// Profile8 is the runtime query profile of §III-C: for every query
// position it holds the 32-wide substitution-matrix row of that
// position's residue, prepared as a pair of shuffle tables so the
// 8-bit kernels can score 32 database residues with two vpshufb
// issues and a blend instead of a (nonexistent) 8-bit gather.
//
// For query position i, Lo(i) carries row bytes 0..15 duplicated into
// both 128-bit halves and Hi(i) carries bytes 16..31 likewise; see
// ScoreBatch in internal/core for the lookup sequence.
type Profile8 struct {
	query []uint8
	// rows is the flattened profile: rows[i*W+c] = Score(query[i], c).
	rows []int8
	// lo and hi are the prepared shuffle tables, one pair per query
	// position.
	lo []vek.I8x32
	hi []vek.I8x32
}

// NewProfile8 builds the 8-bit query profile for the encoded query.
func NewProfile8(m *Matrix, query []uint8) *Profile8 {
	p := &Profile8{
		query: query,
		rows:  make([]int8, len(query)*W),
		lo:    make([]vek.I8x32, len(query)),
		hi:    make([]vek.I8x32, len(query)),
	}
	for i, q := range query {
		row := m.Row(q)
		copy(p.rows[i*W:(i+1)*W], row)
		var lo, hi vek.I8x32
		for k := 0; k < 16; k++ {
			lo[k] = row[k]
			lo[16+k] = row[k]
			hi[k] = row[16+k]
			hi[16+k] = row[16+k]
		}
		p.lo[i] = lo
		p.hi[i] = hi
	}
	return p
}

// Len returns the query length.
func (p *Profile8) Len() int { return len(p.query) }

// Query returns the encoded query the profile was built from. The
// slice aliases the profile; callers must not modify it.
func (p *Profile8) Query() []uint8 { return p.query }

// Row returns the 32-wide score row for query position i. The slice
// aliases the profile.
func (p *Profile8) Row(i int) []int8 { return p.rows[i*W : (i+1)*W] }

// Score returns the profile score at query position i against residue
// code r.
func (p *Profile8) Score(i int, r uint8) int8 { return p.rows[i*W+int(r)] }

// Lo returns the low-half shuffle table for query position i.
func (p *Profile8) Lo(i int) vek.I8x32 { return p.lo[i] }

// Hi returns the high-half shuffle table for query position i.
func (p *Profile8) Hi(i int) vek.I8x32 { return p.hi[i] }

// LookupScores computes, with vector instructions, the 32 scores of
// query position i against the 32 residue codes in idx: the lane-wise
// equivalent of Score(i, idx[lane]). It issues the two-shuffle/blend
// sequence the paper uses in place of an 8-bit gather: codes 0..15
// select from the low table, codes 16..31 from the high table, and a
// compare on bit 4 of the code steers the blend.
func (p *Profile8) LookupScores(mch vek.Machine, i int, idx vek.I8x32) vek.I8x32 {
	fifteen := mch.Splat8(15)
	// maskHi lanes are 0xFF where the code is >= 16.
	maskHi := mch.CmpGt8(idx, fifteen)
	low4 := mch.And8(idx, fifteen)
	fromLo := mch.Shuffle8(p.lo[i], low4)
	fromHi := mch.Shuffle8(p.hi[i], low4)
	return mch.Blend8(fromLo, fromHi, maskHi)
}

// GatherIndices builds the flattened-matrix gather indices for the
// 16/32-bit path: idx[lane] = int32(q)*W + int32(r[lane]) addresses
// Matrix.Flat32. q is the query residue code shared by all lanes.
func GatherIndices(mch vek.Machine, q uint8, r vek.I32x8) vek.I32x8 {
	base := mch.Splat32(int32(q) * W)
	return mch.Add32(base, r)
}

// CodeTables holds, for every residue code, the pair of 16-byte
// shuffle tables covering that code's 32-wide matrix row. The batch
// engine uses them to turn a column of 32 database residue codes into
// 32 substitution scores with two shuffles and a blend ("interleaving
// data coming from the substitution matrix").
type CodeTables struct {
	mat *Matrix
	lo  [W]vek.I8x32
	hi  [W]vek.I8x32
}

// NewCodeTables prepares the shuffle tables for every residue code of
// the matrix, including sentinel rows.
func NewCodeTables(m *Matrix) *CodeTables {
	t := &CodeTables{mat: m}
	for c := 0; c < W; c++ {
		row := m.Row(uint8(c))
		var lo, hi vek.I8x32
		for k := 0; k < 16; k++ {
			lo[k] = row[k]
			lo[16+k] = row[k]
			hi[k] = row[16+k]
			hi[16+k] = row[16+k]
		}
		t.lo[c] = lo
		t.hi[c] = hi
	}
	return t
}

// Matrix returns the substitution matrix the tables were built from,
// so backends that score directly from matrix rows (internal/native)
// can share the tables handle the search pipeline already threads.
func (t *CodeTables) Matrix() *Matrix { return t.mat }

// LookupScores computes the 32 scores of query residue code c against
// the 32 residue codes in idx, with the same two-shuffle/blend
// sequence as Profile8.LookupScores.
func (t *CodeTables) LookupScores(mch vek.Machine, c uint8, idx vek.I8x32) vek.I8x32 {
	fifteen := mch.Splat8(15)
	maskHi := mch.CmpGt8(idx, fifteen)
	low4 := mch.And8(idx, fifteen)
	fromLo := mch.Shuffle8(t.lo[c], low4)
	fromHi := mch.Shuffle8(t.hi[c], low4)
	return mch.Blend8(fromLo, fromHi, maskHi)
}

// LookupScoresW is the 512-bit form of LookupScores: the 64 scores of
// query residue code c against the 64 residue codes in idx, using the
// same two-shuffle/blend sequence widened to zmm registers (the 16-byte
// tables are broadcast across all four 128-bit quarters).
func (t *CodeTables) LookupScoresW(mch vek.Machine, c uint8, idx vek.I8x64) vek.I8x64 {
	loW := vek.I8x64{Lo: t.lo[c], Hi: t.lo[c]}
	hiW := vek.I8x64{Lo: t.hi[c], Hi: t.hi[c]}
	fifteen := mch.Splat8W(15)
	maskHi := mch.CmpGt8W(idx, fifteen)
	low4 := mch.And8W(idx, fifteen)
	fromLo := mch.Shuffle8W(loW, low4)
	fromHi := mch.Shuffle8W(hiW, low4)
	return mch.Blend8W(fromLo, fromHi, maskHi)
}

// Profile16 is the widened query profile used when the 8-bit kernels
// escalate after saturation: the same row layout, stored as int16.
type Profile16 struct {
	query []uint8
	rows  []int16
}

// NewProfile16 builds the 16-bit query profile for the encoded query.
func NewProfile16(m *Matrix, query []uint8) *Profile16 {
	p := &Profile16{
		query: query,
		rows:  make([]int16, len(query)*W),
	}
	for i, q := range query {
		row := m.Row(q)
		for c := 0; c < W; c++ {
			p.rows[i*W+c] = int16(row[c])
		}
	}
	return p
}

// Len returns the query length.
func (p *Profile16) Len() int { return len(p.query) }

// Row returns the 32-wide int16 score row for query position i. The
// slice aliases the profile.
func (p *Profile16) Row(i int) []int16 { return p.rows[i*W : (i+1)*W] }

// Score returns the profile score at query position i against residue
// code r.
func (p *Profile16) Score(i int, r uint8) int16 { return p.rows[i*W+int(r)] }
