// Package submat provides protein and DNA substitution matrices in the
// reorganized 32-wide layout described in §III-C of the paper: every
// row holds 32 int8 scores (one 256-bit register), rows and columns are
// indexed by the alphabet's residue codes, and the rows/columns beyond
// the real residues are sentinel entries with a strongly negative
// score. This layout lets the kernels read a full matrix row with a
// single vector load and address the flattened matrix with 32-bit
// gathers without any bounds logic.
package submat

import (
	"fmt"

	"swvec/internal/alphabet"
)

// W is the padded row width (= alphabet.Width = 32 int8 scores,
// exactly one 256-bit register).
const W = alphabet.Width

// SentinelScore is the score assigned to any pairing that involves a
// padding/sentinel code. It is negative enough that sentinels never
// join a local alignment, but far from the int8 minimum so that
// saturating arithmetic cannot wrap it into usable territory.
const SentinelScore = -16

// Matrix is a substitution matrix in the reorganized layout.
type Matrix struct {
	name  string
	alpha *alphabet.Alphabet
	// scores is row-major: scores[q*W+r] is the score for aligning
	// query residue code q against database residue code r.
	scores [W * W]int8
	// flat32 is the widened copy used by the vector gather path.
	flat32 [W * W]int32
	maxSc  int8
	minSc  int8
}

// New builds a Matrix from a square score table over the first n
// residue codes of alpha. Entries outside the table are filled with
// SentinelScore. table must be n×n, row-major.
func New(name string, alpha *alphabet.Alphabet, n int, table []int8) (*Matrix, error) {
	if n <= 0 || n > W {
		return nil, fmt.Errorf("submat: residue count %d out of range (1..%d)", n, W)
	}
	if len(table) != n*n {
		return nil, fmt.Errorf("submat: table has %d entries, want %d", len(table), n*n)
	}
	m := &Matrix{name: name, alpha: alpha}
	for i := range m.scores {
		m.scores[i] = SentinelScore
	}
	m.maxSc, m.minSc = table[0], table[0]
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			s := table[q*n+r]
			m.scores[q*W+r] = s
			if s > m.maxSc {
				m.maxSc = s
			}
			if s < m.minSc {
				m.minSc = s
			}
		}
	}
	for i, s := range m.scores {
		m.flat32[i] = int32(s)
	}
	return m, nil
}

// MatchMismatch builds the fixed-score matrix used by the paper's
// "without substitution matrix" configurations (Fig. 9): match on
// identical residues, mismatch otherwise, over all real residues of
// alpha.
func MatchMismatch(alpha *alphabet.Alphabet, match, mismatch int8) *Matrix {
	n := alpha.Size()
	table := make([]int8, n*n)
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			if q == r {
				table[q*n+r] = match
			} else {
				table[q*n+r] = mismatch
			}
		}
	}
	m, err := New(fmt.Sprintf("match%d/mismatch%d", match, mismatch), alpha, n, table)
	if err != nil {
		// n and table are constructed consistently above.
		panic(err)
	}
	return m
}

// FixedScores reports whether the matrix is a uniform match/mismatch
// matrix over its real residues, returning the two scores. Kernels use
// this to replace table lookups with a compare-and-blend (the Fig. 9
// "without substitution matrix" fast path).
func (m *Matrix) FixedScores() (match, mismatch int8, ok bool) {
	n := m.alpha.Size()
	if n < 2 {
		return 0, 0, false
	}
	match = m.Score(0, 0)
	mismatch = m.Score(0, 1)
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			want := mismatch
			if q == r {
				want = match
			}
			if m.Score(uint8(q), uint8(r)) != want {
				return 0, 0, false
			}
		}
	}
	return match, mismatch, true
}

// Name returns the matrix name, e.g. "BLOSUM62".
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the alphabet the matrix is indexed by.
func (m *Matrix) Alphabet() *alphabet.Alphabet { return m.alpha }

// Score returns the score for query residue code q against database
// residue code r. Any code in [0, W) is valid, including sentinels.
func (m *Matrix) Score(q, r uint8) int8 { return m.scores[int(q)*W+int(r)] }

// Row returns the 32-wide row for query residue code q. The returned
// slice aliases the matrix; callers must not modify it.
func (m *Matrix) Row(q uint8) []int8 { return m.scores[int(q)*W : int(q)*W+W] }

// Flat32 returns the widened row-major matrix for the 32-bit gather
// path: Flat32()[q*32+r] == int32(Score(q, r)). The slice aliases the
// matrix; callers must not modify it.
func (m *Matrix) Flat32() []int32 { return m.flat32[:] }

// Max returns the largest score in the real residue block.
func (m *Matrix) Max() int8 { return m.maxSc }

// Min returns the smallest score in the real residue block (excluding
// sentinel padding).
func (m *Matrix) Min() int8 { return m.minSc }

// blosum62 is the standard NCBI BLOSUM62 table over the 24 residue
// order ARNDCQEGHILKMFPSTWYVBZX* (Henikoff & Henikoff 1992). The
// paper's protein experiments use BLOSUM-family scoring.
var blosum62Table = []int8{
	// A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
	4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4,
	-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4,
	-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4,
	-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4,
	0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4,
	-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4,
	-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4,
	0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4,
	-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4,
	-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4,
	-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4,
	-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4,
	-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4,
	-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4,
	-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4,
	1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4,
	0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4,
	-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4,
	-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4,
	0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4,
	-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4,
	-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4,
	0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4,
	-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1,
}

var blosum62 = mustBuildBlosum62()

func mustBuildBlosum62() *Matrix {
	alpha := alphabet.ProteinAlphabet()
	// The protein alphabet orders residues ARNDCQEGHILKMFPSTWYV BZX
	// then U, O, J, '*'. The BLOSUM62 table covers the first 23 codes
	// plus '*'. Expand it onto the full alphabet: U scores as C, O as
	// K, J as the min of I and L (NCBI convention).
	n := alpha.Size()
	table := make([]int8, n*n)
	// src maps an alphabet code to its row in blosum62Table.
	src := make([]int, n)
	order := "ARNDCQEGHILKMFPSTWYVBZX"
	pos := map[byte]int{}
	for i := 0; i < len(order); i++ {
		pos[order[i]] = i
	}
	for code := 0; code < n; code++ {
		letter := alpha.Letters()[code]
		switch letter {
		case 'U':
			src[code] = pos['C']
		case 'O':
			src[code] = pos['K']
		case 'J':
			src[code] = pos['L'] // min(I, L) == L scores for BLOSUM62
		case '*':
			src[code] = 23
		default:
			src[code] = pos[letter]
		}
	}
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			table[q*n+r] = blosum62Table[src[q]*24+src[r]]
		}
	}
	m, err := New("BLOSUM62", alpha, n, table)
	if err != nil {
		panic(err)
	}
	return m
}

// Blosum62 returns the shared BLOSUM62 matrix in reorganized layout.
func Blosum62() *Matrix { return blosum62 }

var dnaDefault = buildDNADefault()

// DNADefault returns the shared simple DNA matrix (match +2, mismatch
// -3, N scores 0 against everything) commonly used for nucleotide SW.
func DNADefault() *Matrix { return dnaDefault }

func buildDNADefault() *Matrix {
	alpha := alphabet.DNAAlphabet()
	n := alpha.Size()
	table := make([]int8, n*n)
	for q := 0; q < n; q++ {
		for r := 0; r < n; r++ {
			switch {
			case q == 4 || r == 4: // N
				table[q*n+r] = 0
			case q == r:
				table[q*n+r] = 2
			default:
				table[q*n+r] = -3
			}
		}
	}
	m, err := New("DNA+2/-3", alpha, n, table)
	if err != nil {
		panic(err)
	}
	return m
}
