package submat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"swvec/internal/alphabet"
)

// Parse reads a substitution matrix in the NCBI text format:
//
//	# optional comment lines
//	   A  R  N  D ...
//	A  4 -1 -2 -2 ...
//	R -1  5  0 -2 ...
//
// The column header defines the residue order; each data line starts
// with its residue letter. Residues are mapped onto alpha's codes;
// letters unknown to alpha are rejected. Missing residue pairs keep
// the SentinelScore.
func Parse(r io.Reader, name string, alpha *alphabet.Alphabet) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	var header []uint8
	n := alpha.Size()
	table := make([]int8, n*n)
	for i := range table {
		table[i] = SentinelScore
	}
	seenRows := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			header = make([]uint8, 0, len(fields))
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("submat: header field %q is not a single residue letter", f)
				}
				code := alpha.Index(f[0])
				if code == alphabet.Sentinel && f[0] != '*' {
					return nil, fmt.Errorf("submat: header residue %q not in alphabet", f)
				}
				header = append(header, code)
			}
			continue
		}
		if len(fields) != len(header)+1 {
			return nil, fmt.Errorf("submat: row %q has %d scores, want %d", fields[0], len(fields)-1, len(header))
		}
		if len(fields[0]) != 1 {
			return nil, fmt.Errorf("submat: row label %q is not a single residue letter", fields[0])
		}
		q := alpha.Index(fields[0][0])
		if q == alphabet.Sentinel && fields[0][0] != '*' {
			return nil, fmt.Errorf("submat: row residue %q not in alphabet", fields[0])
		}
		for k, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 8)
			if err != nil {
				return nil, fmt.Errorf("submat: bad score %q in row %q: %v", f, fields[0], err)
			}
			c := header[k]
			if int(q) < n && int(c) < n {
				table[int(q)*n+int(c)] = int8(v)
			}
		}
		seenRows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("submat: reading matrix: %v", err)
	}
	if header == nil || seenRows == 0 {
		return nil, fmt.Errorf("submat: no matrix data found")
	}
	return New(name, alpha, n, table)
}

// Format writes the matrix in the NCBI text format over the real
// residues of its alphabet (sentinel rows are omitted).
func Format(w io.Writer, m *Matrix) error {
	alpha := m.Alphabet()
	n := alpha.Size()
	var b strings.Builder
	b.WriteString("# ")
	b.WriteString(m.Name())
	b.WriteString("\n  ")
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, " %2c", alpha.Letter(uint8(c)))
	}
	b.WriteByte('\n')
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "%c ", alpha.Letter(uint8(q)))
		for c := 0; c < n; c++ {
			fmt.Fprintf(&b, " %2d", m.Score(uint8(q), uint8(c)))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
