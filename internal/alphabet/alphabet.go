// Package alphabet defines residue encodings for protein and DNA
// sequences. Encodings map ASCII residue letters to small integer
// indices that address rows and columns of a substitution matrix.
//
// The protein encoding follows the reorganized 32-wide substitution
// matrix layout from the paper: the 20 standard amino acids occupy
// indices 0..19, the ambiguity codes B, Z, X and the unknown/stop
// characters occupy the following rows, and the remaining rows up to 32
// are sentinel rows whose scores are uniformly the minimum penalty, so
// that any byte can be translated to an index without bounds checks.
package alphabet

import "fmt"

// Kind identifies an alphabet family.
type Kind uint8

const (
	// Protein is the 20-letter amino-acid alphabet plus ambiguity codes.
	Protein Kind = iota
	// DNA is the 4-letter nucleotide alphabet plus N.
	DNA
)

// Width is the number of rows in the reorganized substitution matrix.
// It is fixed at 32 so one matrix row of int8 scores fills exactly one
// 256-bit vector register, as described in §III-C of the paper.
const Width = 32

// Sentinel is the index used for any byte that does not encode a
// residue. Scores involving Sentinel are strongly negative so padding
// never participates in an optimal local alignment.
const Sentinel = Width - 1

// proteinLetters lists the canonical residue order used by the
// reorganized matrix: the 20 standard amino acids in alphabetical
// order, then B (Asx), Z (Glx), X (any), U (Sec, scored as C),
// O (Pyl, scored as K), J (Xle), and '*' (stop).
const proteinLetters = "ARNDCQEGHILKMFPSTWYVBZXUOJ*"

// dnaLetters lists nucleotides followed by the ambiguity code N.
const dnaLetters = "ACGTN"

// An Alphabet translates sequence bytes to matrix indices and back.
type Alphabet struct {
	kind    Kind
	letters string
	// enc maps every possible byte to an index in [0, Width).
	enc [256]uint8
}

var (
	proteinAlpha = build(Protein, proteinLetters)
	dnaAlpha     = build(DNA, dnaLetters)
)

// ForKind returns the shared alphabet instance for kind.
func ForKind(kind Kind) *Alphabet {
	if kind == DNA {
		return dnaAlpha
	}
	return proteinAlpha
}

// ProteinAlphabet returns the shared protein alphabet.
func ProteinAlphabet() *Alphabet { return proteinAlpha }

// DNAAlphabet returns the shared DNA alphabet.
func DNAAlphabet() *Alphabet { return dnaAlpha }

func build(kind Kind, letters string) *Alphabet {
	a := &Alphabet{kind: kind, letters: letters}
	for i := range a.enc {
		a.enc[i] = Sentinel
	}
	for i := 0; i < len(letters); i++ {
		upper := letters[i]
		a.enc[upper] = uint8(i)
		if upper >= 'A' && upper <= 'Z' {
			a.enc[upper+('a'-'A')] = uint8(i)
		}
	}
	return a
}

// Kind reports the alphabet family.
func (a *Alphabet) Kind() Kind { return a.kind }

// Size returns the number of real (non-sentinel) residue codes.
func (a *Alphabet) Size() int { return len(a.letters) }

// Index returns the matrix index for residue byte b. Unknown bytes map
// to Sentinel.
func (a *Alphabet) Index(b byte) uint8 { return a.enc[b] }

// Letter returns the canonical letter for index i, or '?' if i is not a
// real residue index.
func (a *Alphabet) Letter(i uint8) byte {
	if int(i) < len(a.letters) {
		return a.letters[i]
	}
	return '?'
}

// Encode translates an ASCII sequence into matrix indices. The result
// always has len(seq) entries; unknown bytes become Sentinel.
func (a *Alphabet) Encode(seq []byte) []uint8 {
	out := make([]uint8, len(seq))
	for i, b := range seq {
		out[i] = a.enc[b]
	}
	return out
}

// EncodeTo encodes seq into dst, growing dst only when its capacity is
// insufficient, and returns the encoded slice (always len(seq)
// entries). Workers on the search hot path use it to reuse one encode
// buffer across sequences.
func (a *Alphabet) EncodeTo(dst []uint8, seq []byte) []uint8 {
	if cap(dst) < len(seq) {
		dst = make([]uint8, len(seq))
	}
	dst = dst[:len(seq)]
	for i, b := range seq {
		dst[i] = a.enc[b]
	}
	return dst
}

// EncodeString is Encode for a string input.
func (a *Alphabet) EncodeString(seq string) []uint8 {
	out := make([]uint8, len(seq))
	for i := 0; i < len(seq); i++ {
		out[i] = a.enc[seq[i]]
	}
	return out
}

// Decode translates matrix indices back into ASCII letters.
func (a *Alphabet) Decode(idx []uint8) []byte {
	out := make([]byte, len(idx))
	for i, v := range idx {
		out[i] = a.Letter(v)
	}
	return out
}

// Validate reports an error when seq contains a byte that is not a
// residue, ambiguity code, or lowercase variant thereof.
func (a *Alphabet) Validate(seq []byte) error {
	for i, b := range seq {
		if a.enc[b] == Sentinel {
			return fmt.Errorf("alphabet: byte %q at position %d is not a valid residue", b, i)
		}
	}
	return nil
}

// Letters returns the canonical residue order as a string.
func (a *Alphabet) Letters() string { return a.letters }
