package alphabet

import (
	"testing"
	"testing/quick"
)

func TestProteinRoundTrip(t *testing.T) {
	a := ProteinAlphabet()
	for i := 0; i < a.Size(); i++ {
		letter := a.Letters()[i]
		if got := a.Index(letter); got != uint8(i) {
			t.Errorf("Index(%q) = %d, want %d", letter, got, i)
		}
		if got := a.Letter(uint8(i)); got != letter {
			t.Errorf("Letter(%d) = %q, want %q", i, got, letter)
		}
	}
}

func TestProteinLowercase(t *testing.T) {
	a := ProteinAlphabet()
	if a.Index('a') != a.Index('A') {
		t.Error("lowercase 'a' should map like 'A'")
	}
	if a.Index('v') != a.Index('V') {
		t.Error("lowercase 'v' should map like 'V'")
	}
}

func TestUnknownMapsToSentinel(t *testing.T) {
	a := ProteinAlphabet()
	for _, b := range []byte{'1', ' ', '-', 0, 255, '\n'} {
		if got := a.Index(b); got != Sentinel {
			t.Errorf("Index(%q) = %d, want sentinel %d", b, got, Sentinel)
		}
	}
}

func TestIndexAlwaysInWidthProperty(t *testing.T) {
	a := ProteinAlphabet()
	d := DNAAlphabet()
	f := func(b byte) bool {
		return a.Index(b) < Width && d.Index(b) < Width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecode(t *testing.T) {
	a := ProteinAlphabet()
	seq := []byte("MKVLAW")
	enc := a.Encode(seq)
	if len(enc) != len(seq) {
		t.Fatalf("len = %d, want %d", len(enc), len(seq))
	}
	dec := a.Decode(enc)
	if string(dec) != "MKVLAW" {
		t.Fatalf("decode = %q, want MKVLAW", dec)
	}
}

func TestEncodeStringMatchesEncode(t *testing.T) {
	a := ProteinAlphabet()
	f := func(s string) bool {
		bs := a.Encode([]byte(s))
		ss := a.EncodeString(s)
		if len(bs) != len(ss) {
			return false
		}
		for i := range bs {
			if bs[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	a := ProteinAlphabet()
	if err := a.Validate([]byte("ACDEFGHIKLMNPQRSTVWYXBZ")); err != nil {
		t.Errorf("valid protein rejected: %v", err)
	}
	if err := a.Validate([]byte("ACD1")); err == nil {
		t.Error("digit accepted as residue")
	}
}

func TestDNA(t *testing.T) {
	d := DNAAlphabet()
	if d.Kind() != DNA {
		t.Error("kind mismatch")
	}
	if d.Size() != 5 {
		t.Errorf("size = %d, want 5", d.Size())
	}
	if d.Index('A') != 0 || d.Index('C') != 1 || d.Index('G') != 2 || d.Index('T') != 3 || d.Index('N') != 4 {
		t.Error("DNA encoding order wrong")
	}
	if d.Index('t') != 3 {
		t.Error("lowercase t wrong")
	}
}

func TestForKind(t *testing.T) {
	if ForKind(Protein) != ProteinAlphabet() {
		t.Error("ForKind(Protein) mismatch")
	}
	if ForKind(DNA) != DNAAlphabet() {
		t.Error("ForKind(DNA) mismatch")
	}
}

func TestSentinelLetterIsQuestionMark(t *testing.T) {
	a := ProteinAlphabet()
	if a.Letter(Sentinel) != '?' {
		t.Errorf("sentinel letter = %q, want '?'", a.Letter(Sentinel))
	}
}

func TestProteinSizeFitsWidth(t *testing.T) {
	a := ProteinAlphabet()
	if a.Size() >= Width {
		t.Fatalf("alphabet size %d must leave room below width %d for sentinel rows", a.Size(), Width)
	}
}
