package aln

import (
	"strings"
	"testing"
)

func TestGapsValidate(t *testing.T) {
	if err := DefaultGaps().Validate(); err != nil {
		t.Errorf("default gaps invalid: %v", err)
	}
	bad := []Gaps{
		{Open: 0, Extend: 1},
		{Open: 1, Extend: 0},
		{Open: -2, Extend: 1},
		{Open: 1, Extend: 2},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("gaps %+v accepted", g)
		}
	}
}

func TestLinearGaps(t *testing.T) {
	g := Linear(3)
	if !g.IsLinear() {
		t.Error("Linear() not linear")
	}
	if DefaultGaps().IsLinear() {
		t.Error("default affine gaps reported linear")
	}
}

func TestCigarString(t *testing.T) {
	a := &Alignment{}
	a.AppendOp(OpMatch, 12)
	a.AppendOp(OpDelete, 2)
	a.AppendOp(OpMatch, 7)
	if got := a.CigarString(); got != "12M2D7M" {
		t.Fatalf("cigar = %q", got)
	}
}

func TestAppendOpMerges(t *testing.T) {
	a := &Alignment{}
	a.AppendOp(OpMatch, 3)
	a.AppendOp(OpMatch, 4)
	if len(a.Cigar) != 1 || a.Cigar[0].Len != 7 {
		t.Fatalf("merge failed: %+v", a.Cigar)
	}
	a.AppendOp(OpInsert, 0) // no-op
	if len(a.Cigar) != 1 {
		t.Fatal("zero-length op appended")
	}
}

func TestSpans(t *testing.T) {
	a := &Alignment{}
	a.AppendOp(OpMatch, 10)
	a.AppendOp(OpInsert, 3)
	a.AppendOp(OpDelete, 2)
	if a.QuerySpan() != 13 {
		t.Errorf("query span = %d, want 13", a.QuerySpan())
	}
	if a.DatabaseSpan() != 12 {
		t.Errorf("database span = %d, want 12", a.DatabaseSpan())
	}
}

func TestReverse(t *testing.T) {
	a := &Alignment{}
	a.AppendOp(OpMatch, 1)
	a.AppendOp(OpDelete, 2)
	a.AppendOp(OpInsert, 3)
	a.Reverse()
	if a.Cigar[0].Kind != OpInsert || a.Cigar[2].Kind != OpMatch {
		t.Fatalf("reverse wrong: %s", a.CigarString())
	}
}

func score22(qc, dc uint8) int32 {
	if qc == dc {
		return 2
	}
	return -1
}

func TestRescoreSimple(t *testing.T) {
	q := []uint8{1, 2, 3, 4, 5}
	d := []uint8{1, 2, 9, 3, 4, 5}
	a := &Alignment{Score: 0, BegQ: 0, EndQ: 4, BegD: 0, EndD: 5}
	a.AppendOp(OpMatch, 2)
	a.AppendOp(OpDelete, 1)
	a.AppendOp(OpMatch, 3)
	got, err := Rescore(a, q, d, score22, Gaps{Open: 2, Extend: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*5-2 {
		t.Fatalf("rescore = %d, want 8", got)
	}
}

func TestRescoreAffineGapCost(t *testing.T) {
	q := []uint8{1, 2, 3, 4}
	d := []uint8{1, 4}
	a := &Alignment{BegQ: 0, EndQ: 3, BegD: 0, EndD: 1}
	a.AppendOp(OpMatch, 1)
	a.AppendOp(OpInsert, 2)
	a.AppendOp(OpMatch, 1)
	got, err := Rescore(a, q, d, score22, Gaps{Open: 3, Extend: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 matches (4) - (open 3 + extend 1) = 0.
	if got != 0 {
		t.Fatalf("rescore = %d, want 0", got)
	}
}

func TestRescoreDetectsInconsistentEnd(t *testing.T) {
	q := []uint8{1, 2}
	d := []uint8{1, 2}
	a := &Alignment{BegQ: 0, EndQ: 1, BegD: 0, EndD: 0} // end wrong
	a.AppendOp(OpMatch, 2)
	if _, err := Rescore(a, q, d, score22, DefaultGaps()); err == nil {
		t.Fatal("inconsistent end accepted")
	}
}

func TestRescoreDetectsOverrun(t *testing.T) {
	q := []uint8{1}
	d := []uint8{1}
	a := &Alignment{BegQ: 0, EndQ: 1, BegD: 0, EndD: 1}
	a.AppendOp(OpMatch, 2)
	if _, err := Rescore(a, q, d, score22, DefaultGaps()); err == nil {
		t.Fatal("overrun accepted")
	}
	if !strings.Contains(func() string {
		_, err := Rescore(a, q, d, score22, DefaultGaps())
		return err.Error()
	}(), "runs past") {
		t.Fatal("unexpected error text")
	}
}

func TestRescoreEmptyAlignment(t *testing.T) {
	a := &Alignment{BegQ: -1, EndQ: -1, BegD: -1, EndD: -1}
	got, err := Rescore(a, nil, nil, score22, DefaultGaps())
	if err != nil || got != 0 {
		t.Fatalf("empty alignment: %d, %v", got, err)
	}
	a.AppendOp(OpMatch, 1)
	if _, err := Rescore(a, nil, nil, score22, DefaultGaps()); err == nil {
		t.Fatal("empty alignment with ops accepted")
	}
}
