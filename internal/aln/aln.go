// Package aln holds the alignment-domain types shared by the paper's
// kernel (internal/core), the comparison kernels (internal/baselines),
// and the public API: gap models, score results, and traceback
// alignments with CIGAR rendering.
package aln

import (
	"fmt"
	"strings"
)

// Gaps holds affine gap penalties as positive costs: a gap of length k
// costs Open + (k-1)*Extend. The linear gap model is the special case
// Open == Extend.
type Gaps struct {
	Open   int32
	Extend int32
}

// DefaultGaps returns the protein defaults used throughout the
// evaluation (BLOSUM62 with gap open 11, extend 1, in the
// first-residue-costs-Open convention).
func DefaultGaps() Gaps { return Gaps{Open: 11, Extend: 1} }

// Linear returns the linear-gap model with per-residue cost ext.
func Linear(ext int32) Gaps { return Gaps{Open: ext, Extend: ext} }

// IsLinear reports whether the gap model is effectively linear.
func (g Gaps) IsLinear() bool { return g.Open == g.Extend }

// Validate rejects non-positive or inconsistent penalties.
func (g Gaps) Validate() error {
	if g.Open <= 0 || g.Extend <= 0 {
		return fmt.Errorf("aln: gap penalties must be positive, got open=%d extend=%d", g.Open, g.Extend)
	}
	if g.Extend > g.Open {
		return fmt.Errorf("aln: gap extend %d exceeds open %d", g.Extend, g.Open)
	}
	return nil
}

// ScoreResult is the outcome of a score-only local alignment.
type ScoreResult struct {
	// Score is the optimal local alignment score (>= 0).
	Score int32
	// EndQ and EndD are 0-based inclusive end coordinates of the
	// optimal cell (first such cell in row-major order), or -1 when
	// Score == 0.
	EndQ, EndD int
	// Saturated reports that an 8-bit kernel hit its ceiling and the
	// score is a lower bound; callers rerun at 16 bits.
	Saturated bool
}

// OpKind is one traceback operation.
type OpKind byte

const (
	// OpMatch aligns a query residue to a database residue (match or
	// mismatch).
	OpMatch OpKind = 'M'
	// OpInsert consumes a query residue against a gap (vertical move).
	OpInsert OpKind = 'I'
	// OpDelete consumes a database residue against a gap (horizontal
	// move).
	OpDelete OpKind = 'D'
)

// CigarOp is a run-length encoded traceback operation.
type CigarOp struct {
	Kind OpKind
	Len  int
}

// Alignment is a local alignment with full traceback.
type Alignment struct {
	Score int32
	// BegQ/EndQ and BegD/EndD delimit the aligned regions, 0-based
	// inclusive.
	BegQ, EndQ int
	BegD, EndD int
	// Cigar is the operation sequence from (BegQ, BegD) to (EndQ, EndD).
	Cigar []CigarOp
}

// CigarString renders the CIGAR in the usual compact form, e.g.
// "12M2D7M".
func (a *Alignment) CigarString() string {
	var b strings.Builder
	for _, op := range a.Cigar {
		fmt.Fprintf(&b, "%d%c", op.Len, op.Kind)
	}
	return b.String()
}

// QuerySpan returns the number of query residues consumed by the
// alignment.
func (a *Alignment) QuerySpan() int {
	n := 0
	for _, op := range a.Cigar {
		if op.Kind == OpMatch || op.Kind == OpInsert {
			n += op.Len
		}
	}
	return n
}

// DatabaseSpan returns the number of database residues consumed.
func (a *Alignment) DatabaseSpan() int {
	n := 0
	for _, op := range a.Cigar {
		if op.Kind == OpMatch || op.Kind == OpDelete {
			n += op.Len
		}
	}
	return n
}

// AppendOp extends the CIGAR, merging consecutive operations of the
// same kind.
func (a *Alignment) AppendOp(kind OpKind, n int) {
	if n <= 0 {
		return
	}
	if len(a.Cigar) > 0 && a.Cigar[len(a.Cigar)-1].Kind == kind {
		a.Cigar[len(a.Cigar)-1].Len += n
		return
	}
	a.Cigar = append(a.Cigar, CigarOp{Kind: kind, Len: n})
}

// Reverse reverses the CIGAR in place (tracebacks are built
// end-to-start).
func (a *Alignment) Reverse() {
	for i, j := 0, len(a.Cigar)-1; i < j; i, j = i+1, j-1 {
		a.Cigar[i], a.Cigar[j] = a.Cigar[j], a.Cigar[i]
	}
}
