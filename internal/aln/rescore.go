package aln

import "fmt"

// Rescore recomputes an alignment's score by replaying its CIGAR over
// the encoded query and database sequences. score gives the
// substitution score of a (query code, database code) pair. A valid
// traceback must rescore to exactly Alignment.Score; this is the
// end-to-end check the traceback tests and the swalign CLI use.
func Rescore(a *Alignment, q, d []uint8, score func(qc, dc uint8) int32, g Gaps) (int32, error) {
	if a.BegQ < 0 {
		if len(a.Cigar) != 0 {
			return 0, fmt.Errorf("aln: empty alignment carries %d cigar ops", len(a.Cigar))
		}
		return 0, nil
	}
	i, j := a.BegQ, a.BegD
	var total int32
	for _, op := range a.Cigar {
		switch op.Kind {
		case OpMatch:
			for k := 0; k < op.Len; k++ {
				if i >= len(q) || j >= len(d) {
					return 0, fmt.Errorf("aln: match op runs past sequence ends at (%d,%d)", i, j)
				}
				total += score(q[i], d[j])
				i++
				j++
			}
		case OpDelete:
			if j+op.Len > len(d) {
				return 0, fmt.Errorf("aln: delete op runs past database end at %d", j)
			}
			total -= g.Open + int32(op.Len-1)*g.Extend
			j += op.Len
		case OpInsert:
			if i+op.Len > len(q) {
				return 0, fmt.Errorf("aln: insert op runs past query end at %d", i)
			}
			total -= g.Open + int32(op.Len-1)*g.Extend
			i += op.Len
		default:
			return 0, fmt.Errorf("aln: unknown cigar op %q", op.Kind)
		}
	}
	if i != a.EndQ+1 || j != a.EndD+1 {
		return 0, fmt.Errorf("aln: cigar walks to (%d,%d), alignment ends at (%d,%d)", i-1, j-1, a.EndQ, a.EndD)
	}
	return total, nil
}
