package figures

import (
	"fmt"

	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/seqio"
	"swvec/internal/stats"
	"swvec/internal/tuner"
	"swvec/internal/vek"
)

// Fig10Tuning reproduces Fig. 10: the evolutionary hyperparameter
// search per architecture and query size. The paper tunes GCC
// hyperparameters; here the same GA tunes the kernel hyperparameter
// registry (scalar threshold, tail padding, batch block size, layout)
// against the modeled runtime. As in the paper, gains vary strongly
// with architecture and query size, and the search is a heuristic with
// no optimality guarantee.
func Fig10Tuning(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	// The GA evaluates dozens of configurations; cap the fitness
	// workload so a full harness run stays tractable. Gains are
	// per-query-size relative measurements, so the cap does not change
	// the figure's story.
	if len(w.db) > 16 {
		w.db = w.db[:16]
	}
	if len(w.target) > 600 {
		w.target = w.target[:600]
	}
	if len(w.encQ) > 4 {
		keep := []int{0, len(w.encQ) / 3, 2 * len(w.encQ) / 3, len(w.encQ) - 1}
		var qs []seqio.Sequence
		var es [][]uint8
		for _, i := range keep {
			qs = append(qs, w.queries[i])
			es = append(es, w.encQ[i])
		}
		w.queries, w.encQ = qs, es
	}
	for i, q := range w.encQ {
		if len(q) > 1500 {
			w.encQ[i] = q[:1500]
			w.queries[i].Residues = w.queries[i].Residues[:1500]
		}
	}
	t := &stats.Table{
		Title:   "Fig 10: performance improvement after hyperparameter tuning (GA, pop 12, 6 generations)",
		Headers: []string{"arch", "query_len", "baseline_GCUPS", "tuned_GCUPS", "improvement", "best_config"},
		Note:    "gains are architecture- and query-size-dependent; the GA is not guaranteed optimal",
	}

	// The tally for a configuration is architecture independent, so
	// measure once per distinct configuration and reprice per arch.
	type measured struct {
		tally *vek.Tally
		cells int64
		wsKB  float64
	}
	cache := map[string]measured{}
	params := tuner.KernelParams()
	key := func(cfg tuner.Config) string {
		s := ""
		for _, p := range params {
			s += fmt.Sprintf("%s=%d;", p.Name, cfg[p.Name])
		}
		return s
	}
	// measure runs the config's kernels for one query size; tallies
	// are architecture independent, so each (query, config) pair is
	// measured once and repriced per architecture.
	measure := func(qi int, tc tuner.Config) measured {
		k := fmt.Sprintf("q%d|%s", qi, key(tc))
		if m, ok := cache[k]; ok {
			return m
		}
		q := w.encQ[qi]
		mch, tal := vek.NewMachine()
		// Pair-kernel component with the config's kernel knobs.
		popt := core.PairOptions{
			Gaps:            w.gaps,
			ScalarThreshold: tc["scalar_threshold"],
			ScalarTail:      tc["scalar_tail"] == 1,
			EagerMax:        tc["eager_max"] == 1,
		}
		if _, _, err := core.AlignPair16(mch, q, w.target, w.mat, popt); err != nil {
			panic(err)
		}
		cells := int64(len(q)) * int64(len(w.target))
		// Batch-engine component with the layout knobs.
		talB, cellsB, _ := w.searchTally(q, tc["block_cols"], tc["sort_by_length"] == 1, w.gaps, 256)
		tal.Merge(talB)
		cells += cellsB
		m := measured{tally: tal, cells: cells, wsKB: w.batchWorkingSetKB(tc["block_cols"], seqio.BatchLanes)}
		cache[k] = m
		return m
	}

	opts := tuner.DefaultOptions()
	opts.Population = 12
	opts.Generations = 6
	for _, arch := range isa.Evaluated() {
		for qi := range w.encQ {
			fitness := func(tc tuner.Config) float64 {
				m := measure(qi, tc)
				run := perfmodel.Run{Arch: arch, Tally: m.tally, Cells: m.cells, WorkingSetKB: m.wsKB}
				return run.Seconds(1)
			}
			opts.Seed = cfg.Seed + int64(qi)
			res, err := tuner.Optimize(params, fitness, opts)
			if err != nil {
				panic(err)
			}
			m := measure(qi, res.Best)
			baseCfg := tuner.Config{}
			for _, p := range params {
				baseCfg[p.Name] = p.Values[0]
			}
			mb := measure(qi, baseCfg)
			baseRun := perfmodel.Run{Arch: arch, Tally: mb.tally, Cells: mb.cells, WorkingSetKB: mb.wsKB}
			bestRun := perfmodel.Run{Arch: arch, Tally: m.tally, Cells: m.cells, WorkingSetKB: m.wsKB}
			t.AddRow(arch.Name, w.queries[qi].Len(),
				baseRun.GCUPS1(), bestRun.GCUPS1(),
				fmt.Sprintf("%+.1f%%", 100*res.Improvement()),
				key(res.Best))
		}
	}
	return t
}
