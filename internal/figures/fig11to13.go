package figures

import (
	"fmt"
	"runtime"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/profile"
	"swvec/internal/sched"
	"swvec/internal/seqio"
	"swvec/internal/stats"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Fig11Scaling reproduces Fig. 11: throughput scaling with thread
// count per architecture, including the frequency-droop recalibration
// of §IV-E and the hyperthreading region beyond the core count.
func Fig11Scaling(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Fig 11: thread scaling with frequency recalibration (modeled)",
		Headers: []string{"arch", "threads", "freq_GHz", "GCUPS", "speedup_raw", "speedup_recalibrated"},
		Note:    "raw speedups are sub-linear purely from frequency droop; recalibrated speedups track core count, and hyperthreading adds throughput beyond it",
	}
	q := w.encQ[len(w.encQ)/2]
	for _, arch := range isa.Evaluated() {
		run := w.searchRun(arch, q, 0, false)
		for _, p := range run.Scaling(perfmodel.DefaultThreadCounts(arch)) {
			t.AddRow(arch.Name, p.Threads,
				fmt.Sprintf("%.2f", p.FreqGHz), p.GCUPS,
				fmt.Sprintf("%.2fx", p.SpeedupRaw),
				fmt.Sprintf("%.2fx", p.SpeedupRecal))
		}
	}
	return t
}

// Fig12TopDown reproduces Fig. 12: (a) the backend-bound split with
// and without the substitution matrix, (b) pipeline-slot efficiency
// versus thread count for a large query batch, (c) the same per query
// size.
func Fig12TopDown(cfg Config) []*stats.Table {
	w := newWorkload(cfg)
	arch := isa.Get(isa.Skylake)

	a := &stats.Table{
		Title:   "Fig 12a: top-down backend-bound split, Skylake (with vs without substitution matrix)",
		Headers: []string{"scenario", "retiring", "frontend", "badspec", "backend", "backend_mem", "backend_core", "verdict"},
		Note:    "with the substitution matrix the kernel is core bound (gather port pressure); memory-bound slots stay >= ~8%, higher without the matrix",
	}
	// Fig. 12a profiles the wavefront pair kernel, where the
	// substitution matrix changes the score path (gathers vs
	// compare-and-blend); the batch engine never gathers.
	q := w.encQ[len(w.encQ)/2]
	fixed := submat.MatchMismatch(w.mat.Alphabet(), 2, -1)
	pairTally := func(mat *submat.Matrix) perfmodel.Run {
		mch, tal := vek.NewMachine()
		if _, _, err := core.AlignPair16(mch, q, w.target, mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		return pairRun(arch, tal, len(q), len(w.target))
	}
	withRun := pairTally(w.mat)
	withoutRun := pairTally(fixed)
	for _, sc := range []struct {
		name string
		run  perfmodel.Run
	}{{"with substitution matrix", withRun}, {"without (fixed scores)", withoutRun}} {
		rep := profile.Analyze(sc.name, sc.run)
		td := rep.Breakdown
		verdict := "memory bound"
		if rep.CPUBound() {
			verdict = "core bound"
		}
		a.AddRow(sc.name,
			pct(td.Retiring), pct(td.FrontendBound), pct(td.BadSpeculation),
			pct(td.BackendBound), pct(td.BackendMemory), pct(td.BackendCore), verdict)
	}

	b := &stats.Table{
		Title:   "Fig 12b: pipeline-slot efficiency vs threads (large query batch, Skylake)",
		Headers: []string{"threads", "slot_efficiency"},
		Note:    "the second hardware thread fills idle backend slots, raising efficiency",
	}
	counts := perfmodel.DefaultThreadCounts(arch)
	for _, p := range profile.HTEfficiencySeries(withRun, counts) {
		b.AddRow(p.Threads, pct(p.Efficiency))
	}

	c := &stats.Table{
		Title:   "Fig 12c: pipeline-slot efficiency per query protein and thread count (Skylake)",
		Headers: []string{"query_len", "1T", "all cores", "2x HT"},
		Note:    "small queries are less reliable (short kernels), as the paper observed",
	}
	for qi, qe := range w.encQ {
		run := w.searchRun(arch, qe, 0, false)
		pts := profile.HTEfficiencySeries(run, []int{1, arch.Cores, arch.Threads()})
		c.AddRow(w.queries[qi].Len(), pct(pts[0].Efficiency), pct(pts[1].Efficiency), pct(pts[2].Efficiency))
	}
	return []*stats.Table{a, b, c}
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Fig13Scenarios reproduces Fig. 13: measured wall-clock throughput of
// the three usage scenarios on the host, plus the modeled Skylake
// numbers from the merged tallies. Scenario 2 (batched queries) wins
// through data reuse; scenario 3 pays the pair-kernel overhead on
// small inputs.
func Fig13Scenarios(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	arch := isa.Get(isa.Skylake)
	threads := runtime.GOMAXPROCS(0)
	opt := sched.Options{Gaps: w.gaps, Threads: threads, Instrument: true, Width: cfg.Width, Backend: cfg.Backend, Kernel: cfg.Kernel}
	t := &stats.Table{
		Title:   "Fig 13: usage scenarios (measured on host + modeled Skylake, all threads)",
		Headers: []string{"scenario", "cells", "host_ms", "host_GCUPS", "modeled_GCUPS_1T"},
		Note:    "host GCUPS reflects the emulated vector machine, not native SIMD; compare scenarios relatively",
	}

	// Scenario 1: single query vs database.
	q := w.encQ[len(w.encQ)/2]
	s1, err := sched.Search(q, w.db, w.mat, opt)
	if err != nil {
		panic(err)
	}
	r1 := pairRunWS(arch, s1.Tally, s1.Cells, w.batchWorkingSetKB(0, seqio.BatchLanes))
	t.AddRow("S1 single query vs DB", s1.Cells, fmt.Sprintf("%.1f", float64(s1.Elapsed.Microseconds())/1000), s1.GCUPS(), r1.GCUPS1())

	// Scenario 2: batch of queries vs database (centralized server).
	queries := make([][]uint8, 0, len(w.encQ))
	queries = append(queries, w.encQ...)
	s2, err := sched.MultiSearch(queries, w.db, w.mat, opt)
	if err != nil {
		panic(err)
	}
	r2 := pairRunWS(arch, s2.Tally, s2.Cells, w.batchWorkingSetKB(0, seqio.BatchLanes))
	t.AddRow("S2 batched queries vs DB", s2.Cells, fmt.Sprintf("%.1f", float64(s2.Elapsed.Microseconds())/1000), s2.GCUPS(), r2.GCUPS1())

	// Scenario 3: small queries vs small database (subroutine).
	smallDB := w.db
	if len(smallDB) > 8 {
		smallDB = smallDB[:8]
	}
	smallQ := queries
	if len(smallQ) > 4 {
		smallQ = smallQ[:4]
	}
	s3, err := sched.Subroutine(smallQ, smallDB, w.mat, false, opt)
	if err != nil {
		panic(err)
	}
	r3 := pairRunWS(arch, s3.Tally, s3.Cells, float64(smallDB[0].Len())*26/1024)
	t.AddRow("S3 small sets (subroutine)", s3.Cells, fmt.Sprintf("%.1f", float64(s3.Elapsed.Microseconds())/1000), s3.GCUPS(), r3.GCUPS1())

	_ = aln.DefaultGaps()
	return t
}
