package figures

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true, DBSize: 96, QueryLens: []int{35, 110}, PairTargetLen: 300}

// parseX extracts the float from a "1.8x" cell.
func parseX(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", s, err)
	}
	return v
}

func TestFig06Shape(t *testing.T) {
	tb := Fig06AVX2vsAVX512(quick)
	if len(tb.Rows) != len(quick.QueryLens)+1 {
		t.Fatalf("rows = %d, want %d (queries + streaming search)", len(tb.Rows), len(quick.QueryLens)+1)
	}
	// The Fig. 6 finding: AVX512 lands well below the naive 2x — on
	// small queries it can even lose to AVX2 (downclocking plus masked
	// tails), and it never approaches doubling. The streaming-search
	// row runs the whole pipeline at 512 bits: there the ALU-bound
	// batch engine sits exactly where port fusion eats the width, and
	// a database that doesn't fill the 64-lane batches adds padding, so
	// 512 may lose outright — but must neither collapse nor win big.
	for _, row := range tb.Rows {
		lo, hi := 0.8, 2.0
		if strings.HasPrefix(row[0], "search(") {
			lo, hi = 0.45, 1.2
		}
		for _, col := range []int{3, 6} {
			sp := parseX(t, row[col])
			if sp <= lo || sp >= hi {
				t.Errorf("AVX512 speedup %.2f outside (%.2f, %.2f): row %v", sp, lo, hi, row)
			}
		}
	}
}

func TestFig07Shape(t *testing.T) {
	tb := Fig07AffineGap(quick)
	// Affine must be within 40% of linear on every arch (the "no
	// noticeable drop" finding).
	for _, row := range tb.Rows {
		for c := 1; c+1 < len(row); c += 2 {
			aff, _ := strconv.ParseFloat(row[c], 64)
			lin, _ := strconv.ParseFloat(row[c+1], 64)
			if aff > lin {
				continue // affine faster is fine
			}
			if (lin-aff)/lin > 0.40 {
				t.Errorf("affine %.2f vs linear %.2f: drop too large (row %v)", aff, lin, row)
			}
		}
	}
}

func TestFig08Shape(t *testing.T) {
	tb := Fig08Traceback(quick)
	for _, row := range tb.Rows {
		for c := 2; c+1 < len(row); c += 2 {
			noTB, _ := strconv.ParseFloat(row[c], 64)
			withTB, _ := strconv.ParseFloat(row[c+1], 64)
			if withTB > noTB {
				continue
			}
			if (noTB-withTB)/noTB > 0.35 {
				t.Errorf("traceback drop too large: %.2f -> %.2f", noTB, withTB)
			}
		}
	}
}

func TestFig09Shape(t *testing.T) {
	tb := Fig09SubstMatrix(quick)
	// Fixed scores must beat the gather path on every architecture.
	for _, row := range tb.Rows {
		for c := 1; c+1 < len(row); c += 2 {
			sub, _ := strconv.ParseFloat(row[c], 64)
			fix, _ := strconv.ParseFloat(row[c+1], 64)
			if fix <= sub {
				t.Errorf("fixed scores %.2f should beat submat %.2f (row %v)", fix, sub, row)
			}
		}
	}
}

func TestFig10Improvement(t *testing.T) {
	tb := Fig10Tuning(Config{Quick: true, DBSize: 8, QueryLens: []int{64, 320}, PairTargetLen: 300})
	if len(tb.Rows) != 4*2 {
		t.Fatalf("rows = %d, want 8 (4 archs x 2 query sizes)", len(tb.Rows))
	}
	anyGain := false
	for _, row := range tb.Rows {
		imp, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[4], "+"), "%"), 64)
		if err != nil {
			t.Fatalf("bad improvement cell %q", row[4])
		}
		if imp < -0.001 {
			t.Errorf("tuning regressed: %s", row[4])
		}
		if imp > 0.5 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("tuning found no gains anywhere; fitness landscape looks flat")
	}
}

func TestFig11Shape(t *testing.T) {
	tb := Fig11Scaling(quick)
	// For each arch, raw speedup at the last single-socket row must be
	// sub-linear and the recalibrated one near-linear; HT adds more.
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	var prevArch string
	var lastGCUPS float64
	for _, row := range tb.Rows {
		if row[0] != prevArch {
			prevArch = row[0]
			lastGCUPS = 0
		}
		g, _ := strconv.ParseFloat(row[3], 64)
		if g < lastGCUPS {
			t.Errorf("%s: GCUPS fell from %.2f to %.2f as threads grew", row[0], lastGCUPS, g)
		}
		lastGCUPS = g
	}
}

func TestFig12Shape(t *testing.T) {
	tabs := Fig12TopDown(quick)
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	a := tabs[0]
	if len(a.Rows) != 2 {
		t.Fatalf("fig12a rows = %d", len(a.Rows))
	}
	if a.Rows[0][7] != "core bound" {
		t.Errorf("with-submat verdict = %q, want core bound", a.Rows[0][7])
	}
	// Memory-bound share: >= ~8% in both scenarios, larger without.
	memWith := parsePct(t, a.Rows[0][5])
	memWithout := parsePct(t, a.Rows[1][5])
	if memWith < 0.04 {
		t.Errorf("memory share with submat %.3f too small", memWith)
	}
	if memWithout <= memWith {
		t.Errorf("memory share without submat (%.3f) should exceed with (%.3f)", memWithout, memWith)
	}
	// 12b: efficiency rises in the HT region.
	b := tabs[1]
	first := parsePct(t, b.Rows[0][1])
	last := parsePct(t, b.Rows[len(b.Rows)-1][1])
	if last <= first {
		t.Errorf("HT slot efficiency %.3f should exceed single-thread %.3f", last, first)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q", s)
	}
	return v / 100
}

func TestFig13Runs(t *testing.T) {
	tb := Fig13Scenarios(quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		cells, _ := strconv.ParseFloat(row[1], 64)
		if cells <= 0 {
			t.Errorf("scenario %q has no cells", row[0])
		}
	}
}

func TestFig14HeadlineShape(t *testing.T) {
	tb, h := Fig14VsParasail(quick)
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	// The paper's ordering: diag slowest, then scan, then striped;
	// ours fastest.
	if !(h.VsDiag > h.VsScan && h.VsScan > h.VsStriped) {
		t.Errorf("speedup ordering wrong: %s", h)
	}
	if h.VsStriped <= 1.0 {
		t.Errorf("ours should beat striped: %s", h)
	}
	if h.VsDiag < 2.0 || h.VsDiag > 8.0 {
		t.Errorf("vs diag %.1fx implausibly far from the paper's 3.9x", h.VsDiag)
	}
	if h.VsScan < 1.2 || h.VsScan > 4.0 {
		t.Errorf("vs scan %.1fx implausibly far from the paper's 1.9x", h.VsScan)
	}
	if h.VsStriped < 1.05 || h.VsStriped > 3.0 {
		t.Errorf("vs striped %.1fx implausibly far from the paper's 1.5x", h.VsStriped)
	}
}

func TestDeterminismTable(t *testing.T) {
	tb := Determinism(quick)
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Correction rates must differ across inputs (data dependence).
	rates := map[string]bool{}
	for _, row := range tb.Rows {
		rates[row[1]] = true
	}
	if len(rates) < 2 {
		t.Error("striped lazy-F rate identical on all inputs; expected data dependence")
	}
}

func TestPortabilityTable(t *testing.T) {
	tb := Portability(quick)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 architectures", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		g256, _ := strconv.ParseFloat(row[3], 64)
		g512, _ := strconv.ParseFloat(row[4], 64)
		// The portability conclusion: the AVX-512 build never wins
		// meaningfully anywhere — on AVX2-only machines it double-pumps
		// and on AVX-512 machines the license/port costs eat the width.
		ratio := g512 / g256
		if ratio > 1.15 {
			t.Errorf("%s: the 512 build should not meaningfully win (ratio %.2f)", row[0], ratio)
		}
		if ratio < 0.6 {
			t.Errorf("%s: the 512 build should not collapse (ratio %.2f)", row[0], ratio)
		}
		batch, _ := strconv.ParseFloat(row[2], 64)
		if batch <= g256 {
			t.Errorf("%s: batch engine (%.2f) should beat the pair kernel (%.2f)", row[0], batch, g256)
		}
	}
}

func TestMemoryAnalysisTable(t *testing.T) {
	tb := MemoryAnalysis(quick)
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Cache-resident rows stay CPU bound; the DRAM row flips or at
	// least maximizes the memory share; GCUPS must not increase as the
	// working set grows.
	if !strings.HasPrefix(tb.Rows[0][6], "CPU bound") {
		t.Errorf("L1-resident run should be CPU bound, got %q", tb.Rows[0][6])
	}
	var prevG float64 = 1e18
	var prevMem float64 = -1
	for _, row := range tb.Rows {
		g, _ := strconv.ParseFloat(row[2], 64)
		if g > prevG+1e-9 {
			t.Errorf("GCUPS rose with a larger working set: %v", row)
		}
		prevG = g
		mem := parsePct(t, row[4])
		if mem < prevMem-1e-9 {
			t.Errorf("memory share fell with a larger working set: %v", row)
		}
		prevMem = mem
	}
	last := tb.Rows[len(tb.Rows)-1]
	if parsePct(t, last[4]) <= parsePct(t, tb.Rows[0][4]) {
		t.Error("DRAM-scale run should be markedly more memory bound than L1")
	}
}
