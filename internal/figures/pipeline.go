package figures

import (
	"fmt"
	"runtime"

	"swvec/internal/sched"
	"swvec/internal/seqio"
	"swvec/internal/stats"
)

// PipelineReport characterizes the streaming search pipeline on the
// host clock (not the architecture model): wall GCUPS of the emulated
// machine and the heap-allocation budget per transposed batch, at one
// worker and at GOMAXPROCS. With the per-worker scratch arenas the
// allocation column stays flat as the database grows — the steady
// state recycles every batch buffer and DP row.
func PipelineReport(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	lanes := seqio.BatchLanes
	if cfg.Width == 512 {
		lanes = seqio.MaxBatchLanes
	}
	t := &stats.Table{
		Title:   "Streaming search pipeline: wall-clock throughput and allocation budget",
		Headers: []string{"threads", "sorted", "gcups_wall", "allocs_per_batch", "rescued"},
		Note: fmt.Sprintf("emulated machine on the host clock; %d sequences in %d %d-lane batches, query %d residues",
			len(w.db), (len(w.db)+lanes-1)/lanes, lanes, len(w.encQ[len(w.encQ)-1])),
	}
	query := w.encQ[len(w.encQ)-1]
	nbatches := (len(w.db) + lanes - 1) / lanes
	threadSet := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		threadSet = append(threadSet, n)
	}
	for _, nw := range threadSet {
		for _, sorted := range []bool{false, true} {
			opt := sched.Options{Gaps: w.gaps, Threads: nw, SortByLength: sorted, Width: cfg.Width, Backend: cfg.Backend, Kernel: cfg.Kernel}
			// Warm-up run so one-time allocations (code tables, hit
			// slices sized to the database) don't pollute the delta.
			if _, err := sched.Search(query, w.db, w.mat, opt); err != nil {
				panic(fmt.Sprintf("figures: pipeline warm-up: %v", err))
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			res, err := sched.Search(query, w.db, w.mat, opt)
			if err != nil {
				panic(fmt.Sprintf("figures: pipeline search: %v", err))
			}
			runtime.ReadMemStats(&after)
			perBatch := float64(after.Mallocs-before.Mallocs) / float64(nbatches)
			t.AddRow(nw, sorted,
				fmt.Sprintf("%.3f", res.GCUPS()),
				fmt.Sprintf("%.1f", perBatch),
				res.Rescued)
		}
	}
	return t
}
