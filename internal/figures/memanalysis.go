package figures

import (
	"fmt"

	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/stats"
	"swvec/internal/vek"
)

// MemoryAnalysis reproduces the paper's memory/microarchitecture study
// on Alderlake (§IV-A names the i9-12900HK specifically for memory
// analysis): sweep the batch engine's working set (via the column
// block size against a long database) and report where the execution
// turns memory bound. The paper's conclusion — multicore SW remains
// CPU bound, with memory a secondary factor — shows up as the
// memory-bound share staying minor until the working set falls out of
// the last-level cache.
func MemoryAnalysis(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	arch := isa.Get(isa.Alderlake)
	t := &stats.Table{
		Title:   "Memory analysis: batch working set vs boundedness (Alderlake i9-12900HK)",
		Headers: []string{"block_cols", "working_set_KB", "modeled_GCUPS", "retiring", "backend_mem", "backend_core", "verdict"},
		Note:    "the kernel stays CPU bound while the working set is cache resident; only a DRAM-sized working set flips the verdict — the paper's 'still CPU bound' conclusion",
	}
	q := w.encQ[len(w.encQ)/2]
	// One tally serves all rows: the block size's modeled effect is the
	// working set it induces (op counts barely change).
	tal, cells, _ := w.searchTally(q, 0, true, w.gaps, 256)

	rows := []struct {
		label string
		wsKB  float64
	}{
		{"32 (L1)", 24},
		{"128 (L2)", 96},
		{"512 (L2)", 380},
		{"2048 (L3)", 1530},
		{"8192 (L3)", 6100},
		{"unblocked (DRAM-scale DB)", 120000},
	}
	for _, r := range rows {
		run := perfmodel.Run{Arch: arch, Tally: tal, Cells: cells, WorkingSetKB: r.wsKB}
		td := run.TopDown()
		// The verdict follows the bottleneck resource: stall shares can
		// lean memory-ward while execution is still compute-capped.
		verdict := "CPU bound (" + run.Bottleneck() + ")"
		switch run.Bottleneck() {
		case "load", "store":
			verdict = "memory bound (" + run.Bottleneck() + ")"
		}
		t.AddRow(r.label, fmt.Sprintf("%.0f", r.wsKB), run.GCUPS1(),
			pct(td.Retiring), pct(td.BackendMemory), pct(td.BackendCore), verdict)
	}
	return t
}

var (
	_ = core.AlignBatch8
	_ = vek.Bare
)
