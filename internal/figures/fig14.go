package figures

import (
	"fmt"

	"swvec/internal/baselines"
	"swvec/internal/isa"
	"swvec/internal/seqio"
	"swvec/internal/stats"
	"swvec/internal/vek"
)

// Headline captures the paper's abstract-level comparison: the
// geometric-mean speedup of this work over each Parasail kernel.
type Headline struct {
	VsDiag    float64
	VsScan    float64
	VsStriped float64
}

// String renders the headline like the paper's abstract.
func (h Headline) String() string {
	return fmt.Sprintf("vs diag %.1fx, vs scan %.1fx, vs striped %.1fx", h.VsDiag, h.VsScan, h.VsStriped)
}

// Fig14VsParasail reproduces Fig. 14: this work against the Parasail
// diag, scan and striped kernels, per architecture and query size,
// modeled GCUPS at one thread. The expected shape: ours fastest
// everywhere, striped the best Parasail kernel, diag the slowest
// (headline: 3.9x / 1.9x / 1.5x vs diag / scan / striped).
func Fig14VsParasail(cfg Config) (*stats.Table, Headline) {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Fig 14: this work vs Parasail diag/scan/striped (modeled GCUPS, 1 thread)",
		Headers: []string{"arch", "query_len", "ours", "diag", "scan", "striped", "vs_diag", "vs_scan", "vs_striped"},
		Note:    "ours is the 8-bit batch engine with 16-bit rescue; baselines are 16-bit Parasail-style kernels on the same vector machine",
	}

	// Per-query tallies are architecture independent: measure once.
	type meas struct {
		ours, diag, scan, striped *vek.Tally
		cells                     int64
		wsOurs                    float64
	}
	measures := make([]meas, len(w.encQ))
	for qi, q := range w.encQ {
		var m meas
		m.ours, m.cells, _ = w.searchTally(q, 0, true, w.gaps, 256)
		m.wsOurs = w.batchWorkingSetKB(0, seqio.BatchLanes)

		mchD, talD := vek.NewMachine()
		mchS, talS := vek.NewMachine()
		mchT, talT := vek.NewMachine()
		prof := baselines.NewStripedProfile16(w.mat, q)
		for i := range w.db {
			d := w.db[i].Encode(w.mat.Alphabet())
			baselines.Diag16(mchD, q, d, w.mat, w.gaps)
			baselines.Scan16(mchS, q, d, w.mat, w.gaps)
			baselines.Striped16(mchT, prof, d, w.gaps)
		}
		m.diag, m.scan, m.striped = talD, talS, talT
		measures[qi] = m
	}

	var rDiag, rScan, rStriped []float64
	for _, arch := range isa.Evaluated() {
		for qi := range w.encQ {
			m := measures[qi]
			qlen := w.queries[qi].Len()
			// Baselines keep per-pair state: ~12 int16 arrays of qlen
			// (diag/scan) or the striped profile (32*qlen*2 bytes).
			wsPair := float64(qlen) * 26 / 1024
			gOurs := pairRunWS(arch, m.ours, m.cells, m.wsOurs).GCUPS1()
			gDiag := pairRunWS(arch, m.diag, m.cells, wsPair).GCUPS1()
			gScan := pairRunWS(arch, m.scan, m.cells, wsPair).GCUPS1()
			gStriped := pairRunWS(arch, m.striped, m.cells, wsPair+float64(qlen)*64/1024).GCUPS1()
			t.AddRow(arch.Name, qlen, gOurs, gDiag, gScan, gStriped,
				fmt.Sprintf("%.1fx", gOurs/gDiag),
				fmt.Sprintf("%.1fx", gOurs/gScan),
				fmt.Sprintf("%.1fx", gOurs/gStriped))
			rDiag = append(rDiag, gOurs/gDiag)
			rScan = append(rScan, gOurs/gScan)
			rStriped = append(rStriped, gOurs/gStriped)
		}
	}
	h := Headline{
		VsDiag:    stats.GeoMean(rDiag),
		VsScan:    stats.GeoMean(rScan),
		VsStriped: stats.GeoMean(rStriped),
	}
	t.Note += "; geomean " + h.String()
	return t, h
}

// Determinism reproduces the §IV-H robustness argument: the wavefront
// kernel's work is a pure function of the input sizes, while striped's
// lazy-F loop and scan's correction pass vary with the data.
func Determinism(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Determinism (§IV-H): data-dependent correction work of the speculative kernels",
		Headers: []string{"input", "striped16_lazyF_per_col", "striped16_worst_col", "striped8_lazyF_per_col", "scan_corrections_per_col", "ours_extra"},
		Note:    "ours (wavefront) runs zero correction loops on every input; speculative kernels vary",
	}
	q := w.encQ[len(w.encQ)/2]
	prof := baselines.NewStripedProfile16(w.mat, q)
	prof8 := baselines.NewStripedProfile8(w.mat, q)

	inputs := []struct {
		name string
		d    []uint8
	}{
		{"random protein", w.target},
		{"homolog (gap heavy)", append(append([]uint8{}, q[:len(q)/4]...), q[3*len(q)/4:]...)},
		{"self (identical)", q},
	}
	for _, in := range inputs {
		if len(in.d) == 0 {
			continue
		}
		_, sStats := baselines.Striped16(vek.Bare, prof, in.d, w.gaps)
		_, s8Stats := baselines.Striped8(vek.Bare, prof8, in.d, w.gaps)
		_, cStats := baselines.Scan16(vek.Bare, q, in.d, w.mat, w.gaps)
		lazyRate := float64(sStats.LazyFIterations) / float64(maxInt(sStats.Columns, 1))
		lazy8Rate := float64(s8Stats.LazyFIterations) / float64(maxInt(s8Stats.Columns, 1))
		corrRate := float64(cStats.Corrections) / float64(maxInt(cStats.Columns, 1))
		t.AddRow(in.name,
			fmt.Sprintf("%.2f", lazyRate),
			sStats.MaxLazyFPerColumn,
			fmt.Sprintf("%.2f", lazy8Rate),
			fmt.Sprintf("%.2f", corrRate),
			"0 (deterministic)")
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
