package figures

import (
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/seqio"
	"swvec/internal/stats"
	"swvec/internal/vek"
)

// Portability reproduces the paper's portability analysis (§I
// contribution (vi), §IV-B): how each kernel build behaves across the
// architecture generations. The AVX2 kernels run natively everywhere;
// the AVX-512 build runs natively only on Skylake/Cascadelake and
// executes as two 256-bit halves elsewhere — the compatibility
// argument behind the paper's choice to continue with AVX2.
func Portability(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Portability: kernel builds across architectures (modeled GCUPS, 1 thread)",
		Headers: []string{"arch", "native_width", "batch8 (AVX2)", "pair16 (AVX2)", "pair16 (AVX512 build)", "512_penalty"},
		Note:    "the AVX-512 build double-pumps on AVX2-only machines; AVX2 kernels are the portable choice (§IV-B)",
	}
	q := w.encQ[len(w.encQ)/2]

	// Measure once; reprice per architecture.
	talBatch, cellsBatch, _ := w.searchTally(q, 0, true, w.gaps, 256)
	m256, tal256 := vek.NewMachine()
	if _, _, err := core.AlignPair16(m256, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
		panic(err)
	}
	m512, tal512 := vek.NewMachine()
	if _, err := core.AlignPair16W(m512, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
		panic(err)
	}
	for _, arch := range isa.All() {
		width := "AVX2"
		if arch.HasAVX512 {
			width = "AVX512"
		}
		gBatch := pairRunWS(arch, talBatch, cellsBatch, w.batchWorkingSetKB(0, seqio.BatchLanes)).GCUPS1()
		g256 := pairRun(arch, tal256, len(q), len(w.target)).GCUPS1()
		g512 := pairRun(arch, tal512, len(q), len(w.target)).GCUPS1()
		penalty := "native"
		if !arch.HasAVX512 {
			penalty = "double-pumped"
		}
		t.AddRow(arch.Name, width, gBatch, g256, g512, penalty)
	}
	return t
}
