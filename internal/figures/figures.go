// Package figures regenerates every figure of the paper's evaluation
// (§IV, Figs. 6-14): each FigNN function runs the real kernels on the
// emulated vector machine, feeds the operation tallies through the
// per-architecture performance model, and returns the same rows and
// series the paper plots. cmd/swbench prints them; bench_test.go wraps
// them as Go benchmarks. Absolute numbers are modeled, the shapes
// (who wins, by what factor, where crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.
package figures

import (
	"fmt"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Config scales the figure workloads.
type Config struct {
	// Seed drives every synthetic generator.
	Seed int64
	// DBSize is the synthetic database sequence count.
	DBSize int
	// QueryLens overrides the query sizes (default: the standard ten).
	QueryLens []int
	// PairTargetLen is the database-sequence length used by the
	// pairwise figures (6, 8, 9).
	PairTargetLen int
	// Width is the vector register width for the search-pipeline
	// figures: 256, 512, or 0 to auto-resolve from the native
	// architecture model (see sched.Options.Width). Fig. 6 always runs
	// both widths regardless.
	Width int
	// Backend selects the execution backend for the search-pipeline
	// figures. The instrumented figures (6-9, 11-13) resolve Auto to
	// the modeled machine — their instruction tallies only exist there
	// — while the wall-clock pipeline table follows the serving
	// default. See sched.Options.Backend.
	Backend core.Backend
	// Kernel selects the kernel family for the search-pipeline figures.
	// The planner keeps instrumented and modeled runs on the diagonal
	// family regardless of Auto (the figure apparatus is calibrated on
	// it); an explicit value forces a family everywhere it applies. See
	// sched.Options.Kernel.
	Kernel core.Kernel
	// Quick shrinks everything for fast benchmark iterations.
	Quick bool
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Quick {
		if c.DBSize == 0 {
			// One full 64-lane batch: the Fig. 6 width comparison stays
			// meaningful even at quick scale.
			c.DBSize = 64
		}
		if len(c.QueryLens) == 0 {
			c.QueryLens = []int{35, 110, 320}
		}
		if c.PairTargetLen == 0 {
			c.PairTargetLen = 600
		}
		return c
	}
	if c.DBSize == 0 {
		c.DBSize = 128
	}
	if len(c.QueryLens) == 0 {
		c.QueryLens = seqio.StandardQueryLengths
	}
	if c.PairTargetLen == 0 {
		c.PairTargetLen = 2000
	}
	return c
}

// workload bundles the standard figure inputs.
type workload struct {
	cfg     Config
	queries []seqio.Sequence
	encQ    [][]uint8
	db      []seqio.Sequence
	mat     *submat.Matrix
	tables  *submat.CodeTables
	gaps    aln.Gaps
	// target is the single database sequence used by pairwise figures.
	target []uint8
}

func newWorkload(cfg Config) *workload {
	cfg = cfg.normalized()
	mat := submat.Blosum62()
	alpha := mat.Alphabet()
	g := seqio.NewGenerator(cfg.Seed)
	w := &workload{
		cfg:    cfg,
		mat:    mat,
		tables: submat.NewCodeTables(mat),
		gaps:   aln.DefaultGaps(),
		db:     g.Database(cfg.DBSize),
	}
	qg := seqio.NewGenerator(cfg.Seed + 1)
	for i, n := range cfg.QueryLens {
		s := qg.Protein(fmt.Sprintf("QRY%02d_len%d", i, n), n)
		w.queries = append(w.queries, s)
		w.encQ = append(w.encQ, s.Encode(alpha))
	}
	w.target = qg.Protein("TARGET", cfg.PairTargetLen).Encode(alpha)
	return w
}

// pairRun measures one pair-kernel execution and wraps it for the
// model.
func pairRun(arch *isa.Arch, tal *vek.Tally, qlen, dlen int) perfmodel.Run {
	return perfmodel.Run{
		Arch:  arch,
		Tally: tal,
		Cells: int64(qlen) * int64(dlen),
		// Rolling diagonal buffers: 9 int16 arrays of ~qlen plus
		// index arrays.
		WorkingSetKB: float64(qlen) * 26 / 1024,
	}
}

// pairRunWS wraps an arbitrary tally with an explicit working set.
func pairRunWS(arch *isa.Arch, tal *vek.Tally, cells int64, wsKB float64) perfmodel.Run {
	return perfmodel.Run{Arch: arch, Tally: tal, Cells: cells, WorkingSetKB: wsKB}
}

// searchTally runs the full 8-bit batch search (with 16-bit rescue)
// single-threaded and instrumented at the given vector width (256 or
// 512), returning the merged tally, the cell count, and the rescue
// count. Both widths route through the same generic lane engine; only
// the instantiation differs.
func (w *workload) searchTally(query []uint8, blockCols int, sortLen bool, gaps aln.Gaps, width int) (*vek.Tally, int64, int) {
	mch, tal := vek.NewMachine()
	batches := seqio.BuildBatches(w.db, w.mat.Alphabet(), seqio.BatchOptions{SortByLength: sortLen, Lanes: width / 8})
	cells := seqio.BatchedCells(batches, len(query))
	rescued := 0
	for _, b := range batches {
		br, err := core.AlignBatch8(mch, query, w.tables, b, core.BatchOptions{Gaps: gaps, BlockCols: blockCols})
		if err != nil {
			panic(fmt.Sprintf("figures: batch align: %v", err))
		}
		for lane := 0; lane < b.Count; lane++ {
			if br.Saturated[lane] {
				d := w.db[b.Index[lane]].Encode(w.mat.Alphabet())
				if width == 512 {
					_, err = core.AlignPair16W(mch, query, d, w.mat, core.PairOptions{Gaps: gaps})
				} else {
					_, _, err = core.AlignPair16(mch, query, d, w.mat, core.PairOptions{Gaps: gaps})
				}
				if err != nil {
					panic(fmt.Sprintf("figures: rescue: %v", err))
				}
				rescued++
			}
		}
	}
	return tal, cells, rescued
}

// searchRun wraps searchTally for the model.
func (w *workload) searchRun(arch *isa.Arch, query []uint8, blockCols int, sortLen bool) perfmodel.Run {
	tal, cells, _ := w.searchTally(query, blockCols, sortLen, w.gaps, 256)
	return perfmodel.Run{
		Arch:         arch,
		Tally:        tal,
		Cells:        cells,
		WorkingSetKB: w.batchWorkingSetKB(blockCols, seqio.BatchLanes),
	}
}

// batchWorkingSetKB estimates the batch engine's resident footprint:
// the H/F rows plus the per-code score scratch over the block width,
// scaled by the batch lane stride (32 or 64).
func (w *workload) batchWorkingSetKB(blockCols, lanes int) float64 {
	maxLen := 0
	for i := range w.db {
		if w.db[i].Len() > maxLen {
			maxLen = w.db[i].Len()
		}
	}
	cols := maxLen
	if blockCols > 0 && blockCols < cols {
		cols = blockCols
	}
	// 2 state rows over the full length + ~21 distinct residue-code
	// scratch rows over the block, one int8 per lane.
	return (2*float64(maxLen) + 21*float64(cols)) * float64(lanes) / 1024
}
