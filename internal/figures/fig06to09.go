package figures

import (
	"fmt"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/sched"
	"swvec/internal/seqio"
	"swvec/internal/stats"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Fig06AVX2vsAVX512 reproduces Fig. 6: the wavefront kernel at 256-bit
// versus 512-bit width on the two AVX-512 architectures (Skylake,
// Cascadelake), per query size. The wide kernel halves the issue count
// but pays the AVX-512 frequency license and wider-port costs, so the
// speedup stays well under 2x — the paper's reason for continuing with
// AVX2. A final row runs the full streaming database search (8-bit
// batch stage plus 16-bit rescue) end-to-end at both widths through
// the same generic lane engine.
func Fig06AVX2vsAVX512(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	archs := []*isa.Arch{isa.Get(isa.Skylake), isa.Get(isa.Cascadelake)}
	t := &stats.Table{
		Title:   "Fig 6: AVX2 (256) vs AVX512 on 10 protein queries (modeled GCUPS, 1 thread)",
		Headers: []string{"query_len"},
		Note:    "AVX512 gains stay well below 2x: frequency license + wider-port costs; the search row also pays 64-lane padding on databases that don't fill the wide batches",
	}
	for _, a := range archs {
		t.Headers = append(t.Headers, a.Name+" AVX2", a.Name+" AVX512", a.Name+" speedup")
	}
	for qi, q := range w.encQ {
		m256, t256 := vek.NewMachine()
		if _, _, err := core.AlignPair16(m256, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		m512, t512 := vek.NewMachine()
		if _, err := core.AlignPair16W(m512, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		row := []interface{}{w.queries[qi].Len()}
		for _, a := range archs {
			r256 := pairRun(a, t256, len(q), len(w.target))
			r512 := pairRun(a, t512, len(q), len(w.target))
			g256, g512 := r256.GCUPS1(), r512.GCUPS1()
			row = append(row, g256, g512, fmt.Sprintf("%.2fx", g512/g256))
		}
		t.AddRow(row...)
	}
	// End-to-end streaming search: the whole pipeline (32- vs 64-lane
	// batches, 16-bit rescue included) at each width.
	sq := w.encQ[len(w.encQ)/2]
	s256 := searchAtWidth(sq, w, 256)
	s512 := searchAtWidth(sq, w, 512)
	row := []interface{}{fmt.Sprintf("search(db=%d)", len(w.db))}
	for _, a := range archs {
		r256 := pairRunWS(a, s256.Tally, s256.Cells, w.batchWorkingSetKB(0, seqio.BatchLanes))
		r512 := pairRunWS(a, s512.Tally, s512.Cells, w.batchWorkingSetKB(0, seqio.MaxBatchLanes))
		g256, g512 := r256.GCUPS1(), r512.GCUPS1()
		row = append(row, g256, g512, fmt.Sprintf("%.2fx", g512/g256))
	}
	t.AddRow(row...)
	return t
}

// searchAtWidth runs the instrumented streaming search pipeline
// single-threaded at an explicit vector width.
func searchAtWidth(query []uint8, w *workload, width int) *sched.Result {
	res, err := sched.Search(query, w.db, w.mat, sched.Options{
		Gaps: w.gaps, Threads: 1, Instrument: true, Width: width, Backend: w.cfg.Backend, Kernel: w.cfg.Kernel,
	})
	if err != nil {
		panic(fmt.Sprintf("figures: search at width %d: %v", width, err))
	}
	return res
}

// Fig07AffineGap reproduces Fig. 7: the wavefront kernel with affine
// versus linear gap penalties across the four evaluated architectures.
// The paper's finding — affine costs almost nothing — reproduces
// because the kernel is gather/load bound: the extra E/F bookkeeping
// of the affine model hides under that bottleneck.
func Fig07AffineGap(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Fig 7: affine vs linear gap penalty (modeled GCUPS, 1 thread)",
		Headers: []string{"query_len"},
		Note:    "affine E/F state hides under the gather/load bottleneck of the pair kernel; only the ALU-bound batch engine pays measurably for affine (see EXPERIMENTS.md)",
	}
	for _, a := range isa.Evaluated() {
		t.Headers = append(t.Headers, a.Name+" affine", a.Name+" linear")
	}
	// A linear penalty of 6/residue keeps scores in the logarithmic
	// regime (a weak linear gap would saturate the score range and
	// measure the rescue path instead of the kernel).
	linear := aln.Linear(6)
	for qi, q := range w.encQ {
		mA, talA := vek.NewMachine()
		if _, _, err := core.AlignPair16(mA, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		mL, talL := vek.NewMachine()
		if _, _, err := core.AlignPair16(mL, q, w.target, w.mat, core.PairOptions{Gaps: linear}); err != nil {
			panic(err)
		}
		row := []interface{}{w.queries[qi].Len()}
		for _, a := range isa.Evaluated() {
			rA := pairRun(a, talA, len(q), len(w.target))
			rL := pairRun(a, talL, len(q), len(w.target))
			row = append(row, rA.GCUPS1(), rL.GCUPS1())
		}
		t.AddRow(row...)
	}
	return t
}

// Fig08Traceback reproduces Fig. 8: the wavefront kernel with and
// without traceback recording. Recording directions adds a handful of
// cheap vector ops and one byte store per cell; the paper found no
// meaningful slowdown.
func Fig08Traceback(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	t := &stats.Table{
		Title:   "Fig 8: with vs without traceback (modeled GCUPS, 1 thread)",
		Headers: []string{"query_len", "tb_bytes"},
		Note:    "traceback stores one direction byte per cell in diagonal-linearized memory",
	}
	for _, a := range isa.Evaluated() {
		t.Headers = append(t.Headers, a.Name+" no-tb", a.Name+" tb")
	}
	for qi, q := range w.encQ {
		mN, tN := vek.NewMachine()
		if _, _, err := core.AlignPair16(mN, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		mT, tT := vek.NewMachine()
		_, tb, err := core.AlignPair16(mT, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps, Traceback: true})
		if err != nil {
			panic(err)
		}
		row := []interface{}{w.queries[qi].Len(), tb.Bytes()}
		for _, a := range isa.Evaluated() {
			rN := pairRun(a, tN, len(q), len(w.target))
			rT := pairRun(a, tT, len(q), len(w.target))
			// Traceback widens the working set by the trace bytes of
			// the active diagonals (a few KB), not the whole matrix.
			rT.WorkingSetKB += float64(3*len(q)) / 1024
			row = append(row, rN.GCUPS1(), rT.GCUPS1())
		}
		t.AddRow(row...)
	}
	return t
}

// Fig09SubstMatrix reproduces Fig. 9: the kernel with the BLOSUM62
// substitution matrix (gather path) versus fixed match/mismatch
// scores (compare-and-blend path). The gather's port pressure makes
// the substitution-matrix runs core bound.
func Fig09SubstMatrix(cfg Config) *stats.Table {
	w := newWorkload(cfg)
	fixed := submat.MatchMismatch(w.mat.Alphabet(), 2, -1)
	t := &stats.Table{
		Title:   "Fig 9: with vs without substitution matrix (modeled GCUPS, 1 thread)",
		Headers: []string{"query_len"},
		Note:    "the gather path pays port pressure; the 8-bit batch engine closes the 8-bit gap (see bench ablations)",
	}
	for _, a := range isa.Evaluated() {
		t.Headers = append(t.Headers, a.Name+" submat", a.Name+" fixed")
	}
	for qi, q := range w.encQ {
		mS, tS := vek.NewMachine()
		if _, _, err := core.AlignPair16(mS, q, w.target, w.mat, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		mF, tF := vek.NewMachine()
		if _, _, err := core.AlignPair16(mF, q, w.target, fixed, core.PairOptions{Gaps: w.gaps}); err != nil {
			panic(err)
		}
		row := []interface{}{w.queries[qi].Len()}
		for _, a := range isa.Evaluated() {
			rS := pairRun(a, tS, len(q), len(w.target))
			rF := pairRun(a, tF, len(q), len(w.target))
			row = append(row, rS.GCUPS1(), rF.GCUPS1())
		}
		t.AddRow(row...)
	}
	return t
}
