package sched

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"swvec/internal/aln"
	"swvec/internal/leakcheck"
	"swvec/internal/seqio"
)

// waitForGoroutines polls until the live goroutine count drops back to
// at most want, failing the test if it never does — the leak check for
// the canceled pipeline.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// checkStatsConsistent asserts the invariants every Stats snapshot must
// satisfy, canceled or not: cell totals sum to Result.Cells, no stage
// ran more batches than the producer emitted, and the rescue counters
// agree with Result.Rescued.
func checkStatsConsistent(t *testing.T, res *Result) {
	t.Helper()
	s := res.Stats
	if s.Cells() != res.Cells {
		t.Errorf("Stats cells %d != Result.Cells %d", s.Cells(), res.Cells)
	}
	if s.Batches8 > s.BatchesProduced {
		t.Errorf("aligned %d batches but only %d produced", s.Batches8, s.BatchesProduced)
	}
	if int(s.Saturated8) != res.Rescued {
		t.Errorf("Saturated8 %d != Result.Rescued %d", s.Saturated8, res.Rescued)
	}
	if s.Saturated16 > s.Saturated8 {
		t.Errorf("more 16-bit saturations (%d) than 8-bit (%d)", s.Saturated16, s.Saturated8)
	}
	if s.Searches != 1 {
		t.Errorf("per-search snapshot has Searches = %d", s.Searches)
	}
}

// TestSearchContextPreCanceled is the deterministic cancellation path:
// an already-canceled context must return immediately with a partial
// (empty) result, the ctx error, and no leaked goroutines.
func TestSearchContextPreCanceled(t *testing.T) {
	leakcheck.Check(t)
	g := seqio.NewGenerator(301)
	db := g.Database(200)
	query := g.Protein("q", 120).Encode(protAlpha)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchContext(ctx, query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled search must still return the partial result")
	}
	if len(res.Hits) != len(db) {
		t.Fatalf("partial result has %d hits, want %d", len(res.Hits), len(db))
	}
	if res.Stats.Canceled != 1 {
		t.Errorf("Stats.Canceled = %d, want 1", res.Stats.Canceled)
	}
	checkStatsConsistent(t, res)
	waitForGoroutines(t, before+2)
}

// TestSearchContextCancel cancels a search mid-stream: the call must
// return promptly with the partial hits, an error wrapping
// context.Canceled, a consistent Stats snapshot, and no leaked
// pipeline goroutines.
func TestSearchContextCancel(t *testing.T) {
	leakcheck.Check(t)
	g := seqio.NewGenerator(302)
	db := g.Database(1200)
	query := g.Protein("q", 250).Encode(protAlpha)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SearchContext(ctx, query, db, b62,
		Options{Gaps: aln.DefaultGaps(), Threads: 2, PipelineDepth: 2})
	elapsed := time.Since(start)
	cancel()
	waitForGoroutines(t, before+2)

	if err == nil {
		// The machine finished 1200 sequences inside 10ms; nothing to
		// assert about partial state, but the leak check above ran.
		t.Skipf("search completed in %v before the cancel fired", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled search must return the partial result")
	}
	if res.Stats.BatchesProduced >= int64(len(db)/64) && res.Stats.Batches8 == res.Stats.BatchesProduced && res.Stats.Pairs32 == 0 {
		// Not fatal — cancel can land between last batch and return —
		// but the common case is a genuinely partial stream.
		t.Logf("cancel landed after all %d batches were aligned", res.Stats.Batches8)
	}
	if res.Stats.Canceled != 1 {
		t.Errorf("Stats.Canceled = %d, want 1", res.Stats.Canceled)
	}
	checkStatsConsistent(t, res)

	// Partial hits: every aligned batch wrote real scores; verify the
	// result arrays are intact and indexable regardless of progress.
	if len(res.Hits) != len(db) {
		t.Fatalf("partial result has %d hits, want %d", len(res.Hits), len(db))
	}
	for i, h := range res.Hits {
		if h.SeqIndex != i {
			t.Fatalf("hit %d has index %d", i, h.SeqIndex)
		}
	}
}

// TestSearchContextComplete runs an uncanceled ctx search end to end
// and pins down the Stats snapshot against known workload quantities.
func TestSearchContextComplete(t *testing.T) {
	leakcheck.Check(t)
	db, query := rescueDB(303)
	opt := Options{Gaps: aln.DefaultGaps(), Threads: 3}
	width, err := opt.width()
	if err != nil {
		t.Fatal(err)
	}
	lanes := width / 8
	res, err := SearchContext(context.Background(), query, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	wantBatches := int64((len(db) + lanes - 1) / lanes)
	if s.BatchesProduced != wantBatches || s.Batches8 != wantBatches {
		t.Errorf("batches produced/aligned = %d/%d, want %d", s.BatchesProduced, s.Batches8, wantBatches)
	}
	if s.Saturated8 == 0 || s.Batches16 == 0 {
		t.Error("rescue workload did not register in Stats")
	}
	if s.Cells16 == 0 {
		t.Error("16-bit rescue cells missing")
	}
	if s.Stage8Nanos <= 0 || s.ProduceNanos <= 0 {
		t.Errorf("stage timings missing: produce=%d stage8=%d", s.ProduceNanos, s.Stage8Nanos)
	}
	if s.QueueHighWater < 1 || s.QueueHighWater > int64(opt.depth(opt.threads())) {
		t.Errorf("queue high-water %d out of range [1, %d]", s.QueueHighWater, opt.depth(opt.threads()))
	}
	if s.Canceled != 0 {
		t.Errorf("Canceled = %d on a completed search", s.Canceled)
	}
	checkStatsConsistent(t, res)

	// Stats must not perturb results: identical hits via Search.
	ref, err := Search(query, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Hits, ref.Hits) {
		t.Error("ctx and plain Search disagree on hits")
	}
}

// TestMultiSearchContextCancel covers the scenario-2 cancellation path
// the server's request deadline uses.
func TestMultiSearchContextCancel(t *testing.T) {
	leakcheck.Check(t)
	g := seqio.NewGenerator(304)
	db := g.Database(400)
	queries := [][]uint8{
		g.Protein("q1", 200).Encode(protAlpha),
		g.Protein("q2", 300).Encode(protAlpha),
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MultiSearchContext(ctx, queries, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Scores) != len(queries) {
		t.Fatal("canceled multi-search must return the partial score matrix")
	}
	if res.Stats.Batches8 != 0 || res.Cells != 0 {
		t.Errorf("pre-canceled multi-search did work: batches=%d cells=%d", res.Stats.Batches8, res.Cells)
	}
	if res.Stats.Canceled != 1 {
		t.Errorf("Stats.Canceled = %d, want 1", res.Stats.Canceled)
	}
	waitForGoroutines(t, before+2)
}

// TestMultiSearchStats pins the scenario-2 snapshot on a full run.
func TestMultiSearchStats(t *testing.T) {
	leakcheck.Check(t)
	g := seqio.NewGenerator(305)
	db := g.Database(100)
	queries := [][]uint8{g.Protein("q", 150).Encode(protAlpha)}
	res, err := MultiSearchContext(context.Background(), queries, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Batches8 != s.BatchesProduced || s.Batches8 == 0 {
		t.Errorf("batches aligned/produced = %d/%d", s.Batches8, s.BatchesProduced)
	}
	if s.Cells() != res.Cells || res.Cells == 0 {
		t.Errorf("cells mismatch: snapshot %d, result %d", s.Cells(), res.Cells)
	}
	if int(s.Saturated8) != res.Rescued {
		t.Errorf("Saturated8 %d != Rescued %d", s.Saturated8, res.Rescued)
	}
}
