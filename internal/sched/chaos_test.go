//go:build failpoint

package sched

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"swvec/internal/aln"
	"swvec/internal/failpoint"
	"swvec/internal/leakcheck"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

// chaosOpt pins the vector width so batch composition (and therefore
// which sequences share a fate with a poisoned batch) is deterministic
// across machines.
func chaosOpt() Options {
	return Options{Gaps: aln.DefaultGaps(), Width: 256, Threads: 4}
}

// chaosDB is a plain workload: no saturation, so every hit is written
// exactly once by the 8-bit stage.
func chaosDB(seed int64) ([]seqio.Sequence, []uint8) {
	g := seqio.NewGenerator(seed)
	db := g.Database(300)
	return db, g.Protein("q", 150).Encode(protAlpha)
}

// quarantineSet indexes a quarantine report and sanity-checks every
// record: the stage matches, the cause carries the injected message,
// and the ID round-trips to the database entry.
func quarantineSet(t *testing.T, db []seqio.Sequence, qs []Quarantine, stage, msg string) map[int]bool {
	t.Helper()
	set := make(map[int]bool, len(qs))
	for _, q := range qs {
		if q.Stage != stage {
			t.Errorf("quarantine stage = %q, want %q", q.Stage, stage)
		}
		if !strings.Contains(q.Cause, msg) {
			t.Errorf("quarantine cause = %q, want injected %q", q.Cause, msg)
		}
		if q.SeqIndex < 0 || q.SeqIndex >= len(db) {
			t.Fatalf("quarantine index %d out of range", q.SeqIndex)
		}
		if q.ID != db[q.SeqIndex].ID {
			t.Errorf("quarantine id %q != db[%d].ID %q", q.ID, q.SeqIndex, db[q.SeqIndex].ID)
		}
		set[q.SeqIndex] = true
	}
	return set
}

// TestChaosKernelPanicQuarantinesBatch is the headline self-healing
// property: a kernel panic on one batch quarantines that batch's
// sequences and nothing else — the search still succeeds and every
// other score is identical to a healthy run.
func TestChaosKernelPanicQuarantinesBatch(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := chaosDB(601)
	ref, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("sched/align8", "panic(chaos-kernel):first=1"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatalf("self-healing search failed outright: %v", err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("panicked batch produced no quarantine records")
	}
	if len(res.Quarantined) > 32 {
		t.Fatalf("%d sequences quarantined, want at most one 32-lane batch", len(res.Quarantined))
	}
	bad := quarantineSet(t, db, res.Quarantined, "align8", "chaos-kernel")
	for i, h := range res.Hits {
		if bad[i] {
			continue
		}
		if h.Score != ref.Hits[i].Score {
			t.Errorf("healthy hit %d scored %d, reference %d", i, h.Score, ref.Hits[i].Score)
		}
	}
	if res.Stats.PanicsRecovered == 0 {
		t.Error("Stats.PanicsRecovered = 0 after a recovered kernel panic")
	}
	if res.Stats.Quarantined != int64(len(res.Quarantined)) {
		t.Errorf("Stats.Quarantined = %d, report has %d", res.Stats.Quarantined, len(res.Quarantined))
	}
	checkStatsConsistent(t, res)
}

// TestChaosTransientErrorRetries: a fault marked transient is retried
// with backoff and the search completes with zero quarantines and a
// result identical to the healthy reference.
func TestChaosTransientErrorRetries(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := chaosDB(602)
	ref, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("sched/align8", "error(resource blip):transient:first=2"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("transient fault quarantined %d sequences: %+v", len(res.Quarantined), res.Quarantined)
	}
	if res.Stats.Retries == 0 {
		t.Error("Stats.Retries = 0: the transient fault was never retried")
	}
	for i, h := range res.Hits {
		if h != ref.Hits[i] {
			t.Fatalf("hit %d = %+v, reference %+v", i, h, ref.Hits[i])
		}
	}
}

// TestChaosPermanentErrorQuarantines: a non-transient stage error is
// not retried; each poisoned batch is quarantined and the rest of the
// search completes.
func TestChaosPermanentErrorQuarantines(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := chaosDB(603)
	ref, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("sched/align8", "error(dead lane):first=2"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) < 2 {
		t.Fatalf("two injected failures produced %d quarantines", len(res.Quarantined))
	}
	bad := quarantineSet(t, db, res.Quarantined, "align8", "dead lane")
	for i, h := range res.Hits {
		if !bad[i] && h.Score != ref.Hits[i].Score {
			t.Errorf("healthy hit %d scored %d, reference %d", i, h.Score, ref.Hits[i].Score)
		}
	}
	if res.Stats.Retries != 0 {
		t.Errorf("Stats.Retries = %d for a permanent (non-transient) fault", res.Stats.Retries)
	}
}

// TestChaosRescuePanicQuarantines drives the 16-bit rescue stage over
// a saturating workload and panics its kernel: the rescued batch is
// quarantined, the affected hits keep their capped 8-bit score with
// Rescued false, and untouched sequences match the healthy run.
func TestChaosRescuePanicQuarantines(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := rescueDB(604)
	ref, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rescued == 0 {
		t.Fatal("setup failure: workload did not saturate the 8-bit stage")
	}
	if err := failpoint.Enable("sched/align16", "panic(rescue burn):first=1"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, b62, chaosOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("failed rescue produced no quarantine records")
	}
	bad := quarantineSet(t, db, res.Quarantined, "align16", "rescue burn")
	for si := range bad {
		h := res.Hits[si]
		if h.Rescued {
			t.Errorf("quarantined seq %d marked Rescued despite the failed rescue", si)
		}
		if !ref.Hits[si].Rescued {
			t.Errorf("quarantined seq %d was never rescued in the reference run", si)
		}
	}
	for i, h := range res.Hits {
		if !bad[i] && h.Score != ref.Hits[i].Score {
			t.Errorf("healthy hit %d scored %d, reference %d", i, h.Score, ref.Hits[i].Score)
		}
	}
	if res.Stats.PanicsRecovered == 0 {
		t.Error("Stats.PanicsRecovered = 0 after a recovered rescue panic")
	}
}

// TestChaosGrouperCrashFailsCleanly: a fault in the pipeline's own
// machinery (the rescue grouper, which has no per-batch error path) is
// not healable — the search must fail with the panic's error, promptly
// and without leaking a single goroutine.
func TestChaosGrouperCrashFailsCleanly(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := rescueDB(605)
	if err := failpoint.Enable("sched/rescue", "error(grouper bug):first=1"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, b62, chaosOpt())
	if err == nil {
		t.Fatal("crashed coordinator did not fail the search")
	}
	if !strings.Contains(err.Error(), "rescue-grouper") || !strings.Contains(err.Error(), "grouper bug") {
		t.Errorf("err = %v, want the rescue-grouper panic", err)
	}
	if res != nil {
		t.Errorf("crashed search returned a result: %+v", res)
	}
}

// TestChaosProducerFaultFailsSearch: a producer fault is fatal by
// design — without the stream there is nothing to heal around — but it
// must still unwind cleanly.
func TestChaosProducerFaultFailsSearch(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := chaosDB(606)
	if err := failpoint.Enable("sched/produce", "error(stream io):first=1"); err != nil {
		t.Fatal(err)
	}
	_, err := Search(query, db, b62, chaosOpt())
	if err == nil {
		t.Fatal("producer fault did not fail the search")
	}
	if !strings.Contains(err.Error(), "stream io") {
		t.Errorf("err = %v, want the injected producer fault", err)
	}
}

// TestChaosMultiSearchQuarantines covers the scenario-2 path: a failed
// multi-query batch quarantines its sequences for every query while the
// rest of the score matrix matches a healthy run.
func TestChaosMultiSearchQuarantines(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	g := seqio.NewGenerator(607)
	db := g.Database(200)
	queries := [][]uint8{
		g.Protein("q1", 120).Encode(protAlpha),
		g.Protein("q2", 180).Encode(protAlpha),
	}
	opt := chaosOpt()
	ref, err := MultiSearch(queries, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("sched/multi8", "error(multi boom):first=1"); err != nil {
		t.Fatal(err)
	}
	res, err := MultiSearch(queries, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("failed multi-query batch produced no quarantine records")
	}
	bad := quarantineSet(t, db, res.Quarantined, "multi8", "multi boom")
	for qi := range queries {
		for si := range db {
			if bad[si] {
				if res.Scores[qi][si] != 0 {
					t.Errorf("quarantined score [%d][%d] = %d, want 0", qi, si, res.Scores[qi][si])
				}
				continue
			}
			if res.Scores[qi][si] != ref.Scores[qi][si] {
				t.Errorf("score [%d][%d] = %d, reference %d", qi, si, res.Scores[qi][si], ref.Scores[qi][si])
			}
		}
	}
	if res.Stats.Quarantined != int64(len(res.Quarantined)) {
		t.Errorf("Stats.Quarantined = %d, report has %d", res.Stats.Quarantined, len(res.Quarantined))
	}
}

// TestChaosDelayRespectsDeadline injects latency into every 8-bit
// batch and runs under a tight deadline: the search must return
// promptly with the ctx error and a consistent partial result, leaking
// nothing.
func TestChaosDelayRespectsDeadline(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	g := seqio.NewGenerator(608)
	db := g.Database(2000)
	query := g.Protein("q", 200).Encode(protAlpha)
	if err := failpoint.Enable("sched/align8", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	opt := Options{Gaps: aln.DefaultGaps(), Width: 256, Threads: 2}
	start := time.Now()
	res, err := SearchContext(ctx, query, db, b62, opt)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("deadlined search took %v to return", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("deadlined search must return the partial result")
	}
	if res.Stats.Canceled != 1 {
		t.Errorf("Stats.Canceled = %d, want 1", res.Stats.Canceled)
	}
	checkStatsConsistent(t, res)
}

// TestChaos32BitEscalationRetries drives the escalation ladder to the
// 32-bit pair tier and injects transient faults into it: the stage
// retry policy must absorb them and the final hits must match a
// healthy run exactly.
func TestChaos32BitEscalationRetries(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := escalationDB(t, 606)
	mat := submat.MatchMismatch(protAlpha, 25, -8)
	opt := chaosOpt()
	ref, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Pairs32 == 0 {
		t.Fatal("setup failure: workload never escalated to the 32-bit tier")
	}
	if err := failpoint.Enable("sched/align32", "error(escalation blip):transient:first=2"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatalf("search under transient 32-bit faults failed: %v", err)
	}
	if failpoint.Fired("sched/align32") == 0 {
		t.Fatal("sched/align32 site never fired")
	}
	if res.Stats.Retries == 0 {
		t.Error("injected transient faults caused no retries")
	}
	for i, h := range res.Hits {
		if h.Score != ref.Hits[i].Score || h.Rescued != ref.Hits[i].Rescued {
			t.Errorf("hit %d = (%d, rescued=%v), healthy run (%d, rescued=%v)",
				i, h.Score, h.Rescued, ref.Hits[i].Score, ref.Hits[i].Rescued)
		}
	}
}

// TestChaos32BitFailureQuarantines injects a permanent fault into the
// 32-bit tier: the escalated sequence is quarantined with the align32
// stage recorded, its score stays below the healthy (overflowing)
// value, and every other hit is untouched.
func TestChaos32BitFailureQuarantines(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := escalationDB(t, 607)
	mat := submat.MatchMismatch(protAlpha, 25, -8)
	opt := chaosOpt()
	ref, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Pairs32 == 0 {
		t.Fatal("setup failure: workload never escalated to the 32-bit tier")
	}
	if err := failpoint.Enable("sched/align32", "error(tier burn)"); err != nil {
		t.Fatal(err)
	}
	res, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatalf("search with a failed 32-bit tier must degrade, not fail: %v", err)
	}
	bad := quarantineSet(t, db, res.Quarantined, "align32", "tier burn")
	if len(bad) == 0 {
		t.Fatal("failed 32-bit escalation produced no quarantine records")
	}
	for si := range bad {
		if res.Hits[si].Score >= ref.Hits[si].Score {
			t.Errorf("quarantined seq %d scored %d, not below the healthy overflowing %d",
				si, res.Hits[si].Score, ref.Hits[si].Score)
		}
	}
	for i, h := range res.Hits {
		if !bad[i] && h.Score != ref.Hits[i].Score {
			t.Errorf("healthy hit %d scored %d, reference %d", i, h.Score, ref.Hits[i].Score)
		}
	}
}
