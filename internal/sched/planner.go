// The per-query kernel planner: given a query's shape and the search
// configuration, pick the kernel family every alignment stage of that
// search will run. The policy is deliberately small and fully
// table-tested (TestPlannerDecisions):
//
//	explicit Options.Kernel        -> that kernel, always
//	instrumented or modeled runs   -> diagonal (the figure apparatus:
//	                                  port-occupancy tallies are
//	                                  calibrated on the diagonal layout)
//	linear gap model               -> diagonal (the striped family is
//	                                  affine-only, see core/stripedg.go)
//	short queries                  -> diagonal (per-column overhead of
//	                                  the striped rotate + correction
//	                                  amortizes over long queries; the
//	                                  interleaved batch engine already
//	                                  saturates lanes on short ones)
//	well-packed batches            -> diagonal (the interleaved engine
//	                                  wastes almost no lanes, and its
//	                                  cross-sequence vectorization beats
//	                                  one striped pair per lane)
//	long queries, padded batches   -> striped family: the per-lane pair
//	                                  kernels skip the padding the
//	                                  interleaved engine burns on
//	                                  ragged-length batches
//	  ... costly gap opens         -> striped (classic lazy-F: the
//	                                  correction loop exits immediately
//	                                  when F rarely crosses stripes)
//	  ... cheap gap opens          -> lazyf (the deconstructed scan's
//	                                  fixed log2(lanes) steps beat the
//	                                  data-dependent loop when
//	                                  corrections do fire)
//
// "Costly gap opens" is stripedFewCorrections: when a single gap open
// costs more than the best substitution score, F values start below
// every reachable H and corrections are rare, so the classic loop's
// early exit almost always triggers on the first stripe.
package sched

import (
	"sort"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

// plannerStripedMinQuery is the query length where the striped family
// starts beating the diagonal batch engines end to end on the native
// backend (segments long enough to amortize the per-column rotate and
// correction; measured with `make bench-kernels`, see EXPERIMENTS.md).
const plannerStripedMinQuery = 384

// plannerStripedMinPad is the batch padding ratio (interleaved-engine
// cells over real cells) above which the striped family wins: the
// per-lane pair kernels do only the real work, while the interleaved
// engine runs every lane to the batch's longest sequence. Measured
// with `make bench-kernels`: a well-sorted large database packs to
// ~1.1-1.3 and the diagonal engine wins; a small or unsorted database
// pads at 3x+ and the striped family wins by the padding factor.
const plannerStripedMinPad = 2.0

// batchPadRatio estimates the interleaved batch engines' total-to-real
// cell ratio for this database, mirroring the producer's grouping:
// consecutive runs of `lanes` sequences, in length-sorted order when
// the search sorts. Every lane of a batch runs to the batch's longest
// sequence, so the engine's work is lanes x maxLen per batch.
func batchPadRatio(db []seqio.Sequence, lanes int, sorted bool) float64 {
	if len(db) == 0 || lanes <= 0 {
		return 1
	}
	lens := make([]int, len(db))
	for i := range db {
		lens[i] = len(db[i].Residues)
	}
	if sorted {
		sort.Ints(lens)
	}
	var real, engine int64
	for i := 0; i < len(lens); i += lanes {
		end := i + lanes
		if end > len(lens) {
			end = len(lens)
		}
		maxLen := 0
		for _, n := range lens[i:end] {
			real += int64(n)
			if n > maxLen {
				maxLen = n
			}
		}
		engine += int64(lanes) * int64(maxLen)
	}
	if real == 0 {
		return 1
	}
	return float64(engine) / float64(real)
}

// builtPadRatio is the exact engine-to-real cell ratio of already
// materialized batches (MultiSearch builds them up front, so no
// estimate is needed).
func builtPadRatio(batches []*seqio.Batch) float64 {
	var real, engine int64
	for _, b := range batches {
		engine += int64(b.MaxLen) * int64(b.Stride())
		real += b.Cells(1)
	}
	if real == 0 {
		return 1
	}
	return float64(engine) / float64(real)
}

// stripedFewCorrections predicts whether the lazy-F correction loop
// will almost always exit immediately: when opening a gap costs more
// than the largest substitution score, a freshly opened F can never
// exceed the H of a matched cell in the next stripe, so cross-stripe
// corrections only fire on long gap runs.
func stripedFewCorrections(mat *submat.Matrix, g aln.Gaps) bool {
	return g.Open > int32(mat.Max())
}

// kernel resolves the kernel family for a search over the given query,
// applying the planner policy above. be must be the resolved backend
// (Options.backend()); padRatio is the batchPadRatio estimate for the
// database the search will stream.
func (o *Options) kernel(queryLen int, mat *submat.Matrix, be core.Backend, padRatio float64) core.Kernel {
	if o.Kernel != core.KernelAuto {
		return o.Kernel
	}
	if o.Instrument || be == core.BackendModeled {
		// Figure guard: instrumented and modeled runs stay on the
		// diagonal apparatus the performance model is calibrated for.
		return core.KernelDiagonal
	}
	if o.Gaps.IsLinear() || queryLen < plannerStripedMinQuery {
		return core.KernelDiagonal
	}
	if padRatio < plannerStripedMinPad {
		// Well-packed batches: the interleaved engine's cross-sequence
		// vectorization does almost no wasted work, and it beats one
		// striped pair per lane.
		return core.KernelDiagonal
	}
	if stripedFewCorrections(mat, o.Gaps) {
		return core.KernelStriped
	}
	return core.KernelLazyF
}
