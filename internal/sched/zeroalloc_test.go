package sched

import (
	"context"
	"fmt"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/failpoint"
	"swvec/internal/metrics"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// TestSearchZeroAlloc pins the resilience machinery's hot-path cost in
// the default build at zero: the per-batch 8-bit stage — now wrapped in
// failpoint hooks, per-attempt panic recovery, and the retry policy —
// must not allocate on the healthy path. Only the failure paths
// (quarantine, backoff) may.
func TestSearchZeroAlloc(t *testing.T) {
	if failpoint.Enabled {
		t.Skip("failpoint build adds fault-injection lookups to the hot path")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := seqio.NewGenerator(611)
	// Uniform sequence lengths keep the stream's recycled transpose
	// buffer at a fixed capacity: variable-length databases legitimately
	// reallocate it as longer batches stream through, which would mask
	// the overhead this test is pinning.
	db := make([]seqio.Sequence, 0, 2048)
	for i := 0; i < 2048; i++ {
		db = append(db, g.Protein(fmt.Sprintf("s%d", i), 200))
	}
	query := g.Protein("q", 120).Encode(protAlpha)
	opt := Options{Gaps: aln.DefaultGaps(), Width: 256, Threads: 1}
	alpha := b62.Alphabet()
	ictx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &pipeline{
		ctx:     ictx,
		cancel:  cancel,
		crashed: make(chan struct{}),
		query:   query,
		db:      db,
		alpha:   alpha,
		mat:     b62,
		tables:  submat.NewCodeTables(b62),
		opt:     &opt,
		res:     &Result{Hits: make([]Hit, len(db))},
		lanes:   32,
		stream:  seqio.NewBatchStream(db, alpha, seqio.BatchOptions{Lanes: 32}),
		sat8:    make(chan int, len(db)),
		met:     &metrics.Counters{},
	}
	scratch := core.NewScratch()
	// Two warm batches prime the stream's recycle pool and the scratch
	// arena so the measurement sees the steady state.
	for i := 0; i < 2; i++ {
		b := p.stream.Next()
		if b == nil {
			t.Fatal("stream exhausted during warm-up")
		}
		p.run8(vek.Bare, scratch, b)
	}
	allocs := testing.AllocsPerRun(50, func() {
		b := p.stream.Next()
		if b == nil {
			t.Fatal("stream exhausted mid-measurement")
		}
		p.run8(vek.Bare, scratch, b)
	})
	if allocs != 0 {
		t.Errorf("run8 allocates %.1f objects per batch on the healthy path", allocs)
	}
}
