//go:build failpoint

package sched

import (
	"testing"

	"swvec/internal/core"
	"swvec/internal/failpoint"
	"swvec/internal/leakcheck"
	"swvec/internal/submat"
)

// TestChaosNativeBackendRetries runs the native backend through the
// fault-injection harness: transient faults on the 8-bit and 16-bit
// stages must be retried and the final hits must match a healthy
// modeled run exactly — the resilience machinery is backend-agnostic.
func TestChaosNativeBackendRetries(t *testing.T) {
	leakcheck.Check(t)
	defer failpoint.DisableAll()
	db, query := escalationDB(t, 605)
	mat := submat.MatchMismatch(protAlpha, 25, -8)
	opt := chaosOpt()
	opt.Backend = core.BackendModeled
	ref, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Saturated8 == 0 || ref.Stats.Pairs32 == 0 {
		t.Fatal("setup failure: escalation ladder not exercised")
	}
	if err := failpoint.Enable("sched/align8", "error(resource blip):transient:first=2"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("sched/align16", "error(rescue blip):transient:first=1"); err != nil {
		t.Fatal(err)
	}
	opt.Backend = core.BackendNative
	res, err := Search(query, db, mat, opt)
	if err != nil {
		t.Fatalf("native search under transient faults failed: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Error("injected transient faults caused no retries")
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("%d sequences quarantined after transient-only faults", len(res.Quarantined))
	}
	for i := range ref.Hits {
		if res.Hits[i] != ref.Hits[i] {
			t.Errorf("seq %d: native-under-chaos %+v != healthy modeled %+v",
				i, res.Hits[i], ref.Hits[i])
		}
	}
}
