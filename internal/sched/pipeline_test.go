package sched

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
)

// rescueDB returns a database plus query where at least one sequence
// saturates the 8-bit stage but nothing escalates past 16 bits.
func rescueDB(seed int64) ([]seqio.Sequence, []uint8) {
	g := seqio.NewGenerator(seed)
	db := g.Database(60)
	query := g.Protein("q", 600)
	db = append(db, g.Related(query, "homolog", 0.03, 0.01))
	return db, query.Encode(protAlpha)
}

// expectedCells computes the stage-aware cell count from the hit
// flags: every sequence is processed once at 8 bits, rescued sequences
// again at 16 bits, and scores past int16 range once more at 32 bits.
func expectedCells(db []seqio.Sequence, qlen int, hits []Hit, sorted bool) int64 {
	batches := seqio.BuildBatches(db, protAlpha, seqio.BatchOptions{SortByLength: sorted})
	want := seqio.BatchedCells(batches, qlen)
	for _, h := range hits {
		if h.Rescued {
			want += int64(qlen) * int64(db[h.SeqIndex].Len())
		}
		if h.Score > 32767 {
			want += int64(qlen) * int64(db[h.SeqIndex].Len())
		}
	}
	return want
}

// TestSearchCellsCountAllStages is the regression test for the cell
// accounting fix: Cells must include the 16-bit rescue (and 32-bit
// escalation) work, not just the 8-bit sweep, and must be deterministic
// across thread counts and batch orderings.
func TestSearchCellsCountAllStages(t *testing.T) {
	db, query := rescueDB(201)
	var first int64
	for _, cfg := range []Options{
		{Gaps: aln.DefaultGaps(), Threads: 1},
		{Gaps: aln.DefaultGaps(), Threads: 4},
		{Gaps: aln.DefaultGaps(), Threads: 3, SortByLength: true},
	} {
		res, err := Search(query, db, b62, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rescued == 0 {
			t.Fatal("setup failure: no rescue triggered")
		}
		for _, h := range res.Hits {
			if h.Score > 32767 {
				t.Fatalf("setup failure: seq %d escalated to 32 bits", h.SeqIndex)
			}
		}
		want := expectedCells(db, len(query), res.Hits, cfg.SortByLength)
		if res.Cells != want {
			t.Fatalf("threads=%d sorted=%v: Cells = %d, want %d (8-bit sweep plus %d rescues)",
				cfg.Threads, cfg.SortByLength, res.Cells, want, res.Rescued)
		}
		if first == 0 {
			first = res.Cells
		} else if res.Cells != first {
			t.Fatalf("Cells not deterministic: %d vs %d", res.Cells, first)
		}
	}
}

// TestSearchEscalatesTo32Bits drives a self-alignment whose score
// overflows int16, forcing the full 8 -> 16 -> 32 bit escalation chain
// through the streaming pipeline.
func TestSearchEscalatesTo32Bits(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-alignment")
	}
	g := seqio.NewGenerator(202)
	db := g.Database(40)
	big := g.Protein("big", 7000)
	db = append(db, big)
	query := big.Encode(protAlpha)
	res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	hit := res.Hits[len(db)-1]
	if hit.Score <= 32767 {
		t.Fatalf("setup failure: self-alignment score %d fits in int16", hit.Score)
	}
	if !hit.Rescued {
		t.Fatal("escalated hit not marked Rescued")
	}
	want := baselines.ScalarAffine(query, big.Encode(protAlpha), b62, aln.DefaultGaps()).Score
	if hit.Score != want {
		t.Fatalf("32-bit score %d, want scalar %d", hit.Score, want)
	}
	if got := expectedCells(db, len(query), res.Hits, false); res.Cells != got {
		t.Fatalf("Cells = %d, want %d including the 32-bit pass", res.Cells, got)
	}
	if res.TopHits(1)[0].SeqIndex != len(db)-1 {
		t.Error("self-hit should rank first")
	}
}

// TestSearchPipelineDepthInvariance checks that the queue depth is a
// pure performance knob: results are identical from a depth-1 pipeline
// to a deep one.
func TestSearchPipelineDepthInvariance(t *testing.T) {
	db, query := rescueDB(203)
	var ref *Result
	for _, depth := range []int{0, 1, 2, 16} {
		res, err := Search(query, db, b62,
			Options{Gaps: aln.DefaultGaps(), Threads: 3, PipelineDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Hits, ref.Hits) {
			t.Fatalf("depth %d changed hits", depth)
		}
		if res.Cells != ref.Cells || res.Rescued != ref.Rescued {
			t.Fatalf("depth %d: cells/rescued %d/%d, want %d/%d",
				depth, res.Cells, res.Rescued, ref.Cells, ref.Rescued)
		}
	}
}

// referenceTopHits is the semantics TopHits must preserve: a stable
// score-descending sort of the full hit list, truncated to n.
func referenceTopHits(hits []Hit, n int) []Hit {
	all := make([]Hit, len(hits))
	copy(all, hits)
	sort.SliceStable(all, func(a, b int) bool { return all[a].Score > all[b].Score })
	if n < 0 {
		n = 0
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func TestTopHitsMatchesStableSort(t *testing.T) {
	// Scores with heavy ties so the database-order tie-break is
	// actually exercised.
	scores := []int32{40, 17, 93, 40, 40, 5, 93, 17, 62, 40, 5, 93, 0, 62, 40}
	res := &Result{Hits: make([]Hit, len(scores))}
	for i, s := range scores {
		res.Hits[i] = Hit{SeqIndex: i, Score: s, Rescued: i%3 == 0}
	}
	for _, n := range []int{-3, 0, 1, 3, 7, len(scores), len(scores) + 5} {
		got := res.TopHits(n)
		want := referenceTopHits(res.Hits, n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d:\n got %v\nwant %v", n, got, want)
		}
	}
	// TopHits must not disturb the result's own hit order.
	for i, h := range res.Hits {
		if h.SeqIndex != i {
			t.Fatal("TopHits mutated Result.Hits")
		}
	}
}

func TestTopHitsOnSearchResult(t *testing.T) {
	db, query := rescueDB(204)
	res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5, len(db)} {
		if got, want := res.TopHits(n), referenceTopHits(res.Hits, n); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: heap selection disagrees with stable sort", n)
		}
	}
}

// TestConcurrentSearches runs Search and MultiSearch from many
// goroutines over shared inputs; under -race this certifies the
// lock-free hit writes and scratch arenas are properly confined.
func TestConcurrentSearches(t *testing.T) {
	g := seqio.NewGenerator(205)
	db := g.Database(70)
	q1 := g.Protein("q1", 150).Encode(protAlpha)
	q2 := g.Protein("q2", 90).Encode(protAlpha)
	opt := Options{Gaps: aln.DefaultGaps(), Threads: 3}

	ref, err := Search(q1, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}
	refMulti, err := MultiSearch([][]uint8{q1, q2}, db, b62, opt)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Search(q1, db, b62, opt)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Hits, ref.Hits) {
				t.Error("concurrent Search diverged")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := MultiSearch([][]uint8{q1, q2}, db, b62, opt)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Scores, refMulti.Scores) {
				t.Error("concurrent MultiSearch diverged")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
