package sched

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/metrics"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

// coreGlobalProfileHits reads the process-wide profile-cache counter.
func coreGlobalProfileHits() int64 { return metrics.Global.ProfileCacheHits.Load() }

// escalationDB builds a workload that exercises the full saturation
// ladder through the streaming pipeline: related homologs saturate the
// 8-bit stage, and (unless short) a long self-hit overflows int16 and
// escalates to the 32-bit pair kernel.
func escalationDB(t *testing.T, seed int64) ([]seqio.Sequence, []uint8) {
	g := seqio.NewGenerator(seed)
	db := g.Database(40)
	// Under the +25 match matrix below, a self-alignment of this length
	// scores 25*1400 = 35000, past int16, reaching the 32-bit pair
	// tier; the mutated homolog saturates the 8-bit stage.
	query := g.Protein("q", 1400)
	db = append(db, g.Related(query, "homolog", 0.10, 0.02))
	db = append(db, query)
	return db, query.Encode(protAlpha)
}

// TestSearchBackendEquivalence is the end-to-end seam check: the same
// search, saturation rescue included, must produce identical hits —
// scores, Rescued flags, order — on the modeled machine and the native
// kernels, at both vector widths.
func TestSearchBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long escalation workload")
	}
	db, query := escalationDB(t, 401)
	mat := submat.MatchMismatch(protAlpha, 25, -8)
	for _, width := range []int{256, 512} {
		mod, err := Search(query, db, mat, Options{
			Gaps: aln.DefaultGaps(), Threads: 4, Width: width, Backend: core.BackendModeled})
		if err != nil {
			t.Fatal(err)
		}
		if mod.Stats.Saturated8 == 0 {
			t.Fatal("setup failure: no 8-bit saturation")
		}
		if mod.Stats.Pairs32 == 0 {
			t.Fatal("setup failure: no 32-bit escalation")
		}
		nat, err := Search(query, db, mat, Options{
			Gaps: aln.DefaultGaps(), Threads: 4, Width: width, Backend: core.BackendNative})
		if err != nil {
			t.Fatal(err)
		}
		if len(mod.Hits) != len(nat.Hits) {
			t.Fatalf("width %d: hit counts differ", width)
		}
		for i := range mod.Hits {
			if mod.Hits[i] != nat.Hits[i] {
				t.Errorf("width %d seq %d: modeled %+v != native %+v",
					width, i, mod.Hits[i], nat.Hits[i])
			}
		}
		if mod.Stats.Saturated8 != nat.Stats.Saturated8 ||
			mod.Stats.Saturated16 != nat.Stats.Saturated16 ||
			mod.Stats.Pairs32 != nat.Stats.Pairs32 {
			t.Errorf("width %d: escalation stats diverge: modeled sat8=%d sat16=%d p32=%d, native sat8=%d sat16=%d p32=%d",
				width, mod.Stats.Saturated8, mod.Stats.Saturated16, mod.Stats.Pairs32,
				nat.Stats.Saturated8, nat.Stats.Saturated16, nat.Stats.Pairs32)
		}
	}
}

// TestBackendResolution pins the Auto policy: native for plain
// searches, modeled whenever instruction tallies are requested.
func TestBackendResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		want core.Backend
	}{
		{Options{}, core.BackendNative},
		{Options{Instrument: true}, core.BackendModeled},
		{Options{Backend: core.BackendModeled}, core.BackendModeled},
		{Options{Backend: core.BackendNative, Instrument: true}, core.BackendNative},
	}
	for i, c := range cases {
		if got := c.opt.backend(); got != c.want {
			t.Errorf("case %d: backend() = %v, want %v", i, got, c.want)
		}
	}
}

// TestSearchInstrumentedStaysModeled guards the figure pipeline: an
// instrumented search must keep producing non-empty tallies (the
// native kernels cannot count modeled instructions).
func TestSearchInstrumentedStaysModeled(t *testing.T) {
	g := seqio.NewGenerator(402)
	db := g.Database(40)
	query := g.Protein("q", 100).Encode(protAlpha)
	res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally == nil || res.Tally.Total() == 0 {
		t.Fatal("instrumented search produced an empty tally")
	}
}

// TestMultiSearchBackendEquivalence covers the scenario-2 path: the
// multi-query score matrix, including its per-pair 16-bit rescues,
// must be identical on both backends.
func TestMultiSearchBackendEquivalence(t *testing.T) {
	g := seqio.NewGenerator(403)
	db := g.Database(50)
	long := g.Protein("q-long", 650)
	db = append(db, g.Related(long, "homolog", 0.03, 0.01))
	queries := [][]uint8{
		g.Protein("q1", 90).Encode(protAlpha),
		long.Encode(protAlpha),
	}
	mod, err := MultiSearch(queries, db, b62, Options{
		Gaps: aln.DefaultGaps(), Threads: 4, Backend: core.BackendModeled})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Rescued == 0 {
		t.Fatal("setup failure: no rescue triggered")
	}
	nat, err := MultiSearch(queries, db, b62, Options{
		Gaps: aln.DefaultGaps(), Threads: 4, Backend: core.BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		for si := range db {
			if mod.Scores[qi][si] != nat.Scores[qi][si] {
				t.Errorf("query %d seq %d: modeled %d != native %d",
					qi, si, mod.Scores[qi][si], nat.Scores[qi][si])
			}
		}
	}
}

// TestSearchProfileCacheMetric checks the pipeline surfaces the
// scratch-level profile cache counter: the subroutine scenario's
// repeated pair alignments fold their hits into the global aggregate.
func TestSearchProfileCacheMetric(t *testing.T) {
	g := seqio.NewGenerator(404)
	db := g.Database(6)
	queries := [][]uint8{g.Protein("q", 80).Encode(protAlpha)}
	before := coreGlobalProfileHits()
	// One query against several sequences on one worker: every pair
	// after the first reuses the cached profile.
	if _, err := Subroutine(queries, db, b62, false, Options{Gaps: aln.DefaultGaps(), Threads: 1, Backend: core.BackendModeled}); err != nil {
		t.Fatal(err)
	}
	if after := coreGlobalProfileHits(); after <= before {
		t.Errorf("global profile_cache_hits did not increase (%d -> %d)", before, after)
	}
}
