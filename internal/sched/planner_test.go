package sched

import (
	"fmt"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/core"
	"swvec/internal/seqio"
)

// TestPlannerDecisions pins the kernel planner's decision table: every
// row is one search configuration and the family the plan must
// resolve to.
func TestPlannerDecisions(t *testing.T) {
	affine := aln.DefaultGaps()             // open 11 > Blosum62 max 11? see below
	costly := aln.Gaps{Open: 20, Extend: 1} // open above every substitution score
	cheap := aln.Gaps{Open: 2, Extend: 1}   // open below the matrix max
	long := plannerStripedMinQuery
	short := plannerStripedMinQuery - 1
	padded := plannerStripedMinPad + 2 // ragged batches: striped pays
	packed := plannerStripedMinPad / 2 // well-sorted batches: it doesn't
	cases := []struct {
		name string
		opt  Options
		qlen int
		pad  float64
		want core.Kernel
	}{
		{"explicit-diagonal", Options{Gaps: costly, Kernel: core.KernelDiagonal}, long, padded, core.KernelDiagonal},
		{"explicit-striped", Options{Gaps: cheap, Kernel: core.KernelStriped}, short, packed, core.KernelStriped},
		{"explicit-lazyf", Options{Gaps: costly, Kernel: core.KernelLazyF}, short, packed, core.KernelLazyF},
		{"explicit-wins-over-instrument", Options{Gaps: costly, Kernel: core.KernelLazyF, Instrument: true}, long, padded, core.KernelLazyF},
		{"instrumented-stays-diagonal", Options{Gaps: costly, Instrument: true}, long, padded, core.KernelDiagonal},
		{"modeled-stays-diagonal", Options{Gaps: costly, Backend: core.BackendModeled}, long, padded, core.KernelDiagonal},
		{"linear-stays-diagonal", Options{Gaps: aln.Linear(2)}, long, padded, core.KernelDiagonal},
		{"short-query-stays-diagonal", Options{Gaps: costly}, short, padded, core.KernelDiagonal},
		{"packed-batches-stay-diagonal", Options{Gaps: costly}, long, packed, core.KernelDiagonal},
		{"pad-threshold-is-inclusive", Options{Gaps: costly}, long, plannerStripedMinPad, core.KernelStriped},
		{"long-costly-open-striped", Options{Gaps: costly}, long, padded, core.KernelStriped},
		{"long-cheap-open-lazyf", Options{Gaps: cheap}, long, padded, core.KernelLazyF},
		{"long-costly-open-native-striped", Options{Gaps: costly, Backend: core.BackendNative}, long, padded, core.KernelStriped},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.opt.kernel(c.qlen, b62, c.opt.backend(), c.pad)
			if got != c.want {
				t.Fatalf("kernel(qlen=%d, pad=%.1f, %+v) = %v, want %v", c.qlen, c.pad, c.opt, got, c.want)
			}
		})
	}
	// The boundary case depends on the matrix: BLOSUM62's max equals
	// the default open penalty, so defaults sit on the lazy-F side.
	if got := (&Options{Gaps: affine}).kernel(long, b62, core.BackendNative, padded); affine.Open > int32(b62.Max()) {
		if got != core.KernelStriped {
			t.Fatalf("default gaps resolved to %v, want striped", got)
		}
	} else if got != core.KernelLazyF {
		t.Fatalf("default gaps resolved to %v, want lazyf", got)
	}
}

// TestSearchReportsPlannedKernel runs real searches and checks that
// Result.Kernel reflects the plan and the per-kernel counters
// attribute the work to the right family.
func TestSearchReportsPlannedKernel(t *testing.T) {
	g := seqio.NewGenerator(404)
	db := g.Database(30)
	longQ := g.Protein("q", plannerStripedMinQuery+80).Encode(protAlpha)
	shortQ := g.Protein("s", 60).Encode(protAlpha)
	costly := aln.Gaps{Open: 20, Extend: 1}
	cheap := aln.Gaps{Open: 2, Extend: 1}

	cases := []struct {
		name  string
		query []uint8
		opt   Options
		want  core.Kernel
	}{
		{"auto-long-costly", longQ, Options{Gaps: costly, Threads: 2}, core.KernelStriped},
		{"auto-long-cheap", longQ, Options{Gaps: cheap, Threads: 2}, core.KernelLazyF},
		{"auto-short", shortQ, Options{Gaps: costly, Threads: 2}, core.KernelDiagonal},
		{"forced-diagonal", longQ, Options{Gaps: costly, Threads: 2, Kernel: core.KernelDiagonal}, core.KernelDiagonal},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Search(c.query, db, b62, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Kernel != c.want {
				t.Fatalf("Result.Kernel = %v, want %v", res.Kernel, c.want)
			}
			// Scores must not depend on the plan.
			for i, h := range res.Hits {
				want := baselines.ScalarAffine(c.query, db[i].Encode(protAlpha), b62, c.opt.Gaps).Score
				if h.Score != want {
					t.Fatalf("seq %d: score %d, want %d", i, h.Score, want)
				}
			}
			// The family's counters carry the batches and cells.
			s := res.Stats
			byFamily := map[core.Kernel][2]int64{
				core.KernelDiagonal: {s.BatchesDiagonal, s.CellsDiagonal},
				core.KernelStriped:  {s.BatchesStriped, s.CellsStriped},
				core.KernelLazyF:    {s.BatchesLazyF, s.CellsLazyF},
			}
			got := byFamily[c.want]
			if got[0] == 0 || got[1] == 0 {
				t.Fatalf("family %v counters empty: batches=%d cells=%d (%+v)", c.want, got[0], got[1], s)
			}
			if s.BatchesDiagonal+s.BatchesStriped+s.BatchesLazyF != s.Batches8+s.Batches16 {
				t.Fatalf("kernel batch counters %d+%d+%d disagree with stage batches %d+%d",
					s.BatchesDiagonal, s.BatchesStriped, s.BatchesLazyF, s.Batches8, s.Batches16)
			}
		})
	}
}

// TestInstrumentedSearchStaysDiagonal guards the figure apparatus: an
// instrumented Auto search must run (and tally) the modeled diagonal
// kernels even when the query shape would otherwise plan striped.
func TestInstrumentedSearchStaysDiagonal(t *testing.T) {
	g := seqio.NewGenerator(405)
	db := g.Database(12)
	query := g.Protein("q", plannerStripedMinQuery+40).Encode(protAlpha)
	res, err := Search(query, db, b62, Options{
		Gaps: aln.Gaps{Open: 20, Extend: 1}, Threads: 1, Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != core.KernelDiagonal {
		t.Fatalf("instrumented search planned %v, want diagonal", res.Kernel)
	}
	if res.Tally == nil || res.Tally.Total() == 0 {
		t.Fatal("instrumented search produced no operation tally")
	}
	if res.Stats.BatchesStriped != 0 || res.Stats.BatchesLazyF != 0 {
		t.Fatalf("instrumented search ran striped batches: %+v", res.Stats)
	}
}

// TestMultiSearchPlansFromShortestQuery pins the multi-query rule: one
// short query in the set keeps the whole search on the diagonal
// family, while an all-long set goes striped.
func TestMultiSearchPlansFromShortestQuery(t *testing.T) {
	g := seqio.NewGenerator(406)
	db := g.Database(20)
	gaps := aln.Gaps{Open: 20, Extend: 1}
	long1 := g.Protein("l1", plannerStripedMinQuery+10).Encode(protAlpha)
	long2 := g.Protein("l2", plannerStripedMinQuery+90).Encode(protAlpha)
	short := g.Protein("s", 50).Encode(protAlpha)

	check := func(queries [][]uint8, wantStriped bool) {
		t.Helper()
		res, err := MultiSearch(queries, db, b62, Options{Gaps: gaps, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		stripedBatches := res.Stats.BatchesStriped + res.Stats.BatchesLazyF
		if wantStriped && (stripedBatches == 0 || res.Stats.BatchesDiagonal != 0) {
			t.Fatalf("want striped plan, got counters %+v", res.Stats)
		}
		if !wantStriped && stripedBatches != 0 {
			t.Fatalf("want diagonal plan, got counters %+v", res.Stats)
		}
		for qi, q := range queries {
			for si := range db {
				want := baselines.ScalarAffine(q, db[si].Encode(protAlpha), b62, gaps).Score
				if res.Scores[qi][si] != want {
					t.Fatalf("q%d seq %d: score %d, want %d", qi, si, res.Scores[qi][si], want)
				}
			}
		}
	}
	check([][]uint8{long1, long2}, true)
	check([][]uint8{long1, short, long2}, false)
}

// TestBatchPadRatio pins the padding estimator against hand-computed
// groupings, including the sorted-vs-stream-order distinction.
func TestBatchPadRatio(t *testing.T) {
	g := seqio.NewGenerator(408)
	mk := func(lens ...int) []seqio.Sequence {
		db := make([]seqio.Sequence, len(lens))
		for i, n := range lens {
			db[i] = g.Protein(fmt.Sprintf("p%d", i), n)
		}
		return db
	}
	if got := batchPadRatio(nil, 4, true); got != 1 {
		t.Fatalf("empty db ratio = %v, want 1", got)
	}
	if got := batchPadRatio(mk(5, 5, 5, 5), 4, false); got != 1 {
		t.Fatalf("uniform full batch ratio = %v, want 1", got)
	}
	// Stream order (10,90),(10,90) pads each batch to 90; sorting
	// groups (10,10),(90,90) and packs perfectly.
	mixed := mk(10, 90, 10, 90)
	if got := batchPadRatio(mixed, 2, false); got != 1.8 {
		t.Fatalf("unsorted ratio = %v, want 1.8", got)
	}
	if got := batchPadRatio(mixed, 2, true); got != 1 {
		t.Fatalf("sorted ratio = %v, want 1", got)
	}
	// A final partial batch still runs every lane of the stride.
	if got := batchPadRatio(mk(10), 2, false); got != 2 {
		t.Fatalf("partial batch ratio = %v, want 2", got)
	}
}

// TestPackedDatabaseStaysDiagonal pins the padding rule end to end: a
// uniform-length database fills its batches, so even a long query
// stays on the interleaved diagonal engine.
func TestPackedDatabaseStaysDiagonal(t *testing.T) {
	g := seqio.NewGenerator(407)
	db := make([]seqio.Sequence, 128)
	for i := range db {
		db[i] = g.Protein(fmt.Sprintf("u%03d", i), 300)
	}
	query := g.Protein("q", plannerStripedMinQuery+200).Encode(protAlpha)
	gaps := aln.Gaps{Open: 20, Extend: 1}
	res, err := Search(query, db, b62, Options{Gaps: gaps, Threads: 2, SortByLength: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != core.KernelDiagonal {
		t.Fatalf("packed database planned %v, want diagonal", res.Kernel)
	}
	if res.Stats.BatchesStriped+res.Stats.BatchesLazyF != 0 {
		t.Fatalf("packed database ran striped batches: %+v", res.Stats)
	}
	for i := 0; i < len(db); i += 17 {
		want := baselines.ScalarAffine(query, db[i].Encode(protAlpha), b62, gaps).Score
		if res.Hits[i].Score != want {
			t.Fatalf("seq %d: score %d, want %d", i, res.Hits[i].Score, want)
		}
	}
}
