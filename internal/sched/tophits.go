package sched

import "sort"

// TopHits returns the n best hits, ranked by score with ties broken by
// database order (lower SeqIndex first), matching a stable
// score-descending sort of Hits.
func (r *Result) TopHits(n int) []Hit {
	return TopK(r.Hits, n)
}

// TopK selects the n best of hits under the search ranking contract:
// score descending, ties broken by database order (lower SeqIndex
// first). It selects with a bounded min-heap in O(len(hits)·log n) and
// copies only the selected hits, instead of copying and fully sorting
// the hit list. n larger than the hit count is clamped; n <= 0 yields
// an empty slice.
//
// TopK is the single definition of the ranking: Result.TopHits uses it
// for single-node searches and the cluster merge (internal/cluster)
// uses it over per-shard top-K lists, which is what makes a sharded
// scatter-gather bit-identical — order and tie-breaks included — to a
// single-node search over the whole database.
func TopK(hits []Hit, n int) []Hit {
	if n > len(hits) {
		n = len(hits)
	}
	if n <= 0 {
		return []Hit{}
	}
	// worse reports whether a ranks strictly below b. SeqIndex values
	// are unique, so this is a strict total order.
	worse := func(a, b Hit) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.SeqIndex > b.SeqIndex
	}
	// Min-heap of the best n seen so far, worst at the root.
	heap := make([]Hit, 0, n)
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(heap[i], heap[parent]) {
				return
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			l, rt, worst := 2*i+1, 2*i+2, i
			if l < len(heap) && worse(heap[l], heap[worst]) {
				worst = l
			}
			if rt < len(heap) && worse(heap[rt], heap[worst]) {
				worst = rt
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for _, h := range hits {
		if len(heap) < n {
			heap = append(heap, h)
			siftUp(len(heap) - 1)
			continue
		}
		if worse(heap[0], h) {
			heap[0] = h
			siftDown(0)
		}
	}
	sort.Slice(heap, func(a, b int) bool { return worse(heap[b], heap[a]) })
	return heap
}
