package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/failpoint"
	"swvec/internal/metrics"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// MultiResult is the outcome of a batched multi-query search
// (Scenario 2).
type MultiResult struct {
	// Scores[qi][si] is the score of query qi against sequence si.
	Scores [][]int32
	// Cells counts real DP cells across all query/sequence pairs,
	// including the 16-bit rescue passes.
	Cells   int64
	Elapsed time.Duration
	Rescued int
	// Stats is the per-stage counter snapshot for this search, taken
	// after the worker pool has drained.
	Stats metrics.Snapshot
	Tally *vek.Tally
	// Quarantined lists database sequences a stage failed on after
	// retries, sorted by SeqIndex; their Scores entries are zero (whole
	// batch failed) or the capped 8-bit score (a rescue failed). A
	// sequence may appear once per failed stage attempt.
	Quarantined []Quarantine
}

// GCUPS returns the measured throughput.
func (r *MultiResult) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// MultiSearch aligns every query against every database sequence
// (Scenario 2: the centralized server accumulating queries before
// computing). The work unit is a (query, batch) pair, so a batch's
// transposed layout and score scratch are reused across queries — the
// data-reuse advantage the paper credits for the scenario's
// efficiency. Each (query, sequence) cell of the score matrix belongs
// to exactly one batch, so workers write scores without a lock; only
// error capture and tally merging synchronize.
func MultiSearch(queries [][]uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*MultiResult, error) {
	return MultiSearchContext(context.Background(), queries, db, mat, opt)
}

// MultiSearchContext is MultiSearch with cancellation: when ctx is
// canceled or its deadline passes, workers drain the remaining batches
// without aligning them and the call returns the partial MultiResult
// (unprocessed scores are zero) together with an error wrapping
// ctx.Err(). The centralized server uses it to bound per-batch compute
// with a request deadline.
func MultiSearchContext(ctx context.Context, queries [][]uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*MultiResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sched: no queries")
	}
	for i, q := range queries {
		if len(q) == 0 {
			return nil, fmt.Errorf("sched: query %d is empty", i)
		}
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("sched: empty database")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	alpha := mat.Alphabet()
	batches := seqio.BuildBatches(db, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength})
	tables := submat.NewCodeTables(mat)

	// One AlignBatch8Multi call serves every query, so the whole search
	// runs one kernel family. Plan from the shortest query: striped only
	// pays off when every query in the set clears the length threshold.
	minQ := len(queries[0])
	for _, q := range queries[1:] {
		if len(q) < minQ {
			minQ = len(q)
		}
	}
	kern := opt.kernel(minQ, mat, opt.backend(), builtPadRatio(batches))

	res := &MultiResult{Scores: make([][]int32, len(queries))}
	for qi := range res.Scores {
		res.Scores[qi] = make([]int32, len(db))
	}

	// The work unit is a whole batch: every query runs against it in
	// one AlignBatch8Multi call, so the transposed layout and the
	// per-code score scratch are computed once per batch and reused
	// across all queries — the accumulation benefit §IV-G measures.
	nw := opt.threads()
	if nw > len(batches) {
		nw = len(batches)
	}
	if nw < 1 {
		nw = 1
	}
	// The internal context lets a worker crash cancel the batch feed so
	// the send loop below cannot block on dead consumers; the outer ctx
	// still decides whether the run reports as interrupted.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan *seqio.Batch, nw)
	var mu sync.Mutex
	var firstErr error
	met := &metrics.Counters{}
	met.BatchesProduced.Add(int64(len(batches)))
	merged := &vek.Tally{}
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer scenarioGuard(cancel, &mu, &firstErr)
			mch := vek.Bare
			var tal *vek.Tally
			if opt.Instrument {
				mch, tal = vek.NewMachine()
			}
			scratch := core.NewScratch()
			var enc []uint8
			for batch := range work {
				// Cancellation point: drain remaining batches without
				// aligning so close(work) still unblocks the sender.
				if ictx.Err() != nil {
					continue
				}
				t8 := time.Now()
				brs, err := multiAlign8(ictx, mch, queries, tables, batch, &opt, kern, scratch, met)
				if err != nil {
					// Quarantine just this batch's sequences (for every
					// query); the rest of the matrix still fills in.
					for lane := 0; lane < batch.Count; lane++ {
						quarantineMultiSeq(res, &mu, met, db, "multi8", batch.Index[lane], err)
					}
					continue
				}
				met.Batches8.Add(1)
				tallyKernel(met, kern, 1, 0)
				met.Stage8Nanos.Add(int64(time.Since(t8)))
				for qi := range queries {
					met.Cells8.Add(batch.Cells(len(queries[qi])))
					tallyKernel(met, kern, 0, batch.Cells(len(queries[qi])))
					for lane := 0; lane < batch.Count; lane++ {
						si := batch.Index[lane]
						score := brs[qi].Scores[lane]
						if brs[qi].Saturated[lane] && ictx.Err() == nil {
							t16 := time.Now()
							enc = alpha.EncodeTo(enc, db[si].Residues)
							pr, err := multiRescue16(mch, queries[qi], enc, mat, &opt, kern, scratch, met)
							if err == nil {
								score = pr.Score
								met.Saturated8.Add(1)
								met.Cells16.Add(int64(len(queries[qi])) * int64(len(enc)))
								tallyKernel(met, kern, 0, int64(len(queries[qi]))*int64(len(enc)))
							} else {
								// The capped 8-bit score stands in; flag
								// it as untrustworthy.
								quarantineMultiSeq(res, &mu, met, db, "multi16", si, err)
							}
							met.Stage16Nanos.Add(int64(time.Since(t16)))
						}
						res.Scores[qi][si] = score
					}
				}
			}
			if tal != nil {
				mu.Lock()
				merged.Merge(tal)
				mu.Unlock()
			}
			met.ProfileCacheHits.Add(scratch.TakeProfileCacheHits())
		}()
	}
	for _, b := range batches {
		select {
		case work <- b:
		case <-ictx.Done():
		}
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	sort.Slice(res.Quarantined, func(i, j int) bool {
		return res.Quarantined[i].SeqIndex < res.Quarantined[j].SeqIndex
	})

	met.Searches.Add(1)
	cancelErr := ctx.Err()
	if cancelErr != nil {
		met.Canceled.Add(1)
	}
	snap := met.Snapshot()
	res.Stats = snap
	res.Cells = snap.Cells()
	res.Rescued = int(snap.Saturated8)
	if opt.Instrument {
		res.Tally = merged
	}
	metrics.Global.Add(snap)
	if firstErr != nil {
		return nil, firstErr
	}
	if cancelErr != nil {
		return res, fmt.Errorf("sched: multi-search interrupted after %d/%d batches: %w",
			snap.Batches8, len(batches), cancelErr)
	}
	return res, nil
}

// scenarioGuard is the last-resort recovery for scenario workers: a
// panic that reaches it escaped the per-batch recovery, which means a
// scheduler bug rather than a kernel fault. The crash is recorded as
// the run's error and the feed is canceled so the batch sender cannot
// block on dead consumers. Installed directly with defer so recover
// sees the panic.
func scenarioGuard(cancel context.CancelFunc, mu *sync.Mutex, firstErr *error) {
	r := recover()
	if r == nil {
		return
	}
	mu.Lock()
	if *firstErr == nil {
		*firstErr = &panicError{stage: "worker", val: r}
	}
	mu.Unlock()
	cancel()
}

// quarantineMultiSeq records one sequence a multi-search stage failed
// on; the rest of the score matrix still fills in.
func quarantineMultiSeq(res *MultiResult, mu *sync.Mutex, met *metrics.Counters, db []seqio.Sequence, stage string, si int, cause error) {
	met.Quarantined.Add(1)
	mu.Lock()
	res.Quarantined = append(res.Quarantined, Quarantine{
		SeqIndex: si,
		ID:       db[si].ID,
		Stage:    stage,
		Cause:    cause.Error(),
	})
	mu.Unlock()
}

// multiAlign8 runs one 8-bit multi-query batch with the stage retry
// policy (see align8): panics surface as errors through the per-attempt
// recovery, transient errors back off and retry, and the surviving
// error quarantines the batch.
func multiAlign8(ctx context.Context, mch vek.Machine, queries [][]uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *Options, kern core.Kernel, scratch *core.Scratch, met *metrics.Counters) ([]core.BatchResult, error) {
	brs, err := tryMultiAlign8(mch, queries, tables, batch, opt, kern, scratch, met)
	for attempt := 0; err != nil && transient(err) && attempt < maxStageRetries; attempt++ {
		if !backoffCtx(ctx, attempt) {
			break
		}
		met.Retries.Add(1)
		brs, err = tryMultiAlign8(mch, queries, tables, batch, opt, kern, scratch, met)
	}
	return brs, err
}

// tryMultiAlign8 is one guarded multi-query attempt.
func tryMultiAlign8(mch vek.Machine, queries [][]uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *Options, kern core.Kernel, scratch *core.Scratch, met *metrics.Counters) (brs []core.BatchResult, err error) {
	defer recoverAttempt("multi8", met, &err)
	if err = failpoint.Inject("sched/multi8"); err != nil {
		return nil, err
	}
	return core.AlignBatch8Multi(mch, queries, tables, batch,
		core.BatchOptions{Gaps: opt.Gaps, BlockCols: opt.BlockCols, Scratch: scratch, Backend: opt.backend(), Kernel: kern})
}

// multiRescue16 is one guarded 16-bit rescue of a saturated
// (query, sequence) pair in the multi-query scenario.
func multiRescue16(mch vek.Machine, q, enc []uint8, mat *submat.Matrix, opt *Options, kern core.Kernel, scratch *core.Scratch, met *metrics.Counters) (pr aln.ScoreResult, err error) {
	defer recoverAttempt("multi16", met, &err)
	pr, _, err = core.AlignPair16(mch, q, enc, mat,
		core.PairOptions{Gaps: opt.Gaps, Scratch: scratch, Backend: opt.backend(), Kernel: kern})
	return pr, err
}

// alignPairJob runs one subroutine pair with panic recovery so a
// kernel fault poisons only that pair, not the worker. The kernel
// family is planned per query (the subroutine scenario mixes query
// lengths freely). A lone pair has no batch padding to reclaim, so
// the planner's padRatio is 1 and auto resolves to diagonal; an
// explicit Options.Kernel still wins. Traceback passes additionally
// force the diagonal family inside the pair kernels, which only
// honor striped on score-only calls.
func alignPairJob(mch vek.Machine, q, d []uint8, mat *submat.Matrix, qi, si int, traceback bool, opt *Options, scratch *core.Scratch) (hit PairHit, err error) {
	defer recoverAttempt("subroutine", nil, &err)
	kern := opt.kernel(len(q), mat, opt.backend(), 1)
	r, tb, aerr := core.AlignPairAdaptive(mch, q, d, mat,
		core.PairOptions{Gaps: opt.Gaps, Traceback: traceback, Scratch: scratch, Backend: opt.backend(), Kernel: kern})
	if aerr != nil {
		return hit, aerr
	}
	hit = PairHit{Query: qi, Seq: si, Score: r.Score}
	if tb != nil {
		a, werr := tb.Walk(r.EndQ, r.EndD, r.Score)
		if werr != nil {
			return hit, werr
		}
		hit.Alignment = a
	}
	return hit, nil
}

// PairHit is one (query, database) alignment of the subroutine
// scenario.
type PairHit struct {
	Query, Seq int
	Score      int32
	// Alignment is present when Options requested traceback.
	Alignment *aln.Alignment
}

// SubroutineResult is the outcome of a small-set search (Scenario 3).
type SubroutineResult struct {
	Hits    []PairHit
	Cells   int64
	Elapsed time.Duration
	Tally   *vek.Tally
}

// GCUPS returns the measured throughput.
func (r *SubroutineResult) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// Subroutine aligns small query and database sets pairwise (Scenario
// 3: SW as a library subroutine, SSW style): every pair runs the
// adaptive 8/16-bit pair kernel, optionally with traceback, across the
// worker pool. The working set fits in the highest cache level and is
// reused heavily.
func Subroutine(queries [][]uint8, db []seqio.Sequence, mat *submat.Matrix, traceback bool, opt Options) (*SubroutineResult, error) {
	if len(queries) == 0 || len(db) == 0 {
		return nil, fmt.Errorf("sched: empty input")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	alpha := mat.Alphabet()
	encoded := make([][]uint8, len(db))
	for i := range db {
		encoded[i] = db[i].Encode(alpha)
		if len(encoded[i]) == 0 {
			return nil, fmt.Errorf("sched: database sequence %d is empty", i)
		}
	}

	res := &SubroutineResult{Hits: make([]PairHit, 0, len(queries)*len(db))}
	for _, q := range queries {
		for i := range encoded {
			res.Cells += int64(len(q)) * int64(len(encoded[i]))
			_ = i
		}
	}

	type job struct{ qi, si int }
	nw := opt.threads()
	if nw > len(queries)*len(db) {
		nw = len(queries) * len(db)
	}
	if nw < 1 {
		nw = 1
	}
	// As in MultiSearchContext, a crashed worker cancels the feed so
	// the send loop cannot block on dead consumers.
	ictx, cancel := context.WithCancel(context.Background())
	defer cancel()

	work := make(chan job, nw)
	hits := make([]PairHit, len(queries)*len(db))
	var mu sync.Mutex
	var firstErr error
	merged := &vek.Tally{}
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer scenarioGuard(cancel, &mu, &firstErr)
			mch := vek.Bare
			var tal *vek.Tally
			if opt.Instrument {
				mch, tal = vek.NewMachine()
			}
			scratch := core.NewScratch()
			for jb := range work {
				if ictx.Err() != nil {
					continue
				}
				hit, err := alignPairJob(mch, queries[jb.qi], encoded[jb.si], mat, jb.qi, jb.si, traceback, &opt, scratch)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				hits[jb.qi*len(encoded)+jb.si] = hit
			}
			if tal != nil {
				mu.Lock()
				merged.Merge(tal)
				mu.Unlock()
			}
			metrics.Global.ProfileCacheHits.Add(scratch.TakeProfileCacheHits())
		}()
	}
	for qi := range queries {
		for si := range encoded {
			select {
			case work <- job{qi: qi, si: si}:
			case <-ictx.Done():
			}
		}
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Hits = hits
	if opt.Instrument {
		res.Tally = merged
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
