package sched

import (
	"fmt"
	"sync"
	"time"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// MultiResult is the outcome of a batched multi-query search
// (Scenario 2).
type MultiResult struct {
	// Scores[qi][si] is the score of query qi against sequence si.
	Scores [][]int32
	// Cells counts real DP cells across all query/sequence pairs.
	Cells   int64
	Elapsed time.Duration
	Rescued int
	Tally   *vek.Tally
}

// GCUPS returns the measured throughput.
func (r *MultiResult) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// MultiSearch aligns every query against every database sequence
// (Scenario 2: the centralized server accumulating queries before
// computing). The work unit is a (query, batch) pair, so a batch's
// transposed layout and score scratch are reused across queries — the
// data-reuse advantage the paper credits for the scenario's
// efficiency. Each (query, sequence) cell of the score matrix belongs
// to exactly one batch, so workers write scores without a lock; only
// error capture and tally merging synchronize.
func MultiSearch(queries [][]uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*MultiResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sched: no queries")
	}
	for i, q := range queries {
		if len(q) == 0 {
			return nil, fmt.Errorf("sched: query %d is empty", i)
		}
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("sched: empty database")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	alpha := mat.Alphabet()
	batches := seqio.BuildBatches(db, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength})
	tables := submat.NewCodeTables(mat)

	res := &MultiResult{Scores: make([][]int32, len(queries))}
	for qi := range res.Scores {
		res.Scores[qi] = make([]int32, len(db))
		res.Cells += seqio.BatchedCells(batches, len(queries[qi]))
	}

	// The work unit is a whole batch: every query runs against it in
	// one AlignBatch8Multi call, so the transposed layout and the
	// per-code score scratch are computed once per batch and reused
	// across all queries — the accumulation benefit §IV-G measures.
	nw := opt.threads()
	if nw > len(batches) {
		nw = len(batches)
	}
	if nw < 1 {
		nw = 1
	}
	work := make(chan *seqio.Batch, nw)
	var mu sync.Mutex
	var firstErr error
	var rescued int
	merged := &vek.Tally{}
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mch := vek.Bare
			var tal *vek.Tally
			if opt.Instrument {
				mch, tal = vek.NewMachine()
			}
			scratch := core.NewScratch()
			var enc []uint8
			localRescued := 0
			for batch := range work {
				brs, err := core.AlignBatch8Multi(mch, queries, tables, batch,
					core.BatchOptions{Gaps: opt.Gaps, BlockCols: opt.BlockCols, Scratch: scratch})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				for qi := range queries {
					for lane := 0; lane < batch.Count; lane++ {
						si := batch.Index[lane]
						score := brs[qi].Scores[lane]
						if brs[qi].Saturated[lane] {
							enc = alpha.EncodeTo(enc, db[si].Residues)
							pr, _, err := core.AlignPair16(mch, queries[qi], enc, mat, core.PairOptions{Gaps: opt.Gaps})
							if err == nil {
								score = pr.Score
								localRescued++
							}
						}
						res.Scores[qi][si] = score
					}
				}
			}
			mu.Lock()
			rescued += localRescued
			if tal != nil {
				merged.Merge(tal)
			}
			mu.Unlock()
		}()
	}
	for _, b := range batches {
		work <- b
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Rescued = rescued
	if opt.Instrument {
		res.Tally = merged
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// PairHit is one (query, database) alignment of the subroutine
// scenario.
type PairHit struct {
	Query, Seq int
	Score      int32
	// Alignment is present when Options requested traceback.
	Alignment *aln.Alignment
}

// SubroutineResult is the outcome of a small-set search (Scenario 3).
type SubroutineResult struct {
	Hits    []PairHit
	Cells   int64
	Elapsed time.Duration
	Tally   *vek.Tally
}

// GCUPS returns the measured throughput.
func (r *SubroutineResult) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// Subroutine aligns small query and database sets pairwise (Scenario
// 3: SW as a library subroutine, SSW style): every pair runs the
// adaptive 8/16-bit pair kernel, optionally with traceback, across the
// worker pool. The working set fits in the highest cache level and is
// reused heavily.
func Subroutine(queries [][]uint8, db []seqio.Sequence, mat *submat.Matrix, traceback bool, opt Options) (*SubroutineResult, error) {
	if len(queries) == 0 || len(db) == 0 {
		return nil, fmt.Errorf("sched: empty input")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	alpha := mat.Alphabet()
	encoded := make([][]uint8, len(db))
	for i := range db {
		encoded[i] = db[i].Encode(alpha)
		if len(encoded[i]) == 0 {
			return nil, fmt.Errorf("sched: database sequence %d is empty", i)
		}
	}

	res := &SubroutineResult{Hits: make([]PairHit, 0, len(queries)*len(db))}
	for _, q := range queries {
		for i := range encoded {
			res.Cells += int64(len(q)) * int64(len(encoded[i]))
			_ = i
		}
	}

	type job struct{ qi, si int }
	nw := opt.threads()
	if nw > len(queries)*len(db) {
		nw = len(queries) * len(db)
	}
	if nw < 1 {
		nw = 1
	}
	work := make(chan job, nw)
	hits := make([]PairHit, len(queries)*len(db))
	var mu sync.Mutex
	var firstErr error
	merged := &vek.Tally{}
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mch := vek.Bare
			var tal *vek.Tally
			if opt.Instrument {
				mch, tal = vek.NewMachine()
			}
			for jb := range work {
				q := queries[jb.qi]
				d := encoded[jb.si]
				popt := core.PairOptions{Gaps: opt.Gaps, Traceback: traceback}
				r, tb, err := core.AlignPairAdaptive(mch, q, d, mat, popt)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				hit := PairHit{Query: jb.qi, Seq: jb.si, Score: r.Score}
				if tb != nil {
					a, err := tb.Walk(r.EndQ, r.EndD, r.Score)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					hit.Alignment = a
				}
				hits[jb.qi*len(encoded)+jb.si] = hit
			}
			if tal != nil {
				mu.Lock()
				merged.Merge(tal)
				mu.Unlock()
			}
		}()
	}
	for qi := range queries {
		for si := range encoded {
			work <- job{qi: qi, si: si}
		}
	}
	close(work)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Hits = hits
	if opt.Instrument {
		res.Tally = merged
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
