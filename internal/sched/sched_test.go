package sched

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
)

var (
	b62       = submat.Blosum62()
	protAlpha = b62.Alphabet()
)

func TestSearchMatchesScalarScores(t *testing.T) {
	g := seqio.NewGenerator(101)
	db := g.Database(80)
	query := g.Protein("q", 150).Encode(protAlpha)
	res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != len(db) {
		t.Fatalf("hits = %d, want %d", len(res.Hits), len(db))
	}
	for i, h := range res.Hits {
		if h.SeqIndex != i {
			t.Fatalf("hit %d has index %d", i, h.SeqIndex)
		}
		want := baselines.ScalarAffine(query, db[i].Encode(protAlpha), b62, aln.DefaultGaps()).Score
		if h.Score != want {
			t.Fatalf("seq %d: score %d, want %d (rescued=%v)", i, h.Score, want, h.Rescued)
		}
	}
	if res.Cells <= 0 || res.Elapsed <= 0 {
		t.Error("missing cells/elapsed accounting")
	}
}

func TestSearchRescuesSaturatedLanes(t *testing.T) {
	g := seqio.NewGenerator(102)
	db := g.Database(40)
	query := g.Protein("q", 600)
	db = append(db, g.Related(query, "homolog", 0.03, 0.01))
	qEnc := query.Encode(protAlpha)
	res, err := Search(qEnc, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescued == 0 {
		t.Fatal("expected at least one 16-bit rescue")
	}
	want := baselines.ScalarAffine(qEnc, db[len(db)-1].Encode(protAlpha), b62, aln.DefaultGaps()).Score
	got := res.Hits[len(db)-1]
	if !got.Rescued || got.Score != want {
		t.Fatalf("homolog: score %d (rescued %v), want %d rescued", got.Score, got.Rescued, want)
	}
	top := res.TopHits(1)
	if top[0].SeqIndex != len(db)-1 {
		t.Errorf("top hit should be the homolog, got seq %d", top[0].SeqIndex)
	}
}

func TestSearchThreadCountInvariance(t *testing.T) {
	g := seqio.NewGenerator(103)
	db := g.Database(64)
	query := g.Protein("q", 100).Encode(protAlpha)
	ref, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 4, 8} {
		res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Hits {
			if res.Hits[i].Score != ref.Hits[i].Score {
				t.Fatalf("threads=%d: seq %d score %d != %d", threads, i, res.Hits[i].Score, ref.Hits[i].Score)
			}
		}
	}
}

func TestSearchSortByLengthInvariance(t *testing.T) {
	g := seqio.NewGenerator(104)
	db := g.Database(70)
	query := g.Protein("q", 90).Encode(protAlpha)
	a, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), SortByLength: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hits {
		if a.Hits[i].Score != b.Hits[i].Score {
			t.Fatalf("seq %d: sorted batching changed score %d -> %d", i, a.Hits[i].Score, b.Hits[i].Score)
		}
	}
}

// TestSearchWidthInvariance is the width-parity acceptance check: the
// 512-bit pipeline (64-lane batches, wide rescue engines) must produce
// exactly the scores of the 256-bit pipeline, including on a workload
// that forces 16-bit rescues through the wide engines.
func TestSearchWidthInvariance(t *testing.T) {
	g := seqio.NewGenerator(113)
	db := g.Database(100)
	query := g.Protein("q", 500)
	db = append(db, g.Related(query, "homolog", 0.03, 0.01))
	qEnc := query.Encode(protAlpha)
	ref, err := Search(qEnc, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 3, Width: 256})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Search(qEnc, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 3, Width: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rescued == 0 || wide.Rescued == 0 {
		t.Fatalf("expected rescues at both widths (256: %d, 512: %d)", ref.Rescued, wide.Rescued)
	}
	for i := range ref.Hits {
		if wide.Hits[i].Score != ref.Hits[i].Score {
			t.Fatalf("seq %d: width 512 score %d != width 256 score %d", i, wide.Hits[i].Score, ref.Hits[i].Score)
		}
	}
	if wide.Cells != ref.Cells {
		t.Errorf("real-cell accounting differs across widths: %d vs %d", wide.Cells, ref.Cells)
	}
	if _, err := Search(qEnc, db, b62, Options{Gaps: aln.DefaultGaps(), Width: 300}); err == nil {
		t.Error("invalid width accepted")
	}
}

func TestSearchInstrumentation(t *testing.T) {
	g := seqio.NewGenerator(105)
	db := g.Database(32)
	query := g.Protein("q", 60).Encode(protAlpha)
	res, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 3, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally == nil || res.Tally.Total() == 0 {
		t.Fatal("instrumented search returned no tally")
	}
	plain, err := Search(query, db, b62, Options{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tally != nil {
		t.Error("uninstrumented search should not carry a tally")
	}
}

func TestSearchErrors(t *testing.T) {
	g := seqio.NewGenerator(106)
	db := g.Database(4)
	if _, err := Search(nil, db, b62, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty query accepted")
	}
	q := g.Protein("q", 10).Encode(protAlpha)
	if _, err := Search(q, nil, b62, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := Search(q, db, b62, Options{Gaps: aln.Gaps{}}); err == nil {
		t.Error("invalid gaps accepted")
	}
}

func TestMultiSearchMatchesSingleSearches(t *testing.T) {
	g := seqio.NewGenerator(107)
	db := g.Database(48)
	queries := [][]uint8{
		g.Protein("q0", 50).Encode(protAlpha),
		g.Protein("q1", 120).Encode(protAlpha),
		g.Protein("q2", 33).Encode(protAlpha),
	}
	multi, err := MultiSearch(queries, db, b62, Options{Gaps: aln.DefaultGaps(), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Scores) != len(queries) {
		t.Fatalf("scores rows = %d", len(multi.Scores))
	}
	for qi, q := range queries {
		single, err := Search(q, db, b62, Options{Gaps: aln.DefaultGaps()})
		if err != nil {
			t.Fatal(err)
		}
		for si := range db {
			if multi.Scores[qi][si] != single.Hits[si].Score {
				t.Fatalf("q%d seq%d: multi %d != single %d", qi, si, multi.Scores[qi][si], single.Hits[si].Score)
			}
		}
	}
	if multi.Cells <= 0 {
		t.Error("cells not counted")
	}
}

func TestSubroutineScoresAndTraceback(t *testing.T) {
	g := seqio.NewGenerator(108)
	db := g.Database(6)
	queries := [][]uint8{
		g.Protein("q0", 40).Encode(protAlpha),
		g.Protein("q1", 70).Encode(protAlpha),
	}
	res, err := Subroutine(queries, db, b62, true, Options{Gaps: aln.DefaultGaps(), Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != len(queries)*len(db) {
		t.Fatalf("hits = %d", len(res.Hits))
	}
	for _, h := range res.Hits {
		want := baselines.ScalarAffine(queries[h.Query], db[h.Seq].Encode(protAlpha), b62, aln.DefaultGaps()).Score
		if h.Score != want {
			t.Fatalf("pair (%d,%d): score %d, want %d", h.Query, h.Seq, h.Score, want)
		}
		if h.Alignment == nil {
			t.Fatalf("pair (%d,%d): missing alignment", h.Query, h.Seq)
		}
		if h.Score > 0 {
			got, err := aln.Rescore(h.Alignment, queries[h.Query], db[h.Seq].Encode(protAlpha),
				func(qc, dc uint8) int32 { return int32(b62.Score(qc, dc)) }, aln.DefaultGaps())
			if err != nil {
				t.Fatalf("pair (%d,%d): %v", h.Query, h.Seq, err)
			}
			if got != h.Score {
				t.Fatalf("pair (%d,%d): rescore %d != %d", h.Query, h.Seq, got, h.Score)
			}
		}
	}
}

func TestSubroutineScoreOnly(t *testing.T) {
	g := seqio.NewGenerator(109)
	db := g.Database(4)
	queries := [][]uint8{g.Protein("q", 30).Encode(protAlpha)}
	res, err := Subroutine(queries, db, b62, false, Options{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.Alignment != nil {
			t.Error("score-only subroutine returned alignments")
		}
	}
}

func TestGCUPSAccessors(t *testing.T) {
	r := &Result{Cells: 2e9}
	if r.GCUPS() != 0 {
		t.Error("zero elapsed should give 0 GCUPS")
	}
}

func TestMultiAndSubroutineGCUPSAccessors(t *testing.T) {
	g := seqio.NewGenerator(110)
	db := g.Database(8)
	queries := [][]uint8{g.Protein("q", 30).Encode(protAlpha)}
	multi, err := MultiSearch(queries, db, b62, Options{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	if multi.GCUPS() <= 0 {
		t.Error("multi GCUPS should be positive")
	}
	sub, err := Subroutine(queries, db, b62, false, Options{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	if sub.GCUPS() <= 0 {
		t.Error("subroutine GCUPS should be positive")
	}
	if (&MultiResult{Cells: 5}).GCUPS() != 0 {
		t.Error("zero elapsed multi GCUPS should be 0")
	}
	if (&SubroutineResult{Cells: 5}).GCUPS() != 0 {
		t.Error("zero elapsed subroutine GCUPS should be 0")
	}
}

func TestSubroutineErrors(t *testing.T) {
	g := seqio.NewGenerator(111)
	db := g.Database(2)
	if _, err := Subroutine(nil, db, b62, false, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("no queries accepted")
	}
	q := [][]uint8{g.Protein("q", 10).Encode(protAlpha)}
	if _, err := Subroutine(q, nil, b62, false, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty db accepted")
	}
	if _, err := Subroutine(q, db, b62, false, Options{Gaps: aln.Gaps{}}); err == nil {
		t.Error("invalid gaps accepted")
	}
	bad := []seqio.Sequence{{ID: "empty"}}
	if _, err := Subroutine(q, bad, b62, false, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty db sequence accepted")
	}
}

func TestMultiSearchErrors(t *testing.T) {
	g := seqio.NewGenerator(112)
	db := g.Database(2)
	if _, err := MultiSearch(nil, db, b62, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := MultiSearch([][]uint8{nil}, db, b62, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty query accepted")
	}
	q := [][]uint8{g.Protein("q", 10).Encode(protAlpha)}
	if _, err := MultiSearch(q, nil, b62, Options{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty db accepted")
	}
	if _, err := MultiSearch(q, db, b62, Options{Gaps: aln.Gaps{}}); err == nil {
		t.Error("invalid gaps accepted")
	}
}
