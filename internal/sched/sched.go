// Package sched runs Smith-Waterman searches across goroutine worker
// pools and implements the paper's three usage scenarios (§II-C,
// §IV-G): single query versus a streamed database, batched queries on
// a centralized server, and SW as a small-scale subroutine. Workers
// carry their own vector-machine tallies, which are merged for the
// performance model.
//
// Scenario 1 runs as a streaming pipeline: a producer transposes
// database batches on demand, one shared worker pool drains the 8-bit,
// 16-bit, and 32-bit stages concurrently, and saturated lanes are
// regrouped and rescued in flight instead of behind global barriers.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/metrics"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Options configures a database search.
type Options struct {
	// Gaps is the gap model (affine by default).
	Gaps aln.Gaps
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// BlockCols is passed to the batch engine (0 = unblocked).
	BlockCols int
	// SortByLength batches similar-length sequences together.
	SortByLength bool
	// Instrument merges per-worker operation tallies into the result
	// for the performance model. Slightly slows the real kernels.
	Instrument bool
	// PipelineDepth is the number of batches buffered between the
	// streaming producer and the worker pool (0 = twice the worker
	// count). Deeper queues smooth uneven batch costs at the price of
	// more transposed batches in flight.
	PipelineDepth int
	// Width is the vector register width of the batch engines in bits:
	// 256 (32-lane batches), 512 (64-lane batches), or 0 to resolve
	// from the native architecture model (512 when
	// isa.Native().HasAVX512, else 256). Every stage of the pipeline —
	// 8-bit stream, 16-bit rescue — runs at the resolved width.
	Width int
}

// width resolves Options.Width to a concrete register width.
func (o *Options) width() (int, error) {
	switch o.Width {
	case 0:
		if isa.Native().HasAVX512 {
			return 512, nil
		}
		return 256, nil
	case 256, 512:
		return o.Width, nil
	}
	return 0, fmt.Errorf("sched: unsupported vector width %d (want 0, 256, or 512)", o.Width)
}

func (o *Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) depth(nw int) int {
	if o.PipelineDepth > 0 {
		return o.PipelineDepth
	}
	return 2 * nw
}

// Hit is one database sequence's result.
type Hit struct {
	// SeqIndex is the sequence's position in the database slice.
	SeqIndex int
	Score    int32
	// Rescued marks scores recovered by the 16-bit kernel after 8-bit
	// saturation.
	Rescued bool
}

// Result is the outcome of a search.
type Result struct {
	// Hits holds one entry per database sequence, in database order.
	Hits []Hit
	// Cells is the number of real DP cells across every stage the
	// pipeline ran — 8-bit, 16-bit rescue, and 32-bit escalation —
	// with padding excluded, so GCUPS reflects the actual work.
	Cells int64
	// Elapsed is the wall-clock alignment time (batch preprocessing
	// streams inside the pipeline; the eager offline variant the paper
	// measures separately is BuildBatches).
	Elapsed time.Duration
	// Rescued counts 8-bit saturations escalated to 16 bits.
	Rescued int
	// Stats is the per-stage counter snapshot for this search: batches
	// produced and aligned, cells by width, saturations, the work-queue
	// high-water mark, and per-stage wall times. It is taken after the
	// worker pool has fully drained, so it is internally consistent
	// even when the search was canceled mid-stream.
	Stats metrics.Snapshot
	// Tally is the merged operation tally when Options.Instrument is
	// set, else nil.
	Tally *vek.Tally
}

// GCUPS returns the measured wall-clock throughput in giga cell
// updates per second.
func (r *Result) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// Search aligns one query against every database sequence (Scenario 1)
// with the staged variable-bitwidth pipeline, restructured as a single
// streaming dataflow:
//
//	producer ──work8──▶ ┌─────────────┐ ──▶ Hits (direct writes)
//	                    │             │
//	     sat8 ◀─────────│ worker pool │
//	      │             │  (shared by │
//	grouper ──work16──▶ │ all stages) │ ──▶ Hits
//	     sat16 ◀────────│             │
//	      │             │             │
//	dispatch ──work32─▶ └─────────────┘ ──▶ Hits
//
// The producer transposes batches on demand at the resolved vector
// width — 32 lanes for 256-bit, 64 for 512-bit (a large database
// never materializes all batches at once) and recycles batch buffers
// returned by the workers. Sequences whose 8-bit scores saturate are
// regrouped into fresh 16-bit batches and rescored by the same worker
// pool while the 8-bit stage is still streaming; anything beyond int16
// finishes on the 32-bit pair kernel, also on the pool. Every database
// index is written by exactly one lane per stage and each cross-stage
// handoff flows through a channel, so Hits needs no lock: the channel
// edges order the 8-bit write of an index before its rescue rewrite.
func Search(query []uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*Result, error) {
	return SearchContext(context.Background(), query, db, mat, opt)
}

// SearchContext is Search with cancellation: when ctx is canceled or
// its deadline passes, the batch producer stops, in-flight batches
// drain without aligning, and the call returns the partial Result
// together with an error wrapping ctx.Err(). In the partial Result,
// hits whose stage completed before the cancel hold real scores;
// sequences the 8-bit stream never reached are zero, and saturated
// lanes whose rescue was cut short keep the capped 8-bit score with
// Rescued left false. Result.Stats is always a consistent snapshot of
// how far each stage got. No goroutines outlive the call.
func SearchContext(ctx context.Context, query []uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*Result, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("sched: empty query")
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("sched: empty database")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	width, err := opt.width()
	if err != nil {
		return nil, err
	}
	lanes := width / 8

	res := &Result{Hits: make([]Hit, len(db))}
	for i := range res.Hits {
		res.Hits[i].SeqIndex = i
	}

	nbatches := (len(db) + lanes - 1) / lanes
	nw := opt.threads()
	if nw > nbatches {
		nw = nbatches
	}
	if nw < 1 {
		nw = 1
	}
	depth := opt.depth(nw)

	alpha := mat.Alphabet()
	p := &pipeline{
		ctx:    ctx,
		query:  query,
		db:     db,
		alpha:  alpha,
		mat:    mat,
		tables: submat.NewCodeTables(mat),
		opt:    &opt,
		res:    res,
		lanes:  lanes,
		stream: seqio.NewBatchStream(db, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength, Lanes: lanes}),
		work8:  make(chan *seqio.Batch, depth),
		sat8:   make(chan int, depth),
		work16: make(chan *seqio.Batch, depth),
		sat16:  make(chan int, depth),
		work32: make(chan int, depth),
		met:    &metrics.Counters{},
		tally:  &vek.Tally{},
	}

	start := time.Now()
	p.cwg.Add(3)
	go p.produce()
	go p.groupRescues()
	go p.dispatch32()
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()
	p.cwg.Wait()
	res.Elapsed = time.Since(start)

	// All writers have quiesced: snapshot once, derive the aggregate
	// fields from it so Result and Result.Stats can never disagree,
	// and fold the search into the process-wide totals.
	p.met.Searches.Add(1)
	cancelErr := ctx.Err()
	if cancelErr != nil {
		p.met.Canceled.Add(1)
	}
	snap := p.met.Snapshot()
	res.Stats = snap
	res.Cells = snap.Cells()
	res.Rescued = int(snap.Saturated8)
	if opt.Instrument {
		res.Tally = p.tally
	}
	metrics.Global.Add(snap)
	if p.err != nil {
		return nil, p.err
	}
	if cancelErr != nil {
		return res, fmt.Errorf("sched: search interrupted after %d/%d batches: %w",
			snap.Batches8, (len(db)+lanes-1)/lanes, cancelErr)
	}
	return res, nil
}

// pipeline carries the streaming search dataflow state. The three
// coordinator goroutines (produce, groupRescues, dispatch32) feed one
// shared worker pool; see Search for the shape.
type pipeline struct {
	// ctx cancels the dataflow: the producer stops emitting, and the
	// stage runners short-circuit into drain mode, so every channel
	// still closes in the usual order and no goroutine leaks.
	ctx    context.Context
	query  []uint8
	db     []seqio.Sequence
	alpha  *alphabet.Alphabet
	mat    *submat.Matrix
	tables *submat.CodeTables
	opt    *Options
	res    *Result
	lanes  int
	stream *seqio.BatchStream

	// work8/work16/work32 carry stage jobs to the pool; sat8/sat16
	// carry saturated database indices to the next stage's feeder.
	work8  chan *seqio.Batch
	sat8   chan int
	work16 chan *seqio.Batch
	sat16  chan int
	work32 chan int

	// wg8/wg16 count outstanding stage-1/stage-2 jobs so the feeders
	// know when no further saturations can arrive.
	wg8, wg16 sync.WaitGroup

	// cwg tracks the three coordinator goroutines (produce,
	// groupRescues, dispatch32) so Search provably outlives them.
	// Workers draining the closed channels already implies the
	// coordinators have finished their sends, but not that the
	// goroutines themselves have exited.
	cwg sync.WaitGroup

	// met tallies the per-stage counters (one atomic add per batch);
	// Search snapshots it into Result.Stats after the pool drains.
	met *metrics.Counters

	mu    sync.Mutex
	err   error
	tally *vek.Tally
}

// produce streams transposed batches into the 8-bit stage, then closes
// the saturation channel once every stage-1 job has fully retired (all
// wg8.Add calls precede the close of work8, so the Wait is safe).
// Cancellation point 1: on ctx.Done the producer stops transposing —
// no further batches enter the pipeline, which bounds how much drain
// work the already-queued jobs represent.
func (p *pipeline) produce() {
	defer p.cwg.Done()
	for {
		if p.ctx.Err() != nil {
			break
		}
		t0 := time.Now()
		b := p.stream.Next()
		p.met.ProduceNanos.Add(int64(time.Since(t0)))
		if b == nil {
			break
		}
		p.wg8.Add(1)
		select {
		case p.work8 <- b:
			p.met.BatchesProduced.Add(1)
			p.met.ObserveQueueDepth(len(p.work8))
		case <-p.ctx.Done():
			p.wg8.Done()
			p.stream.Recycle(b)
		}
	}
	close(p.work8)
	p.wg8.Wait()
	close(p.sat8)
}

// groupRescues regroups saturated 8-bit lanes into fresh 16-bit
// batches in flight. It keeps finished rescue batches in a local queue
// and never blocks on work16 while sat8 is open: the worker pool both
// produces saturations and consumes rescue batches, so an unbuffered
// handoff here could deadlock the pool against itself.
func (p *pipeline) groupRescues() {
	defer p.cwg.Done()
	group := make([]int, 0, p.lanes)
	var pending []*seqio.Batch
	in := p.sat8
	for in != nil || len(pending) > 0 {
		var out chan *seqio.Batch
		var head *seqio.Batch
		if len(pending) > 0 {
			out = p.work16
			head = pending[0]
		}
		select {
		case si, ok := <-in:
			if !ok {
				in = nil
				if len(group) > 0 {
					pending = append(pending, p.rescueBatch(group))
					group = group[:0]
				}
				continue
			}
			group = append(group, si)
			if len(group) == p.lanes {
				pending = append(pending, p.rescueBatch(group))
				group = group[:0]
			}
		case out <- head:
			pending[0] = nil
			pending = pending[1:]
		}
	}
	close(p.work16)
	p.wg16.Wait()
	close(p.sat16)
}

func (p *pipeline) rescueBatch(members []int) *seqio.Batch {
	p.wg16.Add(1)
	return seqio.MakeBatch(p.db, members, p.alpha, p.lanes)
}

// dispatch32 forwards 16-bit saturations to the 32-bit stage through a
// local queue, for the same no-blocking reason as groupRescues.
func (p *pipeline) dispatch32() {
	defer p.cwg.Done()
	var pending []int
	in := p.sat16
	for in != nil || len(pending) > 0 {
		var out chan int
		var head int
		if len(pending) > 0 {
			out = p.work32
			head = pending[0]
		}
		select {
		case si, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			pending = append(pending, si)
		case out <- head:
			pending = pending[1:]
		}
	}
	close(p.work32)
}

// worker drains all three stages until every channel is closed. Each
// worker owns its vector machine, tally, scratch arena, and encode
// buffer; tallies merge once at exit. Cell counts flow through the
// per-batch atomic stage counters, so they stay consistent with
// Result.Stats even on a canceled run. After a cancel the workers keep
// receiving — the stage runners just drop into drain mode — which lets
// the producer and feeders retire their waitgroups and close every
// channel in the normal order.
func (p *pipeline) worker() {
	mch := vek.Bare
	var tal *vek.Tally
	if p.opt.Instrument {
		mch, tal = vek.NewMachine()
	}
	scratch := core.NewScratch()
	var enc []uint8
	w8, w16, w32 := p.work8, p.work16, p.work32
	for w8 != nil || w16 != nil || w32 != nil {
		select {
		case b, ok := <-w8:
			if !ok {
				w8 = nil
				continue
			}
			p.run8(mch, scratch, b)
			p.wg8.Done()
		case b, ok := <-w16:
			if !ok {
				w16 = nil
				continue
			}
			p.run16(mch, scratch, b)
			p.wg16.Done()
		case si, ok := <-w32:
			if !ok {
				w32 = nil
				continue
			}
			enc = p.run32(mch, scratch, si, enc)
		}
	}
	if tal != nil {
		p.mu.Lock()
		p.tally.Merge(tal)
		p.mu.Unlock()
	}
}

// run8 is stage 1: align the batch at 8 bits, write each lane's hit
// (each database index is owned by exactly one lane), hand saturated
// lanes to the rescue queue, and recycle the batch buffer.
// Cancellation point 2: after a cancel the batch is recycled
// unaligned, and its lanes never enter the rescue queue.
//
//sw:hotpath
func (p *pipeline) run8(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	if p.ctx.Err() != nil {
		p.stream.Recycle(b)
		return
	}
	start := time.Now()
	br, err := core.AlignBatch8(mch, p.query, p.tables, b,
		core.BatchOptions{Gaps: p.opt.Gaps, BlockCols: p.opt.BlockCols, Scratch: s})
	if err != nil {
		p.fail(err)
		p.stream.Recycle(b)
		return
	}
	p.met.Batches8.Add(1)
	p.met.Cells8.Add(b.Cells(len(p.query)))
	for lane := 0; lane < b.Count; lane++ {
		si := b.Index[lane]
		p.res.Hits[si].Score = br.Scores[lane]
		if br.Saturated[lane] {
			p.met.Saturated8.Add(1)
			p.sat8 <- si
		}
	}
	p.stream.Recycle(b)
	p.met.Stage8Nanos.Add(int64(time.Since(start)))
}

// run16 is the in-flight rescue: rescore a regrouped batch at 16 bits
// and forward anything still saturated to the 32-bit stage.
// Cancellation point 3: a canceled rescue is dropped — the affected
// hits keep their capped 8-bit score and Rescued stays false.
//
//sw:hotpath
func (p *pipeline) run16(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	if p.ctx.Err() != nil {
		return
	}
	start := time.Now()
	br, err := core.AlignBatch16(mch, p.query, p.tables, b,
		core.BatchOptions{Gaps: p.opt.Gaps, Scratch: s})
	if err != nil {
		p.fail(err)
		return
	}
	p.met.Batches16.Add(1)
	p.met.Cells16.Add(b.Cells(len(p.query)))
	for lane := 0; lane < b.Count; lane++ {
		si := b.Index[lane]
		p.res.Hits[si].Score = br.Scores[lane]
		p.res.Hits[si].Rescued = true
		if br.Saturated[lane] {
			p.met.Saturated16.Add(1)
			p.sat16 <- si
		}
	}
	p.met.Stage16Nanos.Add(int64(time.Since(start)))
}

// run32 is the final escalation tier: one 32-bit pair alignment per
// still-saturated sequence, parallel across the pool. Cancellation
// point 4: canceled escalations are skipped the same way.
//
//sw:hotpath
func (p *pipeline) run32(mch vek.Machine, s *core.Scratch, si int, enc []uint8) []uint8 {
	if p.ctx.Err() != nil {
		return enc
	}
	start := time.Now()
	enc = p.alpha.EncodeTo(enc, p.db[si].Residues)
	pr, err := core.AlignPair32(mch, p.query, enc, p.mat,
		core.PairOptions{Gaps: p.opt.Gaps, Scratch: s})
	if err != nil {
		p.fail(err)
		return enc
	}
	p.met.Pairs32.Add(1)
	p.met.Cells32.Add(int64(len(p.query)) * int64(len(enc)))
	p.res.Hits[si].Score = pr.Score
	p.res.Hits[si].Rescued = true
	p.met.Stage32Nanos.Add(int64(time.Since(start)))
	return enc
}

func (p *pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}
