// Package sched runs Smith-Waterman searches across goroutine worker
// pools and implements the paper's three usage scenarios (§II-C,
// §IV-G): single query versus a streamed database, batched queries on
// a centralized server, and SW as a small-scale subroutine. Workers
// carry their own vector-machine tallies, which are merged for the
// performance model.
//
// Scenario 1 runs as a streaming pipeline: a producer transposes
// database batches on demand, one shared worker pool drains the 8-bit,
// 16-bit, and 32-bit stages concurrently, and saturated lanes are
// regrouped and rescued in flight instead of behind global barriers.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/core"
	"swvec/internal/failpoint"
	"swvec/internal/isa"
	"swvec/internal/metrics"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Retry policy for transient stage failures: a batch gets
// 1+maxStageRetries attempts, with exponential backoff starting at
// retryBase and capped at retryMax. The delays are deliberately small —
// a transient fault here is a resource blip, not a remote call.
const (
	maxStageRetries = 2
	retryBase       = time.Millisecond
	retryMax        = 50 * time.Millisecond
)

// Options configures a database search.
type Options struct {
	// Gaps is the gap model (affine by default).
	Gaps aln.Gaps
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// BlockCols is passed to the batch engine (0 = unblocked).
	BlockCols int
	// SortByLength batches similar-length sequences together.
	SortByLength bool
	// Instrument merges per-worker operation tallies into the result
	// for the performance model. Slightly slows the real kernels.
	Instrument bool
	// PipelineDepth is the number of batches buffered between the
	// streaming producer and the worker pool (0 = twice the worker
	// count). Deeper queues smooth uneven batch costs at the price of
	// more transposed batches in flight.
	PipelineDepth int
	// Width is the vector register width of the batch engines in bits:
	// 256 (32-lane batches), 512 (64-lane batches), or 0 to resolve
	// from the native architecture model (512 when
	// isa.Native().HasAVX512, else 256). Every stage of the pipeline —
	// 8-bit stream, 16-bit rescue — runs at the resolved width.
	Width int
	// Backend selects the execution backend for every alignment stage.
	// BackendAuto resolves to the compiled native kernels unless
	// Instrument is set (instruction tallies only exist on the modeled
	// machine); BackendModeled and BackendNative force a backend.
	Backend core.Backend
	// Kernel selects the kernel family for every alignment stage.
	// KernelAuto lets the per-query planner choose (see planner.go):
	// instrumented, modeled, linear-gap, and short-query searches stay
	// on the diagonal family; long queries take a striped variant
	// picked by the gap model. KernelDiagonal, KernelStriped, and
	// KernelLazyF force a family. The resolved choice is reported in
	// Result.Kernel.
	Kernel core.Kernel
}

// backend resolves Options.Backend: an explicit choice wins, otherwise
// instrumented runs stay on the modeled machine and everything else
// takes the compiled kernels.
func (o *Options) backend() core.Backend {
	if o.Backend != core.BackendAuto {
		return o.Backend
	}
	if o.Instrument {
		return core.BackendModeled
	}
	return core.BackendNative
}

// width resolves Options.Width to a concrete register width.
func (o *Options) width() (int, error) {
	switch o.Width {
	case 0:
		if isa.Native().HasAVX512 {
			return 512, nil
		}
		return 256, nil
	case 256, 512:
		return o.Width, nil
	}
	return 0, fmt.Errorf("sched: unsupported vector width %d (want 0, 256, or 512)", o.Width)
}

func (o *Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) depth(nw int) int {
	if o.PipelineDepth > 0 {
		return o.PipelineDepth
	}
	return 2 * nw
}

// Hit is one database sequence's result.
type Hit struct {
	// SeqIndex is the sequence's position in the database slice.
	SeqIndex int
	Score    int32
	// Rescued marks scores recovered by the 16-bit kernel after 8-bit
	// saturation.
	Rescued bool
}

// Quarantine is one database sequence the pipeline isolated after an
// alignment stage failed on its batch — a kernel panic the stage
// recovered, or an error that survived the transient-retry policy. The
// rest of the search completes normally; the caller decides whether to
// rerun the quarantined ids.
type Quarantine struct {
	// SeqIndex is the sequence's position in the database slice.
	SeqIndex int
	// ID is the sequence's FASTA identifier.
	ID string
	// Stage names the pipeline stage that failed: "align8", "align16",
	// or "align32".
	Stage string
	// Cause is the final error after retries were exhausted.
	Cause string
}

// Result is the outcome of a search.
type Result struct {
	// Hits holds one entry per database sequence, in database order.
	Hits []Hit
	// Cells is the number of real DP cells across every stage the
	// pipeline ran — 8-bit, 16-bit rescue, and 32-bit escalation —
	// with padding excluded, so GCUPS reflects the actual work.
	Cells int64
	// Elapsed is the wall-clock alignment time (batch preprocessing
	// streams inside the pipeline; the eager offline variant the paper
	// measures separately is BuildBatches).
	Elapsed time.Duration
	// Rescued counts 8-bit saturations escalated to 16 bits.
	Rescued int
	// Kernel is the kernel family the planner resolved for this search
	// (never KernelAuto); every 8- and 16-bit stage ran it. The 32-bit
	// escalation pairs always run the diagonal kernel.
	Kernel core.Kernel
	// Stats is the per-stage counter snapshot for this search: batches
	// produced and aligned, cells by width, saturations, the work-queue
	// high-water mark, and per-stage wall times. It is taken after the
	// worker pool has fully drained, so it is internally consistent
	// even when the search was canceled mid-stream.
	Stats metrics.Snapshot
	// Tally is the merged operation tally when Options.Instrument is
	// set, else nil.
	Tally *vek.Tally
	// Quarantined lists database sequences whose batch failed an
	// alignment stage after retries, sorted by SeqIndex. Their Hits
	// entries hold the last score the pipeline computed for them (zero
	// if the 8-bit stage never scored them, the capped 8-bit score if a
	// rescue failed). Empty on a fully healthy run.
	Quarantined []Quarantine
}

// GCUPS returns the measured wall-clock throughput in giga cell
// updates per second.
func (r *Result) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// Search aligns one query against every database sequence (Scenario 1)
// with the staged variable-bitwidth pipeline, restructured as a single
// streaming dataflow:
//
//	producer ──work8──▶ ┌─────────────┐ ──▶ Hits (direct writes)
//	                    │             │
//	     sat8 ◀─────────│ worker pool │
//	      │             │  (shared by │
//	grouper ──work16──▶ │ all stages) │ ──▶ Hits
//	     sat16 ◀────────│             │
//	      │             │             │
//	dispatch ──work32─▶ └─────────────┘ ──▶ Hits
//
// The producer transposes batches on demand at the resolved vector
// width — 32 lanes for 256-bit, 64 for 512-bit (a large database
// never materializes all batches at once) and recycles batch buffers
// returned by the workers. Sequences whose 8-bit scores saturate are
// regrouped into fresh 16-bit batches and rescored by the same worker
// pool while the 8-bit stage is still streaming; anything beyond int16
// finishes on the 32-bit pair kernel, also on the pool. Every database
// index is written by exactly one lane per stage and each cross-stage
// handoff flows through a channel, so Hits needs no lock: the channel
// edges order the 8-bit write of an index before its rescue rewrite.
func Search(query []uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*Result, error) {
	return SearchContext(context.Background(), query, db, mat, opt)
}

// SearchContext is Search with cancellation: when ctx is canceled or
// its deadline passes, the batch producer stops, in-flight batches
// drain without aligning, and the call returns the partial Result
// together with an error wrapping ctx.Err(). In the partial Result,
// hits whose stage completed before the cancel hold real scores;
// sequences the 8-bit stream never reached are zero, and saturated
// lanes whose rescue was cut short keep the capped 8-bit score with
// Rescued left false. Result.Stats is always a consistent snapshot of
// how far each stage got. No goroutines outlive the call.
//
// The pipeline is self-healing (DESIGN.md §12): a kernel panic or
// alignment error on one batch is recovered inside the stage, retried
// with bounded backoff when transient, and otherwise quarantines just
// that batch's sequences into Result.Quarantined while every other
// sequence completes normally. Only a fault in the pipeline's own
// machinery (producer, coordinators) fails the whole search.
func SearchContext(ctx context.Context, query []uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*Result, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("sched: empty query")
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("sched: empty database")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	width, err := opt.width()
	if err != nil {
		return nil, err
	}
	lanes := width / 8

	res := &Result{Hits: make([]Hit, len(db))}
	for i := range res.Hits {
		res.Hits[i].SeqIndex = i
	}

	nbatches := (len(db) + lanes - 1) / lanes
	nw := opt.threads()
	if nw > nbatches {
		nw = nbatches
	}
	if nw < 1 {
		nw = 1
	}
	depth := opt.depth(nw)

	// The internal context lets a pipeline crash (a panic the per-batch
	// recovery could not absorb) cancel the dataflow without the caller
	// having to; the outer ctx is still what decides whether the run
	// reports as interrupted.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	alpha := mat.Alphabet()
	kern := opt.kernel(len(query), mat, opt.backend(), batchPadRatio(db, lanes, opt.SortByLength))
	res.Kernel = kern
	p := &pipeline{
		ctx:     ictx,
		cancel:  cancel,
		crashed: make(chan struct{}),
		query:   query,
		db:      db,
		alpha:   alpha,
		mat:     mat,
		tables:  submat.NewCodeTables(mat),
		opt:     &opt,
		res:     res,
		lanes:   lanes,
		kern:    kern,
		stream:  seqio.NewBatchStream(db, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength, Lanes: lanes}),
		work8:   make(chan *seqio.Batch, depth),
		sat8:    make(chan int, depth),
		work16:  make(chan *seqio.Batch, depth),
		sat16:   make(chan int, depth),
		work32:  make(chan int, depth),
		met:     &metrics.Counters{},
		tally:   &vek.Tally{},
	}

	start := time.Now()
	p.cwg.Add(3)
	go p.produce()
	go p.groupRescues()
	go p.dispatch32()
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.guard("worker")
			p.worker()
		}()
	}
	wg.Wait()
	p.cwg.Wait()
	res.Elapsed = time.Since(start)

	// All writers have quiesced: snapshot once, derive the aggregate
	// fields from it so Result and Result.Stats can never disagree,
	// and fold the search into the process-wide totals.
	p.met.Searches.Add(1)
	cancelErr := ctx.Err()
	if cancelErr != nil {
		p.met.Canceled.Add(1)
	}
	snap := p.met.Snapshot()
	res.Stats = snap
	res.Cells = snap.Cells()
	res.Rescued = int(snap.Saturated8)
	// Workers append quarantine records in completion order; sort so
	// the report is deterministic for callers and tests.
	sort.Slice(res.Quarantined, func(i, j int) bool {
		return res.Quarantined[i].SeqIndex < res.Quarantined[j].SeqIndex
	})
	if opt.Instrument {
		res.Tally = p.tally
	}
	metrics.Global.Add(snap)
	if p.err != nil {
		return nil, p.err
	}
	if cancelErr != nil {
		return res, fmt.Errorf("sched: search interrupted after %d/%d batches: %w",
			snap.Batches8, (len(db)+lanes-1)/lanes, cancelErr)
	}
	return res, nil
}

// pipeline carries the streaming search dataflow state. The three
// coordinator goroutines (produce, groupRescues, dispatch32) feed one
// shared worker pool; see Search for the shape.
type pipeline struct {
	// ctx cancels the dataflow: the producer stops emitting, and the
	// stage runners short-circuit into drain mode, so every channel
	// still closes in the usual order and no goroutine leaks. It is the
	// caller's context wrapped with cancel, so a pipeline crash can
	// abort the dataflow too.
	ctx    context.Context
	cancel context.CancelFunc
	query  []uint8
	db     []seqio.Sequence
	alpha  *alphabet.Alphabet
	mat    *submat.Matrix
	tables *submat.CodeTables
	opt    *Options
	res    *Result
	lanes  int
	// kern is the planner's resolved kernel family for this search; the
	// batch stages pass it through BatchOptions.
	kern   core.Kernel
	stream *seqio.BatchStream

	// work8/work16/work32 carry stage jobs to the pool; sat8/sat16
	// carry saturated database indices to the next stage's feeder.
	work8  chan *seqio.Batch
	sat8   chan int
	work16 chan *seqio.Batch
	sat16  chan int
	work32 chan int

	// wg8/wg16 count outstanding stage-1/stage-2 jobs so the feeders
	// know when no further saturations can arrive.
	wg8, wg16 sync.WaitGroup

	// cwg tracks the three coordinator goroutines (produce,
	// groupRescues, dispatch32) so Search provably outlives them.
	// Workers draining the closed channels already implies the
	// coordinators have finished their sends, but not that the
	// goroutines themselves have exited.
	cwg sync.WaitGroup

	// met tallies the per-stage counters (one atomic add per batch);
	// Search snapshots it into Result.Stats after the pool drains.
	met *metrics.Counters

	// crashed is closed (once) when a coordinator or worker dies to a
	// panic the per-batch recovery could not absorb. Stage sends select
	// on it so surviving goroutines never block on a dead consumer, and
	// the close rides with an internal-context cancel that stops the
	// producer.
	crashed   chan struct{}
	crashOnce sync.Once

	mu    sync.Mutex
	err   error
	tally *vek.Tally
}

// produce streams transposed batches into the 8-bit stage, then closes
// the saturation channel once every stage-1 job has fully retired (all
// wg8.Add calls precede the close of work8, so the Wait is safe).
// Cancellation point 1: on ctx.Done the producer stops transposing —
// no further batches enter the pipeline, which bounds how much drain
// work the already-queued jobs represent.
func (p *pipeline) produce() {
	defer p.cwg.Done()
	// The close sequence rides in a defer so it still runs when the
	// producer itself panics: the guard (deferred later, so it runs
	// first) records the crash and cancels the internal context, the
	// workers drain the queued batches, and the channels close in the
	// normal order instead of wedging the pool.
	defer func() {
		close(p.work8)
		p.wg8.Wait()
		close(p.sat8)
	}()
	defer p.guard("produce")
	for {
		if p.ctx.Err() != nil {
			return
		}
		if err := failpoint.Inject("sched/produce"); err != nil {
			// A producer fault is fatal, not quarantinable: without the
			// stream there is no work to heal around.
			p.fail(err)
			return
		}
		t0 := time.Now()
		b := p.stream.Next()
		p.met.ProduceNanos.Add(int64(time.Since(t0)))
		if b == nil {
			return
		}
		p.wg8.Add(1)
		select {
		case p.work8 <- b:
			p.met.BatchesProduced.Add(1)
			p.met.ObserveQueueDepth(len(p.work8))
		case <-p.ctx.Done():
			p.wg8.Done()
			p.stream.Recycle(b)
		}
	}
}

// groupRescues regroups saturated 8-bit lanes into fresh 16-bit
// batches in flight. It keeps finished rescue batches in a local queue
// and never blocks on work16 while sat8 is open: the worker pool both
// produces saturations and consumes rescue batches, so an unbuffered
// handoff here could deadlock the pool against itself.
func (p *pipeline) groupRescues() {
	defer p.cwg.Done()
	group := make([]int, 0, p.lanes)
	var pending []*seqio.Batch
	defer func() {
		if r := recover(); r != nil {
			// Undo the Adds for rescue batches never handed to the
			// pool, or the wg16.Wait below can never drain.
			p.wg16.Add(-len(pending))
			p.crash(&panicError{stage: "rescue-grouper", val: r})
		}
		close(p.work16)
		p.wg16.Wait()
		close(p.sat16)
	}()
	in := p.sat8
	for in != nil || len(pending) > 0 {
		var out chan *seqio.Batch
		var head *seqio.Batch
		if len(pending) > 0 {
			out = p.work16
			head = pending[0]
		}
		select {
		case si, ok := <-in:
			if !ok {
				in = nil
				if len(group) > 0 {
					pending = append(pending, p.rescueBatch(group))
					group = group[:0]
				}
				continue
			}
			group = append(group, si)
			if len(group) == p.lanes {
				pending = append(pending, p.rescueBatch(group))
				group = group[:0]
			}
		case out <- head:
			pending[0] = nil
			pending = pending[1:]
		}
	}
}

func (p *pipeline) rescueBatch(members []int) *seqio.Batch {
	if err := failpoint.Inject("sched/rescue"); err != nil {
		// The grouper has no per-batch error path — a failure here is a
		// pipeline bug by construction — so injected errors exercise
		// the crash guard like any other coordinator panic.
		panic(err)
	}
	b := seqio.MakeBatch(p.db, members, p.alpha, p.lanes)
	// Add after MakeBatch so a panic inside it leaves no stray count;
	// the deferred compensation only covers batches already in pending.
	p.wg16.Add(1)
	return b
}

// dispatch32 forwards 16-bit saturations to the 32-bit stage through a
// local queue, for the same no-blocking reason as groupRescues.
func (p *pipeline) dispatch32() {
	defer p.cwg.Done()
	defer func() {
		close(p.work32)
	}()
	defer p.guard("dispatch32")
	var pending []int
	in := p.sat16
	for in != nil || len(pending) > 0 {
		var out chan int
		var head int
		if len(pending) > 0 {
			out = p.work32
			head = pending[0]
		}
		select {
		case si, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			pending = append(pending, si)
		case out <- head:
			pending = pending[1:]
		}
	}
}

// worker drains all three stages until every channel is closed. Each
// worker owns its vector machine, tally, scratch arena, and encode
// buffer; tallies merge once at exit. Cell counts flow through the
// per-batch atomic stage counters, so they stay consistent with
// Result.Stats even on a canceled run. After a cancel the workers keep
// receiving — the stage runners just drop into drain mode — which lets
// the producer and feeders retire their waitgroups and close every
// channel in the normal order.
func (p *pipeline) worker() {
	mch := vek.Bare
	var tal *vek.Tally
	if p.opt.Instrument {
		mch, tal = vek.NewMachine()
	}
	scratch := core.NewScratch()
	var enc []uint8
	w8, w16, w32 := p.work8, p.work16, p.work32
	for w8 != nil || w16 != nil || w32 != nil {
		select {
		case b, ok := <-w8:
			if !ok {
				w8 = nil
				continue
			}
			p.consume8(mch, scratch, b)
		case b, ok := <-w16:
			if !ok {
				w16 = nil
				continue
			}
			p.consume16(mch, scratch, b)
		case si, ok := <-w32:
			if !ok {
				w32 = nil
				continue
			}
			enc = p.run32(mch, scratch, si, enc)
		}
	}
	if tal != nil {
		p.mu.Lock()
		p.tally.Merge(tal)
		p.mu.Unlock()
	}
	p.met.ProfileCacheHits.Add(scratch.TakeProfileCacheHits())
}

// consume8 retires one stage-1 job. The Done is deferred so even a
// panic escaping the stage's own recovery (a scheduler bug, not a
// kernel fault) balances the stage waitgroup on its way to the worker's
// crash guard.
func (p *pipeline) consume8(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	defer p.wg8.Done()
	p.run8(mch, s, b)
}

// consume16 retires one rescue job; see consume8.
func (p *pipeline) consume16(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	defer p.wg16.Done()
	p.run16(mch, s, b)
}

// run8 is stage 1: align the batch at 8 bits, write each lane's hit
// (each database index is owned by exactly one lane), hand saturated
// lanes to the rescue queue, and recycle the batch buffer. A stage
// failure that survives the retry policy quarantines the batch's
// sequences instead of failing the search.
// Cancellation point 2: after a cancel the batch is recycled
// unaligned, and its lanes never enter the rescue queue.
//
//sw:hotpath
func (p *pipeline) run8(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	if p.ctx.Err() != nil {
		p.stream.Recycle(b)
		return
	}
	start := time.Now()
	br, err := p.align8(mch, s, b)
	if err != nil {
		p.quarantineBatch("align8", b, err)
		p.stream.Recycle(b)
		return
	}
	p.met.Batches8.Add(1)
	p.met.Cells8.Add(b.Cells(len(p.query)))
	p.countKernelBatch(b.Cells(len(p.query)))
	for lane := 0; lane < b.Count; lane++ {
		si := b.Index[lane]
		p.res.Hits[si].Score = br.Scores[lane]
		if br.Saturated[lane] {
			p.met.Saturated8.Add(1)
			select {
			case p.sat8 <- si:
			case <-p.crashed:
				// The rescue grouper died; dropping the handoff keeps
				// the pool from blocking on a dead consumer. The search
				// is already failing through the crash error.
			}
		}
	}
	p.stream.Recycle(b)
	p.met.Stage8Nanos.Add(int64(time.Since(start)))
}

// countKernelBatch attributes one aligned batch and its cell count to
// the planner's kernel family, so /debug/vars and Result.Stats expose
// how much work each family actually did.
func (p *pipeline) countKernelBatch(cells int64) {
	tallyKernel(p.met, p.kern, 1, cells)
}

// tallyKernel adds batch and cell counts to the per-kernel-family
// counters. Passing batches=0 attributes cells without counting a
// batch (pair-at-a-time stages: 32-bit escalations, multi-search
// rescues).
func tallyKernel(met *metrics.Counters, kern core.Kernel, batches, cells int64) {
	switch kern {
	case core.KernelStriped:
		met.BatchesStriped.Add(batches)
		met.CellsStriped.Add(cells)
	case core.KernelLazyF:
		met.BatchesLazyF.Add(batches)
		met.CellsLazyF.Add(cells)
	default:
		met.BatchesDiagonal.Add(batches)
		met.CellsDiagonal.Add(cells)
	}
}

// align8 runs the 8-bit stage with the retry policy: kernel panics
// surface as errors through the per-attempt recovery, transient errors
// back off and retry up to maxStageRetries times, and whatever error
// survives is returned for quarantine.
func (p *pipeline) align8(mch vek.Machine, s *core.Scratch, b *seqio.Batch) (core.BatchResult, error) {
	br, err := p.tryAlign8(mch, s, b)
	for attempt := 0; err != nil && transient(err) && attempt < maxStageRetries; attempt++ {
		if !backoffCtx(p.ctx, attempt) {
			break
		}
		p.met.Retries.Add(1)
		br, err = p.tryAlign8(mch, s, b)
	}
	return br, err
}

// tryAlign8 is one guarded 8-bit attempt; recoverTo turns a panicking
// kernel into an error without unwinding the worker.
func (p *pipeline) tryAlign8(mch vek.Machine, s *core.Scratch, b *seqio.Batch) (br core.BatchResult, err error) {
	defer recoverAttempt("align8", p.met, &err)
	if err = failpoint.Inject("sched/align8"); err != nil {
		return br, err
	}
	return core.AlignBatch8(mch, p.query, p.tables, b,
		core.BatchOptions{Gaps: p.opt.Gaps, BlockCols: p.opt.BlockCols, Scratch: s, Backend: p.opt.backend(), Kernel: p.kern})
}

// run16 is the in-flight rescue: rescore a regrouped batch at 16 bits
// and forward anything still saturated to the 32-bit stage. A failed
// rescue quarantines the batch — the affected hits keep their capped
// 8-bit score, which the Quarantine records flag as untrustworthy.
// Cancellation point 3: a canceled rescue is dropped — the affected
// hits keep their capped 8-bit score and Rescued stays false.
//
//sw:hotpath
func (p *pipeline) run16(mch vek.Machine, s *core.Scratch, b *seqio.Batch) {
	if p.ctx.Err() != nil {
		return
	}
	start := time.Now()
	br, err := p.align16(mch, s, b)
	if err != nil {
		p.quarantineBatch("align16", b, err)
		return
	}
	p.met.Batches16.Add(1)
	p.met.Cells16.Add(b.Cells(len(p.query)))
	p.countKernelBatch(b.Cells(len(p.query)))
	for lane := 0; lane < b.Count; lane++ {
		si := b.Index[lane]
		p.res.Hits[si].Score = br.Scores[lane]
		p.res.Hits[si].Rescued = true
		if br.Saturated[lane] {
			p.met.Saturated16.Add(1)
			select {
			case p.sat16 <- si:
			case <-p.crashed:
			}
		}
	}
	p.met.Stage16Nanos.Add(int64(time.Since(start)))
}

// align16 applies the stage retry policy to the 16-bit rescue; see
// align8.
func (p *pipeline) align16(mch vek.Machine, s *core.Scratch, b *seqio.Batch) (core.BatchResult, error) {
	br, err := p.tryAlign16(mch, s, b)
	for attempt := 0; err != nil && transient(err) && attempt < maxStageRetries; attempt++ {
		if !backoffCtx(p.ctx, attempt) {
			break
		}
		p.met.Retries.Add(1)
		br, err = p.tryAlign16(mch, s, b)
	}
	return br, err
}

// tryAlign16 is one guarded 16-bit attempt; see tryAlign8.
func (p *pipeline) tryAlign16(mch vek.Machine, s *core.Scratch, b *seqio.Batch) (br core.BatchResult, err error) {
	defer recoverAttempt("align16", p.met, &err)
	if err = failpoint.Inject("sched/align16"); err != nil {
		return br, err
	}
	return core.AlignBatch16(mch, p.query, p.tables, b,
		core.BatchOptions{Gaps: p.opt.Gaps, Scratch: s, Backend: p.opt.backend(), Kernel: p.kern})
}

// run32 is the final escalation tier: one 32-bit pair alignment per
// still-saturated sequence, parallel across the pool. Cancellation
// point 4: canceled escalations are skipped the same way.
//
//sw:hotpath
func (p *pipeline) run32(mch vek.Machine, s *core.Scratch, si int, enc []uint8) []uint8 {
	if p.ctx.Err() != nil {
		return enc
	}
	start := time.Now()
	enc = p.alpha.EncodeTo(enc, p.db[si].Residues)
	pr, err := p.align32(mch, s, enc)
	if err != nil {
		p.quarantineSeq("align32", si, err)
		return enc
	}
	p.met.Pairs32.Add(1)
	p.met.Cells32.Add(int64(len(p.query)) * int64(len(enc)))
	// Escalation pairs always run the diagonal kernel (score + position
	// exactness matters more than throughput at this tier), so their
	// cells count against the diagonal family regardless of the plan.
	tallyKernel(p.met, core.KernelDiagonal, 0, int64(len(p.query))*int64(len(enc)))
	p.res.Hits[si].Score = pr.Score
	p.res.Hits[si].Rescued = true
	p.met.Stage32Nanos.Add(int64(time.Since(start)))
	return enc
}

// align32 applies the stage retry policy to one 32-bit escalation; see
// align8.
func (p *pipeline) align32(mch vek.Machine, s *core.Scratch, enc []uint8) (aln.ScoreResult, error) {
	pr, err := p.tryAlign32(mch, s, enc)
	for attempt := 0; err != nil && transient(err) && attempt < maxStageRetries; attempt++ {
		if !backoffCtx(p.ctx, attempt) {
			break
		}
		p.met.Retries.Add(1)
		pr, err = p.tryAlign32(mch, s, enc)
	}
	return pr, err
}

// tryAlign32 is one guarded 32-bit attempt; see tryAlign8.
func (p *pipeline) tryAlign32(mch vek.Machine, s *core.Scratch, enc []uint8) (pr aln.ScoreResult, err error) {
	defer recoverAttempt("align32", p.met, &err)
	if err = failpoint.Inject("sched/align32"); err != nil {
		return pr, err
	}
	return core.AlignPair32(mch, p.query, enc, p.mat,
		core.PairOptions{Gaps: p.opt.Gaps, Scratch: s, Backend: p.opt.backend()})
}

// recoverAttempt converts a panic escaping a stage attempt into the
// attempt's error so the batch can be quarantined instead of crashing
// the pool. It must be installed directly with defer (not wrapped in a
// closure) for recover to see the panic. met may be nil for callers
// that do not keep counters.
func recoverAttempt(stage string, met *metrics.Counters, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if met != nil {
		met.PanicsRecovered.Add(1)
	}
	*err = &panicError{stage: stage, val: r}
}

// transient reports whether err is retryable: some layer of its chain
// exposes Transient() bool and answers true (injected faults marked
// :transient do; kernel validation errors do not).
func transient(err error) bool {
	var t interface{ Transient() bool }
	//swlint:ignore hotpathalloc only reached after an attempt failed; the healthy path never classifies errors
	return errors.As(err, &t) && t.Transient()
}

// backoffCtx sleeps the bounded exponential retry delay for the given
// attempt. It returns false when ctx is canceled first, in which case
// the caller gives up on the batch.
func backoffCtx(ctx context.Context, attempt int) bool {
	d := retryBase << attempt
	if d > retryMax {
		d = retryMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// quarantineSeq records one sequence a stage failed on; the search
// continues without it.
func (p *pipeline) quarantineSeq(stage string, si int, cause error) {
	p.met.Quarantined.Add(1)
	p.mu.Lock()
	//swlint:ignore hotpathalloc quarantine is the cold path: a stage already failed and exhausted its retries
	p.res.Quarantined = append(p.res.Quarantined, Quarantine{
		SeqIndex: si,
		ID:       p.db[si].ID,
		Stage:    stage,
		Cause:    cause.Error(),
	})
	p.mu.Unlock()
}

// quarantineBatch quarantines every member of a failed batch.
func (p *pipeline) quarantineBatch(stage string, b *seqio.Batch, cause error) {
	for lane := 0; lane < b.Count; lane++ {
		p.quarantineSeq(stage, b.Index[lane], cause)
	}
}

// guard is the last-resort recovery for the pipeline goroutines: a
// panic that reaches it escaped the per-batch recovery, which means a
// scheduler bug rather than a kernel fault. The pipeline cannot heal
// around a dead coordinator, so the crash fails the search — but
// cleanly: the error is recorded, the dataflow is canceled, and every
// goroutine still unwinds through its deferred close sequence instead
// of deadlocking the pool.
func (p *pipeline) guard(stage string) {
	r := recover()
	if r == nil {
		return
	}
	p.crash(&panicError{stage: stage, val: r})
}

// crash records a fatal pipeline error, cancels the internal context so
// the producer stops, and unblocks every stage send waiting on a dead
// consumer via the crashed channel.
func (p *pipeline) crash(err error) {
	p.fail(err)
	p.crashOnce.Do(func() {
		p.cancel()
		close(p.crashed)
	})
}

func (p *pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// panicError wraps a recovered panic value as an error so it can ride
// the normal failure paths: quarantine causes for stage panics, the
// search error for coordinator crashes.
type panicError struct {
	stage string
	val   any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("sched: panic in %s: %v", e.stage, e.val)
}
