// Package sched runs Smith-Waterman searches across goroutine worker
// pools and implements the paper's three usage scenarios (§II-C,
// §IV-G): single query versus a streamed database, batched queries on
// a centralized server, and SW as a small-scale subroutine. Workers
// carry their own vector-machine tallies, which are merged for the
// performance model.
package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Options configures a database search.
type Options struct {
	// Gaps is the gap model (affine by default).
	Gaps aln.Gaps
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// BlockCols is passed to the batch engine (0 = unblocked).
	BlockCols int
	// SortByLength batches similar-length sequences together.
	SortByLength bool
	// Instrument merges per-worker operation tallies into the result
	// for the performance model. Slightly slows the real kernels.
	Instrument bool
}

func (o *Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// Hit is one database sequence's result.
type Hit struct {
	// SeqIndex is the sequence's position in the database slice.
	SeqIndex int
	Score    int32
	// Rescued marks scores recovered by the 16-bit kernel after 8-bit
	// saturation.
	Rescued bool
}

// Result is the outcome of a search.
type Result struct {
	// Hits holds one entry per database sequence, in database order.
	Hits []Hit
	// Cells is the number of real DP cells (padding excluded).
	Cells int64
	// Elapsed is the wall-clock alignment time (batch preprocessing,
	// which the paper performs offline, is excluded).
	Elapsed time.Duration
	// Rescued counts 8-bit saturations escalated to 16 bits.
	Rescued int
	// Tally is the merged operation tally when Options.Instrument is
	// set, else nil.
	Tally *vek.Tally
}

// GCUPS returns the measured wall-clock throughput in giga cell
// updates per second.
func (r *Result) GCUPS() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// TopHits returns the n best hits, ties broken by database order.
func (r *Result) TopHits(n int) []Hit {
	hits := make([]Hit, len(r.Hits))
	copy(hits, r.Hits)
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if n > len(hits) {
		n = len(hits)
	}
	return hits[:n]
}

// Search aligns one query against every database sequence (Scenario
// 1) with the staged variable-bitwidth pipeline: the database streams
// through the 8-bit batch engine across the worker pool; sequences
// whose scores saturate are regrouped into fresh batches and rescored
// by the 16-bit batch engine; anything still saturated (scores beyond
// 32767) finishes on the 32-bit pair kernel. Every stage stays
// vectorized — the production shape of variable 8/16-bit width.
func Search(query []uint8, db []seqio.Sequence, mat *submat.Matrix, opt Options) (*Result, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("sched: empty query")
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("sched: empty database")
	}
	if err := opt.Gaps.Validate(); err != nil {
		return nil, err
	}
	alpha := mat.Alphabet()
	batches := seqio.BuildBatches(db, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength})
	tables := submat.NewCodeTables(mat)

	res := &Result{Hits: make([]Hit, len(db))}
	for i := range res.Hits {
		res.Hits[i].SeqIndex = i
	}
	res.Cells = seqio.BatchedCells(batches, len(query))

	var mu sync.Mutex
	var firstErr error
	merged := &vek.Tally{}
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// runStage streams batches through one engine across the pool and
	// returns the database indices of saturated lanes.
	runStage := func(stage []*seqio.Batch, align func(vek.Machine, *seqio.Batch) (core.BatchResult, error), markRescued bool) []int {
		nw := opt.threads()
		if nw > len(stage) {
			nw = len(stage)
		}
		if nw < 1 {
			nw = 1
		}
		work := make(chan *seqio.Batch, nw)
		var saturated []int
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mch := vek.Bare
				var tal *vek.Tally
				if opt.Instrument {
					mch, tal = vek.NewMachine()
				}
				for batch := range work {
					br, err := align(mch, batch)
					if err != nil {
						setErr(err)
						continue
					}
					mu.Lock()
					for lane := 0; lane < batch.Count; lane++ {
						si := batch.Index[lane]
						res.Hits[si].Score = br.Scores[lane]
						res.Hits[si].Rescued = markRescued
						if br.Saturated[lane] {
							saturated = append(saturated, si)
						}
					}
					mu.Unlock()
				}
				if tal != nil {
					mu.Lock()
					merged.Merge(tal)
					mu.Unlock()
				}
			}()
		}
		for _, b := range stage {
			work <- b
		}
		close(work)
		wg.Wait()
		return saturated
	}

	start := time.Now()
	// Stage 1: 8-bit batch engine over the whole database.
	sat8 := runStage(batches, func(mch vek.Machine, b *seqio.Batch) (core.BatchResult, error) {
		return core.AlignBatch8(mch, query, tables, b, core.BatchOptions{Gaps: opt.Gaps, BlockCols: opt.BlockCols})
	}, false)

	// Stage 2: regroup the saturated sequences and rescore at 16 bits.
	var sat16 []int
	if len(sat8) > 0 && firstErr == nil {
		sub := make([]seqio.Sequence, len(sat8))
		for k, si := range sat8 {
			sub[k] = db[si]
		}
		subBatches := seqio.BuildBatches(sub, alpha, seqio.BatchOptions{SortByLength: opt.SortByLength})
		// Remap sub-batch indices back to database indices.
		for _, b := range subBatches {
			for lane := 0; lane < b.Count; lane++ {
				b.Index[lane] = sat8[b.Index[lane]]
			}
		}
		sat16 = runStage(subBatches, func(mch vek.Machine, b *seqio.Batch) (core.BatchResult, error) {
			return core.AlignBatch16(mch, query, tables, b, core.BatchOptions{Gaps: opt.Gaps})
		}, true)
		res.Rescued = len(sat8)
	}

	// Stage 3: the 32-bit pair kernel for anything beyond int16.
	if len(sat16) > 0 && firstErr == nil {
		mch := vek.Bare
		var tal *vek.Tally
		if opt.Instrument {
			mch, tal = vek.NewMachine()
		}
		for _, si := range sat16 {
			d := db[si].Encode(alpha)
			pr, err := core.AlignPair32(mch, query, d, mat, core.PairOptions{Gaps: opt.Gaps})
			if err != nil {
				setErr(err)
				break
			}
			res.Hits[si].Score = pr.Score
			res.Hits[si].Rescued = true
		}
		if tal != nil {
			merged.Merge(tal)
		}
	}
	res.Elapsed = time.Since(start)
	if opt.Instrument {
		res.Tally = merged
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
