//go:build race

package sched

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so zero-alloc assertions skip under it.
const raceEnabled = true
