package vek

// I32x8 is a 256-bit register holding 8 signed 32-bit lanes. The
// kernels use it for gather indices and for the 32-bit scoring path
// used with very long sequences.
type I32x8 [8]int32

// Splat32 broadcasts x to all 8 lanes (vpbroadcastd).
func (m Machine) Splat32(x int32) I32x8 {
	m.T.inc256(OpBroadcast)
	var v I32x8
	for i := range v {
		v[i] = x
	}
	return v
}

// Zero32 returns the all-zero register (free zeroing idiom).
func (m Machine) Zero32() I32x8 { return I32x8{} }

// Load32 loads the first 8 elements of s (vmovdqu).
func (m Machine) Load32(s []int32) I32x8 {
	m.T.inc256(OpLoad)
	var v I32x8
	copy(v[:], s[:8])
	return v
}

// Load32Partial loads min(len(s), 8) elements, zero-filling the rest.
func (m Machine) Load32Partial(s []int32) I32x8 {
	m.T.inc256(OpLoad)
	m.T.inc256(OpLogic)
	var v I32x8
	n := len(s)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		v[i] = s[i]
	}
	return v
}

// Store32 stores v into the first 8 elements of dst.
func (m Machine) Store32(dst []int32, v I32x8) {
	m.T.inc256(OpStore)
	copy(dst[:8], v[:])
}

// Store32Partial stores the first min(len(dst), 8) lanes of v.
func (m Machine) Store32Partial(dst []int32, v I32x8) {
	m.T.inc256(OpStore)
	m.T.inc256(OpLogic)
	n := len(dst)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		dst[i] = v[i]
	}
}

// Add32 returns a+b with modular wraparound (vpaddd). The 32-bit path
// does not saturate; scores that overflow int32 are out of scope for
// biological sequence lengths.
func (m Machine) Add32(a, b I32x8) I32x8 {
	m.T.inc256(OpAdd32)
	var v I32x8
	for i := range v {
		v[i] = a[i] + b[i]
	}
	return v
}

// Sub32 returns a-b with modular wraparound (vpsubd).
func (m Machine) Sub32(a, b I32x8) I32x8 {
	m.T.inc256(OpSub32)
	var v I32x8
	for i := range v {
		v[i] = a[i] - b[i]
	}
	return v
}

// Max32 returns the lane-wise signed maximum (vpmaxsd).
func (m Machine) Max32(a, b I32x8) I32x8 {
	m.T.inc256(OpMax32)
	var v I32x8
	for i := range v {
		if a[i] > b[i] {
			v[i] = a[i]
		} else {
			v[i] = b[i]
		}
	}
	return v
}

// CmpGt32 returns -1 in lanes where a>b, else 0 (vpcmpgtd).
func (m Machine) CmpGt32(a, b I32x8) I32x8 {
	m.T.inc256(OpCmpGt8) // same port/latency class as the byte compare
	var v I32x8
	for i := range v {
		if a[i] > b[i] {
			v[i] = -1
		}
	}
	return v
}

// CmpEq32 returns -1 in lanes where a==b, else 0 (vpcmpeqd).
func (m Machine) CmpEq32(a, b I32x8) I32x8 {
	m.T.inc256(OpCmpEq8) // same port/latency class as the byte compare
	var v I32x8
	for i := range v {
		if a[i] == b[i] {
			v[i] = -1
		}
	}
	return v
}

// And32 returns the bitwise AND (vpand).
func (m Machine) And32(a, b I32x8) I32x8 {
	m.T.inc256(OpLogic)
	var v I32x8
	for i := range v {
		v[i] = a[i] & b[i]
	}
	return v
}

// Or32 returns the bitwise OR (vpor).
func (m Machine) Or32(a, b I32x8) I32x8 {
	m.T.inc256(OpLogic)
	var v I32x8
	for i := range v {
		v[i] = a[i] | b[i]
	}
	return v
}

// AndNot32 returns a &^ b (vpandn with swapped operands).
func (m Machine) AndNot32(a, b I32x8) I32x8 {
	m.T.inc256(OpLogic)
	var v I32x8
	for i := range v {
		v[i] = a[i] &^ b[i]
	}
	return v
}

// MoveMask32 packs the sign bit of every lane into an 8-bit mask
// (vmovmskps on integer data). Bit i corresponds to lane i.
func (m Machine) MoveMask32(a I32x8) uint32 {
	m.T.inc256(OpMoveMask)
	var mask uint32
	for i := range a {
		if a[i] < 0 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Blend32 selects b where the mask lane is negative, else a
// (vblendvps on integer data).
func (m Machine) Blend32(a, b, mask I32x8) I32x8 {
	m.T.inc256(OpBlend)
	var v I32x8
	for i := range v {
		if mask[i] < 0 {
			v[i] = b[i]
		} else {
			v[i] = a[i]
		}
	}
	return v
}

// ReduceMax32 returns the maximum lane value (shuffle+max ladder).
func (m Machine) ReduceMax32(a I32x8) int32 {
	m.T.inc256(OpReduce)
	best := a[0]
	for _, x := range a[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// ShiftLanesRight32 shifts the register right by n 32-bit lanes
// (toward lane 0), inserting zeros at the top.
func (m Machine) ShiftLanesRight32(a I32x8, n int) I32x8 {
	// 32-bit lane shifts are a single vpermd/valignd.
	m.T.inc256(OpPermute)
	var v I32x8
	if n < 0 || n >= 8 {
		return v
	}
	copy(v[:8-n], a[n:])
	return v
}

// ShiftLanesLeft32 shifts the register left by n 32-bit lanes (away
// from lane 0), inserting zeros at lane 0.
func (m Machine) ShiftLanesLeft32(a I32x8, n int) I32x8 {
	// 32-bit lane shifts are a single vpermd/valignd.
	m.T.inc256(OpPermute)
	var v I32x8
	if n < 0 || n >= 8 {
		return v
	}
	copy(v[n:], a[:8-n])
	return v
}

// Permute32 performs the AVX2 vpermd cross-lane permute: lane i of the
// result is a[idx[i]&7].
func (m Machine) Permute32(a I32x8, idx I32x8) I32x8 {
	m.T.inc256(OpPermute)
	var v I32x8
	for i := range v {
		v[i] = a[idx[i]&7]
	}
	return v
}

// Gather32 performs vpgatherdd: lane i of the result is
// table[idx[i]]. Indices must be in range; an out-of-range index is a
// kernel bug and panics. Gather is the paper's access path into the
// reorganized substitution matrix for 16- and 32-bit scoring.
func (m Machine) Gather32(table []int32, idx I32x8) I32x8 {
	m.T.inc256(OpGather32)
	var v I32x8
	for i := range v {
		v[i] = table[idx[i]]
	}
	return v
}

// GatherMasked32 gathers table[idx[i]] only in lanes where mask is
// negative; other lanes keep src. This models the masked vpgatherdd
// form used for diagonal edges.
func (m Machine) GatherMasked32(src I32x8, table []int32, idx, mask I32x8) I32x8 {
	m.T.inc256(OpGather32)
	v := src
	for i := range v {
		if mask[i] < 0 {
			v[i] = table[idx[i]]
		}
	}
	return v
}

// Widen16To32 sign-extends the low or high 8 lanes of a 16-bit
// register (vpmovsxwd). half 0 selects lanes 0..7, half 1 lanes 8..15.
func (m Machine) Widen16To32(a I16x16, half int) I32x8 {
	m.T.inc256(OpUnpack)
	var v I32x8
	base := half * 8
	for i := 0; i < 8; i++ {
		v[i] = int32(a[base+i])
	}
	return v
}

// Narrow32To16 packs two 32-bit registers into one 16-bit register
// with signed saturation (vpackssdw + fixup permute).
func (m Machine) Narrow32To16(lo, hi I32x8) I16x16 {
	m.T.inc256(OpUnpack)
	m.T.inc256(OpPermute)
	var v I16x16
	for i := 0; i < 8; i++ {
		v[i] = clamp16(lo[i])
		v[8+i] = clamp16(hi[i])
	}
	return v
}
