package vek

// I8x32 is a 256-bit register holding 32 signed 8-bit lanes, the
// workhorse type of the 8-bit Smith-Waterman kernels (32 cells per
// instruction). Lane 0 is the lowest-addressed byte, matching x86
// little-endian register order.
type I8x32 [32]int8

// Splat8 broadcasts x to all 32 lanes (vpbroadcastb).
func (m Machine) Splat8(x int8) I8x32 {
	m.T.inc256(OpBroadcast)
	var v I8x32
	for i := range v {
		v[i] = x
	}
	return v
}

// Zero8 returns the all-zero register. x86 zeroing idioms are free
// (handled at rename), so no issue is charged.
func (m Machine) Zero8() I8x32 { return I8x32{} }

// Load8 loads the first 32 elements of s (vmovdqu).
func (m Machine) Load8(s []int8) I8x32 {
	m.T.inc256(OpLoad)
	var v I8x32
	copy(v[:], s[:32])
	return v
}

// Load8Partial loads min(len(s), 32) elements, zero-filling the rest.
// It models the masked-load sequence used at diagonal edges and is
// charged as one load plus one logic op for the mask.
func (m Machine) Load8Partial(s []int8) I8x32 {
	m.T.inc256(OpLoad)
	m.T.inc256(OpLogic)
	var v I8x32
	n := len(s)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		v[i] = s[i]
	}
	return v
}

// Store8 stores v into the first 32 elements of dst.
func (m Machine) Store8(dst []int8, v I8x32) {
	m.T.inc256(OpStore)
	copy(dst[:32], v[:])
}

// Store8Partial stores the first min(len(dst), 32) lanes of v.
func (m Machine) Store8Partial(dst []int8, v I8x32) {
	m.T.inc256(OpStore)
	m.T.inc256(OpLogic)
	n := len(dst)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		dst[i] = v[i]
	}
}

// AddSat8 returns a+b with signed saturation (vpaddsb).
func (m Machine) AddSat8(a, b I8x32) I8x32 {
	m.T.inc256(OpAddSat8)
	var v I8x32
	for i := range v {
		v[i] = clamp8(int32(a[i]) + int32(b[i]))
	}
	return v
}

// SubSat8 returns a-b with signed saturation (vpsubsb).
func (m Machine) SubSat8(a, b I8x32) I8x32 {
	m.T.inc256(OpSubSat8)
	var v I8x32
	for i := range v {
		v[i] = clamp8(int32(a[i]) - int32(b[i]))
	}
	return v
}

// Max8 returns the lane-wise signed maximum (vpmaxsb).
func (m Machine) Max8(a, b I8x32) I8x32 {
	m.T.inc256(OpMax8)
	var v I8x32
	for i := range v {
		if a[i] > b[i] {
			v[i] = a[i]
		} else {
			v[i] = b[i]
		}
	}
	return v
}

// Min8 returns the lane-wise signed minimum (vpminsb).
func (m Machine) Min8(a, b I8x32) I8x32 {
	m.T.inc256(OpMin8)
	var v I8x32
	for i := range v {
		if a[i] < b[i] {
			v[i] = a[i]
		} else {
			v[i] = b[i]
		}
	}
	return v
}

// CmpGt8 returns 0xFF in lanes where a>b, else 0 (vpcmpgtb).
func (m Machine) CmpGt8(a, b I8x32) I8x32 {
	m.T.inc256(OpCmpGt8)
	var v I8x32
	for i := range v {
		if a[i] > b[i] {
			v[i] = -1
		}
	}
	return v
}

// CmpEq8 returns 0xFF in lanes where a==b, else 0 (vpcmpeqb).
func (m Machine) CmpEq8(a, b I8x32) I8x32 {
	m.T.inc256(OpCmpEq8)
	var v I8x32
	for i := range v {
		if a[i] == b[i] {
			v[i] = -1
		}
	}
	return v
}

// Blend8 selects b where the mask lane's high bit is set, else a
// (vpblendvb).
func (m Machine) Blend8(a, b, mask I8x32) I8x32 {
	m.T.inc256(OpBlend)
	var v I8x32
	for i := range v {
		if mask[i] < 0 {
			v[i] = b[i]
		} else {
			v[i] = a[i]
		}
	}
	return v
}

// And8 returns the bitwise AND (vpand).
func (m Machine) And8(a, b I8x32) I8x32 {
	m.T.inc256(OpLogic)
	var v I8x32
	for i := range v {
		v[i] = a[i] & b[i]
	}
	return v
}

// Or8 returns the bitwise OR (vpor).
func (m Machine) Or8(a, b I8x32) I8x32 {
	m.T.inc256(OpLogic)
	var v I8x32
	for i := range v {
		v[i] = a[i] | b[i]
	}
	return v
}

// AndNot8 returns a &^ b, i.e. a AND (NOT b) (vpandn with swapped
// operands, same logic port).
func (m Machine) AndNot8(a, b I8x32) I8x32 {
	m.T.inc256(OpLogic)
	var v I8x32
	for i := range v {
		v[i] = a[i] &^ b[i]
	}
	return v
}

// Xor8 returns the bitwise XOR (vpxor).
func (m Machine) Xor8(a, b I8x32) I8x32 {
	m.T.inc256(OpLogic)
	var v I8x32
	for i := range v {
		v[i] = a[i] ^ b[i]
	}
	return v
}

// MoveMask8 packs the high bit of every lane into a 32-bit mask
// (vpmovmskb). Bit i corresponds to lane i.
func (m Machine) MoveMask8(a I8x32) uint32 {
	m.T.inc256(OpMoveMask)
	var mask uint32
	for i := range a {
		if a[i] < 0 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// ReduceMax8 returns the maximum lane value. In hardware this is a
// log2(32)=5-step shuffle+max ladder; it is charged as one OpReduce
// which the cost model expands.
func (m Machine) ReduceMax8(a I8x32) int8 {
	m.T.inc256(OpReduce)
	best := a[0]
	for _, x := range a[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Shuffle8 performs the AVX2 vpshufb in-lane byte shuffle: each
// 128-bit half of the register is shuffled independently, indices are
// taken modulo 16 within the half, and an index byte with its high bit
// set yields zero. This quirk is load-bearing for the database-batch
// scoring path, which must confine lookup tables to 16-byte halves
// exactly as the paper's kernel does.
func (m Machine) Shuffle8(table, idx I8x32) I8x32 {
	m.T.inc256(OpShuffle)
	var v I8x32
	for half := 0; half < 2; half++ {
		base := half * 16
		for i := 0; i < 16; i++ {
			j := idx[base+i]
			if j < 0 {
				v[base+i] = 0
			} else {
				v[base+i] = table[base+int(j&0x0F)]
			}
		}
	}
	return v
}

// ShiftLanesRight8 shifts the whole 256-bit register right by n byte
// lanes (toward lane 0), inserting zeros at the top. On AVX2 a
// cross-half byte shift is a vperm2i128+vpalignr pair, modeled by the
// OpLaneShift class.
func (m Machine) ShiftLanesRight8(a I8x32, n int) I8x32 {
	if n%4 == 0 {
		m.T.inc256(OpPermute) // 32-bit aligned: single vpermd
	} else {
		m.T.inc256(OpLaneShift)
	}
	var v I8x32
	if n < 0 || n >= 32 {
		return v
	}
	copy(v[:32-n], a[n:])
	return v
}

// ShiftLanesLeft8 shifts the register left by n byte lanes (away from
// lane 0), inserting zeros at lane 0.
func (m Machine) ShiftLanesLeft8(a I8x32, n int) I8x32 {
	if n%4 == 0 {
		m.T.inc256(OpPermute) // 32-bit aligned: single vpermd
	} else {
		m.T.inc256(OpLaneShift)
	}
	var v I8x32
	if n < 0 || n >= 32 {
		return v
	}
	copy(v[n:], a[:32-n])
	return v
}

// Insert8 returns a with lane i set to x (vpinsrb + lane juggling).
func (m Machine) Insert8(a I8x32, i int, x int8) I8x32 {
	m.T.inc256(OpUnpack)
	a[i] = x
	return a
}

// Extract8 returns lane i of a (vpextrb).
func (m Machine) Extract8(a I8x32, i int) int8 {
	m.T.inc256(OpUnpack)
	return a[i]
}
