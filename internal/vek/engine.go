package vek

import "math"

// Elem is the set of element types the wavefront kernels run over.
type Elem interface {
	~int8 | ~int16 | ~int32
}

// Engine is the lane-engine abstraction: everything a wavefront kernel
// needs from one register width, expressed over the vector type V and
// its element type E. The five instantiations (E8x32, E16x16, E32x8,
// E8x64, E16x32) let internal/core keep a single generic pair kernel
// and a single generic batch kernel instead of one hand-copied kernel
// per width.
//
// Every method that takes a Machine charges exactly the ops the
// hand-written kernels charged, at the engine's width, so swapping a
// per-width kernel for its generic instantiation is tally-neutral.
type Engine[V any, E Elem] interface {
	// Lanes is the number of E elements in V.
	Lanes() int
	// Width is the register width charged to the tally.
	Width() Width
	// HasGather reports whether the engine scores via the gathered
	// substitution-matrix path (16- and 32-bit engines); 8-bit engines
	// score through a query profile instead.
	HasGather() bool
	// SupportsFixed reports whether the engine has a compare/blend
	// fast path for fixed match/mismatch matrices.
	SupportsFixed() bool
	// NegInf is the kernel's "minus infinity": low enough that gap
	// extensions cannot underflow into plausible scores.
	NegInf() E
	// SatCeil is the score at which this element width saturates.
	SatCeil() int32
	// Clamp converts x to E, clamping to the representable range.
	Clamp(x int32) E
	// Lane reads lane i of v. Register lane reads are free.
	Lane(v V, i int) E
	// SatAdd and SatSub perform E-width saturating scalar arithmetic
	// in int32 (plain arithmetic for the 32-bit engine).
	SatAdd(a, b int32) int32
	SatSub(a, b int32) int32

	Splat(m Machine, x E) V
	Zero(m Machine) V
	Load(m Machine, s []E) V
	LoadPartial(m Machine, s []E) V
	Store(m Machine, dst []E, v V)
	StorePartial(m Machine, dst []E, v V)
	AddSat(m Machine, a, b V) V
	SubSat(m Machine, a, b V) V
	Max(m Machine, a, b V) V
	CmpGt(m Machine, a, b V) V
	CmpEq(m Machine, a, b V) V
	Blend(m Machine, a, b, mask V) V
	And(m Machine, a, b V) V
	AndNot(m Machine, a, b V) V
	Or(m Machine, a, b V) V
	MoveMask(m Machine, v V) uint64
	ReduceMax(m Machine, v V) E
	// MaskTail zeroes lanes >= valid, charged as one logic op: the
	// masked-tail blend at diagonal edges.
	MaskTail(m Machine, v V, valid int) V
	// ShiftIn shifts v by n lanes away from lane 0 (lane l takes lane
	// l-n's value) and fills the vacated low lanes with fill — the
	// striped kernels' cross-stripe rotate. Charged as the machine's
	// lane shift plus, for a non-zero fill, an insert (n == 1, Farrar's
	// rotate) or a blend against a splat (n > 1, the deconstructed
	// lazy-F prefix scan).
	ShiftIn(m Machine, v V, n int, fill E) V
	// GatherScores loads lane-count substitution scores from the
	// flattened matrix: flat[qMul[qOff+l]+dRev[dOff+l]] per lane l.
	// Engines with HasGather()==false panic.
	GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) V
	// GatherScoresPartial is GatherScores for a diagonal edge with
	// only valid lanes in range; out-of-range lanes gather index 0
	// and must be masked by the caller.
	GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) V
	// StoreDirs packs traceback directions into bytes and stores one
	// byte per lane. Only the 256-bit engines support traceback.
	StoreDirs(m Machine, dst []int8, dir V)
}

// clipSpan bounds s[off:off+want] to the slice, returning nil when the
// window starts past the end. A negative want yields an empty window.
func clipSpan[E Elem](s []E, off, want int) []E {
	if want < 0 {
		want = 0
	}
	if off >= len(s) {
		return nil
	}
	end := off + want
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

func clampRange(x, lo, hi int32) int32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// E8x32 is the 256-bit 8-bit engine (32 lanes).
//
//sw:hotpath
type E8x32 struct{}

func (E8x32) Lanes() int               { return 32 }
func (E8x32) Width() Width             { return W256 }
func (E8x32) HasGather() bool          { return false }
func (E8x32) SupportsFixed() bool      { return true }
func (E8x32) NegInf() int8             { return -128 }
func (E8x32) SatCeil() int32           { return 127 }
func (E8x32) Clamp(x int32) int8       { return int8(clampRange(x, -128, 127)) }
func (E8x32) Lane(v I8x32, i int) int8 { return v[i] }
func (E8x32) SatAdd(a, b int32) int32  { return clampRange(a+b, -128, 127) }
func (E8x32) SatSub(a, b int32) int32  { return clampRange(a-b, -128, 127) }

func (E8x32) Splat(m Machine, x int8) I8x32               { return m.Splat8(x) }
func (E8x32) Zero(m Machine) I8x32                        { return m.Zero8() }
func (E8x32) Load(m Machine, s []int8) I8x32              { return m.Load8(s) }
func (E8x32) LoadPartial(m Machine, s []int8) I8x32       { return m.Load8Partial(s) }
func (E8x32) Store(m Machine, dst []int8, v I8x32)        { m.Store8(dst, v) }
func (E8x32) StorePartial(m Machine, dst []int8, v I8x32) { m.Store8Partial(dst, v) }
func (E8x32) AddSat(m Machine, a, b I8x32) I8x32          { return m.AddSat8(a, b) }
func (E8x32) SubSat(m Machine, a, b I8x32) I8x32          { return m.SubSat8(a, b) }
func (E8x32) Max(m Machine, a, b I8x32) I8x32             { return m.Max8(a, b) }
func (E8x32) CmpGt(m Machine, a, b I8x32) I8x32           { return m.CmpGt8(a, b) }
func (E8x32) CmpEq(m Machine, a, b I8x32) I8x32           { return m.CmpEq8(a, b) }
func (E8x32) Blend(m Machine, a, b, mask I8x32) I8x32     { return m.Blend8(a, b, mask) }
func (E8x32) And(m Machine, a, b I8x32) I8x32             { return m.And8(a, b) }
func (E8x32) AndNot(m Machine, a, b I8x32) I8x32          { return m.AndNot8(a, b) }
func (E8x32) Or(m Machine, a, b I8x32) I8x32              { return m.Or8(a, b) }
func (E8x32) MoveMask(m Machine, v I8x32) uint64          { return uint64(m.MoveMask8(v)) }
func (E8x32) ReduceMax(m Machine, v I8x32) int8           { return m.ReduceMax8(v) }

func (E8x32) MaskTail(m Machine, v I8x32, valid int) I8x32 {
	m.T.Add(OpLogic, W256, 1)
	for i := valid; i < 32; i++ {
		v[i] = 0
	}
	return v
}

func (E8x32) ShiftIn(m Machine, v I8x32, n int, fill int8) I8x32 {
	v = m.ShiftLanesLeft8(v, n)
	if fill == 0 {
		return v
	}
	if n == 1 {
		return m.Insert8(v, 0, fill)
	}
	m.T.Add(OpLogic, W256, 1)
	for i := 0; i < n && i < 32; i++ {
		v[i] = fill
	}
	return v
}

func (E8x32) GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) I8x32 {
	panic("vek: 8-bit engines score via query profile, not gather")
}

func (E8x32) GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) I8x32 {
	panic("vek: 8-bit engines score via query profile, not gather")
}

func (E8x32) StoreDirs(m Machine, dst []int8, dir I8x32) {
	m.Store8Partial(dst, dir)
}

// E16x16 is the 256-bit 16-bit engine (16 lanes).
//
//sw:hotpath
type E16x16 struct{}

func (E16x16) Lanes() int                 { return 16 }
func (E16x16) Width() Width               { return W256 }
func (E16x16) HasGather() bool            { return true }
func (E16x16) SupportsFixed() bool        { return true }
func (E16x16) NegInf() int16              { return -30000 }
func (E16x16) SatCeil() int32             { return 32767 }
func (E16x16) Clamp(x int32) int16        { return int16(clampRange(x, -32768, 32767)) }
func (E16x16) Lane(v I16x16, i int) int16 { return v[i] }
func (E16x16) SatAdd(a, b int32) int32    { return clampRange(a+b, -32768, 32767) }
func (E16x16) SatSub(a, b int32) int32    { return clampRange(a-b, -32768, 32767) }

func (E16x16) Splat(m Machine, x int16) I16x16               { return m.Splat16(x) }
func (E16x16) Zero(m Machine) I16x16                         { return m.Zero16() }
func (E16x16) Load(m Machine, s []int16) I16x16              { return m.Load16(s) }
func (E16x16) LoadPartial(m Machine, s []int16) I16x16       { return m.Load16Partial(s) }
func (E16x16) Store(m Machine, dst []int16, v I16x16)        { m.Store16(dst, v) }
func (E16x16) StorePartial(m Machine, dst []int16, v I16x16) { m.Store16Partial(dst, v) }
func (E16x16) AddSat(m Machine, a, b I16x16) I16x16          { return m.AddSat16(a, b) }
func (E16x16) SubSat(m Machine, a, b I16x16) I16x16          { return m.SubSat16(a, b) }
func (E16x16) Max(m Machine, a, b I16x16) I16x16             { return m.Max16(a, b) }
func (E16x16) CmpGt(m Machine, a, b I16x16) I16x16           { return m.CmpGt16(a, b) }
func (E16x16) CmpEq(m Machine, a, b I16x16) I16x16           { return m.CmpEq16(a, b) }
func (E16x16) Blend(m Machine, a, b, mask I16x16) I16x16     { return m.Blend16(a, b, mask) }
func (E16x16) And(m Machine, a, b I16x16) I16x16             { return m.And16(a, b) }
func (E16x16) AndNot(m Machine, a, b I16x16) I16x16          { return m.AndNot16(a, b) }
func (E16x16) Or(m Machine, a, b I16x16) I16x16              { return m.Or16(a, b) }
func (E16x16) MoveMask(m Machine, v I16x16) uint64           { return uint64(m.MoveMask16(v)) }
func (E16x16) ReduceMax(m Machine, v I16x16) int16           { return m.ReduceMax16(v) }

func (E16x16) MaskTail(m Machine, v I16x16, valid int) I16x16 {
	m.T.Add(OpLogic, W256, 1)
	for i := valid; i < 16; i++ {
		v[i] = 0
	}
	return v
}

func (E16x16) ShiftIn(m Machine, v I16x16, n int, fill int16) I16x16 {
	v = m.ShiftLanesLeft16(v, n)
	if fill == 0 {
		return v
	}
	if n == 1 {
		return m.Insert16(v, 0, fill)
	}
	m.T.Add(OpLogic, W256, 1)
	for i := 0; i < n && i < 16; i++ {
		v[i] = fill
	}
	return v
}

func (E16x16) GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) I16x16 {
	iq0 := m.Load32(qMul[qOff:])
	iq1 := m.Load32(qMul[qOff+8:])
	id0 := m.Load32(dRev[dOff:])
	id1 := m.Load32(dRev[dOff+8:])
	g0 := m.Gather32(flat, m.Add32(iq0, id0))
	g1 := m.Gather32(flat, m.Add32(iq1, id1))
	return m.Narrow32To16(g0, g1)
}

func (E16x16) GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) I16x16 {
	iq0 := m.Load32Partial(clipSpan(qMul, qOff, valid))
	iq1 := m.Load32Partial(clipSpan(qMul, qOff+8, valid-8))
	id0 := m.Load32Partial(clipSpan(dRev, dOff, valid))
	id1 := m.Load32Partial(clipSpan(dRev, dOff+8, valid-8))
	g0 := m.Gather32(flat, m.Add32(iq0, id0))
	g1 := m.Gather32(flat, m.Add32(iq1, id1))
	return m.Narrow32To16(g0, g1)
}

func (E16x16) StoreDirs(m Machine, dst []int8, dir I16x16) {
	packed := m.Narrow16To8(dir, I16x16{})
	m.Store8Partial(dst, packed)
}

// E32x8 is the 256-bit 32-bit engine (8 lanes). The 32-bit path never
// saturates for biological sequence lengths, so its "saturating"
// arithmetic is plain modular arithmetic, exactly like the hand-written
// 32-bit kernel.
//
//sw:hotpath
type E32x8 struct{}

func (E32x8) Lanes() int                { return 8 }
func (E32x8) Width() Width              { return W256 }
func (E32x8) HasGather() bool           { return true }
func (E32x8) SupportsFixed() bool       { return false }
func (E32x8) NegInf() int32             { return -1 << 29 }
func (E32x8) SatCeil() int32            { return math.MaxInt32 }
func (E32x8) Clamp(x int32) int32       { return x }
func (E32x8) Lane(v I32x8, i int) int32 { return v[i] }
func (E32x8) SatAdd(a, b int32) int32   { return a + b }
func (E32x8) SatSub(a, b int32) int32   { return a - b }

func (E32x8) Splat(m Machine, x int32) I32x8               { return m.Splat32(x) }
func (E32x8) Zero(m Machine) I32x8                         { return m.Zero32() }
func (E32x8) Load(m Machine, s []int32) I32x8              { return m.Load32(s) }
func (E32x8) LoadPartial(m Machine, s []int32) I32x8       { return m.Load32Partial(s) }
func (E32x8) Store(m Machine, dst []int32, v I32x8)        { m.Store32(dst, v) }
func (E32x8) StorePartial(m Machine, dst []int32, v I32x8) { m.Store32Partial(dst, v) }
func (E32x8) AddSat(m Machine, a, b I32x8) I32x8           { return m.Add32(a, b) }
func (E32x8) SubSat(m Machine, a, b I32x8) I32x8           { return m.Sub32(a, b) }
func (E32x8) Max(m Machine, a, b I32x8) I32x8              { return m.Max32(a, b) }
func (E32x8) CmpGt(m Machine, a, b I32x8) I32x8            { return m.CmpGt32(a, b) }
func (E32x8) CmpEq(m Machine, a, b I32x8) I32x8            { return m.CmpEq32(a, b) }
func (E32x8) Blend(m Machine, a, b, mask I32x8) I32x8      { return m.Blend32(a, b, mask) }
func (E32x8) And(m Machine, a, b I32x8) I32x8              { return m.And32(a, b) }
func (E32x8) AndNot(m Machine, a, b I32x8) I32x8           { return m.AndNot32(a, b) }
func (E32x8) Or(m Machine, a, b I32x8) I32x8               { return m.Or32(a, b) }
func (E32x8) MoveMask(m Machine, v I32x8) uint64           { return uint64(m.MoveMask32(v)) }
func (E32x8) ReduceMax(m Machine, v I32x8) int32           { return m.ReduceMax32(v) }

func (E32x8) MaskTail(m Machine, v I32x8, valid int) I32x8 {
	m.T.Add(OpLogic, W256, 1)
	for i := valid; i < 8; i++ {
		v[i] = 0
	}
	return v
}

func (E32x8) ShiftIn(m Machine, v I32x8, n int, fill int32) I32x8 {
	v = m.ShiftLanesLeft32(v, n)
	if fill == 0 {
		return v
	}
	m.T.Add(OpLogic, W256, 1)
	for i := 0; i < n && i < 8; i++ {
		v[i] = fill
	}
	return v
}

func (E32x8) GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) I32x8 {
	iq := m.Load32(qMul[qOff:])
	id := m.Load32(dRev[dOff:])
	return m.Gather32(flat, m.Add32(iq, id))
}

func (E32x8) GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) I32x8 {
	iq := m.Load32Partial(clipSpan(qMul, qOff, valid))
	id := m.Load32Partial(clipSpan(dRev, dOff, valid))
	return m.Gather32(flat, m.Add32(iq, id))
}

func (E32x8) StoreDirs(m Machine, dst []int8, dir I32x8) {
	panic("vek: traceback is only supported by the 16-bit 256-bit engine")
}

// E8x64 is the 512-bit 8-bit engine (64 lanes).
//
//sw:hotpath
type E8x64 struct{}

func (E8x64) Lanes() int          { return 64 }
func (E8x64) Width() Width        { return W512 }
func (E8x64) HasGather() bool     { return false }
func (E8x64) SupportsFixed() bool { return true }
func (E8x64) NegInf() int8        { return -128 }
func (E8x64) SatCeil() int32      { return 127 }
func (E8x64) Clamp(x int32) int8  { return int8(clampRange(x, -128, 127)) }

func (E8x64) Lane(v I8x64, i int) int8 {
	if i < 32 {
		return v.Lo[i]
	}
	return v.Hi[i-32]
}

func (E8x64) SatAdd(a, b int32) int32 { return clampRange(a+b, -128, 127) }
func (E8x64) SatSub(a, b int32) int32 { return clampRange(a-b, -128, 127) }

func (E8x64) Splat(m Machine, x int8) I8x64               { return m.Splat8W(x) }
func (E8x64) Zero(m Machine) I8x64                        { return m.Zero8W() }
func (E8x64) Load(m Machine, s []int8) I8x64              { return m.Load8W(s) }
func (E8x64) LoadPartial(m Machine, s []int8) I8x64       { return m.Load8WPartial(s) }
func (E8x64) Store(m Machine, dst []int8, v I8x64)        { m.Store8W(dst, v) }
func (E8x64) StorePartial(m Machine, dst []int8, v I8x64) { m.Store8WPartial(dst, v) }
func (E8x64) AddSat(m Machine, a, b I8x64) I8x64          { return m.AddSat8W(a, b) }
func (E8x64) SubSat(m Machine, a, b I8x64) I8x64          { return m.SubSat8W(a, b) }
func (E8x64) Max(m Machine, a, b I8x64) I8x64             { return m.Max8W(a, b) }
func (E8x64) CmpGt(m Machine, a, b I8x64) I8x64           { return m.CmpGt8W(a, b) }
func (E8x64) CmpEq(m Machine, a, b I8x64) I8x64           { return m.CmpEq8W(a, b) }
func (E8x64) Blend(m Machine, a, b, mask I8x64) I8x64     { return m.Blend8W(a, b, mask) }
func (E8x64) And(m Machine, a, b I8x64) I8x64             { return m.And8W(a, b) }
func (E8x64) AndNot(m Machine, a, b I8x64) I8x64          { return m.AndNot8W(a, b) }
func (E8x64) Or(m Machine, a, b I8x64) I8x64              { return m.Or8W(a, b) }
func (E8x64) MoveMask(m Machine, v I8x64) uint64          { return m.MoveMask8W(v) }
func (E8x64) ReduceMax(m Machine, v I8x64) int8           { return m.ReduceMax8W(v) }

func (E8x64) MaskTail(m Machine, v I8x64, valid int) I8x64 {
	m.T.Add(OpLogic, W512, 1)
	for i := valid; i < 64; i++ {
		if i < 32 {
			v.Lo[i] = 0
		} else {
			v.Hi[i-32] = 0
		}
	}
	return v
}

func (E8x64) ShiftIn(m Machine, v I8x64, n int, fill int8) I8x64 {
	v = m.ShiftLanesLeft8W(v, n)
	if fill == 0 {
		return v
	}
	if n == 1 {
		m.T.Add(OpUnpack, W512, 1)
	} else {
		m.T.Add(OpLogic, W512, 1)
	}
	for i := 0; i < n && i < 32; i++ {
		v.Lo[i] = fill
	}
	for i := 32; i < n && i < 64; i++ {
		v.Hi[i-32] = fill
	}
	return v
}

func (E8x64) GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) I8x64 {
	panic("vek: 8-bit engines score via query profile, not gather")
}

func (E8x64) GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) I8x64 {
	panic("vek: 8-bit engines score via query profile, not gather")
}

func (E8x64) StoreDirs(m Machine, dst []int8, dir I8x64) {
	panic("vek: traceback is only supported by the 16-bit 256-bit engine")
}

// E16x32 is the 512-bit 16-bit engine (32 lanes).
//
//sw:hotpath
type E16x32 struct{}

func (E16x32) Lanes() int          { return 32 }
func (E16x32) Width() Width        { return W512 }
func (E16x32) HasGather() bool     { return true }
func (E16x32) SupportsFixed() bool { return true }
func (E16x32) NegInf() int16       { return -30000 }
func (E16x32) SatCeil() int32      { return 32767 }
func (E16x32) Clamp(x int32) int16 { return int16(clampRange(x, -32768, 32767)) }

func (E16x32) Lane(v I16x32, i int) int16 {
	if i < 16 {
		return v.Lo[i]
	}
	return v.Hi[i-16]
}

func (E16x32) SatAdd(a, b int32) int32 { return clampRange(a+b, -32768, 32767) }
func (E16x32) SatSub(a, b int32) int32 { return clampRange(a-b, -32768, 32767) }

func (E16x32) Splat(m Machine, x int16) I16x32               { return m.Splat16W(x) }
func (E16x32) Zero(m Machine) I16x32                         { return m.Zero16W() }
func (E16x32) Load(m Machine, s []int16) I16x32              { return m.Load16W(s) }
func (E16x32) LoadPartial(m Machine, s []int16) I16x32       { return m.Load16WPartial(s) }
func (E16x32) Store(m Machine, dst []int16, v I16x32)        { m.Store16W(dst, v) }
func (E16x32) StorePartial(m Machine, dst []int16, v I16x32) { m.Store16WPartial(dst, v) }
func (E16x32) AddSat(m Machine, a, b I16x32) I16x32          { return m.AddSat16W(a, b) }
func (E16x32) SubSat(m Machine, a, b I16x32) I16x32          { return m.SubSat16W(a, b) }
func (E16x32) Max(m Machine, a, b I16x32) I16x32             { return m.Max16W(a, b) }
func (E16x32) CmpGt(m Machine, a, b I16x32) I16x32           { return m.CmpGt16W(a, b) }
func (E16x32) CmpEq(m Machine, a, b I16x32) I16x32           { return m.CmpEq16W(a, b) }
func (E16x32) Blend(m Machine, a, b, mask I16x32) I16x32     { return m.Blend16W(a, b, mask) }
func (E16x32) And(m Machine, a, b I16x32) I16x32             { return m.And16W(a, b) }
func (E16x32) AndNot(m Machine, a, b I16x32) I16x32          { return m.AndNot16W(a, b) }
func (E16x32) Or(m Machine, a, b I16x32) I16x32              { return m.Or16W(a, b) }
func (E16x32) MoveMask(m Machine, v I16x32) uint64           { return m.MoveMask16W(v) }
func (E16x32) ReduceMax(m Machine, v I16x32) int16           { return m.ReduceMax16W(v) }

func (E16x32) MaskTail(m Machine, v I16x32, valid int) I16x32 {
	m.T.Add(OpLogic, W512, 1)
	for i := valid; i < 32; i++ {
		if i < 16 {
			v.Lo[i] = 0
		} else {
			v.Hi[i-16] = 0
		}
	}
	return v
}

func (E16x32) ShiftIn(m Machine, v I16x32, n int, fill int16) I16x32 {
	v = m.ShiftLanesLeft16W(v, n)
	if fill == 0 {
		return v
	}
	if n == 1 {
		m.T.Add(OpUnpack, W512, 1)
	} else {
		m.T.Add(OpLogic, W512, 1)
	}
	for i := 0; i < n && i < 16; i++ {
		v.Lo[i] = fill
	}
	for i := 16; i < n && i < 32; i++ {
		v.Hi[i-16] = fill
	}
	return v
}

func (E16x32) GatherScores(m Machine, flat, qMul, dRev []int32, qOff, dOff int) I16x32 {
	qA := m.Load32(qMul[qOff:])
	qB := m.Load32(qMul[qOff+8:])
	qC := m.Load32(qMul[qOff+16:])
	qD := m.Load32(qMul[qOff+24:])
	dA := m.Load32(dRev[dOff:])
	dB := m.Load32(dRev[dOff+8:])
	dC := m.Load32(dRev[dOff+16:])
	dD := m.Load32(dRev[dOff+24:])
	gA, gB := m.Gather32W(flat, m.Add32(qA, dA), m.Add32(qB, dB))
	gC, gD := m.Gather32W(flat, m.Add32(qC, dC), m.Add32(qD, dD))
	return I16x32{Lo: m.Narrow32To16(gA, gB), Hi: m.Narrow32To16(gC, gD)}
}

func (E16x32) GatherScoresPartial(m Machine, flat, qMul, dRev []int32, qOff, dOff, valid int) I16x32 {
	qA := m.Load32Partial(clipSpan(qMul, qOff, valid))
	qB := m.Load32Partial(clipSpan(qMul, qOff+8, valid-8))
	qC := m.Load32Partial(clipSpan(qMul, qOff+16, valid-16))
	qD := m.Load32Partial(clipSpan(qMul, qOff+24, valid-24))
	dA := m.Load32Partial(clipSpan(dRev, dOff, valid))
	dB := m.Load32Partial(clipSpan(dRev, dOff+8, valid-8))
	dC := m.Load32Partial(clipSpan(dRev, dOff+16, valid-16))
	dD := m.Load32Partial(clipSpan(dRev, dOff+24, valid-24))
	gA, gB := m.Gather32W(flat, m.Add32(qA, dA), m.Add32(qB, dB))
	gC, gD := m.Gather32W(flat, m.Add32(qC, dC), m.Add32(qD, dD))
	return I16x32{Lo: m.Narrow32To16(gA, gB), Hi: m.Narrow32To16(gC, gD)}
}

func (E16x32) StoreDirs(m Machine, dst []int8, dir I16x32) {
	panic("vek: traceback is only supported by the 16-bit 256-bit engine")
}

// Compile-time checks that every engine satisfies the interface.
var (
	_ Engine[I8x32, int8]   = E8x32{}
	_ Engine[I16x16, int16] = E16x16{}
	_ Engine[I32x8, int32]  = E32x8{}
	_ Engine[I8x64, int8]   = E8x64{}
	_ Engine[I16x32, int16] = E16x32{}
)
