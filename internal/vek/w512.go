package vek

// 512-bit register types model AVX-512. They are composed of two
// 256-bit halves but each operation is charged as a single 512-bit
// issue: the cost model applies AVX-512 port widths and license-based
// frequency reduction separately (see internal/isa), which is how the
// paper's Fig. 6 finding — AVX-512 does not deliver 2× — emerges.

// I8x64 is a 512-bit register with 64 signed 8-bit lanes.
type I8x64 struct {
	// Lo holds lanes 0..31, Hi lanes 32..63.
	Lo, Hi I8x32
}

// I16x32 is a 512-bit register with 32 signed 16-bit lanes.
type I16x32 struct {
	// Lo holds lanes 0..15, Hi lanes 16..31.
	Lo, Hi I16x16
}

// Splat8W broadcasts x to all 64 lanes.
func (m Machine) Splat8W(x int8) I8x64 {
	m.T.inc512(OpBroadcast)
	h := Bare.Splat8(x)
	return I8x64{Lo: h, Hi: h}
}

// Zero8W returns the all-zero 512-bit register.
func (m Machine) Zero8W() I8x64 { return I8x64{} }

// Load8WPartial loads min(len(s), 64) elements, zero-filling the rest.
func (m Machine) Load8WPartial(s []int8) I8x64 {
	m.T.inc512(OpLoad)
	var v I8x64
	n := len(s)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if i < 32 {
			v.Lo[i] = s[i]
		} else {
			v.Hi[i-32] = s[i]
		}
	}
	return v
}

// Store8WPartial stores the first min(len(dst), 64) lanes of v.
func (m Machine) Store8WPartial(dst []int8, v I8x64) {
	m.T.inc512(OpStore)
	n := len(dst)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		if i < 32 {
			dst[i] = v.Lo[i]
		} else {
			dst[i] = v.Hi[i-32]
		}
	}
}

// AddSat8W returns a+b with signed saturation across all 64 lanes.
func (m Machine) AddSat8W(a, b I8x64) I8x64 {
	m.T.inc512(OpAddSat8)
	return I8x64{Lo: Bare.AddSat8(a.Lo, b.Lo), Hi: Bare.AddSat8(a.Hi, b.Hi)}
}

// SubSat8W returns a-b with signed saturation.
func (m Machine) SubSat8W(a, b I8x64) I8x64 {
	m.T.inc512(OpSubSat8)
	return I8x64{Lo: Bare.SubSat8(a.Lo, b.Lo), Hi: Bare.SubSat8(a.Hi, b.Hi)}
}

// Max8W returns the lane-wise signed maximum.
func (m Machine) Max8W(a, b I8x64) I8x64 {
	m.T.inc512(OpMax8)
	return I8x64{Lo: Bare.Max8(a.Lo, b.Lo), Hi: Bare.Max8(a.Hi, b.Hi)}
}

// ReduceMax8W returns the maximum lane value.
func (m Machine) ReduceMax8W(a I8x64) int8 {
	m.T.inc512(OpReduce)
	lo := Bare.ReduceMax8(a.Lo)
	hi := Bare.ReduceMax8(a.Hi)
	if lo > hi {
		return lo
	}
	return hi
}

// ShiftLanesLeft8W shifts left by n byte lanes, zero-filling lane 0.
// AVX-512 performs this with valignd/vpermb; one issue.
func (m Machine) ShiftLanesLeft8W(a I8x64, n int) I8x64 {
	m.T.inc512(OpLaneShift)
	var flat [64]int8
	copy(flat[:32], a.Lo[:])
	copy(flat[32:], a.Hi[:])
	var out [64]int8
	if n >= 0 && n < 64 {
		copy(out[n:], flat[:64-n])
	}
	var v I8x64
	copy(v.Lo[:], out[:32])
	copy(v.Hi[:], out[32:])
	return v
}

// Splat16W broadcasts x to all 32 lanes.
func (m Machine) Splat16W(x int16) I16x32 {
	m.T.inc512(OpBroadcast)
	h := Bare.Splat16(x)
	return I16x32{Lo: h, Hi: h}
}

// Zero16W returns the all-zero 512-bit register.
func (m Machine) Zero16W() I16x32 { return I16x32{} }

// Load16WPartial loads min(len(s), 32) elements, zero-filling the rest.
func (m Machine) Load16WPartial(s []int16) I16x32 {
	m.T.inc512(OpLoad)
	var v I16x32
	n := len(s)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		if i < 16 {
			v.Lo[i] = s[i]
		} else {
			v.Hi[i-16] = s[i]
		}
	}
	return v
}

// Store16WPartial stores the first min(len(dst), 32) lanes of v.
func (m Machine) Store16WPartial(dst []int16, v I16x32) {
	m.T.inc512(OpStore)
	n := len(dst)
	if n > 32 {
		n = 32
	}
	for i := 0; i < n; i++ {
		if i < 16 {
			dst[i] = v.Lo[i]
		} else {
			dst[i] = v.Hi[i-16]
		}
	}
}

// AddSat16W returns a+b with signed saturation.
func (m Machine) AddSat16W(a, b I16x32) I16x32 {
	m.T.inc512(OpAddSat16)
	return I16x32{Lo: Bare.AddSat16(a.Lo, b.Lo), Hi: Bare.AddSat16(a.Hi, b.Hi)}
}

// SubSat16W returns a-b with signed saturation.
func (m Machine) SubSat16W(a, b I16x32) I16x32 {
	m.T.inc512(OpSubSat16)
	return I16x32{Lo: Bare.SubSat16(a.Lo, b.Lo), Hi: Bare.SubSat16(a.Hi, b.Hi)}
}

// Max16W returns the lane-wise signed maximum.
func (m Machine) Max16W(a, b I16x32) I16x32 {
	m.T.inc512(OpMax16)
	return I16x32{Lo: Bare.Max16(a.Lo, b.Lo), Hi: Bare.Max16(a.Hi, b.Hi)}
}

// ReduceMax16W returns the maximum lane value.
func (m Machine) ReduceMax16W(a I16x32) int16 {
	m.T.inc512(OpReduce)
	lo := Bare.ReduceMax16(a.Lo)
	hi := Bare.ReduceMax16(a.Hi)
	if lo > hi {
		return lo
	}
	return hi
}

// ShiftLanesLeft16W shifts left by n 16-bit lanes, zero-filling lane 0.
func (m Machine) ShiftLanesLeft16W(a I16x32, n int) I16x32 {
	m.T.inc512(OpLaneShift)
	var flat [32]int16
	copy(flat[:16], a.Lo[:])
	copy(flat[16:], a.Hi[:])
	var out [32]int16
	if n >= 0 && n < 32 {
		copy(out[n:], flat[:32-n])
	}
	var v I16x32
	copy(v.Lo[:], out[:16])
	copy(v.Hi[:], out[16:])
	return v
}

// Gather32W performs a 16-lane vpgatherdd into two I32x8 halves,
// charged as one 512-bit gather.
func (m Machine) Gather32W(table []int32, idxLo, idxHi I32x8) (I32x8, I32x8) {
	m.T.inc512(OpGather32)
	return Bare.Gather32(table, idxLo), Bare.Gather32(table, idxHi)
}

// Load8W loads the first 64 elements of s (vmovdqu8).
func (m Machine) Load8W(s []int8) I8x64 {
	m.T.inc512(OpLoad)
	return I8x64{Lo: Bare.Load8(s[:32]), Hi: Bare.Load8(s[32:64])}
}

// Store8W stores v into the first 64 elements of dst.
func (m Machine) Store8W(dst []int8, v I8x64) {
	m.T.inc512(OpStore)
	Bare.Store8(dst[:32], v.Lo)
	Bare.Store8(dst[32:64], v.Hi)
}

// CmpGt8W returns -1 in lanes where a>b, else 0. AVX-512 compares
// produce mask registers; the emulation keeps the AVX2-style full-width
// mask vector, charged as one 512-bit compare.
func (m Machine) CmpGt8W(a, b I8x64) I8x64 {
	m.T.inc512(OpCmpGt8)
	return I8x64{Lo: Bare.CmpGt8(a.Lo, b.Lo), Hi: Bare.CmpGt8(a.Hi, b.Hi)}
}

// CmpEq8W returns -1 in lanes where a==b, else 0.
func (m Machine) CmpEq8W(a, b I8x64) I8x64 {
	m.T.inc512(OpCmpEq8)
	return I8x64{Lo: Bare.CmpEq8(a.Lo, b.Lo), Hi: Bare.CmpEq8(a.Hi, b.Hi)}
}

// Blend8W selects b where the mask lane is negative, else a.
func (m Machine) Blend8W(a, b, mask I8x64) I8x64 {
	m.T.inc512(OpBlend)
	return I8x64{Lo: Bare.Blend8(a.Lo, b.Lo, mask.Lo), Hi: Bare.Blend8(a.Hi, b.Hi, mask.Hi)}
}

// And8W returns the bitwise AND.
func (m Machine) And8W(a, b I8x64) I8x64 {
	m.T.inc512(OpLogic)
	return I8x64{Lo: Bare.And8(a.Lo, b.Lo), Hi: Bare.And8(a.Hi, b.Hi)}
}

// Or8W returns the bitwise OR.
func (m Machine) Or8W(a, b I8x64) I8x64 {
	m.T.inc512(OpLogic)
	return I8x64{Lo: Bare.Or8(a.Lo, b.Lo), Hi: Bare.Or8(a.Hi, b.Hi)}
}

// AndNot8W returns a &^ b.
func (m Machine) AndNot8W(a, b I8x64) I8x64 {
	m.T.inc512(OpLogic)
	return I8x64{Lo: Bare.AndNot8(a.Lo, b.Lo), Hi: Bare.AndNot8(a.Hi, b.Hi)}
}

// MoveMask8W packs the sign bit of all 64 lanes into a 64-bit mask.
func (m Machine) MoveMask8W(a I8x64) uint64 {
	m.T.inc512(OpMoveMask)
	return uint64(Bare.MoveMask8(a.Lo)) | uint64(Bare.MoveMask8(a.Hi))<<32
}

// Shuffle8W performs the in-lane byte shuffle on each 128-bit quarter
// independently (vpshufb zmm semantics), charged as one 512-bit issue.
func (m Machine) Shuffle8W(table, idx I8x64) I8x64 {
	m.T.inc512(OpShuffle)
	return I8x64{Lo: Bare.Shuffle8(table.Lo, idx.Lo), Hi: Bare.Shuffle8(table.Hi, idx.Hi)}
}

// Load16W loads the first 32 elements of s (vmovdqu16).
func (m Machine) Load16W(s []int16) I16x32 {
	m.T.inc512(OpLoad)
	return I16x32{Lo: Bare.Load16(s[:16]), Hi: Bare.Load16(s[16:32])}
}

// Store16W stores v into the first 32 elements of dst.
func (m Machine) Store16W(dst []int16, v I16x32) {
	m.T.inc512(OpStore)
	Bare.Store16(dst[:16], v.Lo)
	Bare.Store16(dst[16:32], v.Hi)
}

// CmpGt16W returns -1 in lanes where a>b, else 0.
func (m Machine) CmpGt16W(a, b I16x32) I16x32 {
	m.T.inc512(OpCmpGt16)
	return I16x32{Lo: Bare.CmpGt16(a.Lo, b.Lo), Hi: Bare.CmpGt16(a.Hi, b.Hi)}
}

// CmpEq16W returns -1 in lanes where a==b, else 0.
func (m Machine) CmpEq16W(a, b I16x32) I16x32 {
	m.T.inc512(OpCmpEq8) // same port/latency class as the byte compare
	return I16x32{Lo: Bare.CmpEq16(a.Lo, b.Lo), Hi: Bare.CmpEq16(a.Hi, b.Hi)}
}

// Blend16W selects b where the mask lane is negative, else a.
func (m Machine) Blend16W(a, b, mask I16x32) I16x32 {
	m.T.inc512(OpBlend)
	return I16x32{Lo: Bare.Blend16(a.Lo, b.Lo, mask.Lo), Hi: Bare.Blend16(a.Hi, b.Hi, mask.Hi)}
}

// And16W returns the bitwise AND.
func (m Machine) And16W(a, b I16x32) I16x32 {
	m.T.inc512(OpLogic)
	return I16x32{Lo: Bare.And16(a.Lo, b.Lo), Hi: Bare.And16(a.Hi, b.Hi)}
}

// Or16W returns the bitwise OR.
func (m Machine) Or16W(a, b I16x32) I16x32 {
	m.T.inc512(OpLogic)
	return I16x32{Lo: Bare.Or16(a.Lo, b.Lo), Hi: Bare.Or16(a.Hi, b.Hi)}
}

// AndNot16W returns a &^ b.
func (m Machine) AndNot16W(a, b I16x32) I16x32 {
	m.T.inc512(OpLogic)
	return I16x32{Lo: Bare.AndNot16(a.Lo, b.Lo), Hi: Bare.AndNot16(a.Hi, b.Hi)}
}

// MoveMask16W packs the sign bit of all 32 lanes into a 32-bit mask,
// charged like its 256-bit counterpart (movemask + unpack).
func (m Machine) MoveMask16W(a I16x32) uint64 {
	m.T.inc512(OpMoveMask)
	m.T.inc512(OpUnpack)
	var mask uint64
	for i := 0; i < 16; i++ {
		if a.Lo[i] < 0 {
			mask |= 1 << uint(i)
		}
		if a.Hi[i] < 0 {
			mask |= 1 << uint(16+i)
		}
	}
	return mask
}

// Widen8To16W sign-extends the low (half 0) or high (half 1) 32 byte
// lanes of a into a full 16-bit register (vpmovsxbw zmm).
func (m Machine) Widen8To16W(a I8x64, half int) I16x32 {
	m.T.inc512(OpUnpack)
	src := a.Lo
	if half == 1 {
		src = a.Hi
	}
	return I16x32{Lo: Bare.Widen8To16(src, 0), Hi: Bare.Widen8To16(src, 1)}
}
