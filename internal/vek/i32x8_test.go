package vek

import (
	"testing"
	"testing/quick"
)

func TestAdd32Property(t *testing.T) {
	f := func(a, b I32x8) bool {
		add := Bare.Add32(a, b)
		sub := Bare.Sub32(a, b)
		for i := range a {
			if add[i] != a[i]+b[i] || sub[i] != a[i]-b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax32Property(t *testing.T) {
	f := func(a, b I32x8) bool {
		mx := Bare.Max32(a, b)
		for i := range mx {
			want := a[i]
			if b[i] > a[i] {
				want = b[i]
			}
			if mx[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpBlend32(t *testing.T) {
	a := I32x8{1, 5, 3, 9, 0, -2, 7, 7}
	b := I32x8{2, 4, 3, 10, -1, -1, 7, 8}
	mask := Bare.CmpGt32(b, a)
	got := Bare.Blend32(a, b, mask)
	if got != Bare.Max32(a, b) {
		t.Fatalf("blend-by-cmp != max: %v", got)
	}
}

func TestReduceMax32(t *testing.T) {
	a := I32x8{-5, 100, 3, 99, -200, 100, 0, 1}
	if got := Bare.ReduceMax32(a); got != 100 {
		t.Fatalf("reduce = %d, want 100", got)
	}
}

func TestGather32(t *testing.T) {
	table := make([]int32, 64)
	for i := range table {
		table[i] = int32(i * 10)
	}
	idx := I32x8{0, 5, 63, 1, 2, 33, 10, 7}
	got := Bare.Gather32(table, idx)
	for i, j := range idx {
		if got[i] != table[j] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], table[j])
		}
	}
}

func TestGather32OutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range gather index")
		}
	}()
	table := make([]int32, 4)
	Bare.Gather32(table, I32x8{0, 1, 2, 4, 0, 0, 0, 0})
}

func TestGatherMasked32(t *testing.T) {
	table := []int32{100, 200, 300}
	src := Bare.Splat32(-9)
	idx := I32x8{0, 1, 2, 0, 1, 2, 0, 1}
	var mask I32x8
	mask[0] = -1
	mask[2] = -1
	got := Bare.GatherMasked32(src, table, idx, mask)
	want := I32x8{100, -9, 300, -9, -9, -9, -9, -9}
	if got != want {
		t.Fatalf("masked gather = %v, want %v", got, want)
	}
}

func TestPermute32(t *testing.T) {
	a := I32x8{10, 11, 12, 13, 14, 15, 16, 17}
	idx := I32x8{7, 6, 5, 4, 3, 2, 1, 0}
	got := Bare.Permute32(a, idx)
	want := I32x8{17, 16, 15, 14, 13, 12, 11, 10}
	if got != want {
		t.Fatalf("permute = %v, want %v", got, want)
	}
	// Index wraps modulo 8 as vpermd only reads 3 bits.
	got = Bare.Permute32(a, I32x8{8, 9, 10, 11, 12, 13, 14, 15})
	if got != a {
		t.Fatalf("wrapped permute = %v, want %v", got, a)
	}
}

func TestShiftLanes32(t *testing.T) {
	a := I32x8{1, 2, 3, 4, 5, 6, 7, 8}
	r := Bare.ShiftLanesRight32(a, 1)
	if r != (I32x8{2, 3, 4, 5, 6, 7, 8, 0}) {
		t.Fatalf("right shift = %v", r)
	}
	l := Bare.ShiftLanesLeft32(a, 1)
	if l != (I32x8{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("left shift = %v", l)
	}
}

func TestWiden16To32AndBack(t *testing.T) {
	var a I16x16
	for i := range a {
		a[i] = int16(i*1000 - 8000)
	}
	lo := Bare.Widen16To32(a, 0)
	hi := Bare.Widen16To32(a, 1)
	back := Bare.Narrow32To16(lo, hi)
	if back != a {
		t.Fatalf("round trip = %v, want %v", back, a)
	}
}

func TestNarrow32To16Saturates(t *testing.T) {
	lo := Bare.Splat32(1 << 20)
	hi := Bare.Splat32(-(1 << 20))
	v := Bare.Narrow32To16(lo, hi)
	for i := 0; i < 8; i++ {
		if v[i] != 32767 {
			t.Fatalf("lane %d = %d, want 32767", i, v[i])
		}
		if v[8+i] != -32768 {
			t.Fatalf("lane %d = %d, want -32768", 8+i, v[8+i])
		}
	}
}

func TestLoadStore32Partial(t *testing.T) {
	v := Bare.Load32Partial([]int32{5})
	if v[0] != 5 || v[1] != 0 {
		t.Fatalf("partial load wrong: %v", v)
	}
	dst := make([]int32, 1)
	Bare.Store32Partial(dst, Bare.Splat32(11))
	if dst[0] != 11 {
		t.Fatalf("partial store wrong: %v", dst)
	}
}
