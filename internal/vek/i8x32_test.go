package vek

import (
	"testing"
	"testing/quick"
)

func TestSplat8(t *testing.T) {
	m, tal := NewMachine()
	v := m.Splat8(-7)
	for i, x := range v {
		if x != -7 {
			t.Fatalf("lane %d = %d, want -7", i, x)
		}
	}
	if tal.N256[OpBroadcast] != 1 {
		t.Fatalf("broadcast count = %d, want 1", tal.N256[OpBroadcast])
	}
}

func TestAddSat8Saturates(t *testing.T) {
	m := Bare
	a := m.Splat8(120)
	b := m.Splat8(100)
	v := m.AddSat8(a, b)
	for i, x := range v {
		if x != 127 {
			t.Fatalf("lane %d = %d, want 127", i, x)
		}
	}
	v = m.SubSat8(m.Splat8(-120), m.Splat8(100))
	for i, x := range v {
		if x != -128 {
			t.Fatalf("lane %d = %d, want -128", i, x)
		}
	}
}

func TestAddSat8Property(t *testing.T) {
	f := func(a, b I8x32) bool {
		v := Bare.AddSat8(a, b)
		for i := range v {
			s := int32(a[i]) + int32(b[i])
			if s > 127 {
				s = 127
			}
			if s < -128 {
				s = -128
			}
			if int32(v[i]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubSat8Property(t *testing.T) {
	f := func(a, b I8x32) bool {
		v := Bare.SubSat8(a, b)
		for i := range v {
			s := int32(a[i]) - int32(b[i])
			if s > 127 {
				s = 127
			}
			if s < -128 {
				s = -128
			}
			if int32(v[i]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin8Property(t *testing.T) {
	f := func(a, b I8x32) bool {
		mx := Bare.Max8(a, b)
		mn := Bare.Min8(a, b)
		for i := range mx {
			wantMax, wantMin := a[i], a[i]
			if b[i] > a[i] {
				wantMax = b[i]
			}
			if b[i] < a[i] {
				wantMin = b[i]
			}
			if mx[i] != wantMax || mn[i] != wantMin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpBlend8Property(t *testing.T) {
	// max(a,b) must equal blend(a, b, cmpgt(b, a)).
	f := func(a, b I8x32) bool {
		mask := Bare.CmpGt8(b, a)
		blended := Bare.Blend8(a, b, mask)
		mx := Bare.Max8(a, b)
		return blended == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpEq8(t *testing.T) {
	a := I8x32{0: 5, 3: -2}
	b := I8x32{0: 5, 3: 2}
	v := Bare.CmpEq8(a, b)
	if v[0] != -1 {
		t.Errorf("lane 0 = %d, want -1", v[0])
	}
	if v[3] != 0 {
		t.Errorf("lane 3 = %d, want 0", v[3])
	}
	// Untouched lanes are both zero, hence equal.
	if v[1] != -1 {
		t.Errorf("lane 1 = %d, want -1", v[1])
	}
}

func TestLogic8Property(t *testing.T) {
	f := func(a, b I8x32) bool {
		and := Bare.And8(a, b)
		or := Bare.Or8(a, b)
		xor := Bare.Xor8(a, b)
		for i := range a {
			if and[i] != a[i]&b[i] || or[i] != a[i]|b[i] || xor[i] != a[i]^b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoveMask8(t *testing.T) {
	var a I8x32
	a[0] = -1
	a[31] = -128
	a[5] = 127 // positive: not in mask
	got := Bare.MoveMask8(a)
	want := uint32(1) | uint32(1)<<31
	if got != want {
		t.Fatalf("movemask = %#x, want %#x", got, want)
	}
}

func TestReduceMax8Property(t *testing.T) {
	f := func(a I8x32) bool {
		got := Bare.ReduceMax8(a)
		best := a[0]
		for _, x := range a[1:] {
			if x > best {
				best = x
			}
		}
		return got == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffle8InLaneSemantics(t *testing.T) {
	// vpshufb must not cross the 128-bit boundary: an index of 0 in the
	// high half selects table[16], not table[0].
	var table I8x32
	for i := range table {
		table[i] = int8(i)
	}
	var idx I8x32
	// idx all zeros: low half lanes get table[0]=0, high half table[16]=16.
	got := Bare.Shuffle8(table, idx)
	for i := 0; i < 16; i++ {
		if got[i] != 0 {
			t.Fatalf("low lane %d = %d, want 0", i, got[i])
		}
	}
	for i := 16; i < 32; i++ {
		if got[i] != 16 {
			t.Fatalf("high lane %d = %d, want 16", i, got[i])
		}
	}
}

func TestShuffle8HighBitZeroes(t *testing.T) {
	table := Bare.Splat8(42)
	var idx I8x32
	for i := range idx {
		idx[i] = -1 // high bit set: zero the output lane
	}
	got := Bare.Shuffle8(table, idx)
	if got != (I8x32{}) {
		t.Fatalf("expected all-zero result, got %v", got)
	}
}

func TestShuffle8Property(t *testing.T) {
	f := func(table, idx I8x32) bool {
		got := Bare.Shuffle8(table, idx)
		for half := 0; half < 2; half++ {
			base := half * 16
			for i := 0; i < 16; i++ {
				j := idx[base+i]
				var want int8
				if j >= 0 {
					want = table[base+int(j&0x0F)]
				}
				if got[base+i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftLanes8(t *testing.T) {
	var a I8x32
	for i := range a {
		a[i] = int8(i + 1)
	}
	r := Bare.ShiftLanesRight8(a, 3)
	for i := 0; i < 29; i++ {
		if r[i] != a[i+3] {
			t.Fatalf("right shift lane %d = %d, want %d", i, r[i], a[i+3])
		}
	}
	for i := 29; i < 32; i++ {
		if r[i] != 0 {
			t.Fatalf("right shift lane %d = %d, want 0", i, r[i])
		}
	}
	l := Bare.ShiftLanesLeft8(a, 3)
	for i := 0; i < 3; i++ {
		if l[i] != 0 {
			t.Fatalf("left shift lane %d = %d, want 0", i, l[i])
		}
	}
	for i := 3; i < 32; i++ {
		if l[i] != a[i-3] {
			t.Fatalf("left shift lane %d = %d, want %d", i, l[i], a[i-3])
		}
	}
}

func TestShiftLanes8RoundTripProperty(t *testing.T) {
	// Shifting left then right by the same amount zeroes the top lanes
	// and keeps the rest.
	f := func(a I8x32) bool {
		const n = 5
		rt := Bare.ShiftLanesRight8(Bare.ShiftLanesLeft8(a, n), n)
		for i := 0; i < 32-n; i++ {
			if rt[i] != a[i] {
				return false
			}
		}
		for i := 32 - n; i < 32; i++ {
			if rt[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftLanes8OutOfRange(t *testing.T) {
	a := Bare.Splat8(9)
	if Bare.ShiftLanesRight8(a, 32) != (I8x32{}) {
		t.Error("shift by 32 should produce zero register")
	}
	if Bare.ShiftLanesLeft8(a, -1) != (I8x32{}) {
		t.Error("negative shift should produce zero register")
	}
}

func TestLoadStore8Partial(t *testing.T) {
	src := []int8{1, 2, 3}
	v := Bare.Load8Partial(src)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 || v[3] != 0 || v[31] != 0 {
		t.Fatalf("partial load wrong: %v", v)
	}
	dst := make([]int8, 3)
	Bare.Store8Partial(dst, Bare.Splat8(7))
	for _, x := range dst {
		if x != 7 {
			t.Fatalf("partial store wrong: %v", dst)
		}
	}
}

func TestInsertExtract8(t *testing.T) {
	v := Bare.Splat8(1)
	v = Bare.Insert8(v, 13, -5)
	if got := Bare.Extract8(v, 13); got != -5 {
		t.Fatalf("extract = %d, want -5", got)
	}
	if got := Bare.Extract8(v, 12); got != 1 {
		t.Fatalf("extract = %d, want 1", got)
	}
}

func TestTallyCounts(t *testing.T) {
	m, tal := NewMachine()
	a := m.Splat8(1)
	b := m.Splat8(2)
	_ = m.AddSat8(a, b)
	_ = m.AddSat8(a, b)
	_ = m.Max8(a, b)
	if tal.N256[OpAddSat8] != 2 {
		t.Errorf("addsat8 = %d, want 2", tal.N256[OpAddSat8])
	}
	if tal.N256[OpMax8] != 1 {
		t.Errorf("max8 = %d, want 1", tal.N256[OpMax8])
	}
	if tal.N256[OpBroadcast] != 2 {
		t.Errorf("broadcast = %d, want 2", tal.N256[OpBroadcast])
	}
	if tal.Total() != 5 {
		t.Errorf("total = %d, want 5", tal.Total())
	}
}

func TestTallyMergeReset(t *testing.T) {
	var a, b Tally
	a.N256[OpLoad] = 3
	b.N256[OpLoad] = 4
	b.N512[OpStore] = 2
	a.Merge(&b)
	if a.N256[OpLoad] != 7 || a.N512[OpStore] != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatalf("reset did not zero: %+v", a)
	}
}

func TestTallyNilSafe(t *testing.T) {
	var tal *Tally
	tal.Add(OpLoad, W256, 5)
	tal.Merge(&Tally{})
	tal.Reset()
	if tal.Total() != 0 {
		t.Fatal("nil tally total should be 0")
	}
	// Ops on a machine with nil tally must still compute.
	v := Bare.AddSat8(Bare.Splat8(3), Bare.Splat8(4))
	if v[0] != 7 {
		t.Fatalf("bare machine compute wrong: %d", v[0])
	}
}

func TestVectorTotalExcludesScalar(t *testing.T) {
	var tal Tally
	tal.Add(OpScalar, W256, 10)
	tal.Add(OpAddSat8, W256, 3)
	if tal.VectorTotal() != 3 {
		t.Fatalf("vector total = %d, want 3", tal.VectorTotal())
	}
	if tal.Total() != 13 {
		t.Fatalf("total = %d, want 13", tal.Total())
	}
}

func TestOpString(t *testing.T) {
	if OpAddSat8.String() != "addsat8" {
		t.Errorf("OpAddSat8 name = %q", OpAddSat8.String())
	}
	if Op(200).String() != "op?" {
		t.Errorf("unknown op name = %q", Op(200).String())
	}
	for i := 0; i < NumOps; i++ {
		if Op(i).String() == "" {
			t.Errorf("op %d has empty name", i)
		}
	}
}

func TestLoadStore8Full(t *testing.T) {
	src := make([]int8, 40)
	for i := range src {
		src[i] = int8(i - 20)
	}
	v := Bare.Load8(src)
	for i := 0; i < 32; i++ {
		if v[i] != src[i] {
			t.Fatalf("lane %d wrong", i)
		}
	}
	dst := make([]int8, 32)
	Bare.Store8(dst, v)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("store lane %d wrong", i)
		}
	}
	if Bare.Zero8() != (I8x32{}) {
		t.Error("Zero8 not zero")
	}
	if Bare.Zero32() != (I32x8{}) {
		t.Error("Zero32 not zero")
	}
	if Bare.Zero16() != (I16x16{}) {
		t.Error("Zero16 not zero")
	}
}

func TestLoadStore32Full(t *testing.T) {
	src := []int32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	v := Bare.Load32(src)
	dst := make([]int32, 8)
	Bare.Store32(dst, v)
	for i := 0; i < 8; i++ {
		if dst[i] != src[i] {
			t.Fatalf("lane %d wrong", i)
		}
	}
}
