package vek

// I16x16 is a 256-bit register holding 16 signed 16-bit lanes, used by
// the 16-bit kernels (16 cells per instruction) and as the escalation
// target when 8-bit scores saturate.
type I16x16 [16]int16

// Splat16 broadcasts x to all 16 lanes (vpbroadcastw).
func (m Machine) Splat16(x int16) I16x16 {
	m.T.inc256(OpBroadcast)
	var v I16x16
	for i := range v {
		v[i] = x
	}
	return v
}

// Zero16 returns the all-zero register (free zeroing idiom).
func (m Machine) Zero16() I16x16 { return I16x16{} }

// Load16 loads the first 16 elements of s (vmovdqu).
func (m Machine) Load16(s []int16) I16x16 {
	m.T.inc256(OpLoad)
	var v I16x16
	copy(v[:], s[:16])
	return v
}

// Load16Partial loads min(len(s), 16) elements, zero-filling the rest.
func (m Machine) Load16Partial(s []int16) I16x16 {
	m.T.inc256(OpLoad)
	m.T.inc256(OpLogic)
	var v I16x16
	n := len(s)
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		v[i] = s[i]
	}
	return v
}

// Store16 stores v into the first 16 elements of dst.
func (m Machine) Store16(dst []int16, v I16x16) {
	m.T.inc256(OpStore)
	copy(dst[:16], v[:])
}

// Store16Partial stores the first min(len(dst), 16) lanes of v.
func (m Machine) Store16Partial(dst []int16, v I16x16) {
	m.T.inc256(OpStore)
	m.T.inc256(OpLogic)
	n := len(dst)
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		dst[i] = v[i]
	}
}

// AddSat16 returns a+b with signed saturation (vpaddsw).
func (m Machine) AddSat16(a, b I16x16) I16x16 {
	m.T.inc256(OpAddSat16)
	var v I16x16
	for i := range v {
		v[i] = clamp16(int32(a[i]) + int32(b[i]))
	}
	return v
}

// SubSat16 returns a-b with signed saturation (vpsubsw).
func (m Machine) SubSat16(a, b I16x16) I16x16 {
	m.T.inc256(OpSubSat16)
	var v I16x16
	for i := range v {
		v[i] = clamp16(int32(a[i]) - int32(b[i]))
	}
	return v
}

// Max16 returns the lane-wise signed maximum (vpmaxsw).
func (m Machine) Max16(a, b I16x16) I16x16 {
	m.T.inc256(OpMax16)
	var v I16x16
	for i := range v {
		if a[i] > b[i] {
			v[i] = a[i]
		} else {
			v[i] = b[i]
		}
	}
	return v
}

// Min16 returns the lane-wise signed minimum (vpminsw).
func (m Machine) Min16(a, b I16x16) I16x16 {
	m.T.inc256(OpMin16)
	var v I16x16
	for i := range v {
		if a[i] < b[i] {
			v[i] = a[i]
		} else {
			v[i] = b[i]
		}
	}
	return v
}

// CmpGt16 returns -1 in lanes where a>b, else 0 (vpcmpgtw).
func (m Machine) CmpGt16(a, b I16x16) I16x16 {
	m.T.inc256(OpCmpGt16)
	var v I16x16
	for i := range v {
		if a[i] > b[i] {
			v[i] = -1
		}
	}
	return v
}

// CmpEq16 returns -1 in lanes where a==b, else 0 (vpcmpeqw).
func (m Machine) CmpEq16(a, b I16x16) I16x16 {
	m.T.inc256(OpCmpEq8) // same port/latency class as the byte compare
	var v I16x16
	for i := range v {
		if a[i] == b[i] {
			v[i] = -1
		}
	}
	return v
}

// And16 returns the bitwise AND (vpand).
func (m Machine) And16(a, b I16x16) I16x16 {
	m.T.inc256(OpLogic)
	var v I16x16
	for i := range v {
		v[i] = a[i] & b[i]
	}
	return v
}

// Or16 returns the bitwise OR (vpor).
func (m Machine) Or16(a, b I16x16) I16x16 {
	m.T.inc256(OpLogic)
	var v I16x16
	for i := range v {
		v[i] = a[i] | b[i]
	}
	return v
}

// AndNot16 returns a &^ b, i.e. a AND NOT b (vpandn with swapped
// operands).
func (m Machine) AndNot16(a, b I16x16) I16x16 {
	m.T.inc256(OpLogic)
	var v I16x16
	for i := range v {
		v[i] = a[i] &^ b[i]
	}
	return v
}

// Blend16 selects b where the mask lane is negative, else a. The
// hardware form is vpblendvb with a widened mask.
func (m Machine) Blend16(a, b, mask I16x16) I16x16 {
	m.T.inc256(OpBlend)
	var v I16x16
	for i := range v {
		if mask[i] < 0 {
			v[i] = b[i]
		} else {
			v[i] = a[i]
		}
	}
	return v
}

// MoveMask16 packs the sign bit of every 16-bit lane into a 16-bit
// mask. Hardware uses vpacksswb+vpmovmskb; charged as one movemask
// plus one unpack.
func (m Machine) MoveMask16(a I16x16) uint32 {
	m.T.inc256(OpMoveMask)
	m.T.inc256(OpUnpack)
	var mask uint32
	for i := range a {
		if a[i] < 0 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// ReduceMax16 returns the maximum lane value (shuffle+max ladder).
func (m Machine) ReduceMax16(a I16x16) int16 {
	m.T.inc256(OpReduce)
	best := a[0]
	for _, x := range a[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// ShiftLanesRight16 shifts the register right by n 16-bit lanes
// (toward lane 0), inserting zeros at the top. Shifts by an even lane
// count are 32-bit aligned and lower to a single vpermd (charged as a
// permute); odd shifts need the vperm2i128+vpalignr pair.
func (m Machine) ShiftLanesRight16(a I16x16, n int) I16x16 {
	if n%2 == 0 {
		m.T.inc256(OpPermute)
	} else {
		m.T.inc256(OpLaneShift)
	}
	var v I16x16
	if n < 0 || n >= 16 {
		return v
	}
	copy(v[:16-n], a[n:])
	return v
}

// ShiftLanesLeft16 shifts the register left by n 16-bit lanes (away
// from lane 0), inserting zeros at lane 0. Even shifts lower to a
// single vpermd; see ShiftLanesRight16.
func (m Machine) ShiftLanesLeft16(a I16x16, n int) I16x16 {
	if n%2 == 0 {
		m.T.inc256(OpPermute)
	} else {
		m.T.inc256(OpLaneShift)
	}
	var v I16x16
	if n < 0 || n >= 16 {
		return v
	}
	copy(v[n:], a[:16-n])
	return v
}

// Insert16 returns a with lane i set to x (vpinsrw).
func (m Machine) Insert16(a I16x16, i int, x int16) I16x16 {
	m.T.inc256(OpUnpack)
	a[i] = x
	return a
}

// Extract16 returns lane i of a (vpextrw).
func (m Machine) Extract16(a I16x16, i int) int16 {
	m.T.inc256(OpUnpack)
	return a[i]
}

// Widen8To16 sign-extends the low or high 16 lanes of an 8-bit
// register into a 16-bit register (vpmovsxbw). half 0 selects lanes
// 0..15, half 1 selects lanes 16..31.
func (m Machine) Widen8To16(a I8x32, half int) I16x16 {
	m.T.inc256(OpUnpack)
	var v I16x16
	base := half * 16
	for i := 0; i < 16; i++ {
		v[i] = int16(a[base+i])
	}
	return v
}

// Narrow16To8 packs two 16-bit registers into one 8-bit register with
// signed saturation (vpacksswb followed by a fixup permute; charged as
// unpack+permute). lo fills lanes 0..15, hi fills lanes 16..31.
func (m Machine) Narrow16To8(lo, hi I16x16) I8x32 {
	m.T.inc256(OpUnpack)
	m.T.inc256(OpPermute)
	var v I8x32
	for i := 0; i < 16; i++ {
		v[i] = clamp8(int32(lo[i]))
		v[16+i] = clamp8(int32(hi[i]))
	}
	return v
}
