// Package vek is a software vector machine that stands in for the
// AVX2/AVX512 intrinsics used by the paper. It provides 256-bit and
// 512-bit integer register types with the operation vocabulary the
// Smith-Waterman kernels need — saturating arithmetic, max/min,
// compares, blends, in-lane byte shuffles (vpshufb semantics),
// cross-lane permutes, whole-register lane shifts, and 32-bit gathers —
// together with per-opcode issue counters.
//
// Every operation is a method on a Machine value. A Machine optionally
// carries a *Tally; when present, each operation increments the tally
// entry for its opcode class. The tallies feed the architecture cost
// model in internal/isa, which converts issue counts into modeled
// cycles for the architectures the paper evaluates.
//
// The operation semantics deliberately mirror the x86 instructions they
// model, including their quirks: Shuffle8 shuffles within 128-bit
// halves only (as vpshufb does on AVX2), saturating adds clamp at the
// int8/int16 bounds, and blends select by the high bit of the mask
// byte. Kernels written against this package therefore have the same
// structure (and the same per-cell instruction mix) as the paper's
// intrinsics kernels.
package vek

// Op identifies an opcode class for cost accounting. Each class maps
// to one architectural instruction (or short fixed sequence, noted per
// constant) on the machines the paper models.
type Op uint8

const (
	// OpLoad is an aligned or unaligned 256-bit vector load.
	OpLoad Op = iota
	// OpStore is a 256-bit vector store.
	OpStore
	// OpBroadcast is a vpbroadcastb/w/d register splat.
	OpBroadcast
	// OpAddSat8 is vpaddsb: saturating int8 add.
	OpAddSat8
	// OpSubSat8 is vpsubsb: saturating int8 subtract.
	OpSubSat8
	// OpAddSat16 is vpaddsw.
	OpAddSat16
	// OpSubSat16 is vpsubsw.
	OpSubSat16
	// OpAdd32 is vpaddd (modular).
	OpAdd32
	// OpSub32 is vpsubd (modular).
	OpSub32
	// OpMax8 is vpmaxsb.
	OpMax8
	// OpMax16 is vpmaxsw.
	OpMax16
	// OpMax32 is vpmaxsd.
	OpMax32
	// OpMin8 is vpminsb.
	OpMin8
	// OpMin16 is vpminsw.
	OpMin16
	// OpCmpGt8 is vpcmpgtb.
	OpCmpGt8
	// OpCmpGt16 is vpcmpgtw.
	OpCmpGt16
	// OpCmpEq8 is vpcmpeqb.
	OpCmpEq8
	// OpBlend is vpblendvb: byte blend by mask high bit.
	OpBlend
	// OpLogic covers vpand/vpor/vpxor.
	OpLogic
	// OpShuffle is vpshufb: in-lane byte shuffle.
	OpShuffle
	// OpPermute is a cross-lane permute (vpermd / vperm2i128).
	OpPermute
	// OpLaneShift is a whole-register byte shift; on AVX2 this is the
	// vperm2i128+vpalignr pair, so the cost model charges ~2 uops.
	OpLaneShift
	// OpGather32 is vpgatherdd: eight 32-bit loads indexed by a vector.
	OpGather32
	// OpMoveMask is vpmovmskb.
	OpMoveMask
	// OpReduce is a horizontal max reduction (log2(lanes) shuffle+max
	// pairs); the cost model expands it accordingly.
	OpReduce
	// OpUnpack covers pack/unpack/convert ops (vpacksswb, vpmovsxbw...).
	OpUnpack
	// OpScalar is one scalar ALU op executed on the fallback path for
	// short diagonal segments.
	OpScalar
	// OpScalarLoad is a scalar load on the fallback path.
	OpScalarLoad
	// OpScalarStore is a scalar store on the fallback path.
	OpScalarStore

	// NumOps is the number of opcode classes.
	NumOps int = iota
)

var opNames = [NumOps]string{
	OpLoad:        "load",
	OpStore:       "store",
	OpBroadcast:   "broadcast",
	OpAddSat8:     "addsat8",
	OpSubSat8:     "subsat8",
	OpAddSat16:    "addsat16",
	OpSubSat16:    "subsat16",
	OpAdd32:       "add32",
	OpSub32:       "sub32",
	OpMax8:        "max8",
	OpMax16:       "max16",
	OpMax32:       "max32",
	OpMin8:        "min8",
	OpMin16:       "min16",
	OpCmpGt8:      "cmpgt8",
	OpCmpGt16:     "cmpgt16",
	OpCmpEq8:      "cmpeq8",
	OpBlend:       "blend",
	OpLogic:       "logic",
	OpShuffle:     "shuffle",
	OpPermute:     "permute",
	OpLaneShift:   "laneshift",
	OpGather32:    "gather32",
	OpMoveMask:    "movemask",
	OpReduce:      "reduce",
	OpUnpack:      "unpack",
	OpScalar:      "scalar",
	OpScalarLoad:  "scalarload",
	OpScalarStore: "scalarstore",
}

// String returns the mnemonic-style name of the opcode class.
func (op Op) String() string {
	if int(op) < NumOps {
		return opNames[op]
	}
	return "op?"
}

// Width identifies the vector register width in bits.
type Width uint16

const (
	// W256 models AVX2 256-bit registers.
	W256 Width = 256
	// W512 models AVX-512 512-bit registers.
	W512 Width = 512
)

// A Tally accumulates operation issue counts, separated by register
// width. Tallies are not safe for concurrent use; give each worker its
// own and Merge afterwards.
type Tally struct {
	// N256 and N512 count issues of each opcode class at 256-bit and
	// 512-bit width respectively.
	N256 [NumOps]uint64
	N512 [NumOps]uint64
}

// inc256 records one 256-bit issue of op. A nil tally is a no-op so
// kernels can run uninstrumented at full speed.
func (t *Tally) inc256(op Op) {
	if t != nil {
		t.N256[op]++
	}
}

// inc512 records one 512-bit issue of op.
func (t *Tally) inc512(op Op) {
	if t != nil {
		t.N512[op]++
	}
}

// Add records n issues of op at the given width. It is exported for
// code (such as scalar fallback loops) that accounts for work in bulk.
func (t *Tally) Add(op Op, w Width, n uint64) {
	if t == nil {
		return
	}
	if w == W512 {
		t.N512[op] += n
	} else {
		t.N256[op] += n
	}
}

// Merge adds other's counts into t.
func (t *Tally) Merge(other *Tally) {
	if t == nil || other == nil {
		return
	}
	for i := 0; i < NumOps; i++ {
		t.N256[i] += other.N256[i]
		t.N512[i] += other.N512[i]
	}
}

// Reset zeroes all counters.
func (t *Tally) Reset() {
	if t == nil {
		return
	}
	t.N256 = [NumOps]uint64{}
	t.N512 = [NumOps]uint64{}
}

// Total returns the total number of issues across both widths.
func (t *Tally) Total() uint64 {
	if t == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < NumOps; i++ {
		sum += t.N256[i] + t.N512[i]
	}
	return sum
}

// VectorTotal returns the number of vector (non-scalar) issues.
func (t *Tally) VectorTotal() uint64 {
	if t == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < NumOps; i++ {
		op := Op(i)
		if op == OpScalar || op == OpScalarLoad || op == OpScalarStore {
			continue
		}
		sum += t.N256[i] + t.N512[i]
	}
	return sum
}

// A Machine issues vector operations and charges them to its Tally.
// The zero Machine is valid and uncounted. Machine is a small value;
// pass it by value.
type Machine struct {
	// T receives issue counts; nil disables counting.
	T *Tally
}

// Bare is an uncounted machine for tests and callers that do not need
// cost accounting.
var Bare = Machine{}

// NewMachine returns a machine charging to a fresh tally.
func NewMachine() (Machine, *Tally) {
	t := &Tally{}
	return Machine{T: t}, t
}

// clamp8 saturates a 32-bit intermediate to the int8 range.
func clamp8(x int32) int8 {
	if x > 127 {
		return 127
	}
	if x < -128 {
		return -128
	}
	return int8(x)
}

// clamp16 saturates a 32-bit intermediate to the int16 range.
func clamp16(x int32) int16 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return int16(x)
}
