package vek

import (
	"testing"
	"testing/quick"
)

func TestAddSat16Property(t *testing.T) {
	f := func(a, b I16x16) bool {
		v := Bare.AddSat16(a, b)
		for i := range v {
			s := int32(a[i]) + int32(b[i])
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			if int32(v[i]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubSat16Property(t *testing.T) {
	f := func(a, b I16x16) bool {
		v := Bare.SubSat16(a, b)
		for i := range v {
			s := int32(a[i]) - int32(b[i])
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			if int32(v[i]) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin16Property(t *testing.T) {
	f := func(a, b I16x16) bool {
		mx := Bare.Max16(a, b)
		mn := Bare.Min16(a, b)
		for i := range mx {
			wantMax, wantMin := a[i], a[i]
			if b[i] > a[i] {
				wantMax = b[i]
			}
			if b[i] < a[i] {
				wantMin = b[i]
			}
			if mx[i] != wantMax || mn[i] != wantMin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpBlend16Property(t *testing.T) {
	f := func(a, b I16x16) bool {
		mask := Bare.CmpGt16(b, a)
		return Bare.Blend16(a, b, mask) == Bare.Max16(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceMax16Property(t *testing.T) {
	f := func(a I16x16) bool {
		got := Bare.ReduceMax16(a)
		best := a[0]
		for _, x := range a[1:] {
			if x > best {
				best = x
			}
		}
		return got == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftLanes16(t *testing.T) {
	var a I16x16
	for i := range a {
		a[i] = int16(i + 100)
	}
	r := Bare.ShiftLanesRight16(a, 2)
	if r[0] != 102 || r[13] != 115 || r[14] != 0 || r[15] != 0 {
		t.Fatalf("right shift wrong: %v", r)
	}
	l := Bare.ShiftLanesLeft16(a, 2)
	if l[0] != 0 || l[1] != 0 || l[2] != 100 || l[15] != 113 {
		t.Fatalf("left shift wrong: %v", l)
	}
}

func TestMoveMask16(t *testing.T) {
	var a I16x16
	a[0] = -1
	a[15] = -32768
	got := Bare.MoveMask16(a)
	want := uint32(1) | uint32(1)<<15
	if got != want {
		t.Fatalf("movemask16 = %#x, want %#x", got, want)
	}
}

func TestWiden8To16(t *testing.T) {
	var a I8x32
	for i := range a {
		a[i] = int8(i - 16)
	}
	lo := Bare.Widen8To16(a, 0)
	hi := Bare.Widen8To16(a, 1)
	for i := 0; i < 16; i++ {
		if lo[i] != int16(a[i]) {
			t.Fatalf("lo lane %d = %d, want %d", i, lo[i], a[i])
		}
		if hi[i] != int16(a[16+i]) {
			t.Fatalf("hi lane %d = %d, want %d", i, hi[i], a[16+i])
		}
	}
}

func TestNarrow16To8Saturates(t *testing.T) {
	lo := Bare.Splat16(300)
	hi := Bare.Splat16(-300)
	v := Bare.Narrow16To8(lo, hi)
	for i := 0; i < 16; i++ {
		if v[i] != 127 {
			t.Fatalf("lane %d = %d, want 127", i, v[i])
		}
		if v[16+i] != -128 {
			t.Fatalf("lane %d = %d, want -128", 16+i, v[16+i])
		}
	}
}

func TestWidenNarrowRoundTripProperty(t *testing.T) {
	f := func(a I8x32) bool {
		lo := Bare.Widen8To16(a, 0)
		hi := Bare.Widen8To16(a, 1)
		return Bare.Narrow16To8(lo, hi) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadStore16Partial(t *testing.T) {
	src := []int16{10, 20}
	v := Bare.Load16Partial(src)
	if v[0] != 10 || v[1] != 20 || v[2] != 0 {
		t.Fatalf("partial load wrong: %v", v)
	}
	dst := make([]int16, 2)
	Bare.Store16Partial(dst, Bare.Splat16(-3))
	if dst[0] != -3 || dst[1] != -3 {
		t.Fatalf("partial store wrong: %v", dst)
	}
}

func TestInsertExtract16(t *testing.T) {
	v := Bare.Zero16()
	v = Bare.Insert16(v, 7, 321)
	if got := Bare.Extract16(v, 7); got != 321 {
		t.Fatalf("extract = %d, want 321", got)
	}
}

func TestLoadStore16Full(t *testing.T) {
	src := make([]int16, 20)
	for i := range src {
		src[i] = int16(i * 5)
	}
	v := Bare.Load16(src)
	for i := 0; i < 16; i++ {
		if v[i] != src[i] {
			t.Fatalf("lane %d = %d", i, v[i])
		}
	}
	dst := make([]int16, 16)
	Bare.Store16(dst, v)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("store lane %d wrong", i)
		}
	}
}

func TestCmpEq16(t *testing.T) {
	a := I16x16{0: 100, 5: -7}
	b := I16x16{0: 100, 5: 7}
	v := Bare.CmpEq16(a, b)
	if v[0] != -1 || v[5] != 0 || v[1] != -1 {
		t.Fatalf("cmpeq16 wrong: %v", v)
	}
}

func TestLogic16Property(t *testing.T) {
	f := func(a, b I16x16) bool {
		and := Bare.And16(a, b)
		or := Bare.Or16(a, b)
		andn := Bare.AndNot16(a, b)
		for i := range a {
			if and[i] != a[i]&b[i] || or[i] != a[i]|b[i] || andn[i] != a[i]&^b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShift16CostLowering(t *testing.T) {
	// Even (32-bit aligned) shifts lower to a single permute; odd
	// shifts need the two-uop lane-shift sequence.
	m, tal := NewMachine()
	a := m.Splat16(1)
	m.ShiftLanesLeft16(a, 2)
	if tal.N256[OpPermute] != 1 || tal.N256[OpLaneShift] != 0 {
		t.Fatalf("even shift should charge a permute: %+v", tal.N256)
	}
	m.ShiftLanesRight16(a, 1)
	if tal.N256[OpLaneShift] != 1 {
		t.Fatalf("odd shift should charge a lane shift")
	}
}
