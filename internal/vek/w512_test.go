package vek

import (
	"testing"
	"testing/quick"
)

func TestSplat8W(t *testing.T) {
	m, tal := NewMachine()
	v := m.Splat8W(-3)
	for i := 0; i < 32; i++ {
		if v.Lo[i] != -3 || v.Hi[i] != -3 {
			t.Fatalf("lane %d wrong", i)
		}
	}
	if tal.N512[OpBroadcast] != 1 || tal.N256[OpBroadcast] != 0 {
		t.Fatalf("512 broadcast should charge the 512 tally: %+v", tal)
	}
}

func TestAddSat8WMatchesHalves(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi I8x32) bool {
		a := I8x64{Lo: aLo, Hi: aHi}
		b := I8x64{Lo: bLo, Hi: bHi}
		got := Bare.AddSat8W(a, b)
		return got.Lo == Bare.AddSat8(aLo, bLo) && got.Hi == Bare.AddSat8(aHi, bHi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax8WAndReduce(t *testing.T) {
	f := func(aLo, aHi I8x32) bool {
		a := I8x64{Lo: aLo, Hi: aHi}
		got := Bare.ReduceMax8W(a)
		best := aLo[0]
		for _, x := range aLo[1:] {
			if x > best {
				best = x
			}
		}
		for _, x := range aHi {
			if x > best {
				best = x
			}
		}
		return got == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftLanesLeft8WCrossesHalves(t *testing.T) {
	var a I8x64
	for i := 0; i < 32; i++ {
		a.Lo[i] = int8(i)
		a.Hi[i] = int8(32 + i)
	}
	v := Bare.ShiftLanesLeft8W(a, 1)
	if v.Lo[0] != 0 {
		t.Fatalf("lane 0 = %d, want 0", v.Lo[0])
	}
	if v.Lo[1] != 0 { // old lane 0 held value 0
		t.Fatalf("lane 1 = %d, want 0", v.Lo[1])
	}
	// Lane 32 (Hi[0]) must receive old lane 31 (Lo[31] == 31).
	if v.Hi[0] != 31 {
		t.Fatalf("lane 32 = %d, want 31 (cross-half carry)", v.Hi[0])
	}
	if v.Hi[31] != 62 {
		t.Fatalf("lane 63 = %d, want 62", v.Hi[31])
	}
}

func TestLoadStore8WPartial(t *testing.T) {
	src := make([]int8, 40)
	for i := range src {
		src[i] = int8(i + 1)
	}
	v := Bare.Load8WPartial(src)
	if v.Lo[0] != 1 || v.Hi[7] != 40 || v.Hi[8] != 0 {
		t.Fatalf("partial 512 load wrong: %+v", v)
	}
	dst := make([]int8, 40)
	Bare.Store8WPartial(dst, v)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("partial 512 store lane %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestAddSat16WMatchesHalves(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi I16x16) bool {
		a := I16x32{Lo: aLo, Hi: aHi}
		b := I16x32{Lo: bLo, Hi: bHi}
		got := Bare.AddSat16W(a, b)
		sub := Bare.SubSat16W(a, b)
		mx := Bare.Max16W(a, b)
		return got.Lo == Bare.AddSat16(aLo, bLo) && got.Hi == Bare.AddSat16(aHi, bHi) &&
			sub.Lo == Bare.SubSat16(aLo, bLo) && sub.Hi == Bare.SubSat16(aHi, bHi) &&
			mx.Lo == Bare.Max16(aLo, bLo) && mx.Hi == Bare.Max16(aHi, bHi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceMax16W(t *testing.T) {
	var a I16x32
	a.Lo[3] = 500
	a.Hi[9] = 501
	if got := Bare.ReduceMax16W(a); got != 501 {
		t.Fatalf("reduce = %d, want 501", got)
	}
}

func TestShiftLanesLeft16WCrossesHalves(t *testing.T) {
	var a I16x32
	for i := 0; i < 16; i++ {
		a.Lo[i] = int16(i)
		a.Hi[i] = int16(16 + i)
	}
	v := Bare.ShiftLanesLeft16W(a, 1)
	if v.Lo[0] != 0 {
		t.Fatalf("lane 0 = %d, want 0", v.Lo[0])
	}
	if v.Hi[0] != 15 {
		t.Fatalf("lane 16 = %d, want 15 (cross-half carry)", v.Hi[0])
	}
	if v.Hi[15] != 30 {
		t.Fatalf("lane 31 = %d, want 30", v.Hi[15])
	}
}

func TestLoadStore16WPartial(t *testing.T) {
	src := make([]int16, 20)
	for i := range src {
		src[i] = int16(i * 3)
	}
	v := Bare.Load16WPartial(src)
	if v.Lo[0] != 0 || v.Hi[3] != 57 || v.Hi[4] != 0 {
		t.Fatalf("partial 512 load wrong: %+v", v)
	}
	dst := make([]int16, 20)
	Bare.Store16WPartial(dst, v)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("partial 512 store lane %d wrong", i)
		}
	}
}

func TestGather32W(t *testing.T) {
	m, tal := NewMachine()
	table := make([]int32, 16)
	for i := range table {
		table[i] = int32(i * 7)
	}
	idxLo := I32x8{0, 1, 2, 3, 4, 5, 6, 7}
	idxHi := I32x8{15, 14, 13, 12, 11, 10, 9, 8}
	lo, hi := m.Gather32W(table, idxLo, idxHi)
	for i := 0; i < 8; i++ {
		if lo[i] != table[idxLo[i]] || hi[i] != table[idxHi[i]] {
			t.Fatalf("gather lane %d wrong", i)
		}
	}
	if tal.N512[OpGather32] != 1 {
		t.Fatalf("512 gather count = %d, want 1", tal.N512[OpGather32])
	}
}

func TestSubMax8WMatchHalves(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi I8x32) bool {
		a := I8x64{Lo: aLo, Hi: aHi}
		b := I8x64{Lo: bLo, Hi: bHi}
		sub := Bare.SubSat8W(a, b)
		mx := Bare.Max8W(a, b)
		return sub.Lo == Bare.SubSat8(aLo, bLo) && sub.Hi == Bare.SubSat8(aHi, bHi) &&
			mx.Lo == Bare.Max8(aLo, bLo) && mx.Hi == Bare.Max8(aHi, bHi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroAndSplatW(t *testing.T) {
	if Bare.Zero8W() != (I8x64{}) {
		t.Error("Zero8W not zero")
	}
	if Bare.Zero16W() != (I16x32{}) {
		t.Error("Zero16W not zero")
	}
	v := Bare.Splat16W(-9)
	for i := 0; i < 16; i++ {
		if v.Lo[i] != -9 || v.Hi[i] != -9 {
			t.Fatal("Splat16W wrong")
		}
	}
}
