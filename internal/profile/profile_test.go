package profile

import (
	"strings"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/perfmodel"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

func sampleRun(t *testing.T, arch *isa.Arch, withMatrix bool) perfmodel.Run {
	t.Helper()
	g := seqio.NewGenerator(111)
	alpha := submat.Blosum62().Alphabet()
	q := g.Protein("q", 256).Encode(alpha)
	d := g.Protein("d", 800).Encode(alpha)
	mat := submat.Blosum62()
	if !withMatrix {
		mat = submat.MatchMismatch(alpha, 2, -1)
	}
	mch, tal := vek.NewMachine()
	if _, _, err := core.AlignPair16(mch, q, d, mat, core.PairOptions{Gaps: aln.DefaultGaps()}); err != nil {
		t.Fatal(err)
	}
	return perfmodel.Run{Arch: arch, Tally: tal, Cells: int64(len(q) * len(d)), WorkingSetKB: 12}
}

func TestAnalyzeAndRender(t *testing.T) {
	rep := Analyze("with substitution matrix", sampleRun(t, isa.Get(isa.Skylake), true))
	if rep.CyclesPerCell <= 0 || rep.GCUPS1 <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"retiring", "back-end bound", "memory bound", "core bound", "verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSubstMatrixRunIsCPUBound(t *testing.T) {
	// §IV-F: the gather-based substitution-matrix kernel is core
	// bound on the modeled machines.
	rep := Analyze("submat", sampleRun(t, isa.Get(isa.Skylake), true))
	if !rep.CPUBound() {
		t.Errorf("expected CPU-bound verdict: %s", rep.Breakdown)
	}
}

func TestMemoryShareWithinPaperRange(t *testing.T) {
	// §IV-F: at least ~8% of slots memory-bound in both scenarios,
	// up to ~18% without the substitution matrix.
	withM := Analyze("with", sampleRun(t, isa.Get(isa.Skylake), true))
	without := Analyze("without", sampleRun(t, isa.Get(isa.Skylake), false))
	if without.Breakdown.BackendMemory <= withM.Breakdown.BackendMemory {
		t.Errorf("memory share without submat (%.3f) should exceed with (%.3f)",
			without.Breakdown.BackendMemory, withM.Breakdown.BackendMemory)
	}
}

func TestHTEfficiencySeries(t *testing.T) {
	r := sampleRun(t, isa.Get(isa.Cascadelake), true)
	counts := perfmodel.DefaultThreadCounts(r.Arch)
	pts := HTEfficiencySeries(r, counts)
	if len(pts) != len(counts) {
		t.Fatalf("points = %d", len(pts))
	}
	// Efficiency is flat up to the core count, then rises under HT.
	var atCores, atHT float64
	for _, p := range pts {
		if p.Efficiency < 0 || p.Efficiency > 1 {
			t.Fatalf("efficiency %f out of range", p.Efficiency)
		}
		if p.Threads == r.Arch.Cores {
			atCores = p.Efficiency
		}
		if p.Threads == r.Arch.Threads() {
			atHT = p.Efficiency
		}
	}
	if atHT <= atCores {
		t.Errorf("HT efficiency %.3f should exceed all-core %.3f", atHT, atCores)
	}
}

func TestBarClamps(t *testing.T) {
	if bar(-1, 10) != ".........." {
		t.Error("negative fraction should render empty bar")
	}
	if bar(2, 10) != "##########" {
		t.Error("overflow fraction should render full bar")
	}
}
