// Package profile renders Vtune-style microarchitecture reports from
// the performance model: per-run top-down pipeline-slot breakdowns and
// the slot-efficiency comparisons of Fig. 12. It is the reproduction's
// stand-in for the Intel Vtune profiler runs of §IV-F.
package profile

import (
	"fmt"
	"io"
	"strings"

	"swvec/internal/perfmodel"
)

// Report is one analyzed kernel execution.
type Report struct {
	// Name labels the scenario (e.g. "with substitution matrix").
	Name string
	// Arch is the architecture name.
	Arch string
	// Breakdown is the pipeline-slot analysis.
	Breakdown perfmodel.TopDown
	// CyclesPerCell is modeled core cycles per DP cell.
	CyclesPerCell float64
	// GCUPS1 is the modeled single-thread throughput.
	GCUPS1 float64
}

// Analyze produces a report from a run.
func Analyze(name string, r perfmodel.Run) Report {
	rep := Report{
		Name:      name,
		Arch:      r.Arch.Name,
		Breakdown: r.TopDown(),
		GCUPS1:    r.GCUPS1(),
	}
	if r.Cells > 0 {
		rep.CyclesPerCell = r.Cycles() / float64(r.Cells)
	}
	return rep
}

// CPUBound reports whether the execution is predominantly limited by
// core resources rather than memory — the paper's §IV-F finding for
// substitution-matrix scenarios.
func (r Report) CPUBound() bool {
	return r.Breakdown.BackendCore > r.Breakdown.BackendMemory
}

// SlotEfficiency is the fraction of pipeline slots doing useful work,
// the quantity Fig. 12(b)/(c) plot per thread count.
func (r Report) SlotEfficiency() float64 { return r.Breakdown.Utilization() }

// bar renders a proportional ASCII bar.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Render writes the report in a Vtune-like layout.
func (r Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s on %s --\n", r.Name, r.Arch)
	fmt.Fprintf(&b, "cycles/cell %.3f   modeled GCUPS(1T) %.2f\n", r.CyclesPerCell, r.GCUPS1)
	td := r.Breakdown
	rows := []struct {
		label string
		frac  float64
	}{
		{"retiring", td.Retiring},
		{"front-end bound", td.FrontendBound},
		{"bad speculation", td.BadSpeculation},
		{"back-end bound", td.BackendBound},
		{"  memory bound", td.BackendMemory},
		{"  core bound", td.BackendCore},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-17s %5.1f%%  |%s|\n", row.label, 100*row.frac, bar(row.frac, 40))
	}
	if r.CPUBound() {
		b.WriteString("verdict: CPU (core) bound\n")
	} else {
		b.WriteString("verdict: memory bound\n")
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// HTEfficiencyPoint is one Fig. 12(b)/(c) sample: pipeline-slot
// efficiency at a given thread count.
type HTEfficiencyPoint struct {
	Threads    int
	Efficiency float64
}

// HTEfficiencySeries models how pipeline-slot efficiency changes with
// thread count: with two threads per core the second thread fills a
// fraction of the idle slots (the effect §IV-F observed under
// hyperthreading).
func HTEfficiencySeries(r perfmodel.Run, threadCounts []int) []HTEfficiencyPoint {
	base := r.TopDown()
	out := make([]HTEfficiencyPoint, 0, len(threadCounts))
	for _, t := range threadCounts {
		eff := base.Utilization()
		if t > r.Arch.Cores {
			// Fraction of cores running two threads.
			htFrac := float64(t-r.Arch.Cores) / float64(r.Arch.Cores)
			idle := 1 - eff
			eff = eff + htFrac*r.Arch.HTEfficiency*idle
		}
		if eff > 1 {
			eff = 1
		}
		out = append(out, HTEfficiencyPoint{Threads: t, Efficiency: eff})
	}
	return out
}
