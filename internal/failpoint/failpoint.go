// Package failpoint is the fault-injection framework behind the
// pipeline's chaos test suite (DESIGN.md §12). Code under test declares
// named injection sites:
//
//	if err := failpoint.Inject("sched/align8"); err != nil { ... }
//
// In the default build (no `failpoint` build tag) Inject is a no-op
// that the inliner removes, so production binaries carry zero hot-path
// overhead. Under `go test -tags failpoint` each site consults a
// registry of armed failures, activated either programmatically
//
//	failpoint.Enable("sched/align8", "error(boom):transient:first=2")
//
// or through the SWVEC_FAILPOINTS environment variable, a
// semicolon-separated list of name=spec pairs:
//
//	SWVEC_FAILPOINTS='sched/align8=panic(kernel);seqio/fasta-record=error(corrupt):p=0.1'
//
// The spec grammar is
//
//	spec     := action *( ":" modifier )
//	action   := "error(" msg ")" | "panic(" msg ")" | "delay(" duration ")" | "off"
//	modifier := "p=" float | "first=" int | "after=" int | "transient"
//
// "p" fires the action with the given probability, "after" skips the
// first N evaluations, "first" disarms the site after N firings, and
// "transient" marks injected errors as retryable (they satisfy the
// Transient() bool interface the scheduler's retry policy looks for).
package failpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Action is the kind of failure a spec injects.
type Action int

// The supported failure actions.
const (
	// ActOff parses but never fires; it exists so an env var can
	// explicitly disarm a site another layer armed.
	ActOff Action = iota
	// ActError makes Inject return an *Error.
	ActError
	// ActPanic makes Inject panic with an *Error value.
	ActPanic
	// ActDelay makes Inject sleep for the configured duration.
	ActDelay
)

// Spec is one parsed failure specification.
type Spec struct {
	Action Action
	// Msg is the error/panic message for ActError and ActPanic.
	Msg string
	// Delay is the sleep duration for ActDelay.
	Delay time.Duration
	// Prob fires the action with this probability (1 = always).
	Prob float64
	// After skips the first After evaluations of the site.
	After int64
	// First disarms the site after it has fired First times
	// (0 = unlimited).
	First int64
	// Transient marks injected errors as retryable.
	Transient bool
}

// Error is an injected failure. It reports the site that produced it
// and whether the scheduler's retry policy should treat it as
// transient.
type Error struct {
	Site        string
	Msg         string
	IsTransient bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("failpoint %s: %s", e.Site, e.Msg)
}

// Transient reports whether the injected failure is retryable; the
// scheduler's backoff policy checks for this method.
func (e *Error) Transient() bool { return e.IsTransient }

// ParseSpec parses the spec grammar documented on the package.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	spec := Spec{Prob: 1}
	action := strings.TrimSpace(parts[0])
	arg := ""
	if open := strings.IndexByte(action, '('); open >= 0 {
		if !strings.HasSuffix(action, ")") {
			return Spec{}, fmt.Errorf("failpoint: unbalanced parens in action %q", action)
		}
		arg = action[open+1 : len(action)-1]
		action = action[:open]
	}
	switch action {
	case "off":
		spec.Action = ActOff
	case "error":
		spec.Action = ActError
		spec.Msg = arg
		if spec.Msg == "" {
			spec.Msg = "injected error"
		}
	case "panic":
		spec.Action = ActPanic
		spec.Msg = arg
		if spec.Msg == "" {
			spec.Msg = "injected panic"
		}
	case "delay":
		spec.Action = ActDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("failpoint: bad delay %q: %v", arg, err)
		}
		if d < 0 {
			return Spec{}, fmt.Errorf("failpoint: negative delay %q", arg)
		}
		spec.Delay = d
	default:
		return Spec{}, fmt.Errorf("failpoint: unknown action %q (want error, panic, delay, or off)", action)
	}
	for _, mod := range parts[1:] {
		mod = strings.TrimSpace(mod)
		switch {
		case mod == "transient":
			spec.Transient = true
		case strings.HasPrefix(mod, "p="):
			p, err := strconv.ParseFloat(mod[2:], 64)
			if err != nil || p < 0 || p > 1 {
				return Spec{}, fmt.Errorf("failpoint: bad probability %q (want [0,1])", mod)
			}
			spec.Prob = p
		case strings.HasPrefix(mod, "first="):
			n, err := strconv.ParseInt(mod[len("first="):], 10, 64)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("failpoint: bad modifier %q", mod)
			}
			spec.First = n
		case strings.HasPrefix(mod, "after="):
			n, err := strconv.ParseInt(mod[len("after="):], 10, 64)
			if err != nil || n < 0 {
				return Spec{}, fmt.Errorf("failpoint: bad modifier %q", mod)
			}
			spec.After = n
		default:
			return Spec{}, fmt.Errorf("failpoint: unknown modifier %q", mod)
		}
	}
	return spec, nil
}
