//go:build !failpoint

package failpoint

// Enabled reports whether the build carries the failpoint machinery.
const Enabled = false

// Inject is a no-op in the default build; the inliner removes the call
// entirely, so injection sites cost nothing on the hot path.
func Inject(name string) error { return nil }

// Enable reports an error in the default build: arming a failpoint in
// a binary compiled without the machinery is a misconfiguration the
// caller should hear about, not a silent no-op.
func Enable(name, spec string) error {
	_, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	return errNotBuilt
}

// EnableFromEnv reports an error in the default build; see Enable.
func EnableFromEnv(list string) error { return errNotBuilt }

// Disable is a no-op in the default build.
func Disable(name string) {}

// DisableAll is a no-op in the default build.
func DisableAll() {}

// Fired always reports zero in the default build.
func Fired(name string) int64 { return 0 }

type notBuiltError struct{}

func (notBuiltError) Error() string {
	return "failpoint: binary built without the failpoint tag"
}

var errNotBuilt = notBuiltError{}
