//go:build failpoint

package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestInjectError(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/err", "error(boom):transient"); err != nil {
		t.Fatal(err)
	}
	err := Inject("t/err")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Inject = %v, want *Error", err)
	}
	if fe.Site != "t/err" || fe.Msg != "boom" || !fe.Transient() {
		t.Fatalf("unexpected error %+v", fe)
	}
	if Fired("t/err") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("t/err"))
	}
	Disable("t/err")
	if err := Inject("t/err"); err != nil {
		t.Fatalf("disabled site still fires: %v", err)
	}
}

func TestInjectPanic(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/panic", "panic(kernel)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		fe, ok := r.(*Error)
		if !ok || fe.Msg != "kernel" {
			t.Fatalf("panicked with %v", r)
		}
	}()
	Inject("t/panic")
}

func TestInjectFirstAndAfter(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/fa", "error(x):after=2:first=3"); err != nil {
		t.Fatal(err)
	}
	var fails int
	for i := 0; i < 10; i++ {
		if Inject("t/fa") != nil {
			fails++
			if i < 2 {
				t.Fatalf("fired during the after window (i=%d)", i)
			}
		}
	}
	if fails != 3 {
		t.Fatalf("fired %d times, want 3", fails)
	}
	if Fired("t/fa") != 3 {
		t.Fatalf("Fired = %d, want 3", Fired("t/fa"))
	}
}

func TestInjectDelay(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/delay", "delay(30ms):first=1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("t/delay"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestInjectProbabilityZero(t *testing.T) {
	defer DisableAll()
	if err := Enable("t/p0", "error(x):p=0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if Inject("t/p0") != nil {
			t.Fatal("p=0 fired")
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	defer DisableAll()
	if err := EnableFromEnv("t/a=error(one); t/b=delay(1ms):first=2"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("t/a"); err == nil {
		t.Fatal("t/a not armed")
	}
	if err := EnableFromEnv("broken"); err == nil {
		t.Fatal("bad pair accepted")
	}
	if err := EnableFromEnv("t/c=nonsense()"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
