//go:build failpoint

package failpoint

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the build carries the failpoint machinery.
// Tests that pin allocation budgets of the default build can skip when
// it is set.
const Enabled = true

// site is one armed injection point.
type site struct {
	spec  Spec
	evals atomic.Int64 // Inject evaluations, for the `after` modifier
	fires atomic.Int64 // actions fired, for the `first` modifier
}

var (
	mu    sync.RWMutex
	sites = map[string]*site{}
	rng   = rand.New(rand.NewSource(time.Now().UnixNano()))
	rngMu sync.Mutex
)

func init() {
	if env := os.Getenv("SWVEC_FAILPOINTS"); env != "" {
		if err := EnableFromEnv(env); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: ignoring SWVEC_FAILPOINTS: %v\n", err)
		}
	}
}

// EnableFromEnv arms every name=spec pair in the semicolon-separated
// list (the SWVEC_FAILPOINTS format).
func EnableFromEnv(list string) error {
	for _, pair := range strings.Split(list, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return fmt.Errorf("failpoint: bad pair %q (want name=spec)", pair)
		}
		if err := Enable(pair[:eq], pair[eq+1:]); err != nil {
			return err
		}
	}
	return nil
}

// Enable arms the named site with a parsed spec, replacing any
// previous one and resetting its counters.
func Enable(name, specStr string) error {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return err
	}
	mu.Lock()
	sites[name] = &site{spec: spec}
	mu.Unlock()
	return nil
}

// Disable disarms the named site.
func Disable(name string) {
	mu.Lock()
	delete(sites, name)
	mu.Unlock()
}

// DisableAll disarms every site; chaos tests call it between cases.
func DisableAll() {
	mu.Lock()
	sites = map[string]*site{}
	mu.Unlock()
}

// Fired returns how many times the named site has fired its action.
func Fired(name string) int64 {
	mu.RLock()
	s := sites[name]
	mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.fires.Load()
}

// Inject evaluates the named site: it returns an injected error,
// panics, or sleeps according to the armed spec, or returns nil when
// the site is disarmed or its trigger does not fire.
func Inject(name string) error {
	mu.RLock()
	s := sites[name]
	mu.RUnlock()
	if s == nil || s.spec.Action == ActOff {
		return nil
	}
	n := s.evals.Add(1)
	if n <= s.spec.After {
		return nil
	}
	if s.spec.Prob < 1 {
		rngMu.Lock()
		roll := rng.Float64()
		rngMu.Unlock()
		if roll >= s.spec.Prob {
			return nil
		}
	}
	for {
		f := s.fires.Load()
		if s.spec.First > 0 && f >= s.spec.First {
			return nil
		}
		if s.fires.CompareAndSwap(f, f+1) {
			break
		}
	}
	switch s.spec.Action {
	case ActError:
		return &Error{Site: name, Msg: s.spec.Msg, IsTransient: s.spec.Transient}
	case ActPanic:
		panic(&Error{Site: name, Msg: s.spec.Msg})
	case ActDelay:
		time.Sleep(s.spec.Delay)
	}
	return nil
}
