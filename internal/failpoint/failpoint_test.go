package failpoint

import (
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		bad  bool
	}{
		{in: "error(boom)", want: Spec{Action: ActError, Msg: "boom", Prob: 1}},
		{in: "error()", want: Spec{Action: ActError, Msg: "injected error", Prob: 1}},
		{in: "panic(kernel)", want: Spec{Action: ActPanic, Msg: "kernel", Prob: 1}},
		{in: "delay(5ms)", want: Spec{Action: ActDelay, Delay: 5 * time.Millisecond, Prob: 1}},
		{in: "off", want: Spec{Action: ActOff, Prob: 1}},
		{in: "error(x):transient", want: Spec{Action: ActError, Msg: "x", Prob: 1, Transient: true}},
		{in: "error(x):p=0.25", want: Spec{Action: ActError, Msg: "x", Prob: 0.25}},
		{in: "error(x):first=3:after=2", want: Spec{Action: ActError, Msg: "x", Prob: 1, First: 3, After: 2}},
		{in: "error(x):transient:p=1:first=1", want: Spec{Action: ActError, Msg: "x", Prob: 1, First: 1, Transient: true}},
		{in: "explode", bad: true},
		{in: "error(x", bad: true},
		{in: "delay(fast)", bad: true},
		{in: "delay(-1s)", bad: true},
		{in: "error(x):p=2", bad: true},
		{in: "error(x):first=-1", bad: true},
		{in: "error(x):maybe", bad: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestErrorTransient(t *testing.T) {
	e := &Error{Site: "s", Msg: "m", IsTransient: true}
	if e.Error() != "failpoint s: m" {
		t.Errorf("Error() = %q", e.Error())
	}
	if !e.Transient() {
		t.Error("Transient() = false, want true")
	}
	if (&Error{}).Transient() {
		t.Error("zero Error is transient")
	}
}

// TestInjectDisarmed holds in both builds: an unarmed site never
// fails. Under the default build this also pins the no-op contract.
func TestInjectDisarmed(t *testing.T) {
	if err := Inject("no/such/site"); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	if Fired("no/such/site") != 0 {
		t.Fatal("disarmed site reports firings")
	}
}

// TestEnableWithoutTag pins the default build's behavior: Enable
// reports the missing build tag instead of silently arming nothing.
func TestEnableWithoutTag(t *testing.T) {
	if Enabled {
		t.Skip("failpoint build: Enable is live")
	}
	if err := Enable("x", "error(boom)"); err == nil {
		t.Fatal("Enable without the failpoint tag must error")
	}
	if err := Enable("x", "not-a-spec"); err == nil {
		t.Fatal("Enable must still reject bad specs")
	}
}
