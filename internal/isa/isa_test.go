package isa

import (
	"testing"

	"swvec/internal/vek"
)

func TestAllModelsValidate(t *testing.T) {
	for _, a := range All() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestGetAndAll(t *testing.T) {
	if len(All()) != NumArchs {
		t.Fatalf("All() = %d archs, want %d", len(All()), NumArchs)
	}
	if Get(Skylake).Name != "Skylake Gold 6132" {
		t.Errorf("Skylake name = %q", Get(Skylake).Name)
	}
	if len(Evaluated()) != 4 {
		t.Errorf("Evaluated() = %d, want 4", len(Evaluated()))
	}
	for _, a := range Evaluated() {
		if a.ID == Alderlake {
			t.Error("Alderlake must not be in the kernel-figure set")
		}
	}
}

func TestFreqDroopMonotone(t *testing.T) {
	for _, a := range All() {
		prev := a.Freq(1, vek.W256)
		for n := 2; n <= a.Cores; n++ {
			f := a.Freq(n, vek.W256)
			if f > prev {
				t.Errorf("%s: frequency rose from %.2f to %.2f at %d cores", a.Name, prev, f, n)
			}
			prev = f
		}
	}
}

func TestFreqLicenseOffsets(t *testing.T) {
	skx := Get(Skylake)
	f256 := skx.Freq(8, vek.W256)
	f512 := skx.Freq(8, vek.W512)
	if f512 >= f256 {
		t.Errorf("AVX512 license must reduce frequency: %.2f vs %.2f", f512, f256)
	}
}

func TestFreqClampsActiveCores(t *testing.T) {
	a := Get(Haswell)
	if a.Freq(0, vek.W256) != a.Freq(1, vek.W256) {
		t.Error("activeCores=0 should clamp to 1")
	}
	if a.Freq(100, vek.W256) != a.Freq(a.Cores, vek.W256) {
		t.Error("activeCores beyond Cores should clamp")
	}
}

func TestCyclesScaleWithCounts(t *testing.T) {
	a := Get(Skylake)
	var t1, t2 vek.Tally
	t1.Add(vek.OpAddSat8, vek.W256, 100)
	t2.Add(vek.OpAddSat8, vek.W256, 200)
	c1, c2 := a.Cycles(&t1), a.Cycles(&t2)
	if c2 != 2*c1 || c1 <= 0 {
		t.Errorf("cycles not linear: %f vs %f", c1, c2)
	}
}

func TestGatherDominatesALU(t *testing.T) {
	// A gather must be markedly more expensive than a saturating add
	// on every model — this drives the paper's core-bound finding.
	for _, a := range All() {
		var tg, ta vek.Tally
		tg.Add(vek.OpGather32, vek.W256, 100)
		ta.Add(vek.OpAddSat8, vek.W256, 100)
		if a.Cycles(&tg) < 4*a.Cycles(&ta) {
			t.Errorf("%s: gather cycles %.1f too close to add cycles %.1f",
				a.Name, a.Cycles(&tg), a.Cycles(&ta))
		}
	}
}

func TestHaswellGatherSlowest(t *testing.T) {
	var tg vek.Tally
	tg.Add(vek.OpGather32, vek.W256, 100)
	hsw := Get(Haswell).Cycles(&tg)
	for _, a := range []*Arch{Get(Skylake), Get(Cascadelake), Get(Alderlake)} {
		if a.Cycles(&tg) >= hsw {
			t.Errorf("%s gather (%.1f cyc) should beat Haswell (%.1f)",
				a.Name, a.Cycles(&tg), hsw)
		}
	}
}

func TestIndependentOpsHideUnderBottleneck(t *testing.T) {
	// The port model's defining property (and the Fig. 8 mechanism):
	// adding ALU work to a load-bound instruction mix costs nothing
	// until the ALU ports saturate.
	a := Get(Skylake)
	var loads vek.Tally
	loads.Add(vek.OpGather32, vek.W256, 1000) // load-port bound
	base := a.Cycles(&loads)
	withALU := loads
	withALU.Add(vek.OpAddSat16, vek.W256, 1000) // 500 ALU cycles < 4000 load cycles
	if a.Cycles(&withALU) != base {
		t.Errorf("ALU work under a load bottleneck should be free: %.0f vs %.0f",
			a.Cycles(&withALU), base)
	}
	// But enough ALU work eventually becomes the bottleneck.
	withALU.Add(vek.OpAddSat16, vek.W256, 20000)
	if a.Cycles(&withALU) <= base {
		t.Error("saturating the ALU ports should raise the cycle count")
	}
}

func TestAVX512NotTwiceAsFast(t *testing.T) {
	// The Fig. 6 shape: a 512-bit kernel issuing half the ops must not
	// get the full 2x, because of downclocking and port fusion.
	skx := Get(Skylake)
	var t256, t512 vek.Tally
	mix := []struct {
		op vek.Op
		n  uint64
	}{
		{vek.OpLoad, 4}, {vek.OpAddSat16, 2}, {vek.OpMax16, 4},
		{vek.OpSubSat16, 2}, {vek.OpStore, 3}, {vek.OpLaneShift, 2},
		{vek.OpGather32, 2},
	}
	const steps = 1000
	for _, m := range mix {
		t256.Add(m.op, vek.W256, m.n*steps)
		t512.Add(m.op, vek.W512, m.n*steps/2) // half the issues for the same cells
	}
	s256 := skx.Cycles(&t256) / skx.Freq(1, vek.W256)
	s512 := skx.Cycles(&t512) / skx.Freq(1, vek.W512)
	speedup := s256 / s512
	if speedup >= 1.9 {
		t.Errorf("AVX512 speedup %.2f should be well below 2x", speedup)
	}
	if speedup <= 0.9 {
		t.Errorf("AVX512 speedup %.2f should not collapse", speedup)
	}
}

func TestCycles512FallbackOnAVX2Machine(t *testing.T) {
	hsw := Get(Haswell)
	var t512 vek.Tally
	t512.Add(vek.OpAddSat8, vek.W512, 100)
	var t256 vek.Tally
	t256.Add(vek.OpAddSat8, vek.W256, 200)
	if hsw.Cycles(&t512) != hsw.Cycles(&t256) {
		t.Error("512-bit work on AVX2 machine should cost exactly two 256-bit halves")
	}
}

func TestOccupancySeparatesGatherLoads(t *testing.T) {
	a := Get(Skylake)
	var tal vek.Tally
	tal.Add(vek.OpGather32, vek.W256, 10)
	tal.Add(vek.OpLoad, vek.W256, 10)
	o := a.Occupancy(&tal)
	if o.GatherLoad != 40 {
		t.Errorf("gather load occupancy = %.1f, want 40", o.GatherLoad)
	}
	if o.Load != 5 {
		t.Errorf("plain load occupancy = %.1f, want 5", o.Load)
	}
}

func TestMissFactorOnlyScalesPlainMemory(t *testing.T) {
	// A gather-dominated mix must not get more expensive with a bigger
	// working set (its table is L1 resident); a streaming-load mix
	// must.
	a := Get(Skylake)
	var gathers, streams vek.Tally
	gathers.Add(vek.OpGather32, vek.W256, 1000)
	streams.Add(vek.OpLoad, vek.W256, 8000)
	if a.CyclesWithMiss(&gathers, 2.6) != a.CyclesWithMiss(&gathers, 1) {
		t.Error("gather cost should not scale with the working set")
	}
	if a.CyclesWithMiss(&streams, 2.6) <= a.CyclesWithMiss(&streams, 1) {
		t.Error("streaming loads must scale with the working set")
	}
}

func TestDominantWidth(t *testing.T) {
	var t1 vek.Tally
	t1.Add(vek.OpAddSat8, vek.W256, 10)
	if DominantWidth(&t1) != vek.W256 {
		t.Error("256-dominant tally misclassified")
	}
	t1.Add(vek.OpAddSat8, vek.W512, 20)
	if DominantWidth(&t1) != vek.W512 {
		t.Error("512-dominant tally misclassified")
	}
	if DominantWidth(nil) != vek.W256 {
		t.Error("nil tally should default to 256")
	}
}

func TestSecondsPositive(t *testing.T) {
	var tal vek.Tally
	tal.Add(vek.OpMax8, vek.W256, 1000)
	for _, a := range All() {
		s1 := a.Seconds(&tal, 1)
		sN := a.Seconds(&tal, a.Cores)
		if s1 <= 0 {
			t.Errorf("%s: nonpositive seconds", a.Name)
		}
		if sN < s1 {
			t.Errorf("%s: work should take at least as long at all-core frequency", a.Name)
		}
	}
}

func TestNilTallyCycles(t *testing.T) {
	if Get(Haswell).Cycles(nil) != 0 {
		t.Error("nil tally should cost 0 cycles")
	}
}

func TestIssueBandwidthBound(t *testing.T) {
	// Many cheap uops must be bounded by issue width, not port sums —
	// and that bound is NOT scaled by the dependency penalty (uops
	// retire in dependency bubbles; see CyclesWithMiss).
	a := Get(Skylake)
	var tal vek.Tally
	// A balanced logic+load+store mix can sustain >4 uops/cycle of
	// port capacity, so the 4-wide issue front end becomes the limit:
	// resources peak at 1000 cycles (x1.3 dep = 1300) but 6000 uops
	// need 1500 issue cycles.
	tal.Add(vek.OpLogic, vek.W256, 3000) // 990 ALU cycles
	tal.Add(vek.OpLoad, vek.W256, 2000)  // 1000 load cycles
	tal.Add(vek.OpStore, vek.W256, 1000) // 1000 store cycles
	got := a.Cycles(&tal)
	want := 6000.0 / float64(a.SlotsPerCycle) // unscaled uop bound
	if got != want {
		t.Errorf("cycles %.0f, want the unscaled issue-bandwidth bound %.0f", got, want)
	}
}

func TestArchGenerationOrdering(t *testing.T) {
	// Newer generations must model faster on the same kernel mix:
	// seconds(Haswell) >= seconds(Broadwell) >= seconds(Skylake) >=
	// seconds(Cascadelake) for a representative gather+ALU mix.
	var tal vek.Tally
	tal.Add(vek.OpGather32, vek.W256, 1000)
	tal.Add(vek.OpAddSat16, vek.W256, 4000)
	tal.Add(vek.OpMax16, vek.W256, 4000)
	tal.Add(vek.OpLoad, vek.W256, 3000)
	tal.Add(vek.OpStore, vek.W256, 1500)
	order := []ID{Haswell, Broadwell, Skylake, Cascadelake}
	prev := Get(order[0]).Seconds(&tal, 1)
	for _, id := range order[1:] {
		s := Get(id).Seconds(&tal, 1)
		if s > prev {
			t.Errorf("%s (%.3g s) should not be slower than its predecessor (%.3g s)",
				Get(id).Name, s, prev)
		}
		prev = s
	}
}

func TestHaswellBlendOnP5(t *testing.T) {
	// The HSW-specific hazard: vpblendvb occupies the shuffle port.
	hsw := Get(Haswell)
	skx := Get(Skylake)
	if hsw.Port256[vek.OpBlend].P5 <= skx.Port256[vek.OpBlend].P5 {
		t.Error("Haswell blends should pressure p5 more than Skylake")
	}
}
