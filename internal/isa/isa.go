// Package isa models the processor architectures of the paper's
// evaluation (§IV-A): Haswell E5-2660, Broadwell E5-2680, Skylake Gold
// 6132, Cascadelake Gold 6242, and Alderlake i9-12900HK.
//
// The performance model is a port-occupancy bottleneck model: every
// opcode class occupies the shuffle port (p5), the vector/scalar ALU
// ports (p0/p1), the load ports, and the store port for some number of
// cycles, and the modeled execution time is the most-occupied
// resource, bounded below by issue bandwidth, inflated by a
// per-microarchitecture dependency penalty for the wavefront
// recurrence. This captures the effects the paper observes on real
// hardware: gathers saturating the load/shuffle ports (core bound,
// §IV-F), traceback recording hiding under the gather bottleneck
// (Fig. 8), and AVX-512's port fusion eating most of its theoretical
// 2x (Fig. 6). The frequency side models single-core vs all-core turbo
// droop and AVX license offsets (§IV-E).
//
// The models substitute for the paper's physical machines: kernels run
// on the emulated vector machine (internal/vek) which tallies issued
// operations, and isa converts tallies into modeled cycles and
// wall-clock seconds per architecture. Absolute numbers are synthetic;
// the relative shapes follow published port tables and the paper's
// observations.
package isa

import (
	"fmt"

	"swvec/internal/vek"
)

// ID selects one of the modeled architectures.
type ID int

const (
	// Haswell models the Intel Xeon E5-2660 (8 cores) baseline.
	Haswell ID = iota
	// Broadwell models the Intel Xeon E5-2680 (14 cores) baseline.
	Broadwell
	// Skylake models the Intel Xeon Gold 6132 (16 cores).
	Skylake
	// Cascadelake models the Intel Xeon Gold 6242 (16 cores).
	Cascadelake
	// Alderlake models the Intel i9-12900HK (10 cores), used by the
	// paper for the memory analysis.
	Alderlake

	// NumArchs is the number of modeled architectures.
	NumArchs int = iota
)

// PortCost is the per-issue occupancy of each execution resource, in
// cycles. A zero field means the op does not use that resource.
type PortCost struct {
	// P5 is the shuffle/permute port.
	P5 float64
	// ALU is the combined vector/scalar arithmetic throughput
	// (p0+p1-style: 0.5 means two such ops issue per cycle).
	ALU float64
	// Load is the load-port occupancy (two load ports: a plain load
	// costs 0.5).
	Load float64
	// Store is the store-port occupancy.
	Store float64
	// Uops is the retired micro-op count (issue-bandwidth bound and
	// retiring-slots estimate).
	Uops float64
}

// Occupancy is a tally folded onto the execution resources.
// GatherLoad is the load-port occupancy of gathers into the
// L1-resident substitution matrix; it shares the load ports with Load
// but is exempt from cache-miss scaling and from memory-stall
// accounting (Vtune counts saturated ports as core bound).
type Occupancy struct {
	P5, ALU, Load, GatherLoad, Store, Uops float64
}

// Arch describes one modeled processor.
type Arch struct {
	// ID is the architecture selector.
	ID ID
	// Name is the marketing name used in figure labels.
	Name string
	// Cores is the physical core count; ThreadsPerCore is 2 with
	// hyperthreading.
	Cores          int
	ThreadsPerCore int
	// Turbo1GHz is the single-core turbo frequency; TurboAllGHz the
	// all-core turbo. The droop curve interpolates between them
	// (§IV-E's frequency variability).
	Turbo1GHz   float64
	TurboAllGHz float64
	// AVX2OffsetGHz and AVX512OffsetGHz are the license-based
	// frequency reductions for 256-/512-bit heavy instruction streams.
	AVX2OffsetGHz   float64
	AVX512OffsetGHz float64
	// HasAVX512 reports whether 512-bit kernels can run natively.
	HasAVX512 bool
	// SlotsPerCycle is the pipeline issue width.
	SlotsPerCycle int
	// Port256 and Port512 are per-opcode-class port occupancies.
	Port256 [vek.NumOps]PortCost
	Port512 [vek.NumOps]PortCost
	// DepPenalty inflates the bottleneck-resource time to account for
	// the wavefront dependency chains keeping ports from saturating.
	DepPenalty float64
	// HTEfficiency is the fraction of idle pipeline slots a second
	// hardware thread recovers (Fig. 11/12 hyperthreading gains).
	HTEfficiency float64
	// L1KB, L2KB and L3MBPerCore size the modeled cache hierarchy.
	L1KB, L2KB  int
	L3MBPerCore float64
	// MemBWGBs is the per-socket memory bandwidth.
	MemBWGBs float64
}

// base256 returns Skylake-generation port occupancies; per-arch
// constructors override what differs.
func base256() [vek.NumOps]PortCost {
	var c [vek.NumOps]PortCost
	c[vek.OpLoad] = PortCost{Load: 0.5, Uops: 1}
	c[vek.OpStore] = PortCost{Store: 1, Uops: 1}
	c[vek.OpBroadcast] = PortCost{P5: 1, Uops: 1}
	alu := PortCost{ALU: 0.5, Uops: 1}
	for _, op := range []vek.Op{
		vek.OpAddSat8, vek.OpSubSat8, vek.OpAddSat16, vek.OpSubSat16,
		vek.OpMax8, vek.OpMax16, vek.OpMax32, vek.OpMin8, vek.OpMin16,
		vek.OpCmpGt8, vek.OpCmpGt16, vek.OpCmpEq8,
	} {
		c[op] = alu
	}
	c[vek.OpAdd32] = PortCost{ALU: 0.33, Uops: 1}
	c[vek.OpSub32] = PortCost{ALU: 0.33, Uops: 1}
	c[vek.OpLogic] = PortCost{ALU: 0.33, Uops: 1}
	c[vek.OpBlend] = PortCost{ALU: 0.67, Uops: 2} // vpblendvb: 2 uops p015
	c[vek.OpShuffle] = PortCost{P5: 1, Uops: 1}
	c[vek.OpPermute] = PortCost{P5: 1, Uops: 1}
	c[vek.OpLaneShift] = PortCost{P5: 2, Uops: 2} // vperm2i128 + vpalignr
	// vpgatherdd ymm: 8 element loads on 2 load ports plus index
	// shuffling and merge uops.
	c[vek.OpGather32] = PortCost{Load: 4, P5: 1, ALU: 1, Uops: 5}
	c[vek.OpMoveMask] = PortCost{ALU: 1, Uops: 1}
	c[vek.OpReduce] = PortCost{P5: 2.5, ALU: 2.5, Uops: 10} // log2(lanes) shuffle+max
	c[vek.OpUnpack] = PortCost{P5: 1, Uops: 1}
	// Scalar fallback: 4-wide scalar ALU, 2 load ports, 1 store port.
	c[vek.OpScalar] = PortCost{ALU: 0.25, Uops: 1}
	c[vek.OpScalarLoad] = PortCost{Load: 0.5, Uops: 1}
	c[vek.OpScalarStore] = PortCost{Store: 1, Uops: 1}
	return c
}

// widen512 derives AVX-512 occupancies: ALU ops fuse port 0 and 1
// (one 512-bit op per cycle instead of two 256-bit), the shuffle port
// handles one 512-bit shuffle per cycle, gathers double their load
// work, stores occupy the single store port for a full cycle.
func widen512(c256 [vek.NumOps]PortCost) [vek.NumOps]PortCost {
	c := c256
	for i := range c {
		if c[i].ALU > 0 {
			c[i].ALU *= 2
		}
	}
	c[vek.OpGather32] = PortCost{Load: 8, P5: 1.5, ALU: 2, Uops: 9}
	c[vek.OpLaneShift] = PortCost{P5: 1.5, Uops: 1} // valignd is one 512-bit issue
	c[vek.OpBlend] = PortCost{ALU: 1, Uops: 1}      // mask blends are cheap on AVX-512
	c[vek.OpReduce] = PortCost{P5: 3, ALU: 3, Uops: 12}
	return c
}

var archs = buildArchs()

func buildArchs() [NumArchs]*Arch {
	var out [NumArchs]*Arch

	hsw := &Arch{
		ID: Haswell, Name: "Haswell E5-2660", Cores: 8, ThreadsPerCore: 2,
		Turbo1GHz: 3.3, TurboAllGHz: 2.9, AVX2OffsetGHz: 0.2,
		HasAVX512: false, SlotsPerCycle: 4,
		DepPenalty: 1.45, HTEfficiency: 0.55,
		L1KB: 32, L2KB: 256, L3MBPerCore: 2.5, MemBWGBs: 59,
	}
	hsw.Port256 = base256()
	// First-generation gather is microcoded: heavy on every resource.
	hsw.Port256[vek.OpGather32] = PortCost{Load: 6, P5: 4, ALU: 3, Uops: 20}
	// HSW integer SIMD runs on p1+p5 only: ALU ops contend with the
	// shuffle port.
	for _, op := range []vek.Op{
		vek.OpAddSat8, vek.OpSubSat8, vek.OpAddSat16, vek.OpSubSat16,
		vek.OpMax8, vek.OpMax16, vek.OpMax32, vek.OpMin8, vek.OpMin16,
		vek.OpCmpGt8, vek.OpCmpGt16, vek.OpCmpEq8,
	} {
		hsw.Port256[op] = PortCost{ALU: 0.5, P5: 0.25, Uops: 1}
	}
	hsw.Port256[vek.OpBlend] = PortCost{P5: 2, Uops: 2} // vpblendvb: 2 p5 uops
	out[Haswell] = hsw

	bdw := &Arch{
		ID: Broadwell, Name: "Broadwell E5-2680", Cores: 14, ThreadsPerCore: 2,
		Turbo1GHz: 3.3, TurboAllGHz: 2.8, AVX2OffsetGHz: 0.2,
		HasAVX512: false, SlotsPerCycle: 4,
		DepPenalty: 1.40, HTEfficiency: 0.55,
		L1KB: 32, L2KB: 256, L3MBPerCore: 2.5, MemBWGBs: 68,
	}
	bdw.Port256 = hsw.Port256
	bdw.Port256[vek.OpGather32] = PortCost{Load: 5, P5: 2, ALU: 2, Uops: 12}
	out[Broadwell] = bdw

	skx := &Arch{
		ID: Skylake, Name: "Skylake Gold 6132", Cores: 16, ThreadsPerCore: 2,
		Turbo1GHz: 3.7, TurboAllGHz: 3.0, AVX2OffsetGHz: 0.3, AVX512OffsetGHz: 0.7,
		HasAVX512: true, SlotsPerCycle: 4,
		DepPenalty: 1.30, HTEfficiency: 0.60,
		L1KB: 32, L2KB: 1024, L3MBPerCore: 1.375, MemBWGBs: 119,
	}
	skx.Port256 = base256()
	skx.Port512 = widen512(skx.Port256)
	out[Skylake] = skx

	clx := &Arch{
		ID: Cascadelake, Name: "Cascadelake Gold 6242", Cores: 16, ThreadsPerCore: 2,
		Turbo1GHz: 3.9, TurboAllGHz: 3.1, AVX2OffsetGHz: 0.3, AVX512OffsetGHz: 0.6,
		HasAVX512: true, SlotsPerCycle: 4,
		DepPenalty: 1.27, HTEfficiency: 0.62,
		L1KB: 32, L2KB: 1024, L3MBPerCore: 1.375, MemBWGBs: 131,
	}
	clx.Port256 = base256()
	clx.Port512 = widen512(clx.Port256)
	out[Cascadelake] = clx

	adl := &Arch{
		ID: Alderlake, Name: "Alderlake i9-12900HK", Cores: 10, ThreadsPerCore: 2,
		Turbo1GHz: 5.0, TurboAllGHz: 3.8, AVX2OffsetGHz: 0.2,
		HasAVX512: false, SlotsPerCycle: 6,
		DepPenalty: 1.20, HTEfficiency: 0.50,
		L1KB: 48, L2KB: 1280, L3MBPerCore: 2.4, MemBWGBs: 76,
	}
	adl.Port256 = base256()
	adl.Port256[vek.OpGather32] = PortCost{Load: 4.5, P5: 1, ALU: 1.5, Uops: 6}
	// Alderlake has a third vector ALU port.
	for i := range adl.Port256 {
		if adl.Port256[i].ALU > 0 && adl.Port256[i].P5 == 0 {
			adl.Port256[i].ALU *= 0.75
		}
	}
	out[Alderlake] = adl

	return out
}

// Get returns the shared model for id.
func Get(id ID) *Arch { return archs[id] }

// native is the architecture whose vector capabilities the process
// pretends to run on; width auto-resolution (sched.Options.Width == 0)
// consults it. The default is Alderlake — the paper's local machine —
// which has no AVX-512, so auto resolves to 256-bit unless a caller
// opts into a 512-capable model via SetNative.
var native = archs[Alderlake]

// Native returns the architecture model used for capability detection.
func Native() *Arch { return native }

// SetNative selects the architecture model used for capability
// detection. It is not synchronized; call it during setup, before
// starting searches.
func SetNative(id ID) { native = archs[id] }

// All returns every modeled architecture in paper order.
func All() []*Arch {
	return []*Arch{archs[Haswell], archs[Broadwell], archs[Skylake], archs[Cascadelake], archs[Alderlake]}
}

// Evaluated returns the four architectures used for the kernel figures
// (Alderlake is only used for the memory analysis).
func Evaluated() []*Arch {
	return []*Arch{archs[Haswell], archs[Broadwell], archs[Skylake], archs[Cascadelake]}
}

// String returns the architecture name.
func (a *Arch) String() string { return a.Name }

// Threads returns the total hardware thread count.
func (a *Arch) Threads() int { return a.Cores * a.ThreadsPerCore }

// Freq returns the modeled operating frequency in GHz with activeCores
// cores busy running width-w vector code (§IV-E droop + AVX license).
func (a *Arch) Freq(activeCores int, w vek.Width) float64 {
	if activeCores < 1 {
		activeCores = 1
	}
	if activeCores > a.Cores {
		activeCores = a.Cores
	}
	f := a.Turbo1GHz
	if a.Cores > 1 {
		frac := float64(activeCores-1) / float64(a.Cores-1)
		f = a.Turbo1GHz - (a.Turbo1GHz-a.TurboAllGHz)*frac
	}
	switch w {
	case vek.W512:
		f -= a.AVX512OffsetGHz
	default:
		f -= a.AVX2OffsetGHz
	}
	if f < 0.8 {
		f = 0.8
	}
	return f
}

// Occupancy folds a tally onto the execution resources. 512-bit work
// on a non-AVX512 machine executes as two 256-bit halves.
func (a *Arch) Occupancy(t *vek.Tally) Occupancy {
	var o Occupancy
	if t == nil {
		return o
	}
	for i := 0; i < vek.NumOps; i++ {
		n := float64(t.N256[i])
		pc := a.Port256[i]
		isGather := vek.Op(i) == vek.OpGather32
		if t.N512[i] > 0 {
			if a.HasAVX512 {
				w := a.Port512[i]
				n5 := float64(t.N512[i])
				o.P5 += n5 * w.P5
				o.ALU += n5 * w.ALU
				if isGather {
					o.GatherLoad += n5 * w.Load
				} else {
					o.Load += n5 * w.Load
				}
				o.Store += n5 * w.Store
				o.Uops += n5 * w.Uops
			} else {
				n += 2 * float64(t.N512[i])
			}
		}
		o.P5 += n * pc.P5
		o.ALU += n * pc.ALU
		if isGather {
			o.GatherLoad += n * pc.Load
		} else {
			o.Load += n * pc.Load
		}
		o.Store += n * pc.Store
		o.Uops += n * pc.Uops
	}
	return o
}

// CyclesWithMiss converts a tally into modeled core cycles with the
// given memory miss factor applied to load/store occupancy: the
// bottleneck resource, bounded by issue bandwidth, inflated by the
// dependency penalty.
func (a *Arch) CyclesWithMiss(t *vek.Tally, missFactor float64) float64 {
	o := a.Occupancy(t)
	if missFactor < 1 {
		missFactor = 1
	}
	crit := o.P5
	if o.ALU > crit {
		crit = o.ALU
	}
	if v := o.Load*missFactor + o.GatherLoad; v > crit {
		crit = v
	}
	if v := o.Store * missFactor; v > crit {
		crit = v
	}
	// The dependency penalty stretches the resource-bound time (the
	// wavefront recurrence keeps ports from saturating), but the
	// stretched schedule has idle issue slots that independent work can
	// fill — so the issue-bandwidth bound applies to the raw uop count,
	// unscaled. This is the mechanism behind the paper's "traceback is
	// free" observation (Fig. 8): the direction-encoding uops retire in
	// the dependency bubbles of the load/gather-bound kernel.
	cycles := crit * a.DepPenalty
	if v := o.Uops / float64(a.SlotsPerCycle); v > cycles {
		cycles = v
	}
	return cycles
}

// Cycles converts a tally into modeled core cycles with an L1-resident
// working set.
func (a *Arch) Cycles(t *vek.Tally) float64 { return a.CyclesWithMiss(t, 1) }

// DominantWidth reports the register width that dominates the tally,
// which selects the AVX frequency license.
func DominantWidth(t *vek.Tally) vek.Width {
	if t == nil {
		return vek.W256
	}
	var n256, n512 uint64
	for i := 0; i < vek.NumOps; i++ {
		n256 += t.N256[i]
		n512 += t.N512[i]
	}
	if n512 > n256 {
		return vek.W512
	}
	return vek.W256
}

// Seconds converts a tally into modeled wall-clock seconds on one
// thread with activeCores cores busy (for the frequency license).
func (a *Arch) Seconds(t *vek.Tally, activeCores int) float64 {
	w := DominantWidth(t)
	return a.Cycles(t) / (a.Freq(activeCores, w) * 1e9)
}

// Validate checks internal consistency of the model.
func (a *Arch) Validate() error {
	if a.Cores <= 0 || a.ThreadsPerCore <= 0 {
		return fmt.Errorf("isa: %s: bad core counts", a.Name)
	}
	if a.TurboAllGHz > a.Turbo1GHz {
		return fmt.Errorf("isa: %s: all-core turbo above single-core turbo", a.Name)
	}
	for i := 0; i < vek.NumOps; i++ {
		pc := a.Port256[i]
		if pc.Uops <= 0 {
			return fmt.Errorf("isa: %s: op %v retires no uops", a.Name, vek.Op(i))
		}
		if pc.P5 == 0 && pc.ALU == 0 && pc.Load == 0 && pc.Store == 0 {
			return fmt.Errorf("isa: %s: op %v occupies no resource", a.Name, vek.Op(i))
		}
		if a.HasAVX512 {
			w := a.Port512[i]
			if w.Uops <= 0 {
				return fmt.Errorf("isa: %s: 512-bit op %v retires no uops", a.Name, vek.Op(i))
			}
		}
	}
	if a.DepPenalty < 1 {
		return fmt.Errorf("isa: %s: dependency penalty below 1", a.Name)
	}
	if a.HTEfficiency < 0 || a.HTEfficiency > 1 {
		return fmt.Errorf("isa: %s: HT efficiency out of [0,1]", a.Name)
	}
	return nil
}
