package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %f, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("std = %f, want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("empty/singleton cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %f, want 4", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestFormatGCUPS(t *testing.T) {
	cases := map[float64]string{
		123.4: "123",
		12.34: "12.3",
		1.234: "1.23",
	}
	for v, want := range cases {
		if got := FormatGCUPS(v); got != want {
			t.Errorf("FormatGCUPS(%f) = %q, want %q", v, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Fig X",
		Headers: []string{"arch", "gcups"},
		Note:    "higher is better",
	}
	tb.AddRow("Skylake", 12.5)
	tb.AddRow("Haswell", 3.25)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== Fig X ==", "arch", "Skylake", "12.5", "3.25", "note: higher is better"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `quo"te`)
	tb.AddRow(7, 1.5)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `"x,y","quo""te"` {
		t.Errorf("quoted row = %q", lines[1])
	}
	if lines[2] != "7,1.50" {
		t.Errorf("numeric row = %q", lines[2])
	}
}

func TestAddRowMixedTypes(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b", "c"}}
	tb.AddRow(1, "two", 3.0)
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "1" || tb.Rows[0][1] != "two" {
		t.Fatalf("row = %v", tb.Rows)
	}
}
