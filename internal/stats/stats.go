// Package stats provides the summary math and rendering used by the
// figure harness: means and deviations, GCUPS formatting, and aligned
// ASCII / CSV tables that print the same rows and series the paper's
// figures plot.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FormatGCUPS renders a throughput value with sensible precision.
func FormatGCUPS(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Table is a titled grid for figure output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Note is printed under the table (reading guidance, caveats).
	Note string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatGCUPS(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header row first). Cells
// containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
