package tuner

import (
	"testing"
)

// quadratic fitness with known optimum at x=7, y=3.
func quad(cfg Config) float64 {
	dx := float64(cfg["x"] - 7)
	dy := float64(cfg["y"] - 3)
	return 10 + dx*dx + dy*dy
}

func quadParams() []Param {
	xs := make([]int, 16)
	ys := make([]int, 16)
	for i := range xs {
		xs[i] = i
		ys[i] = i
	}
	return []Param{{Name: "x", Values: xs}, {Name: "y", Values: ys}}
}

func TestOptimizeFindsNearOptimum(t *testing.T) {
	opt := DefaultOptions()
	opt.Generations = 25
	opt.Population = 20
	res, err := Optimize(quadParams(), quad, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 12 {
		t.Errorf("best fitness %.1f, expected near 10 (found x=%d y=%d)",
			res.BestFitness, res.Best["x"], res.Best["y"])
	}
}

func TestOptimizeNeverWorseThanBaseline(t *testing.T) {
	// The default config is seeded into the population, so the result
	// can only match or beat it.
	res, err := Optimize(quadParams(), quad, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > res.BaselineFitness {
		t.Errorf("best %.2f worse than baseline %.2f", res.BestFitness, res.BaselineFitness)
	}
	if res.Improvement() < 0 {
		t.Errorf("negative improvement %.3f", res.Improvement())
	}
}

func TestOptimizeDeterministicInSeed(t *testing.T) {
	opt := DefaultOptions()
	a, err := Optimize(quadParams(), quad, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(quadParams(), quad, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Error("same seed produced different runs")
	}
	opt.Seed = 99
	c, err := Optimize(quadParams(), quad, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds explore differently (fitness may coincide, but
	// histories rarely do on a 256-point space).
	same := len(a.History) == len(c.History)
	if same {
		for i := range a.History {
			if a.History[i] != c.History[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: different seeds matched exactly; acceptable but unusual")
	}
}

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	res, err := Optimize(quadParams(), quad, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best fitness regressed at generation %d: %v", i, res.History)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, quad, DefaultOptions()); err == nil {
		t.Error("empty registry accepted")
	}
	if _, err := Optimize([]Param{{Name: "x"}}, quad, DefaultOptions()); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	opt := Options{Population: 1, Generations: 0, MutationRate: -2, Elite: 50}
	res, err := Optimize(quadParams(), quad, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < 4 {
		t.Errorf("normalization failed: %d evaluations", res.Evaluations)
	}
}

func TestKernelParamsRegistry(t *testing.T) {
	params := KernelParams()
	if len(params) < 4 {
		t.Fatalf("registry too small: %d", len(params))
	}
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.Name] {
			t.Errorf("duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Values) == 0 {
			t.Errorf("parameter %q has empty domain", p.Name)
		}
	}
	if !seen["block_cols"] {
		t.Error("registry must include the batch block size (§IV-I)")
	}
}

func TestImprovementZeroBaselineSafe(t *testing.T) {
	r := &Result{BaselineFitness: 0, BestFitness: 1}
	if r.Improvement() != 0 {
		t.Error("zero baseline should yield 0 improvement")
	}
}
