// Package tuner implements the evolutionary hyperparameter
// optimization of §III-E / §IV-D: a randomly initialized population of
// parameter assignments evolves by mutation and crossover, each
// generation is evaluated against a fitness function (kernel runtime,
// modeled or measured), and the best individual is selected at the
// end. As the paper notes, the method is not guaranteed to find the
// optimum and its outcome depends on the datasets used — it is a
// search heuristic, not a solver.
//
// The paper tunes GCC compiler hyperparameters. This reproduction
// tunes the simulator's kernel hyperparameters (scalar-fallback
// threshold, tail padding, batch block size, layout choices) through
// the same algorithm; Params exposes the registry.
package tuner

import (
	"fmt"
	"math/rand"
	"sort"
)

// Param is one tunable hyperparameter with a discrete value domain —
// the analogue of one GCC --param with its allowable set of values.
type Param struct {
	Name   string
	Values []int
}

// Config is an assignment of a value to every parameter, by name.
type Config map[string]int

// clone copies a config.
func (c Config) clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Fitness evaluates a configuration; lower is better (runtime).
type Fitness func(Config) float64

// Options controls the evolutionary search.
type Options struct {
	// Population is the number of individuals per generation.
	Population int
	// Generations is the number of evolution rounds.
	Generations int
	// MutationRate is the per-gene mutation probability.
	MutationRate float64
	// Elite individuals survive unchanged into the next generation.
	Elite int
	// Seed makes the search reproducible.
	Seed int64
}

// DefaultOptions mirrors the scale of the paper's search.
func DefaultOptions() Options {
	return Options{Population: 16, Generations: 12, MutationRate: 0.25, Elite: 2, Seed: 1}
}

func (o *Options) normalize() {
	if o.Population < 4 {
		o.Population = 4
	}
	if o.Generations < 1 {
		o.Generations = 1
	}
	if o.MutationRate <= 0 || o.MutationRate > 1 {
		o.MutationRate = 0.25
	}
	if o.Elite < 1 {
		o.Elite = 1
	}
	if o.Elite > o.Population/2 {
		o.Elite = o.Population / 2
	}
}

// Result is the outcome of a tuning run.
type Result struct {
	// Best is the fittest configuration found.
	Best Config
	// BestFitness is its fitness value.
	BestFitness float64
	// BaselineFitness is the fitness of the default configuration
	// (first value of every parameter domain).
	BaselineFitness float64
	// History records the best fitness after each generation.
	History []float64
	// Evaluations counts fitness calls.
	Evaluations int
}

// Improvement returns the fractional gain over the baseline
// (0.10 = 10% faster).
func (r *Result) Improvement() float64 {
	if r.BaselineFitness <= 0 {
		return 0
	}
	return 1 - r.BestFitness/r.BaselineFitness
}

type individual struct {
	cfg Config
	fit float64
}

// Optimize runs the evolutionary search over the parameter registry.
func Optimize(params []Param, fit Fitness, opt Options) (*Result, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("tuner: no parameters to tune")
	}
	for _, p := range params {
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("tuner: parameter %q has an empty domain", p.Name)
		}
	}
	opt.normalize()
	rng := rand.New(rand.NewSource(opt.Seed))

	res := &Result{}
	defaultCfg := make(Config, len(params))
	for _, p := range params {
		defaultCfg[p.Name] = p.Values[0]
	}
	res.BaselineFitness = fit(defaultCfg)
	res.Evaluations++

	randomCfg := func() Config {
		cfg := make(Config, len(params))
		for _, p := range params {
			cfg[p.Name] = p.Values[rng.Intn(len(p.Values))]
		}
		return cfg
	}
	mutate := func(cfg Config) {
		for _, p := range params {
			if rng.Float64() < opt.MutationRate {
				cfg[p.Name] = p.Values[rng.Intn(len(p.Values))]
			}
		}
	}
	crossover := func(a, b Config) Config {
		child := make(Config, len(params))
		for _, p := range params {
			if rng.Intn(2) == 0 {
				child[p.Name] = a[p.Name]
			} else {
				child[p.Name] = b[p.Name]
			}
		}
		return child
	}

	pop := make([]individual, opt.Population)
	// Seed the population with the default configuration plus random
	// individuals, so the search can only improve on the baseline.
	pop[0] = individual{cfg: defaultCfg.clone(), fit: res.BaselineFitness}
	for i := 1; i < opt.Population; i++ {
		cfg := randomCfg()
		pop[i] = individual{cfg: cfg, fit: fit(cfg)}
		res.Evaluations++
	}

	for gen := 0; gen < opt.Generations; gen++ {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit < pop[b].fit })
		res.History = append(res.History, pop[0].fit)
		next := make([]individual, 0, opt.Population)
		next = append(next, pop[:opt.Elite]...)
		for len(next) < opt.Population {
			// Tournament selection of two parents from the top half.
			half := opt.Population / 2
			a := pop[rng.Intn(half)]
			b := pop[rng.Intn(half)]
			child := crossover(a.cfg, b.cfg)
			mutate(child)
			next = append(next, individual{cfg: child, fit: fit(child)})
			res.Evaluations++
		}
		pop = next
	}
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit < pop[b].fit })
	res.Best = pop[0].cfg
	res.BestFitness = pop[0].fit
	res.History = append(res.History, pop[0].fit)
	return res, nil
}

// KernelParams is the tunable registry of this reproduction's
// "compiler": the kernel and layout knobs that play the role of GCC's
// hyperparameters for the simulated machine. The first value of every
// domain is the hand-tuned default.
// The first value of every domain is the untuned default — the
// analogue of compiling with plain -O3: scalar tails, eager per-vector
// reductions, unblocked batches, unsorted batching. The search
// discovers the paper's optimizations (padding, deferred maxima,
// length-sorted batches) where they pay off.
func KernelParams() []Param {
	return []Param{
		{Name: "scalar_threshold", Values: []int{8, 1, 2, 4, 12, 16}},
		{Name: "scalar_tail", Values: []int{1, 0}},
		{Name: "block_cols", Values: []int{0, 16, 32, 64, 128, 256, 512}},
		{Name: "sort_by_length", Values: []int{0, 1}},
		{Name: "eager_max", Values: []int{1, 0}},
	}
}
