package native

import "swvec/internal/submat"

// The pair kernels compute one query x one database sequence,
// row-major, carrying H-diagonal / H-left / E-left in registers and
// streaming the previous row's H and F through the caller's scratch
// rows. hRow and fRow need capacity for len(dseq) elements; the kernel
// initializes them (H row to 0, F row to the width's -inf), so no
// caller-side fill pass is required.
//
// The saturating arithmetic is spelled out as branch-light min/max
// clamps that are exact under the kernel invariants (H in [0, ceil],
// E/F at or above the element floor): max(a, b, floor) equals
// max(clamp(a), clamp(b)) when neither argument can exceed the
// ceiling, and min(hDiag+score, ceil) followed by max(..., 0) equals
// the modeled clamp-then-max sequence.

// Pair8 is the 8-bit pair kernel (the modeled 8x32/8x64 shapes, which
// saturate identically). Scores clamp at ceil8; saturated lanes are a
// lower bound and the caller escalates, exactly as with the modeled
// kernel. Gap penalties must already fit the byte range (the core
// entry point clamps them, mirroring the modeled Splat(Clamp(...))).
//
//sw:hotpath
func Pair8(q, dseq []uint8, mat *submat.Matrix, open, ext int32, hRow, fRow []int8) (score int32, saturated bool) {
	ds := dseq
	hr := hRow[:len(ds)]
	fr := fRow[:len(ds)]
	for j := range hr {
		hr[j] = 0
	}
	for j := range fr {
		fr[j] = negInf8
	}
	var best int32
	for i := 0; i < len(q); i++ {
		row := (*[submat.W]int8)(mat.Row(q[i]))
		hDiag := int32(0)
		hLeft := int32(0)
		eLeft := int32(negInf8)
		for j := 0; j < len(ds); j++ {
			sc := int32(row[ds[j]&matRowMask])
			hUp := int32(hr[j])
			f := max(int32(fr[j])-ext, hUp-open, floor8)
			e := max(eLeft-ext, hLeft-open, floor8)
			h := max(min(hDiag+sc, ceil8), 0, e, f)
			hr[j] = int8(h)
			fr[j] = int8(f)
			hDiag = hUp
			hLeft = h
			eLeft = e
			if h > best {
				best = h
			}
		}
	}
	return best, best >= ceil8
}

// Pair16 is the score-only 16-bit pair kernel (the modeled 16x16 and
// 16x32 shapes). Scores clamp at ceil16.
//
//sw:hotpath
func Pair16(q, dseq []uint8, mat *submat.Matrix, open, ext int32, hRow, fRow []int16) (score int32, saturated bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	ds := dseq
	hr := hRow[:len(ds)]
	fr := fRow[:len(ds)]
	for j := range hr {
		hr[j] = 0
	}
	for j := range fr {
		fr[j] = negInf16
	}
	var best int32
	for i := 0; i < len(q); i++ {
		row := (*[submat.W]int8)(mat.Row(q[i]))
		hDiag := int32(0)
		hLeft := int32(0)
		eLeft := int32(negInf16)
		for j := 0; j < len(ds); j++ {
			sc := int32(row[ds[j]&matRowMask])
			hUp := int32(hr[j])
			f := max(int32(fr[j])-ext, hUp-open, floor16)
			e := max(eLeft-ext, hLeft-open, floor16)
			h := max(min(hDiag+sc, ceil16), 0, e, f)
			hr[j] = int16(h)
			fr[j] = int16(f)
			hDiag = hUp
			hLeft = h
			eLeft = e
			if h > best {
				best = h
			}
		}
	}
	return best, best >= ceil16
}

// Pair16Pos is Pair16 with end-position tracking. The modeled tracker
// scans anti-diagonals in ascending order and takes a new best only on
// a strict improvement, so the winning cell is the maximum-scoring
// cell with the lexicographically smallest (i+j, i). This row-major
// kernel reproduces that tie-break explicitly. Matching the modeled
// contract, the coordinates are -1 when the best score is 0.
//
//sw:hotpath
func Pair16Pos(q, dseq []uint8, mat *submat.Matrix, open, ext int32, hRow, fRow []int16) (score int32, endQ, endD int, saturated bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	ds := dseq
	hr := hRow[:len(ds)]
	fr := fRow[:len(ds)]
	for j := range hr {
		hr[j] = 0
	}
	for j := range fr {
		fr[j] = negInf16
	}
	var best int32
	bi, bd := 0, 0 // 1-based row and anti-diagonal (i+j) of the best cell
	for i := 0; i < len(q); i++ {
		row := (*[submat.W]int8)(mat.Row(q[i]))
		hDiag := int32(0)
		hLeft := int32(0)
		eLeft := int32(negInf16)
		for j := 0; j < len(ds); j++ {
			sc := int32(row[ds[j]&matRowMask])
			hUp := int32(hr[j])
			f := max(int32(fr[j])-ext, hUp-open, floor16)
			e := max(eLeft-ext, hLeft-open, floor16)
			h := max(min(hDiag+sc, ceil16), 0, e, f)
			hr[j] = int16(h)
			fr[j] = int16(f)
			hDiag = hUp
			hLeft = h
			eLeft = e
			if h > best {
				best = h
				bi, bd = i+1, i+j+2
			} else if h == best && h != 0 {
				if d := i + j + 2; d < bd || (d == bd && i+1 < bi) {
					bi, bd = i+1, d
				}
			}
		}
	}
	endQ, endD = bi-1, bd-bi-1
	if best == 0 {
		endQ, endD = -1, -1
	}
	return best, endQ, endD, best >= ceil16
}

// Pair32 is the 32-bit pair kernel (the modeled 32x8 shape): plain
// modular arithmetic, no clamps, exactly like the modeled E32x8
// engine. Saturation (best >= ceil32) is reported for interface parity
// but is unreachable for any biologically plausible score.
//
//sw:hotpath
func Pair32(q, dseq []uint8, mat *submat.Matrix, open, ext int32, hRow, fRow []int32) (score int32, saturated bool) {
	ds := dseq
	hr := hRow[:len(ds)]
	fr := fRow[:len(ds)]
	for j := range hr {
		hr[j] = 0
	}
	for j := range fr {
		fr[j] = negInf32
	}
	var best int32
	for i := 0; i < len(q); i++ {
		row := (*[submat.W]int8)(mat.Row(q[i]))
		hDiag := int32(0)
		hLeft := int32(0)
		eLeft := int32(negInf32)
		for j := 0; j < len(ds); j++ {
			sc := int32(row[ds[j]&matRowMask])
			hUp := hr[j]
			f := max(fr[j]-ext, hUp-open)
			e := max(eLeft-ext, hLeft-open)
			h := max(hDiag+sc, 0, e, f)
			hr[j] = h
			fr[j] = f
			hDiag = hUp
			hLeft = h
			eLeft = e
			if h > best {
				best = h
			}
		}
	}
	return best, best >= ceil32
}
