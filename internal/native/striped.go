package native

// The striped kernels are the compiled specializations of the Farrar
// striped family (see internal/core/stripedg.go for the algorithm and
// the exactness argument). One function per (element width x lane
// count) shape, like the batch engines: fixed-size array pointers give
// the compiler constant trip counts and bounds-check-free lane loops.
//
// Every arithmetic step mirrors the modeled engine ops clamp for
// clamp — saturating add/sub as min/max against the element floor and
// ceiling, the lane rotate filling with 0 (column H carry) or the
// width's -inf (F carries) — so the results are bit-identical to the
// modeled striped kernel, which the differential fuzzers enforce.
//
// The caller supplies the flat striped profile
// (prof[(c*segLen+t)*lanes + l], built by the shared core builder),
// the column state rows (hStore/hLoad/eRow, capacity segLen*lanes;
// the kernel initializes them), and decon selects Snytsar's
// deconstructed lazy-F correction instead of the classic loop.

// lanesStriped8x32 is the lane count of the 256-bit 8-bit striped
// kernel; the other three shapes follow the same naming.
const (
	lanesStriped8x32  = 32
	lanesStriped8x64  = 64
	lanesStriped16x16 = 16
	lanesStriped16x32 = 32
)

// StripedScore8x32 is the 8-bit 32-lane striped kernel.
//
//sw:hotpath
func StripedScore8x32(prof []int8, segLen int, dseq []uint8, open, ext int32, decon bool, hStore, hLoad, eRow []int8) (int32, bool) {
	if open > ceil8 {
		open = ceil8
	}
	if ext > ceil8 {
		ext = ceil8
	}
	rows := segLen * lanesStriped8x32
	hs := hStore[:rows]
	hl := hLoad[:rows]
	er := eRow[:rows]
	for i := range hs {
		hs[i] = 0
	}
	for i := range hl {
		hl[i] = 0
	}
	for i := range er {
		er[i] = negInf8
	}
	var best int32
	var vH, vF, c [lanesStriped8x32]int32
	for j := 0; j < len(dseq); j++ {
		code := int(dseq[j] & matRowMask)
		pr := prof[code*rows : code*rows+rows]
		last := (*[lanesStriped8x32]int8)(hs[(segLen-1)*lanesStriped8x32:])
		for l := lanesStriped8x32 - 1; l > 0; l-- {
			vH[l] = int32(last[l-1])
		}
		vH[0] = 0
		hs, hl = hl, hs
		for l := range vF {
			vF[l] = negInf8
		}
		for t := 0; t < segLen; t++ {
			off := t * lanesStriped8x32
			prow := (*[lanesStriped8x32]int8)(pr[off:])
			hrow := (*[lanesStriped8x32]int8)(hs[off:])
			hlrow := (*[lanesStriped8x32]int8)(hl[off:])
			erow := (*[lanesStriped8x32]int8)(er[off:])
			for l := 0; l < lanesStriped8x32; l++ {
				e := int32(erow[l])
				h := max(min(vH[l]+int32(prow[l]), ceil8), e, vF[l], 0)
				if h > best {
					best = h
				}
				hrow[l] = int8(h)
				hGap := max(h-open, floor8)
				erow[l] = int8(max(e-ext, floor8, hGap))
				vF[l] = max(vF[l]-ext, floor8, hGap)
				vH[l] = int32(hlrow[l])
			}
		}
		if decon {
			for l := lanesStriped8x32 - 1; l > 0; l-- {
				c[l] = vF[l-1]
			}
			c[0] = negInf8
			d := int32(segLen) * ext
			for s := 1; s < lanesStriped8x32; s <<= 1 {
				dec := min(int32(s)*d, ceil8)
				for l := lanesStriped8x32 - 1; l >= 0; l-- {
					sh := int32(negInf8)
					if l >= s {
						// Masking with the power-of-two lane count is a no-op
						// under the l >= s guard, but it lets the compiler
						// prove the access in bounds (bcecheck).
						sh = c[(l-s)&(lanesStriped8x32-1)]
					}
					c[l] = max(c[l], max(sh-dec, floor8))
				}
			}
			any := false
			for l := range c {
				if c[l] > 0 {
					any = true
					break
				}
			}
			if any {
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped8x32]int8)(hs[t*lanesStriped8x32:])
					erow := (*[lanesStriped8x32]int8)(er[t*lanesStriped8x32:])
					for l := 0; l < lanesStriped8x32; l++ {
						h := int32(hrow[l])
						if c[l] > h {
							h = c[l]
							hrow[l] = int8(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor8)
						if hGap > int32(erow[l]) {
							erow[l] = int8(hGap)
						}
						c[l] = max(c[l]-ext, floor8)
					}
				}
			}
		} else {
		classic:
			for k := 0; k < lanesStriped8x32; k++ {
				for l := lanesStriped8x32 - 1; l > 0; l-- {
					vF[l] = vF[l-1]
				}
				vF[0] = negInf8
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped8x32]int8)(hs[t*lanesStriped8x32:])
					erow := (*[lanesStriped8x32]int8)(er[t*lanesStriped8x32:])
					any := false
					for l := 0; l < lanesStriped8x32; l++ {
						h := int32(hrow[l])
						if vF[l] > h {
							h = vF[l]
							hrow[l] = int8(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor8)
						if hGap > int32(erow[l]) {
							erow[l] = int8(hGap)
						}
						vF[l] = max(vF[l]-ext, floor8)
						if vF[l] > hGap {
							any = true
						}
					}
					if !any {
						break classic
					}
				}
			}
		}
	}
	return best, best >= ceil8
}

// StripedScore8x64 is the 8-bit 64-lane striped kernel.
//
//sw:hotpath
func StripedScore8x64(prof []int8, segLen int, dseq []uint8, open, ext int32, decon bool, hStore, hLoad, eRow []int8) (int32, bool) {
	if open > ceil8 {
		open = ceil8
	}
	if ext > ceil8 {
		ext = ceil8
	}
	rows := segLen * lanesStriped8x64
	hs := hStore[:rows]
	hl := hLoad[:rows]
	er := eRow[:rows]
	for i := range hs {
		hs[i] = 0
	}
	for i := range hl {
		hl[i] = 0
	}
	for i := range er {
		er[i] = negInf8
	}
	var best int32
	var vH, vF, c [lanesStriped8x64]int32
	for j := 0; j < len(dseq); j++ {
		code := int(dseq[j] & matRowMask)
		pr := prof[code*rows : code*rows+rows]
		last := (*[lanesStriped8x64]int8)(hs[(segLen-1)*lanesStriped8x64:])
		for l := lanesStriped8x64 - 1; l > 0; l-- {
			vH[l] = int32(last[l-1])
		}
		vH[0] = 0
		hs, hl = hl, hs
		for l := range vF {
			vF[l] = negInf8
		}
		for t := 0; t < segLen; t++ {
			off := t * lanesStriped8x64
			prow := (*[lanesStriped8x64]int8)(pr[off:])
			hrow := (*[lanesStriped8x64]int8)(hs[off:])
			hlrow := (*[lanesStriped8x64]int8)(hl[off:])
			erow := (*[lanesStriped8x64]int8)(er[off:])
			for l := 0; l < lanesStriped8x64; l++ {
				e := int32(erow[l])
				h := max(min(vH[l]+int32(prow[l]), ceil8), e, vF[l], 0)
				if h > best {
					best = h
				}
				hrow[l] = int8(h)
				hGap := max(h-open, floor8)
				erow[l] = int8(max(e-ext, floor8, hGap))
				vF[l] = max(vF[l]-ext, floor8, hGap)
				vH[l] = int32(hlrow[l])
			}
		}
		if decon {
			for l := lanesStriped8x64 - 1; l > 0; l-- {
				c[l] = vF[l-1]
			}
			c[0] = negInf8
			d := int32(segLen) * ext
			for s := 1; s < lanesStriped8x64; s <<= 1 {
				dec := min(int32(s)*d, ceil8)
				for l := lanesStriped8x64 - 1; l >= 0; l-- {
					sh := int32(negInf8)
					if l >= s {
						// See StripedScore8x32: mask is a no-op, proves bounds.
						sh = c[(l-s)&(lanesStriped8x64-1)]
					}
					c[l] = max(c[l], max(sh-dec, floor8))
				}
			}
			any := false
			for l := range c {
				if c[l] > 0 {
					any = true
					break
				}
			}
			if any {
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped8x64]int8)(hs[t*lanesStriped8x64:])
					erow := (*[lanesStriped8x64]int8)(er[t*lanesStriped8x64:])
					for l := 0; l < lanesStriped8x64; l++ {
						h := int32(hrow[l])
						if c[l] > h {
							h = c[l]
							hrow[l] = int8(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor8)
						if hGap > int32(erow[l]) {
							erow[l] = int8(hGap)
						}
						c[l] = max(c[l]-ext, floor8)
					}
				}
			}
		} else {
		classic:
			for k := 0; k < lanesStriped8x64; k++ {
				for l := lanesStriped8x64 - 1; l > 0; l-- {
					vF[l] = vF[l-1]
				}
				vF[0] = negInf8
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped8x64]int8)(hs[t*lanesStriped8x64:])
					erow := (*[lanesStriped8x64]int8)(er[t*lanesStriped8x64:])
					any := false
					for l := 0; l < lanesStriped8x64; l++ {
						h := int32(hrow[l])
						if vF[l] > h {
							h = vF[l]
							hrow[l] = int8(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor8)
						if hGap > int32(erow[l]) {
							erow[l] = int8(hGap)
						}
						vF[l] = max(vF[l]-ext, floor8)
						if vF[l] > hGap {
							any = true
						}
					}
					if !any {
						break classic
					}
				}
			}
		}
	}
	return best, best >= ceil8
}

// StripedScore16x16 is the 16-bit 16-lane striped kernel.
//
//sw:hotpath
func StripedScore16x16(prof []int16, segLen int, dseq []uint8, open, ext int32, decon bool, hStore, hLoad, eRow []int16) (int32, bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	rows := segLen * lanesStriped16x16
	hs := hStore[:rows]
	hl := hLoad[:rows]
	er := eRow[:rows]
	for i := range hs {
		hs[i] = 0
	}
	for i := range hl {
		hl[i] = 0
	}
	for i := range er {
		er[i] = negInf16
	}
	var best int32
	var vH, vF, c [lanesStriped16x16]int32
	for j := 0; j < len(dseq); j++ {
		code := int(dseq[j] & matRowMask)
		pr := prof[code*rows : code*rows+rows]
		last := (*[lanesStriped16x16]int16)(hs[(segLen-1)*lanesStriped16x16:])
		for l := lanesStriped16x16 - 1; l > 0; l-- {
			vH[l] = int32(last[l-1])
		}
		vH[0] = 0
		hs, hl = hl, hs
		for l := range vF {
			vF[l] = negInf16
		}
		for t := 0; t < segLen; t++ {
			off := t * lanesStriped16x16
			prow := (*[lanesStriped16x16]int16)(pr[off:])
			hrow := (*[lanesStriped16x16]int16)(hs[off:])
			hlrow := (*[lanesStriped16x16]int16)(hl[off:])
			erow := (*[lanesStriped16x16]int16)(er[off:])
			for l := 0; l < lanesStriped16x16; l++ {
				e := int32(erow[l])
				h := max(min(vH[l]+int32(prow[l]), ceil16), e, vF[l], 0)
				if h > best {
					best = h
				}
				hrow[l] = int16(h)
				hGap := max(h-open, floor16)
				erow[l] = int16(max(e-ext, floor16, hGap))
				vF[l] = max(vF[l]-ext, floor16, hGap)
				vH[l] = int32(hlrow[l])
			}
		}
		if decon {
			for l := lanesStriped16x16 - 1; l > 0; l-- {
				c[l] = vF[l-1]
			}
			c[0] = negInf16
			d := int32(segLen) * ext
			for s := 1; s < lanesStriped16x16; s <<= 1 {
				dec := min(int32(s)*d, ceil16)
				for l := lanesStriped16x16 - 1; l >= 0; l-- {
					sh := int32(negInf16)
					if l >= s {
						// See StripedScore8x32: mask is a no-op, proves bounds.
						sh = c[(l-s)&(lanesStriped16x16-1)]
					}
					c[l] = max(c[l], max(sh-dec, floor16))
				}
			}
			any := false
			for l := range c {
				if c[l] > 0 {
					any = true
					break
				}
			}
			if any {
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped16x16]int16)(hs[t*lanesStriped16x16:])
					erow := (*[lanesStriped16x16]int16)(er[t*lanesStriped16x16:])
					for l := 0; l < lanesStriped16x16; l++ {
						h := int32(hrow[l])
						if c[l] > h {
							h = c[l]
							hrow[l] = int16(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor16)
						if hGap > int32(erow[l]) {
							erow[l] = int16(hGap)
						}
						c[l] = max(c[l]-ext, floor16)
					}
				}
			}
		} else {
		classic:
			for k := 0; k < lanesStriped16x16; k++ {
				for l := lanesStriped16x16 - 1; l > 0; l-- {
					vF[l] = vF[l-1]
				}
				vF[0] = negInf16
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped16x16]int16)(hs[t*lanesStriped16x16:])
					erow := (*[lanesStriped16x16]int16)(er[t*lanesStriped16x16:])
					any := false
					for l := 0; l < lanesStriped16x16; l++ {
						h := int32(hrow[l])
						if vF[l] > h {
							h = vF[l]
							hrow[l] = int16(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor16)
						if hGap > int32(erow[l]) {
							erow[l] = int16(hGap)
						}
						vF[l] = max(vF[l]-ext, floor16)
						if vF[l] > hGap {
							any = true
						}
					}
					if !any {
						break classic
					}
				}
			}
		}
	}
	return best, best >= ceil16
}

// StripedScore16x32 is the 16-bit 32-lane striped kernel.
//
//sw:hotpath
func StripedScore16x32(prof []int16, segLen int, dseq []uint8, open, ext int32, decon bool, hStore, hLoad, eRow []int16) (int32, bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	rows := segLen * lanesStriped16x32
	hs := hStore[:rows]
	hl := hLoad[:rows]
	er := eRow[:rows]
	for i := range hs {
		hs[i] = 0
	}
	for i := range hl {
		hl[i] = 0
	}
	for i := range er {
		er[i] = negInf16
	}
	var best int32
	var vH, vF, c [lanesStriped16x32]int32
	for j := 0; j < len(dseq); j++ {
		code := int(dseq[j] & matRowMask)
		pr := prof[code*rows : code*rows+rows]
		last := (*[lanesStriped16x32]int16)(hs[(segLen-1)*lanesStriped16x32:])
		for l := lanesStriped16x32 - 1; l > 0; l-- {
			vH[l] = int32(last[l-1])
		}
		vH[0] = 0
		hs, hl = hl, hs
		for l := range vF {
			vF[l] = negInf16
		}
		for t := 0; t < segLen; t++ {
			off := t * lanesStriped16x32
			prow := (*[lanesStriped16x32]int16)(pr[off:])
			hrow := (*[lanesStriped16x32]int16)(hs[off:])
			hlrow := (*[lanesStriped16x32]int16)(hl[off:])
			erow := (*[lanesStriped16x32]int16)(er[off:])
			for l := 0; l < lanesStriped16x32; l++ {
				e := int32(erow[l])
				h := max(min(vH[l]+int32(prow[l]), ceil16), e, vF[l], 0)
				if h > best {
					best = h
				}
				hrow[l] = int16(h)
				hGap := max(h-open, floor16)
				erow[l] = int16(max(e-ext, floor16, hGap))
				vF[l] = max(vF[l]-ext, floor16, hGap)
				vH[l] = int32(hlrow[l])
			}
		}
		if decon {
			for l := lanesStriped16x32 - 1; l > 0; l-- {
				c[l] = vF[l-1]
			}
			c[0] = negInf16
			d := int32(segLen) * ext
			for s := 1; s < lanesStriped16x32; s <<= 1 {
				dec := min(int32(s)*d, ceil16)
				for l := lanesStriped16x32 - 1; l >= 0; l-- {
					sh := int32(negInf16)
					if l >= s {
						// See StripedScore8x32: mask is a no-op, proves bounds.
						sh = c[(l-s)&(lanesStriped16x32-1)]
					}
					c[l] = max(c[l], max(sh-dec, floor16))
				}
			}
			any := false
			for l := range c {
				if c[l] > 0 {
					any = true
					break
				}
			}
			if any {
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped16x32]int16)(hs[t*lanesStriped16x32:])
					erow := (*[lanesStriped16x32]int16)(er[t*lanesStriped16x32:])
					for l := 0; l < lanesStriped16x32; l++ {
						h := int32(hrow[l])
						if c[l] > h {
							h = c[l]
							hrow[l] = int16(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor16)
						if hGap > int32(erow[l]) {
							erow[l] = int16(hGap)
						}
						c[l] = max(c[l]-ext, floor16)
					}
				}
			}
		} else {
		classic:
			for k := 0; k < lanesStriped16x32; k++ {
				for l := lanesStriped16x32 - 1; l > 0; l-- {
					vF[l] = vF[l-1]
				}
				vF[0] = negInf16
				for t := 0; t < segLen; t++ {
					hrow := (*[lanesStriped16x32]int16)(hs[t*lanesStriped16x32:])
					erow := (*[lanesStriped16x32]int16)(er[t*lanesStriped16x32:])
					any := false
					for l := 0; l < lanesStriped16x32; l++ {
						h := int32(hrow[l])
						if vF[l] > h {
							h = vF[l]
							hrow[l] = int16(h)
						}
						if h > best {
							best = h
						}
						hGap := max(h-open, floor16)
						if hGap > int32(erow[l]) {
							erow[l] = int16(hGap)
						}
						vF[l] = max(vF[l]-ext, floor16)
						if vF[l] > hGap {
							any = true
						}
					}
					if !any {
						break classic
					}
				}
			}
		}
	}
	return best, best >= ceil16
}
