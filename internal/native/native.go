// Package native holds the compiled execution backend: specialized Go
// kernels for the pair and batch Smith-Waterman algorithms at each
// (element width x lane count) shape the repo supports, operating
// directly on int8/int16/int32 scratch rows. They compute bit-for-bit
// the same scores, saturation flags, and hit positions as the modeled
// kernels in internal/core interpreting the vek machine — that
// equivalence is load-bearing (the search pipeline's rescue ladder
// keys off the saturation flags) and is enforced by the per-width
// differential suite and FuzzNativeVsModeled in internal/core.
//
// The modeled kernels traverse anti-diagonals because the vector
// machine needs independent lanes; the native kernels are free to
// traverse row-major, which the affine recurrence permits without
// changing any H value (the dependency structure is identical cell by
// cell). Two consequences matter for equivalence:
//
//   - Gap model: the kernels always run the affine recurrence. With
//     Open == Extend it produces the same H stream as the reduced
//     linear recurrence (E(i,j-1) <= H(i,j-1) inductively, so the
//     E max collapses to H(i,j-1)-Extend, and the saturating clamps
//     are monotone), so one recurrence serves both gap models.
//   - Saturation: each width reproduces its modeled engine's exact
//     arithmetic — int8/int16 kernels clamp every E/F/H intermediate
//     at the element bounds the way vpaddsb/vpaddsw do, the int32
//     kernel uses plain modular arithmetic — so a lane saturates on
//     the native backend iff it saturates on the modeled one.
//
// Kernels never allocate; callers pass scratch rows (capacity is the
// only requirement — kernels initialize them). All are annotated
// //sw:hotpath so swlint's hotpathalloc check gates them.
package native

import "swvec/internal/submat"

// Boundary and saturation constants, mirroring the modeled engines in
// internal/vek exactly. The 16-bit -inf leaves headroom below any real
// score but above the arithmetic floor, matching vek.E16x16.NegInf;
// equivalence requires the same values, not merely "negative enough".
const (
	negInf8  = -128
	floor8   = -128
	ceil8    = 127
	negInf16 = -30000
	floor16  = -32768
	ceil16   = 32767
	negInf32 = -1 << 29
	ceil32   = 1<<31 - 1
)

// matRowMask masks a residue code into the padded substitution-matrix
// row width (submat.W == 32, a power of two): every masked code
// indexes a row in bounds, which is what keeps the inner score loops
// bounds-check free. Residue codes are already < submat.W, so the
// mask never changes a valid code.
const matRowMask = submat.W - 1
