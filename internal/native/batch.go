package native

import "swvec/internal/submat"

// The batch kernels compute one query against a transposed batch of
// database sequences (seqio layout: t8[j*stride+lane] is residue j of
// sequence lane), exactly like the modeled batch engines: row-major
// over query residues, per-row E/H-left/H-diag carries, H and F
// column-state rows of n*stride elements in the caller's scratch.
// Substitution scores come straight from the matrix row of the
// current query residue — the shuffle-table machinery exists to
// emulate a missing 8-bit gather, which compiled scalar code simply
// does not need.
//
// Column traversal order does not affect any value (the carries make
// each lane's recurrence independent of block boundaries), so the
// kernels ignore BlockCols: the modeled engine's blocked traversal
// produces identical results by construction.
//
// Each kernel writes all stride lanes of scores/saturated. Sentinel
// padding lanes score 0 (sentinel codes only ever add SentinelScore,
// so H never leaves 0), matching the zeros the modeled engine leaves
// in untouched lanes.

// Per-kernel lane strides: the number of interleaved sequences per
// batch column. The 16-bit shapes cover one column with two vector
// registers on the modeled backend, so their stride equals the 8-bit
// shape of the same register width.
const (
	strideBatch8x32  = 32
	strideBatch16x16 = 32
	strideBatch8x64  = 64
	strideBatch16x32 = 64
)

// Batch8x32 is the 8-bit 256-bit-shape batch kernel: 32 interleaved
// sequences, scores clamp at ceil8.
//
//sw:hotpath
func Batch8x32(query []uint8, t8 []int8, n int, mat *submat.Matrix, open, ext int32, hRow, fRow []int8, scores []int32, saturated []bool) {
	if open > ceil8 {
		open = ceil8
	}
	if ext > ceil8 {
		ext = ceil8
	}
	hr := hRow[:n*strideBatch8x32]
	fr := fRow[:n*strideBatch8x32]
	for i := range hr {
		hr[i] = 0
	}
	for i := range fr {
		fr[i] = negInf8
	}
	var best [strideBatch8x32]int32
	for i := 0; i < len(query); i++ {
		row := (*[submat.W]int8)(mat.Row(query[i]))
		var eC, lC, dC [strideBatch8x32]int32
		for l := range eC {
			eC[l] = negInf8
		}
		for j := 0; j < n; j++ {
			off := j * strideBatch8x32
			hw := (*[strideBatch8x32]int8)(hr[off:])
			fw := (*[strideBatch8x32]int8)(fr[off:])
			tw := (*[strideBatch8x32]int8)(t8[off:])
			for l := 0; l < strideBatch8x32; l++ {
				sc := int32(row[uint8(tw[l])&matRowMask])
				hUp := int32(hw[l])
				f := max(int32(fw[l])-ext, hUp-open, floor8)
				e := max(eC[l]-ext, lC[l]-open, floor8)
				h := max(min(dC[l]+sc, ceil8), 0, e, f)
				hw[l] = int8(h)
				fw[l] = int8(f)
				dC[l] = hUp
				lC[l] = h
				eC[l] = e
				if h > best[l] {
					best[l] = h
				}
			}
		}
	}
	out := scores[:strideBatch8x32]
	sat := saturated[:strideBatch8x32]
	for l := range best {
		out[l] = best[l]
		sat[l] = best[l] >= ceil8
	}
}

// Batch8x64 is the 8-bit 512-bit-shape batch kernel: 64 interleaved
// sequences.
//
//sw:hotpath
func Batch8x64(query []uint8, t8 []int8, n int, mat *submat.Matrix, open, ext int32, hRow, fRow []int8, scores []int32, saturated []bool) {
	if open > ceil8 {
		open = ceil8
	}
	if ext > ceil8 {
		ext = ceil8
	}
	hr := hRow[:n*strideBatch8x64]
	fr := fRow[:n*strideBatch8x64]
	for i := range hr {
		hr[i] = 0
	}
	for i := range fr {
		fr[i] = negInf8
	}
	var best [strideBatch8x64]int32
	for i := 0; i < len(query); i++ {
		row := (*[submat.W]int8)(mat.Row(query[i]))
		var eC, lC, dC [strideBatch8x64]int32
		for l := range eC {
			eC[l] = negInf8
		}
		for j := 0; j < n; j++ {
			off := j * strideBatch8x64
			hw := (*[strideBatch8x64]int8)(hr[off:])
			fw := (*[strideBatch8x64]int8)(fr[off:])
			tw := (*[strideBatch8x64]int8)(t8[off:])
			for l := 0; l < strideBatch8x64; l++ {
				sc := int32(row[uint8(tw[l])&matRowMask])
				hUp := int32(hw[l])
				f := max(int32(fw[l])-ext, hUp-open, floor8)
				e := max(eC[l]-ext, lC[l]-open, floor8)
				h := max(min(dC[l]+sc, ceil8), 0, e, f)
				hw[l] = int8(h)
				fw[l] = int8(f)
				dC[l] = hUp
				lC[l] = h
				eC[l] = e
				if h > best[l] {
					best[l] = h
				}
			}
		}
	}
	out := scores[:strideBatch8x64]
	sat := saturated[:strideBatch8x64]
	for l := range best {
		out[l] = best[l]
		sat[l] = best[l] >= ceil8
	}
}

// Batch16x16 is the 16-bit 256-bit-shape batch kernel: 32 interleaved
// sequences (two 16-lane registers per column on the modeled side),
// scores clamp at ceil16.
//
//sw:hotpath
func Batch16x16(query []uint8, t8 []int8, n int, mat *submat.Matrix, open, ext int32, hRow, fRow []int16, scores []int32, saturated []bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	hr := hRow[:n*strideBatch16x16]
	fr := fRow[:n*strideBatch16x16]
	for i := range hr {
		hr[i] = 0
	}
	for i := range fr {
		fr[i] = negInf16
	}
	var best [strideBatch16x16]int32
	for i := 0; i < len(query); i++ {
		row := (*[submat.W]int8)(mat.Row(query[i]))
		var eC, lC, dC [strideBatch16x16]int32
		for l := range eC {
			eC[l] = negInf16
		}
		for j := 0; j < n; j++ {
			off := j * strideBatch16x16
			hw := (*[strideBatch16x16]int16)(hr[off:])
			fw := (*[strideBatch16x16]int16)(fr[off:])
			tw := (*[strideBatch16x16]int8)(t8[off:])
			for l := 0; l < strideBatch16x16; l++ {
				sc := int32(row[uint8(tw[l])&matRowMask])
				hUp := int32(hw[l])
				f := max(int32(fw[l])-ext, hUp-open, floor16)
				e := max(eC[l]-ext, lC[l]-open, floor16)
				h := max(min(dC[l]+sc, ceil16), 0, e, f)
				hw[l] = int16(h)
				fw[l] = int16(f)
				dC[l] = hUp
				lC[l] = h
				eC[l] = e
				if h > best[l] {
					best[l] = h
				}
			}
		}
	}
	out := scores[:strideBatch16x16]
	sat := saturated[:strideBatch16x16]
	for l := range best {
		out[l] = best[l]
		sat[l] = best[l] >= ceil16
	}
}

// Batch16x32 is the 16-bit 512-bit-shape batch kernel: 64 interleaved
// sequences.
//
//sw:hotpath
func Batch16x32(query []uint8, t8 []int8, n int, mat *submat.Matrix, open, ext int32, hRow, fRow []int16, scores []int32, saturated []bool) {
	if open > ceil16 {
		open = ceil16
	}
	if ext > ceil16 {
		ext = ceil16
	}
	hr := hRow[:n*strideBatch16x32]
	fr := fRow[:n*strideBatch16x32]
	for i := range hr {
		hr[i] = 0
	}
	for i := range fr {
		fr[i] = negInf16
	}
	var best [strideBatch16x32]int32
	for i := 0; i < len(query); i++ {
		row := (*[submat.W]int8)(mat.Row(query[i]))
		var eC, lC, dC [strideBatch16x32]int32
		for l := range eC {
			eC[l] = negInf16
		}
		for j := 0; j < n; j++ {
			off := j * strideBatch16x32
			hw := (*[strideBatch16x32]int16)(hr[off:])
			fw := (*[strideBatch16x32]int16)(fr[off:])
			tw := (*[strideBatch16x32]int8)(t8[off:])
			for l := 0; l < strideBatch16x32; l++ {
				sc := int32(row[uint8(tw[l])&matRowMask])
				hUp := int32(hw[l])
				f := max(int32(fw[l])-ext, hUp-open, floor16)
				e := max(eC[l]-ext, lC[l]-open, floor16)
				h := max(min(dC[l]+sc, ceil16), 0, e, f)
				hw[l] = int16(h)
				fw[l] = int16(f)
				dC[l] = hUp
				lC[l] = h
				eC[l] = e
				if h > best[l] {
					best[l] = h
				}
			}
		}
	}
	out := scores[:strideBatch16x32]
	sat := saturated[:strideBatch16x32]
	for l := range best {
		out[l] = best[l]
		sat[l] = best[l] >= ceil16
	}
}
