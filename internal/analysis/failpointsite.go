package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// FailpointSite keeps the fault-injection registry honest: every
// failpoint.Inject site is uniquely and literally named, every site is
// actually exercised by a -tags failpoint chaos test, and no test arms
// a name that no shipped code declares.
var FailpointSite = &Analyzer{
	Name: "failpointsite",
	Doc: `cross-check failpoint.Inject sites against the chaos tests that arm them

A failpoint site only earns its keep if a chaos test can hit it, and a
chaos test only proves something if the name it arms still exists in
shipped code (DESIGN.md §12). This analyzer registers every
failpoint.Inject call site across the tree — names must be unique
string literals, or Enable cannot target one site deterministically —
and collects every reference from test files (failpoint.Enable/
Disable/Fired arguments and SWVEC_FAILPOINTS env values). Under
-tags failpoint it reports sites no test references (dead chaos
surface); under any tag set it reports references to names no site
declares (a typo silently arming nothing).`,
	Run:    runFailpointSite,
	Finish: finishFailpointSite,
}

// failpointPkg is the path suffix of the injection framework.
const failpointPkg = "internal/failpoint"

func runFailpointSite(pass *Pass) error {
	if pkgPathIs(pass.Path, failpointPkg) {
		// The framework's own sources and tests mention names only as
		// documentation and fixtures, not as sites or armings.
		return nil
	}

	// Shipped code: register Inject sites.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Inject" || fn.Pkg() == nil || !pkgPathIs(fn.Pkg().Path(), failpointPkg) {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "failpoint.Inject name must be a string literal so chaos tests can arm the site by name")
				return true
			}
			for _, fact := range pass.Facts() {
				if fact.Key == "site" && fact.Value == name {
					pass.Reportf(call.Pos(), "duplicate failpoint name %q (first registered at %s): Enable would arm both sites at once", name, fact.Pos)
					return true
				}
			}
			pass.ExportFact(call.Pos(), "site", name)
			return true
		})
	}

	// Test files (syntax only — they are never type-checked): collect
	// references that arm or query a site.
	for _, f := range pass.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := se.X.(*ast.Ident); ok && id.Name == "failpoint" {
					switch se.Sel.Name {
					case "Enable", "Disable", "Fired":
						if len(call.Args) >= 1 {
							if name, ok := stringLit(call.Args[0]); ok {
								pass.ExportFact(call.Args[0].Pos(), "ref", name)
							}
						}
					}
				}
			}
			// t.Setenv("SWVEC_FAILPOINTS", "name=spec;...") and the
			// os.Setenv form both arm sites by name.
			for i := 0; i+1 < len(call.Args); i++ {
				if key, ok := stringLit(call.Args[i]); !ok || key != "SWVEC_FAILPOINTS" {
					continue
				}
				list, ok := stringLit(call.Args[i+1])
				if !ok {
					continue
				}
				for _, pair := range strings.Split(list, ";") {
					if name, _, found := strings.Cut(pair, "="); found && strings.TrimSpace(name) != "" {
						pass.ExportFact(call.Args[i+1].Pos(), "ref", strings.TrimSpace(name))
					}
				}
			}
			return true
		})
	}
	return nil
}

// finishFailpointSite joins the site registry against the collected
// references once every package has been visited.
func finishFailpointSite(f *Finisher) error {
	sites := map[string]token.Position{}
	refs := map[string]bool{}
	for _, fact := range f.Facts {
		switch fact.Key {
		case "site":
			if _, dup := sites[fact.Value]; !dup {
				sites[fact.Value] = fact.Pos
			}
		case "ref":
			refs[fact.Value] = true
		}
	}

	// A site nobody arms is only provable under -tags failpoint: the
	// chaos tests are tag-gated, so without the tag the loader never
	// even sees the files that would reference it.
	if hasTag(f.Tags, "failpoint") {
		for name, pos := range sites {
			if !refs[name] {
				f.Reportf(pos, "failpoint site %q is not exercised by any -tags failpoint test: add a chaos test that arms it or delete the site", name)
			}
		}
	}
	for _, fact := range f.Facts {
		if fact.Key == "ref" && sites[fact.Value] == (token.Position{}) {
			f.Reportf(fact.Pos, "test references unknown failpoint %q: no failpoint.Inject site declares this name", fact.Value)
		}
	}
	return nil
}

// hasTag reports whether tag is in the load's build tag set.
func hasTag(tags []string, tag string) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// stringLit unquotes e if it is a string literal.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
