package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxBlock enforces the cancellation contract on goroutine channel
// traffic in internal/sched and internal/cluster: a blocking send or
// receive inside a goroutine must be able to observe shutdown, or a
// stalled peer pins the goroutine forever and the no-leaked-goroutines
// guarantee (DESIGN.md §10) silently becomes "usually".
var CtxBlock = &Analyzer{
	Name: "ctxblock",
	Doc: `blocking channel ops in sched/cluster goroutines must observe shutdown

Every channel send or receive inside a goroutine launched by
internal/sched or internal/cluster must be one of: (a) a select case
alongside an escape case — a ctx.Done()/owned chan struct{} receive,
a comma-ok receive (close is the broadcast), or default; (b) a
comma-ok receive or a range over the channel, which terminate on
close; (c) a receive from a chan struct{} signal channel, which IS
the shutdown wait; or (d) a send on a channel the package makes with
a nonzero buffer (the sized-to-senders gather pattern, where capacity
proves the send cannot block). Anything else can block forever once
its peer is gone, leaking the goroutine past cancel.`,
	Run: runCtxBlock,
}

func runCtxBlock(pass *Pass) error {
	if !pkgPathIs(pass.Path, "internal/sched") && !pkgPathIs(pass.Path, "internal/cluster") {
		return nil
	}
	decls := funcDecls(pass)
	buffered := bufferedChanObjs(pass)

	// Goroutine regions: every go statement's body, plus every
	// package-local function statically reachable from one (calls made
	// anywhere in a region body count, nested literals included).
	// Nested function literals stay part of the enclosing region (they
	// run on some frame of it) except a nested `go func` body, which is
	// its own region and would double-report.
	bodyOf := map[*types.Func]*ast.BlockStmt{}
	for obj, fd := range decls {
		if fd.Body != nil {
			bodyOf[obj] = fd.Body
		}
	}

	var roots []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := launchedBody(pass, decls, g.Call); body != nil {
				roots = append(roots, body)
			}
			return true
		})
	}
	region := map[*ast.BlockStmt]bool{}
	queue := append([]*ast.BlockStmt(nil), roots...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if region[b] {
			continue
		}
		region[b] = true
		ast.Inspect(b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := callee(pass.TypesInfo, call); f != nil && f.Pkg() == pass.Pkg {
				if tb := bodyOf[f]; tb != nil {
					queue = append(queue, tb)
				}
			}
			return true
		})
	}

	// Deterministic reporting order: revisit declarations and go
	// statements file by file, checking each body at most once.
	checked := map[*ast.BlockStmt]bool{}
	check := func(b *ast.BlockStmt) {
		if b != nil && region[b] && !checked[b] {
			checked[b] = true
			checkGoroutineRegion(pass, b, buffered)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Body)
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					check(lit.Body)
				}
			}
			return true
		})
	}
	return nil
}

// launchedBody resolves the body a go statement runs: a function
// literal's, or a package-local function's.
func launchedBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if f := callee(pass.TypesInfo, call); f != nil && f.Pkg() == pass.Pkg {
		if fd := decls[f]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// checkGoroutineRegion walks one goroutine body and flags channel
// operations that cannot observe shutdown.
func checkGoroutineRegion(pass *Pass, body *ast.BlockStmt, buffered map[types.Object]bool) {
	info := pass.TypesInfo

	// Pre-collect every select's comm statements (and their receive
	// expressions), so the op walk below knows which sends/receives are
	// select cases rather than naked ops.
	commStmt := map[ast.Stmt]bool{}
	exemptRecv := map[*ast.UnaryExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			escape := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil || isEscapeComm(info, cc.Comm) {
					escape = true
				}
				if cc.Comm != nil {
					commStmt[cc.Comm] = true
				}
			}
			if !escape {
				pass.Reportf(n.Pos(), "select in goroutine has no shutdown case: add a ctx.Done()/owned chan struct{} receive, a comma-ok receive, or default, so cancellation can unblock it")
			}
		case *ast.AssignStmt:
			// x, ok := <-ch detects close; the receive is shutdown-aware
			// on its own.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ue, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					exemptRecv[ue] = true
				}
			}
		case *ast.RangeStmt:
			// range over a channel terminates on close.
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok && n.Key == nil && n.Value == nil {
				// No receive expression node exists for range; nothing
				// to exempt explicitly.
				_ = n
			}
		}
		return true
	})

	skipLit := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine's literal body is its own region.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				skipLit[lit] = true
			}
		case *ast.FuncLit:
			if skipLit[n] {
				return false
			}
		case *ast.SendStmt:
			if commStmt[ast.Stmt(n)] {
				return true
			}
			if obj := chanOpObj(info, n.Chan); obj != nil && buffered[obj] {
				// Sized-to-senders gather channel: the buffer proves the
				// send cannot block.
				return true
			}
			pass.Reportf(n.Pos(), "blocking send in goroutine outside any select: a gone receiver pins this goroutine past cancel; use a select with a shutdown case or a buffered gather channel")
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || exemptRecv[n] {
				return true
			}
			if chanElemIsEmptyStruct(info, n.X) {
				// Receiving from a chan struct{} is the shutdown wait
				// itself.
				return true
			}
			// A receive that is itself a select comm was pre-collected
			// as its clause's statement; check both bare-statement and
			// assignment forms.
			if isSelectCommRecv(commStmt, n) {
				return true
			}
			pass.Reportf(n.Pos(), "blocking receive in goroutine outside any select: use a select with a shutdown case, a comma-ok receive, or range over the channel")
		}
		return true
	})
}

// isSelectCommRecv reports whether the receive expression is the comm
// operation of some select clause (bare, assigned, or comma-ok form).
func isSelectCommRecv(commStmt map[ast.Stmt]bool, ue *ast.UnaryExpr) bool {
	for s := range commStmt {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(s.X) == ast.Unparen(ast.Expr(ue)) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if ast.Unparen(r) == ast.Unparen(ast.Expr(ue)) {
					return true
				}
			}
		}
	}
	return false
}

// isEscapeComm reports whether a select comm operation lets the
// goroutine observe shutdown: a receive from a chan struct{} signal
// channel (ctx.Done(), an owned closed-on-crash channel), or a
// comma-ok receive (closing the channel is the broadcast).
func isEscapeComm(info *types.Info, comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if ue, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			return chanElemIsEmptyStruct(info, ue.X)
		}
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		ue, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return false
		}
		if len(s.Lhs) == 2 {
			return true
		}
		return chanElemIsEmptyStruct(info, ue.X)
	}
	return false
}

// chanElemIsEmptyStruct reports whether e is a channel of struct{} —
// the signal-channel convention shutdown broadcasts use.
func chanElemIsEmptyStruct(info *types.Info, e ast.Expr) bool {
	ch, ok := info.TypeOf(e).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// chanOpObj resolves the channel object a send/receive targets, or nil
// for anything unnamed.
func chanOpObj(info *types.Info, e ast.Expr) types.Object {
	obj := selectionObj(info, e)
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// bufferedChanObjs collects every channel object the package creates
// with a nonzero buffer: make(chan T, n) assigned to a local, field,
// or composite-literal key anywhere in the package.
func bufferedChanObjs(pass *Pass) map[types.Object]bool {
	info := pass.TypesInfo
	out := map[types.Object]bool{}
	bufferedMake := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") || len(call.Args) < 2 {
			return false
		}
		if _, isChan := info.TypeOf(call).Underlying().(*types.Chan); !isChan {
			return false
		}
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return false
		}
		return true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) || !bufferedMake(n.Rhs[i]) {
						continue
					}
					if obj := chanOpObj(info, lhs); obj != nil {
						out[obj] = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) || !bufferedMake(n.Values[i]) {
						continue
					}
					if obj := info.ObjectOf(name); obj != nil {
						out[obj] = true
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && bufferedMake(n.Value) {
					if obj, ok := info.Uses[key].(*types.Var); ok {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}
