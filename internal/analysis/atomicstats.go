package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicStats enforces the metrics.Counters access discipline: the
// pipeline's per-stage tallies are written concurrently by every
// worker, so a single plain read or write would be a data race that
// only shows up as silently wrong Stats.
var AtomicStats = &Analyzer{
	Name: "atomicstats",
	Doc: `require atomic access to metrics.Counters fields

Inside internal/metrics, every field of Counters must be declared
with a sync/atomic type. Everywhere, a Counters field may only be
touched as the receiver of an atomic method (c.Cells8.Add(n)) or
through &field passed to a sync/atomic function; raw reads, writes,
and copies are flagged. Consistent reads come from
Counters.Snapshot(), never from the live fields.`,
	Run: runAtomicStats,
}

func runAtomicStats(pass *Pass) error {
	if pkgPathIs(pass.Path, "internal/metrics") {
		checkCountersDecl(pass)
	}
	checkCountersUses(pass)
	return nil
}

// checkCountersDecl verifies every field of the Counters struct is
// declared with a sync/atomic type.
func checkCountersDecl(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Counters" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					t := pass.TypesInfo.TypeOf(field.Type)
					if isAtomicType(t) {
						continue
					}
					for _, name := range field.Names {
						pass.Reportf(name.Pos(),
							"field %s of metrics.Counters must use a sync/atomic type; plain fields race under the worker pool", name.Name)
					}
				}
			}
		}
	}
}

// checkCountersUses flags any Counters field access that is not an
// atomic method call or an &field argument to a sync/atomic function.
func checkCountersUses(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if !isCountersType(selection.Recv()) {
				return true
			}
			if atomicFieldAccessOK(info, parents, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"metrics.Counters field %s accessed without sync/atomic; use its atomic methods or read a Snapshot()", sel.Sel.Name)
			return true
		})
	}
}

// atomicFieldAccessOK reports whether the field selector is used in
// one of the two sanctioned shapes:
//
//	c.Field.Add(1)                  // method of a sync/atomic type
//	atomic.AddInt64(&c.Field, 1)    // address passed to sync/atomic
func atomicFieldAccessOK(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch parent := parents[sel].(type) {
	case *ast.SelectorExpr:
		// c.Field must be the receiver, and the selected method must
		// come from sync/atomic.
		if parent.X != sel {
			return false
		}
		if m, ok := info.Uses[parent.Sel].(*types.Func); ok {
			return isAtomicPkg(m.Pkg())
		}
	case *ast.UnaryExpr:
		// &c.Field as an argument to a sync/atomic function.
		call, ok := parents[parent].(*ast.CallExpr)
		if !ok {
			return false
		}
		if f := callee(info, call); f != nil {
			return isAtomicPkg(f.Pkg())
		}
	}
	return false
}

// parentMap records each node's parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isCountersType reports whether t (possibly a pointer) is the
// Counters struct of an internal/metrics package.
func isCountersType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Counters" && pkgPathIs(n.Obj().Pkg().Path(), "internal/metrics")
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && isAtomicPkg(n.Obj().Pkg())
}

func isAtomicPkg(p *types.Package) bool {
	return p != nil && p.Path() == "sync/atomic"
}
