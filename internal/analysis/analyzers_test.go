package analysis

import (
	"strings"
	"testing"
)

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, HotPathAlloc, "hp")
}

func TestLaneWidth(t *testing.T) {
	runFixture(t, LaneWidth, "fix/internal/core")
}

// TestLaneWidthOutOfScope proves the analyzer ignores packages outside
// internal/core and internal/sched: the same seeded source reported
// nothing when loaded under a neutral import path.
func TestLaneWidthOutOfScope(t *testing.T) {
	pkgs := loadFixtures(t, "lanewidth", "fix/internal/core")
	pkgs[0].Path = "fix/other"
	diags, err := Run(pkgs, []*Analyzer{LaneWidth})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package reported: %s: %s", d.Position, d.Message)
	}
}

func TestChanDiscipline(t *testing.T) {
	runFixture(t, ChanDiscipline, "fix/internal/sched")
}

func TestAtomicStats(t *testing.T) {
	runFixture(t, AtomicStats, "fix/internal/metrics", "fix/consumer")
}

// TestMalformedSuppressions checks that broken //swlint:ignore comments
// are themselves diagnostics, even with no analyzer enabled.
func TestMalformedSuppressions(t *testing.T) {
	pkgs := loadFixtures(t, "suppression", "sup")
	diags, err := Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "swlint" || !strings.Contains(d.Message, "malformed suppression") {
			t.Errorf("unexpected diagnostic: %+v", d)
		}
		if d.Suppressed {
			t.Errorf("malformed suppression must not suppress itself: %+v", d)
		}
	}
}

// TestLoadRealTree runs the loader and the full suite over this
// repository's own packages: the gate CI enforces. The tree must be
// clean of unsuppressed findings, and every suppression carries a
// reason.
func TestLoadRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the full module", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Suppressed {
			if d.Reason == "" {
				t.Errorf("suppressed finding without reason: %s: %s", d.Position, d.Message)
			}
			continue
		}
		t.Errorf("unsuppressed finding: %s: [%s] %s", d.Position, d.Analyzer, d.Message)
	}
}
