package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, HotPathAlloc, "hp")
}

func TestLaneWidth(t *testing.T) {
	runFixture(t, LaneWidth, "fix/internal/core")
}

// TestLaneWidthOutOfScope proves the analyzer ignores packages outside
// internal/core and internal/sched: the same seeded source reported
// nothing when loaded under a neutral import path.
func TestLaneWidthOutOfScope(t *testing.T) {
	pkgs := loadFixtures(t, "lanewidth", "fix/internal/core")
	pkgs[0].Path = "fix/other"
	diags, err := Run(pkgs, []*Analyzer{LaneWidth})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "lanewidth" {
			t.Errorf("out-of-scope package reported: %s: %s", d.Position, d.Message)
		}
	}
}

func TestChanDiscipline(t *testing.T) {
	runFixture(t, ChanDiscipline, "fix/internal/sched")
}

func TestAtomicStats(t *testing.T) {
	runFixture(t, AtomicStats, "fix/internal/metrics", "fix/consumer")
}

// TestBCECheck drives bcecheck through the compiler seam: every
// "bce:<kind>" comment in the fixture becomes one canned diagnostic on
// its line, so hot-function filtering, the allowlist, and suppressions
// are all exercised without invoking the toolchain.
func TestBCECheck(t *testing.T) {
	orig := bceDiagnostics
	bceDiagnostics = cannedBCEDiagnostics
	SetBCEAllowlist(filepath.Join("testdata", "bcecheck", "allowlist.txt"))
	defer func() {
		bceDiagnostics = orig
		SetBCEAllowlist("")
	}()
	runFixture(t, BCECheck, "fix/internal/native")
}

// cannedBCEDiagnostics turns the fixture's bce:<kind> comments into
// check_bce diagnostics.
func cannedBCEDiagnostics(pass *Pass) ([]bceDiag, error) {
	var out []bceDiag
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, kind := range []string{"IsSliceInBounds", "IsInBounds"} {
					if strings.Contains(c.Text, "bce:"+kind) {
						pos := pass.Fset.Position(c.Pos())
						out = append(out, bceDiag{File: pos.Filename, Line: pos.Line, Col: 1, Kind: kind})
						break
					}
				}
			}
		}
	}
	return out, nil
}

// TestBCECheckSeededRegression is the end-to-end proof that the real
// compiler pipeline catches a bounds-check regression: a throwaway
// module with a variable-index hot kernel is loaded and analyzed for
// real (go list, importcfg, go tool compile), and the injected
// IsInBounds must come back as a finding.
func TestBCECheckSeededRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list and go tool compile")
	}
	dir := t.TempDir()
	kdir := filepath.Join(dir, "internal", "native")
	if err := os.MkdirAll(kdir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(filepath.Join(dir, "go.mod"), "module bcereg\n\ngo 1.24\n")
	writeFile(filepath.Join(kdir, "kernel.go"), `package native

//sw:hotpath
func Kernel(h []int8, idx int) int8 {
	return h[idx] // seeded regression: the compiler cannot prove this index
}
`)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{BCECheck})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "bcecheck" && strings.Contains(d.Message, "IsInBounds") && strings.Contains(d.Message, "Kernel") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded variable-index regression not caught; diagnostics: %+v", diags)
	}
}

func TestCtxBlock(t *testing.T) {
	runFixture(t, CtxBlock, "fix/internal/sched")
}

// TestCtxBlockOutOfScope: the same goroutine violations under a
// neutral import path report nothing — the cancellation contract binds
// sched and cluster only.
func TestCtxBlockOutOfScope(t *testing.T) {
	pkgs := loadFixtures(t, "ctxblock", "fix/internal/sched")
	pkgs[0].Path = "fix/other"
	diags, err := Run(pkgs, []*Analyzer{CtxBlock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "ctxblock" {
			t.Errorf("out-of-scope package reported: %s: %s", d.Position, d.Message)
		}
	}
}

// TestFailpointSite runs under tags=[failpoint], the only
// configuration in which site coverage is provable (the chaos tests
// that reference sites are themselves tag-gated).
func TestFailpointSite(t *testing.T) {
	runFixtureTags(t, FailpointSite, []string{"failpoint"}, "fix/internal/failpoint", "fix/app")
}

// TestFailpointSiteUntagged: without the failpoint tag the orphan-site
// rule must stay quiet (its evidence — the chaos tests — is invisible),
// and the tagged chaos test file must not be loaded at all.
func TestFailpointSiteUntagged(t *testing.T) {
	pkgs := loadFixtures(t, "failpointsite", "fix/internal/failpoint", "fix/app")
	for _, pkg := range pkgs {
		if len(pkg.TestFiles) != 0 {
			t.Fatalf("package %s loaded %d test files without the failpoint tag", pkg.Path, len(pkg.TestFiles))
		}
	}
	diags, err := Run(pkgs, []*Analyzer{FailpointSite})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "is not exercised") {
			t.Errorf("orphan-site rule fired without the failpoint tag: %s: %s", d.Position, d.Message)
		}
	}
}

func TestWireCode(t *testing.T) {
	runFixture(t, WireCode, "fix/internal/cluster", "fix/cmd/swrouter")
}

// TestMalformedSuppressions checks that broken //swlint:ignore comments
// are themselves diagnostics, even with no analyzer enabled.
func TestMalformedSuppressions(t *testing.T) {
	pkgs := loadFixtures(t, "suppression", "sup")
	diags, err := Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "swlint" || !strings.Contains(d.Message, "malformed suppression") {
			t.Errorf("unexpected diagnostic: %+v", d)
		}
		if d.Suppressed {
			t.Errorf("malformed suppression must not suppress itself: %+v", d)
		}
	}
}

// TestLoadRealTree runs the loader and the full suite over this
// repository's own packages, under both tag sets CI enforces: the
// plain build and -tags failpoint (which pulls in the chaos tests the
// failpointsite coverage rule depends on). The tree must be clean of
// unsuppressed findings under both, and every suppression carries a
// reason.
func TestLoadRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	for _, tags := range [][]string{nil, {"failpoint"}} {
		name := "plain"
		if len(tags) > 0 {
			name = strings.Join(tags, ",")
		}
		t.Run(name, func(t *testing.T) {
			pkgs, err := LoadTags("../..", tags, "./...")
			if err != nil {
				t.Fatalf("loading module: %v", err)
			}
			if len(pkgs) < 10 {
				t.Fatalf("loaded only %d packages, expected the full module", len(pkgs))
			}
			diags, err := Run(pkgs, All())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				if d.Suppressed {
					if d.Reason == "" {
						t.Errorf("suppressed finding without reason: %s: %s", d.Position, d.Message)
					}
					continue
				}
				t.Errorf("unsuppressed finding: %s: [%s] %s", d.Position, d.Analyzer, d.Message)
			}
		})
	}
}
