// Package analysis is swlint's analyzer framework: a deliberately
// small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, diagnostics)
// built on the standard library's go/parser + go/types. The repo
// vendors no third-party modules, so the framework loads packages
// itself (see load.go) and runs each analyzer over fully type-checked
// syntax.
//
// Findings can be silenced in place with a suppression comment:
//
//	//swlint:ignore <analyzer|all> <reason>
//
// placed either on the flagged line or on the line directly above it.
// The reason is mandatory; a bare //swlint:ignore is itself reported.
// Suppressed findings are not dropped — they are marked and carried in
// the JSON report so CI can track the suppression trajectory over
// time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //swlint:ignore comments.
	Name string
	// Doc is the one-paragraph description printed by swlint -help.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
	// Finish, if set, runs once after every package's Run, with all
	// facts the analyzer exported. Whole-program invariants (a
	// registry spanning packages, cross-package cross-checks) report
	// from here; per-package ones never need it.
	Finish func(*Finisher) error
}

// All returns the full swlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc, LaneWidth, ChanDiscipline, AtomicStats,
		BCECheck, CtxBlock, FailpointSite, WireCode,
	}
}

// A Fact is one cross-package datum an analyzer exported while
// visiting a package. Facts are the only state that survives from one
// package's Run to the next (and to Finish): packages load in
// dependency order, so a fact exported by internal/cluster is visible
// while cmd/swrouter is analyzed.
type Fact struct {
	// Pkg is the exporting package's path.
	Pkg string
	// Key namespaces the fact within the analyzer (e.g. "site",
	// "code"); Value is the datum itself.
	Key, Value string
	// Pos anchors diagnostics about the fact (a duplicate registry
	// name reports at the original site).
	Pos token.Position
}

// A Finisher is the whole-program stage of one analyzer: every fact it
// exported, in package order, plus the report sink.
type Finisher struct {
	Analyzer *Analyzer
	Facts    []Fact
	// Tags are the build tags the packages were loaded under.
	Tags []string

	report func(Diagnostic)
}

// Reportf records a whole-program finding at the given position
// (normally a fact's).
func (f *Finisher) Reportf(pos token.Position, format string, args ...any) {
	f.report(Diagnostic{
		Analyzer: f.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Pass is one (analyzer, package) unit of work: the type-checked
// syntax of a single package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (fixture paths in tests).
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory ("" for fixtures loaded
	// from memory); analyzers that shell out to the toolchain (bcecheck)
	// need it.
	Dir string
	// TestFiles is the parsed (syntax-only, not type-checked) test
	// sources of the package, for analyzers that cross-check shipped
	// code against its tests.
	TestFiles []*ast.File
	// Exports maps every dependency's import path to its gc export
	// data file, as resolved by the loader.
	Exports map[string]string
	// Tags are the build tags the package was loaded under.
	Tags []string

	report func(Diagnostic)
	facts  *[]Fact
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a cross-package fact for later packages' Run and
// for Finish.
func (p *Pass) ExportFact(pos token.Pos, key, value string) {
	*p.facts = append(*p.facts, Fact{
		Pkg:   p.Path,
		Key:   key,
		Value: value,
		Pos:   p.Fset.Position(pos),
	})
}

// Facts returns every fact this analyzer has exported so far, in
// package order (earlier packages first).
func (p *Pass) Facts() []Fact { return *p.facts }

// A Diagnostic is one finding, suppressed or not. Position is the
// rendered "file:line:col" form used by both the text and JSON
// outputs.
type Diagnostic struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"-"`
	Position   string         `json:"position"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed"`
	// Reason is the justification text of the matching
	// //swlint:ignore comment.
	Reason string `json:"reason,omitempty"`
}

// Run executes every analyzer over every package (in the given order,
// which the loader arranges to be dependency order), runs each
// analyzer's Finish stage over its accumulated facts, applies
// suppression comments, and returns all diagnostics (suppressed ones
// included) sorted by position. Suppression comments that matched no
// diagnostic of an analyzer in the run become active findings
// themselves: a stale //swlint:ignore hides nothing but asserts it
// does, so it must be deleted, not carried.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sup := suppressions{}
	facts := make(map[*Analyzer]*[]Fact, len(analyzers))
	for _, a := range analyzers {
		facts[a] = new([]Fact)
	}
	var tags []string
	for _, pkg := range pkgs {
		tags = pkg.Tags
		bad := collectSuppressions(pkg, sup)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
				TestFiles: pkg.TestFiles,
				Exports:   pkg.Exports,
				Tags:      pkg.Tags,
				report:    func(d Diagnostic) { diags = append(diags, d) },
				facts:     facts[a],
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fin := &Finisher{
			Analyzer: a,
			Facts:    *facts[a],
			Tags:     tags,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Finish(fin); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
	}
	for i := range diags {
		d := &diags[i]
		if s := sup.match(d); s != nil {
			d.Suppressed = true
			d.Reason = s.reason
		}
	}
	diags = append(diags, staleSuppressions(sup, analyzers)...)
	for i := range diags {
		d := &diags[i]
		d.Position = fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignorePrefix is the suppression comment marker.
const ignorePrefix = "//swlint:ignore"

// A suppression is one parsed //swlint:ignore comment. It covers
// findings of the named analyzer (or every analyzer, for "all") on its
// own line and on the following line.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	matched  bool
}

// suppressions maps file name -> line -> parsed comments on that line.
type suppressions map[string]map[int][]*suppression

// match returns the suppression covering d, if any.
func (s suppressions) match(d *Diagnostic) *suppression {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return nil
	}
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for i := range lines[ln] {
			c := lines[ln][i]
			if c.analyzer == "all" || c.analyzer == d.Analyzer {
				c.matched = true
				return c
			}
		}
	}
	return nil
}

// staleSuppressions turns every unmatched suppression comment into an
// active finding, provided its analyzer actually ran (a partial-suite
// run cannot judge suppressions of analyzers it skipped, and an "all"
// suppression only when the full suite ran — which Run cannot know, so
// "all" is exempt and audited by count in the ratchet instead).
func staleSuppressions(sup suppressions, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, byLine := range sup {
		for _, comments := range byLine {
			for _, c := range comments {
				if c.matched || c.analyzer == "all" || !ran[c.analyzer] {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "swlint",
					Pos:      c.pos,
					Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line; delete the //swlint:ignore",
						c.analyzer),
				})
			}
		}
	}
	return diags
}

// collectSuppressions parses every //swlint:ignore comment in the
// package into sup. Malformed ones (no analyzer, or no reason) are
// returned as diagnostics themselves so they cannot silently rot.
func collectSuppressions(pkg *Package, sup suppressions) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "swlint",
						Pos:      pos,
						Message:  "malformed suppression: want //swlint:ignore <analyzer|all> <reason>",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*suppression{}
					sup[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], &suppression{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				})
			}
		}
	}
	return bad
}

// ---- shared syntax/type helpers used by several analyzers ----

// funcDecls maps every package-level function and method object to its
// declaration.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// callee resolves the statically-called function or method of call,
// unwrapping parens and generic instantiation indices. Returns nil for
// builtins, conversions, and calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch x := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(x.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(x.X)
			continue
		}
		break
	}
	switch x := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[x].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[x.Sel].(*types.Func)
		return f
	}
	return nil
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgPathIs reports whether path is exactly want or ends in "/"+want,
// so analyzers scope to e.g. "internal/sched" both in the real module
// and in test fixtures.
func pkgPathIs(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// namedOf unwraps pointers and aliases down to the *types.Named type,
// or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// selectionObj resolves the object a send/close/Add/Done target
// expression refers to: a plain identifier's var, or the field of a
// selector like p.work8. Returns nil for anything else (map entries,
// slice elements, function results).
func selectionObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		// Package-qualified identifier (pkg.Var).
		return info.ObjectOf(x.Sel)
	}
	return nil
}
