package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// WireCode pins the wire-protocol failure contract: every Code*
// constant in internal/cluster is explicitly classified as retryable or
// not, the router's retry/breaker logic handles every code, and no
// package re-spells a code as a string literal.
var WireCode = &Analyzer{
	Name: "wirecode",
	Doc: `every wire status code is classified, handled, and spelled once

The shard protocol's Code* constants (internal/cluster/wire.go) drive
the router's retry and breaker decisions, so an unclassified or
hand-spelled code degrades silently into "not retryable" (DESIGN.md
§13). This analyzer requires: every Code* constant to appear in a
case clause of cluster.RetryableCode, so adding a code forces an
explicit retryable-or-not decision; cmd/swrouter to reference every
code, so its retry/breaker handling cannot lag the protocol; and no
string literal equal to a code value anywhere outside wire.go — the
constant is the single spelling.`,
	Run: runWireCode,
}

// clusterPkg is the path suffix of the wire-protocol package.
const clusterPkg = "internal/cluster"

func runWireCode(pass *Pass) error {
	if pkgPathIs(pass.Path, clusterPkg) {
		runWireCodeCluster(pass)
		return nil
	}
	// Everywhere else the invariant only binds packages that speak the
	// protocol; anything importing internal/cluster qualifies.
	if !importsCluster(pass.Pkg) {
		return nil
	}
	codes := codeFacts(pass.Facts())
	checkCodeLiterals(pass, codes, "")
	if pkgPathIs(pass.Path, "cmd/swrouter") {
		checkRouterCoverage(pass, codes)
	}
	return nil
}

// runWireCodeCluster registers the Code* constants and checks each is
// classified in RetryableCode.
func runWireCodeCluster(pass *Pass) {
	type codeConst struct {
		obj  *types.Const
		decl *ast.Ident
	}
	var consts []codeConst
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "wire.go" {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isCodeName(name.Name) {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || obj.Val().Kind() != constant.String {
						continue
					}
					consts = append(consts, codeConst{obj, name})
				}
			}
		}
	}

	// Which codes appear in a case clause of RetryableCode?
	classified := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "RetryableCode" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							classified[obj] = true
						}
					}
				}
				return true
			})
		}
	}

	for _, c := range consts {
		pass.ExportFact(c.decl.Pos(), "code", c.obj.Name()+"="+constant.StringVal(c.obj.Val()))
		if !classified[c.obj] {
			pass.Reportf(c.decl.Pos(), "wire code %s is not classified in RetryableCode: add it to an explicit case so retryability is a decision, not a default", c.obj.Name())
		}
	}
	codes := codeFacts(pass.Facts())
	checkCodeLiterals(pass, codes, "wire.go")
}

// codeFacts decodes the "code" facts into value -> constant name.
func codeFacts(facts []Fact) map[string]string {
	codes := map[string]string{}
	for _, fact := range facts {
		if fact.Key != "code" {
			continue
		}
		if name, val, ok := strings.Cut(fact.Value, "="); ok {
			codes[val] = name
		}
	}
	return codes
}

// checkCodeLiterals flags string literals spelling a wire code, except
// in exemptFile (wire.go declares them) and in generated const decls.
func checkCodeLiterals(pass *Pass, codes map[string]string, exemptFile string) {
	if len(codes) == 0 {
		return
	}
	for _, f := range pass.Files {
		if exemptFile != "" && filepath.Base(pass.Fset.Position(f.Pos()).Filename) == exemptFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bl, ok := n.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				return true
			}
			s, ok := stringLit(bl)
			if !ok {
				return true
			}
			if name, isCode := codes[s]; isCode {
				pass.Reportf(bl.Pos(), "string literal %q duplicates wire code constant cluster.%s: use the constant so the protocol has one spelling", s, name)
			}
			return true
		})
	}
}

// checkRouterCoverage requires cmd/swrouter to reference every wire
// code: a code its retry/breaker path never mentions is a code it
// mishandles by omission.
func checkRouterCoverage(pass *Pass, codes map[string]string) {
	used := map[string]bool{}
	for _, obj := range pass.TypesInfo.Uses {
		c, ok := obj.(*types.Const)
		if !ok || c.Pkg() == nil || !pkgPathIs(c.Pkg().Path(), clusterPkg) || !isCodeName(c.Name()) {
			continue
		}
		used[c.Name()] = true
	}
	// Report at the constant's declaration (this package has no
	// position for an absence).
	for _, fact := range pass.Facts() {
		if fact.Key != "code" {
			continue
		}
		name, _, _ := strings.Cut(fact.Value, "=")
		if !used[name] {
			pass.report(Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      fact.Pos,
				Message:  "wire code " + name + " is never referenced by cmd/swrouter: its retry/breaker handling lags the protocol",
			})
		}
	}
}

// isCodeName matches the Code* constant naming convention.
func isCodeName(name string) bool {
	return strings.HasPrefix(name, "Code") && len(name) > 4 &&
		name[4] >= 'A' && name[4] <= 'Z'
}

// importsCluster reports whether pkg directly imports the wire-protocol
// package.
func importsCluster(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if pkgPathIs(imp.Path(), clusterPkg) {
			return true
		}
	}
	return false
}
