package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one fully type-checked package: parsed syntax (with
// comments, for annotations and suppressions) plus types information.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -export -deps -json` for the patterns and
// decodes the JSON stream. -export populates each package's export
// data file from the build cache, which is what lets the loader
// type-check entirely offline: dependencies are imported from compiled
// export data instead of being re-parsed.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter returns a types.Importer that reads gc export data
// files from the paths map. The gc importer resolves "unsafe" itself.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Load lists, parses, and type-checks the packages matching patterns
// relative to dir (the module root or any directory inside it). Test
// files are not loaded: swlint checks the shipped tree, and fixtures
// live under testdata which the go tool never matches.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, e := range targets {
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  e.ImportPath,
			Name:  e.Name,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
