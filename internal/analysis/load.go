package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one fully type-checked package: parsed syntax (with
// comments, for annotations and suppressions) plus types information.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestFiles is the package's test sources (in-package and external
	// test package both), parsed for syntax only. Analyzers use them to
	// cross-check shipped code against its tests (failpointsite); they
	// are never type-checked and never scanned for suppressions.
	TestFiles []*ast.File
	// Exports maps every import path the load resolved (targets and
	// dependencies, std included) to its gc export data file. Shared
	// across all packages of one load.
	Exports map[string]string
	// Tags are the build tags the load ran under.
	Tags []string
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Standard     bool
	DepOnly      bool
}

// goList runs `go list -export -deps -json` for the patterns and
// decodes the JSON stream. -export populates each package's export
// data file from the build cache, which is what lets the loader
// type-check entirely offline: dependencies are imported from compiled
// export data instead of being re-parsed. -deps emits dependencies
// before dependents, the order cross-package facts rely on.
func goList(dir string, tags []string, patterns []string) ([]listEntry, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,Standard,DepOnly",
	}
	if len(tags) > 0 {
		args = append(args, "-tags="+strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter returns a types.Importer that reads gc export data
// files from the paths map. The gc importer resolves "unsafe" itself.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Load lists, parses, and type-checks the packages matching patterns
// relative to dir (the module root or any directory inside it), with
// no build tags. See LoadTags.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTags(dir, nil, patterns...)
}

// LoadTags is Load under a set of build tags: `go list -tags` selects
// the file set, so tag-gated code (the failpoint build) is analyzed
// instead of invisible. Shipped sources are fully type-checked; test
// files are parsed for syntax only and carried on Package.TestFiles.
func LoadTags(dir string, tags []string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, e := range targets {
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		var testFiles []*ast.File
		for _, name := range append(append([]string(nil), e.TestGoFiles...), e.XTestGoFiles...) {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			testFiles = append(testFiles, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      e.ImportPath,
			Name:      e.Name,
			Dir:       e.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			Info:      info,
			TestFiles: testFiles,
			Exports:   exports,
			Tags:      tags,
		})
	}
	return pkgs, nil
}
