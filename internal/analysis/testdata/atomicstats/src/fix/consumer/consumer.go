// Package consumer is the atomicstats fixture's cross-package half:
// the usage rule applies wherever Counters travels, not just inside
// the metrics package.
package consumer

import (
	"sync/atomic"

	"fix/internal/metrics"
)

func tally(c *metrics.Counters) int64 {
	c.Searches.Add(1)
	n := c.Searches.Load()
	n += atomic.LoadInt64(&c.Plain)
	n += c.Plain // want "accessed without sync/atomic"
	return n
}

func snapshotted(c *metrics.Counters) int64 {
	//swlint:ignore atomicstats single-threaded test helper, no concurrent writers
	return c.Plain // wantsup "accessed without sync/atomic"
}
