// Package metrics is the atomicstats fixture's Counters declaration:
// atomic fields are the rule, one plain field is seeded to prove the
// declaration check fires.
package metrics

import "sync/atomic"

type Counters struct {
	Searches atomic.Int64
	Cells    atomic.Int64
	Plain    int64 // want "must use a sync/atomic type"
}

// Bump uses the two sanctioned access shapes.
func (c *Counters) Bump() {
	c.Searches.Add(1)
	atomic.AddInt64(&c.Plain, 1)
}

// Reset races: a raw write to a counter field.
func (c *Counters) Reset() {
	c.Plain = 0 // want "accessed without sync/atomic"
}
