// Package core is the lanewidth fixture: hard-coded 32/64 lane
// strides in the positions the analyzer guards, next to the derived
// forms that must stay silent.
package core

// batchLanes stands in for the seqio lane constants: deriving widths
// from it is the sanctioned form.
const batchLanes = 32

type batch struct {
	lanes  int
	maxLen int
}

func alloc(lanes int) []int8 {
	return make([]int8, 4*lanes)
}

func seedParam() {
	alloc(64) // want "hard-coded lane stride passed as parameter lanes"
	alloc(batchLanes)
}

func seedAssign() int {
	stride := 32 // want "hard-coded lane stride assigned to stride"
	nlanes := batchLanes
	return stride + nlanes
}

func seedVarDecl() int {
	var lanes = 64 // want "hard-coded lane stride assigned to lanes"
	return lanes
}

func seedMake(n int) []int16 {
	return make([]int16, n*32) // want "hard-coded 32/64 in scratch-buffer sizing"
}

func seedField() batch {
	return batch{
		lanes:  64, // want "hard-coded lane stride for field lanes"
		maxLen: 64,
	}
}

func derived(b *batch) []int8 {
	// Widths that come from constants, fields, or parameters are the
	// sanctioned forms and stay silent.
	buf := make([]int8, b.maxLen*b.lanes)
	other := make([]int8, b.maxLen*batchLanes)
	return append(buf, other...)
}

func suppressed() int {
	//swlint:ignore lanewidth fixture models a frozen on-disk layout
	stride := 64 // wantsup "hard-coded lane stride assigned to stride"
	return stride
}
