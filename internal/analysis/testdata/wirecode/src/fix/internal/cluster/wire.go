// Package cluster is the wirecode fixture's protocol package.
package cluster

// The fixture's wire codes. CodeUnhandled is deliberately missing from
// RetryableCode, and CodeOverlooked is never referenced by the fixture
// router.
const (
	CodeBadRequest = "bad_request"
	CodeOverloaded = "overloaded"
	CodeUnhandled  = "mystery"    // want "wire code CodeUnhandled is not classified in RetryableCode"
	CodeOverlooked = "overlooked" // want "wire code CodeOverlooked is never referenced by cmd/swrouter"
)

// RetryableCode classifies all but CodeUnhandled.
func RetryableCode(code string) bool {
	switch code {
	case CodeOverloaded:
		return true
	case CodeBadRequest, CodeOverlooked:
		return false
	}
	return false
}
