package cluster

// Classify re-spells a code as a literal inside the protocol package
// itself (only wire.go is exempt).
func Classify(code string) bool {
	return code == "overloaded" // want "string literal .overloaded. duplicates wire code constant cluster.CodeOverloaded"
}
