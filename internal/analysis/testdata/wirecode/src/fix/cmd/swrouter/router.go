// Package swrouter is the wirecode fixture's router: it handles some
// codes, hand-spells one, and never mentions CodeOverlooked.
package swrouter

import "fix/internal/cluster"

// Route retries on the codes it knows.
func Route(code string) string {
	if cluster.RetryableCode(code) {
		return "retry"
	}
	switch code {
	case cluster.CodeBadRequest, cluster.CodeOverloaded, cluster.CodeUnhandled:
		return "fail"
	}
	if code == "mystery" { // want "string literal .mystery. duplicates wire code constant cluster.CodeUnhandled"
		return "fail"
	}
	return "pass"
}
