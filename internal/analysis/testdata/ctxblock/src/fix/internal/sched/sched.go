// Package sched is the ctxblock fixture: goroutine channel traffic
// that can and cannot observe shutdown.
package sched

func bad(ch chan int) {
	go func() {
		for {
			select { // want "select in goroutine has no shutdown case"
			case v := <-ch:
				_ = v
			}
		}
	}()
	go func() {
		ch <- 1 // want "blocking send in goroutine outside any select"
	}()
	go func() {
		<-ch // want "blocking receive in goroutine outside any select"
	}()
}

// reached is goroutine code by reachability from the go statement in
// launch, not by being a go body itself.
func reached(ch chan int) {
	ch <- 2 // want "blocking send in goroutine outside any select"
}

func launch(ch chan int) {
	go reached(ch)
}

// accepted shows every shutdown-aware shape the analyzer recognizes.
func accepted(ch chan int, done chan struct{}) {
	gather := make(chan int, 4)
	go func() {
		// Send on an owned buffered channel: capacity proves it cannot
		// block.
		gather <- 1
	}()
	go func() {
		// Receiving from a chan struct{} is the shutdown wait itself.
		<-done
	}()
	go func() {
		// Range terminates when the channel closes.
		for v := range ch {
			_ = v
		}
	}()
	go func() {
		// Comma-ok observes close on its own.
		v, ok := <-ch
		_, _ = v, ok
	}()
	go func() {
		for {
			select {
			case ch <- 2:
			case <-done:
				return
			}
		}
	}()
	go func() {
		select {
		case v := <-ch:
			_ = v
		default:
		}
	}()
}

// suppressed carries a reviewed violation under a suppression comment.
func suppressed(ch chan int) {
	go func() {
		//swlint:ignore ctxblock fixture: sender is joined before shutdown in this harness
		ch <- 3 // wantsup "blocking send in goroutine outside any select"
	}()
}

//swlint:ignore ctxblock fixture: obsolete suppression kept to prove staleness is flagged // want "stale suppression: no ctxblock finding"
var keep = 1
