// Package sup holds malformed suppression comments: a bare marker and
// one with an analyzer but no reason. Both must be reported.
package sup

//swlint:ignore
func bare() {}

//swlint:ignore hotpathalloc
func noReason() {}
