// Package sched is the chandiscipline fixture: goroutine launches with
// and without WaitGroup tracking, with and without recover guards,
// unbalanced WaitGroups, and channels that violate the producer-close
// discipline.
package sched

import "sync"

// pool is the compliant shape: every goroutine starts with a deferred
// Done and installs a recover guard, the owned channel is closed
// exactly once by its producer.
type pool struct {
	wg   sync.WaitGroup
	work chan int
}

func newPool() *pool {
	return &pool{work: make(chan int, 4)}
}

func (p *pool) run() {
	p.wg.Add(2)
	go p.produce()
	go func() {
		defer p.wg.Done()
		defer func() { recover() }()
		for range p.work {
		}
	}()
	p.wg.Wait()
}

func (p *pool) produce() {
	defer p.wg.Done()
	defer p.guard()
	p.work <- 1
	close(p.work)
}

// guard is the method-valued recover guard shape: the rule must follow
// the deferred call to this package-local method and find the recover.
func (p *pool) guard() {
	recover()
}

var guardWG sync.WaitGroup

// guardedNamed launches a named function whose guard is a deferred
// package-local free function.
func guardedNamed() {
	guardWG.Add(1)
	go guardedBody()
	guardWG.Wait()
}

func guardedBody() {
	defer guardWG.Done()
	defer rescue()
}

func rescue() {
	recover()
}

func untracked() {
	go func() {}() // want "goroutine must begin with" // want "no deferred recover guard"
}

func untrackedNamed() {
	go namedBody() // want "goroutine must begin with" // want "no deferred recover guard"
}

func namedBody() {}

func opaque(fn func()) {
	go fn() // want "goroutine target is not a package-local function"
}

var leakWG sync.WaitGroup

func leak() {
	leakWG.Add(1) // want "has Add but no Done"
	leakWG.Wait()
}

var orphanWG sync.WaitGroup

func orphan() {
	orphanWG.Done() // want "has Done but no Add"
}

var noWaitWG sync.WaitGroup

func noWait() {
	noWaitWG.Add(1) // want "Added to but never Waited on"
	go noWaitBody() // want "no deferred recover guard"
}

func noWaitBody() {
	defer noWaitWG.Done()
}

var nestedWG sync.WaitGroup

// nestedRecover defers a function whose only recover sits inside a
// nested closure: it runs in the wrong frame, so it is not a guard.
func nestedRecover() {
	nestedWG.Add(1)
	go nestedBody() // want "no deferred recover guard"
	nestedWG.Wait()
}

func nestedBody() {
	defer nestedWG.Done()
	defer fakeGuard()
}

func fakeGuard() {
	f := func() { recover() }
	_ = f
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "closed in more than one place"
}

func neverClosed() {
	out := make(chan int, 1)
	out <- 1 // want "never closed"
}

// alias sends on a channel it does not own: the select-arm idiom.
// Exempt from the close rule.
func alias(src chan int) {
	out := src
	out <- 1
}

func suppressedLaunch() {
	//swlint:ignore chandiscipline process-lifetime monitor, reaped at exit
	go func() {}() // wantsup "goroutine must begin with" // wantsup "no deferred recover guard"
}
