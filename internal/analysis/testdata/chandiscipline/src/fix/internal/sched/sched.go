// Package sched is the chandiscipline fixture: goroutine launches with
// and without WaitGroup tracking, unbalanced WaitGroups, and channels
// that violate the producer-close discipline.
package sched

import "sync"

// pool is the compliant shape: every goroutine starts with a deferred
// Done, the owned channel is closed exactly once by its producer.
type pool struct {
	wg   sync.WaitGroup
	work chan int
}

func newPool() *pool {
	return &pool{work: make(chan int, 4)}
}

func (p *pool) run() {
	p.wg.Add(2)
	go p.produce()
	go func() {
		defer p.wg.Done()
		for range p.work {
		}
	}()
	p.wg.Wait()
}

func (p *pool) produce() {
	defer p.wg.Done()
	p.work <- 1
	close(p.work)
}

func untracked() {
	go func() {}() // want "goroutine must begin with"
}

func untrackedNamed() {
	go namedBody() // want "goroutine must begin with"
}

func namedBody() {}

func opaque(fn func()) {
	go fn() // want "goroutine target is not a package-local function"
}

var leakWG sync.WaitGroup

func leak() {
	leakWG.Add(1) // want "has Add but no Done"
	leakWG.Wait()
}

var orphanWG sync.WaitGroup

func orphan() {
	orphanWG.Done() // want "has Done but no Add"
}

var noWaitWG sync.WaitGroup

func noWait() {
	noWaitWG.Add(1) // want "Added to but never Waited on"
	go noWaitBody()
}

func noWaitBody() {
	defer noWaitWG.Done()
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "closed in more than one place"
}

func neverClosed() {
	out := make(chan int, 1)
	out <- 1 // want "never closed"
}

// alias sends on a channel it does not own: the select-arm idiom.
// Exempt from the close rule.
func alias(src chan int) {
	out := src
	out <- 1
}

func suppressedLaunch() {
	//swlint:ignore chandiscipline process-lifetime monitor, reaped at exit
	go func() {}() // wantsup "goroutine must begin with"
}
