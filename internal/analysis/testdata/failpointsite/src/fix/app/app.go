// Package app is the failpointsite fixture: injection sites with and
// without chaos-test coverage. The fixture is loaded under
// tags=[failpoint], the only configuration in which site coverage is
// provable.
package app

import "fix/internal/failpoint"

// Do declares the fixture's injection sites.
func Do(dynamic string) error {
	if err := failpoint.Inject("app/tested"); err != nil {
		return err
	}
	if err := failpoint.Inject("app/env-tested"); err != nil {
		return err
	}
	if err := failpoint.Inject("app/dup"); err != nil {
		return err
	}
	if err := failpoint.Inject("app/dup"); err != nil { // want "duplicate failpoint name .app/dup."
		return err
	}
	if err := failpoint.Inject(dynamic); err != nil { // want "failpoint.Inject name must be a string literal"
		return err
	}
	if err := failpoint.Inject("app/orphan"); err != nil { // want "failpoint site .app/orphan. is not exercised by any -tags failpoint test"
		return err
	}
	return nil
}
