//go:build failpoint

// Chaos-test fixture: references that cover sites (Enable, Disable,
// and the SWVEC_FAILPOINTS env list) plus one typo'd name no site
// declares.
package app

import (
	"os"
	"testing"

	"fix/internal/failpoint"
)

func TestChaos(t *testing.T) {
	if err := failpoint.Enable("app/tested", "error(boom):first=1"); err != nil {
		t.Fatal(err)
	}
	failpoint.Disable("app/dup")
	os.Setenv("SWVEC_FAILPOINTS", "app/env-tested=error(bitrot);app/ghost=panic(x)") // want "test references unknown failpoint .app/ghost."
	if err := Do("x"); err != nil {
		t.Fatal(err)
	}
}
