// Package failpoint is a stub of the injection framework so the
// fixture's app package can resolve failpoint.Inject by type.
package failpoint

// Inject is the stub injection site hook.
func Inject(name string) error { return nil }

// Enable arms a site (stub).
func Enable(name, spec string) error { return nil }

// Disable disarms a site (stub).
func Disable(name string) {}

// Fired reports a site's firing count (stub).
func Fired(name string) int64 { return 0 }
