// Package hp is the hotpathalloc fixture: seeded allocations inside
// annotated functions, reachable helpers, annotated types, plus clean
// and suppressed cases that must stay silent or tracked.
package hp

import "fmt"

type frobber interface{ frob() }

type widget struct{ n int }

func (widget) frob() {}

// sink is an interface-taking helper for the boxing cases.
func sink(v any) { _ = v }

//sw:hotpath
func kernel(xs []int, m map[int]int, w widget) int {
	buf := make([]int, 8)        // want "make allocates in hot path kernel"
	xs = append(xs, 1)           // want "append allocates in hot path kernel"
	p := new(int)                // want "new allocates in hot path kernel"
	lit := []int{1, 2}           // want "slice literal allocates in hot path kernel"
	ml := map[int]int{}          // want "map literal allocates in hot path kernel"
	f := func() int { return 1 } // want "closure literal in hot path kernel"
	v := m[3]                    // want "map access in hot path kernel"
	delete(m, 3)                 // want "map delete in hot path kernel"
	for k := range m {           // want "map iteration in hot path kernel"
		v += k
	}
	fmt.Println(v)   // want "fmt.Println call in hot path kernel"
	sink(w)          // want "argument boxed into interface parameter in hot path kernel"
	fr := frobber(w) // want "conversion to interface boxes on the heap in hot path kernel"
	fr.frob()
	return len(buf) + len(xs) + *p + len(lit) + len(ml) + f() + helper(v)
}

// helper is hot by reachability from kernel, not by annotation.
func helper(n int) int {
	s := make([]int, n) // want "make allocates in hot path helper"
	return len(s)
}

//sw:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates in hot path concat"
}

//sw:hotpath
func amortized(p *[]int, n int) []int {
	if cap(*p) < n {
		//swlint:ignore hotpathalloc grow-once arena, warm calls reuse capacity
		*p = make([]int, n) // wantsup "make allocates in hot path amortized"
	}
	return (*p)[:n]
}

// engine's methods are hot because the type is annotated: dispatch
// through a type-parameter constraint is invisible to the static call
// graph, so engine-like types carry the marker themselves.
//
//sw:hotpath
type engine struct{}

func (engine) step(n int) []int8 {
	return make([]int8, n) // want "make allocates in hot path step"
}

// cold is unannotated and unreachable from any hot root: its
// allocations are fine.
func cold() []int {
	out := make([]int, 4)
	out = append(out, 5)
	var anybox any = out
	_ = anybox
	return out
}

// failfast panics are off the hot path even though panic's parameter
// is an interface.
//
//sw:hotpath
func failfast(ok bool) {
	if !ok {
		panic("hp: invariant broken")
	}
}
