// Package native is the bcecheck fixture. The test stubs the compiler
// seam: every "bce:<kind>" comment below becomes one canned check_bce
// diagnostic on its line, so the fixture exercises the analyzer's
// hot-function filtering and allowlist matching without shelling out
// to the toolchain.
package native

//sw:hotpath
func Kernel(h []int8, idx int) int8 {
	return h[idx] // bce:IsInBounds // want "compiler emits IsInBounds in hot path Kernel"
}

// helper is hot by reachability from Kernel2.
func helper(h []int8, idx int) int8 {
	return h[idx] // bce:IsInBounds // want "compiler emits IsInBounds in hot path helper"
}

//sw:hotpath
func Kernel2(h []int8, idx int) int8 {
	return helper(h, idx)
}

// Prologue's reslice check is pinned in the test's allowlist file, so
// it reports nothing.
//
//sw:hotpath
func Prologue(h []int8, rows int) []int8 {
	return h[:rows] // bce:IsSliceInBounds
}

// Masked carries an accepted check under a suppression comment instead
// of an allowlist entry; it is reported but suppressed.
//
//sw:hotpath
func Masked(h []int8, idx int) int8 {
	//swlint:ignore bcecheck fixture: accepted pending a masked rewrite
	return h[idx] // bce:IsInBounds // wantsup "compiler emits IsInBounds in hot path Masked"
}

// cold is not reachable from any //sw:hotpath root: its bounds checks
// are none of bcecheck's business.
func cold(h []int8, idx int) int8 {
	return h[idx] // bce:IsInBounds
}
