package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathMarker is the annotation that marks a function (or every
// method of a type) as part of the allocation-free hot path.
const hotpathMarker = "//sw:hotpath"

// HotPathAlloc flags heap-escaping constructs inside hot-path
// functions. A function is hot when its declaration carries a
// //sw:hotpath comment, when its receiver's type declaration carries
// one, or when it is statically reachable, within its package, from a
// hot function — so annotating the generic kernel entry (e.g.
// core.runBatch) covers every helper it calls.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: `flag allocating constructs in //sw:hotpath functions

The diagonal kernels must stay allocation-free on warm calls
(PAPER.md §III-B/III-D): one heap allocation per batch column would
dominate the cell updates it feeds. This analyzer flags append, make,
new, map operations, closures, fmt calls, string concatenation, and
implicit interface conversions (boxing) inside hot functions.
Amortized grow-once arena allocations are expected to carry a
//swlint:ignore hotpathalloc comment explaining the amortization.`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	decls := funcDecls(pass)
	hot := hotFuncs(pass, decls)

	// Deterministic order: walk declarations file by file.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !hot[obj] {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// hotFuncs computes the hot-path function set shared by hotpathalloc
// and bcecheck: functions whose declaration (or receiver type's
// declaration) carries the //sw:hotpath marker, plus everything
// statically reachable from them within the package.
func hotFuncs(pass *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	// Annotated functions and types.
	hotType := map[*types.TypeName]bool{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if hasMarker(d.Doc) {
					if obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
						roots = append(roots, obj)
					}
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasMarker(d.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
						if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							hotType[tn] = true
						}
					}
				}
			}
		}
	}

	// Methods of annotated types are roots too.
	for obj := range decls {
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if n := namedOf(sig.Recv().Type()); n != nil && hotType[n.Obj()] {
			roots = append(roots, obj)
		}
	}

	// Intra-package static call graph.
	calls := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := callee(pass.TypesInfo, call); f != nil && f.Pkg() == pass.Pkg {
				calls[obj] = append(calls[obj], f)
			}
			return true
		})
	}

	// Reachability closure from the roots.
	hot := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if hot[f] {
			continue
		}
		hot[f] = true
		queue = append(queue, calls[f]...)
	}
	return hot
}

// hasMarker reports whether any comment line is the //sw:hotpath
// annotation.
func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		t := strings.TrimSpace(c.Text)
		if t == hotpathMarker || strings.HasPrefix(t, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// checkHotBody flags the allocating constructs inside one hot
// function.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s (captured variables escape to the heap)", name)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path %s", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path %s", name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil && isStringType(t) {
					pass.Reportf(n.Pos(), "string concatenation allocates in hot path %s", name)
				}
			}
		case *ast.IndexExpr:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map access in hot path %s", name)
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map iteration in hot path %s", name)
			}
		}
		return true
	})
}

// checkHotCall flags one call expression inside hot function name:
// allocating builtins, fmt calls, explicit conversions to interface
// types, and arguments implicitly boxed into interface parameters.
func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.TypesInfo
	for _, b := range []string{"append", "make", "new"} {
		if isBuiltin(info, call, b) {
			pass.Reportf(call.Pos(), "%s allocates in hot path %s", b, name)
			return
		}
	}
	if isBuiltin(info, call, "delete") {
		pass.Reportf(call.Pos(), "map delete in hot path %s", name)
		return
	}
	// panic(x) boxes x into its any parameter, but a panicking path has
	// already left the hot path; don't flag it.
	if isBuiltin(info, call, "panic") {
		return
	}

	// Explicit conversion: T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isBoxingInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && !at.IsNil() && !isInterfaceLike(at.Type) {
				pass.Reportf(call.Pos(), "conversion to interface boxes on the heap in hot path %s", name)
			}
		}
		return
	}

	if f := callee(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s (variadic interface args allocate)", f.Name(), name)
		return
	}

	// Implicit boxing: concrete argument passed to an interface
	// parameter.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			st, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !isBoxingInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() || isInterfaceLike(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxed into interface parameter in hot path %s", name)
	}
}

// isBoxingInterface reports whether converting a concrete value to t
// heap-boxes it: t is a real interface type, not a type parameter
// (whose underlying is its constraint interface but which is always
// instantiated concretely).
func isBoxingInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return false
	}
	return types.IsInterface(t)
}

// isInterfaceLike reports whether t already carries interface (or
// type-parameter) representation, so passing it to an interface
// parameter does not allocate a new box.
func isInterfaceLike(t types.Type) bool {
	if t == nil {
		return true
	}
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return true
	}
	return types.IsInterface(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
