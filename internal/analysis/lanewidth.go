package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// laneWidthScope lists the package-path suffixes the analyzer applies
// to: the kernel and scheduler packages, where every 32/64 must be the
// engine's lane count in disguise. internal/native is held to the same
// rule: each compiled kernel's lane count is a named per-kernel
// constant (strideBatch8x32, ...), never a bare literal.
var laneWidthScope = []string{"internal/core", "internal/sched", "internal/native"}

// laneNames are the identifier/parameter names that denote a lane
// stride. A literal 32 or 64 flowing into one of these is the bug
// class the generic lane engine was built to kill: a hard-coded width
// that silently under- or over-sizes buffers when the other register
// width runs.
var laneNames = map[string]bool{
	"lanes":   true,
	"stride":  true,
	"blanes":  true,
	"nlanes":  true,
	"lanecnt": true,
	// The striped kernel family's layout dimensions: the segment
	// length and stripe count are lane-count quotients, so a bare
	// 32/64 flowing into them is the same width bug.
	"seglen":  true,
	"segs":    true,
	"stripes": true,
}

// LaneWidth checks that lane strides and scratch sizing in the kernel
// and scheduler packages derive from the engine's Lanes()/Stride()
// values (or the seqio lane constants) instead of hard-coded 32/64
// literals.
var LaneWidth = &Analyzer{
	Name: "lanewidth",
	Doc: `flag hard-coded 32/64 lane strides in internal/core and internal/sched

The 256-bit engines run 32 lanes and the 512-bit engines 64; every
scratch buffer, batch stride, and engine instantiation must be sized
from vek.Engine.Lanes(), Batch.Stride(), or the seqio lane constants.
A literal 32/64 passed as a lanes/stride parameter, assigned to a
lanes/stride variable or field, or buried in a make() size is exactly
the width bug the generic lane engine refactor fixed by hand.`,
	Run: runLaneWidth,
}

func runLaneWidth(pass *Pass) error {
	inScope := false
	for _, s := range laneWidthScope {
		if pkgPathIs(pass.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkLaneCall(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if name := exprName(lhs); isLaneName(name) && isLaneLiteral(n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(),
							"hard-coded lane stride assigned to %s; derive it from Engine.Lanes(), Batch.Stride(), or the seqio lane constants", name)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if isLaneName(name.Name) && isLaneLiteral(n.Values[i]) {
						pass.Reportf(n.Values[i].Pos(),
							"hard-coded lane stride assigned to %s; derive it from Engine.Lanes(), Batch.Stride(), or the seqio lane constants", name.Name)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && isLaneName(key.Name) && isLaneLiteral(n.Value) {
					if _, isField := info.Uses[key].(*types.Var); isField {
						pass.Reportf(n.Value.Pos(),
							"hard-coded lane stride for field %s; derive it from Engine.Lanes(), Batch.Stride(), or the seqio lane constants", key.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkLaneCall flags 32/64 literals passed as lanes/stride parameters
// and buried inside make() sizing expressions.
func checkLaneCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if isBuiltin(info, call, "make") {
		for _, arg := range call.Args[1:] {
			ast.Inspect(arg, func(n ast.Node) bool {
				if isLaneLiteral(n) {
					pass.Reportf(n.Pos(),
						"hard-coded 32/64 in scratch-buffer sizing; size it from Engine.Lanes() or Batch.Stride()")
				}
				return true
			})
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if !isLaneLiteral(arg) {
			continue
		}
		var param *types.Var
		switch {
		case sig.Variadic() && i >= np-1:
			param = sig.Params().At(np - 1)
		case i < np:
			param = sig.Params().At(i)
		default:
			continue
		}
		if isLaneName(param.Name()) {
			pass.Reportf(arg.Pos(),
				"hard-coded lane stride passed as parameter %s; derive it from Engine.Lanes(), Batch.Stride(), or the seqio lane constants", param.Name())
		}
	}
}

// isLaneLiteral reports whether n is a bare 32 or 64 integer literal.
// Named constants (seqio.BatchLanes) resolve to identifiers, not
// literals, so the derived forms always pass.
func isLaneLiteral(n ast.Node) bool {
	lit, ok := n.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && (lit.Value == "32" || lit.Value == "64")
}

func isLaneName(name string) bool {
	return laneNames[strings.ToLower(name)]
}

// exprName returns the terminal identifier name of an lvalue: x or
// s.x. Empty for anything else.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
