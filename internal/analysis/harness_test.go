package analysis

// The fixture harness: analyzer tests load small synthetic packages
// from testdata/<analyzer>/src/<importpath>/ and check reported
// diagnostics against expectation comments in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	code() // want "regexp matching an active finding's message"
//	code() // wantsup "regexp matching a suppressed finding's message"
//
// Every diagnostic must match a want on its line and every want must
// be matched, so the fixtures prove both that violations are caught
// and that the surrounding clean code stays silent.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stdExportData lazily resolves export-data files for the standard
// library packages fixtures may import, via the same `go list -export`
// mechanism the real loader uses.
var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdExportData(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		entries, err := goList(".", nil, []string{"fmt", "sync", "sync/atomic"})
		if err != nil {
			stdErr = err
			return
		}
		stdExports = map[string]string{}
		for _, e := range entries {
			if e.Export != "" {
				stdExports[e.ImportPath] = e.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatalf("resolving std export data: %v", stdErr)
	}
	return stdExports
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// loadFixtures parses and type-checks fixture packages in the given
// order, so later fixtures can import earlier ones by import path.
func loadFixtures(t *testing.T, analyzer string, paths ...string) []*Package {
	t.Helper()
	return loadFixturesTags(t, analyzer, nil, paths...)
}

// loadFixturesTags is loadFixtures under a build tag set: fixture files
// carrying //go:build constraints are included or dropped exactly as
// the real loader's `go list -tags` would, and _test.go files are
// carried syntax-only on Package.TestFiles like the real loader does.
func loadFixturesTags(t *testing.T, analyzer string, tags []string, paths ...string) []*Package {
	t.Helper()
	std := exportImporter(token.NewFileSet(), stdExportData(t))
	local := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := local[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, path := range paths {
		dir := filepath.Join("testdata", analyzer, "src", filepath.FromSlash(path))
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir %s: %v", dir, err)
		}
		var files, testFiles []*ast.File
		for _, de := range names {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			if !buildTagsMatch(t, f, tags) {
				continue
			}
			if strings.HasSuffix(de.Name(), "_test.go") {
				testFiles = append(testFiles, f)
			} else {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			t.Fatalf("fixture dir %s has no .go files", dir)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", path, err)
		}
		local[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:      path,
			Name:      tpkg.Name(),
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			Info:      info,
			TestFiles: testFiles,
			Tags:      tags,
		})
	}
	return pkgs
}

// buildTagsMatch evaluates the file's //go:build constraint (if any)
// against the tag set.
func buildTagsMatch(t *testing.T, f *ast.File, tags []string) bool {
	t.Helper()
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				t.Fatalf("bad build constraint %q: %v", c.Text, err)
			}
			return expr.Eval(func(tag string) bool { return hasTag(tags, tag) })
		}
	}
	return true
}

// want is one expectation comment.
type want struct {
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

var wantRe = regexp.MustCompile(`//\s*want(sup)? "([^"]*)"`)

// collectWants extracts the want/wantsup comments of every fixture
// file, keyed by file and line.
func collectWants(t *testing.T, pkgs []*Package) map[string]map[int][]*want {
	t.Helper()
	wants := map[string]map[int][]*want{}
	for _, pkg := range pkgs {
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[2])
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[2], err)
						}
						pos := pkg.Fset.Position(c.Pos())
						byLine := wants[pos.Filename]
						if byLine == nil {
							byLine = map[int][]*want{}
							wants[pos.Filename] = byLine
						}
						byLine[pos.Line] = append(byLine[pos.Line], &want{re: re, suppressed: m[1] == "sup"})
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads the analyzer's fixture packages, runs the analyzer,
// and cross-checks diagnostics against the want comments.
func runFixture(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	runFixtureTags(t, a, nil, paths...)
}

// runFixtureTags is runFixture under a build tag set.
func runFixtureTags(t *testing.T, a *Analyzer, tags []string, paths ...string) {
	t.Helper()
	pkgs := loadFixturesTags(t, a.Name, tags, paths...)
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.suppressed == d.Suppressed && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s (suppressed=%v): %s", d.Position, d.Suppressed, d.Message)
		}
	}
	var missed []string
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matched %q (suppressed=%v)", file, line, w.re, w.suppressed))
				}
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
