package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanDiscipline enforces the scheduler package's goroutine and
// channel lifecycle rules, the leak class the cancellable pipeline
// guards against: every goroutine must announce its completion through
// a sync.WaitGroup, and every channel the package creates and sends on
// must be closed in exactly one place.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc: `enforce goroutine/channel lifecycle rules in internal/sched

Every go statement must start the launched body with
"defer wg.Done()" on a sync.WaitGroup, so no pipeline goroutine can
outlive its Wait, and must install a deferred recover guard (a
deferred function literal or package-local function that calls
recover directly), so a panic in a stage worker fails the search
instead of crashing the process. Every WaitGroup with an Add must
have a matching Done and Wait (and vice versa). Every channel created
with make(chan) in the package and sent on must be closed in exactly
one place — the producer — and never in two.`,
	Run: runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	if !pkgPathIs(pass.Path, "internal/sched") {
		return nil
	}
	decls := funcDecls(pass)
	checkGoStmts(pass, decls)
	checkWaitGroups(pass)
	checkChannelCloses(pass)
	return nil
}

// checkGoStmts verifies that every launched goroutine's body begins
// with a deferred WaitGroup Done, whether the body is a function
// literal or a package-local function/method launched by name.
func checkGoStmts(pass *Pass, decls map[*types.Func]*ast.FuncDecl) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, g.Call)
			if body == nil {
				pass.Reportf(g.Pos(), "goroutine target is not a package-local function; cannot verify it is WaitGroup-tracked")
				return true
			}
			if !startsWithDeferDone(pass, body) {
				pass.Reportf(g.Pos(), "goroutine must begin with `defer wg.Done()` on a sync.WaitGroup so it cannot leak past Wait")
			}
			if !hasRecoverGuard(pass, decls, body) {
				pass.Reportf(g.Pos(), "goroutine has no deferred recover guard; a panic inside it crashes the process instead of failing the search")
			}
			return true
		})
	}
}

// goBody resolves the body of the function a go statement launches.
func goBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if f := callee(pass.TypesInfo, call); f != nil && f.Pkg() == pass.Pkg {
		if fd := decls[f]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// startsWithDeferDone reports whether the first statement of body is
// `defer x.Done()` with x a sync.WaitGroup.
func startsWithDeferDone(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	d, ok := body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isWaitGroup(pass.TypesInfo.TypeOf(sel.X))
}

// hasRecoverGuard reports whether body installs a deferred recover
// guard anywhere: a defer whose target recovers. Defers inside nested
// function literals do not count — they guard that closure's frame,
// not the goroutine's.
func hasRecoverGuard(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if deferRecovers(pass, decls, n.Call) {
				found = true
			}
		}
		return true
	})
	return found
}

// deferRecovers reports whether a deferred call recovers: a function
// literal calling recover directly, or a package-local function or
// method whose body does.
func deferRecovers(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return callsRecover(pass, lit.Body)
	}
	if f := callee(pass.TypesInfo, call); f != nil && f.Pkg() == pass.Pkg {
		if fd := decls[f]; fd != nil {
			return callsRecover(pass, fd.Body)
		}
	}
	return false
}

// callsRecover reports whether body calls the recover builtin
// directly — not inside a nested function literal, where it would run
// in the wrong frame and could not stop an unwinding panic.
func callsRecover(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(pass.TypesInfo, call, "recover") {
			found = true
		}
		return true
	})
	return found
}

// wgUse tracks which of Add/Done/Wait a WaitGroup object has in the
// package, with the first position seen for reporting.
type wgUse struct {
	add, done, wait bool
	pos             token.Pos
}

// checkWaitGroups cross-checks every WaitGroup var or field: an Add
// without a Done (or Wait) is a leak; a Done without an Add panics.
func checkWaitGroups(pass *Pass) {
	uses := map[types.Object]*wgUse{}
	var order []types.Object
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Add" && method != "Done" && method != "Wait" {
				return true
			}
			if !isWaitGroup(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			obj := selectionObj(pass.TypesInfo, sel.X)
			if obj == nil {
				return true
			}
			u := uses[obj]
			if u == nil {
				u = &wgUse{pos: call.Pos()}
				uses[obj] = u
				order = append(order, obj)
			}
			switch method {
			case "Add":
				u.add = true
			case "Done":
				u.done = true
			case "Wait":
				u.wait = true
			}
			return true
		})
	}
	for _, obj := range order {
		u := uses[obj]
		switch {
		case u.add && !u.done:
			pass.Reportf(u.pos, "WaitGroup %s has Add but no Done in this package: the counter can never drain", obj.Name())
		case u.done && !u.add:
			pass.Reportf(u.pos, "WaitGroup %s has Done but no Add in this package: Done without Add panics", obj.Name())
		case u.add && !u.wait:
			pass.Reportf(u.pos, "WaitGroup %s is Added to but never Waited on: goroutines it tracks can leak", obj.Name())
		}
	}
}

// chanUse tracks ownership (a make(chan) assignment), sends, and
// close sites for one channel var or field.
type chanUse struct {
	owned    bool
	sendPos  token.Pos
	sends    int
	closePos []token.Pos
}

// checkChannelCloses enforces the producer-close discipline: a channel
// the package creates and sends on must be closed exactly once.
// Aliases (locals assigned from another channel expression, the
// select-arm idiom) are not owners and are exempt.
func checkChannelCloses(pass *Pass) {
	info := pass.TypesInfo
	uses := map[types.Object]*chanUse{}
	var order []types.Object
	get := func(obj types.Object) *chanUse {
		u := uses[obj]
		if u == nil {
			u = &chanUse{}
			uses[obj] = u
			order = append(order, obj)
		}
		return u
	}
	isMakeChan := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") {
			return false
		}
		_, isChan := info.TypeOf(call).Underlying().(*types.Chan)
		return isChan
	}
	chanObj := func(e ast.Expr) types.Object {
		obj := selectionObj(info, e)
		if obj == nil {
			return nil
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return nil
		}
		return obj
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if !isMakeChan(n.Rhs[i]) {
						continue
					}
					if obj := chanObj(lhs); obj != nil {
						get(obj).owned = true
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal field init: work8: make(chan ..., n).
				if key, ok := n.Key.(*ast.Ident); ok && isMakeChan(n.Value) {
					if obj, ok := info.Uses[key].(*types.Var); ok {
						if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
							get(obj).owned = true
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanObj(n.Chan); obj != nil {
					u := get(obj)
					if u.sends == 0 {
						u.sendPos = n.Pos()
					}
					u.sends++
				}
			case *ast.CallExpr:
				if isBuiltin(info, n, "close") && len(n.Args) == 1 {
					if obj := chanObj(n.Args[0]); obj != nil {
						get(obj).closePos = append(get(obj).closePos, n.Pos())
					}
				}
			}
			return true
		})
	}

	for _, obj := range order {
		u := uses[obj]
		if len(u.closePos) > 1 {
			for _, pos := range u.closePos[1:] {
				pass.Reportf(pos, "channel %s is closed in more than one place; exactly one producer must own the close", obj.Name())
			}
		}
		if u.owned && u.sends > 0 && len(u.closePos) == 0 {
			pass.Reportf(u.sendPos, "channel %s is created and sent on here but never closed; receivers ranging over it will leak", obj.Name())
		}
	}
}
