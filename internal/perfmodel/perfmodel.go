// Package perfmodel converts vector-machine tallies into modeled
// performance numbers on the paper's architectures: bottleneck cycles
// from the port-occupancy model, Vtune-style top-down pipeline-slot
// breakdowns (Fig. 12), GCUPS, and multi-thread scaling with the
// frequency-droop recalibration and hyperthreading model of §IV-E
// (Fig. 11).
package perfmodel

import (
	"fmt"

	"swvec/internal/isa"
	"swvec/internal/vek"
)

// Run is one measured kernel execution: the operations it issued, the
// DP cells it computed, and the working set it streamed over.
type Run struct {
	Arch  *isa.Arch
	Tally *vek.Tally
	// Cells is the number of DP cells updated.
	Cells int64
	// WorkingSetKB is the resident buffer footprint (rolling DP
	// buffers, profiles, scratch); it selects the cache level the
	// memory ops hit.
	WorkingSetKB float64
}

// missFactor scales memory-op occupancy by where the working set
// lives.
func missFactor(a *isa.Arch, workingSetKB float64) float64 {
	switch {
	case workingSetKB <= float64(a.L1KB):
		return 1.0
	case workingSetKB <= float64(a.L2KB):
		return 1.15
	case workingSetKB <= a.L3MBPerCore*1024*float64(a.Cores):
		return 1.45
	default:
		return 2.6
	}
}

// Cycles returns the modeled single-thread core cycles: the bottleneck
// execution resource under the run's cache behaviour.
func (r Run) Cycles() float64 {
	if r.Tally == nil {
		return 0
	}
	return r.Arch.CyclesWithMiss(r.Tally, missFactor(r.Arch, r.WorkingSetKB))
}

// Bottleneck names the resource that determines the run's modeled
// cycles: "p5", "alu", "load", "store", or "issue". Load/store
// bottlenecks mean the run is genuinely memory-limited (its GCUPS
// falls as the working set grows); everything else is CPU-limited.
func (r Run) Bottleneck() string {
	if r.Tally == nil {
		return "issue"
	}
	o := r.Arch.Occupancy(r.Tally)
	mf := missFactor(r.Arch, r.WorkingSetKB)
	name, crit := "p5", o.P5
	if o.ALU > crit {
		name, crit = "alu", o.ALU
	}
	if v := o.Load*mf + o.GatherLoad; v > crit {
		name, crit = "load", v
	}
	if v := o.Store * mf; v > crit {
		name, crit = "store", v
	}
	if v := o.Uops / float64(r.Arch.SlotsPerCycle); v > crit*r.Arch.DepPenalty {
		name = "issue"
	}
	return name
}

// Width returns the dominant register width of the run.
func (r Run) Width() vek.Width { return isa.DominantWidth(r.Tally) }

// Seconds returns modeled single-thread wall-clock with activeCores
// cores busy (setting the frequency license and droop).
func (r Run) Seconds(activeCores int) float64 {
	return r.Cycles() / (r.Arch.Freq(activeCores, r.Width()) * 1e9)
}

// GCUPS1 returns modeled single-thread giga-cell-updates per second at
// single-core turbo.
func (r Run) GCUPS1() float64 {
	s := r.Seconds(1)
	if s <= 0 {
		return 0
	}
	return float64(r.Cells) / s / 1e9
}

// TopDown is a Vtune-style pipeline-slot breakdown; the four top-level
// fractions sum to 1, and BackendBound = BackendMemory + BackendCore.
type TopDown struct {
	Retiring       float64
	FrontendBound  float64
	BadSpeculation float64
	BackendBound   float64
	BackendMemory  float64
	BackendCore    float64
}

// Utilization is the fraction of issue slots doing useful work.
func (t TopDown) Utilization() float64 { return t.Retiring }

// TopDown computes the pipeline-slot breakdown of the run. Front-end
// and bad-speculation are small constants (branch-light SIMD inner
// loops). Retiring follows the retired-uop count against the issue
// slots of the modeled execution time. The backend split follows
// Vtune's semantics: memory-bound counts stalls waiting for data
// (cache misses and store buffering), while saturated execution ports
// — including load-port pressure from L1-resident gathers — count as
// core bound. That convention is what makes the paper's
// substitution-matrix runs core bound (§IV-F).
func (r Run) TopDown() TopDown {
	cycles := r.Cycles()
	if cycles <= 0 {
		return TopDown{Retiring: 1}
	}
	o := r.Arch.Occupancy(r.Tally)
	slots := cycles * float64(r.Arch.SlotsPerCycle)
	td := TopDown{FrontendBound: 0.06, BadSpeculation: 0.015}
	retiring := o.Uops / slots
	if max := 1 - td.FrontendBound - td.BadSpeculation; retiring > max {
		retiring = max
	}
	td.Retiring = retiring
	td.BackendBound = 1 - td.Retiring - td.FrontendBound - td.BadSpeculation
	if td.BackendBound < 0 {
		td.BackendBound = 0
	}
	// Memory stalls: the extra load/store cycles induced by cache
	// misses plus a baseline streaming share of the memory traffic.
	// Gather loads are excluded — they hit the L1-resident matrix and
	// their port pressure counts as core bound.
	mf := missFactor(r.Arch, r.WorkingSetKB)
	// Loads stall retirement directly; stores only through buffer
	// pressure on misses, so they are half-weighted and contribute no
	// streaming baseline.
	memStall := o.Load*((mf-1)+0.3) + o.Store*(mf-1)*0.5
	memShare := memStall / cycles
	td.BackendMemory = minF(td.BackendBound, memShare)
	td.BackendCore = td.BackendBound - td.BackendMemory
	return td
}

// ScalingPoint is one entry of a Fig. 11 series.
type ScalingPoint struct {
	Threads int
	// GCUPS is the modeled aggregate throughput.
	GCUPS float64
	// FreqGHz is the modeled operating frequency at this thread count.
	FreqGHz float64
	// SpeedupRaw is GCUPS relative to the naive single-thread baseline
	// (single-core turbo).
	SpeedupRaw float64
	// SpeedupRecal is GCUPS relative to the recalibrated baseline: the
	// single-thread rate at the drooped all-core frequency, the
	// correction §IV-E found necessary.
	SpeedupRecal float64
}

// GCUPSAt returns modeled aggregate throughput with t hardware
// threads. Threads beyond the core count share cores via
// hyperthreading: the second thread recovers a fraction of the idle
// pipeline slots.
func (r Run) GCUPSAt(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	maxThreads := r.Arch.Threads()
	if threads > maxThreads {
		threads = maxThreads
	}
	activeCores := threads
	if activeCores > r.Arch.Cores {
		activeCores = r.Arch.Cores
	}
	freq := r.Arch.Freq(activeCores, r.Width())
	cyc := r.Cycles()
	if cyc <= 0 {
		return 0
	}
	ratePerThread := float64(r.Cells) / (cyc / (freq * 1e9)) / 1e9
	if threads <= r.Arch.Cores {
		return ratePerThread * float64(threads)
	}
	// Hyperthreaded cores: each core with two threads yields
	// 1 + HTEfficiency * (1 - utilization) of a single thread's rate.
	td := r.TopDown()
	htFactor := 1 + r.Arch.HTEfficiency*(1-td.Utilization())
	if htFactor > 2 {
		htFactor = 2
	}
	htCores := threads - r.Arch.Cores
	singleCores := r.Arch.Cores - htCores
	return ratePerThread * (float64(singleCores) + float64(htCores)*htFactor)
}

// Scaling produces the full Fig. 11 series for the given thread
// counts.
func (r Run) Scaling(threadCounts []int) []ScalingPoint {
	base1 := r.GCUPSAt(1)
	// Recalibrated baseline: single-thread work at the all-core
	// frequency.
	freqAll := r.Arch.Freq(r.Arch.Cores, r.Width())
	recalBase := float64(r.Cells) / (r.Cycles() / (freqAll * 1e9)) / 1e9
	out := make([]ScalingPoint, 0, len(threadCounts))
	for _, t := range threadCounts {
		g := r.GCUPSAt(t)
		activeCores := t
		if activeCores > r.Arch.Cores {
			activeCores = r.Arch.Cores
		}
		out = append(out, ScalingPoint{
			Threads:      t,
			GCUPS:        g,
			FreqGHz:      r.Arch.Freq(activeCores, r.Width()),
			SpeedupRaw:   g / base1,
			SpeedupRecal: g / recalBase,
		})
	}
	return out
}

// DefaultThreadCounts returns 1,2,4,... up to 2x the core count
// (hyperthreading included), always ending exactly at 2x cores.
func DefaultThreadCounts(a *isa.Arch) []int {
	var out []int
	for t := 1; t < a.Threads(); t *= 2 {
		out = append(out, t)
	}
	out = append(out, a.Threads())
	return out
}

func (t TopDown) String() string {
	return fmt.Sprintf("retiring %.1f%% frontend %.1f%% badspec %.1f%% backend %.1f%% (mem %.1f%% core %.1f%%)",
		100*t.Retiring, 100*t.FrontendBound, 100*t.BadSpeculation,
		100*t.BackendBound, 100*t.BackendMemory, 100*t.BackendCore)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
