package perfmodel

import (
	"math"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/core"
	"swvec/internal/isa"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

var protAlpha = submat.Blosum62().Alphabet()

// measuredRun produces a real tally from the 16-bit pair kernel.
func measuredRun(t *testing.T, arch *isa.Arch, qlen, dlen int) Run {
	t.Helper()
	g := seqio.NewGenerator(91)
	q := g.Protein("q", qlen).Encode(protAlpha)
	d := g.Protein("d", dlen).Encode(protAlpha)
	mch, tal := vek.NewMachine()
	if _, _, err := core.AlignPair16(mch, q, d, submat.Blosum62(), core.PairOptions{Gaps: aln.DefaultGaps()}); err != nil {
		t.Fatal(err)
	}
	return Run{
		Arch:         arch,
		Tally:        tal,
		Cells:        int64(qlen) * int64(dlen),
		WorkingSetKB: float64(qlen) * 14 / 1024,
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	for _, arch := range isa.All() {
		r := measuredRun(t, arch, 200, 400)
		td := r.TopDown()
		sum := td.Retiring + td.FrontendBound + td.BadSpeculation + td.BackendBound
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %f", arch.Name, sum)
		}
		if math.Abs(td.BackendMemory+td.BackendCore-td.BackendBound) > 1e-9 {
			t.Errorf("%s: backend split inconsistent", arch.Name)
		}
		for _, v := range []float64{td.Retiring, td.FrontendBound, td.BadSpeculation, td.BackendBound, td.BackendMemory, td.BackendCore} {
			if v < 0 || v > 1 {
				t.Errorf("%s: fraction %f out of range", arch.Name, v)
			}
		}
	}
}

func TestGatherHeavyRunIsCoreBound(t *testing.T) {
	// §IV-F: with a substitution matrix the execution is predominantly
	// CPU (core) bound because of gathers.
	r := measuredRun(t, isa.Get(isa.Skylake), 320, 1000)
	td := r.TopDown()
	if td.BackendCore <= td.BackendMemory {
		t.Errorf("gather-heavy run should be core bound: %s", td)
	}
	if td.BackendMemory < 0.02 {
		t.Errorf("memory-bound share %.3f implausibly small", td.BackendMemory)
	}
}

func TestGCUPSPositiveAndOrdered(t *testing.T) {
	r := measuredRun(t, isa.Get(isa.Cascadelake), 200, 500)
	g1 := r.GCUPS1()
	if g1 <= 0 {
		t.Fatal("nonpositive GCUPS")
	}
	gN := r.GCUPSAt(r.Arch.Cores)
	if gN <= g1 {
		t.Errorf("all-core GCUPS %.2f should exceed single-thread %.2f", gN, g1)
	}
}

func TestScalingSubLinearFromDroop(t *testing.T) {
	// Frequency droop makes raw speedup at all cores sub-linear while
	// the recalibrated speedup is near-linear — the §IV-E finding.
	for _, arch := range isa.Evaluated() {
		r := measuredRun(t, arch, 200, 500)
		pts := r.Scaling([]int{1, arch.Cores})
		last := pts[len(pts)-1]
		if last.SpeedupRaw >= float64(arch.Cores) {
			t.Errorf("%s: raw speedup %.2f should be sub-linear at %d cores",
				arch.Name, last.SpeedupRaw, arch.Cores)
		}
		if math.Abs(last.SpeedupRecal-float64(arch.Cores)) > 0.01 {
			t.Errorf("%s: recalibrated speedup %.2f should be ~%d",
				arch.Name, last.SpeedupRecal, arch.Cores)
		}
	}
}

func TestHyperthreadingAddsThroughput(t *testing.T) {
	for _, arch := range isa.Evaluated() {
		r := measuredRun(t, arch, 200, 500)
		gFull := r.GCUPSAt(arch.Cores)
		gHT := r.GCUPSAt(arch.Threads())
		if gHT <= gFull {
			t.Errorf("%s: HT throughput %.2f should exceed all-core %.2f", arch.Name, gHT, gFull)
		}
		if gHT > 2*gFull {
			t.Errorf("%s: HT gain %.2fx exceeds 2x", arch.Name, gHT/gFull)
		}
	}
}

func TestGCUPSAtClampsThreads(t *testing.T) {
	r := measuredRun(t, isa.Get(isa.Haswell), 100, 200)
	if r.GCUPSAt(0) != r.GCUPSAt(1) {
		t.Error("threads=0 should clamp to 1")
	}
	if r.GCUPSAt(10000) != r.GCUPSAt(r.Arch.Threads()) {
		t.Error("threads beyond HW should clamp")
	}
}

func TestFreqDroopVisibleInScaling(t *testing.T) {
	r := measuredRun(t, isa.Get(isa.Skylake), 150, 300)
	pts := r.Scaling(DefaultThreadCounts(r.Arch))
	if pts[0].FreqGHz <= pts[len(pts)-1].FreqGHz {
		t.Error("frequency should droop as threads increase")
	}
}

func TestDefaultThreadCounts(t *testing.T) {
	a := isa.Get(isa.Haswell) // 8 cores, 16 threads
	got := DefaultThreadCounts(a)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
}

func TestWorkingSetRaisesMemoryShare(t *testing.T) {
	base := measuredRun(t, isa.Get(isa.Alderlake), 200, 400)
	small := base
	small.WorkingSetKB = 16
	big := base
	big.WorkingSetKB = 1 << 20 // 1 GB: DRAM resident
	tdSmall := small.TopDown()
	tdBig := big.TopDown()
	if tdBig.BackendMemory <= tdSmall.BackendMemory {
		t.Errorf("DRAM-resident run should be more memory bound: %.3f vs %.3f",
			tdBig.BackendMemory, tdSmall.BackendMemory)
	}
	if big.Cycles() <= small.Cycles() {
		t.Error("DRAM-resident run should cost more cycles")
	}
}

func TestCyclesMatchesIsaWithinFactor(t *testing.T) {
	// The perfmodel split must stay close to the flat isa.Cycles sum
	// when the working set is L1-resident (missFactor 1).
	r := measuredRun(t, isa.Get(isa.Broadwell), 50, 80)
	r.WorkingSetKB = 1
	got := r.Cycles()
	want := r.Arch.Cycles(r.Tally)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("cycles %.0f, isa says %.0f", got, want)
	}
}

func TestNilTally(t *testing.T) {
	r := Run{Arch: isa.Get(isa.Haswell), Cells: 100}
	if r.Cycles() != 0 {
		t.Error("nil tally should cost nothing")
	}
	if r.GCUPS1() != 0 {
		t.Error("nil tally GCUPS should be 0")
	}
}

func TestTopDownStringFormat(t *testing.T) {
	r := measuredRun(t, isa.Get(isa.Skylake), 64, 64)
	s := r.TopDown().String()
	if len(s) == 0 {
		t.Error("empty top-down string")
	}
}

func TestBottleneck(t *testing.T) {
	arch := isa.Get(isa.Skylake)
	mk := func(op vek.Op, n uint64) Run {
		var tal vek.Tally
		tal.Add(op, vek.W256, n)
		return Run{Arch: arch, Tally: &tal, Cells: 1, WorkingSetKB: 1}
	}
	if got := mk(vek.OpShuffle, 1000).Bottleneck(); got != "p5" {
		t.Errorf("shuffle mix bottleneck = %q, want p5", got)
	}
	if got := mk(vek.OpAddSat16, 1000).Bottleneck(); got != "alu" {
		t.Errorf("alu mix bottleneck = %q, want alu", got)
	}
	if got := mk(vek.OpGather32, 1000).Bottleneck(); got != "load" {
		t.Errorf("gather mix bottleneck = %q, want load", got)
	}
	if got := mk(vek.OpStore, 1000).Bottleneck(); got != "store" {
		t.Errorf("store mix bottleneck = %q, want store", got)
	}
	// A DRAM working set turns a balanced mix memory bound.
	var tal vek.Tally
	tal.Add(vek.OpLoad, vek.W256, 1000)
	tal.Add(vek.OpAddSat16, vek.W256, 1100)
	r := Run{Arch: arch, Tally: &tal, Cells: 1, WorkingSetKB: 1}
	if got := r.Bottleneck(); got != "alu" {
		t.Errorf("L1 mix = %q, want alu", got)
	}
	r.WorkingSetKB = 1 << 20
	if got := r.Bottleneck(); got != "load" {
		t.Errorf("DRAM mix = %q, want load", got)
	}
	if (Run{Arch: arch}).Bottleneck() != "issue" {
		t.Error("nil tally should report issue")
	}
}
