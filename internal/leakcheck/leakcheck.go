// Package leakcheck asserts that a test leaves no goroutines behind.
// The search pipeline's contract is that no goroutine outlives its
// entry point — even when canceled, crashed, or fault-injected — so
// every Search/chaos test opens with leakcheck.Check(t).
package leakcheck

import (
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// drainWindow is how long the cleanup polls for stragglers before
// declaring a leak. Goroutines that are shutting down (a worker between
// its last channel receive and its return) need a moment to exit.
const drainWindow = 5 * time.Second

// Check snapshots the goroutines running this module's code and
// registers a cleanup that fails the test if new ones survive past the
// drain window. Call it first thing in the test; it composes with
// subtests (each gets its own baseline).
func Check(t testing.TB) {
	t.Helper()
	before := moduleGoroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(drainWindow)
		var leaked []string
		for {
			leaked = diff(moduleGoroutines(), before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

var (
	// hexAddr scrubs stack-trace pointer arguments and frame offsets so
	// the same parked goroutine hashes identically across snapshots.
	hexAddr = regexp.MustCompile(`0x[0-9a-f]+`)
	// goroutineID scrubs the header and "created by ... in goroutine N"
	// trailers.
	goroutineID = regexp.MustCompile(`goroutine \d+`)
)

// moduleGoroutines returns a multiset of normalized stacks for
// goroutines executing this module's non-test code. Test-runner
// goroutines (testing.tRunner frames) are excluded: the leak class
// under test is pipeline goroutines, which are started with go and
// carry a "created by swvec/..." frame instead.
func moduleGoroutines() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	out := map[string]int{}
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "swvec/") || strings.Contains(g, "testing.tRunner") {
			continue
		}
		out[normalize(g)]++
	}
	return out
}

func normalize(stack string) string {
	if i := strings.IndexByte(stack, '\n'); i >= 0 {
		// Drop the "goroutine N [state]:" header — the state of a
		// dying goroutine flaps between snapshots.
		stack = stack[i+1:]
	}
	stack = hexAddr.ReplaceAllString(stack, "0x?")
	return goroutineID.ReplaceAllString(stack, "goroutine ?")
}

// diff returns the stacks whose count grew relative to the baseline.
func diff(after, before map[string]int) []string {
	var out []string
	for stack, n := range after {
		for i := before[stack]; i < n; i++ {
			out = append(out, stack)
		}
	}
	return out
}
