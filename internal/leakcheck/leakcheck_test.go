package leakcheck

import (
	"strings"
	"testing"
)

func TestNormalizeScrubsVolatileParts(t *testing.T) {
	a := "goroutine 7 [chan receive]:\nswvec/internal/sched.(*pipeline).worker(0xc000123400)\n\tsched.go:400 +0x1a4\ncreated by swvec/internal/sched.SearchContext in goroutine 12\n"
	b := "goroutine 99 [select]:\nswvec/internal/sched.(*pipeline).worker(0xc000feed00)\n\tsched.go:400 +0x1a4\ncreated by swvec/internal/sched.SearchContext in goroutine 31\n"
	if normalize(a) != normalize(b) {
		t.Fatalf("same stack normalized differently:\n%q\n%q", normalize(a), normalize(b))
	}
}

func TestDiffCountsGrowth(t *testing.T) {
	before := map[string]int{"s1": 1, "s2": 2}
	after := map[string]int{"s1": 3, "s2": 2, "s3": 1}
	got := diff(after, before)
	if len(got) != 3 {
		t.Fatalf("diff = %v, want 2×s1 + 1×s3", got)
	}
	var s1, s3 int
	for _, s := range got {
		switch s {
		case "s1":
			s1++
		case "s3":
			s3++
		default:
			t.Fatalf("unexpected stack %q", s)
		}
	}
	if s1 != 2 || s3 != 1 {
		t.Fatalf("diff counts s1=%d s3=%d, want 2/1", s1, s3)
	}
}

func TestModuleGoroutinesIgnoresTestRunner(t *testing.T) {
	// This test itself runs swvec test code under testing.tRunner, so
	// it must not count itself.
	for stack := range moduleGoroutines() {
		if strings.Contains(stack, "TestModuleGoroutinesIgnoresTestRunner") {
			t.Fatalf("test-runner goroutine counted:\n%s", stack)
		}
	}
}

func TestCheckPassesOnCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}
