// Package cluster implements the sharded scatter-gather search layer
// (DESIGN.md §15): a consistent-hash shard map that partitions a
// database across N swserver shard processes, the wire protocol the
// router speaks to them, a per-shard routing policy (circuit breakers,
// bounded retry with backoff, hedged requests), top-K merging that
// preserves the single-node ordering contract, per-shard metrics, and
// a spawner for local shard processes.
package cluster

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker. swserver guards its
// batch compute path with one; the router runs one per shard so a dead
// or flapping shard degrades into fast, explicit skips instead of every
// query burning a full shard timeout against it.
//
// States: closed (normal), open (rejecting until the cooldown passes),
// half-open (one probe in flight decides whether to close or reopen).
type Breaker struct {
	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool // half-open: the single probe is in flight
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and admits a probe after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Closed reports whether the breaker is in its normal closed state —
// no failure streak has tripped it and no reintegration probe is
// pending. Unlike Allow it never transitions state, so callers that
// must not consume the half-open probe slot (replica failover and
// hedge-target selection, which leave reintegration to the health
// prober) can check health without racing the prober for it.
func (b *Breaker) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// Rejecting is the cheap admission-side check: true while the breaker
// is open and still cooling down, or half-open with the probe already
// taken. Requests refused here never reach the guarded call.
func (b *Breaker) Rejecting() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return b.now().Sub(b.openedAt) < b.cooldown
	case breakerHalfOpen:
		return b.probing
	}
	return false
}

// Allow reports whether a guarded call may run. An open breaker past
// its cooldown transitions to half-open and admits exactly one probe;
// everything else waits for the probe's verdict.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// OnSuccess reports a completed call; a half-open probe's success
// closes the breaker.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// OnFailure reports a failed call and returns true when this failure
// tripped the breaker open (from closed after threshold consecutive
// failures, or a failed half-open probe).
func (b *Breaker) OnFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true
		}
	}
	return false
}
