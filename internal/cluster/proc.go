package cluster

import (
	"bufio"
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"time"
)

// Proc is one locally spawned shard server process.
type Proc struct {
	// Shard is the shard index the process serves; Replica is which of
	// the shard's replicas this process is (0-based, in spawn order —
	// not failover rank, which ShardMap.ReplicaOrder assigns); Addr is
	// the loopback address it announced.
	Shard   int
	Replica int
	Addr    string

	cmd      *exec.Cmd
	scanDone chan struct{}
	waitOnce sync.Once
	waitErr  error
}

// SpawnOptions configures a local shard fleet.
type SpawnOptions struct {
	// Bin is the swserver binary to run.
	Bin string
	// Shards is the cluster size; each process gets -shard-index i
	// -shard-count Shards and loads only its consistent-hash slice.
	Shards int
	// Replicas spawns this many identical processes per shard (default
	// 1). Replicas of a shard differ only in port; they load the same
	// slice. Processes come back replica-major — shards 0..S-1 of
	// replica 0, then of replica 1, ... — matching the address layout
	// GroupReplicas expects.
	Replicas int
	// GenDB serves the deterministic synthetic database of this size
	// (every process regenerates it from the fixed seed and slices it
	// locally, so no database files change hands); DBPath serves a
	// FASTA file instead. Exactly one must be set.
	GenDB  int
	DBPath string
	// ExtraArgs are appended to every shard's command line.
	ExtraArgs []string
	// ReadyTimeout bounds the wait for a shard to announce its listen
	// address (default 30s).
	ReadyTimeout time.Duration
	// Logf receives each shard's log lines, prefixed with the shard
	// index; nil discards them.
	Logf func(format string, args ...any)
}

// listenRE extracts the announced address from swserver's structured
// "event=listen addr=..." log line.
var listenRE = regexp.MustCompile(`event=listen addr=(\S+)`)

// SpawnShards starts one swserver shard process per shard on loopback
// port 0 (the kernel picks free ports; the announced address is parsed
// from the shard's structured startup log). On any failure the already
// started processes are killed before returning.
func SpawnShards(opt SpawnOptions) ([]*Proc, error) {
	if opt.Shards < 1 {
		return nil, fmt.Errorf("cluster: spawn needs at least 1 shard")
	}
	if (opt.GenDB > 0) == (opt.DBPath != "") {
		return nil, fmt.Errorf("cluster: spawn needs exactly one of GenDB and DBPath")
	}
	reps := opt.Replicas
	if reps == 0 {
		reps = 1
	}
	if reps < 1 {
		return nil, fmt.Errorf("cluster: spawn needs at least 1 replica, got %d", reps)
	}
	ready := opt.ReadyTimeout
	if ready <= 0 {
		ready = 30 * time.Second
	}
	procs := make([]*Proc, 0, opt.Shards*reps)
	fail := func(err error) ([]*Proc, error) {
		for _, p := range procs {
			p.Kill()
		}
		return nil, err
	}
	for r := 0; r < reps; r++ {
		for i := 0; i < opt.Shards; i++ {
			args := []string{
				"-listen", "127.0.0.1:0",
				"-shard-index", strconv.Itoa(i),
				"-shard-count", strconv.Itoa(opt.Shards),
			}
			if opt.GenDB > 0 {
				args = append(args, "-gen-db", strconv.Itoa(opt.GenDB))
			} else {
				args = append(args, "-db", opt.DBPath)
			}
			args = append(args, opt.ExtraArgs...)
			p, err := spawnOne(opt.Bin, i, r, args, ready, opt.Logf)
			if err != nil {
				return fail(fmt.Errorf("cluster: shard %d replica %d: %w", i, r, err))
			}
			procs = append(procs, p)
		}
	}
	return procs, nil
}

func spawnOne(bin string, shard, replica int, args []string, ready time.Duration, logf func(string, ...any)) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &Proc{Shard: shard, Replica: replica, cmd: cmd, scanDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if logf != nil {
				logf("shard%d.%d: %s", shard, replica, line)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.Addr = addr
		return p, nil
	case <-time.After(ready):
		p.Kill()
		return nil, fmt.Errorf("no listen announcement within %s", ready)
	}
}

// Kill SIGKILLs the process and reaps it; safe to call repeatedly and
// after the process already died.
func (p *Proc) Kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.Wait()
}

// Stop asks for a graceful shutdown (SIGTERM — swserver drains its
// accumulation window) and reaps the process.
func (p *Proc) Stop() error {
	if p.cmd.Process != nil {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	return p.Wait()
}

// Wait reaps the process and joins the log scanner; idempotent.
func (p *Proc) Wait() error {
	p.waitOnce.Do(func() {
		p.waitErr = p.cmd.Wait()
		<-p.scanDone
	})
	return p.waitErr
}
