package cluster

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Metrics tallies the router's scatter-gather activity: process-wide
// counters plus one counter block per shard, all atomics so the
// scatter hot path never takes a lock. Published as the
// "swvec.cluster" expvar for /debug/vars scraping.
type Metrics struct {
	// Scatters counts queries fanned out; Partial counts responses
	// that were missing at least one shard's contribution.
	Scatters atomic.Int64
	Partial  atomic.Int64

	shards []ShardMetrics
}

// ShardMetrics is one shard's routing-policy tally.
type ShardMetrics struct {
	// Requests counts attempts sent to the shard (retries and hedges
	// included); Errors counts attempts that failed.
	Requests atomic.Int64
	Errors   atomic.Int64
	// Retries counts backoff retries after a transient failure; Hedges
	// counts speculative second requests launched against a slow
	// shard, and HedgeWins how often the hedge answered first.
	Retries   atomic.Int64
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
	// BreakerTrips counts opens of the shard's circuit breaker;
	// BreakerSkipped counts queries that skipped the shard because the
	// breaker was rejecting (the shard is quarantined).
	BreakerTrips   atomic.Int64
	BreakerSkipped atomic.Int64
	// Degraded counts queries the shard answered only after a retry or
	// through a hedge; Skipped counts queries that got no usable
	// answer from the shard at all.
	Degraded atomic.Int64
	Skipped  atomic.Int64
}

// NewMetrics returns a Metrics block for n shards.
func NewMetrics(n int) *Metrics {
	return &Metrics{shards: make([]ShardMetrics, n)}
}

// Shard returns shard i's counter block.
func (m *Metrics) Shard(i int) *ShardMetrics { return &m.shards[i] }

// ShardSnapshot is an immutable copy of one shard's counters; JSON
// tags match the /debug/vars output.
type ShardSnapshot struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	Retries        int64 `json:"retries"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	BreakerTrips   int64 `json:"breaker_trips"`
	BreakerSkipped int64 `json:"breaker_skipped"`
	Degraded       int64 `json:"degraded"`
	Skipped        int64 `json:"skipped"`
}

// Snapshot is a point-in-time copy of the whole Metrics block.
type Snapshot struct {
	Scatters int64           `json:"scatters"`
	Partial  int64           `json:"partial"`
	Shards   []ShardSnapshot `json:"shards"`
}

// Snapshot copies every counter. Individual counters are read
// atomically; the copy as a whole is a sample of a moving system, like
// any /debug/vars scrape.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Scatters: m.Scatters.Load(),
		Partial:  m.Partial.Load(),
		Shards:   make([]ShardSnapshot, len(m.shards)),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		s.Shards[i] = ShardSnapshot{
			Requests:       sh.Requests.Load(),
			Errors:         sh.Errors.Load(),
			Retries:        sh.Retries.Load(),
			Hedges:         sh.Hedges.Load(),
			HedgeWins:      sh.HedgeWins.Load(),
			BreakerTrips:   sh.BreakerTrips.Load(),
			BreakerSkipped: sh.BreakerSkipped.Load(),
			Degraded:       sh.Degraded.Load(),
			Skipped:        sh.Skipped.Load(),
		}
	}
	return s
}

var publishOnce sync.Once

// Publish registers m as the "swvec.cluster" expvar. Idempotent;
// only the first published Metrics wins (one router per process).
func (m *Metrics) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("swvec.cluster", expvar.Func(func() any {
			return m.Snapshot()
		}))
	})
}
