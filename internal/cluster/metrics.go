package cluster

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Metrics tallies the router's scatter-gather activity: process-wide
// counters plus one counter block per shard, all atomics so the
// scatter hot path never takes a lock. Published as the
// "swvec.cluster" expvar for /debug/vars scraping.
type Metrics struct {
	// Scatters counts queries fanned out; Partial counts responses
	// that were missing at least one shard's contribution.
	Scatters atomic.Int64
	Partial  atomic.Int64

	shards   []ShardMetrics
	replicas [][]ReplicaMetrics // [shard][failover rank]
}

// ShardMetrics is one shard's routing-policy tally.
type ShardMetrics struct {
	// Requests counts attempts sent to the shard (retries and hedges
	// included); Errors counts attempts that failed.
	Requests atomic.Int64
	Errors   atomic.Int64
	// Retries counts backoff retries after a transient failure; Hedges
	// counts speculative second requests launched against a slow
	// shard, and HedgeWins how often the hedge answered first.
	Retries   atomic.Int64
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
	// BreakerTrips counts opens of the shard's circuit breaker;
	// BreakerSkipped counts queries that skipped the shard because the
	// breaker was rejecting (the shard is quarantined).
	BreakerTrips   atomic.Int64
	BreakerSkipped atomic.Int64
	// Degraded counts queries the shard answered only after a retry or
	// through a hedge; Skipped counts queries that got no usable
	// answer from the shard at all.
	Degraded atomic.Int64
	Skipped  atomic.Int64
	// Failovers counts queries the shard answered only after at least
	// one of its replicas had already failed the query.
	Failovers atomic.Int64
}

// Replica health states, reported as the replica_state gauge.
const (
	ReplicaHealthy = iota
	ReplicaDown
)

// ReplicaMetrics is one replica's tally within its shard.
type ReplicaMetrics struct {
	// Requests counts attempts sent to this replica (retries and hedges
	// included); Errors counts attempts that failed.
	Requests atomic.Int64
	Errors   atomic.Int64
	// Failovers counts queries that abandoned this replica for a
	// sibling after its attempts were exhausted.
	Failovers atomic.Int64
	// Probes counts health pings sent to the replica; ProbeFailures
	// counts the ones that failed.
	Probes        atomic.Int64
	ProbeFailures atomic.Int64
	// State is the current health gauge (ReplicaHealthy/ReplicaDown);
	// StateChanges counts its transitions.
	State        atomic.Int64
	StateChanges atomic.Int64
}

// SetState records a health transition, counting only real changes so
// a steady replica probed every second does not inflate the counter.
func (r *ReplicaMetrics) SetState(s int64) {
	if r.State.Swap(s) != s {
		r.StateChanges.Add(1)
	}
}

// NewMetrics returns a Metrics block for n single-replica shards.
func NewMetrics(n int) *Metrics { return NewReplicatedMetrics(n, 1) }

// NewReplicatedMetrics returns a Metrics block for n shards of r
// replicas each.
func NewReplicatedMetrics(n, r int) *Metrics {
	m := &Metrics{shards: make([]ShardMetrics, n), replicas: make([][]ReplicaMetrics, n)}
	for i := range m.replicas {
		m.replicas[i] = make([]ReplicaMetrics, r)
	}
	return m
}

// Shard returns shard i's counter block.
func (m *Metrics) Shard(i int) *ShardMetrics { return &m.shards[i] }

// Replica returns the counter block for shard i's replica of the given
// failover rank.
func (m *Metrics) Replica(i, rank int) *ReplicaMetrics { return &m.replicas[i][rank] }

// ShardSnapshot is an immutable copy of one shard's counters; JSON
// tags match the /debug/vars output.
type ShardSnapshot struct {
	Requests       int64             `json:"requests"`
	Errors         int64             `json:"errors"`
	Retries        int64             `json:"retries"`
	Hedges         int64             `json:"hedges"`
	HedgeWins      int64             `json:"hedge_wins"`
	BreakerTrips   int64             `json:"breaker_trips"`
	BreakerSkipped int64             `json:"breaker_skipped"`
	Degraded       int64             `json:"degraded"`
	Skipped        int64             `json:"skipped"`
	Failovers      int64             `json:"failovers"`
	Replicas       []ReplicaSnapshot `json:"replicas,omitempty"`
}

// ReplicaSnapshot is an immutable copy of one replica's counters.
// Replicas are listed in failover order (rank 0 is the primary).
type ReplicaSnapshot struct {
	Rank             int    `json:"rank"`
	State            string `json:"state"`
	Requests         int64  `json:"requests"`
	Errors           int64  `json:"errors"`
	Failovers        int64  `json:"failovers"`
	Probes           int64  `json:"probes"`
	ProbeFailures    int64  `json:"probe_failures"`
	StateTransitions int64  `json:"state_transitions"`
}

// replicaStateName renders the replica_state gauge for humans.
func replicaStateName(s int64) string {
	switch s {
	case ReplicaHealthy:
		return "healthy"
	case ReplicaDown:
		return "down"
	}
	return "unknown"
}

// Snapshot is a point-in-time copy of the whole Metrics block.
type Snapshot struct {
	Scatters int64           `json:"scatters"`
	Partial  int64           `json:"partial"`
	Shards   []ShardSnapshot `json:"shards"`
}

// Snapshot copies every counter. Individual counters are read
// atomically; the copy as a whole is a sample of a moving system, like
// any /debug/vars scrape.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Scatters: m.Scatters.Load(),
		Partial:  m.Partial.Load(),
		Shards:   make([]ShardSnapshot, len(m.shards)),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		snap := ShardSnapshot{
			Requests:       sh.Requests.Load(),
			Errors:         sh.Errors.Load(),
			Retries:        sh.Retries.Load(),
			Hedges:         sh.Hedges.Load(),
			HedgeWins:      sh.HedgeWins.Load(),
			BreakerTrips:   sh.BreakerTrips.Load(),
			BreakerSkipped: sh.BreakerSkipped.Load(),
			Degraded:       sh.Degraded.Load(),
			Skipped:        sh.Skipped.Load(),
			Failovers:      sh.Failovers.Load(),
		}
		// Single-replica pools omit the replica breakdown: it would
		// duplicate the shard row and churn every /debug/vars scrape.
		if i < len(m.replicas) && len(m.replicas[i]) > 1 {
			for rank := range m.replicas[i] {
				r := &m.replicas[i][rank]
				snap.Replicas = append(snap.Replicas, ReplicaSnapshot{
					Rank:             rank,
					State:            replicaStateName(r.State.Load()),
					Requests:         r.Requests.Load(),
					Errors:           r.Errors.Load(),
					Failovers:        r.Failovers.Load(),
					Probes:           r.Probes.Load(),
					ProbeFailures:    r.ProbeFailures.Load(),
					StateTransitions: r.StateChanges.Load(),
				})
			}
		}
		s.Shards[i] = snap
	}
	return s
}

var publishOnce sync.Once

// Publish registers m as the "swvec.cluster" expvar. Idempotent;
// only the first published Metrics wins (one router per process).
func (m *Metrics) Publish() {
	publishOnce.Do(func() {
		expvar.Publish("swvec.cluster", expvar.Func(func() any {
			return m.Snapshot()
		}))
	})
}
