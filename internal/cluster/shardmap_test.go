package cluster

import (
	"reflect"
	"testing"

	"swvec/internal/seqio"
)

// TestShardMapStableAcrossConstructions asserts the restart contract:
// two independently built maps with the same shard count assign every
// ID identically, because the ring is a pure function of (shard count,
// FNV-1a) with no process-local state.
func TestShardMapStableAcrossConstructions(t *testing.T) {
	db := seqio.NewGenerator(11).Database(500)
	for _, n := range []int{1, 2, 3, 5, 16} {
		a, b := NewShardMap(n), NewShardMap(n)
		for _, s := range db {
			if ga, gb := a.Assign(s.ID), b.Assign(s.ID); ga != gb {
				t.Fatalf("n=%d id=%q: assignment differs across constructions: %d vs %d", n, s.ID, ga, gb)
			}
		}
	}
}

// TestShardMapPartitionCoversExactly asserts every sequence lands in
// exactly one shard and each shard slice preserves database order —
// the property the merge's tie-break equivalence proof leans on.
func TestShardMapPartitionCoversExactly(t *testing.T) {
	db := seqio.NewGenerator(7).Database(400)
	for _, n := range []int{1, 2, 3, 7} {
		m := NewShardMap(n)
		parts := m.Partition(db)
		if len(parts) != n {
			t.Fatalf("n=%d: Partition returned %d slices", n, len(parts))
		}
		seen := make(map[string]int)
		total := 0
		for shard, part := range parts {
			if !reflect.DeepEqual(part, m.Slice(db, shard)) {
				t.Fatalf("n=%d shard=%d: Partition and Slice disagree", n, shard)
			}
			lastGlobal := -1
			for _, s := range part {
				if m.Assign(s.ID) != shard {
					t.Fatalf("n=%d: %q sliced into shard %d but assigned to %d", n, s.ID, shard, m.Assign(s.ID))
				}
				if _, dup := seen[s.ID]; dup {
					t.Fatalf("n=%d: %q appears in shards %d and %d", n, s.ID, seen[s.ID], shard)
				}
				seen[s.ID] = shard
				gi := globalIndex(db, s.ID)
				if gi <= lastGlobal {
					t.Fatalf("n=%d shard=%d: slice out of database order at %q", n, shard, s.ID)
				}
				lastGlobal = gi
			}
			total += len(part)
		}
		if total != len(db) {
			t.Fatalf("n=%d: partition holds %d of %d sequences", n, total, len(db))
		}
	}
}

func globalIndex(db []seqio.Sequence, id string) int {
	for i, s := range db {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// TestShardMapBalance asserts the 64-vnode ring spreads a synthetic
// database roughly evenly: no shard of three should hold less than 15%
// or more than 60% of the sequences.
func TestShardMapBalance(t *testing.T) {
	db := seqio.NewGenerator(3).Database(3000)
	parts := NewShardMap(3).Partition(db)
	for shard, part := range parts {
		frac := float64(len(part)) / float64(len(db))
		if frac < 0.15 || frac > 0.60 {
			t.Fatalf("shard %d holds %.1f%% of the database (want 15%%..60%%)", shard, 100*frac)
		}
	}
}

// TestShardMapProfile checks the per-shard length profile the router
// logs and publishes: totals reconcile with the database and the
// min/median/max are ordered.
func TestShardMapProfile(t *testing.T) {
	db := seqio.NewGenerator(5).Database(300)
	m := NewShardMap(4)
	profs := m.Profile(db)
	if len(profs) != 4 {
		t.Fatalf("Profile returned %d entries, want 4", len(profs))
	}
	var seqs int
	var residues int64
	for i, p := range profs {
		if p.Shard != i {
			t.Fatalf("profile %d reports shard %d", i, p.Shard)
		}
		if p.Sequences > 0 && !(p.MinLen <= p.MedianLen && p.MedianLen <= p.MaxLen) {
			t.Fatalf("shard %d: min/median/max out of order: %d/%d/%d", i, p.MinLen, p.MedianLen, p.MaxLen)
		}
		seqs += p.Sequences
		residues += p.Residues
	}
	if seqs != len(db) {
		t.Fatalf("profiles cover %d sequences, database has %d", seqs, len(db))
	}
	if want := seqio.TotalResidues(db); residues != want {
		t.Fatalf("profiles cover %d residues, database has %d", residues, want)
	}
}

func TestNewShardMapRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardMap(0) did not panic")
		}
	}()
	NewShardMap(0)
}

// TestReplicaOrderStableAcrossConstructions asserts the failover
// priority is a pure function of (shards, replicas, shard index):
// independently built maps agree, so routers never disagree about who
// a shard's primary is across restarts.
func TestReplicaOrderStableAcrossConstructions(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		a, b := NewShardMap(shards), NewShardMap(shards)
		for _, reps := range []int{1, 2, 3, 5} {
			for s := 0; s < shards; s++ {
				oa, ob := a.ReplicaOrder(s, reps), b.ReplicaOrder(s, reps)
				if !reflect.DeepEqual(oa, ob) {
					t.Fatalf("shards=%d reps=%d shard=%d: order differs across constructions: %v vs %v",
						shards, reps, s, oa, ob)
				}
			}
		}
	}
}

// TestReplicaOrderIsPermutation asserts every order is a permutation
// of 0..R-1 — each rank appears exactly once, so the failover walk
// visits every replica and the non-primary set is exactly the ranks
// disjoint from the primary.
func TestReplicaOrderIsPermutation(t *testing.T) {
	m := NewShardMap(16)
	for s := 0; s < 16; s++ {
		for _, reps := range []int{1, 2, 3, 7} {
			order := m.ReplicaOrder(s, reps)
			if len(order) != reps {
				t.Fatalf("shard %d reps=%d: order has %d entries", s, reps, len(order))
			}
			seen := make(map[int]bool, reps)
			for _, r := range order {
				if r < 0 || r >= reps || seen[r] {
					t.Fatalf("shard %d reps=%d: not a permutation: %v", s, reps, order)
				}
				seen[r] = true
			}
			for _, r := range order[1:] {
				if r == order[0] {
					t.Fatalf("shard %d reps=%d: primary repeated in failover tail: %v", s, reps, order)
				}
			}
		}
	}
}

// TestReplicaOrderSpreadsPrimaries asserts the hash-derived priorities
// spread primary duty across replica ranks: over many shards, no rank
// should be primary for almost all of them (a constant order would put
// every primary on rank 0).
func TestReplicaOrderSpreadsPrimaries(t *testing.T) {
	const shards, reps = 64, 4
	m := NewShardMap(shards)
	primaries := make(map[int]int)
	for s := 0; s < shards; s++ {
		primaries[m.ReplicaOrder(s, reps)[0]]++
	}
	for rank := 0; rank < reps; rank++ {
		n := primaries[rank]
		// Expected 16 of 64; binomial spread makes 2..35 overwhelmingly
		// safe while still catching a constant or near-constant order.
		if n < 2 || n > 35 {
			t.Fatalf("rank %d is primary for %d of %d shards (want 2..35): %v", rank, n, shards, primaries)
		}
	}
}

// TestGroupReplicasLayout asserts the replica-major address layout:
// group[s] holds addresses {addrs[r*S+s]} reordered by ReplicaOrder,
// every address appears in exactly one group, and replicas=1
// reproduces the flat pre-replication list.
func TestGroupReplicasLayout(t *testing.T) {
	addrs := []string{"a0", "a1", "a2", "b0", "b1", "b2"} // 3 shards x 2 replicas
	groups, err := GroupReplicas(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	m := NewShardMap(3)
	seen := make(map[string]bool)
	for s, group := range groups {
		if len(group) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", s, len(group))
		}
		order := m.ReplicaOrder(s, 2)
		for j, addr := range group {
			want := addrs[order[j]*3+s]
			if addr != want {
				t.Fatalf("shard %d rank %d = %q, want %q (order %v)", s, j, addr, want, order)
			}
			if seen[addr] {
				t.Fatalf("address %q grouped twice", addr)
			}
			seen[addr] = true
		}
	}
	if len(seen) != len(addrs) {
		t.Fatalf("groups cover %d of %d addresses", len(seen), len(addrs))
	}

	flat, err := GroupReplicas([]string{"x", "y", "z"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range flat {
		if len(g) != 1 || g[0] != []string{"x", "y", "z"}[i] {
			t.Fatalf("replicas=1 regrouped the list: %v", flat)
		}
	}
}

// TestGroupReplicasRejectsBadShapes covers the error contract: zero
// replicas, an empty list, and a list that does not divide evenly.
func TestGroupReplicasRejectsBadShapes(t *testing.T) {
	if _, err := GroupReplicas([]string{"a", "b"}, 0); err == nil {
		t.Fatal("replicas=0 accepted")
	}
	if _, err := GroupReplicas(nil, 1); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := GroupReplicas([]string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("3 addresses for 2 replicas accepted")
	}
}
