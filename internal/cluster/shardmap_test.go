package cluster

import (
	"reflect"
	"testing"

	"swvec/internal/seqio"
)

// TestShardMapStableAcrossConstructions asserts the restart contract:
// two independently built maps with the same shard count assign every
// ID identically, because the ring is a pure function of (shard count,
// FNV-1a) with no process-local state.
func TestShardMapStableAcrossConstructions(t *testing.T) {
	db := seqio.NewGenerator(11).Database(500)
	for _, n := range []int{1, 2, 3, 5, 16} {
		a, b := NewShardMap(n), NewShardMap(n)
		for _, s := range db {
			if ga, gb := a.Assign(s.ID), b.Assign(s.ID); ga != gb {
				t.Fatalf("n=%d id=%q: assignment differs across constructions: %d vs %d", n, s.ID, ga, gb)
			}
		}
	}
}

// TestShardMapPartitionCoversExactly asserts every sequence lands in
// exactly one shard and each shard slice preserves database order —
// the property the merge's tie-break equivalence proof leans on.
func TestShardMapPartitionCoversExactly(t *testing.T) {
	db := seqio.NewGenerator(7).Database(400)
	for _, n := range []int{1, 2, 3, 7} {
		m := NewShardMap(n)
		parts := m.Partition(db)
		if len(parts) != n {
			t.Fatalf("n=%d: Partition returned %d slices", n, len(parts))
		}
		seen := make(map[string]int)
		total := 0
		for shard, part := range parts {
			if !reflect.DeepEqual(part, m.Slice(db, shard)) {
				t.Fatalf("n=%d shard=%d: Partition and Slice disagree", n, shard)
			}
			lastGlobal := -1
			for _, s := range part {
				if m.Assign(s.ID) != shard {
					t.Fatalf("n=%d: %q sliced into shard %d but assigned to %d", n, s.ID, shard, m.Assign(s.ID))
				}
				if _, dup := seen[s.ID]; dup {
					t.Fatalf("n=%d: %q appears in shards %d and %d", n, s.ID, seen[s.ID], shard)
				}
				seen[s.ID] = shard
				gi := globalIndex(db, s.ID)
				if gi <= lastGlobal {
					t.Fatalf("n=%d shard=%d: slice out of database order at %q", n, shard, s.ID)
				}
				lastGlobal = gi
			}
			total += len(part)
		}
		if total != len(db) {
			t.Fatalf("n=%d: partition holds %d of %d sequences", n, total, len(db))
		}
	}
}

func globalIndex(db []seqio.Sequence, id string) int {
	for i, s := range db {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// TestShardMapBalance asserts the 64-vnode ring spreads a synthetic
// database roughly evenly: no shard of three should hold less than 15%
// or more than 60% of the sequences.
func TestShardMapBalance(t *testing.T) {
	db := seqio.NewGenerator(3).Database(3000)
	parts := NewShardMap(3).Partition(db)
	for shard, part := range parts {
		frac := float64(len(part)) / float64(len(db))
		if frac < 0.15 || frac > 0.60 {
			t.Fatalf("shard %d holds %.1f%% of the database (want 15%%..60%%)", shard, 100*frac)
		}
	}
}

// TestShardMapProfile checks the per-shard length profile the router
// logs and publishes: totals reconcile with the database and the
// min/median/max are ordered.
func TestShardMapProfile(t *testing.T) {
	db := seqio.NewGenerator(5).Database(300)
	m := NewShardMap(4)
	profs := m.Profile(db)
	if len(profs) != 4 {
		t.Fatalf("Profile returned %d entries, want 4", len(profs))
	}
	var seqs int
	var residues int64
	for i, p := range profs {
		if p.Shard != i {
			t.Fatalf("profile %d reports shard %d", i, p.Shard)
		}
		if p.Sequences > 0 && !(p.MinLen <= p.MedianLen && p.MedianLen <= p.MaxLen) {
			t.Fatalf("shard %d: min/median/max out of order: %d/%d/%d", i, p.MinLen, p.MedianLen, p.MaxLen)
		}
		seqs += p.Sequences
		residues += p.Residues
	}
	if seqs != len(db) {
		t.Fatalf("profiles cover %d sequences, database has %d", seqs, len(db))
	}
	if want := seqio.TotalResidues(db); residues != want {
		t.Fatalf("profiles cover %d residues, database has %d", residues, want)
	}
}

func TestNewShardMapRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardMap(0) did not panic")
		}
	}()
	NewShardMap(0)
}
