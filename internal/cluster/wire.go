package cluster

// The swserver wire protocol: newline-delimited JSON requests and
// responses over TCP. The router speaks it downstream to every shard
// and upstream to its own clients (with a superset response type), so
// the existing swserver client mode works unchanged against a router.

// Request is one submitted query.
type Request struct {
	ID       string `json:"id"`
	Residues string `json:"residues"`
	Top      int    `json:"top"`
	// Type selects the request kind; the zero value is a search so
	// every pre-replication client on the wire stays valid.
	Type string `json:"type,omitempty"`
}

// Request types.
const (
	// TypeSearch is the zero value: a normal alignment query.
	TypeSearch = ""
	// TypePing is the health prober's liveness round-trip: the server
	// answers immediately with the echoed ID — admission-exempt (it
	// never touches validation, the breaker, or the batch queue) and
	// deadline-bounded, so a ping measures process liveness rather
	// than compute-queue depth.
	TypePing = "ping"
)

// Hit is one database match.
type Hit struct {
	SeqID string `json:"seq_id"`
	Score int32  `json:"score"`
}

// Response answers one request.
type Response struct {
	ID   string `json:"id"`
	Hits []Hit  `json:"hits"`
	// Error and Code report a per-request failure; Code classifies it
	// so clients can react mechanically (retry with backoff on
	// overloaded/unavailable, fix the request on bad_request/too_large,
	// give up on internal).
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// Machine-readable error codes, in the spirit of the matching HTTP
// statuses (400, 413, 429, 503, 500).
const (
	CodeBadRequest  = "bad_request"
	CodeTooLarge    = "too_large"
	CodeOverloaded  = "overloaded"
	CodeUnavailable = "unavailable"
	CodeShutdown    = "shutting_down"
	CodeInternal    = "internal"
)

// RetryableCode reports whether a response code marks a transient
// condition worth retrying against the same shard: overload shedding,
// an open breaker, and shutdown all clear on their own. Bad requests
// and size violations never do, and internal errors are treated as
// permanent for the request (the shard already retried its own
// transients; see DESIGN.md §12). Every code is classified explicitly
// — swlint's wirecode analyzer rejects a constant missing from this
// switch — so adding a code forces a retryability decision instead of
// inheriting a default.
func RetryableCode(code string) bool {
	switch code {
	case CodeOverloaded, CodeUnavailable, CodeShutdown:
		return true
	case CodeBadRequest, CodeTooLarge, CodeInternal:
		return false
	}
	// Unknown codes (a newer peer) are permanent: retrying what we
	// cannot classify risks hammering a shard that meant "stop".
	return false
}
