package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swvec/internal/failpoint"
)

// Policy bundles the per-shard routing knobs. The vocabulary is PR 5's
// resilience machinery turned into routing policy: the breaker that
// guarded swserver's compute path now quarantines a failing replica,
// the bounded retry-with-backoff that healed transient kernel faults
// now heals transient shard errors, and hedging bounds the tail a
// single slow replica can impose on every merged response.
type Policy struct {
	// Timeout is the per-attempt shard deadline.
	Timeout time.Duration
	// HedgeAfter launches a speculative second request if the first is
	// still unanswered after the delay; the first answer wins. With
	// replicas the hedge goes to the next healthy sibling replica (same
	// slice, different process), falling back to re-asking the same
	// replica when no sibling is healthy. 0 disables hedging.
	HedgeAfter time.Duration
	// Retries is how many times a transient failure is retried against
	// the same replica after the first attempt, before failing over.
	Retries int
	// RetryBase/RetryMax bound the exponential backoff between
	// retries.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerFailures consecutive query failures quarantine a replica;
	// BreakerCooldown is how long it stays quarantined before a probe.
	BreakerFailures int
	BreakerCooldown time.Duration
	// ProbeInterval is the health prober's ping period and ProbeTimeout
	// the per-ping deadline (StartProber). They only matter while a
	// prober runs.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
}

// withDefaults fills zero fields with production defaults.
func (p Policy) withDefaults() Policy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.RetryBase <= 0 {
		p.RetryBase = 20 * time.Millisecond
	}
	if p.RetryMax <= 0 {
		p.RetryMax = 500 * time.Millisecond
	}
	if p.BreakerFailures <= 0 {
		p.BreakerFailures = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = time.Second
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 2 * time.Second
	}
	return p
}

// Replica is one process serving a shard's slice. Every replica of a
// shard loads the identical consistent-hash slice, so their answers
// are interchangeable — which is what makes failover and cross-replica
// hedging sound: the merged result cannot depend on which replica
// answered.
type Replica struct {
	Shard int
	// Rank is the replica's failover priority within its shard; rank 0
	// is the primary. Ranks follow ShardMap.ReplicaOrder, so they are
	// stable across router restarts.
	Rank int
	Addr string
	brk  *Breaker
}

// Shard is one scatter target: the ordered replica set serving one
// slice of the database.
type Shard struct {
	ID       int
	Replicas []*Replica
}

// Pool scatters queries across a fixed set of shard replica groups and
// gathers their top-K answers into one globally ordered result. It is
// safe for concurrent use; every counter it keeps is atomic.
type Pool struct {
	shards []*Shard
	index  *Index
	pol    Policy
	met    *Metrics

	// Prober state (probe.go). proberOn switches query admission from
	// breaker-driven probing (Allow) to prober-driven reintegration
	// (Closed): while a prober runs, only its pings may take a
	// half-open breaker's probe slot, so a flapping replica rejoins the
	// rotation exclusively through health checks. probeMu guards the
	// start/stop lifecycle; proberOn stays atomic for the admission
	// fast path.
	probeMu     sync.Mutex
	proberOn    atomic.Bool
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// NewPool builds a single-replica scatter pool over the shard
// addresses: address i serves shard i, alone. index maps
// shard-reported sequence IDs to global database order for the merge.
func NewPool(addrs []string, index *Index, pol Policy) *Pool {
	groups := make([][]string, len(addrs))
	for i, a := range addrs {
		groups[i] = []string{a}
	}
	return NewReplicatedPool(groups, index, pol)
}

// NewReplicatedPool builds a scatter pool over per-shard replica
// groups, each listed in failover order (GroupReplicas produces this
// layout). All groups must be the same size.
func NewReplicatedPool(groups [][]string, index *Index, pol Policy) *Pool {
	pol = pol.withDefaults()
	if len(groups) == 0 {
		panic("cluster: scatter pool needs at least 1 shard group")
	}
	reps := len(groups[0])
	p := &Pool{index: index, pol: pol, met: NewReplicatedMetrics(len(groups), reps)}
	for i, group := range groups {
		if len(group) != reps {
			panic(fmt.Sprintf("cluster: shard %d has %d replicas, shard 0 has %d", i, len(group), reps))
		}
		sh := &Shard{ID: i}
		for rank, addr := range group {
			sh.Replicas = append(sh.Replicas, &Replica{
				Shard: i,
				Rank:  rank,
				Addr:  addr,
				brk:   NewBreaker(pol.BreakerFailures, pol.BreakerCooldown),
			})
		}
		p.shards = append(p.shards, sh)
	}
	return p
}

// Metrics returns the pool's counter block (live; publish it for
// /debug/vars).
func (p *Pool) Metrics() *Metrics { return p.met }

// Shards returns the scatter targets.
func (p *Pool) Shards() []*Shard { return p.shards }

// ShardReport is the partial-result contract: which shards contributed
// to a merged response and how. It rides on every router response so a
// client always knows whether it saw the whole database.
type ShardReport struct {
	// Total is the cluster's shard count.
	Total int `json:"total"`
	// OK lists shards whose primary answered cleanly on the first
	// attempt.
	OK []int `json:"ok"`
	// Degraded lists shards that answered, but only after a retry,
	// through a hedged request, or from a non-primary replica — their
	// hits are merged, the latency or reliability budget was not.
	Degraded []int `json:"degraded"`
	// Skipped lists shards that contributed nothing: every replica was
	// quarantined or failed. Their slice of the database is missing
	// from the merged hits.
	Skipped []int `json:"skipped"`
	// Causes explains each skipped shard, keyed by shard ID.
	Causes map[string]string `json:"causes,omitempty"`
	// Attempts details every replica that failed or was passed over
	// before the shard's verdict, keyed by shard ID. A shard that
	// answered from its primary on the first try has no entry.
	Attempts map[string][]ReplicaAttempt `json:"attempts,omitempty"`
}

// ReplicaAttempt records one replica's failure (or quarantine skip)
// during a shard's failover walk.
type ReplicaAttempt struct {
	// Replica is the failover rank that was tried.
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	Cause   string `json:"cause"`
}

// Partial reports whether any shard's slice is missing from the
// merged result.
func (r *ShardReport) Partial() bool { return len(r.Skipped) > 0 }

// shardOutcome is one shard's gathered verdict.
type shardOutcome struct {
	shard    int
	hits     []Hit
	degraded bool
	attempts []ReplicaAttempt
	err      error // nil when some replica answered
}

// Scatter fans req out to every shard, gathers under the routing
// policy, and merges the answers into the global top-K. The returned
// report says which shards contributed; err is only non-nil for
// protocol violations (a shard answering with sequences the index has
// never seen), never for shard unavailability — that is what the
// report's Skipped list is for. A shard is skipped only when every one
// of its replicas is quarantined or failed the query.
func (p *Pool) Scatter(ctx context.Context, req Request) ([]Hit, ShardReport, error) {
	p.met.Scatters.Add(1)
	rep := ShardReport{Total: len(p.shards)}
	results := make(chan shardOutcome, len(p.shards))
	for _, sh := range p.shards {
		go func(sh *Shard) {
			hits, degraded, attempts, err := p.queryShard(ctx, sh, req)
			results <- shardOutcome{shard: sh.ID, hits: hits, degraded: degraded, attempts: attempts, err: err}
		}(sh)
	}

	perShard := make([][]Hit, 0, len(p.shards))
	for i := 0; i < len(p.shards); i++ {
		out := <-results
		met := p.met.Shard(out.shard)
		if len(out.attempts) > 0 {
			if rep.Attempts == nil {
				rep.Attempts = make(map[string][]ReplicaAttempt)
			}
			rep.Attempts[fmt.Sprint(out.shard)] = out.attempts
		}
		if out.err != nil {
			met.Skipped.Add(1)
			rep.Skipped = append(rep.Skipped, out.shard)
			p.cause(&rep, out.shard, skipCause(out.attempts, out.err))
			continue
		}
		perShard = append(perShard, out.hits)
		if out.degraded {
			met.Degraded.Add(1)
			rep.Degraded = append(rep.Degraded, out.shard)
		} else {
			rep.OK = append(rep.OK, out.shard)
		}
	}
	sort.Ints(rep.OK)
	sort.Ints(rep.Degraded)
	sort.Ints(rep.Skipped)
	if rep.Partial() {
		p.met.Partial.Add(1)
	}

	k := req.Top
	if k <= 0 {
		k = 5
	}
	hits, err := p.index.Merge(perShard, k)
	if err != nil {
		return nil, rep, err
	}
	return hits, rep, nil
}

// skipCause summarizes a skipped shard for the report. With a single
// attempt the cause is that attempt's, verbatim — single-replica pools
// keep the exact pre-replication vocabulary ("quarantined: circuit
// breaker open", shard error strings). With several, the summary names
// the count and quotes the last failure, and the per-replica detail
// lives in the report's Attempts.
func skipCause(attempts []ReplicaAttempt, err error) string {
	if len(attempts) == 1 {
		return attempts[0].Cause
	}
	if len(attempts) > 1 {
		return fmt.Sprintf("all %d replicas failed; last: %s",
			len(attempts), attempts[len(attempts)-1].Cause)
	}
	return err.Error()
}

func (p *Pool) cause(rep *ShardReport, shard int, msg string) {
	if rep.Causes == nil {
		rep.Causes = make(map[string]string)
	}
	rep.Causes[fmt.Sprint(shard)] = msg
}

// queryShard walks the shard's replicas in failover order until one
// answers: for each admitted replica it runs the full per-replica
// policy (hedged attempt, then bounded backoff retries while the
// failure stays transient), failing over to the next replica on
// quarantine, permanent error, or retry-budget exhaustion. degraded
// reports whether the answer needed a retry, a hedge, or a failover.
// attempts lists every replica that was passed over or failed.
func (p *Pool) queryShard(ctx context.Context, sh *Shard, req Request) (hits []Hit, degraded bool, attempts []ReplicaAttempt, err error) {
	met := p.met.Shard(sh.ID)
	for _, r := range sh.Replicas {
		cause := p.admitCause(r)
		if cause == "" {
			hits, deg, qerr := p.queryReplica(ctx, sh, r, req)
			if qerr == nil {
				if len(attempts) > 0 {
					met.Failovers.Add(1)
					for _, a := range attempts {
						p.met.Replica(sh.ID, a.Replica).Failovers.Add(1)
					}
				}
				return hits, deg || len(attempts) > 0, attempts, nil
			}
			cause = qerr.Error()
			if r.brk.OnFailure() {
				met.BreakerTrips.Add(1)
				p.met.Replica(sh.ID, r.Rank).SetState(ReplicaDown)
			}
		} else {
			met.BreakerSkipped.Add(1)
		}
		attempts = append(attempts, ReplicaAttempt{Replica: r.Rank, Addr: r.Addr, Cause: cause})
		if ctx.Err() != nil {
			// The scatter itself is done; walking further replicas
			// would only burn dials against a dead deadline.
			break
		}
	}
	return nil, false, attempts, fmt.Errorf("shard %d: no replica answered", sh.ID)
}

// admitCause decides whether a replica may be queried; a non-empty
// return is the quarantine cause. With a prober running, admission is
// a pure read (Closed) — reintegration of a tripped replica belongs to
// the prober's half-open pings alone, so queries never race it for the
// probe slot. Without one (single-replica pools by default), queries
// themselves probe: a breaker past its cooldown admits exactly one
// query via Allow, preserving the pre-replication behavior.
func (p *Pool) admitCause(r *Replica) string {
	if p.proberOn.Load() {
		if r.brk.Closed() {
			return ""
		}
		if r.brk.Rejecting() {
			return "quarantined: circuit breaker open"
		}
		return "quarantined: awaiting reintegration probe"
	}
	if r.brk.Rejecting() {
		return "quarantined: circuit breaker open"
	}
	if !r.brk.Allow() {
		return "quarantined: breaker probe in flight"
	}
	return ""
}

// queryReplica runs the per-replica policy for one query: a hedged
// attempt, then bounded exponential-backoff retries while the failure
// stays transient. degraded reports whether the answer needed a retry
// or came from a hedge. The replica's breaker is fed on the caller's
// side for failures; a success feeds the breaker of whichever replica
// actually answered (the hedge may have won on a sibling).
func (p *Pool) queryReplica(ctx context.Context, sh *Shard, r *Replica, req Request) (hits []Hit, degraded bool, err error) {
	if err := failpoint.Inject("cluster/replica"); err != nil {
		return nil, false, err
	}
	met := p.met.Shard(sh.ID)
	var lastErr error
	for attempt := 0; attempt <= p.pol.Retries; attempt++ {
		if attempt > 0 {
			met.Retries.Add(1)
			if !backoff(ctx, p.pol, attempt-1) {
				break
			}
		}
		hits, winner, hedged, err := p.attemptHedged(ctx, sh, r, req)
		if err == nil {
			winner.brk.OnSuccess()
			p.met.Replica(sh.ID, winner.Rank).SetState(ReplicaHealthy)
			return hits, attempt > 0 || hedged, nil
		}
		lastErr = err
		if !transientShardErr(err) {
			break
		}
	}
	return nil, false, lastErr
}

// attemptHedged runs one policy attempt: the request against r, plus a
// speculative hedge if r is still unanswered after HedgeAfter. The
// hedge goes to the next healthy sibling replica (hedgeTarget), racing
// two processes that hold the same slice; first success wins and the
// loser's goroutine unwinds on the shared per-attempt context. winner
// is the replica whose answer was used.
func (p *Pool) attemptHedged(ctx context.Context, sh *Shard, r *Replica, req Request) (hits []Hit, winner *Replica, hedged bool, err error) {
	met := p.met.Shard(sh.ID)
	actx, cancel := context.WithTimeout(ctx, p.pol.Timeout)
	defer cancel()

	type reply struct {
		hits  []Hit
		err   error
		hedge bool
		from  *Replica
	}
	ch := make(chan reply, 2)
	launch := func(target *Replica, hedge bool) {
		met.Requests.Add(1)
		p.met.Replica(sh.ID, target.Rank).Requests.Add(1)
		go func() {
			h, e := p.query(actx, target, req)
			ch <- reply{hits: h, err: e, hedge: hedge, from: target}
		}()
	}
	launch(r, false)
	inflight := 1

	var hedgeC <-chan time.Time
	if p.pol.HedgeAfter > 0 {
		t := time.NewTimer(p.pol.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case <-actx.Done():
			// Attempt timeout or scatter cancellation: the in-flight
			// queries unwind on actx themselves (cancellation closes
			// their connections), and ch is buffered to hold both
			// replies, so abandoning it leaks nothing.
			if firstErr == nil {
				firstErr = actx.Err()
			}
			return nil, nil, false, firstErr
		case rp := <-ch:
			inflight--
			if rp.err == nil {
				if rp.hedge {
					met.HedgeWins.Add(1)
				}
				return rp.hits, rp.from, rp.hedge, nil
			}
			met.Errors.Add(1)
			p.met.Replica(sh.ID, rp.from.Rank).Errors.Add(1)
			if firstErr == nil {
				firstErr = rp.err
			}
			if inflight == 0 {
				return nil, nil, false, firstErr
			}
			// One request is still in flight; stop arming new hedges
			// and wait for it.
			hedgeC = nil
		case <-hedgeC:
			hedgeC = nil
			met.Hedges.Add(1)
			launch(p.hedgeTarget(sh, r), true)
			inflight++
		}
	}
}

// hedgeTarget picks where a hedge goes: the next replica after cur in
// failover order (wrapping) whose breaker is closed, or cur itself
// when no sibling is healthy — a single-replica shard therefore hedges
// by re-asking the same process, exactly the pre-replication behavior.
// The health check is the non-mutating Closed so picking a target
// never consumes a half-open breaker's probe slot.
func (p *Pool) hedgeTarget(sh *Shard, cur *Replica) *Replica {
	n := len(sh.Replicas)
	for off := 1; off < n; off++ {
		cand := sh.Replicas[(cur.Rank+off)%n]
		if cand.brk.Closed() {
			return cand
		}
	}
	return cur
}

// query performs one wire request against a replica: dial, send the
// JSON line, read the JSON answer. The context bounds everything —
// cancellation closes the connection so a blocked read returns
// immediately and no goroutine outlives the scatter by more than a
// connection teardown.
func (p *Pool) query(ctx context.Context, r *Replica, req Request) ([]Hit, error) {
	if err := failpoint.Inject("cluster/shard"); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", r.Addr)
	if err != nil {
		return nil, fmt.Errorf("shard %d: dial: %w", r.Shard, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("shard %d: send: %w", r.Shard, err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("shard %d: recv: %w", r.Shard, err)
	}
	if resp.Error != "" {
		return nil, &ShardError{Shard: r.Shard, Code: resp.Code, Msg: resp.Error}
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("shard %d: response for %q, want %q", r.Shard, resp.ID, req.ID)
	}
	return resp.Hits, nil
}

// ShardError is a structured per-request error a shard answered with.
type ShardError struct {
	Shard int
	Code  string
	Msg   string
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %s (%s)", e.Shard, e.Msg, e.Code)
}

// Transient reports whether the shard's error code clears on its own
// (overload shedding, open breaker, shutdown), making a retry against
// the same shard worthwhile. It satisfies the same Transient() bool
// convention the scheduler's retry policy uses (DESIGN.md §12).
func (e *ShardError) Transient() bool { return RetryableCode(e.Code) }

// transientShardErr classifies a failed attempt: network-level
// failures (dial refused, reset, timeout, a connection dropped
// mid-exchange — the shard may be restarting) and shard responses
// whose code marks a transient condition are retryable; everything
// else is permanent for this query.
func transientShardErr(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		// The shard closed the connection without answering; a process
		// death surfaces as exactly this.
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// backoff sleeps the bounded exponential delay for the given retry
// index; false means ctx was canceled first.
func backoff(ctx context.Context, pol Policy, attempt int) bool {
	d := pol.RetryBase << attempt
	if d > pol.RetryMax {
		d = pol.RetryMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
