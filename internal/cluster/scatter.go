package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"swvec/internal/failpoint"
)

// Policy bundles the per-shard routing knobs. The vocabulary is PR 5's
// resilience machinery turned into routing policy: the breaker that
// guarded swserver's compute path now quarantines a failing shard, the
// bounded retry-with-backoff that healed transient kernel faults now
// heals transient shard errors, and hedging bounds the tail a single
// slow shard can impose on every merged response.
type Policy struct {
	// Timeout is the per-attempt shard deadline.
	Timeout time.Duration
	// HedgeAfter launches a speculative second request against a shard
	// that has not answered within the delay; the first answer wins.
	// 0 disables hedging.
	HedgeAfter time.Duration
	// Retries is how many times a transient shard failure is retried
	// after the first attempt.
	Retries int
	// RetryBase/RetryMax bound the exponential backoff between
	// retries.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerFailures consecutive query failures quarantine the shard;
	// BreakerCooldown is how long it stays quarantined before a probe.
	BreakerFailures int
	BreakerCooldown time.Duration
}

// withDefaults fills zero fields with production defaults.
func (p Policy) withDefaults() Policy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.RetryBase <= 0 {
		p.RetryBase = 20 * time.Millisecond
	}
	if p.RetryMax <= 0 {
		p.RetryMax = 500 * time.Millisecond
	}
	if p.BreakerFailures <= 0 {
		p.BreakerFailures = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	return p
}

// Shard is one scatter target.
type Shard struct {
	ID   int
	Addr string
	brk  *Breaker
}

// Pool scatters queries across a fixed set of shard servers and
// gathers their top-K answers into one globally ordered result. It is
// safe for concurrent use; every counter it keeps is atomic.
type Pool struct {
	shards []*Shard
	index  *Index
	pol    Policy
	met    *Metrics
}

// NewPool builds a scatter pool over the shard addresses. index maps
// shard-reported sequence IDs to global database order for the merge.
func NewPool(addrs []string, index *Index, pol Policy) *Pool {
	pol = pol.withDefaults()
	p := &Pool{index: index, pol: pol, met: NewMetrics(len(addrs))}
	for i, a := range addrs {
		p.shards = append(p.shards, &Shard{
			ID:   i,
			Addr: a,
			brk:  NewBreaker(pol.BreakerFailures, pol.BreakerCooldown),
		})
	}
	return p
}

// Metrics returns the pool's counter block (live; publish it for
// /debug/vars).
func (p *Pool) Metrics() *Metrics { return p.met }

// Shards returns the scatter targets.
func (p *Pool) Shards() []*Shard { return p.shards }

// ShardReport is the partial-result contract: which shards contributed
// to a merged response and how. It rides on every router response so a
// client always knows whether it saw the whole database.
type ShardReport struct {
	// Total is the cluster's shard count.
	Total int `json:"total"`
	// OK lists shards that answered cleanly on the first attempt.
	OK []int `json:"ok"`
	// Degraded lists shards that answered, but only after a retry or
	// through a hedged request — their hits are merged, the latency
	// or reliability budget was not.
	Degraded []int `json:"degraded"`
	// Skipped lists shards that contributed nothing: quarantined by
	// their breaker, or every attempt failed. Their slice of the
	// database is missing from the merged hits.
	Skipped []int `json:"skipped"`
	// Causes explains each skipped shard, keyed by shard ID.
	Causes map[string]string `json:"causes,omitempty"`
}

// Partial reports whether any shard's slice is missing from the
// merged result.
func (r *ShardReport) Partial() bool { return len(r.Skipped) > 0 }

// shardOutcome is one shard's gathered verdict.
type shardOutcome struct {
	shard    int
	hits     []Hit
	degraded bool
	err      error // nil when the shard answered
}

// Scatter fans req out to every shard, gathers under the routing
// policy, and merges the answers into the global top-K. The returned
// report says which shards contributed; err is only non-nil for
// protocol violations (a shard answering with sequences the index has
// never seen), never for shard unavailability — that is what the
// report's Skipped list is for.
func (p *Pool) Scatter(ctx context.Context, req Request) ([]Hit, ShardReport, error) {
	p.met.Scatters.Add(1)
	rep := ShardReport{Total: len(p.shards)}
	results := make(chan shardOutcome, len(p.shards))
	inflight := 0
	for _, sh := range p.shards {
		if sh.brk.Rejecting() {
			// Quarantined: don't spend an attempt, don't feed the
			// breaker — only probes (admitted by Allow below) decide
			// recovery.
			p.met.Shard(sh.ID).BreakerSkipped.Add(1)
			p.met.Shard(sh.ID).Skipped.Add(1)
			rep.Skipped = append(rep.Skipped, sh.ID)
			p.cause(&rep, sh.ID, "quarantined: circuit breaker open")
			continue
		}
		if !sh.brk.Allow() {
			// Half-open with the probe already taken by a concurrent
			// query: same as quarantined for this scatter.
			p.met.Shard(sh.ID).BreakerSkipped.Add(1)
			p.met.Shard(sh.ID).Skipped.Add(1)
			rep.Skipped = append(rep.Skipped, sh.ID)
			p.cause(&rep, sh.ID, "quarantined: breaker probe in flight")
			continue
		}
		inflight++
		go func(sh *Shard) {
			hits, degraded, err := p.queryShard(ctx, sh, req)
			results <- shardOutcome{shard: sh.ID, hits: hits, degraded: degraded, err: err}
		}(sh)
	}

	perShard := make([][]Hit, 0, inflight)
	for i := 0; i < inflight; i++ {
		out := <-results
		sh := p.shards[out.shard]
		met := p.met.Shard(out.shard)
		if out.err != nil {
			if sh.brk.OnFailure() {
				met.BreakerTrips.Add(1)
			}
			met.Skipped.Add(1)
			rep.Skipped = append(rep.Skipped, out.shard)
			p.cause(&rep, out.shard, out.err.Error())
			continue
		}
		sh.brk.OnSuccess()
		perShard = append(perShard, out.hits)
		if out.degraded {
			met.Degraded.Add(1)
			rep.Degraded = append(rep.Degraded, out.shard)
		} else {
			rep.OK = append(rep.OK, out.shard)
		}
	}
	sort.Ints(rep.OK)
	sort.Ints(rep.Degraded)
	sort.Ints(rep.Skipped)
	if rep.Partial() {
		p.met.Partial.Add(1)
	}

	k := req.Top
	if k <= 0 {
		k = 5
	}
	hits, err := p.index.Merge(perShard, k)
	if err != nil {
		return nil, rep, err
	}
	return hits, rep, nil
}

func (p *Pool) cause(rep *ShardReport, shard int, msg string) {
	if rep.Causes == nil {
		rep.Causes = make(map[string]string)
	}
	rep.Causes[fmt.Sprint(shard)] = msg
}

// queryShard runs the full per-shard policy for one query: a hedged
// attempt, then bounded exponential-backoff retries while the failure
// stays transient. degraded reports whether the answer needed a retry
// or came from a hedge.
func (p *Pool) queryShard(ctx context.Context, sh *Shard, req Request) (hits []Hit, degraded bool, err error) {
	met := p.met.Shard(sh.ID)
	var lastErr error
	for attempt := 0; attempt <= p.pol.Retries; attempt++ {
		if attempt > 0 {
			met.Retries.Add(1)
			if !backoff(ctx, p.pol, attempt-1) {
				break
			}
		}
		hits, hedged, err := p.attemptHedged(ctx, sh, req)
		if err == nil {
			return hits, attempt > 0 || hedged, nil
		}
		lastErr = err
		if !transientShardErr(err) {
			break
		}
	}
	return nil, false, lastErr
}

// attemptHedged runs one policy attempt: the primary request, plus a
// speculative hedge against the same shard if the primary is still
// unanswered after HedgeAfter. First success wins; the loser's
// goroutine unwinds on the shared per-attempt context.
func (p *Pool) attemptHedged(ctx context.Context, sh *Shard, req Request) (hits []Hit, hedged bool, err error) {
	met := p.met.Shard(sh.ID)
	actx, cancel := context.WithTimeout(ctx, p.pol.Timeout)
	defer cancel()

	type reply struct {
		hits  []Hit
		err   error
		hedge bool
	}
	ch := make(chan reply, 2)
	launch := func(hedge bool) {
		met.Requests.Add(1)
		go func() {
			h, e := p.query(actx, sh, req)
			ch <- reply{hits: h, err: e, hedge: hedge}
		}()
	}
	launch(false)
	inflight := 1

	var hedgeC <-chan time.Time
	if p.pol.HedgeAfter > 0 {
		t := time.NewTimer(p.pol.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case <-actx.Done():
			// Attempt timeout or scatter cancellation: the in-flight
			// queries unwind on actx themselves (cancellation closes
			// their connections), and ch is buffered to hold both
			// replies, so abandoning it leaks nothing.
			if firstErr == nil {
				firstErr = actx.Err()
			}
			return nil, false, firstErr
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					met.HedgeWins.Add(1)
				}
				return r.hits, r.hedge, nil
			}
			met.Errors.Add(1)
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return nil, false, firstErr
			}
			// One request is still in flight; stop arming new hedges
			// and wait for it.
			hedgeC = nil
		case <-hedgeC:
			hedgeC = nil
			met.Hedges.Add(1)
			launch(true)
			inflight++
		}
	}
}

// query performs one wire request against a shard: dial, send the
// JSON line, read the JSON answer. The context bounds everything —
// cancellation closes the connection so a blocked read returns
// immediately and no goroutine outlives the scatter by more than a
// connection teardown.
func (p *Pool) query(ctx context.Context, sh *Shard, req Request) ([]Hit, error) {
	if err := failpoint.Inject("cluster/shard"); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", sh.Addr)
	if err != nil {
		return nil, fmt.Errorf("shard %d: dial: %w", sh.ID, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("shard %d: send: %w", sh.ID, err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("shard %d: recv: %w", sh.ID, err)
	}
	if resp.Error != "" {
		return nil, &ShardError{Shard: sh.ID, Code: resp.Code, Msg: resp.Error}
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("shard %d: response for %q, want %q", sh.ID, resp.ID, req.ID)
	}
	return resp.Hits, nil
}

// ShardError is a structured per-request error a shard answered with.
type ShardError struct {
	Shard int
	Code  string
	Msg   string
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %s (%s)", e.Shard, e.Msg, e.Code)
}

// Transient reports whether the shard's error code clears on its own
// (overload shedding, open breaker, shutdown), making a retry against
// the same shard worthwhile. It satisfies the same Transient() bool
// convention the scheduler's retry policy uses (DESIGN.md §12).
func (e *ShardError) Transient() bool { return RetryableCode(e.Code) }

// transientShardErr classifies a failed attempt: network-level
// failures (dial refused, reset, timeout, a connection dropped
// mid-exchange — the shard may be restarting) and shard responses
// whose code marks a transient condition are retryable; everything
// else is permanent for this query.
func transientShardErr(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		// The shard closed the connection without answering; a process
		// death surfaces as exactly this.
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// backoff sleeps the bounded exponential delay for the given retry
// index; false means ctx was canceled first.
func backoff(ctx context.Context, pol Policy, attempt int) bool {
	d := pol.RetryBase << attempt
	if d > pol.RetryMax {
		d = pol.RetryMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
