package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swvec/internal/leakcheck"
	"swvec/internal/seqio"
)

// testSequences is the tiny database the probe tests merge against.
func testSequences() []seqio.Sequence {
	return []seqio.Sequence{
		{ID: "A", Residues: []byte("ACDE")},
		{ID: "B", Residues: []byte("FGHI")},
	}
}

// flappyServer is a wire-protocol stub whose health is a switch: while
// down it slams every accepted connection, while up it echoes pings
// and answers searches with canned hits. The address never changes
// across flaps, which is exactly what a crashing-and-restarting shard
// process behind a stable endpoint looks like.
type flappyServer struct {
	ln   net.Listener
	down atomic.Bool
	hits []Hit

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func startFlappyServer(t *testing.T, hits []Hit) *flappyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &flappyServer{ln: ln, hits: hits, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.serve()
	t.Cleanup(s.Close)
	return s
}

func (s *flappyServer) Addr() string { return s.ln.Addr().String() }

func (s *flappyServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.down.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				var req Request
				if json.Unmarshal(sc.Bytes(), &req) != nil {
					return
				}
				if s.down.Load() {
					return
				}
				resp := Response{ID: req.ID}
				if req.Type != TypePing {
					resp.Hits = s.hits
				}
				if json.NewEncoder(conn).Encode(resp) != nil {
					return
				}
			}
		}()
	}
}

func (s *flappyServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// TestProberReintegratesFlappingReplica drives the full health cycle
// without failpoints: a primary goes down, queries fail over to the
// sibling and the tripped breaker quarantines the primary; while the
// prober's pings keep failing the primary stays quarantined (queries
// never probe it — admission under a prober is a pure read); once the
// process is healthy again the prober's half-open ping reintegrates
// it, and queries return to the primary with no failover.
func TestProberReintegratesFlappingReplica(t *testing.T) {
	leakcheck.Check(t)
	db := testSequences()
	primary := startFlappyServer(t, []Hit{{SeqID: "A", Score: 10}})
	sibling := startFlappyServer(t, []Hit{{SeqID: "A", Score: 10}})

	pol := Policy{
		Timeout:         time.Second,
		Retries:         0,
		RetryBase:       time.Millisecond,
		RetryMax:        2 * time.Millisecond,
		BreakerFailures: 1,
		BreakerCooldown: 30 * time.Millisecond,
		ProbeInterval:   15 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
	}
	pool := NewReplicatedPool([][]string{{primary.Addr(), sibling.Addr()}}, NewIndex(db), pol)
	pool.StartProber()
	defer pool.StopProber()

	req := Request{ID: "q", Residues: "ACDEFGHIKL", Top: 1}
	scatter := func() ShardReport {
		t.Helper()
		_, rep, err := pool.Scatter(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Healthy primary: eventually a clean first-attempt answer (the
	// first scatter may race the initial probe round).
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := scatter()
		if len(rep.OK) == 1 && len(rep.Attempts) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no clean primary answer before going down: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary: the next scatters must stay complete via
	// failover, and the breaker must trip into quarantine.
	primary.down.Store(true)
	for {
		rep := scatter()
		if rep.Partial() {
			t.Fatalf("failover lost completeness: %+v", rep)
		}
		if len(rep.Attempts["0"]) == 1 && rep.Attempts["0"][0].Replica == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never recorded a failed/quarantined attempt: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// While down past the cooldown, reintegration attempts belong to
	// the prober alone: probes fail, the replica stays down, and
	// queries keep being served by the sibling without partials.
	time.Sleep(2 * pol.BreakerCooldown)
	met := pool.Metrics().Replica(0, 0)
	if met.Probes.Load() == 0 || met.ProbeFailures.Load() == 0 {
		t.Fatalf("prober idle while replica down: probes=%d failures=%d",
			met.Probes.Load(), met.ProbeFailures.Load())
	}
	if rep := scatter(); rep.Partial() {
		t.Fatalf("quarantined primary made the response partial: %+v", rep)
	}

	// Revive the process: only a successful half-open probe may close
	// the breaker, after which queries flow to the primary again.
	primary.down.Store(false)
	for {
		rep := scatter()
		if len(rep.OK) == 1 && len(rep.Attempts) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never reintegrated the revived primary: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if met.StateChanges.Load() < 2 {
		t.Fatalf("state transitions = %d, want >= 2 (down then healthy)", met.StateChanges.Load())
	}
}

// TestProberStopJoins: StopProber returns only after the loop and its
// pings are gone (the leakcheck above would catch a stray goroutine,
// this asserts the lifecycle is idempotent too).
func TestProberStopJoins(t *testing.T) {
	leakcheck.Check(t)
	srv := startFlappyServer(t, nil)
	pool := NewReplicatedPool([][]string{{srv.Addr(), srv.Addr()}}, NewIndex(testSequences()), Policy{
		ProbeInterval: 5 * time.Millisecond,
	})
	pool.StartProber()
	pool.StartProber() // second start is a no-op
	time.Sleep(20 * time.Millisecond)
	pool.StopProber()
	pool.StopProber() // second stop is a no-op
	if pool.Metrics().Replica(0, 0).Probes.Load() == 0 {
		t.Fatal("prober never pinged")
	}
}
