package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"swvec/internal/failpoint"
)

// The health prober: a background loop that pings every replica each
// ProbeInterval and feeds the verdicts to the replica breakers. While
// it runs, query admission (admitCause) becomes a pure read of breaker
// state — a replica that tripped its breaker is reintegrated only when
// a probe takes the half-open slot and succeeds, never by risking a
// live query against a process that just failed. Pings use the
// admission-exempt TypePing request, so they measure liveness (is the
// process up and answering its accept loop), not compute-queue depth.

// StartProber launches the background health loop. Idempotent: a
// second start while running is a no-op. Callers that start a prober
// own stopping it (StopProber) before discarding the pool, or the
// loop's goroutine leaks.
func (p *Pool) StartProber() {
	p.probeMu.Lock()
	defer p.probeMu.Unlock()
	if p.proberOn.Load() {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.probeCancel = cancel
	p.probeDone = make(chan struct{})
	done := p.probeDone
	p.proberOn.Store(true)
	go func() {
		defer close(done)
		p.probeLoop(ctx)
	}()
}

// StopProber cancels the health loop and waits for it — and every
// in-flight ping — to finish, then returns admission to breaker-driven
// probing. Safe to call when no prober runs.
func (p *Pool) StopProber() {
	p.probeMu.Lock()
	defer p.probeMu.Unlock()
	if !p.proberOn.Load() {
		return
	}
	p.probeCancel()
	<-p.probeDone
	p.proberOn.Store(false)
}

// probeLoop pings the whole cluster once immediately (so a router that
// starts against a dead replica learns it within one ProbeTimeout, not
// one ProbeInterval), then on every tick until canceled.
func (p *Pool) probeLoop(ctx context.Context) {
	p.probeTick(ctx)
	t := time.NewTicker(p.pol.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.probeTick(ctx)
		}
	}
}

// probeTick pings every replica concurrently and waits for the round
// to finish — rounds never overlap, so a hung replica costs one
// ProbeTimeout per round, not an unbounded pile of pending pings.
func (p *Pool) probeTick(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range p.shards {
		for _, r := range sh.Replicas {
			wg.Add(1)
			go func(r *Replica) {
				defer wg.Done()
				p.probeReplica(ctx, r)
			}(r)
		}
	}
	wg.Wait()
}

// probeReplica runs one health check: if the replica's breaker admits
// it (closed, or half-open granting this probe the slot), ping and
// feed the verdict back. A breaker still cooling down is left alone —
// its quarantine clock, not the prober, decides when reintegration may
// be attempted.
func (p *Pool) probeReplica(ctx context.Context, r *Replica) {
	if !r.brk.Allow() {
		return
	}
	met := p.met.Replica(r.Shard, r.Rank)
	met.Probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, p.pol.ProbeTimeout)
	err := p.ping(pctx, r)
	cancel()
	if err != nil {
		met.ProbeFailures.Add(1)
		if r.brk.OnFailure() {
			p.met.Shard(r.Shard).BreakerTrips.Add(1)
		}
		met.SetState(ReplicaDown)
		return
	}
	r.brk.OnSuccess()
	met.SetState(ReplicaHealthy)
}

// ping performs one TypePing round-trip against a replica: dial, send,
// check the echoed ID. Any error — dial refused, deadline, a response
// carrying an error — counts as a failed probe.
func (p *Pool) ping(ctx context.Context, r *Replica) error {
	if err := failpoint.Inject("cluster/probe"); err != nil {
		return err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", r.Addr)
	if err != nil {
		return fmt.Errorf("replica %d/%d: dial: %w", r.Shard, r.Rank, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	req := Request{ID: fmt.Sprintf("ping-%d-%d", r.Shard, r.Rank), Type: TypePing}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return fmt.Errorf("replica %d/%d: send: %w", r.Shard, r.Rank, err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return fmt.Errorf("replica %d/%d: recv: %w", r.Shard, r.Rank, err)
	}
	if resp.Error != "" {
		return fmt.Errorf("replica %d/%d: %s (%s)", r.Shard, r.Rank, resp.Error, resp.Code)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("replica %d/%d: ping echoed %q, want %q", r.Shard, r.Rank, resp.ID, req.ID)
	}
	return nil
}
