package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the circuit breaker through every
// transition with a fake clock. (The suite moved here with the breaker
// itself when it became shared routing policy; swserver's chaos suite
// still drives the same state machine over the wire.)
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(2, time.Second)
	b.now = func() time.Time { return now }

	if !b.Allow() || b.Rejecting() {
		t.Fatal("new breaker must be closed")
	}
	if b.OnFailure() {
		t.Fatal("first failure must not trip a threshold-2 breaker")
	}
	if !b.OnFailure() {
		t.Fatal("second consecutive failure must trip")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	if !b.Rejecting() {
		t.Fatal("open breaker not fast-rejecting at admission")
	}

	now = now.Add(2 * time.Second)
	if b.Rejecting() {
		t.Fatal("cooled-down breaker still fast-rejecting")
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second call admitted while the probe is in flight")
	}
	if !b.Rejecting() {
		t.Fatal("half-open breaker with probe in flight must fast-reject")
	}
	if !b.OnFailure() {
		t.Fatal("failed probe must re-trip")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call")
	}

	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after cooldown")
	}
	b.OnSuccess()
	if !b.Allow() || b.Rejecting() {
		t.Fatal("probe success must close the breaker")
	}
	if b.OnFailure() {
		t.Fatal("failure streak must have been reset by the success")
	}
}
