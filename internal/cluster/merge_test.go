package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"swvec"
	"swvec/internal/seqio"
)

// toWire converts a slice-local top-K (sched hits indexed into slice)
// to the wire form a shard answers with.
func toWire(hits []swvec.Hit, slice []seqio.Sequence) []Hit {
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{SeqID: slice[h.SeqIndex].ID, Score: h.Score}
	}
	return out
}

// partitioners enumerates ways of splitting a database across shards:
// the production consistent-hash map plus adversarial layouts (round
// robin, heavy skew, seeded random) that the merge must be indifferent
// to. Every partition preserves global database order within a shard,
// which is the one property the cluster guarantees by construction.
func partitioners(db []seqio.Sequence) map[string][][]seqio.Sequence {
	parts := map[string][][]seqio.Sequence{
		"hash-1": NewShardMap(1).Partition(db),
		"hash-3": NewShardMap(3).Partition(db),
		"hash-5": NewShardMap(5).Partition(db),
	}
	rr := make([][]seqio.Sequence, 3)
	for i, s := range db {
		rr[i%3] = append(rr[i%3], s)
	}
	parts["round-robin-3"] = rr

	skew := make([][]seqio.Sequence, 2)
	cut := len(db) * 9 / 10
	skew[0] = append(skew[0], db[:cut]...)
	skew[1] = append(skew[1], db[cut:]...)
	parts["skew-90/10"] = skew

	rng := rand.New(rand.NewSource(99))
	random := make([][]seqio.Sequence, 4)
	for _, s := range db {
		i := rng.Intn(4)
		random[i] = append(random[i], s)
	}
	parts["random-4"] = random
	return parts
}

// TestMergeMatchesSingleNode is the cluster's core correctness claim:
// scatter-gather over ANY order-preserving partition of the database
// returns bit-identical hits and ordering — tie-breaks included — to a
// single-node search of the whole database. It runs the real pipeline
// per shard slice and compares against the real pipeline on the full
// database, under both Blosum62 (diverse scores) and a match/mismatch
// matrix chosen to produce heavy score ties.
func TestMergeMatchesSingleNode(t *testing.T) {
	db := swvec.GenerateDatabase(7, 240)
	queries := swvec.GenerateQueries(7)

	aligners := map[string]*swvec.Aligner{}
	blosum, err := swvec.New()
	if err != nil {
		t.Fatal(err)
	}
	aligners["blosum62"] = blosum
	// match=1/mismatch=0 collapses most scores onto a few values, so
	// nearly every rank boundary is decided by the database-order
	// tie-break — exactly what the merge must reproduce.
	ties, err := swvec.New(swvec.WithMatrix(swvec.MatchMismatch(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	aligners["tie-heavy"] = ties

	index := NewIndex(db)
	for alName, al := range aligners {
		for partName, parts := range partitioners(db) {
			for _, k := range []int{1, 3, 10, len(db) + 5} {
				name := fmt.Sprintf("%s/%s/k=%d", alName, partName, k)
				t.Run(name, func(t *testing.T) {
					if testing.Short() && !(partName == "hash-3" && (k == 3 || k == 10)) {
						t.Skip("short mode runs the hash-3 partition only")
					}
					query := queries[1].Residues
					single, err := al.Search(query, db)
					if err != nil {
						t.Fatal(err)
					}
					want := toWire(single.TopHits(k), db)

					perShard := make([][]Hit, 0, len(parts))
					for _, slice := range parts {
						if len(slice) == 0 {
							continue
						}
						res, err := al.Search(query, slice)
						if err != nil {
							t.Fatal(err)
						}
						perShard = append(perShard, toWire(res.TopHits(k), slice))
					}
					got, err := index.Merge(perShard, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("merged top-%d differs from single-node search\n got: %v\nwant: %v", k, got, want)
					}
				})
			}
		}
	}
}

// TestMergeTieBreakIsGlobalOrder pins the tie-break rule directly:
// equal scores rank by global database position even when they arrive
// from different shards in the "wrong" order.
func TestMergeTieBreakIsGlobalOrder(t *testing.T) {
	db := []seqio.Sequence{
		{ID: "S0"}, {ID: "S1"}, {ID: "S2"}, {ID: "S3"},
	}
	index := NewIndex(db)
	perShard := [][]Hit{
		{{SeqID: "S3", Score: 8}, {SeqID: "S1", Score: 5}},
		{{SeqID: "S0", Score: 8}, {SeqID: "S2", Score: 8}},
	}
	got, err := index.Merge(perShard, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Hit{
		{SeqID: "S0", Score: 8}, {SeqID: "S2", Score: 8}, {SeqID: "S3", Score: 8},
		{SeqID: "S1", Score: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie-break order wrong\n got: %v\nwant: %v", got, want)
	}
}

// TestMergeRejectsUnknownSequence asserts the protocol-violation path:
// a shard answering with an ID the router's database has never seen is
// an error, not a silent drop.
func TestMergeRejectsUnknownSequence(t *testing.T) {
	index := NewIndex([]seqio.Sequence{{ID: "S0"}})
	_, err := index.Merge([][]Hit{{{SeqID: "GHOST", Score: 1}}}, 5)
	if err == nil {
		t.Fatal("Merge accepted a hit for an unknown sequence")
	}
}

// TestMergeEmpty asserts merging no shard answers yields an empty,
// non-nil-safe result rather than an error — outage handling belongs
// to the report, not the merge.
func TestMergeEmpty(t *testing.T) {
	index := NewIndex([]seqio.Sequence{{ID: "S0"}})
	got, err := index.Merge(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("merge of nothing returned %v", got)
	}
}
