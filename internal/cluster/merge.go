package cluster

import (
	"fmt"

	"swvec/internal/sched"
	"swvec/internal/seqio"
)

// Index maps shard-reported sequence IDs back to their global database
// positions. The ranking contract breaks ties by database order, and a
// shard only knows its slice-local order, so the router re-anchors
// every hit to the global index before merging. Duplicate IDs keep
// their first position, matching how a stable sort of the full
// database would rank them.
type Index struct {
	byID map[string]int
	n    int
}

// NewIndex builds the global index for db.
func NewIndex(db []seqio.Sequence) *Index {
	x := &Index{byID: make(map[string]int, len(db)), n: len(db)}
	for i, s := range db {
		if _, dup := x.byID[s.ID]; !dup {
			x.byID[s.ID] = i
		}
	}
	return x
}

// Size returns the database size the index was built over.
func (x *Index) Size() int { return x.n }

// Merge folds per-shard top-K hit lists into the global top-k, with
// exactly the single-node ordering: score descending, ties broken by
// global database order. Each shard's list must itself be a top-K of
// that shard's slice with K >= k (swserver guarantees this: it answers
// with the request's Top best of its slice), which makes the merged
// result provably equal to the top-k of the whole database restricted
// to the answering shards.
func (x *Index) Merge(perShard [][]Hit, k int) ([]Hit, error) {
	var flat []sched.Hit
	ids := make(map[int]string)
	for _, hits := range perShard {
		for _, h := range hits {
			gi, ok := x.byID[h.SeqID]
			if !ok {
				return nil, fmt.Errorf("cluster: shard reported unknown sequence %q", h.SeqID)
			}
			flat = append(flat, sched.Hit{SeqIndex: gi, Score: h.Score})
			ids[gi] = h.SeqID
		}
	}
	top := sched.TopK(flat, k)
	out := make([]Hit, len(top))
	for i, h := range top {
		out[i] = Hit{SeqID: ids[h.SeqIndex], Score: h.Score}
	}
	return out, nil
}
