package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"swvec/internal/seqio"
)

// vnodesPerShard is the number of virtual points each shard owns on
// the hash ring. More points smooth the assignment (the expected load
// imbalance shrinks as 1/sqrt(vnodes)); 64 keeps shard sizes within a
// few percent of even for realistic databases while the ring stays
// small enough to rebuild on every startup.
const vnodesPerShard = 64

// ShardMap deterministically assigns database sequences to shards by
// consistent hashing of the sequence ID. The assignment depends only
// on (shard count, sequence ID) — never on database order, process
// identity, or time — so every router and shard process that loads the
// same database computes the same map, and a restarted shard reloads
// exactly the slice it served before.
type ShardMap struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewShardMap builds the ring for n shards. n < 1 panics: a cluster
// without shards is a configuration bug, not a runtime condition.
func NewShardMap(n int) *ShardMap {
	if n < 1 {
		panic(fmt.Sprintf("cluster: shard map needs at least 1 shard, got %d", n))
	}
	m := &ShardMap{shards: n, points: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			m.points = append(m.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// Hash collisions between virtual points resolve by shard
		// index so the ring order — and therefore every assignment —
		// stays deterministic.
		return m.points[i].shard < m.points[j].shard
	})
	return m
}

// Shards returns the shard count the map was built for.
func (m *ShardMap) Shards() int { return m.shards }

// Assign returns the shard that owns the sequence with the given ID:
// the shard of the first ring point at or after the ID's hash, with
// wraparound.
func (m *ShardMap) Assign(id string) int {
	h := hash64(id)
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].shard
}

// Slice returns the subsequence of db owned by the given shard,
// preserving database order. Preserving order matters for the merge
// contract: a shard's local hit order is the global order filtered,
// so score ties resolved by shard-local index agree with ties resolved
// by global index after the router maps IDs back.
func (m *ShardMap) Slice(db []seqio.Sequence, shard int) []seqio.Sequence {
	var out []seqio.Sequence
	for _, s := range db {
		if m.Assign(s.ID) == shard {
			out = append(out, s)
		}
	}
	return out
}

// Partition returns every shard's slice at once: Partition(db)[s] ==
// Slice(db, s).
func (m *ShardMap) Partition(db []seqio.Sequence) [][]seqio.Sequence {
	out := make([][]seqio.Sequence, m.shards)
	for _, s := range db {
		sh := m.Assign(s.ID)
		out[sh] = append(out[sh], s)
	}
	return out
}

// ReplicaOrder returns the failover preference for a shard's replicas:
// a permutation of 0..replicas-1 whose first element is the primary.
// Like Assign it is a pure function of (shard count, replica count,
// shard index) — no process identity, no time — so every router
// restart computes the same priorities and a failover never flaps
// because two routers disagree about who is primary. The permutation
// is hash-derived rather than constant so that, across shards,
// primaries spread evenly over the replica ranks: when each rank is a
// distinct machine hosting one process per slice, 1/R of the primary
// traffic lands on each machine instead of rank 0 taking all of it.
func (m *ShardMap) ReplicaOrder(shard, replicas int) []int {
	if replicas < 1 {
		panic(fmt.Sprintf("cluster: replica order needs at least 1 replica, got %d", replicas))
	}
	order := make([]int, replicas)
	for r := range order {
		order[r] = r
	}
	keys := make([]uint64, replicas)
	for r := range keys {
		keys[r] = hash64(fmt.Sprintf("shards-%d/shard-%d/replica-%d", m.shards, shard, r))
	}
	sort.SliceStable(order, func(i, j int) bool {
		if keys[order[i]] != keys[order[j]] {
			return keys[order[i]] < keys[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// GroupReplicas splits a flat address list into per-shard ordered
// replica groups. Addresses are laid out replica-major: with
// S = len(addrs)/replicas shards, the first S addresses are the rank-0
// servers of shards 0..S-1, the next S the rank-1 servers, and so on —
// so a replicas=1 list is exactly the pre-replication layout. Each
// group is returned in ReplicaOrder priority (primary first), making
// the whole grouping a pure function of (addrs, replicas).
func GroupReplicas(addrs []string, replicas int) ([][]string, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica, got %d", replicas)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses")
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("cluster: %d addresses do not divide into %d replicas per shard", len(addrs), replicas)
	}
	shards := len(addrs) / replicas
	m := NewShardMap(shards)
	groups := make([][]string, shards)
	for s := 0; s < shards; s++ {
		order := m.ReplicaOrder(s, replicas)
		group := make([]string, replicas)
		for i, r := range order {
			group[i] = addrs[r*shards+s]
		}
		groups[s] = group
	}
	return groups, nil
}

// hash64 is FNV-1a with a splitmix64 finalizer; stable across
// processes and Go releases, unlike maphash. The finalizer matters:
// FNV-1a alone clusters short structured IDs ("SYN000042",
// "shard-1-vnode-7") in the high bits, which skews the ring arcs badly
// enough that one shard of three can own two thirds of the database.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 avalanche finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardProfile summarizes one shard's slice of the database length
// profile: how many sequences and residues it owns and the length
// spread its batches will see. The router logs the profile at startup
// and serves it through /debug/vars so imbalance is observable before
// it becomes a tail-latency problem.
type ShardProfile struct {
	Shard     int   `json:"shard"`
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	MinLen    int   `json:"min_len"`
	MedianLen int   `json:"median_len"`
	MaxLen    int   `json:"max_len"`
}

// Profile computes the per-shard length profile of db under the map.
func (m *ShardMap) Profile(db []seqio.Sequence) []ShardProfile {
	parts := m.Partition(db)
	out := make([]ShardProfile, m.shards)
	for s, part := range parts {
		st := seqio.Lengths(part)
		out[s] = ShardProfile{
			Shard:     s,
			Sequences: st.Count,
			Residues:  st.Residues,
			MinLen:    st.Min,
			MedianLen: st.Median,
			MaxLen:    st.Max,
		}
	}
	return out
}
