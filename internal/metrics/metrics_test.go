package metrics

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	var c Counters
	c.Searches.Add(2)
	c.BatchesProduced.Add(10)
	c.Batches8.Add(9)
	c.Batches16.Add(3)
	c.Pairs32.Add(1)
	c.Cells8.Add(100)
	c.Cells16.Add(30)
	c.Cells32.Add(7)
	c.Saturated8.Add(12)
	c.Saturated16.Add(1)
	c.ObserveQueueDepth(4)
	c.Stage8Nanos.Add(500)

	s := c.Snapshot()
	if s.Cells() != 137 {
		t.Fatalf("Cells() = %d, want 137", s.Cells())
	}
	if s.BatchesProduced != 10 || s.Batches8 != 9 || s.QueueHighWater != 4 {
		t.Fatalf("snapshot fields wrong: %+v", s)
	}
	if s.Stage8Time().Nanoseconds() != 500 {
		t.Fatalf("Stage8Time = %v", s.Stage8Time())
	}
}

func TestObserveQueueDepthIsMax(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for d := 1; d <= 64; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c.ObserveQueueDepth(d)
		}(d)
	}
	wg.Wait()
	if got := c.QueueHighWater.Load(); got != 64 {
		t.Fatalf("high water = %d, want 64", got)
	}
	c.ObserveQueueDepth(3)
	if got := c.QueueHighWater.Load(); got != 64 {
		t.Fatalf("high water regressed to %d", got)
	}
}

func TestAddMergesSumsAndMax(t *testing.T) {
	var agg Counters
	agg.Add(Snapshot{Searches: 1, Cells8: 10, QueueHighWater: 5, Saturated8: 2})
	agg.Add(Snapshot{Searches: 1, Canceled: 1, Cells8: 20, Cells16: 4, QueueHighWater: 3})
	s := agg.Snapshot()
	if s.Searches != 2 || s.Canceled != 1 {
		t.Fatalf("searches/canceled = %d/%d", s.Searches, s.Canceled)
	}
	if s.Cells8 != 30 || s.Cells16 != 4 || s.Saturated8 != 2 {
		t.Fatalf("cells/saturated wrong: %+v", s)
	}
	if s.QueueHighWater != 5 {
		t.Fatalf("high water = %d, want max 5", s.QueueHighWater)
	}
}

func TestWriteText(t *testing.T) {
	s := Snapshot{Searches: 1, BatchesProduced: 7, Cells8: 100, QueueHighWater: 2}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"searches", "produced 7", "8-bit 100", "queue high-water 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestPublishIdempotentAndJSON(t *testing.T) {
	Publish()
	Publish() // second call must not panic on duplicate expvar name

	v := expvar.Get("swvec.search")
	if v == nil {
		t.Fatal("swvec.search expvar not registered")
	}
	Global.Add(Snapshot{Searches: 1, Cells8: 42})
	var got Snapshot
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("expvar output is not snapshot JSON: %v", err)
	}
	if got.Searches < 1 || got.Cells8 < 42 {
		t.Fatalf("expvar snapshot missing merged totals: %+v", got)
	}
}
