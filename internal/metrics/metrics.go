// Package metrics provides low-overhead atomic counters for the
// search pipeline. A search accumulates into a private Counters value
// (one atomic add per batch, never per cell), snapshots it into the
// immutable Snapshot that rides on the result, and merges the snapshot
// into the process-wide Global aggregate, which can be published as an
// expvar for /debug/vars scraping.
//
// The split between Counters (live, atomic) and Snapshot (plain
// int64s) keeps the hot path free of locks and the observed values
// internally consistent: a Snapshot is only taken after every writer
// has quiesced, so its cell totals always sum and its stage counts
// never run ahead of the producer.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counters is the live, concurrently-written tally of one search (or,
// for Global, of every search in the process). All fields are atomics;
// the zero value is ready to use.
type Counters struct {
	// Searches and Canceled count completed pipeline runs and how many
	// of them ended early on a context cancellation or deadline.
	Searches atomic.Int64
	Canceled atomic.Int64

	// BatchesProduced counts transposed batches emitted by the
	// producer; Batches8 and Batches16 count batches actually aligned
	// by the 8-bit stream and the 16-bit rescue stage (on a canceled
	// run workers drain without aligning, so Batches8 may trail
	// BatchesProduced); Pairs32 counts 32-bit escalation alignments.
	BatchesProduced atomic.Int64
	Batches8        atomic.Int64
	Batches16       atomic.Int64
	Pairs32         atomic.Int64

	// Cells8/Cells16/Cells32 are real DP cells per stage width,
	// padding excluded. Their sum is the search's total cell count.
	Cells8  atomic.Int64
	Cells16 atomic.Int64
	Cells32 atomic.Int64

	// Saturated8 counts lanes whose 8-bit score saturated (and were
	// handed to the rescue stage); Saturated16 counts lanes that also
	// overflowed int16 and escalated to the 32-bit pair kernel.
	Saturated8  atomic.Int64
	Saturated16 atomic.Int64

	// BatchesDiagonal/BatchesStriped/BatchesLazyF split the aligned
	// batch counts (8- plus 16-bit stages; 32-bit escalations are
	// diagonal pairs and excluded) by kernel family, and the CellsKernel*
	// counters split the real DP cells the same way — the planner's
	// decisions made observable through Result.Stats and /debug/vars.
	BatchesDiagonal atomic.Int64
	BatchesStriped  atomic.Int64
	BatchesLazyF    atomic.Int64
	CellsDiagonal   atomic.Int64
	CellsStriped    atomic.Int64
	CellsLazyF      atomic.Int64

	// ProfileCacheHits counts pair alignments that reused a cached
	// 8-bit query profile from the worker's scratch instead of
	// rebuilding it.
	ProfileCacheHits atomic.Int64

	// QueueHighWater is the deepest the 8-bit work queue ever got — a
	// direct read on whether the producer or the workers are the
	// bottleneck for the configured pipeline depth.
	QueueHighWater atomic.Int64

	// ProduceNanos is wall time spent transposing batches in the
	// producer; Stage8/16/32Nanos are the summed per-worker wall times
	// inside each alignment stage (they overlap in real time, so they
	// measure work, not latency).
	ProduceNanos atomic.Int64
	Stage8Nanos  atomic.Int64
	Stage16Nanos atomic.Int64
	Stage32Nanos atomic.Int64

	// PanicsRecovered counts kernel panics the stage runners absorbed,
	// Retries counts transient stage failures retried with backoff, and
	// Quarantined counts database sequences isolated after a stage
	// exhausted its retries (DESIGN.md §12).
	PanicsRecovered atomic.Int64
	Retries         atomic.Int64
	Quarantined     atomic.Int64

	// Malformed and Oversized count input records the lenient FASTA
	// decoder skipped: syntactically broken records and records beyond
	// the configured sequence-length cap.
	Malformed atomic.Int64
	Oversized atomic.Int64

	// Shed, BreakerTrips, BreakerRejected, and Degraded count the
	// server's overload responses: requests dropped at the admission
	// gate, circuit-breaker opens, requests refused while it was open,
	// and entries into degraded (reduced-width) mode.
	Shed            atomic.Int64
	BreakerTrips    atomic.Int64
	BreakerRejected atomic.Int64
	Degraded        atomic.Int64
}

// ObserveQueueDepth raises QueueHighWater to depth if it is a new
// maximum.
func (c *Counters) ObserveQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := c.QueueHighWater.Load()
		if d <= cur || c.QueueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. It is only guaranteed to be
// internally consistent once every writer has quiesced (the pipeline
// snapshots after its worker pool has fully drained).
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Searches:         c.Searches.Load(),
		Canceled:         c.Canceled.Load(),
		BatchesProduced:  c.BatchesProduced.Load(),
		Batches8:         c.Batches8.Load(),
		Batches16:        c.Batches16.Load(),
		Pairs32:          c.Pairs32.Load(),
		Cells8:           c.Cells8.Load(),
		Cells16:          c.Cells16.Load(),
		Cells32:          c.Cells32.Load(),
		Saturated8:       c.Saturated8.Load(),
		Saturated16:      c.Saturated16.Load(),
		BatchesDiagonal:  c.BatchesDiagonal.Load(),
		BatchesStriped:   c.BatchesStriped.Load(),
		BatchesLazyF:     c.BatchesLazyF.Load(),
		CellsDiagonal:    c.CellsDiagonal.Load(),
		CellsStriped:     c.CellsStriped.Load(),
		CellsLazyF:       c.CellsLazyF.Load(),
		ProfileCacheHits: c.ProfileCacheHits.Load(),
		QueueHighWater:   c.QueueHighWater.Load(),
		ProduceNanos:     c.ProduceNanos.Load(),
		Stage8Nanos:      c.Stage8Nanos.Load(),
		Stage16Nanos:     c.Stage16Nanos.Load(),
		Stage32Nanos:     c.Stage32Nanos.Load(),
		PanicsRecovered:  c.PanicsRecovered.Load(),
		Retries:          c.Retries.Load(),
		Quarantined:      c.Quarantined.Load(),
		Malformed:        c.Malformed.Load(),
		Oversized:        c.Oversized.Load(),
		Shed:             c.Shed.Load(),
		BreakerTrips:     c.BreakerTrips.Load(),
		BreakerRejected:  c.BreakerRejected.Load(),
		Degraded:         c.Degraded.Load(),
	}
}

// Add merges a finished search's snapshot into the aggregate. Counters
// sum; QueueHighWater takes the maximum.
func (c *Counters) Add(s Snapshot) {
	c.Searches.Add(s.Searches)
	c.Canceled.Add(s.Canceled)
	c.BatchesProduced.Add(s.BatchesProduced)
	c.Batches8.Add(s.Batches8)
	c.Batches16.Add(s.Batches16)
	c.Pairs32.Add(s.Pairs32)
	c.Cells8.Add(s.Cells8)
	c.Cells16.Add(s.Cells16)
	c.Cells32.Add(s.Cells32)
	c.Saturated8.Add(s.Saturated8)
	c.Saturated16.Add(s.Saturated16)
	c.BatchesDiagonal.Add(s.BatchesDiagonal)
	c.BatchesStriped.Add(s.BatchesStriped)
	c.BatchesLazyF.Add(s.BatchesLazyF)
	c.CellsDiagonal.Add(s.CellsDiagonal)
	c.CellsStriped.Add(s.CellsStriped)
	c.CellsLazyF.Add(s.CellsLazyF)
	c.ProfileCacheHits.Add(s.ProfileCacheHits)
	c.ObserveQueueDepth(int(s.QueueHighWater))
	c.ProduceNanos.Add(s.ProduceNanos)
	c.Stage8Nanos.Add(s.Stage8Nanos)
	c.Stage16Nanos.Add(s.Stage16Nanos)
	c.Stage32Nanos.Add(s.Stage32Nanos)
	c.PanicsRecovered.Add(s.PanicsRecovered)
	c.Retries.Add(s.Retries)
	c.Quarantined.Add(s.Quarantined)
	c.Malformed.Add(s.Malformed)
	c.Oversized.Add(s.Oversized)
	c.Shed.Add(s.Shed)
	c.BreakerTrips.Add(s.BreakerTrips)
	c.BreakerRejected.Add(s.BreakerRejected)
	c.Degraded.Add(s.Degraded)
}

// Snapshot is an immutable copy of Counters. JSON tags match the
// /debug/vars expvar output.
type Snapshot struct {
	Searches         int64 `json:"searches"`
	Canceled         int64 `json:"canceled"`
	BatchesProduced  int64 `json:"batches_produced"`
	Batches8         int64 `json:"batches_8"`
	Batches16        int64 `json:"batches_16"`
	Pairs32          int64 `json:"pairs_32"`
	Cells8           int64 `json:"cells_8"`
	Cells16          int64 `json:"cells_16"`
	Cells32          int64 `json:"cells_32"`
	Saturated8       int64 `json:"saturated_8"`
	Saturated16      int64 `json:"saturated_16"`
	BatchesDiagonal  int64 `json:"batches_kernel_diagonal"`
	BatchesStriped   int64 `json:"batches_kernel_striped"`
	BatchesLazyF     int64 `json:"batches_kernel_lazyf"`
	CellsDiagonal    int64 `json:"cells_kernel_diagonal"`
	CellsStriped     int64 `json:"cells_kernel_striped"`
	CellsLazyF       int64 `json:"cells_kernel_lazyf"`
	ProfileCacheHits int64 `json:"profile_cache_hits"`
	QueueHighWater   int64 `json:"queue_high_water"`
	ProduceNanos     int64 `json:"produce_nanos"`
	Stage8Nanos      int64 `json:"stage8_nanos"`
	Stage16Nanos     int64 `json:"stage16_nanos"`
	Stage32Nanos     int64 `json:"stage32_nanos"`
	PanicsRecovered  int64 `json:"panics_recovered"`
	Retries          int64 `json:"retries"`
	Quarantined      int64 `json:"quarantined"`
	Malformed        int64 `json:"malformed"`
	Oversized        int64 `json:"oversized"`
	Shed             int64 `json:"shed"`
	BreakerTrips     int64 `json:"breaker_trips"`
	BreakerRejected  int64 `json:"breaker_rejected"`
	Degraded         int64 `json:"degraded"`
}

// Cells is the total real DP cell count across every stage width.
func (s Snapshot) Cells() int64 { return s.Cells8 + s.Cells16 + s.Cells32 }

// ProduceTime is the wall time the producer spent transposing batches.
func (s Snapshot) ProduceTime() time.Duration { return time.Duration(s.ProduceNanos) }

// Stage8Time is the summed per-worker wall time in the 8-bit stage.
func (s Snapshot) Stage8Time() time.Duration { return time.Duration(s.Stage8Nanos) }

// Stage16Time is the summed per-worker wall time in the 16-bit rescue.
func (s Snapshot) Stage16Time() time.Duration { return time.Duration(s.Stage16Nanos) }

// Stage32Time is the summed per-worker wall time in the 32-bit
// escalation.
func (s Snapshot) Stage32Time() time.Duration { return time.Duration(s.Stage32Nanos) }

// WriteText renders the snapshot as aligned human-readable lines (the
// `swbench -stats` output).
func (s Snapshot) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, ""+
		"searches         %d (%d canceled)\n"+
		"batches          produced %d, aligned8 %d, rescue16 %d, pairs32 %d\n"+
		"cells            8-bit %d, 16-bit %d, 32-bit %d (total %d)\n"+
		"saturated lanes  8-bit %d, 16-bit %d\n"+
		"kernel batches   diagonal %d, striped %d, lazyf %d\n"+
		"kernel cells     diagonal %d, striped %d, lazyf %d\n"+
		"profile cache    %d hits\n"+
		"queue high-water %d batches\n"+
		"stage time       produce %v, 8-bit %v, 16-bit %v, 32-bit %v\n"+
		"resilience       recovered %d, retried %d, quarantined %d, malformed %d, oversized %d\n"+
		"overload         shed %d, breaker trips %d / rejected %d, degraded %d\n",
		s.Searches, s.Canceled,
		s.BatchesProduced, s.Batches8, s.Batches16, s.Pairs32,
		s.Cells8, s.Cells16, s.Cells32, s.Cells(),
		s.Saturated8, s.Saturated16,
		s.BatchesDiagonal, s.BatchesStriped, s.BatchesLazyF,
		s.CellsDiagonal, s.CellsStriped, s.CellsLazyF,
		s.ProfileCacheHits,
		s.QueueHighWater,
		s.ProduceTime().Round(time.Microsecond), s.Stage8Time().Round(time.Microsecond),
		s.Stage16Time().Round(time.Microsecond), s.Stage32Time().Round(time.Microsecond),
		s.PanicsRecovered, s.Retries, s.Quarantined, s.Malformed, s.Oversized,
		s.Shed, s.BreakerTrips, s.BreakerRejected, s.Degraded)
	return err
}

// Global aggregates every search run by the process. The search
// entry points merge each finished search's snapshot into it.
var Global Counters

var publishOnce sync.Once

// Publish registers the Global aggregate as the "swvec.search" expvar,
// so binaries that serve /debug/vars (e.g. swserver's admin port)
// expose the pipeline counters. Idempotent; safe to call from multiple
// components.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("swvec.search", expvar.Func(func() any {
			return Global.Snapshot()
		}))
	})
}
