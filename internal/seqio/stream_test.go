package seqio

import (
	"reflect"
	"testing"

	"swvec/internal/alphabet"
)

func collectStream(s *BatchStream) []*Batch {
	var out []*Batch
	for b := s.Next(); b != nil; b = s.Next() {
		out = append(out, b)
	}
	return out
}

func TestBatchStreamMatchesBuildBatches(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(21)
	db := g.Database(77)
	for _, sorted := range []bool{false, true} {
		opts := BatchOptions{SortByLength: sorted}
		want := BuildBatches(db, alpha, opts)
		got := collectStream(NewBatchStream(db, alpha, opts))
		if len(got) != len(want) {
			t.Fatalf("sorted=%v: %d batches, want %d", sorted, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("sorted=%v: batch %d differs", sorted, i)
			}
		}
	}
}

func TestBatchStreamRemaining(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(22)
	db := g.Database(BatchLanes*2 + 5)
	s := NewBatchStream(db, alpha, BatchOptions{})
	if s.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", s.Remaining())
	}
	s.Next()
	if s.Remaining() != 2 {
		t.Fatalf("after one batch remaining = %d, want 2", s.Remaining())
	}
	collectStream(s)
	if s.Remaining() != 0 {
		t.Fatalf("exhausted stream remaining = %d", s.Remaining())
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream returned a batch")
	}
}

// TestBatchStreamRecycleAcrossSizes forces multiple batches through
// one recycled buffer with shrinking MaxLen: the transposed slice must
// be reused (no fresh allocation) yet shrink correctly, carrying no
// stale lanes from the larger predecessor.
func TestBatchStreamRecycleAcrossSizes(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(24)
	db := make([]Sequence, 0, BatchLanes*3)
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("long", 200))
	}
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("mid", 80))
	}
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("short", 15))
	}
	want := BuildBatches(db, alpha, BatchOptions{})
	s := NewBatchStream(db, alpha, BatchOptions{})
	var prev *Batch
	for i := 0; ; i++ {
		b := s.Next()
		if b == nil {
			if i != len(want) {
				t.Fatalf("stream produced %d batches, want %d", i, len(want))
			}
			break
		}
		if prev != nil && b != prev {
			t.Fatalf("batch %d did not reuse the recycled batch", i)
		}
		if !reflect.DeepEqual(b, want[i]) {
			t.Fatalf("recycled batch %d differs (maxlen %d vs %d, tlen %d vs %d)",
				i, b.MaxLen, want[i].MaxLen, len(b.T), len(want[i].T))
		}
		prev = b
		s.Recycle(b)
	}
}

func TestMakeBatchSubset(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(25)
	db := g.Database(50)
	members := []int{3, 17, 42}
	b := MakeBatch(db, members, alpha)
	if b.Count != len(members) {
		t.Fatalf("count = %d", b.Count)
	}
	for lane, si := range members {
		if b.Index[lane] != si {
			t.Fatalf("lane %d index = %d, want %d", lane, b.Index[lane], si)
		}
		if b.Lens[lane] != db[si].Len() {
			t.Fatalf("lane %d len = %d, want %d", lane, b.Lens[lane], db[si].Len())
		}
		enc := db[si].Encode(alpha)
		for j, code := range enc {
			if b.T[j*BatchLanes+lane] != code {
				t.Fatalf("lane %d residue %d = %d, want %d", lane, j, b.T[j*BatchLanes+lane], code)
			}
		}
	}
	for lane := len(members); lane < BatchLanes; lane++ {
		if b.Index[lane] != -1 || b.Lens[lane] != 0 {
			t.Fatalf("padding lane %d not cleared", lane)
		}
	}
}
