package seqio

import (
	"reflect"
	"testing"

	"swvec/internal/alphabet"
)

func collectStream(s *BatchStream) []*Batch {
	var out []*Batch
	for b := s.Next(); b != nil; b = s.Next() {
		out = append(out, b)
	}
	return out
}

func TestBatchStreamMatchesBuildBatches(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(21)
	db := g.Database(77)
	for _, sorted := range []bool{false, true} {
		opts := BatchOptions{SortByLength: sorted}
		want := BuildBatches(db, alpha, opts)
		got := collectStream(NewBatchStream(db, alpha, opts))
		if len(got) != len(want) {
			t.Fatalf("sorted=%v: %d batches, want %d", sorted, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("sorted=%v: batch %d differs", sorted, i)
			}
		}
	}
}

func TestBatchStreamRemaining(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(22)
	db := g.Database(BatchLanes*2 + 5)
	s := NewBatchStream(db, alpha, BatchOptions{})
	if s.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", s.Remaining())
	}
	s.Next()
	if s.Remaining() != 2 {
		t.Fatalf("after one batch remaining = %d, want 2", s.Remaining())
	}
	collectStream(s)
	if s.Remaining() != 0 {
		t.Fatalf("exhausted stream remaining = %d", s.Remaining())
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream returned a batch")
	}
}

// TestBatchStreamRecycleAcrossSizes forces multiple batches through
// one recycled buffer with shrinking MaxLen: the transposed slice must
// be reused (no fresh allocation) yet shrink correctly, carrying no
// stale lanes from the larger predecessor.
func TestBatchStreamRecycleAcrossSizes(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(24)
	db := make([]Sequence, 0, BatchLanes*3)
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("long", 200))
	}
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("mid", 80))
	}
	for i := 0; i < BatchLanes; i++ {
		db = append(db, g.Protein("short", 15))
	}
	want := BuildBatches(db, alpha, BatchOptions{})
	s := NewBatchStream(db, alpha, BatchOptions{})
	var prev *Batch
	for i := 0; ; i++ {
		b := s.Next()
		if b == nil {
			if i != len(want) {
				t.Fatalf("stream produced %d batches, want %d", i, len(want))
			}
			break
		}
		if prev != nil && b != prev {
			t.Fatalf("batch %d did not reuse the recycled batch", i)
		}
		if !reflect.DeepEqual(b, want[i]) {
			t.Fatalf("recycled batch %d differs (maxlen %d vs %d, tlen %d vs %d)",
				i, b.MaxLen, want[i].MaxLen, len(b.T), len(want[i].T))
		}
		prev = b
		s.Recycle(b)
	}
}

func TestMakeBatchSubset(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(25)
	db := g.Database(50)
	members := []int{3, 17, 42}
	b := MakeBatch(db, members, alpha, 0)
	if b.Count != len(members) {
		t.Fatalf("count = %d", b.Count)
	}
	for lane, si := range members {
		if b.Index[lane] != si {
			t.Fatalf("lane %d index = %d, want %d", lane, b.Index[lane], si)
		}
		if b.Lens[lane] != db[si].Len() {
			t.Fatalf("lane %d len = %d, want %d", lane, b.Lens[lane], db[si].Len())
		}
		enc := db[si].Encode(alpha)
		for j, code := range enc {
			if b.T[j*BatchLanes+lane] != code {
				t.Fatalf("lane %d residue %d = %d, want %d", lane, j, b.T[j*BatchLanes+lane], code)
			}
		}
	}
	for lane := len(members); lane < BatchLanes; lane++ {
		if b.Index[lane] != -1 || b.Lens[lane] != 0 {
			t.Fatalf("padding lane %d not cleared", lane)
		}
	}
}

// TestBatchStreamWideLanes checks the 64-lane (512-bit) stride: batch
// count halves, the transposed layout uses the wide stride, and every
// residue lands at T[j*64+lane].
func TestBatchStreamWideLanes(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(26)
	db := g.Database(MaxBatchLanes + 7)
	s := NewBatchStream(db, alpha, BatchOptions{Lanes: MaxBatchLanes})
	if s.Remaining() != 2 {
		t.Fatalf("remaining = %d, want 2", s.Remaining())
	}
	batches := collectStream(s)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	for bi, b := range batches {
		if b.Stride() != MaxBatchLanes {
			t.Fatalf("batch %d stride = %d, want %d", bi, b.Stride(), MaxBatchLanes)
		}
		if len(b.T) != b.MaxLen*MaxBatchLanes {
			t.Fatalf("batch %d T size = %d, want %d", bi, len(b.T), b.MaxLen*MaxBatchLanes)
		}
		for lane := 0; lane < b.Count; lane++ {
			si := b.Index[lane]
			enc := db[si].Encode(alpha)
			for j, code := range enc {
				if b.T[j*MaxBatchLanes+lane] != code {
					t.Fatalf("batch %d lane %d residue %d = %d, want %d",
						bi, lane, j, b.T[j*MaxBatchLanes+lane], code)
				}
			}
			for j := len(enc); j < b.MaxLen; j++ {
				if b.T[j*MaxBatchLanes+lane] != alphabet.Sentinel {
					t.Fatalf("batch %d lane %d tail residue %d not sentinel", bi, lane, j)
				}
			}
		}
	}
	if batches[0].Count != MaxBatchLanes || batches[1].Count != 7 {
		t.Fatalf("counts = %d,%d want %d,7", batches[0].Count, batches[1].Count, MaxBatchLanes)
	}
}
