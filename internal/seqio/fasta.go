// Package seqio provides FASTA input/output, a deterministic synthetic
// protein database generator calibrated to UniProtKB/Swiss-Prot
// statistics, and the offline database batching (32 transposed
// sequences per batch) described in §III-C of the paper.
package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"swvec/internal/alphabet"
)

// Sequence is a named residue sequence.
type Sequence struct {
	// ID is the FASTA identifier (text after '>' up to the first space).
	ID string
	// Desc is the remainder of the FASTA header line, if any.
	Desc string
	// Residues holds the raw ASCII residue letters.
	Residues []byte
}

// Len returns the sequence length in residues.
func (s Sequence) Len() int { return len(s.Residues) }

// Encode returns the residue codes of the sequence under alpha.
func (s Sequence) Encode(alpha *alphabet.Alphabet) []uint8 {
	return alpha.Encode(s.Residues)
}

// ReadFasta parses all FASTA records from r.
func ReadFasta(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '>' {
			out = append(out, Sequence{})
			cur = &out[len(out)-1]
			header := string(raw[1:])
			if sp := bytes.IndexByte([]byte(header), ' '); sp >= 0 {
				cur.ID = header[:sp]
				cur.Desc = header[sp+1:]
			} else {
				cur.ID = header
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seqio: line %d: sequence data before first header", line)
		}
		cur.Residues = append(cur.Residues, raw...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: reading fasta: %v", err)
	}
	return out, nil
}

// WriteFasta writes the sequences to w in FASTA format with 60-column
// sequence lines.
func WriteFasta(w io.Writer, seqs []Sequence) error {
	bw := bufio.NewWriter(w)
	for i := range seqs {
		s := &seqs[i]
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Residues); off += 60 {
			end := off + 60
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			bw.Write(s.Residues[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// TotalResidues sums the lengths of all sequences.
func TotalResidues(seqs []Sequence) int64 {
	var n int64
	for i := range seqs {
		n += int64(seqs[i].Len())
	}
	return n
}
