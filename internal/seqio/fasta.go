// Package seqio provides FASTA input/output, a deterministic synthetic
// protein database generator calibrated to UniProtKB/Swiss-Prot
// statistics, and the offline database batching (32 transposed
// sequences per batch) described in §III-C of the paper.
package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"swvec/internal/alphabet"
	"swvec/internal/failpoint"
)

// Sequence is a named residue sequence.
type Sequence struct {
	// ID is the FASTA identifier (text after '>' up to the first space).
	ID string
	// Desc is the remainder of the FASTA header line, if any.
	Desc string
	// Residues holds the raw ASCII residue letters.
	Residues []byte
}

// Len returns the sequence length in residues.
func (s Sequence) Len() int { return len(s.Residues) }

// Encode returns the residue codes of the sequence under alpha.
func (s Sequence) Encode(alpha *alphabet.Alphabet) []uint8 {
	return alpha.Encode(s.Residues)
}

// DecodeOptions configures DecodeFasta.
type DecodeOptions struct {
	// MaxSeqLen caps one record's residue count; longer records are
	// skipped and reported as oversized (0 = unlimited).
	MaxSeqLen int
	// Strict aborts on the first bad record instead of skipping it.
	Strict bool
}

// SkippedRecord describes one record the lenient decoder dropped.
type SkippedRecord struct {
	// Line is the 1-based input line where the problem was noticed (the
	// record's header line, or the offending data line when there is no
	// header to blame).
	Line int
	// ID is the record's identifier, "" when none was parsed.
	ID string
	// Cause says why the record was dropped.
	Cause string
}

// DecodeReport summarizes one DecodeFasta run: a streamed database
// load or server request can report exactly which records it skipped
// instead of aborting on the first corrupt one.
type DecodeReport struct {
	// Records counts successfully decoded records.
	Records int
	// Malformed and Oversized count the skips by class; their sum is
	// len(Skipped).
	Malformed int
	Oversized int
	// Skipped lists the dropped records in input order.
	Skipped []SkippedRecord
}

// DecodeFasta parses FASTA records from r. Malformed records — data
// before the first header, headers with no identifier, records with no
// sequence data — and records beyond opt.MaxSeqLen are skipped and
// reported in the DecodeReport rather than failing the whole stream; a
// corrupt record in the middle of a large database costs exactly that
// record. With opt.Strict the first bad record aborts the decode (the
// historical behavior). The returned error is non-nil only for Strict
// rejections and reader failures.
func DecodeFasta(r io.Reader, opt DecodeOptions) ([]Sequence, *DecodeReport, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	rep := &DecodeReport{}
	var out []Sequence
	var cur Sequence
	var curLine int
	have := false // cur holds a record being accumulated
	bad := false  // current record was rejected; swallow its data lines
	line := 0

	reject := func(ln int, id, cause string, oversized bool) error {
		if opt.Strict {
			return fmt.Errorf("seqio: line %d: %s", ln, cause)
		}
		if oversized {
			rep.Oversized++
		} else {
			rep.Malformed++
		}
		rep.Skipped = append(rep.Skipped, SkippedRecord{Line: ln, ID: id, Cause: cause})
		return nil
	}
	flush := func() error {
		if !have {
			return nil
		}
		have = false
		if err := failpoint.Inject("seqio/fasta-record"); err != nil {
			return reject(curLine, cur.ID, err.Error(), false)
		}
		if len(cur.Residues) == 0 {
			return reject(curLine, cur.ID, "record has no sequence data", false)
		}
		out = append(out, cur)
		rep.Records++
		return nil
	}

	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '>' {
			if err := flush(); err != nil {
				return nil, rep, err
			}
			bad = false
			header := string(raw[1:])
			id, desc := header, ""
			if sp := strings.IndexByte(header, ' '); sp >= 0 {
				id, desc = header[:sp], header[sp+1:]
			}
			if id == "" {
				bad = true
				if err := reject(line, "", "header has no identifier", false); err != nil {
					return nil, rep, err
				}
				continue
			}
			cur = Sequence{ID: id, Desc: desc}
			have = true
			curLine = line
			continue
		}
		if bad {
			continue
		}
		if !have {
			bad = true
			if err := reject(line, "", "sequence data before first header", false); err != nil {
				return nil, rep, err
			}
			continue
		}
		if opt.MaxSeqLen > 0 && len(cur.Residues)+len(raw) > opt.MaxSeqLen {
			have = false
			bad = true
			if err := reject(curLine, cur.ID, fmt.Sprintf("sequence exceeds %d residues", opt.MaxSeqLen), true); err != nil {
				return nil, rep, err
			}
			continue
		}
		cur.Residues = append(cur.Residues, raw...)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("seqio: reading fasta: %v", err)
	}
	if err := flush(); err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// ReadFasta parses all FASTA records from r, skipping malformed
// records. It is DecodeFasta with default (lenient, uncapped) options,
// discarding the report; callers that need the skip details, a length
// cap, or abort-on-corruption use DecodeFasta directly.
func ReadFasta(r io.Reader) ([]Sequence, error) {
	seqs, _, err := DecodeFasta(r, DecodeOptions{})
	return seqs, err
}

// WriteFasta writes the sequences to w in FASTA format with 60-column
// sequence lines.
func WriteFasta(w io.Writer, seqs []Sequence) error {
	bw := bufio.NewWriter(w)
	for i := range seqs {
		s := &seqs[i]
		if s.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Residues); off += 60 {
			end := off + 60
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			bw.Write(s.Residues[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// TotalResidues sums the lengths of all sequences.
func TotalResidues(seqs []Sequence) int64 {
	var n int64
	for i := range seqs {
		n += int64(seqs[i].Len())
	}
	return n
}
