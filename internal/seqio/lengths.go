package seqio

import "sort"

// LengthStats summarizes the length profile of a sequence set: the
// count, total residues, and the min/median/max lengths. The cluster
// layer uses it to report per-shard balance; zero-value stats describe
// an empty set.
type LengthStats struct {
	Count    int
	Residues int64
	Min      int
	Median   int
	Max      int
}

// Lengths computes the length profile of seqs in O(n log n).
func Lengths(seqs []Sequence) LengthStats {
	if len(seqs) == 0 {
		return LengthStats{}
	}
	lens := make([]int, len(seqs))
	var total int64
	for i, s := range seqs {
		lens[i] = len(s.Residues)
		total += int64(len(s.Residues))
	}
	sort.Ints(lens)
	return LengthStats{
		Count:    len(seqs),
		Residues: total,
		Min:      lens[0],
		Median:   lens[len(lens)/2],
		Max:      lens[len(lens)-1],
	}
}
