package seqio

import (
	"swvec/internal/alphabet"
)

// BatchLanes is the number of sequences per database batch: one lane
// per int8 element of a 256-bit register, as in §III-C ("batches
// containing 32 transposed sequences, i.e., 32 for the number of lanes
// in AVX2 when using 8-bit integers").
const BatchLanes = 32

// MaxBatchLanes is the widest batch any engine consumes: one lane per
// int8 element of a 512-bit register.
const MaxBatchLanes = 64

// A Batch holds up to Stride() database sequences in transposed
// residue-code layout: T[j*Stride()+lane] is residue j of the lane-th
// sequence, so one vector load fetches residue j of all lanes at once
// ("each adjacent transposed residue represents a residue from a
// different sequence"). Lanes past a sequence's end, and lanes of a
// short batch, are padded with the alphabet sentinel code, whose
// strongly negative substitution scores keep padding out of every
// local alignment.
type Batch struct {
	// Count is the number of real sequences (1..Stride()).
	Count int
	// MaxLen is the longest member length; T has MaxLen*Stride()
	// entries.
	MaxLen int
	// Lanes is the transposed stride — 32 for the 256-bit engines, 64
	// for the 512-bit ones. Zero means the legacy 32-lane layout.
	Lanes int
	// Lens holds each lane's true sequence length (0 for padding lanes).
	Lens [MaxBatchLanes]int
	// Index holds each lane's position in the source database slice
	// (-1 for padding lanes).
	Index [MaxBatchLanes]int
	// T is the transposed residue-code matrix.
	T []uint8
}

// Stride returns the batch's lane stride, defaulting to BatchLanes for
// zero-value batches.
func (b *Batch) Stride() int {
	if b.Lanes == 0 {
		return BatchLanes
	}
	return b.Lanes
}

// ResidueColumn returns the residue codes at position j, one per lane.
// The slice aliases the batch.
func (b *Batch) ResidueColumn(j int) []uint8 {
	stride := b.Stride()
	return b.T[j*stride : (j+1)*stride]
}

// Cells returns the total number of DP cells a query of length qlen
// induces against the real sequences of the batch (padding excluded).
func (b *Batch) Cells(qlen int) int64 {
	var total int64
	for lane := 0; lane < b.Count; lane++ {
		total += int64(qlen) * int64(b.Lens[lane])
	}
	return total
}

// BatchOptions controls database batching.
type BatchOptions struct {
	// SortByLength groups sequences of similar length into the same
	// batch, shrinking the padded tail each batch must process. This
	// is the main offline tuning knob for the batch layout.
	SortByLength bool
	// Lanes is the batch lane stride: BatchLanes (the default when
	// zero) for the 256-bit engines, MaxBatchLanes for the 512-bit
	// ones.
	Lanes int
}

// BuildBatches reorganizes the entire database into transposed batches
// eagerly. It is the materialized form of BatchStream, kept for tests,
// tools, and workloads small enough to hold every batch at once; the
// search pipeline streams instead.
func BuildBatches(seqs []Sequence, alpha *alphabet.Alphabet, opts BatchOptions) []*Batch {
	s := NewBatchStream(seqs, alpha, opts)
	var batches []*Batch
	for b := s.Next(); b != nil; b = s.Next() {
		batches = append(batches, b)
	}
	return batches
}

// BatchedCells sums Cells over all batches for a query length.
func BatchedCells(batches []*Batch, qlen int) int64 {
	var total int64
	for _, b := range batches {
		total += b.Cells(qlen)
	}
	return total
}
