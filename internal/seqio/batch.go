package seqio

import (
	"swvec/internal/alphabet"
)

// BatchLanes is the number of sequences per database batch: one lane
// per int8 element of a 256-bit register, as in §III-C ("batches
// containing 32 transposed sequences, i.e., 32 for the number of lanes
// in AVX2 when using 8-bit integers").
const BatchLanes = 32

// A Batch holds up to 32 database sequences in transposed residue-code
// layout: T[j*32+lane] is residue j of the lane-th sequence, so one
// vector load fetches residue j of all 32 sequences at once ("each
// adjacent transposed residue represents a residue from a different
// sequence"). Lanes past a sequence's end, and lanes of a short batch,
// are padded with the alphabet sentinel code, whose strongly negative
// substitution scores keep padding out of every local alignment.
type Batch struct {
	// Count is the number of real sequences (1..32).
	Count int
	// MaxLen is the longest member length; T has MaxLen*32 entries.
	MaxLen int
	// Lens holds each lane's true sequence length (0 for padding lanes).
	Lens [BatchLanes]int
	// Index holds each lane's position in the source database slice
	// (-1 for padding lanes).
	Index [BatchLanes]int
	// T is the transposed residue-code matrix.
	T []uint8
}

// ResidueColumn returns the 32 residue codes at position j, one per
// lane. The slice aliases the batch.
func (b *Batch) ResidueColumn(j int) []uint8 {
	return b.T[j*BatchLanes : (j+1)*BatchLanes]
}

// Cells returns the total number of DP cells a query of length qlen
// induces against the real sequences of the batch (padding excluded).
func (b *Batch) Cells(qlen int) int64 {
	var total int64
	for lane := 0; lane < b.Count; lane++ {
		total += int64(qlen) * int64(b.Lens[lane])
	}
	return total
}

// BatchOptions controls database batching.
type BatchOptions struct {
	// SortByLength groups sequences of similar length into the same
	// batch, shrinking the padded tail each batch must process. This
	// is the main offline tuning knob for the batch layout.
	SortByLength bool
}

// BuildBatches reorganizes the entire database into transposed batches
// eagerly. It is the materialized form of BatchStream, kept for tests,
// tools, and workloads small enough to hold every batch at once; the
// search pipeline streams instead.
func BuildBatches(seqs []Sequence, alpha *alphabet.Alphabet, opts BatchOptions) []*Batch {
	s := NewBatchStream(seqs, alpha, opts)
	var batches []*Batch
	for b := s.Next(); b != nil; b = s.Next() {
		batches = append(batches, b)
	}
	return batches
}

// BatchedCells sums Cells over all batches for a query length.
func BatchedCells(batches []*Batch, qlen int) int64 {
	var total int64
	for _, b := range batches {
		total += b.Cells(qlen)
	}
	return total
}
