package seqio

import (
	"bytes"
	"testing"
)

// fuzzMaxSeqLen caps record sizes during fuzzing so a giant generated
// record cannot blow memory; the invariant checks below also verify
// the cap holds.
const fuzzMaxSeqLen = 1 << 16

// fastaStable reports whether the decoded records survive a
// WriteFasta/DecodeFasta round trip byte-for-byte: residues must be
// free of whitespace (the decoder trims each line) and of '>' (the
// 60-column writer could park one at a line start).
func fastaStable(seqs []Sequence) bool {
	for _, s := range seqs {
		if bytes.ContainsAny(s.Residues, " \t\r\n\v\f>") {
			return false
		}
	}
	return true
}

// FuzzFASTADecode drives the lenient decoder with arbitrary input: it
// must never panic or error, its report must stay consistent with what
// it returned, and well-formed decodes must round-trip through
// WriteFasta.
func FuzzFASTADecode(f *testing.F) {
	f.Add([]byte(">a desc\nMKVL\n>b\nACDE\n"))
	f.Add([]byte("garbage before header\n>x\nMK\n"))
	f.Add([]byte(">\nAC\n> only desc\nGG\n"))
	f.Add([]byte(">empty\n>next\nWW\n"))
	f.Add([]byte(">crlf\r\nMK\r\n"))
	f.Add([]byte("\n\n>ws   \n  MK  \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, rep, err := DecodeFasta(bytes.NewReader(data), DecodeOptions{MaxSeqLen: fuzzMaxSeqLen})
		if err != nil {
			t.Fatalf("lenient decode errored: %v", err)
		}
		if rep.Records != len(seqs) {
			t.Fatalf("report counts %d records, returned %d", rep.Records, len(seqs))
		}
		if rep.Malformed+rep.Oversized != len(rep.Skipped) {
			t.Fatalf("skip classes don't sum: %+v", rep)
		}
		for i, s := range seqs {
			if s.ID == "" {
				t.Fatalf("record %d decoded with empty id", i)
			}
			if len(s.Residues) == 0 {
				t.Fatalf("record %d (%s) decoded with no residues", i, s.ID)
			}
			if len(s.Residues) > fuzzMaxSeqLen {
				t.Fatalf("record %d (%s) exceeds cap: %d residues", i, s.ID, len(s.Residues))
			}
		}
		if len(seqs) == 0 || !fastaStable(seqs) {
			return
		}
		var buf bytes.Buffer
		if err := WriteFasta(&buf, seqs); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, rep2, err := DecodeFasta(&buf, DecodeOptions{})
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(rep2.Skipped) != 0 {
			t.Fatalf("re-decode skipped %+v of our own output", rep2.Skipped)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip lost records: %d != %d", len(back), len(seqs))
		}
		for i := range seqs {
			if back[i].ID != seqs[i].ID || !bytes.Equal(back[i].Residues, seqs[i].Residues) {
				t.Fatalf("round trip changed record %d: %+v != %+v", i, back[i], seqs[i])
			}
		}
	})
}
