package seqio

import (
	"sort"
	"sync"

	"swvec/internal/alphabet"
)

// A BatchStream produces transposed batches on demand, so a database
// search never materializes every batch at once: the §III-C
// preprocessing happens incrementally, one batch ahead of the kernels.
// Length-sorted mode sorts an index permutation of the database, not a
// copy of the sequences, and streams batches from that sorted index.
//
// Next must be called from a single goroutine (the pipeline producer);
// Recycle is safe to call concurrently from consumers, which lets the
// worker pool hand exhausted batch buffers back for reuse and keeps the
// steady-state batch path allocation-free.
type BatchStream struct {
	seqs  []Sequence
	order []int
	alpha *alphabet.Alphabet
	lanes int
	pos   int

	mu   sync.Mutex
	free []*Batch
}

// NewBatchStream prepares a stream over seqs. With SortByLength set it
// sorts only an index permutation (stable, ascending length) and
// streams batches in that order.
func NewBatchStream(seqs []Sequence, alpha *alphabet.Alphabet, opts BatchOptions) *BatchStream {
	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	if opts.SortByLength {
		sort.SliceStable(order, func(a, b int) bool {
			return seqs[order[a]].Len() < seqs[order[b]].Len()
		})
	}
	lanes := opts.Lanes
	if lanes <= 0 {
		lanes = BatchLanes
	}
	return &BatchStream{seqs: seqs, order: order, alpha: alpha, lanes: lanes}
}

// Remaining returns the number of batches the stream has yet to
// produce.
func (s *BatchStream) Remaining() int {
	return (len(s.order) - s.pos + s.lanes - 1) / s.lanes
}

// Next returns the next transposed batch, or nil when the database is
// exhausted. The caller owns the batch until it passes it to Recycle.
func (s *BatchStream) Next() *Batch {
	if s.pos >= len(s.order) {
		return nil
	}
	end := s.pos + s.lanes
	if end > len(s.order) {
		end = len(s.order)
	}
	members := s.order[s.pos:end]
	s.pos = end
	b := s.take()
	fillBatch(b, s.seqs, members, s.alpha, s.lanes)
	return b
}

// take pops a recycled batch or allocates a fresh one.
func (s *BatchStream) take() *Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return b
	}
	return &Batch{}
}

// Recycle hands a batch buffer back to the stream for reuse. The
// caller must not touch the batch afterwards.
func (s *BatchStream) Recycle(b *Batch) {
	if b == nil {
		return
	}
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

// MakeBatch builds one transposed batch of the given lane stride whose
// lanes are the database positions listed in members (at most lanes
// entries; lanes <= 0 selects BatchLanes). The rescue stage of the
// streaming search pipeline uses it to regroup saturated lanes in
// flight without copying sequences.
func MakeBatch(seqs []Sequence, members []int, alpha *alphabet.Alphabet, lanes int) *Batch {
	if lanes <= 0 {
		lanes = BatchLanes
	}
	b := &Batch{}
	fillBatch(b, seqs, members, alpha, lanes)
	return b
}

// fillBatch (re)initializes b to hold the sequences at positions
// members of seqs, reusing b's transposed buffer when its capacity
// suffices. Residues are encoded directly into the transposed layout.
func fillBatch(b *Batch, seqs []Sequence, members []int, alpha *alphabet.Alphabet, lanes int) {
	b.Count = len(members)
	b.MaxLen = 0
	b.Lanes = lanes
	for lane := range b.Index {
		b.Index[lane] = -1
		b.Lens[lane] = 0
	}
	for lane, si := range members {
		b.Index[lane] = si
		b.Lens[lane] = seqs[si].Len()
		if seqs[si].Len() > b.MaxLen {
			b.MaxLen = seqs[si].Len()
		}
	}
	need := b.MaxLen * lanes
	if cap(b.T) < need {
		b.T = make([]uint8, need)
	} else {
		b.T = b.T[:need]
	}
	for i := range b.T {
		b.T[i] = alphabet.Sentinel
	}
	for lane, si := range members {
		res := seqs[si].Residues
		for j := 0; j < len(res); j++ {
			b.T[j*lanes+lane] = alpha.Index(res[j])
		}
	}
}
