package seqio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"swvec/internal/alphabet"
)

func TestReadFastaBasic(t *testing.T) {
	src := `>sp|P1|TEST first protein
MKVLAW
GQ
>P2
ACDE
`
	seqs, err := ReadFasta(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "sp|P1|TEST" || seqs[0].Desc != "first protein" {
		t.Errorf("header parse wrong: %q %q", seqs[0].ID, seqs[0].Desc)
	}
	if string(seqs[0].Residues) != "MKVLAWGQ" {
		t.Errorf("residues = %q", seqs[0].Residues)
	}
	if seqs[1].ID != "P2" || seqs[1].Desc != "" || string(seqs[1].Residues) != "ACDE" {
		t.Errorf("second record wrong: %+v", seqs[1])
	}
}

func TestReadFastaSkipsLeadingData(t *testing.T) {
	seqs, err := ReadFasta(strings.NewReader("ACDE\n>x\nMK"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].ID != "x" {
		t.Fatalf("got %+v, want just record x", seqs)
	}
}

func TestDecodeFastaStrictRejectsLeadingData(t *testing.T) {
	if _, _, err := DecodeFasta(strings.NewReader("ACDE\n>x\nMK"), DecodeOptions{Strict: true}); err == nil {
		t.Fatal("strict decode accepted data before header")
	}
}

// TestDecodeFastaSkipsCorruptMidFile is the regression test for the
// lenient decoder: a corrupt record in the middle of a database costs
// exactly that record, and the report names it.
func TestDecodeFastaSkipsCorruptMidFile(t *testing.T) {
	src := ">ok1\nMKVL\n>\nSHOULDSKIP\n>ok2 desc\nACDE\nWYV\n>empty\n>ok3\nGG\n"
	seqs, rep, err := DecodeFasta(strings.NewReader(src), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(seqs))
	for i, s := range seqs {
		ids[i] = s.ID
	}
	if len(seqs) != 3 || ids[0] != "ok1" || ids[1] != "ok2" || ids[2] != "ok3" {
		t.Fatalf("decoded ids %v, want [ok1 ok2 ok3]", ids)
	}
	if string(seqs[1].Residues) != "ACDEWYV" {
		t.Errorf("record after corrupt one damaged: %q", seqs[1].Residues)
	}
	if rep.Records != 3 || rep.Malformed != 2 || rep.Oversized != 0 {
		t.Fatalf("report = %+v, want 3 records / 2 malformed", rep)
	}
	if len(rep.Skipped) != 2 {
		t.Fatalf("skipped = %+v", rep.Skipped)
	}
	if rep.Skipped[0].Line != 3 || rep.Skipped[0].ID != "" {
		t.Errorf("first skip = %+v, want line 3 no-id header", rep.Skipped[0])
	}
	if rep.Skipped[1].Line != 8 || rep.Skipped[1].ID != "empty" {
		t.Errorf("second skip = %+v, want line 8 empty record", rep.Skipped[1])
	}
}

func TestDecodeFastaMaxSeqLen(t *testing.T) {
	src := ">big\nMKVLAWGQ\nMKVLAWGQ\n>small\nACDE\n"
	seqs, rep, err := DecodeFasta(strings.NewReader(src), DecodeOptions{MaxSeqLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].ID != "small" {
		t.Fatalf("got %+v, want just record small", seqs)
	}
	if rep.Oversized != 1 || rep.Malformed != 0 {
		t.Fatalf("report = %+v, want 1 oversized", rep)
	}
	if rep.Skipped[0].ID != "big" || rep.Skipped[0].Line != 1 {
		t.Errorf("skip = %+v, want record big at line 1", rep.Skipped[0])
	}
}

func TestReadFastaEmpty(t *testing.T) {
	seqs, err := ReadFasta(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("got %d records, want 0", len(seqs))
	}
}

func TestFastaRoundTrip(t *testing.T) {
	g := NewGenerator(7)
	orig := g.Database(20)
	orig[3].Desc = "with description"
	var buf bytes.Buffer
	if err := WriteFasta(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("got %d records, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].ID != orig[i].ID || !bytes.Equal(back[i].Residues, orig[i].Residues) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if back[3].Desc != "with description" {
		t.Errorf("desc lost: %q", back[3].Desc)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Database(10)
	b := NewGenerator(42).Database(10)
	for i := range a {
		if !bytes.Equal(a[i].Residues, b[i].Residues) {
			t.Fatalf("sequence %d differs between identically seeded generators", i)
		}
	}
	c := NewGenerator(43).Database(10)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Residues, c[i].Residues) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestGeneratorComposition(t *testing.T) {
	g := NewGenerator(1)
	seq := g.Protein("big", 200000)
	counts := map[byte]int{}
	for _, r := range seq.Residues {
		counts[r]++
	}
	// Leucine is the most common residue (~9.7%); tryptophan the
	// rarest (~1.1%). Check the generated frequencies within 20%
	// relative tolerance.
	checks := map[byte]float64{'L': 9.66, 'W': 1.08, 'A': 8.25}
	for letter, pct := range checks {
		got := 100 * float64(counts[letter]) / float64(seq.Len())
		if math.Abs(got-pct)/pct > 0.2 {
			t.Errorf("residue %c frequency %.2f%%, want ~%.2f%%", letter, got, pct)
		}
	}
	if err := alphabet.ProteinAlphabet().Validate(seq.Residues); err != nil {
		t.Errorf("generated sequence invalid: %v", err)
	}
}

func TestGeneratorLengths(t *testing.T) {
	g := NewGenerator(2)
	db := g.Database(2000)
	var sum int64
	for i := range db {
		n := db[i].Len()
		if n < g.MinLen || n > g.MaxLen {
			t.Fatalf("length %d outside [%d,%d]", n, g.MinLen, g.MaxLen)
		}
		sum += int64(n)
	}
	mean := float64(sum) / float64(len(db))
	if mean < 250 || mean > 480 {
		t.Errorf("mean length %.0f, want ~360", mean)
	}
}

func TestRelatedPreservesHomology(t *testing.T) {
	g := NewGenerator(3)
	src := g.Protein("src", 500)
	rel := g.Related(src, "rel", 0.1, 0.02)
	if rel.Len() < 400 || rel.Len() > 600 {
		t.Errorf("related length %d drifted too far from 500", rel.Len())
	}
	// Count identical positions over the common prefix region as a
	// crude homology check: with 10% substitutions and 2% indels the
	// leading region should still be largely identical.
	n := 50
	same := 0
	for i := 0; i < n; i++ {
		if rel.Residues[i] == src.Residues[i] {
			same++
		}
	}
	if same < n/2 {
		t.Errorf("only %d/%d identities in prefix; mutation too aggressive", same, n)
	}
}

func TestStandardQueries(t *testing.T) {
	qs := StandardQueries(11)
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for i, q := range qs {
		if q.Len() != StandardQueryLengths[i] {
			t.Errorf("query %d length = %d, want %d", i, q.Len(), StandardQueryLengths[i])
		}
	}
}

func TestTotalResidues(t *testing.T) {
	seqs := []Sequence{{Residues: []byte("AB")}, {Residues: []byte("CDE")}}
	if got := TotalResidues(seqs); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
}

func TestBuildBatchesLayout(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	seqs := []Sequence{
		{ID: "a", Residues: []byte("MK")},
		{ID: "b", Residues: []byte("WYV")},
	}
	batches := BuildBatches(seqs, alpha, BatchOptions{})
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	b := batches[0]
	if b.Count != 2 || b.MaxLen != 3 {
		t.Fatalf("count/maxlen = %d/%d, want 2/3", b.Count, b.MaxLen)
	}
	col0 := b.ResidueColumn(0)
	if col0[0] != alpha.Index('M') || col0[1] != alpha.Index('W') {
		t.Errorf("column 0 = %v", col0[:2])
	}
	if col0[2] != alphabet.Sentinel {
		t.Errorf("padding lane not sentinel: %d", col0[2])
	}
	// Sequence "a" ends at j=2: its lane must be sentinel there.
	col2 := b.ResidueColumn(2)
	if col2[0] != alphabet.Sentinel {
		t.Errorf("past-end residue not sentinel: %d", col2[0])
	}
	if col2[1] != alpha.Index('V') {
		t.Errorf("col2 lane1 = %d, want V", col2[1])
	}
}

func TestBuildBatchesTransposeProperty(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(5)
	seqs := g.Database(70)
	batches := BuildBatches(seqs, alpha, BatchOptions{})
	f := func(rawBatch, rawLane, rawPos uint16) bool {
		b := batches[int(rawBatch)%len(batches)]
		lane := int(rawLane) % BatchLanes
		if b.Index[lane] < 0 {
			return true
		}
		seq := seqs[b.Index[lane]]
		j := int(rawPos) % b.MaxLen
		got := b.T[j*BatchLanes+lane]
		if j < seq.Len() {
			return got == alpha.Index(seq.Residues[j])
		}
		return got == alphabet.Sentinel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildBatchesSortByLength(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	g := NewGenerator(6)
	seqs := g.Database(128)
	sorted := BuildBatches(seqs, alpha, BatchOptions{SortByLength: true})
	unsorted := BuildBatches(seqs, alpha, BatchOptions{})
	// Sorting by length cannot increase the padded area.
	var padSorted, padUnsorted int64
	for _, b := range sorted {
		padSorted += int64(b.MaxLen)*int64(BatchLanes) - b.Cells(1)
	}
	for _, b := range unsorted {
		padUnsorted += int64(b.MaxLen)*int64(BatchLanes) - b.Cells(1)
	}
	if padSorted > padUnsorted {
		t.Errorf("sorted padding %d > unsorted %d", padSorted, padUnsorted)
	}
	// Every source sequence must appear exactly once.
	seen := map[int]bool{}
	for _, b := range sorted {
		for lane := 0; lane < BatchLanes; lane++ {
			if b.Index[lane] >= 0 {
				if seen[b.Index[lane]] {
					t.Fatalf("sequence %d batched twice", b.Index[lane])
				}
				seen[b.Index[lane]] = true
			}
		}
	}
	if len(seen) != len(seqs) {
		t.Fatalf("%d sequences batched, want %d", len(seen), len(seqs))
	}
}

func TestBatchCells(t *testing.T) {
	alpha := alphabet.ProteinAlphabet()
	seqs := []Sequence{
		{ID: "a", Residues: []byte("MK")},
		{ID: "b", Residues: []byte("WYV")},
	}
	batches := BuildBatches(seqs, alpha, BatchOptions{})
	if got := BatchedCells(batches, 10); got != 50 {
		t.Fatalf("cells = %d, want 50", got)
	}
}
