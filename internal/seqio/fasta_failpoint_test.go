//go:build failpoint

package seqio

import (
	"strings"
	"testing"

	"swvec/internal/failpoint"
)

// TestDecodeFastaFailpoint injects a fault at the per-record decode
// site: the poisoned record is skipped and reported, the rest of the
// stream decodes normally.
func TestDecodeFastaFailpoint(t *testing.T) {
	defer failpoint.DisableAll()
	if err := failpoint.Enable("seqio/fasta-record", "error(bitrot):first=1"); err != nil {
		t.Fatal(err)
	}
	seqs, rep, err := DecodeFasta(strings.NewReader(">a\nMK\n>b\nACDE\n"), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].ID != "b" {
		t.Fatalf("got %+v, want just record b", seqs)
	}
	if rep.Malformed != 1 || len(rep.Skipped) != 1 || rep.Skipped[0].ID != "a" {
		t.Fatalf("report = %+v, want record a skipped", rep)
	}
	if !strings.Contains(rep.Skipped[0].Cause, "bitrot") {
		t.Errorf("cause = %q, want injected message", rep.Skipped[0].Cause)
	}
}
