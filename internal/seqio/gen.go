package seqio

import (
	"fmt"
	"math"
	"math/rand"
)

// Swiss-Prot amino-acid background frequencies (percent), from the
// UniProtKB/Swiss-Prot release statistics. The synthetic database
// draws residues from this distribution so that substitution-matrix
// score statistics (and hence 8-bit saturation rates and score
// distributions) match real protein searches.
var swissProtFreq = map[byte]float64{
	'A': 8.25, 'R': 5.53, 'N': 4.06, 'D': 5.45, 'C': 1.38,
	'Q': 3.93, 'E': 6.75, 'G': 7.07, 'H': 2.27, 'I': 5.96,
	'L': 9.66, 'K': 5.84, 'M': 2.42, 'F': 3.86, 'P': 4.70,
	'S': 6.56, 'T': 5.34, 'W': 1.08, 'Y': 2.92, 'V': 6.87,
}

// Generator produces deterministic synthetic protein sequences with
// Swiss-Prot-like composition and length statistics. It substitutes
// for the UniProtKB/Swiss-Prot download the paper searches: the paper
// notes that only size-dependent behaviour matters for its
// measurements, so a size- and composition-matched synthetic corpus
// exercises identical code paths.
type Generator struct {
	rng     *rand.Rand
	letters []byte
	// cum is the cumulative residue distribution aligned with letters.
	cum []float64
	// MeanLen and SigmaLn parameterize the log-normal length
	// distribution. Swiss-Prot's mean protein length is ~360 aa; a
	// log-sigma of 0.62 matches its long right tail.
	MeanLen float64
	SigmaLn float64
	// MinLen and MaxLen clip the sampled lengths.
	MinLen, MaxLen int
}

// NewGenerator returns a generator seeded with seed. The same seed
// always yields the same sequences.
func NewGenerator(seed int64) *Generator {
	g := &Generator{
		rng:     rand.New(rand.NewSource(seed)),
		MeanLen: 360,
		SigmaLn: 0.62,
		MinLen:  25,
		MaxLen:  35000,
	}
	var total float64
	for _, l := range []byte("ARNDCQEGHILKMFPSTWYV") {
		g.letters = append(g.letters, l)
		total += swissProtFreq[l]
		g.cum = append(g.cum, total)
	}
	for i := range g.cum {
		g.cum[i] /= total
	}
	return g
}

// residue samples one residue letter from the background distribution.
func (g *Generator) residue() byte {
	x := g.rng.Float64()
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.letters[lo]
}

// length samples a protein length from the log-normal model.
func (g *Generator) length() int {
	// The log-normal location parameter that yields the requested mean:
	// mean = exp(mu + sigma^2/2).
	mu := math.Log(g.MeanLen) - g.SigmaLn*g.SigmaLn/2
	n := int(math.Round(math.Exp(mu + g.SigmaLn*g.rng.NormFloat64())))
	if n < g.MinLen {
		n = g.MinLen
	}
	if n > g.MaxLen {
		n = g.MaxLen
	}
	return n
}

// Protein generates one synthetic protein of exactly n residues.
func (g *Generator) Protein(id string, n int) Sequence {
	res := make([]byte, n)
	for i := range res {
		res[i] = g.residue()
	}
	return Sequence{ID: id, Residues: res}
}

// Database generates count synthetic proteins with sampled lengths.
func (g *Generator) Database(count int) []Sequence {
	seqs := make([]Sequence, count)
	for i := range seqs {
		n := g.length()
		seqs[i] = g.Protein(fmt.Sprintf("SYN%06d", i), n)
	}
	return seqs
}

// Related generates a mutated copy of src: each residue is substituted
// with probability subRate, and short indels are introduced with
// probability indelRate per position. Used to create query/database
// pairs with genuine homology so local alignments are non-trivial.
func (g *Generator) Related(src Sequence, id string, subRate, indelRate float64) Sequence {
	out := make([]byte, 0, src.Len()+8)
	for _, r := range src.Residues {
		switch {
		case g.rng.Float64() < indelRate:
			if g.rng.Intn(2) == 0 {
				continue // deletion
			}
			out = append(out, g.residue(), r) // insertion
		case g.rng.Float64() < subRate:
			out = append(out, g.residue())
		default:
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = append(out, g.residue())
	}
	return Sequence{ID: id, Residues: out}
}

// StandardQueryLengths are the ten query sizes used throughout the
// evaluation, spanning the "few dozen to thousands" range the paper
// describes for protein queries.
var StandardQueryLengths = []int{35, 64, 110, 190, 320, 511, 850, 1500, 2500, 5000}

// StandardQueries generates the paper's 10-protein query set: ten
// synthetic proteins at the standard lengths, deterministic in seed.
func StandardQueries(seed int64) []Sequence {
	g := NewGenerator(seed)
	out := make([]Sequence, len(StandardQueryLengths))
	for i, n := range StandardQueryLengths {
		out[i] = g.Protein(fmt.Sprintf("QRY%02d_len%d", i, n), n)
	}
	return out
}
