package core

import (
	"bytes"

	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// This file is the generic modeled implementation of the striped
// kernel family (Farrar 2007): the query is split into Lanes()
// segments of segLen positions, lane l of vector t holding position
// t + l*segLen, so the inner loop has no lane-crossing dependency and
// the column-to-column H dependency is a single lane rotate. The
// speculative column pass assumes F contributes nothing across stripe
// boundaries; the correction step then repairs the columns where that
// was wrong, either with the classic data-dependent lazy-F loop
// (KernelStriped) or with Snytsar's deconstruction (KernelLazyF): a
// log2(lanes)-step weighted prefix-max scan computes every lane's
// incoming F carry at once, followed by at most one merge sweep.
//
// Both correction variants write bit-identical H rows: the classic
// loop applies, for lane l at stripe t, the corrections
// vFexit(l-1-k) - k*segLen*ext - t*ext over iterations k, and the scan
// computes max_k(vFexit(l-1-k) - k*segLen*ext) in closed form before
// the same per-stripe ext decay. Both variants refresh the stored E
// row from every corrected H (max with the new H-open), so the next
// column's inputs agree with the exact recurrence cell for cell, and
// saturating clamps keep every over-decayed carry at or below zero,
// where max(H, carry) is inert (H >= 0 throughout). That is what
// FuzzKernelsVsDiagonal and TestStripedEquivalence lean on.
//
// The family serves the affine gap model only: with linear gaps
// (Open == Extend) the classic loop's exit test goes non-strict and
// the carry can outlive it, so the entry points route linear-gap calls
// to the diagonal kernel's dedicated linear variant instead.
//
// The family is score-only: no traceback, no end positions (EndQ/EndD
// are -1, like the batch engines). Entry points route around it when a
// caller asks for positions.

// stripedState is the striped family's per-element-width scratch: the
// cached striped query profile and the H/E column rows. It serves both
// the modeled generic kernel and the native specializations, so a
// backend switch reuses the same profile.
type stripedState[E vek.Elem] struct {
	// prof is the flat striped profile: prof[(c*segLen+t)*lanes + l]
	// is the score of query position t + l*segLen against residue code
	// c, SentinelScore for padding positions past the query end.
	prof      []E
	profMat   *submat.Matrix
	profQuery []uint8
	profGaps  aln.Gaps
	profLanes int
	segLen    int
	// hStore/hLoad/eRow are the column state, flattened stripe-major
	// with the engine's lane stride (segLen*lanes entries).
	hStore, hLoad, eRow []E
}

// stripedState8 returns the scratch's 8-bit striped state, or a
// per-call one for a nil scratch.
func stripedState8(s *Scratch) *stripedState[int8] {
	if s == nil {
		return &stripedState[int8]{}
	}
	return &s.sp8
}

// stripedState16 is stripedState8 for the 16-bit family.
func stripedState16(s *Scratch) *stripedState[int16] {
	if s == nil {
		return &stripedState[int16]{}
	}
	return &s.sp16
}

// stripedProfileFor returns the striped query profile for
// (mat, q, gaps, lanes), serving it from st's cache when the previous
// call matches. The same key discipline as profile8For: the query is
// compared by value and cached privately, and the gap penalties are
// part of the key so a stale profile can never outlive a gap change.
// Both backends share this builder, so switching backends keeps the
// cache warm.
func stripedProfileFor[E vek.Elem](st *stripedState[E], s *Scratch, mat *submat.Matrix, q []uint8, g aln.Gaps, lanes int) (prof []E, segLen int) {
	if st.prof != nil && st.profMat == mat && st.profLanes == lanes && st.profGaps == g && bytes.Equal(st.profQuery, q) {
		if s != nil {
			s.profileHits++
		}
		return st.prof, st.segLen
	}
	m := len(q)
	segLen = (m + lanes - 1) / lanes
	need := submat.W * segLen * lanes
	if cap(st.prof) < need {
		//swlint:ignore hotpathalloc cache-miss path: repeated queries (the server steady state) hit the cache above
		st.prof = make([]E, need)
	}
	st.prof = st.prof[:need]
	for c := 0; c < submat.W; c++ {
		for t := 0; t < segLen; t++ {
			base := (c*segLen + t) * lanes
			for l := 0; l < lanes; l++ {
				pos := t + l*segLen
				if pos < m {
					st.prof[base+l] = E(mat.Score(q[pos], uint8(c)))
				} else {
					st.prof[base+l] = E(submat.SentinelScore)
				}
			}
		}
	}
	st.profMat = mat
	st.profGaps = g
	st.profLanes = lanes
	st.segLen = segLen
	//swlint:ignore hotpathalloc cache-miss path: repeated queries (the server steady state) hit the cache above
	st.profQuery = append(st.profQuery[:0], q...)
	return st.prof, segLen
}

// alignStriped runs the modeled striped kernel over one engine
// instantiation, returning the score, end positions (-1: score-only),
// and the saturation flag. opt.Kernel picks the correction variant.
//
//sw:hotpath
func alignStriped[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt *PairOptions, st *stripedState[E]) aln.ScoreResult {
	lanes := eng.Lanes()
	prof, segLen := stripedProfileFor(st, opt.Scratch, mat, q, opt.Gaps, lanes)
	rows := segLen * lanes
	neg := eng.NegInf()
	hStore := bufE(&st.hStore, rows, 0)
	hLoad := bufE(&st.hLoad, rows, 0)
	eRow := bufE(&st.eRow, rows, neg)
	// One-time profile/sequence preparation, charged as scalar work —
	// the same discipline as initPairState.
	mch.T.Add(vek.OpScalarStore, eng.Width(), uint64(len(q)+len(dseq)))

	openV := eng.Splat(mch, eng.Clamp(opt.Gaps.Open))
	extV := eng.Splat(mch, eng.Clamp(opt.Gaps.Extend))
	zeroV := eng.Zero(mch)
	negV := eng.Splat(mch, neg)
	vMax := eng.Zero(mch)
	decon := opt.Kernel == KernelLazyF

	for j := 0; j < len(dseq); j++ {
		profRow := prof[int(dseq[j])*rows : (int(dseq[j])+1)*rows]
		// The previous column's last stripe, rotated one lane up: lane
		// l's stripe 0 depends on lane l-1's last position.
		vH := eng.ShiftIn(mch, eng.Load(mch, hStore[(segLen-1)*lanes:]), 1, 0)
		hStore, hLoad = hLoad, hStore
		vF := negV
		for t := 0; t < segLen; t++ {
			off := t * lanes
			vH = eng.AddSat(mch, vH, eng.Load(mch, profRow[off:]))
			vE := eng.Load(mch, eRow[off:])
			vH = eng.Max(mch, vH, vE)
			vH = eng.Max(mch, vH, vF)
			vH = eng.Max(mch, vH, zeroV)
			vMax = eng.Max(mch, vMax, vH)
			eng.Store(mch, hStore[off:], vH)
			vHGap := eng.SubSat(mch, vH, openV)
			vE = eng.Max(mch, eng.SubSat(mch, vE, extV), vHGap)
			eng.Store(mch, eRow[off:], vE)
			vF = eng.Max(mch, eng.SubSat(mch, vF, extV), vHGap)
			vH = eng.Load(mch, hLoad[off:])
		}
		if decon {
			vMax = stripedScanCorrect(eng, mch, hStore, eRow, segLen, lanes, vF, vMax, openV, extV, zeroV, opt.Gaps)
		} else {
			vMax = stripedLazyCorrect(eng, mch, hStore, eRow, segLen, lanes, vF, vMax, openV, extV)
		}
	}
	best := int32(eng.ReduceMax(mch, vMax))
	res := aln.ScoreResult{Score: best, EndQ: -1, EndD: -1}
	if best >= eng.SatCeil() {
		res.Saturated = true
	}
	// Keep the swapped row ownership in the state so the buffers are
	// reused, whichever slice header ended up in which role.
	st.hStore, st.hLoad, st.eRow = hStore, hLoad, eRow
	return res
}

// stripedLazyCorrect is the classic Farrar lazy-F loop: re-sweep the
// column with F carried across stripe boundaries until no lane's F can
// still raise an H-open gap anywhere — usually zero or one iteration.
// Raised H cells also refresh the stored E row (max with the new
// H-open), keeping the next column's E inputs exact even when a
// deletion-adjacent insertion is optimal (tiny gap-open penalties);
// unraised cells make that a no-op because the speculative pass
// already stored E >= H-open.
//
//sw:hotpath
func stripedLazyCorrect[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, hStore, eRow []E, segLen, lanes int, vF, vMax, openV, extV V) V {
	neg := eng.NegInf()
	for k := 0; k < lanes; k++ {
		vF = eng.ShiftIn(mch, vF, 1, neg)
		for t := 0; t < segLen; t++ {
			off := t * lanes
			vH := eng.Load(mch, hStore[off:])
			vH = eng.Max(mch, vH, vF)
			eng.Store(mch, hStore[off:], vH)
			vMax = eng.Max(mch, vMax, vH)
			vHGap := eng.SubSat(mch, vH, openV)
			vE := eng.Max(mch, eng.Load(mch, eRow[off:]), vHGap)
			eng.Store(mch, eRow[off:], vE)
			vF = eng.SubSat(mch, vF, extV)
			if eng.MoveMask(mch, eng.CmpGt(mch, vF, vHGap)) == 0 {
				return vMax
			}
		}
	}
	return vMax
}

// stripedScanCorrect is Snytsar's deconstructed lazy-F: the incoming F
// carry of every lane's stripe 0 is the weighted prefix-max
// c(l) = max_k(vFexit(l-1-k) - k*segLen*ext), computed in log2(lanes)
// shift-subtract-max steps; if any carry can still beat zero, one
// merge sweep folds it into the stored column with the usual per-
// stripe ext decay. Over-decayed carries saturate at or below zero and
// are inert (H >= 0), so the single sweep is exact — see the file
// comment.
//
//sw:hotpath
func stripedScanCorrect[V any, E vek.Elem, En vek.Engine[V, E]](eng En, mch vek.Machine, hStore, eRow []E, segLen, lanes int, vF, vMax, openV, extV, zeroV V, g aln.Gaps) V {
	neg := eng.NegInf()
	c := eng.ShiftIn(mch, vF, 1, neg)
	d := int32(segLen) * g.Extend
	for s := 1; s < lanes; s <<= 1 {
		decV := eng.Splat(mch, eng.Clamp(int32(s)*d))
		shifted := eng.ShiftIn(mch, c, s, neg)
		c = eng.Max(mch, c, eng.SubSat(mch, shifted, decV))
	}
	if eng.MoveMask(mch, eng.CmpGt(mch, c, zeroV)) == 0 {
		return vMax
	}
	for t := 0; t < segLen; t++ {
		off := t * lanes
		vH := eng.Load(mch, hStore[off:])
		vH = eng.Max(mch, vH, c)
		eng.Store(mch, hStore[off:], vH)
		vMax = eng.Max(mch, vMax, vH)
		// Same E refresh as the classic loop: raised cells feed the next
		// column's E through the corrected H.
		vHGap := eng.SubSat(mch, vH, openV)
		vE := eng.Max(mch, eng.Load(mch, eRow[off:]), vHGap)
		eng.Store(mch, eRow[off:], vE)
		c = eng.SubSat(mch, c, extV)
	}
	return vMax
}
