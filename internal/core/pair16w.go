package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes16w is the lane count of the 512-bit 16-bit kernel.
const lanes16w = 32

// AlignPair16W is the AVX-512 build of the wavefront kernel: identical
// structure to AlignPair16 but 32 16-bit lanes per issue, wide gathers
// and wide saturating arithmetic — the same generic engine instantiated
// at I16x32. It exists for the Fig. 6 comparison: half the instruction
// count per cell, but the architecture models apply AVX-512 frequency
// licenses and port costs, so the end-to-end speedup stays well under
// 2x (score-only; traceback uses the 256-bit kernel).
func AlignPair16W(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	if err := checkPair(q, dseq, &opt); err != nil {
		return aln.ScoreResult{EndQ: -1, EndD: -1}, err
	}
	// Score-only wide build: always the affine kernel with padded
	// tails, no traceback or position tracking.
	opt.Traceback = false
	opt.TrackPosition = false
	opt.EagerMax = false
	opt.RowMajorLayout = false
	opt.ScalarTail = false
	if opt.Kernel.Striped() && !opt.Gaps.IsLinear() {
		if opt.Backend == BackendNative {
			return nativeStripedPair16(q, dseq, mat, &opt, vek.E16x32{}.Lanes()), nil
		}
		return alignStriped[vek.I16x32, int16](vek.E16x32{}, mch, q, dseq, mat, &opt, stripedState16(opt.Scratch)), nil
	}
	if opt.Backend == BackendNative {
		return nativePair16(q, dseq, mat, &opt), nil
	}
	bufs := &pairBufs[int16]{}
	if opt.Scratch != nil {
		bufs = &opt.Scratch.pair16
	}
	res, _, err := alignPairAffine[vek.I16x32, int16](vek.E16x32{}, mch, q, dseq, mat, opt, bufs)
	return res, err
}
