package core

import (
	"swvec/internal/aln"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// lanes16w is the lane count of the 512-bit 16-bit kernel.
const lanes16w = 32

// AlignPair16W is the AVX-512 build of the wavefront kernel: identical
// structure to AlignPair16 but 32 16-bit lanes per issue, wide gathers
// and wide saturating arithmetic. It exists for the Fig. 6 comparison:
// half the instruction count per cell, but the architecture models
// apply AVX-512 frequency licenses and port costs, so the end-to-end
// speedup stays well under 2x (score-only; traceback uses the 256-bit
// kernel).
func AlignPair16W(mch vek.Machine, q, dseq []uint8, mat *submat.Matrix, opt PairOptions) (aln.ScoreResult, error) {
	res := aln.ScoreResult{EndQ: -1, EndD: -1}
	if err := checkPair(q, dseq, &opt); err != nil {
		return res, err
	}
	m, n := len(q), len(dseq)
	st := newPairState16Lanes(mch, q, dseq, mat, lanes16w)
	trk := newTracker(mch, false)
	open16 := int16(clampI32(opt.Gaps.Open, 32767))
	ext16 := int16(clampI32(opt.Gaps.Extend, 32767))
	openV := mch.Splat16W(open16)
	extV := mch.Splat16W(ext16)
	zeroV := mch.Zero16W()
	vMax := zeroV
	thr := opt.scalarThreshold(lanes16w)

	for d := 2; d <= m+n; d++ {
		lo, hi := diagBounds(d, m, n)
		if hi-lo+1 < thr {
			for i := lo; i <= hi; i++ {
				st.scalarCellAffine(mch, q, dseq, mat, &opt, trk, nil, d, i, lo)
			}
			st.rotate(mch, d)
			continue
		}
		r := lo
		for ; r+lanes16w <= hi+1; r += lanes16w {
			t0 := n - d + r
			// Four 8-lane index loads per 16 lanes; two wide gathers
			// cover all 32 lanes.
			iqA := mch.Load32(st.qMul[r-1:])
			iqB := mch.Load32(st.qMul[r+7:])
			iqC := mch.Load32(st.qMul[r+15:])
			iqD := mch.Load32(st.qMul[r+23:])
			idA := mch.Load32(st.dRev[t0:])
			idB := mch.Load32(st.dRev[t0+8:])
			idC := mch.Load32(st.dRev[t0+16:])
			idD := mch.Load32(st.dRev[t0+24:])
			gA, gB := mch.Gather32W(st.flat, mch.Add32(iqA, idA), mch.Add32(iqB, idB))
			gC, gD := mch.Gather32W(st.flat, mch.Add32(iqC, idC), mch.Add32(iqD, idD))
			score := vek.I16x32{Lo: mch.Narrow32To16(gA, gB), Hi: mch.Narrow32To16(gC, gD)}

			up := mch.Load16WPartial(st.hPrev[r-1 : r-1+lanes16w])
			left := mch.Load16WPartial(st.hPrev[r : r+lanes16w])
			diagv := mch.Load16WPartial(st.hPrev2[r-1 : r-1+lanes16w])
			eIn := mch.Load16WPartial(st.ePrev[r : r+lanes16w])
			fIn := mch.Load16WPartial(st.fPrev[r-1 : r-1+lanes16w])

			e := mch.Max16W(mch.SubSat16W(eIn, extV), mch.SubSat16W(left, openV))
			f := mch.Max16W(mch.SubSat16W(fIn, extV), mch.SubSat16W(up, openV))
			h := mch.AddSat16W(diagv, score)
			h = mch.Max16W(h, zeroV)
			h = mch.Max16W(h, e)
			h = mch.Max16W(h, f)

			mch.Store16WPartial(st.hCur[r:r+lanes16w], h)
			mch.Store16WPartial(st.eCur[r:r+lanes16w], e)
			mch.Store16WPartial(st.fCur[r:r+lanes16w], f)
			vMax = mch.Max16W(vMax, h)
		}
		if valid := hi - r + 1; valid > 0 {
			// AVX-512 has native lane masking, so the tail is a single
			// masked step rather than a scalar loop.
			t0 := n - d + r
			iqA := mch.Load32Partial(clip32(st.qMul, r-1, valid))
			iqB := mch.Load32Partial(clip32(st.qMul, r+7, valid-8))
			iqC := mch.Load32Partial(clip32(st.qMul, r+15, valid-16))
			iqD := mch.Load32Partial(clip32(st.qMul, r+23, valid-24))
			idA := mch.Load32Partial(clip32(st.dRev, t0, valid))
			idB := mch.Load32Partial(clip32(st.dRev, t0+8, valid-8))
			idC := mch.Load32Partial(clip32(st.dRev, t0+16, valid-16))
			idD := mch.Load32Partial(clip32(st.dRev, t0+24, valid-24))
			gA, gB := mch.Gather32W(st.flat, mch.Add32(iqA, idA), mch.Add32(iqB, idB))
			gC, gD := mch.Gather32W(st.flat, mch.Add32(iqC, idC), mch.Add32(iqD, idD))
			score := vek.I16x32{Lo: mch.Narrow32To16(gA, gB), Hi: mch.Narrow32To16(gC, gD)}

			up := mch.Load16WPartial(st.hPrev[r-1 : r-1+valid])
			left := mch.Load16WPartial(st.hPrev[r : r+valid])
			diagv := mch.Load16WPartial(st.hPrev2[r-1 : r-1+valid])
			eIn := mch.Load16WPartial(st.ePrev[r : r+lanes16w])
			fIn := mch.Load16WPartial(st.fPrev[r-1 : r-1+lanes16w])

			e := mch.Max16W(mch.SubSat16W(eIn, extV), mch.SubSat16W(left, openV))
			f := mch.Max16W(mch.SubSat16W(fIn, extV), mch.SubSat16W(up, openV))
			h := mch.AddSat16W(diagv, score)
			h = mch.Max16W(h, zeroV)
			h = mch.Max16W(h, e)
			h = mch.Max16W(h, f)

			mch.Store16WPartial(st.hCur[r:r+valid], h)
			mch.Store16WPartial(st.eCur[r:r+valid], e)
			mch.Store16WPartial(st.fCur[r:r+valid], f)
			// Mask the padded lanes before folding into the maximum.
			hMasked := h
			for l := valid; l < lanes16w; l++ {
				if l < 16 {
					hMasked.Lo[l] = 0
				} else {
					hMasked.Hi[l-16] = 0
				}
			}
			mch.T.Add(vek.OpLogic, vek.W512, 1)
			vMax = mch.Max16W(vMax, hMasked)
		}
		st.rotate(mch, d)
	}
	best := int32(mch.ReduceMax16W(vMax))
	if trk.best > best {
		best = trk.best
	}
	res.Score = best
	if best >= int32(sat16) {
		res.Saturated = true
	}
	if best == 0 {
		res.EndQ, res.EndD = -1, -1
	}
	return res, nil
}
