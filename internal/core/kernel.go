package core

import "fmt"

// Kernel selects which kernel family computes an alignment.
//
// The diagonal family is the paper's anti-diagonal wavefront kernel —
// the apparatus every figure instruments. The striped family is
// Farrar's segmented-query layout: KernelStriped runs the classic
// speculative column pass with the data-dependent lazy-F correction
// loop, KernelLazyF runs Snytsar's deconstructed variant that replaces
// the loop with a fixed-cost weighted prefix-max scan plus one merge
// sweep. All three families produce bit-identical scores and
// saturation flags (enforced by FuzzKernelsVsDiagonal and the
// equivalence suite), so the planner is free to pick per query.
type Kernel uint8

const (
	// KernelAuto lets the caller's layer pick: the search scheduler's
	// planner resolves it per query shape (see sched.Options); the core
	// entry points treat it as Diagonal, keeping the paper kernel the
	// default for direct callers.
	KernelAuto Kernel = iota
	// KernelDiagonal runs the anti-diagonal wavefront kernel.
	KernelDiagonal
	// KernelStriped runs Farrar's striped kernel with the classic
	// lazy-F correction loop.
	KernelStriped
	// KernelLazyF runs the striped kernel with Snytsar's deconstructed
	// lazy-F correction (prefix-max scan instead of the loop).
	KernelLazyF
)

// Striped reports whether k is a member of the striped family (either
// correction variant).
func (k Kernel) Striped() bool {
	return k == KernelStriped || k == KernelLazyF
}

// String returns the flag-style name of the kernel family.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelDiagonal:
		return "diagonal"
	case KernelStriped:
		return "striped"
	case KernelLazyF:
		return "lazyf"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// ParseKernel parses a flag-style kernel name ("auto", "diagonal",
// "striped", "lazyf"; the empty string means auto).
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "diagonal", "diag":
		return KernelDiagonal, nil
	case "striped":
		return KernelStriped, nil
	case "lazyf", "lazy-f":
		return KernelLazyF, nil
	}
	return KernelAuto, fmt.Errorf("core: unknown kernel %q (want auto, diagonal, striped, or lazyf)", s)
}
