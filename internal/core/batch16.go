package core

import (
	"fmt"

	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// AlignBatch16 is the 16-bit interleaved batch engine: the same
// one-sequence-per-lane structure as AlignBatch8 at 16-bit precision
// (two I16x16 halves per 32-lane batch column). It is the staged
// rescue tier for database search — sequences whose 8-bit scores
// saturate are regrouped into batches and rescored here, keeping the
// rescue throughput-oriented instead of falling back to per-pair
// kernels (the production pattern of SWIPE-style engines).
//
// Substitution scores come from the same shuffle tables as the 8-bit
// engine, widened per column; scores saturate at 32767 (flagged for
// the 32-bit pair kernel).
func AlignBatch16(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) (BatchResult, error) {
	var res BatchResult
	if err := opt.Gaps.Validate(); err != nil {
		return res, err
	}
	if len(query) == 0 {
		return res, fmt.Errorf("core: empty query")
	}
	if batch.MaxLen == 0 || batch.Count == 0 {
		return res, fmt.Errorf("core: empty batch")
	}
	m, n := len(query), batch.MaxLen
	s := opt.Scratch
	if s == nil {
		s = &Scratch{}
	}
	t8 := s.codes(batch.T)

	openV := mch.Splat16(int16(clampI32(opt.Gaps.Open, 32767)))
	extV := mch.Splat16(int16(clampI32(opt.Gaps.Extend, 32767)))
	zeroV := mch.Zero16()
	negV := mch.Splat16(negInf16)
	linear := opt.Gaps.IsLinear()

	// Column state: two 16-lane halves per batch column, stride 32.
	hRow, fRow := s.rows16(n, linear)
	type carry struct{ e, hLeft, hDiag vek.I16x16 }
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(2*n))

	var vMax [2]vek.I16x16

	for i := 0; i < m; i++ {
		var c [2]carry
		c[0].e, c[1].e = negV, negV
		for j := 0; j < n; j++ {
			off := j * lanes8
			// One shuffle lookup yields all 32 int8 scores; widen per
			// half.
			idx := mch.Load8(t8[off:])
			s8 := tables.LookupScores(mch, query[i], idx)
			for half := 0; half < 2; half++ {
				score := mch.Widen8To16(s8, half)
				hOff := off + half*16
				hUp := mch.Load16(hRow[hOff:])
				var h vek.I16x16
				if linear {
					h = mch.AddSat16(c[half].hDiag, score)
					h = mch.Max16(h, zeroV)
					h = mch.Max16(h, mch.SubSat16(c[half].hLeft, extV))
					h = mch.Max16(h, mch.SubSat16(hUp, extV))
				} else {
					fIn := mch.Load16(fRow[hOff:])
					f := mch.Max16(mch.SubSat16(fIn, extV), mch.SubSat16(hUp, openV))
					c[half].e = mch.Max16(mch.SubSat16(c[half].e, extV), mch.SubSat16(c[half].hLeft, openV))
					h = mch.AddSat16(c[half].hDiag, score)
					h = mch.Max16(h, zeroV)
					h = mch.Max16(h, c[half].e)
					h = mch.Max16(h, f)
					mch.Store16(fRow[hOff:], f)
				}
				mch.Store16(hRow[hOff:], h)
				vMax[half] = mch.Max16(vMax[half], h)
				c[half].hDiag = hUp
				c[half].hLeft = h
			}
		}
	}
	mch.T.Add(vek.OpReduce, vek.W256, 2)
	mch.T.Add(vek.OpScalar, vek.W256, lanes8)
	for lane := 0; lane < batch.Count; lane++ {
		half, l := lane/16, lane%16
		v := int32(vMax[half][l])
		res.Scores[lane] = v
		if v >= int32(sat16) {
			res.Saturated[lane] = true
		}
	}
	return res, nil
}
