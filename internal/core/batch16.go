package core

import (
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// AlignBatch16 is the 16-bit interleaved batch engine: the same
// one-sequence-per-lane structure as AlignBatch8 at 16-bit precision
// (two widened registers per batch column). It is the staged rescue
// tier for database search — sequences whose 8-bit scores saturate are
// regrouped into batches and rescored here, keeping the rescue
// throughput-oriented instead of falling back to per-pair kernels (the
// production pattern of SWIPE-style engines). A 32-lane batch runs on
// the 256-bit engine, a 64-lane batch on the 512-bit one.
//
// Substitution scores come from the same shuffle tables as the 8-bit
// engine, widened per column; scores saturate at 32767 (flagged for
// the 32-bit pair kernel).
func AlignBatch16(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) (BatchResult, error) {
	if stripedBatchOK(tables, &opt) {
		var res BatchResult
		if err := checkBatch([][]uint8{query}, batch, &opt); err != nil {
			return res, err
		}
		err := stripedBatch16(mch, query, tables, batch, &opt, &res)
		return res, err
	}
	if useNativeBatch(tables, &opt) {
		var res BatchResult
		if err := checkBatch([][]uint8{query}, batch, &opt); err != nil {
			return res, err
		}
		s := batchScratchOrLocal(&opt)
		nativeBatch16(query, tables, batch, &opt, s, &res)
		return res, nil
	}
	if batch.Stride() == seqio.MaxBatchLanes {
		return alignBatch[vek.I16x32, int16](be16x32{}, mch, query, tables, batch, opt)
	}
	return alignBatch[vek.I16x16, int16](be16x16{}, mch, query, tables, batch, opt)
}
