package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// The native backend must be bit-identical to the modeled machine:
// same scores, same saturation flags, same hit positions, for every
// entry point, width, matrix family, and gap model. These tests run
// every case through both backends and compare the full results, so
// any drift in the compiled kernels fails loudly rather than skewing
// search output.

// nativeMatrices is the matrix families the kernels special-case:
// full substitution (gather/profile scoring), fixed match/mismatch
// (compare-and-blend), and the DNA default (different alphabet size).
func nativeMatrices() []*submat.Matrix {
	return []*submat.Matrix{
		submat.Blosum62(),
		submat.MatchMismatch(protAlpha, 2, -1),
		submat.DNADefault(),
	}
}

// nativeGaps is the gap models under test: the protein default, a
// cheap-open affine model, and a linear model (Open == Extend), which
// exercises the reduced modeled kernels against the native backend's
// single affine recurrence.
func nativeGaps() []aln.Gaps {
	return []aln.Gaps{
		{Open: 11, Extend: 1},
		{Open: 5, Extend: 1},
		aln.Linear(2),
	}
}

func comparePairResults(t *testing.T, name string, mod, nat aln.ScoreResult) {
	t.Helper()
	if mod != nat {
		t.Errorf("%s: modeled %+v != native %+v", name, mod, nat)
	}
}

// checkPairBackends runs one (q, d, mat, gaps) case through every pair
// entry point on both backends and requires identical results.
func checkPairBackends(t *testing.T, q, d []uint8, mat *submat.Matrix, gaps aln.Gaps) {
	t.Helper()
	type pairFn struct {
		name string
		run  func(PairOptions) (aln.ScoreResult, error)
	}
	fns := []pairFn{
		{"pair8", func(o PairOptions) (aln.ScoreResult, error) {
			return AlignPair8(vek.Bare, q, d, mat, o)
		}},
		{"pair8w", func(o PairOptions) (aln.ScoreResult, error) {
			return AlignPair8W(vek.Bare, q, d, mat, o)
		}},
		{"pair16", func(o PairOptions) (aln.ScoreResult, error) {
			r, _, err := AlignPair16(vek.Bare, q, d, mat, o)
			return r, err
		}},
		{"pair16pos", func(o PairOptions) (aln.ScoreResult, error) {
			o.TrackPosition = true
			r, _, err := AlignPair16(vek.Bare, q, d, mat, o)
			return r, err
		}},
		{"pair16w", func(o PairOptions) (aln.ScoreResult, error) {
			return AlignPair16W(vek.Bare, q, d, mat, o)
		}},
		{"pair32", func(o PairOptions) (aln.ScoreResult, error) {
			return AlignPair32(vek.Bare, q, d, mat, o)
		}},
		{"adaptive", func(o PairOptions) (aln.ScoreResult, error) {
			r, _, err := AlignPairAdaptive(vek.Bare, q, d, mat, o)
			return r, err
		}},
	}
	for _, fn := range fns {
		mod, err := fn.run(PairOptions{Gaps: gaps, Backend: BackendModeled})
		if err != nil {
			t.Fatalf("%s modeled: %v", fn.name, err)
		}
		nat, err := fn.run(PairOptions{Gaps: gaps, Backend: BackendNative})
		if err != nil {
			t.Fatalf("%s native: %v", fn.name, err)
		}
		comparePairResults(t, fn.name, mod, nat)
	}
}

func TestNativePairMatchesModeled(t *testing.T) {
	g := seqio.NewGenerator(301)
	for _, mat := range nativeMatrices() {
		alpha := mat.Alphabet()
		for _, gaps := range nativeGaps() {
			for trial := 0; trial < 12; trial++ {
				qlen := 1 + trial*29%230
				dlen := 1 + trial*41%310
				q := g.Protein("q", qlen).Encode(protAlpha)
				d := g.Protein("d", dlen).Encode(protAlpha)
				// Re-map codes into the matrix's alphabet range so the
				// DNA matrix sees valid input.
				for i := range q {
					q[i] %= uint8(alpha.Size())
				}
				for i := range d {
					d[i] %= uint8(alpha.Size())
				}
				checkPairBackends(t, q, d, mat, gaps)
			}
		}
	}
}

// TestNativePairRelated drives long, high-identity pairs through both
// backends: these saturate the 8-bit tier and score high in the 16-bit
// one, so the saturation flags and the escalation ladder must agree.
func TestNativePairRelated(t *testing.T) {
	g := seqio.NewGenerator(302)
	for trial := 0; trial < 6; trial++ {
		src := g.Protein("src", 300+trial*200)
		rel := g.Related(src, "rel", 0.1, 0.02)
		q := src.Encode(protAlpha)
		d := rel.Encode(protAlpha)
		checkPairBackends(t, q, d, b62, aln.DefaultGaps())
	}
}

// TestNativePairPositionTiebreak pins the modeled tracker's tie-break
// (smallest anti-diagonal, then smallest row, -1/-1 on a zero score)
// against the native position kernel on directed cases.
func TestNativePairPositionTiebreak(t *testing.T) {
	cases := []struct{ q, d string }{
		{"MKVLAW", "MKVLAW"},
		{"AAAA", "AAAA"},     // many equal-scoring cells
		{"AWAWAW", "WAWAWA"}, // repeated motif, diagonal ties
		{"MKV", "QQQ"},       // zero score: positions must be -1/-1
	}
	for _, c := range cases {
		q, d := enc(c.q), enc(c.d)
		opt := PairOptions{Gaps: aln.DefaultGaps(), TrackPosition: true}
		opt.Backend = BackendModeled
		mod, _, err := AlignPair16(vek.Bare, q, d, b62, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Backend = BackendNative
		nat, _, err := AlignPair16(vek.Bare, q, d, b62, opt)
		if err != nil {
			t.Fatal(err)
		}
		comparePairResults(t, "pair16pos "+c.q+"/"+c.d, mod, nat)
	}
}

// checkBatchBackends aligns one query against one batch at 8 and 16
// bits on both backends and requires identical score and saturation
// arrays (all lanes, padding included).
func checkBatchBackends(t *testing.T, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, gaps aln.Gaps) {
	t.Helper()
	for _, width := range []struct {
		name string
		run  func(BatchOptions) (BatchResult, error)
	}{
		{"batch8", func(o BatchOptions) (BatchResult, error) {
			return AlignBatch8(vek.Bare, query, tables, batch, o)
		}},
		{"batch16", func(o BatchOptions) (BatchResult, error) {
			return AlignBatch16(vek.Bare, query, tables, batch, o)
		}},
	} {
		mod, err := width.run(BatchOptions{Gaps: gaps, Backend: BackendModeled})
		if err != nil {
			t.Fatalf("%s modeled: %v", width.name, err)
		}
		nat, err := width.run(BatchOptions{Gaps: gaps, Backend: BackendNative})
		if err != nil {
			t.Fatalf("%s native: %v", width.name, err)
		}
		if mod.Scores != nat.Scores {
			t.Errorf("%s lanes=%d: scores diverge\nmodeled %v\nnative  %v",
				width.name, batch.Stride(), mod.Scores, nat.Scores)
		}
		if mod.Saturated != nat.Saturated {
			t.Errorf("%s lanes=%d: saturation flags diverge", width.name, batch.Stride())
		}
	}
}

func TestNativeBatchMatchesModeled(t *testing.T) {
	g := seqio.NewGenerator(303)
	db := g.Database(70)
	tables := submat.NewCodeTables(b62)
	for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
		// A full batch and a partial one (padding lanes must agree too).
		full := make([]int, lanes)
		for i := range full {
			full[i] = i
		}
		partial := []int{0, 3, 7}
		for _, members := range [][]int{full, partial} {
			b := seqio.MakeBatch(db, members, protAlpha, lanes)
			for _, gaps := range nativeGaps() {
				q := g.Protein("q", 90).Encode(protAlpha)
				checkBatchBackends(t, q, tables, b, gaps)
			}
		}
	}
}

// TestNativeBatchMultiMatchesModeled checks the shared-batch
// multi-query path, which reuses one scratch across queries on both
// backends.
func TestNativeBatchMultiMatchesModeled(t *testing.T) {
	g := seqio.NewGenerator(304)
	db := g.Database(40)
	tables := submat.NewCodeTables(b62)
	b := seqio.MakeBatch(db, []int{0, 1, 2, 3, 4, 5, 6, 7}, protAlpha, seqio.BatchLanes)
	queries := [][]uint8{
		g.Protein("q1", 60).Encode(protAlpha),
		g.Protein("q2", 150).Encode(protAlpha),
		g.Protein("q3", 25).Encode(protAlpha),
	}
	gaps := aln.DefaultGaps()
	mod, err := AlignBatch8Multi(vek.Bare, queries, tables, b,
		BatchOptions{Gaps: gaps, Backend: BackendModeled})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := AlignBatch8Multi(vek.Bare, queries, tables, b,
		BatchOptions{Gaps: gaps, Backend: BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if mod[qi].Scores != nat[qi].Scores || mod[qi].Saturated != nat[qi].Saturated {
			t.Errorf("query %d: multi results diverge", qi)
		}
	}
}

// TestNativeSaturationEscalation forces the full 8 -> 16 -> 32
// escalation ladder: a 4000-residue identical pair under a +9 match
// matrix scores 36000, past both the 8- and 16-bit ceilings. Both
// backends must flag each tier and land on the same exact score.
func TestNativeSaturationEscalation(t *testing.T) {
	mat := submat.MatchMismatch(protAlpha, 9, -4)
	n := 4000
	q := make([]uint8, n)
	for i := range q {
		q[i] = uint8(i % 20)
	}
	d := append([]uint8(nil), q...)
	want := int32(9 * n)
	for _, backend := range []Backend{BackendModeled, BackendNative} {
		opt := PairOptions{Gaps: aln.DefaultGaps(), Backend: backend}
		r8, err := AlignPair8(vek.Bare, q, d, mat, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !r8.Saturated {
			t.Fatalf("backend %v: 8-bit tier did not saturate (score %d)", backend, r8.Score)
		}
		r16, _, err := AlignPair16(vek.Bare, q, d, mat, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !r16.Saturated {
			t.Fatalf("backend %v: 16-bit tier did not saturate (score %d)", backend, r16.Score)
		}
		res, _, err := AlignPairAdaptive(vek.Bare, q, d, mat, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != want || res.Saturated {
			t.Fatalf("backend %v: adaptive score %d (saturated %v), want %d exact",
				backend, res.Score, res.Saturated, want)
		}
	}
}

// TestProfileCacheHits verifies the scratch-held query-profile cache:
// repeating a query on one scratch rebuilds the 8-bit profile only
// once, a changed query or matrix misses, and the hit counter drains
// through TakeProfileCacheHits.
func TestProfileCacheHits(t *testing.T) {
	g := seqio.NewGenerator(305)
	q := g.Protein("q", 120).Encode(protAlpha)
	q2 := g.Protein("q2", 120).Encode(protAlpha)
	d := g.Protein("d", 200).Encode(protAlpha)
	s := NewScratch()
	opt := PairOptions{Gaps: aln.DefaultGaps(), Scratch: s, Backend: BackendModeled}
	for i := 0; i < 3; i++ {
		if _, err := AlignPair8(vek.Bare, q, d, b62, opt); err != nil {
			t.Fatal(err)
		}
	}
	if hits := s.TakeProfileCacheHits(); hits != 2 {
		t.Fatalf("profile cache hits = %d, want 2 (one build, two reuses)", hits)
	}
	// A different query must rebuild, not hit.
	if _, err := AlignPair8(vek.Bare, q2, d, b62, opt); err != nil {
		t.Fatal(err)
	}
	if hits := s.TakeProfileCacheHits(); hits != 0 {
		t.Fatalf("changed query still hit the cache (%d hits)", hits)
	}
	// The counter drained above; one more repeat yields exactly one hit.
	if _, err := AlignPair8(vek.Bare, q2, d, b62, opt); err != nil {
		t.Fatal(err)
	}
	if hits := s.TakeProfileCacheHits(); hits != 1 {
		t.Fatalf("repeat after drain: hits = %d, want 1", hits)
	}
	// The cached profile must not alias the caller's buffer: mutating
	// the old query bytes and re-running must still hit (private copy).
	q2[0] = (q2[0] + 1) % 20
	if _, err := AlignPair8(vek.Bare, q2, d, b62, opt); err != nil {
		t.Fatal(err)
	}
	if hits := s.TakeProfileCacheHits(); hits != 0 {
		t.Fatalf("mutated query buffer falsely hit the cache (%d hits)", hits)
	}
}

// FuzzNativeVsModeled fuzzes the backend seam the same way
// FuzzAlignWidths fuzzes the width ladder: arbitrary sequences, gap
// models, and matrix families must produce identical results from both
// backends at every entry point.
func FuzzNativeVsModeled(f *testing.F) {
	f.Add([]byte("MKVLAWMKVLAWMKVLAW"), []byte("MKVLAWMKVLNW"), byte(11), byte(1), false)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"),
		[]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), byte(1), byte(1), true)
	f.Add([]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"),
		[]byte("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"), byte(0), byte(0), false)
	f.Add([]byte("ACDEFGHIKLMNPQRSTVWY"), []byte("YWVTSRQPNMLKIHGFEDCA"), byte(19), byte(4), false)
	f.Add([]byte("M"), []byte("M"), byte(5), byte(2), true)

	bl62 := submat.Blosum62()
	fixed := submat.MatchMismatch(bl62.Alphabet(), 2, -1)

	f.Fuzz(func(t *testing.T, qraw, draw []byte, openB, extB byte, useFixed bool) {
		mat := bl62
		if useFixed {
			mat = fixed
		}
		size := mat.Alphabet().Size()
		q := fuzzCodes(qraw, size, 300)
		d := fuzzCodes(draw, size, 300)
		if len(q) == 0 || len(d) == 0 {
			t.Skip()
		}
		ext := 1 + int32(extB)%15
		open := ext + int32(openB)%20
		gaps := aln.Gaps{Open: open, Extend: ext}

		checkPairBackends(t, q, d, mat, gaps)
		checkPairBackends(t, q, d, mat, aln.Linear(ext))

		alpha := mat.Alphabet()
		letters := make([]byte, len(d))
		for i, c := range d {
			letters[i] = alpha.Letter(c)
		}
		db := []seqio.Sequence{{ID: "fuzz", Residues: letters}}
		tables := submat.NewCodeTables(mat)
		for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
			b := seqio.MakeBatch(db, []int{0}, alpha, lanes)
			checkBatchBackends(t, q, tables, b, gaps)
		}
	})
}
