package core

import (
	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// Batch entry for the striped family. The interleaved batch engines
// vectorize ACROSS sequences, so the striped layout — which vectorizes
// WITHIN one query x sequence pair — replaces the whole traversal:
// each lane's sequence is extracted from the transposed batch and run
// through the striped pair kernel, reusing the scratch's striped
// profile cache (one query profile serves every lane, which is where
// the cache pays off most). Scores and saturation flags land in the
// same BatchResult slots, so the scheduler's rescue ladder works
// unchanged.

// stripedBatchOK reports whether the striped family can serve this
// batch call: an explicit striped kernel, the affine gap model (the
// family routes linear gaps to the diagonal engines, see stripedg.go),
// no diagonal-only ablation, and a full substitution matrix to build
// the striped profile from.
func stripedBatchOK(tables *submat.CodeTables, opt *BatchOptions) bool {
	return opt.Kernel.Striped() && !opt.Gaps.IsLinear() && !opt.EagerMax && tables.Matrix() != nil
}

// stripedBatch8 runs the 8-bit striped family over every lane of the
// batch.
//
//sw:hotpath
func stripedBatch8(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *BatchOptions, res *BatchResult) error {
	mat := tables.Matrix()
	s := batchScratchOrLocal(opt)
	popt := PairOptions{Gaps: opt.Gaps, Scratch: s, Backend: opt.Backend, Kernel: opt.Kernel}
	stride := batch.Stride()
	wide := stride == seqio.MaxBatchLanes
	seq := growE(&s.laneSeq, batch.MaxLen)
	for lane := 0; lane < batch.Count; lane++ {
		n := batch.Lens[lane]
		if n == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			seq[j] = batch.T[j*stride+lane]
		}
		var r aln.ScoreResult
		var err error
		if wide {
			r, err = AlignPair8W(mch, query, seq[:n], mat, popt)
		} else {
			r, err = AlignPair8(mch, query, seq[:n], mat, popt)
		}
		if err != nil {
			return err
		}
		res.Scores[lane] = r.Score
		res.Saturated[lane] = r.Saturated
	}
	return nil
}

// stripedBatch16 is stripedBatch8 at 16-bit precision (the rescue
// tier).
//
//sw:hotpath
func stripedBatch16(mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt *BatchOptions, res *BatchResult) error {
	mat := tables.Matrix()
	s := batchScratchOrLocal(opt)
	popt := PairOptions{Gaps: opt.Gaps, Scratch: s, Backend: opt.Backend, Kernel: opt.Kernel}
	stride := batch.Stride()
	wide := stride == seqio.MaxBatchLanes
	seq := growE(&s.laneSeq, batch.MaxLen)
	for lane := 0; lane < batch.Count; lane++ {
		n := batch.Lens[lane]
		if n == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			seq[j] = batch.T[j*stride+lane]
		}
		var r aln.ScoreResult
		var err error
		if wide {
			r, err = AlignPair16W(mch, query, seq[:n], mat, popt)
		} else {
			r, _, err = AlignPair16(mch, query, seq[:n], mat, popt)
		}
		if err != nil {
			return err
		}
		res.Scores[lane] = r.Score
		res.Saturated[lane] = r.Saturated
	}
	return nil
}

// Engine lane sanity: the wide dispatch above assumes the 512-bit
// batch stride equals the 8x64 engine's lane count.
var _ = func() struct{} {
	if (vek.E8x64{}).Lanes() != seqio.MaxBatchLanes {
		panic("core: 512-bit batch stride diverged from the 8x64 engine")
	}
	return struct{}{}
}()
