package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

func TestPair8FixedScoreMatchesScalar(t *testing.T) {
	mm := submat.MatchMismatch(protAlpha, 2, -1)
	g := seqio.NewGenerator(71)
	gaps := aln.Gaps{Open: 3, Extend: 1}
	for trial := 0; trial < 25; trial++ {
		q := g.Protein("q", 5+trial*11).Encode(protAlpha)
		d := g.Protein("d", 9+trial*17).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, mm, gaps)
		got, err := AlignPair8(vek.Bare, q, d, mm, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if want.Score < int32(sat8) {
			if got.Score != want.Score {
				t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
			}
		} else if !got.Saturated {
			t.Fatalf("trial %d: expected saturation at true score %d", trial, want.Score)
		}
	}
}

func TestPair8FixedScoreUsesNoScalarScoreAssembly(t *testing.T) {
	mm := submat.MatchMismatch(protAlpha, 2, -1)
	g := seqio.NewGenerator(72)
	q := g.Protein("q", 128).Encode(protAlpha)
	d := g.Protein("d", 256).Encode(protAlpha)
	mch, tal := vek.NewMachine()
	if _, err := AlignPair8(mch, q, d, mm, PairOptions{Gaps: aln.Gaps{Open: 3, Extend: 1}}); err != nil {
		t.Fatal(err)
	}
	if tal.N256[vek.OpGather32] != 0 {
		t.Error("8-bit kernel must not gather")
	}
	if tal.N256[vek.OpCmpEq8] == 0 {
		t.Error("fixed-score path should use compare-and-blend")
	}
}

func TestPair8ProfilePathMatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(73)
	gaps := aln.Gaps{Open: 11, Extend: 1}
	for trial := 0; trial < 20; trial++ {
		q := g.Protein("q", 5+trial*13).Encode(protAlpha)
		d := g.Protein("d", 9+trial*19).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		got, err := AlignPair8(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if want.Score < int32(sat8) {
			if got.Score != want.Score {
				t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want.Score)
			}
		} else if !got.Saturated {
			t.Fatalf("trial %d: expected saturation", trial)
		}
	}
}

func TestPair8ProfilePathPaysScalarAssembly(t *testing.T) {
	// The §III-C problem statement: with a real substitution matrix
	// the 8-bit pair kernel must fall back to scalar score assembly.
	g := seqio.NewGenerator(74)
	q := g.Protein("q", 128).Encode(protAlpha)
	d := g.Protein("d", 256).Encode(protAlpha)
	mch, tal := vek.NewMachine()
	if _, err := AlignPair8(mch, q, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	if tal.N256[vek.OpScalarLoad] < uint64(len(q)) {
		t.Error("profile path should assemble scores with scalar loads")
	}
	// The batch engine removes exactly this cost.
	seqs := []seqio.Sequence{}
	gdb := seqio.NewGenerator(75)
	seqs = gdb.Database(32)
	batch := seqio.BuildBatches(seqs, protAlpha, seqio.BatchOptions{})[0]
	mB, tB := vek.NewMachine()
	if _, err := AlignBatch8(mB, q, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err != nil {
		t.Fatal(err)
	}
	cellsBatch := float64(int64(len(q)) * int64(batch.MaxLen) * 32)
	cellsPair := float64(len(q) * len(d))
	scalarPerCellPair := float64(tal.N256[vek.OpScalarLoad]) / cellsPair
	scalarPerCellBatch := float64(tB.N256[vek.OpScalarLoad]) / cellsBatch
	if scalarPerCellBatch >= scalarPerCellPair/4 {
		t.Errorf("batch scalar loads per cell %.3f should be far below pair8 %.3f",
			scalarPerCellBatch, scalarPerCellPair)
	}
}

func TestPair8SentinelDisablesFixedFastPath(t *testing.T) {
	// A '-' byte encodes as sentinel; sentinel-vs-sentinel must not
	// count as a match even under a match/mismatch matrix.
	mm := submat.MatchMismatch(protAlpha, 5, -4)
	q := protAlpha.Encode([]byte("AC-DE"))
	d := protAlpha.Encode([]byte("AC-DE"))
	want := baselines.ScalarAffine(q, d, mm, aln.Gaps{Open: 3, Extend: 1})
	got, err := AlignPair8(vek.Bare, q, d, mm, PairOptions{Gaps: aln.Gaps{Open: 3, Extend: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score %d, want %d", got.Score, want.Score)
	}
}

func TestAdaptiveEscalatesOnSaturation(t *testing.T) {
	g := seqio.NewGenerator(76)
	src := g.Protein("s", 500)
	rel := g.Related(src, "r", 0.05, 0.01)
	q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps())
	if want.Score <= 127 {
		t.Fatalf("test is vacuous: score %d", want.Score)
	}
	got, _, err := AlignPairAdaptive(vek.Bare, q, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("adaptive score %d, want %d", got.Score, want.Score)
	}
	if got.Saturated {
		t.Error("escalated result must not stay saturated")
	}
}

func TestAdaptiveStaysAt8BitsWhenPossible(t *testing.T) {
	g := seqio.NewGenerator(77)
	q := g.Protein("q", 60).Encode(protAlpha)
	d := g.Protein("d", 90).Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps())
	if want.Score >= 127 {
		t.Skip("random pair unexpectedly saturates")
	}
	mch, tal := vek.NewMachine()
	got, _, err := AlignPairAdaptive(mch, q, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score %d, want %d", got.Score, want.Score)
	}
	if tal.N256[vek.OpGather32] != 0 {
		t.Error("unsaturated adaptive run must stay on the 8-bit (gather-free) path")
	}
}

func TestPair16WMatchesPair16(t *testing.T) {
	g := seqio.NewGenerator(78)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 20; trial++ {
		q := g.Protein("q", 7+trial*23).Encode(protAlpha)
		d := g.Protein("d", 11+trial*29).Encode(protAlpha)
		want, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		got, err := AlignPair16W(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d: wide score %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestPair16WHalvesVectorIssues(t *testing.T) {
	g := seqio.NewGenerator(79)
	q := g.Protein("q", 256).Encode(protAlpha)
	d := g.Protein("d", 512).Encode(protAlpha)
	m256, t256 := vek.NewMachine()
	if _, _, err := AlignPair16(m256, q, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	m512, t512 := vek.NewMachine()
	if _, err := AlignPair16W(m512, q, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	// The wide kernel still issues 256-bit index loads and narrows, so
	// compare total issues across both widths: it should save
	// substantially but land short of a full 2x.
	ratio := float64(t256.Total()) / float64(t512.Total())
	if ratio < 1.2 || ratio > 2.2 {
		t.Errorf("total-issue ratio 256/512 = %.2f, want within (1.2, 2.2)", ratio)
	}
	if t512.N512[vek.OpGather32] == 0 {
		t.Error("wide kernel should issue 512-bit gathers")
	}
}

func TestPair16WHomologs(t *testing.T) {
	g := seqio.NewGenerator(80)
	gaps := aln.Gaps{Open: 5, Extend: 1}
	src := g.Protein("s", 300)
	rel := g.Related(src, "r", 0.15, 0.04)
	q, d := src.Encode(protAlpha), rel.Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, gaps)
	got, err := AlignPair16W(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score %d, want %d", got.Score, want.Score)
	}
}
