package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// scratchWorkload builds a few batches of assorted shapes plus queries
// of different lengths, so a shared scratch is exercised across
// growing and shrinking buffer demands.
func scratchWorkload(t *testing.T) ([]*seqio.Batch, [][]uint8, *submat.Matrix, *submat.CodeTables) {
	t.Helper()
	mat := submat.Blosum62()
	g := seqio.NewGenerator(31)
	db := g.Database(80)
	batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{})
	queries := [][]uint8{
		g.Protein("q0", 200).Encode(mat.Alphabet()),
		g.Protein("q1", 37).Encode(mat.Alphabet()),
		g.Protein("q2", 350).Encode(mat.Alphabet()),
	}
	return batches, queries, mat, submat.NewCodeTables(mat)
}

func TestAlignBatch8ScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, opt := range []BatchOptions{
		{Gaps: aln.DefaultGaps()},
		{Gaps: aln.DefaultGaps(), BlockCols: 64},
		{Gaps: aln.Linear(2)},
	} {
		shared := NewScratch()
		for _, q := range queries {
			for bi, b := range batches {
				fresh, err := AlignBatch8(vek.Bare, q, tables, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				withScratch := opt
				withScratch.Scratch = shared
				got, err := AlignBatch8(vek.Bare, q, tables, b, withScratch)
				if err != nil {
					t.Fatal(err)
				}
				if got != fresh {
					t.Fatalf("opt %+v batch %d qlen %d: scratch reuse changed result", opt, bi, len(q))
				}
			}
		}
	}
}

func TestAlignBatch16ScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, gaps := range []aln.Gaps{aln.DefaultGaps(), aln.Linear(2)} {
		shared := NewScratch()
		for _, q := range queries {
			for bi, b := range batches {
				fresh, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
				if err != nil {
					t.Fatal(err)
				}
				got, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps, Scratch: shared})
				if err != nil {
					t.Fatal(err)
				}
				if got != fresh {
					t.Fatalf("gaps %+v batch %d qlen %d: scratch reuse changed result", gaps, bi, len(q))
				}
			}
		}
	}
}

func TestAlignPair32ScratchReuse(t *testing.T) {
	mat := submat.Blosum62()
	g := seqio.NewGenerator(32)
	pairs := [][2][]uint8{
		{g.Protein("a", 120).Encode(mat.Alphabet()), g.Protein("b", 400).Encode(mat.Alphabet())},
		{g.Protein("c", 33).Encode(mat.Alphabet()), g.Protein("d", 61).Encode(mat.Alphabet())},
		{g.Protein("e", 250).Encode(mat.Alphabet()), g.Protein("f", 90).Encode(mat.Alphabet())},
	}
	shared := NewScratch()
	for i, p := range pairs {
		fresh, err := AlignPair32(vek.Bare, p[0], p[1], mat, PairOptions{Gaps: aln.DefaultGaps()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := AlignPair32(vek.Bare, p[0], p[1], mat, PairOptions{Gaps: aln.DefaultGaps(), Scratch: shared})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != fresh.Score {
			t.Fatalf("pair %d: scratch score %d != fresh %d", i, got.Score, fresh.Score)
		}
	}
}

func TestAlignBatch8MultiScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, opt := range []BatchOptions{
		{Gaps: aln.DefaultGaps()},
		{Gaps: aln.DefaultGaps(), BlockCols: 48},
	} {
		shared := NewScratch()
		for bi, b := range batches {
			fresh, err := AlignBatch8Multi(vek.Bare, queries, tables, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			withScratch := opt
			withScratch.Scratch = shared
			got, err := AlignBatch8Multi(vek.Bare, queries, tables, b, withScratch)
			if err != nil {
				t.Fatal(err)
			}
			for qi := range fresh {
				if got[qi] != fresh[qi] {
					t.Fatalf("opt %+v batch %d query %d: scratch reuse changed result", opt, bi, qi)
				}
			}
		}
	}
}

// TestAlignBatch8ScratchZeroAlloc verifies the tentpole acceptance
// criterion at the kernel level: once the scratch is warm, the 8-bit
// batch engine performs zero heap allocations per call.
func TestAlignBatch8ScratchZeroAlloc(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	scratch := NewScratch()
	opt := BatchOptions{Gaps: aln.DefaultGaps(), Scratch: scratch}
	warm := func() {
		for _, q := range queries {
			for _, b := range batches {
				if _, err := AlignBatch8(vek.Bare, q, tables, b, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	warm()
	allocs := testing.AllocsPerRun(3, warm)
	if allocs != 0 {
		t.Fatalf("warm AlignBatch8 allocates %.1f times per sweep, want 0", allocs)
	}
}
