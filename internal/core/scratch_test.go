package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// scratchWorkload builds a few batches of assorted shapes plus queries
// of different lengths, so a shared scratch is exercised across
// growing and shrinking buffer demands.
func scratchWorkload(t *testing.T) ([]*seqio.Batch, [][]uint8, *submat.Matrix, *submat.CodeTables) {
	t.Helper()
	mat := submat.Blosum62()
	g := seqio.NewGenerator(31)
	db := g.Database(80)
	batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{})
	queries := [][]uint8{
		g.Protein("q0", 200).Encode(mat.Alphabet()),
		g.Protein("q1", 37).Encode(mat.Alphabet()),
		g.Protein("q2", 350).Encode(mat.Alphabet()),
	}
	return batches, queries, mat, submat.NewCodeTables(mat)
}

func TestAlignBatch8ScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, opt := range []BatchOptions{
		{Gaps: aln.DefaultGaps()},
		{Gaps: aln.DefaultGaps(), BlockCols: 64},
		{Gaps: aln.Linear(2)},
	} {
		shared := NewScratch()
		for _, q := range queries {
			for bi, b := range batches {
				fresh, err := AlignBatch8(vek.Bare, q, tables, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				withScratch := opt
				withScratch.Scratch = shared
				got, err := AlignBatch8(vek.Bare, q, tables, b, withScratch)
				if err != nil {
					t.Fatal(err)
				}
				if got != fresh {
					t.Fatalf("opt %+v batch %d qlen %d: scratch reuse changed result", opt, bi, len(q))
				}
			}
		}
	}
}

func TestAlignBatch16ScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, gaps := range []aln.Gaps{aln.DefaultGaps(), aln.Linear(2)} {
		shared := NewScratch()
		for _, q := range queries {
			for bi, b := range batches {
				fresh, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
				if err != nil {
					t.Fatal(err)
				}
				got, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps, Scratch: shared})
				if err != nil {
					t.Fatal(err)
				}
				if got != fresh {
					t.Fatalf("gaps %+v batch %d qlen %d: scratch reuse changed result", gaps, bi, len(q))
				}
			}
		}
	}
}

func TestAlignPair32ScratchReuse(t *testing.T) {
	mat := submat.Blosum62()
	g := seqio.NewGenerator(32)
	pairs := [][2][]uint8{
		{g.Protein("a", 120).Encode(mat.Alphabet()), g.Protein("b", 400).Encode(mat.Alphabet())},
		{g.Protein("c", 33).Encode(mat.Alphabet()), g.Protein("d", 61).Encode(mat.Alphabet())},
		{g.Protein("e", 250).Encode(mat.Alphabet()), g.Protein("f", 90).Encode(mat.Alphabet())},
	}
	shared := NewScratch()
	for i, p := range pairs {
		fresh, err := AlignPair32(vek.Bare, p[0], p[1], mat, PairOptions{Gaps: aln.DefaultGaps()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := AlignPair32(vek.Bare, p[0], p[1], mat, PairOptions{Gaps: aln.DefaultGaps(), Scratch: shared})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != fresh.Score {
			t.Fatalf("pair %d: scratch score %d != fresh %d", i, got.Score, fresh.Score)
		}
	}
}

func TestAlignBatch8MultiScratchReuse(t *testing.T) {
	batches, queries, _, tables := scratchWorkload(t)
	for _, opt := range []BatchOptions{
		{Gaps: aln.DefaultGaps()},
		{Gaps: aln.DefaultGaps(), BlockCols: 48},
	} {
		shared := NewScratch()
		for bi, b := range batches {
			fresh, err := AlignBatch8Multi(vek.Bare, queries, tables, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			withScratch := opt
			withScratch.Scratch = shared
			got, err := AlignBatch8Multi(vek.Bare, queries, tables, b, withScratch)
			if err != nil {
				t.Fatal(err)
			}
			for qi := range fresh {
				if got[qi] != fresh[qi] {
					t.Fatalf("opt %+v batch %d query %d: scratch reuse changed result", opt, bi, qi)
				}
			}
		}
	}
}

// TestAlignBatch8ScratchZeroAlloc verifies the tentpole acceptance
// criterion at the kernel level: once the scratch is warm, the 8-bit
// batch engine performs zero heap allocations per call — at both the
// 256-bit (32-lane) and 512-bit (64-lane) instantiations of the
// generic kernel.
func TestAlignBatch8ScratchZeroAlloc(t *testing.T) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(31)
	db := g.Database(2 * seqio.MaxBatchLanes)
	queries := [][]uint8{
		g.Protein("q0", 200).Encode(mat.Alphabet()),
		g.Protein("q1", 37).Encode(mat.Alphabet()),
		g.Protein("q2", 350).Encode(mat.Alphabet()),
	}
	for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
		batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: lanes})
		scratch := NewScratch()
		opt := BatchOptions{Gaps: aln.DefaultGaps(), Scratch: scratch}
		warm := func() {
			for _, q := range queries {
				for _, b := range batches {
					if _, err := AlignBatch8(vek.Bare, q, tables, b, opt); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		warm()
		allocs := testing.AllocsPerRun(3, warm)
		if allocs != 0 {
			t.Fatalf("lanes=%d: warm AlignBatch8 allocates %.1f times per sweep, want 0", lanes, allocs)
		}
	}
}

// TestAlignBatch16ScratchZeroAlloc is the 16-bit rescue stage's side
// of the same invariant: swlint's hotpathalloc analyzer proves the
// kernels issue no allocating constructs statically, and this proves
// it dynamically at both lane strides.
func TestAlignBatch16ScratchZeroAlloc(t *testing.T) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(35)
	db := g.Database(2 * seqio.MaxBatchLanes)
	queries := [][]uint8{
		g.Protein("q0", 200).Encode(mat.Alphabet()),
		g.Protein("q1", 37).Encode(mat.Alphabet()),
	}
	for _, lanes := range []int{seqio.BatchLanes, seqio.MaxBatchLanes} {
		batches := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: lanes})
		scratch := NewScratch()
		opt := BatchOptions{Gaps: aln.DefaultGaps(), Scratch: scratch}
		warm := func() {
			for _, q := range queries {
				for _, b := range batches {
					if _, err := AlignBatch16(vek.Bare, q, tables, b, opt); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		warm()
		allocs := testing.AllocsPerRun(3, warm)
		if allocs != 0 {
			t.Fatalf("lanes=%d: warm AlignBatch16 allocates %.1f times per sweep, want 0", lanes, allocs)
		}
	}
}

// TestScratchAcrossWidths is the regression test for the per-width row
// buffer sizing: one shared scratch serving interleaved 32-lane and
// 64-lane batches (8- and 16-bit engines) must produce the same result
// as fresh buffers. Before the generic kernel, the 16-bit row buffers
// were sized with a hardcoded 32-lane stride, which under-allocates
// for a 64-lane batch.
func TestScratchAcrossWidths(t *testing.T) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(33)
	db := g.Database(2*seqio.MaxBatchLanes + 17)
	queries := [][]uint8{
		g.Protein("q0", 180).Encode(mat.Alphabet()),
		g.Protein("q1", 41).Encode(mat.Alphabet()),
	}
	narrow := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: seqio.BatchLanes})
	wide := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: seqio.MaxBatchLanes})
	shared := NewScratch()
	for _, gaps := range []aln.Gaps{aln.DefaultGaps(), aln.Linear(2)} {
		for _, q := range queries {
			// Alternate widths on the shared scratch so each engine
			// inherits buffers the other one sized.
			for i := 0; i < len(narrow) || i < len(wide); i++ {
				var round []*seqio.Batch
				if i < len(narrow) {
					round = append(round, narrow[i])
				}
				if i < len(wide) {
					round = append(round, wide[i])
				}
				for _, b := range round {
					fresh8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
					if err != nil {
						t.Fatal(err)
					}
					got8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps, Scratch: shared})
					if err != nil {
						t.Fatal(err)
					}
					if got8 != fresh8 {
						t.Fatalf("gaps %+v stride %d qlen %d: 8-bit shared scratch changed result", gaps, b.Stride(), len(q))
					}
					fresh16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
					if err != nil {
						t.Fatal(err)
					}
					got16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps, Scratch: shared})
					if err != nil {
						t.Fatal(err)
					}
					if got16 != fresh16 {
						t.Fatalf("gaps %+v stride %d qlen %d: 16-bit shared scratch changed result", gaps, b.Stride(), len(q))
					}
				}
			}
		}
	}
}

// TestAlignBatchWideMatchesNarrow checks that a 64-lane batch scores
// every sequence identically to the 32-lane batches covering the same
// database slice, for both batch engines.
func TestAlignBatchWideMatchesNarrow(t *testing.T) {
	mat := submat.Blosum62()
	tables := submat.NewCodeTables(mat)
	g := seqio.NewGenerator(34)
	db := g.Database(seqio.MaxBatchLanes + 9)
	q := g.Protein("q", 150).Encode(mat.Alphabet())
	narrow := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: seqio.BatchLanes})
	wide := seqio.BuildBatches(db, mat.Alphabet(), seqio.BatchOptions{Lanes: seqio.MaxBatchLanes})
	gaps := aln.DefaultGaps()

	score8 := make(map[int]int32)
	score16 := make(map[int]int32)
	for _, b := range narrow {
		r8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		r16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		for lane := 0; lane < b.Count; lane++ {
			score8[b.Index[lane]] = r8.Scores[lane]
			score16[b.Index[lane]] = r16.Scores[lane]
		}
	}
	for _, b := range wide {
		r8, err := AlignBatch8(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		r16, err := AlignBatch16(vek.Bare, q, tables, b, BatchOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		for lane := 0; lane < b.Count; lane++ {
			si := b.Index[lane]
			if r8.Scores[lane] != score8[si] {
				t.Errorf("seq %d: 8-bit wide score %d != narrow %d", si, r8.Scores[lane], score8[si])
			}
			if r16.Scores[lane] != score16[si] {
				t.Errorf("seq %d: 16-bit wide score %d != narrow %d", si, r16.Scores[lane], score16[si])
			}
		}
	}
}
