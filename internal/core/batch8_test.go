package core

import (
	"testing"

	"swvec/internal/aln"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

var b62Tables = submat.NewCodeTables(b62)

func makeBatch(t *testing.T, g *seqio.Generator, count int, sorted bool) ([]seqio.Sequence, *seqio.Batch) {
	t.Helper()
	seqs := g.Database(count)
	batches := seqio.BuildBatches(seqs, protAlpha, seqio.BatchOptions{SortByLength: sorted})
	if len(batches) != (count+31)/32 {
		t.Fatalf("batches = %d", len(batches))
	}
	return seqs, batches[0]
}

// checkBatchAgainstScalar verifies every lane against the golden
// scalar kernel under 8-bit saturation semantics.
func checkBatchAgainstScalar(t *testing.T, query []uint8, seqs []seqio.Sequence, batch *seqio.Batch, res BatchResult, g aln.Gaps) {
	t.Helper()
	for lane := 0; lane < batch.Count; lane++ {
		d := seqs[batch.Index[lane]].Encode(protAlpha)
		var want int32
		if g.IsLinear() {
			want = baselines.ScalarLinear(query, d, b62, g.Extend).Score
		} else {
			want = baselines.ScalarAffine(query, d, b62, g).Score
		}
		if want >= int32(sat8) {
			if !res.Saturated[lane] {
				t.Errorf("lane %d: true score %d should saturate, got %d unsaturated",
					lane, want, res.Scores[lane])
			}
			continue
		}
		if res.Scores[lane] != want {
			t.Errorf("lane %d: score %d, want %d", lane, res.Scores[lane], want)
		}
		if res.Saturated[lane] {
			t.Errorf("lane %d: spurious saturation at score %d", lane, res.Scores[lane])
		}
	}
}

func TestBatch8MatchesScalarPerLane(t *testing.T) {
	g := seqio.NewGenerator(51)
	seqs, batch := makeBatch(t, g, 32, false)
	query := g.Protein("q", 80).Encode(protAlpha)
	res, err := AlignBatch8(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	checkBatchAgainstScalar(t, query, seqs, batch, res, aln.DefaultGaps())
}

func TestBatch8PartialBatch(t *testing.T) {
	g := seqio.NewGenerator(52)
	seqs, batch := makeBatch(t, g, 11, false)
	if batch.Count != 11 {
		t.Fatalf("count = %d, want 11", batch.Count)
	}
	query := g.Protein("q", 50).Encode(protAlpha)
	res, err := AlignBatch8(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	checkBatchAgainstScalar(t, query, seqs, batch, res, aln.DefaultGaps())
	for lane := batch.Count; lane < lanes8; lane++ {
		if res.Scores[lane] != 0 {
			t.Errorf("padding lane %d has score %d", lane, res.Scores[lane])
		}
	}
}

func TestBatch8BlockedMatchesUnblocked(t *testing.T) {
	g := seqio.NewGenerator(53)
	_, batch := makeBatch(t, g, 32, true)
	query := g.Protein("q", 64).Encode(protAlpha)
	base, err := AlignBatch8(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []int{1, 7, 32, 100, 1000} {
		blocked, err := AlignBatch8(vek.Bare, query, b62Tables, batch,
			BatchOptions{Gaps: aln.DefaultGaps(), BlockCols: block})
		if err != nil {
			t.Fatal(err)
		}
		if blocked.Scores != base.Scores {
			t.Fatalf("block %d: scores diverge", block)
		}
	}
}

func TestBatch8LinearMatchesScalar(t *testing.T) {
	g := seqio.NewGenerator(54)
	seqs, batch := makeBatch(t, g, 32, false)
	query := g.Protein("q", 60).Encode(protAlpha)
	gaps := aln.Linear(2)
	res, err := AlignBatch8(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	checkBatchAgainstScalar(t, query, seqs, batch, res, gaps)
}

func TestBatch8SaturationAndRescue(t *testing.T) {
	// Put a long homolog of the query in the batch: its true score
	// exceeds 127 and must be flagged for 16-bit rescue.
	g := seqio.NewGenerator(55)
	seqs := g.Database(31)
	query := g.Protein("q", 400)
	seqs = append(seqs, g.Related(query, "homolog", 0.05, 0.01))
	batches := seqio.BuildBatches(seqs, protAlpha, seqio.BatchOptions{})
	batch := batches[0]
	qEnc := query.Encode(protAlpha)
	res, err := AlignBatch8(vek.Bare, qEnc, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()})
	if err != nil {
		t.Fatal(err)
	}
	homolane := -1
	for lane := 0; lane < batch.Count; lane++ {
		if seqs[batch.Index[lane]].ID == "homolog" {
			homolane = lane
		}
	}
	if homolane < 0 {
		t.Fatal("homolog not found in batch")
	}
	if !res.Saturated[homolane] {
		t.Fatalf("homolog lane score %d not saturated", res.Scores[homolane])
	}
	// 16-bit rescue must recover the true score.
	d := seqs[batch.Index[homolane]].Encode(protAlpha)
	want := baselines.ScalarAffine(qEnc, d, b62, aln.DefaultGaps())
	got, _, err := AlignPair16(vek.Bare, qEnc, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("rescue score %d, want %d", got.Score, want.Score)
	}
	if got.Score <= 127 {
		t.Fatalf("test is vacuous: true score %d fits 8 bits", got.Score)
	}
}

func TestBatch8FewerOpsPerCellThanPair16(t *testing.T) {
	// The central performance claim: the 8-bit batch path needs far
	// fewer vector issues per DP cell than the gather-based 16-bit
	// pair kernel.
	g := seqio.NewGenerator(56)
	seqs, batch := makeBatch(t, g, 32, true)
	query := g.Protein("q", 100).Encode(protAlpha)

	mB, tB := vek.NewMachine()
	if _, err := AlignBatch8(mB, query, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err != nil {
		t.Fatal(err)
	}
	batchCells := float64(int64(len(query)) * int64(batch.MaxLen) * int64(batch.Count))
	batchOps := float64(tB.VectorTotal()) / batchCells

	mP, tP := vek.NewMachine()
	d := seqs[batch.Index[0]].Encode(protAlpha)
	if _, _, err := AlignPair16(mP, query, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	pairCells := float64(len(query) * len(d))
	pairOps := float64(tP.VectorTotal()) / pairCells

	if batchOps >= pairOps/2 {
		t.Errorf("batch ops/cell %.3f not clearly below pair16 %.3f", batchOps, pairOps)
	}
}

func TestBatch8ErrorPaths(t *testing.T) {
	g := seqio.NewGenerator(57)
	_, batch := makeBatch(t, g, 32, false)
	query := g.Protein("q", 10).Encode(protAlpha)
	if _, err := AlignBatch8(vek.Bare, nil, b62Tables, batch, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := AlignBatch8(vek.Bare, query, b62Tables, &seqio.Batch{}, BatchOptions{Gaps: aln.DefaultGaps()}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AlignBatch8(vek.Bare, query, b62Tables, batch, BatchOptions{Gaps: aln.Gaps{Open: 200, Extend: 1}}); err == nil {
		t.Error("out-of-range gap open accepted")
	}
}

func TestCodeTablesMatchMatrix(t *testing.T) {
	tables := submat.NewCodeTables(b62)
	var idx vek.I8x32
	for l := range idx {
		idx[l] = int8(l) // codes 0..31
	}
	for c := 0; c < submat.W; c++ {
		got := tables.LookupScores(vek.Bare, uint8(c), idx)
		for l := 0; l < 32; l++ {
			want := b62.Score(uint8(c), uint8(l))
			if got[l] != want {
				t.Fatalf("code %d vs %d: got %d, want %d", c, l, got[l], want)
			}
		}
	}
}
