package core

import (
	"fmt"

	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// This file is the single batch-kernel implementation: the interleaved
// one-sequence-per-lane engine of §III-C (Fig. 1(b)), generic over a
// batch engine. The 8-bit engines run one register per batch column;
// the 16-bit engines run two (the widened halves/quarters of the same
// column), so the 256-bit 8-bit, 256-bit 16-bit, 512-bit 8-bit and
// 512-bit 16-bit builds all share this code. AlignBatch8/AlignBatch16
// dispatch on the batch's lane stride.

// A batchEngine extends the generic lane engine with the batch-shaped
// operations: shuffle-table scoring of a transposed residue column and
// typed access to the Scratch's row/carry buffers (which live in core,
// out of vek's reach).
type batchEngine[V any, E vek.Elem] interface {
	vek.Engine[V, E]
	// BLanes is the number of sequences per batch column: Width()/8,
	// the stride of the transposed layout.
	BLanes() int
	// Parts is the number of vector registers covering one batch
	// column: 1 for the 8-bit engines, 2 for the widened 16-bit ones.
	Parts() int
	// LookupColumn scores one transposed residue column (BLanes int8
	// codes) against query residue code c with the two-shuffle/blend
	// lookup, widened per part. The second return is meaningful only
	// when Parts() == 2.
	LookupColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8) (V, V)
	// CachedColumn loads one column of the §III-C per-code score cache
	// (raw int8 scores), widened per part.
	CachedColumn(m vek.Machine, row []int8) (V, V)
	// BuildScoreColumn computes the raw int8 scores of code c for one
	// column into dst — the cache-row builder.
	BuildScoreColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8, dst []int8)
	// BatchRows returns the H and F column-state rows (n columns at
	// the batch stride) from the scratch, initialized for a fresh
	// query, charging the row reset.
	BatchRows(m vek.Machine, s *Scratch, n int, affine bool) (h, f []E)
	// BatchCarries returns the per-query-row E/H-left/H-diag carry
	// buffers (m rows at the batch stride) with the H carries zeroed.
	// Carries model register spills at block boundaries: uncharged.
	BatchCarries(s *Scratch, m int) (e, left, diag []E)
}

// batchScratch caches the per-code score rows of the current block:
// "for every batch we compute the score once and store it in a scratch
// buffer" (§III-C). rows[c] is non-nil once code c has been scored for
// the block identified by built[c]. Codes that occur only once in the
// query skip the scratch: building a row costs more than one inline
// shuffle lookup per column, so single-use codes are scored inline
// (one of the cache-dependent tuning choices §III-C alludes to).
type batchScratch struct {
	rows  [submat.W][]int8
	built [submat.W]int
	// count[c] is the number of query rows using code c.
	count [submat.W]int
	cols  int
}

// prepare resets the scratch for a new (batch, query set) pair with
// the given block width, keeping the allocated score rows for reuse.
func (s *batchScratch) prepare(cols int, queries ...[]uint8) {
	s.cols = cols
	for c := range s.built {
		s.built[c] = -1
		s.count[c] = 0
	}
	for _, q := range queries {
		for _, c := range q {
			s.count[c]++
		}
	}
}

// checkBatch validates the inputs shared by the batch entry points.
func checkBatch(queries [][]uint8, batch *seqio.Batch, opt *BatchOptions) error {
	if err := opt.Gaps.Validate(); err != nil {
		return err
	}
	for i, q := range queries {
		if len(q) == 0 {
			if len(queries) == 1 {
				return fmt.Errorf("core: empty query")
			}
			return fmt.Errorf("core: query %d is empty", i)
		}
	}
	if batch.MaxLen == 0 || batch.Count == 0 {
		return fmt.Errorf("core: empty batch")
	}
	switch batch.Stride() {
	case seqio.BatchLanes, seqio.MaxBatchLanes:
	default:
		return fmt.Errorf("core: unsupported batch stride %d", batch.Stride())
	}
	return nil
}

// alignBatch runs one query through the generic engine: score-cache
// preparation, column-blocked traversal, per-lane deferred maxima.
func alignBatch[V any, E vek.Elem, En batchEngine[V, E]](eng En, mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, opt BatchOptions) (BatchResult, error) {
	var res BatchResult
	if err := checkBatch([][]uint8{query}, batch, &opt); err != nil {
		return res, err
	}
	s := opt.Scratch
	if s == nil {
		s = &Scratch{}
	}
	t8 := s.codes(batch.T)
	n := batch.MaxLen
	block := opt.BlockCols
	if block <= 0 || block > n {
		block = n
	}
	s.score.prepare(block, query)
	runBatch(eng, mch, query, tables, batch, t8, &opt, s, &res)
	return res, nil
}

// runBatch is the traversal: for every column block and every query
// row, stream the batch columns through the DP recurrence, one vector
// register per column part. Substitution scores come from the shared
// per-code cache when the row's code repeats in the query, or from an
// inline shuffle lookup otherwise.
//
//sw:hotpath
func runBatch[V any, E vek.Elem, En batchEngine[V, E]](eng En, mch vek.Machine, query []uint8, tables *submat.CodeTables, batch *seqio.Batch, t8 []int8, opt *BatchOptions, s *Scratch, res *BatchResult) {
	m, n := len(query), batch.MaxLen
	blanes := eng.BLanes()
	lanes := eng.Lanes()
	parts := eng.Parts()
	affine := !opt.Gaps.IsLinear()
	scratch := &s.score
	block := scratch.cols

	extV := eng.Splat(mch, eng.Clamp(opt.Gaps.Extend))
	zeroV := eng.Zero(mch)
	var openV V
	if affine {
		openV = eng.Splat(mch, eng.Clamp(opt.Gaps.Open))
		eng.Splat(mch, eng.NegInf()) // negV broadcast for the E carries
	}

	hRow, fRow := eng.BatchRows(mch, s, n, affine)
	eCarry, hLeftCarry, hDiagCarry := eng.BatchCarries(s, m)
	if affine {
		neg := eng.NegInf()
		for i := range eCarry {
			eCarry[i] = neg
		}
	}
	mch.T.Add(vek.OpScalarStore, vek.W256, uint64(m))

	var vMax [2]V
	vMax[0], vMax[1] = zeroV, zeroV
	var eagerBest int32

	// Per-part carry registers, reloaded from the spill buffers at
	// block boundaries (uncharged, like register save/restore).
	type carry struct{ e, hLeft, hDiag V }
	var cr [2]carry

	blockID := 0
	for j0 := 0; j0 < n; j0 += block {
		cols := block
		if j0+cols > n {
			cols = n - j0
		}
		for i := 0; i < m; i++ {
			c := query[i]
			sRow := scoreRow(eng, mch, scratch, tables, t8, c, blockID, j0, cols)
			base := i * blanes
			for p := 0; p < parts; p++ {
				off := base + p*lanes
				cr[p].e = eng.Load(vek.Bare, eCarry[off:])
				cr[p].hLeft = eng.Load(vek.Bare, hLeftCarry[off:])
				cr[p].hDiag = eng.Load(vek.Bare, hDiagCarry[off:])
			}
			for j := 0; j < cols; j++ {
				off := (j0 + j) * blanes
				var s0, s1 V
				if sRow != nil {
					s0, s1 = eng.CachedColumn(mch, sRow[j*blanes:])
				} else {
					s0, s1 = eng.LookupColumn(mch, tables, c, t8[off:])
				}
				for p := 0; p < parts; p++ {
					score := s0
					if p == 1 {
						score = s1
					}
					hOff := off + p*lanes
					hUp := eng.Load(mch, hRow[hOff:])
					var h V
					if affine {
						fIn := eng.Load(mch, fRow[hOff:])
						f := eng.Max(mch, eng.SubSat(mch, fIn, extV), eng.SubSat(mch, hUp, openV))
						cr[p].e = eng.Max(mch, eng.SubSat(mch, cr[p].e, extV), eng.SubSat(mch, cr[p].hLeft, openV))
						h = eng.AddSat(mch, cr[p].hDiag, score)
						h = eng.Max(mch, h, zeroV)
						h = eng.Max(mch, h, cr[p].e)
						h = eng.Max(mch, h, f)
						eng.Store(mch, fRow[hOff:], f)
					} else {
						h = eng.AddSat(mch, cr[p].hDiag, score)
						h = eng.Max(mch, h, zeroV)
						h = eng.Max(mch, h, eng.SubSat(mch, cr[p].hLeft, extV))
						h = eng.Max(mch, h, eng.SubSat(mch, hUp, extV))
					}
					eng.Store(mch, hRow[hOff:], h)
					if opt.EagerMax {
						if v := int32(eng.ReduceMax(mch, h)); v > eagerBest {
							eagerBest = v
						}
						mch.T.Add(vek.OpScalar, vek.W256, 1)
					} else {
						vMax[p] = eng.Max(mch, vMax[p], h)
					}
					cr[p].hDiag = hUp
					cr[p].hLeft = h
				}
			}
			for p := 0; p < parts; p++ {
				off := base + p*lanes
				eng.Store(vek.Bare, eCarry[off:], cr[p].e)
				eng.Store(vek.Bare, hLeftCarry[off:], cr[p].hLeft)
				eng.Store(vek.Bare, hDiagCarry[off:], cr[p].hDiag)
			}
		}
		blockID++
	}

	// One horizontal pass over the lane maxima — the deferred
	// reduction of §III-D, amortized over the entire batch.
	mch.T.Add(vek.OpReduce, eng.Width(), uint64(parts))
	mch.T.Add(vek.OpScalar, vek.W256, uint64(blanes))
	ceil := eng.SatCeil()
	for lane := 0; lane < batch.Count; lane++ {
		v := int32(eng.Lane(vMax[lane/lanes], lane%lanes))
		res.Scores[lane] = v
		if v >= ceil {
			res.Saturated[lane] = true
		}
	}
	if opt.EagerMax {
		// Fold the eager scalar best back into lane 0; eager mode is an
		// ablation used for aggregate cost measurement, not per-lane
		// scoring.
		res.Scores[0] = eagerBest
		res.Saturated[0] = eagerBest >= ceil
	}
}

// scoreRow returns the cached score row of code c for the block
// starting at column j0 (block id), building it with shuffle lookups
// if needed, or nil when the kernel should score the row inline (a
// code used once per query costs less inline than cached — §III-C).
func scoreRow[V any, E vek.Elem, En batchEngine[V, E]](eng En, mch vek.Machine, s *batchScratch, tables *submat.CodeTables, t8 []int8, c uint8, blockID, j0, cols int) []int8 {
	if s.count[c] < 2 {
		return nil
	}
	if s.built[c] == blockID {
		return s.rows[c]
	}
	blanes := eng.BLanes()
	need := s.cols * blanes
	if cap(s.rows[c]) < need {
		//swlint:ignore hotpathalloc grow-once score-cache row, reused for every later block and batch
		s.rows[c] = make([]int8, need)
	}
	s.rows[c] = s.rows[c][:need]
	row := s.rows[c]
	for j := 0; j < cols; j++ {
		eng.BuildScoreColumn(mch, tables, c, t8[(j0+j)*blanes:], row[j*blanes:])
	}
	s.built[c] = blockID
	return row
}

// be8x32 is the 256-bit 8-bit batch engine: one I8x32 per column.
//
//sw:hotpath
type be8x32 struct{ vek.E8x32 }

func (be8x32) BLanes() int { return seqio.BatchLanes }
func (be8x32) Parts() int  { return 1 }

func (be8x32) LookupColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8) (vek.I8x32, vek.I8x32) {
	idx := m.Load8(codes)
	return t.LookupScores(m, c, idx), vek.I8x32{}
}

func (be8x32) CachedColumn(m vek.Machine, row []int8) (vek.I8x32, vek.I8x32) {
	return m.Load8(row), vek.I8x32{}
}

func (be8x32) BuildScoreColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8, dst []int8) {
	idx := m.Load8(codes)
	m.Store8(dst, t.LookupScores(m, c, idx))
}

func (e be8x32) BatchRows(m vek.Machine, s *Scratch, n int, affine bool) (h, f []int8) {
	h, f = rowBufsE(&s.hRow8, &s.fRow8, n, e.BLanes(), affine, negInf8)
	m.T.Add(vek.OpScalarStore, vek.W256, uint64(n))
	return h, f
}

func (e be8x32) BatchCarries(s *Scratch, m int) (ec, left, diag []int8) {
	return carryBufsE(&s.carryE8, &s.carryL8, &s.carryD8, m, e.BLanes())
}

// be16x16 is the 256-bit 16-bit batch engine: two I16x16 halves per
// 32-lane column, widened from the shared 8-bit shuffle lookup.
//
//sw:hotpath
type be16x16 struct{ vek.E16x16 }

func (be16x16) BLanes() int { return seqio.BatchLanes }
func (be16x16) Parts() int  { return 2 }

func (be16x16) LookupColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8) (vek.I16x16, vek.I16x16) {
	idx := m.Load8(codes)
	s8 := t.LookupScores(m, c, idx)
	return m.Widen8To16(s8, 0), m.Widen8To16(s8, 1)
}

func (be16x16) CachedColumn(m vek.Machine, row []int8) (vek.I16x16, vek.I16x16) {
	s8 := m.Load8(row)
	return m.Widen8To16(s8, 0), m.Widen8To16(s8, 1)
}

func (be16x16) BuildScoreColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8, dst []int8) {
	idx := m.Load8(codes)
	m.Store8(dst, t.LookupScores(m, c, idx))
}

func (e be16x16) BatchRows(m vek.Machine, s *Scratch, n int, affine bool) (h, f []int16) {
	h, f = rowBufsE(&s.hRow16, &s.fRow16, n, e.BLanes(), affine, negInf16)
	m.T.Add(vek.OpScalarStore, vek.W256, uint64(2*n))
	return h, f
}

func (e be16x16) BatchCarries(s *Scratch, m int) (ec, left, diag []int16) {
	return carryBufsE(&s.carryE16, &s.carryL16, &s.carryD16, m, e.BLanes())
}

// be8x64 is the 512-bit 8-bit batch engine: one I8x64 per 64-lane
// column.
//
//sw:hotpath
type be8x64 struct{ vek.E8x64 }

func (be8x64) BLanes() int { return seqio.MaxBatchLanes }
func (be8x64) Parts() int  { return 1 }

func (be8x64) LookupColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8) (vek.I8x64, vek.I8x64) {
	idx := m.Load8W(codes)
	return t.LookupScoresW(m, c, idx), vek.I8x64{}
}

func (be8x64) CachedColumn(m vek.Machine, row []int8) (vek.I8x64, vek.I8x64) {
	return m.Load8W(row), vek.I8x64{}
}

func (be8x64) BuildScoreColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8, dst []int8) {
	idx := m.Load8W(codes)
	m.Store8W(dst, t.LookupScoresW(m, c, idx))
}

func (e be8x64) BatchRows(m vek.Machine, s *Scratch, n int, affine bool) (h, f []int8) {
	h, f = rowBufsE(&s.hRow8, &s.fRow8, n, e.BLanes(), affine, negInf8)
	m.T.Add(vek.OpScalarStore, vek.W256, uint64(n))
	return h, f
}

func (e be8x64) BatchCarries(s *Scratch, m int) (ec, left, diag []int8) {
	return carryBufsE(&s.carryE8, &s.carryL8, &s.carryD8, m, e.BLanes())
}

// be16x32 is the 512-bit 16-bit batch engine: two I16x32 halves per
// 64-lane column.
//
//sw:hotpath
type be16x32 struct{ vek.E16x32 }

func (be16x32) BLanes() int { return seqio.MaxBatchLanes }
func (be16x32) Parts() int  { return 2 }

func (be16x32) LookupColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8) (vek.I16x32, vek.I16x32) {
	idx := m.Load8W(codes)
	s8 := t.LookupScoresW(m, c, idx)
	return m.Widen8To16W(s8, 0), m.Widen8To16W(s8, 1)
}

func (be16x32) CachedColumn(m vek.Machine, row []int8) (vek.I16x32, vek.I16x32) {
	s8 := m.Load8W(row)
	return m.Widen8To16W(s8, 0), m.Widen8To16W(s8, 1)
}

func (be16x32) BuildScoreColumn(m vek.Machine, t *submat.CodeTables, c uint8, codes []int8, dst []int8) {
	idx := m.Load8W(codes)
	m.Store8W(dst, t.LookupScoresW(m, c, idx))
}

func (e be16x32) BatchRows(m vek.Machine, s *Scratch, n int, affine bool) (h, f []int16) {
	h, f = rowBufsE(&s.hRow16, &s.fRow16, n, e.BLanes(), affine, negInf16)
	m.T.Add(vek.OpScalarStore, vek.W256, uint64(2*n))
	return h, f
}

func (e be16x32) BatchCarries(s *Scratch, m int) (ec, left, diag []int16) {
	return carryBufsE(&s.carryE16, &s.carryL16, &s.carryD16, m, e.BLanes())
}
