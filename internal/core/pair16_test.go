package core

import (
	"testing"
	"testing/quick"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

var (
	protAlpha = alphabet.ProteinAlphabet()
	b62       = submat.Blosum62()
)

func enc(s string) []uint8 { return protAlpha.EncodeString(s) }

func defaultOpt() PairOptions { return PairOptions{Gaps: aln.DefaultGaps()} }

func TestPair16MatchesScalarSmall(t *testing.T) {
	q := enc("MKVLAWGQHEAGAWGHEE")
	d := enc("PAWHEAEMKVLAWQHE")
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps())
	got, tb, err := AlignPair16(vek.Bare, q, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score = %d, want %d", got.Score, want.Score)
	}
	if tb != nil {
		t.Fatal("traceback returned without being requested")
	}
}

func TestPair16MatchesScalarRandom(t *testing.T) {
	g := seqio.NewGenerator(21)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 40; trial++ {
		qlen := 5 + trial*7%200
		dlen := 5 + trial*13%300
		q := g.Protein("q", qlen).Encode(protAlpha)
		d := g.Protein("d", dlen).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		got, _, err := AlignPair16(vek.Bare, q, d, b62, defaultOpt())
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d (%dx%d): score = %d, want %d", trial, qlen, dlen, got.Score, want.Score)
		}
	}
}

func TestPair16MatchesScalarRelatedSequences(t *testing.T) {
	// Homologous pairs produce long high-scoring alignments with gaps,
	// exercising the E/F machinery harder than random pairs.
	g := seqio.NewGenerator(22)
	gaps := aln.Gaps{Open: 5, Extend: 1}
	for trial := 0; trial < 15; trial++ {
		src := g.Protein("s", 120+trial*17)
		rel := g.Related(src, "r", 0.15, 0.05)
		q := src.Encode(protAlpha)
		d := rel.Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d: score = %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestPair16PropertyVsScalar(t *testing.T) {
	g := seqio.NewGenerator(23)
	gaps := aln.DefaultGaps()
	f := func(qLen, dLen uint8) bool {
		ql := 1 + int(qLen)%120
		dl := 1 + int(dLen)%120
		q := g.Protein("q", ql).Encode(protAlpha)
		d := g.Protein("d", dl).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps)
		got, _, err := AlignPair16(vek.Bare, q, d, b62, defaultOpt())
		return err == nil && got.Score == want.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPair16PadTailMatchesScalarTail(t *testing.T) {
	g := seqio.NewGenerator(24)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 25; trial++ {
		q := g.Protein("q", 17+trial*11).Encode(protAlpha)
		d := g.Protein("d", 31+trial*7).Encode(protAlpha)
		padded, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		scalar, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: gaps, ScalarTail: true})
		if err != nil {
			t.Fatal(err)
		}
		if scalar.Score != padded.Score {
			t.Fatalf("trial %d: padded tail %d != scalar tail %d", trial, padded.Score, scalar.Score)
		}
		// The linear kernel has both tail paths too.
		lp, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.Linear(2)})
		if err != nil {
			t.Fatal(err)
		}
		ls, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.Linear(2), ScalarTail: true})
		if err != nil {
			t.Fatal(err)
		}
		if lp.Score != ls.Score {
			t.Fatalf("trial %d: linear padded %d != scalar %d", trial, lp.Score, ls.Score)
		}
	}
}

func TestPair16ScalarThresholdInvariance(t *testing.T) {
	// Any threshold must give the same score: the fallback is an
	// implementation route, not a different algorithm.
	g := seqio.NewGenerator(25)
	q := g.Protein("q", 90).Encode(protAlpha)
	d := g.Protein("d", 150).Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps())
	for _, thr := range []int{1, 2, 4, 8, 16, 100} {
		got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), ScalarThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("threshold %d: score = %d, want %d", thr, got.Score, want.Score)
		}
	}
}

func TestPair16TrackPosition(t *testing.T) {
	g := seqio.NewGenerator(26)
	q := g.Protein("q", 80).Encode(protAlpha)
	d := g.Protein("d", 200).Encode(protAlpha)
	want := baselines.ScalarAffine(q, d, b62, aln.DefaultGaps())
	got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), TrackPosition: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("score = %d, want %d", got.Score, want.Score)
	}
	if got.EndQ < 0 || got.EndD < 0 {
		t.Fatal("position tracking returned no position")
	}
	// The tracked cell must actually hold the optimal score: verify by
	// re-aligning the prefixes ending there.
	pre := baselines.ScalarAffine(q[:got.EndQ+1], d[:got.EndD+1], b62, aln.DefaultGaps())
	if pre.Score != got.Score {
		t.Fatalf("prefix score at tracked position = %d, want %d", pre.Score, got.Score)
	}
}

func TestPair16EagerMaxSameScore(t *testing.T) {
	g := seqio.NewGenerator(27)
	q := g.Protein("q", 70).Encode(protAlpha)
	d := g.Protein("d", 130).Encode(protAlpha)
	deferred, _, err := AlignPair16(vek.Bare, q, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	eager, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), EagerMax: true})
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Score != eager.Score {
		t.Fatalf("eager %d != deferred %d", eager.Score, deferred.Score)
	}
}

func TestPair16EagerMaxCostsMoreReduces(t *testing.T) {
	g := seqio.NewGenerator(28)
	q := g.Protein("q", 100).Encode(protAlpha)
	d := g.Protein("d", 300).Encode(protAlpha)
	mDef, tDef := vek.NewMachine()
	if _, _, err := AlignPair16(mDef, q, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	mEag, tEag := vek.NewMachine()
	if _, _, err := AlignPair16(mEag, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), EagerMax: true}); err != nil {
		t.Fatal(err)
	}
	if tEag.N256[vek.OpReduce] <= tDef.N256[vek.OpReduce] {
		t.Errorf("eager reduces %d should exceed deferred %d",
			tEag.N256[vek.OpReduce], tDef.N256[vek.OpReduce])
	}
}

func TestPair16LinearMatchesScalarLinear(t *testing.T) {
	g := seqio.NewGenerator(29)
	for trial := 0; trial < 25; trial++ {
		q := g.Protein("q", 10+trial*9).Encode(protAlpha)
		d := g.Protein("d", 20+trial*13).Encode(protAlpha)
		want := baselines.ScalarLinear(q, d, b62, 2)
		got, _, err := AlignPair16(vek.Bare, q, d, b62, PairOptions{Gaps: aln.Linear(2)})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d: linear score = %d, want %d", trial, got.Score, want.Score)
		}
	}
}

func TestPair16LinearCheaperThanAffine(t *testing.T) {
	g := seqio.NewGenerator(30)
	q := g.Protein("q", 200).Encode(protAlpha)
	d := g.Protein("d", 400).Encode(protAlpha)
	mAff, tAff := vek.NewMachine()
	if _, _, err := AlignPair16(mAff, q, d, b62, defaultOpt()); err != nil {
		t.Fatal(err)
	}
	mLin, tLin := vek.NewMachine()
	if _, _, err := AlignPair16(mLin, q, d, b62, PairOptions{Gaps: aln.Linear(2)}); err != nil {
		t.Fatal(err)
	}
	if tLin.Total() >= tAff.Total() {
		t.Errorf("linear ops %d should be below affine %d", tLin.Total(), tAff.Total())
	}
}

func TestPair16EmptyInputs(t *testing.T) {
	if _, _, err := AlignPair16(vek.Bare, nil, enc("ACD"), b62, defaultOpt()); err == nil {
		t.Error("empty query accepted")
	}
	if _, _, err := AlignPair16(vek.Bare, enc("ACD"), nil, b62, defaultOpt()); err == nil {
		t.Error("empty database accepted")
	}
	if _, _, err := AlignPair16(vek.Bare, enc("A"), enc("A"), b62, PairOptions{Gaps: aln.Gaps{Open: 0, Extend: 0}}); err == nil {
		t.Error("zero gap penalties accepted")
	}
}

func TestPair16SingleResidue(t *testing.T) {
	got, _, err := AlignPair16(vek.Bare, enc("W"), enc("W"), b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 11 {
		t.Fatalf("W/W = %d, want 11", got.Score)
	}
}

func TestPair16NoPositiveScore(t *testing.T) {
	got, _, err := AlignPair16(vek.Bare, enc("WWWWWWWWWW"), enc("PPPPPPPPPPPPPPPP"), b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != 0 {
		t.Fatalf("score = %d, want 0", got.Score)
	}
	if got.EndQ != -1 || got.EndD != -1 {
		t.Fatalf("end = (%d,%d), want (-1,-1)", got.EndQ, got.EndD)
	}
}

func TestPair16RowMajorSameScoreMoreTraffic(t *testing.T) {
	g := seqio.NewGenerator(31)
	q := g.Protein("q", 120).Encode(protAlpha)
	d := g.Protein("d", 250).Encode(protAlpha)
	mDiag, tDiag := vek.NewMachine()
	a, _, err := AlignPair16(mDiag, q, d, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	mRow, tRow := vek.NewMachine()
	b, _, err := AlignPair16(mRow, q, d, b62, PairOptions{Gaps: aln.DefaultGaps(), RowMajorLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Fatalf("layouts disagree: %d vs %d", a.Score, b.Score)
	}
	if tRow.Total() <= tDiag.Total() {
		t.Errorf("row-major traffic %d should exceed diagonal %d", tRow.Total(), tDiag.Total())
	}
}

func TestPair16SaturationFlag(t *testing.T) {
	// Two identical maximal-score sequences long enough to exceed
	// 32767: 11 (W/W) * 3000 = 33000 > 32767.
	w := make([]uint8, 3000)
	for i := range w {
		w[i] = protAlpha.Index('W')
	}
	got, _, err := AlignPair16(vek.Bare, w, w, b62, defaultOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Saturated {
		t.Fatalf("expected saturation, score = %d", got.Score)
	}
}
