package core

import "fmt"

// Backend selects which execution engine runs an alignment.
//
// The modeled backend is the paper apparatus: kernels interpret the
// vek vector machine op by op, so every issue can be tallied and fed
// to the architecture cost model. The native backend runs the
// specialized compiled kernels in internal/native — identical scores,
// saturation flags, and hit positions (enforced by the differential
// suite and FuzzNativeVsModeled), but at hardware speed and with no
// per-op accounting. Figures and profiling runs therefore need the
// modeled backend; serving traffic wants the native one.
type Backend uint8

const (
	// BackendAuto lets the caller's layer pick: the search scheduler
	// resolves it to Native unless instrumentation was requested; the
	// core entry points treat it as Modeled, keeping the paper kernels
	// the default for direct callers.
	BackendAuto Backend = iota
	// BackendModeled interprets the vek machine (cost-model accurate).
	BackendModeled
	// BackendNative runs the compiled kernels in internal/native.
	BackendNative
)

// String returns the flag-style name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendModeled:
		return "modeled"
	case BackendNative:
		return "native"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// ParseBackend parses a flag-style backend name ("auto", "modeled",
// "native"; the empty string means auto).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "modeled":
		return BackendModeled, nil
	case "native":
		return BackendNative, nil
	}
	return BackendAuto, fmt.Errorf("core: unknown backend %q (want auto, modeled, or native)", s)
}
