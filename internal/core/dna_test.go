package core

import (
	"math/rand"
	"testing"

	"swvec/internal/aln"
	"swvec/internal/alphabet"
	"swvec/internal/baselines"
	"swvec/internal/seqio"
	"swvec/internal/submat"
	"swvec/internal/vek"
)

// randomDNA builds a random nucleotide sequence.
func randomDNA(rng *rand.Rand, n int) []byte {
	const nt = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = nt[rng.Intn(4)]
	}
	return out
}

// TestDNAKernelsMatchScalar runs the whole kernel stack on the DNA
// alphabet — the paper's methods apply to nucleotide alignment with a
// simpler matrix (§II-A).
func TestDNAKernelsMatchScalar(t *testing.T) {
	mat := submat.DNADefault()
	alpha := alphabet.DNAAlphabet()
	rng := rand.New(rand.NewSource(77))
	gaps := aln.Gaps{Open: 5, Extend: 2}
	for trial := 0; trial < 20; trial++ {
		q := alpha.Encode(randomDNA(rng, 20+trial*31))
		d := alpha.Encode(randomDNA(rng, 30+trial*47))
		want := baselines.ScalarAffine(q, d, mat, gaps)

		got16, _, err := AlignPair16(vek.Bare, q, d, mat, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got16.Score != want.Score {
			t.Fatalf("trial %d: pair16 %d, want %d", trial, got16.Score, want.Score)
		}

		got8, err := AlignPair8(vek.Bare, q, d, mat, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if want.Score < int32(sat8) && got8.Score != want.Score {
			t.Fatalf("trial %d: pair8 %d, want %d", trial, got8.Score, want.Score)
		}

		gotW, err := AlignPair16W(vek.Bare, q, d, mat, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if gotW.Score != want.Score {
			t.Fatalf("trial %d: pair16w %d, want %d", trial, gotW.Score, want.Score)
		}
	}
}

func TestDNABatchEngine(t *testing.T) {
	mat := submat.DNADefault()
	alpha := alphabet.DNAAlphabet()
	tables := submat.NewCodeTables(mat)
	rng := rand.New(rand.NewSource(78))
	seqs := make([]seqio.Sequence, 24)
	for i := range seqs {
		seqs[i] = seqio.Sequence{ID: "d", Residues: randomDNA(rng, 50+rng.Intn(300))}
	}
	batch := seqio.BuildBatches(seqs, alpha, seqio.BatchOptions{})[0]
	q := alpha.Encode(randomDNA(rng, 120))
	gaps := aln.Gaps{Open: 5, Extend: 2}
	res, err := AlignBatch8(vek.Bare, q, tables, batch, BatchOptions{Gaps: gaps})
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < batch.Count; lane++ {
		d := seqs[batch.Index[lane]].Encode(alpha)
		want := baselines.ScalarAffine(q, d, mat, gaps).Score
		if want >= int32(sat8) {
			if !res.Saturated[lane] {
				t.Fatalf("lane %d: score %d should saturate", lane, want)
			}
			continue
		}
		if res.Scores[lane] != want {
			t.Fatalf("lane %d: %d, want %d", lane, res.Scores[lane], want)
		}
	}
}

func TestDNATracebackRescores(t *testing.T) {
	mat := submat.DNADefault()
	alpha := alphabet.DNAAlphabet()
	rng := rand.New(rand.NewSource(79))
	src := randomDNA(rng, 300)
	// A read with a deletion relative to the reference.
	read := append(append([]byte{}, src[40:120]...), src[135:220]...)
	q := alpha.Encode(read)
	d := alpha.Encode(src)
	gaps := aln.Gaps{Open: 6, Extend: 1}
	res, tb, err := AlignPair16(vek.Bare, q, d, mat, PairOptions{Gaps: gaps, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatal("expected positive DNA alignment")
	}
	a, err := tb.Walk(res.EndQ, res.EndD, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	got, err := aln.Rescore(a, q, d, func(qc, dc uint8) int32 { return int32(mat.Score(qc, dc)) }, gaps)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Score {
		t.Fatalf("rescore %d, want %d", got, res.Score)
	}
	hasDel := false
	for _, op := range a.Cigar {
		if op.Kind == aln.OpDelete && op.Len >= 10 {
			hasDel = true
		}
	}
	if !hasDel {
		t.Errorf("expected a long deletion, cigar %s", a.CigarString())
	}
}

// TestAdaptivePropertyVsScalar checks the full adaptive stack against
// the oracle over random protein pairs.
func TestAdaptivePropertyVsScalar(t *testing.T) {
	g := seqio.NewGenerator(80)
	gaps := aln.DefaultGaps()
	for trial := 0; trial < 30; trial++ {
		q := g.Protein("q", 1+trial*11%240).Encode(protAlpha)
		d := g.Protein("d", 1+trial*17%240).Encode(protAlpha)
		want := baselines.ScalarAffine(q, d, b62, gaps).Score
		got, _, err := AlignPairAdaptive(vek.Bare, q, d, b62, PairOptions{Gaps: gaps})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want && !got.Saturated {
			t.Fatalf("trial %d: adaptive %d, want %d", trial, got.Score, want)
		}
	}
}
